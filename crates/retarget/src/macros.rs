//! Candidate macro templates for every instruction outside the minimal
//! subset.
//!
//! Templates are textual assembly with placeholders (`{rd}`, `{rs1}`,
//! `{rs2}`, `{imm}`, `{target}`, `{L}` for a unique label prefix, plus
//! derived constants).  Each pool intentionally contains
//! plausible-but-wrong variants alongside the correct macro — they stand in
//! for the LLM's failure modes, and the verification loop must reject them
//! (Section 5: "if the LLM generates a macro that cannot be functionally
//! verified, the macro is rejected, and another macro is requested").
//!
//! Conventions: macros may clobber `x3`/`x4` and the 16 bytes below `sp`.

use riscv_isa::asm::{AsmInstr, Target};
use riscv_isa::Mnemonic;

/// Returns the candidate template pool for an unsupported mnemonic.
///
/// The pool is never empty for the 25 mnemonics outside
/// [`crate::minimal_subset`].
pub fn candidates(m: Mnemonic) -> &'static [&'static str] {
    use Mnemonic::*;
    match m {
        Sub => &[
            // Wrong: off-by-one (forgets the +1 of two's complement).
            "xori x3, {rs2}, -1\nadd {rd}, {rs1}, x3\n",
            // Correct.
            "xori x3, {rs2}, -1\naddi x3, x3, 1\nadd {rd}, {rs1}, x3\n",
        ],
        Or => &[
            // Wrong: produces ~(a|b).
            "xori x3, {rs1}, -1\nxori x4, {rs2}, -1\nand {rd}, x3, x4\n",
            // Correct: De Morgan.
            "xori x3, {rs1}, -1\nxori x4, {rs2}, -1\nand x3, x3, x4\nxori {rd}, x3, -1\n",
        ],
        Xor => &[
            // Wrong: drops one negation.
            "xori x3, {rs2}, -1\nand x3, {rs1}, x3\nxori x4, {rs1}, -1\nand x4, x4, {rs2}\nand x3, x3, x4\nxori {rd}, x3, -1\n",
            // Correct: (a & ~b) | (~a & b) with the OR by De Morgan.
            "xori x3, {rs2}, -1\nand x3, {rs1}, x3\nxori x4, {rs1}, -1\nand x4, x4, {rs2}\nxori x3, x3, -1\nxori x4, x4, -1\nand x3, x3, x4\nxori {rd}, x3, -1\n",
        ],
        Slt => &[
            // Wrong: inverted polarity.
            "addi x3, x0, 1\nblt {rs1}, {rs2}, {L}d\naddi x3, x0, 1\n{L}d: add {rd}, x0, x3\n",
            // Correct.
            "addi x3, x0, 0\nblt {rs1}, {rs2}, {L}t\njal x0, {L}d\n{L}t: addi x3, x0, 1\n{L}d: add {rd}, x0, x3\n",
        ],
        Sltu => &[
            "addi x3, x0, 0\nbltu {rs1}, {rs2}, {L}t\njal x0, {L}d\n{L}t: addi x3, x0, 1\n{L}d: add {rd}, x0, x3\n",
        ],
        Slti => &[
            "addi x4, x0, {imm}\naddi x3, x0, 0\nblt {rs1}, x4, {L}t\njal x0, {L}d\n{L}t: addi x3, x0, 1\n{L}d: add {rd}, x0, x3\n",
        ],
        Sltiu => &[
            "addi x4, x0, {imm}\naddi x3, x0, 0\nbltu {rs1}, x4, {L}t\njal x0, {L}d\n{L}t: addi x3, x0, 1\n{L}d: add {rd}, x0, x3\n",
        ],
        Andi => &["addi x4, x0, {imm}\nand {rd}, {rs1}, x4\n"],
        Ori => &[
            "addi x4, x0, {imm}\nxori x3, {rs1}, -1\nxori x4, x4, -1\nand x3, x3, x4\nxori {rd}, x3, -1\n",
        ],
        Xori => &[], // in the subset
        Slli => &["addi x3, x0, {imm}\nsll {rd}, {rs1}, x3\n"],
        Srai => &["addi x3, x0, {imm}\nsra {rd}, {rs1}, x3\n"],
        Srli => &[
            // Correct only for shamt == 0.
            "add {rd}, x0, {rs1}\n",
            // Wrong: plain sra leaks sign bits.
            "addi x3, x0, {imm}\nsra {rd}, {rs1}, x3\n",
            // Correct for shamt > 0: sra then mask off the sign copies.
            "addi x3, x0, {imm}\nsra x3, {rs1}, x3\naddi x4, x0, {imm32m}\nsw x3, -4(sp)\naddi x3, x0, 1\nsll x3, x3, x4\naddi x3, x3, -1\nlw x4, -4(sp)\nand {rd}, x3, x4\n",
        ],
        Srl => &[
            // Wrong: ignores the n == 0 case (mask becomes 0).
            "addi x4, x0, 31\nand x4, {rs2}, x4\nsra x3, {rs1}, x4\nsw x3, -4(sp)\nxori x3, x4, -1\naddi x3, x3, 33\naddi x4, x0, 1\nsll x4, x4, x3\naddi x4, x4, -1\nlw x3, -4(sp)\nand {rd}, x3, x4\n",
            // Correct.
            "addi x4, x0, 31\nand x4, {rs2}, x4\nsra x3, {rs1}, x4\nblt x0, x4, {L}m\njal x0, {L}d\n{L}m: sw x3, -4(sp)\nxori x3, x4, -1\naddi x3, x3, 33\naddi x4, x0, 1\nsll x4, x4, x3\naddi x4, x4, -1\nlw x3, -4(sp)\nand x3, x3, x4\n{L}d: add {rd}, x0, x3\n",
        ],
        Beq => &[
            // Wrong: only half the comparison.
            "blt {rs1}, {rs2}, {L}f\njal x0, {target}\n{L}f:\n",
            // Correct: equal iff neither is less than the other.
            "blt {rs1}, {rs2}, {L}f\nblt {rs2}, {rs1}, {L}f\njal x0, {target}\n{L}f:\n",
        ],
        Bne => &[
            "blt {rs1}, {rs2}, {L}t\nblt {rs2}, {rs1}, {L}t\njal x0, {L}f\n{L}t: jal x0, {target}\n{L}f:\n",
        ],
        Bge => &[
            // Wrong: swapped polarity.
            "blt {rs1}, {rs2}, {L}t\njal x0, {L}f\n{L}t: jal x0, {target}\n{L}f:\n",
            // Correct: rs1 >= rs2 unless rs1 < rs2.
            "blt {rs1}, {rs2}, {L}f\njal x0, {target}\n{L}f:\n",
        ],
        Bgeu => &["bltu {rs1}, {rs2}, {L}f\njal x0, {target}\n{L}f:\n"],
        Lui => &[
            // Wrong: 11-bit chunking misplaces the bits.
            "addi x3, x0, {lui_hi}\naddi x4, x0, 11\nsll x3, x3, x4\naddi x3, x3, {lui_lo}\naddi x4, x0, 12\nsll x3, x3, x4\nadd {rd}, x0, x3\n",
            // Correct: two 10-bit chunks then << 12.
            "addi x3, x0, {lui_hi}\naddi x4, x0, 10\nsll x3, x3, x4\naddi x3, x3, {lui_lo}\naddi x4, x0, 12\nsll x3, x3, x4\nadd {rd}, x0, x3\n",
        ],
        Auipc => &[
            // Correct: capture PC with a fall-through jal, then add the
            // upper immediate built as for lui.
            "jal x3, {L}n\n{L}n: addi x3, x3, -4\nsw x3, -4(sp)\naddi x3, x0, {lui_hi}\naddi x4, x0, 10\nsll x3, x3, x4\naddi x3, x3, {lui_lo}\naddi x4, x0, 12\nsll x3, x3, x4\nlw x4, -4(sp)\nadd {rd}, x3, x4\n",
        ],
        Lb => &[
            "addi x3, {rs1}, {imm}\naddi x4, x0, -4\nand x4, x3, x4\nlw x4, 0(x4)\nsw x4, -4(sp)\naddi x4, x0, 3\nand x3, x3, x4\naddi x4, x0, 3\nsll x3, x3, x4\nxori x3, x3, -1\naddi x3, x3, 25\nlw x4, -4(sp)\nsll x4, x4, x3\naddi x3, x0, 24\nsra {rd}, x4, x3\n",
        ],
        Lbu => &[
            // Wrong: forgets the 0xff mask, so negative words leak sign bits.
            "addi x3, {rs1}, {imm}\naddi x4, x0, -4\nand x4, x3, x4\nlw x4, 0(x4)\nsw x4, -4(sp)\naddi x4, x0, 3\nand x3, x3, x4\naddi x4, x0, 3\nsll x3, x3, x4\nlw x4, -4(sp)\nsra {rd}, x4, x3\n",
            // Correct.
            "addi x3, {rs1}, {imm}\naddi x4, x0, -4\nand x4, x3, x4\nlw x4, 0(x4)\nsw x4, -4(sp)\naddi x4, x0, 3\nand x3, x3, x4\naddi x4, x0, 3\nsll x3, x3, x4\nlw x4, -4(sp)\nsra x4, x4, x3\naddi x3, x0, 255\nand {rd}, x4, x3\n",
        ],
        Lh => &[
            "addi x3, {rs1}, {imm}\naddi x4, x0, -4\nand x4, x3, x4\nlw x4, 0(x4)\nsw x4, -4(sp)\naddi x4, x0, 2\nand x3, x3, x4\naddi x4, x0, 3\nsll x3, x3, x4\nxori x3, x3, -1\naddi x3, x3, 17\nlw x4, -4(sp)\nsll x4, x4, x3\naddi x3, x0, 16\nsra {rd}, x4, x3\n",
        ],
        Lhu => &[
            "addi x3, {rs1}, {imm}\naddi x4, x0, -4\nand x4, x3, x4\nlw x4, 0(x4)\nsw x4, -4(sp)\naddi x4, x0, 2\nand x3, x3, x4\naddi x4, x0, 3\nsll x3, x3, x4\nlw x4, -4(sp)\nsra x4, x4, x3\nsw x4, -4(sp)\naddi x3, x0, 16\naddi x4, x0, 1\nsll x4, x4, x3\naddi x4, x4, -1\nlw x3, -4(sp)\nand {rd}, x3, x4\n",
        ],
        Sb => &[
            "addi x3, {rs1}, {imm}\nsw x3, -8(sp)\naddi x4, x0, -4\nand x4, x3, x4\nsw x4, -12(sp)\nlw x4, 0(x4)\nsw x4, -16(sp)\naddi x4, x0, 3\nand x3, x3, x4\naddi x4, x0, 3\nsll x3, x3, x4\nsw x3, -8(sp)\naddi x4, x0, 255\nsll x4, x4, x3\nxori x4, x4, -1\nlw x3, -16(sp)\nand x3, x3, x4\nsw x3, -16(sp)\naddi x4, x0, 255\nand x4, {rs2}, x4\nlw x3, -8(sp)\nsll x4, x4, x3\nlw x3, -16(sp)\nxori x3, x3, -1\nxori x4, x4, -1\nand x3, x3, x4\nxori x3, x3, -1\nlw x4, -12(sp)\nsw x3, 0(x4)\n",
        ],
        Sh => &[
            "addi x3, {rs1}, {imm}\naddi x4, x0, -4\nand x4, x3, x4\nsw x4, -12(sp)\nlw x4, 0(x4)\nsw x4, -16(sp)\naddi x4, x0, 2\nand x3, x3, x4\naddi x4, x0, 3\nsll x3, x3, x4\nsw x3, -8(sp)\naddi x4, x0, 16\naddi x3, x0, 1\nsll x3, x3, x4\naddi x3, x3, -1\nlw x4, -8(sp)\nsll x3, x3, x4\nxori x3, x3, -1\nlw x4, -16(sp)\nand x4, x4, x3\nsw x4, -16(sp)\naddi x4, x0, 16\naddi x3, x0, 1\nsll x3, x3, x4\naddi x3, x3, -1\nand x3, {rs2}, x3\nlw x4, -8(sp)\nsll x3, x3, x4\nlw x4, -16(sp)\nxori x3, x3, -1\nxori x4, x4, -1\nand x3, x3, x4\nxori x3, x3, -1\nlw x4, -12(sp)\nsw x3, 0(x4)\n",
        ],
        // Subset members need no macro.
        Addi | Add | And | Sll | Sra | Jal | Jalr | Blt | Bltu | Lw | Sw => &[],
    }
}

/// Substitutes placeholders in a template for a concrete instruction site.
pub fn instantiate(template: &str, ai: &AsmInstr, site: usize) -> String {
    let imm = match &ai.target {
        Target::Imm(v) => *v,
        Target::Label(_) => 0,
    };
    let target = match &ai.target {
        Target::Label(name) => name.clone(),
        Target::Imm(_) => format!("__rt{site}_imm_target"),
    };
    let v = imm as u32;
    let upper20 = v >> 12;
    template
        .replace("{rd}", &ai.rd.to_string())
        .replace("{rs1}", &ai.rs1.to_string())
        .replace("{rs2}", &ai.rs2.to_string())
        .replace("{imm32m}", &(32 - (imm & 31)).to_string())
        .replace("{imm}", &imm.to_string())
        .replace("{lui_hi}", &(upper20 >> 10).to_string())
        .replace("{lui_lo}", &(upper20 & 0x3ff).to_string())
        .replace("{target}", &target)
        .replace("{L}", &format!("__rt{site}_"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::asm;
    use riscv_isa::Reg;

    #[test]
    fn every_non_subset_mnemonic_has_candidates() {
        let subset = crate::minimal_subset();
        for m in riscv_isa::ALL_MNEMONICS {
            if subset.contains(m) {
                continue;
            }
            assert!(!candidates(m).is_empty(), "{m} has no macro candidates");
        }
    }

    #[test]
    fn templates_parse_after_instantiation() {
        let subset = crate::minimal_subset();
        for m in riscv_isa::ALL_MNEMONICS {
            if subset.contains(m) {
                continue;
            }
            let ai = AsmInstr {
                mnemonic: m,
                rd: Reg::X7,
                rs1: Reg::X8,
                rs2: Reg::X9,
                target: if m.is_branch() {
                    Target::Label("somewhere".into())
                } else if m.funct7().is_some() && m.format() == riscv_isa::Format::I {
                    Target::Imm(5) // shamt
                } else {
                    Target::Imm(16)
                },
            };
            for (i, t) in candidates(m).iter().enumerate() {
                let text = instantiate(t, &ai, 1);
                let parsed =
                    asm::parse(&text).unwrap_or_else(|e| panic!("{m} candidate {i}: {e}\n{text}"));
                // Expansions must only use subset instructions.
                for item in &parsed {
                    if let riscv_isa::asm::Item::Instr(x) = item {
                        assert!(
                            subset.contains(x.mnemonic),
                            "{m} candidate {i} uses {}",
                            x.mnemonic
                        );
                    }
                }
            }
        }
    }
}
