//! Code retargeting to a RISSP's instruction subset (Section 5).
//!
//! Long-lasting extreme-edge applications get software updates after the
//! RISSP is fabricated; recompiled code may contain instructions the chip
//! does not implement.  The paper's tool feeds each unsupported instruction
//! to an LLM (the ChatGPT RISC-V Assembly plugin), asks for a macro that
//! reproduces it using only the supported subset, *functionally verifies*
//! the macro, and retries on failure ("a valid macro can be generated in
//! less than 10 attempts").
//!
//! This crate reproduces the tool with a stochastic macro synthesiser in
//! the LLM role: for every unsupported instruction it holds a pool of
//! candidate expansions — plausible-but-wrong variants alongside correct
//! ones, sampled in seeded random order — and the same verify-reject-retry
//! loop the paper describes.  Macros may clobber the reserved scratch
//! registers `x3`/`x4` (never used by the `xcc` compiler) and a small
//! scratch region below the stack pointer.
//!
//! # Examples
//!
//! ```
//! use retarget::{minimal_subset, Retargeter};
//! use riscv_isa::asm;
//!
//! let program = asm::parse("sub x7, x8, x9\nhalt: jal x0, halt").unwrap();
//! let mut tool = Retargeter::new(minimal_subset(), 42);
//! let out = tool.retarget(&program).unwrap();
//! assert!(out.expanded_sites >= 1);
//! ```

mod macros;
mod verify;

pub use verify::{verify_expansion, VerifyFailure};

use riscv_isa::asm::{AsmError, AsmInstr, Item, Target};
use riscv_isa::{Instruction, Mnemonic, Reg};
use rissp::profile::InstructionSubset;
use std::collections::BTreeMap;

/// The paper's twelve-instruction minimal subset "from which other
/// instructions can be reproduced" (§5).
pub fn minimal_subset() -> InstructionSubset {
    InstructionSubset::from_names([
        "addi", "add", "and", "xori", "sll", "sra", "jal", "jalr", "blt", "bltu", "lw", "sw",
    ])
}

/// A retargeting failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetargetError {
    /// No verified macro could be synthesised within the attempt budget.
    NoValidMacro {
        /// The instruction that could not be expanded.
        mnemonic: Mnemonic,
        /// Attempts made.
        attempts: usize,
    },
    /// The instruction uses the reserved scratch registers x3/x4.
    ReservedRegister(Instruction),
    /// Reassembly of the expanded program failed.
    Asm(AsmError),
}

impl std::fmt::Display for RetargetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetargetError::NoValidMacro { mnemonic, attempts } => {
                write!(
                    f,
                    "no valid macro for `{mnemonic}` after {attempts} attempts"
                )
            }
            RetargetError::ReservedRegister(i) => {
                write!(f, "instruction `{i}` uses reserved scratch registers")
            }
            RetargetError::Asm(e) => write!(f, "reassembly failed: {e}"),
        }
    }
}

impl std::error::Error for RetargetError {}

impl From<AsmError> for RetargetError {
    fn from(e: AsmError) -> Self {
        RetargetError::Asm(e)
    }
}

/// Outcome of retargeting one program (the data behind Figure 12).
#[derive(Debug, Clone)]
pub struct RetargetReport {
    /// The rewritten item stream (labels preserved, branches re-resolved).
    pub items: Vec<Item>,
    /// The reassembled machine words.
    pub words: Vec<u32>,
    /// Instruction sites that needed expansion.
    pub expanded_sites: usize,
    /// Synthesis attempts per expanded mnemonic (paper: < 10 each).
    pub attempts: BTreeMap<Mnemonic, usize>,
    /// Code size before retargeting, bytes.
    pub bytes_before: usize,
    /// Code size after retargeting, bytes.
    pub bytes_after: usize,
}

impl RetargetReport {
    /// Relative code growth (Figure 12 reports 5.2–36 %).
    pub fn size_increase(&self) -> f64 {
        if self.bytes_before == 0 {
            return 0.0;
        }
        self.bytes_after as f64 / self.bytes_before as f64 - 1.0
    }
}

/// The retargeting tool: subset + seeded candidate synthesiser.
#[derive(Debug)]
pub struct Retargeter {
    subset: InstructionSubset,
    seed: u64,
    /// Verified macros are cached per mnemonic (the paper stores them in a
    /// `macro.S` file and reuses them).
    macro_cache: BTreeMap<Mnemonic, usize>,
    site_counter: usize,
}

impl Retargeter {
    /// Creates a tool targeting `subset`; `seed` drives the stochastic
    /// candidate generator.
    pub fn new(subset: InstructionSubset, seed: u64) -> Retargeter {
        Retargeter {
            subset,
            seed,
            macro_cache: BTreeMap::new(),
            site_counter: 0,
        }
    }

    /// The target subset.
    pub fn subset(&self) -> &InstructionSubset {
        &self.subset
    }

    /// Rewrites a program so it uses only subset instructions, verifying
    /// every synthesised macro against the original semantics.
    ///
    /// # Errors
    ///
    /// See [`RetargetError`].
    pub fn retarget(&mut self, items: &[Item]) -> Result<RetargetReport, RetargetError> {
        let bytes_before = items
            .iter()
            .filter(|i| !matches!(i, Item::Label(_)))
            .count()
            * 4;
        let mut out: Vec<Item> = Vec::new();
        let mut expanded_sites = 0;
        let mut attempts: BTreeMap<Mnemonic, usize> = BTreeMap::new();
        for item in items {
            match item {
                Item::Instr(ai) if !self.subset.contains(ai.mnemonic) => {
                    let (expansion, tried) = self.synthesise(ai)?;
                    expanded_sites += 1;
                    let entry = attempts.entry(ai.mnemonic).or_insert(0);
                    *entry = (*entry).max(tried);
                    out.extend(expansion);
                }
                other => out.push(other.clone()),
            }
        }
        let words = riscv_isa::asm::assemble(&out, 0)?;
        Ok(RetargetReport {
            bytes_after: words.len() * 4,
            items: out,
            words,
            expanded_sites,
            attempts,
            bytes_before,
        })
    }

    /// Synthesises (and verifies) an expansion for one instruction site,
    /// returning the items and the number of attempts used.
    fn synthesise(&mut self, ai: &AsmInstr) -> Result<(Vec<Item>, usize), RetargetError> {
        let instr_uses = |r: Reg| {
            (ai.mnemonic.writes_rd() && ai.rd == r)
                || (ai.mnemonic.reads_rs1() && ai.rs1 == r)
                || (ai.mnemonic.reads_rs2() && ai.rs2 == r)
        };
        if instr_uses(Reg::X3) || instr_uses(Reg::X4) {
            return Err(RetargetError::ReservedRegister(to_instruction(ai)));
        }
        self.site_counter += 1;
        let site = self.site_counter;
        // Candidate templates in seeded random order — the "LLM" may emit a
        // plausible-but-wrong macro first; verification rejects it and we
        // re-prompt (Figure 11's loop).
        let candidates = macros::candidates(ai.mnemonic);
        let order = shuffled_indices(candidates.len(), self.seed ^ ((ai.mnemonic as u64) << 8));
        // A previously verified macro shape is reused directly.
        let order: Vec<usize> = if let Some(&known) = self.macro_cache.get(&ai.mnemonic) {
            vec![known]
        } else {
            order
        };
        let mut tried = 0;
        for idx in order {
            tried += 1;
            let text = macros::instantiate(candidates[idx], ai, site);
            let Ok(parsed) = riscv_isa::asm::parse(&text) else {
                continue;
            };
            if verify_expansion(ai, &parsed, 96, self.seed ^ site as u64).is_ok() {
                self.macro_cache.insert(ai.mnemonic, idx);
                return Ok((parsed, tried));
            }
        }
        Err(RetargetError::NoValidMacro {
            mnemonic: ai.mnemonic,
            attempts: tried,
        })
    }
}

fn to_instruction(ai: &AsmInstr) -> Instruction {
    Instruction {
        mnemonic: ai.mnemonic,
        rd: ai.rd,
        rs1: ai.rs1,
        rs2: ai.rs2,
        imm: match &ai.target {
            Target::Imm(v) => *v,
            Target::Label(_) => 0,
        },
    }
}

/// Deterministic Fisher–Yates over `0..n` (xorshift64*).
fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_emu::Emulator;
    use riscv_isa::asm;

    fn run_words(words: &[u32]) -> Emulator {
        let mut emu = Emulator::new();
        emu.state_mut().regs[2] = 0x8000; // sp
        emu.load_words(0, words);
        emu.run(1_000_000).unwrap();
        emu
    }

    #[test]
    fn retargeted_program_matches_original_behaviour() {
        let text = "
            addi a0, zero, 100
            addi a1, zero, 37
            sub  a2, a0, a1      # 63
            or   a3, a0, a1      # 101
            xor  a4, a0, a1      # 65
            slt  a5, a1, a0      # 1
            halt: jal x0, halt
        ";
        let items = asm::parse(text).unwrap();
        let original = run_words(&asm::assemble(&items, 0).unwrap());
        let mut tool = Retargeter::new(minimal_subset(), 7);
        let report = tool.retarget(&items).unwrap();
        let rewritten = run_words(&report.words);
        for r in [10, 11, 12, 13, 14, 15] {
            assert_eq!(
                rewritten.state().regs[r],
                original.state().regs[r],
                "x{r} differs"
            );
        }
        assert!(report.expanded_sites == 4, "{}", report.expanded_sites);
        assert!(report.size_increase() > 0.0);
    }

    #[test]
    fn branch_retargeting_preserves_control_flow() {
        let text = "
            addi a0, zero, 5
            addi a1, zero, 0
            loop:
            beq  a0, zero, done
            add  a1, a1, a0
            addi a0, a0, -1
            jal  x0, loop
            done:
            halt: jal x0, halt
        ";
        let items = asm::parse(text).unwrap();
        let mut tool = Retargeter::new(minimal_subset(), 3);
        let report = tool.retarget(&items).unwrap();
        let emu = run_words(&report.words);
        assert_eq!(emu.state().regs[11], 15);
        // Only subset instructions remain.
        let subset = rissp::profile::InstructionSubset::from_words(&report.words);
        for m in subset.iter() {
            assert!(minimal_subset().contains(m), "{m} leaked through");
        }
    }

    #[test]
    fn attempts_stay_below_ten() {
        let text =
            "sub x7, x8, x9\nor x7, x8, x9\nsrl x7, x8, x9\nbeq x8, x9, skip\nskip: halt: jal x0, halt";
        let items = asm::parse(text).unwrap();
        let mut tool = Retargeter::new(minimal_subset(), 1234);
        let report = tool.retarget(&items).unwrap();
        for (m, n) in &report.attempts {
            assert!(*n < 10, "{m}: {n} attempts");
        }
    }

    #[test]
    fn reserved_register_instructions_are_rejected() {
        let items = asm::parse("sub x3, x8, x9").unwrap();
        let mut tool = Retargeter::new(minimal_subset(), 5);
        assert!(matches!(
            tool.retarget(&items),
            Err(RetargetError::ReservedRegister(_))
        ));
    }

    #[test]
    fn supported_instructions_pass_through_untouched() {
        let text = "addi a0, zero, 1\nadd a1, a0, a0\nhalt: jal x0, halt";
        let items = asm::parse(text).unwrap();
        let mut tool = Retargeter::new(minimal_subset(), 9);
        let report = tool.retarget(&items).unwrap();
        assert_eq!(report.expanded_sites, 0);
        assert_eq!(report.bytes_before, report.bytes_after);
    }
}
