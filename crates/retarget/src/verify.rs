//! Functional verification of synthesised macros (the right half of
//! Figure 11): every candidate expansion is executed against the original
//! instruction's architectural semantics on randomised and corner-case
//! operands; any divergence rejects the candidate.

use riscv_emu::{Emulator, SparseMemory};
use riscv_isa::asm::{AsmInstr, Item, Target};
use riscv_isa::semantics::{step, ArchState};
use riscv_isa::{Instruction, REG_COUNT};

const SP_VALUE: u32 = 0x8000;
/// Bytes below `sp` a macro may scribble on.
const SCRATCH_BYTES: u32 = 16;
const BASE: u32 = 0x0010_0000;

/// Why a candidate was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyFailure {
    /// Description of the divergence.
    pub reason: String,
    /// Register file the failing sample started from.
    pub regs: [u32; REG_COUNT],
}

impl std::fmt::Display for VerifyFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "macro rejected: {}", self.reason)
    }
}

impl std::error::Error for VerifyFailure {}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state >> 12;
    *state ^= *state << 25;
    *state ^= *state >> 27;
    state.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Checks that `expansion` reproduces `ai`'s architectural semantics.
///
/// The expansion runs in an emulator sandbox; the original instruction runs
/// through the golden semantics.  Register files must match afterwards
/// (x3/x4 exempt — documented macro scratch), memory effects must match,
/// and for branches the expansion must reach the "taken" sink exactly when
/// the original branch is taken.
///
/// # Errors
///
/// Returns the first diverging sample.
pub fn verify_expansion(
    ai: &AsmInstr,
    expansion: &[Item],
    samples: usize,
    seed: u64,
) -> Result<(), VerifyFailure> {
    // Local labels defined inside the expansion.
    let local: std::collections::HashSet<&str> = expansion
        .iter()
        .filter_map(|i| match i {
            Item::Label(name) => Some(name.as_str()),
            _ => None,
        })
        .collect();
    // Rewrite external targets (the real branch destination) to the local
    // "taken" sink so the sandbox can observe the outcome.
    let mut prog: Vec<Item> = expansion
        .iter()
        .map(|i| match i {
            Item::Instr(x) => {
                let mut x = x.clone();
                if let Target::Label(name) = &x.target {
                    if !local.contains(name.as_str()) {
                        x.target = Target::Label("__verify_taken".into());
                    }
                }
                Item::Instr(x)
            }
            other => other.clone(),
        })
        .collect();
    prog.push(Item::Label("__verify_fall".into()));
    prog.push(Item::Word(0x0000_0013)); // nop landing pad
    prog.push(Item::Label("__verify_taken".into()));
    prog.push(Item::Word(0x0000_0013));

    let resolved = riscv_isa::asm::assemble(&prog, BASE).map_err(|e| VerifyFailure {
        reason: format!("assembly: {e}"),
        regs: [0; REG_COUNT],
    })?;
    let n_words = resolved.len() as u32;
    let taken_addr = BASE + (n_words - 1) * 4;
    let fall_addr = taken_addr - 4;

    let imm = match &ai.target {
        Target::Imm(v) => *v,
        // Label branches: the offset itself is immaterial to the sandbox —
        // only taken/not-taken is observed.  Use a representative offset.
        Target::Label(_) => 64,
    };
    let instr = Instruction {
        mnemonic: ai.mnemonic,
        rd: ai.rd,
        rs1: ai.rs1,
        rs2: ai.rs2,
        imm,
    };
    // Canonicalise operand fields the format does not use (rs1/rs2 for
    // U/J formats and so on) so the golden semantics sees a well-formed
    // instruction.
    let instr = Instruction::decode(instr.encode()).expect("canonical encoding");

    let corner = [
        0u32,
        1,
        2,
        0x7fff_ffff,
        0x8000_0000,
        0xffff_ffff,
        0xabcd_0123,
    ];
    let mut state = seed | 1;
    for k in 0..samples {
        let mut regs = [0u32; REG_COUNT];
        for (i, r) in regs.iter_mut().enumerate().skip(1) {
            *r = if k < corner.len() * corner.len() && (i == ai.rs1.index() || i == ai.rs2.index())
            {
                // Corner grid for the operand registers on early samples.
                let a = corner[k % corner.len()];
                let b = corner[(k / corner.len()) % corner.len()];
                if i == ai.rs1.index() {
                    a
                } else {
                    b
                }
            } else {
                xorshift(&mut state) as u32
            };
        }
        regs[0] = 0;
        regs[2] = SP_VALUE;
        // Memory accesses of the original instruction land here; only
        // memory instructions get a preload (a stray preload could land on
        // the sandbox code itself).
        let is_mem = ai.mnemonic.is_load() || ai.mnemonic.is_store();
        let access_addr = regs[ai.rs1.index()].wrapping_add(imm as u32);
        let preload = xorshift(&mut state) as u32;

        // Golden run.
        // The expansion's first instruction sits at the original
        // instruction's address, so the golden PC is the sandbox base
        // (auipc's macro captures its own PC via `jal`).
        let mut golden_state = ArchState { pc: BASE, regs };
        let mut golden_mem = SparseMemory::new();
        if is_mem {
            golden_mem.store_word(access_addr & !3, preload);
        }
        let out = step(&mut golden_state, instr, &mut golden_mem);
        let golden_taken = instr.mnemonic.is_branch() && out.next_pc != BASE + 4;

        // Sandbox run.
        let mut emu = Emulator::with_entry(BASE);
        emu.load_words(BASE, &resolved);
        if is_mem {
            emu.memory_mut().store_word(access_addr & !3, preload);
        }
        emu.state_mut().regs = regs;
        let mut landed = None;
        for _ in 0..600 {
            let pc = emu.state().pc;
            if pc == fall_addr || pc == taken_addr {
                landed = Some(pc);
                break;
            }
            if emu.step().map_err(|e| VerifyFailure {
                reason: format!("sandbox fault: {e}"),
                regs,
            })? {
                break;
            }
        }
        let Some(landed) = landed else {
            return Err(VerifyFailure {
                reason: "expansion did not terminate".into(),
                regs,
            });
        };

        // Control-flow outcome.
        let dut_taken = landed == taken_addr;
        if dut_taken != golden_taken {
            return Err(VerifyFailure {
                reason: format!(
                    "branch outcome: golden taken={golden_taken}, macro taken={dut_taken}"
                ),
                regs,
            });
        }
        // Register file (x3/x4 are declared scratch).
        for i in 0..REG_COUNT {
            if i == 3 || i == 4 {
                continue;
            }
            if emu.state().regs[i] != golden_state.regs[i] {
                return Err(VerifyFailure {
                    reason: format!(
                        "x{i}: macro {:#x}, specification {:#x}",
                        emu.state().regs[i],
                        golden_state.regs[i]
                    ),
                    regs,
                });
            }
        }
        // Memory effect at the access word (and the scratch exemption).
        let golden_word = golden_mem.load_word(access_addr & !3);
        let dut_word = emu.memory().load_word(access_addr & !3);
        let in_scratch = (SP_VALUE - SCRATCH_BYTES..SP_VALUE).contains(&access_addr);
        let in_code = (BASE..BASE + n_words * 4).contains(&(access_addr & !3));
        if is_mem && !in_scratch && !in_code && dut_word != golden_word {
            return Err(VerifyFailure {
                reason: format!(
                    "memory at {:#x}: macro {dut_word:#x}, specification {golden_word:#x}",
                    access_addr & !3
                ),
                regs,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macros;
    use riscv_isa::{Mnemonic, Reg};

    fn site(m: Mnemonic, rd: Reg, rs1: Reg, rs2: Reg, target: Target) -> AsmInstr {
        AsmInstr {
            mnemonic: m,
            rd,
            rs1,
            rs2,
            target,
        }
    }

    #[test]
    fn correct_macros_verify_for_all_unsupported_mnemonics() {
        let subset = crate::minimal_subset();
        for m in riscv_isa::ALL_MNEMONICS {
            if subset.contains(m) {
                continue;
            }
            let target = if m.is_branch() {
                Target::Label("far_away".into())
            } else if m.funct7().is_some() && m.format() == riscv_isa::Format::I {
                Target::Imm(7)
            } else if m.format() == riscv_isa::Format::U {
                Target::Imm(0x12345 << 12)
            } else {
                Target::Imm(24)
            };
            let ai = site(m, Reg::X7, Reg::X8, Reg::X9, target);
            let pool = macros::candidates(m);
            let verified = pool.iter().any(|t| {
                let text = macros::instantiate(t, &ai, 99);
                match riscv_isa::asm::parse(&text) {
                    Ok(items) => verify_expansion(&ai, &items, 80, 0x51ed).is_ok(),
                    Err(_) => false,
                }
            });
            assert!(verified, "{m}: no candidate verified");
        }
    }

    #[test]
    fn wrong_sub_macro_is_rejected() {
        let ai = site(Mnemonic::Sub, Reg::X7, Reg::X8, Reg::X9, Target::Imm(0));
        let wrong = macros::instantiate(macros::candidates(Mnemonic::Sub)[0], &ai, 1);
        let items = riscv_isa::asm::parse(&wrong).unwrap();
        assert!(verify_expansion(&ai, &items, 40, 1).is_err());
    }

    #[test]
    fn wrong_beq_macro_is_rejected() {
        let ai = site(
            Mnemonic::Beq,
            Reg::X0,
            Reg::X8,
            Reg::X9,
            Target::Label("t".into()),
        );
        let wrong = macros::instantiate(macros::candidates(Mnemonic::Beq)[0], &ai, 2);
        let items = riscv_isa::asm::parse(&wrong).unwrap();
        assert!(verify_expansion(&ai, &items, 60, 2).is_err());
    }

    #[test]
    fn zero_shift_srli_needs_the_mv_candidate() {
        let ai = site(Mnemonic::Srli, Reg::X7, Reg::X8, Reg::X0, Target::Imm(0));
        // The masking template fails for shamt 0; the mv template passes.
        let pool = macros::candidates(Mnemonic::Srli);
        let mv = macros::instantiate(pool[0], &ai, 3);
        let items = riscv_isa::asm::parse(&mv).unwrap();
        verify_expansion(&ai, &items, 40, 3).unwrap();
        let masked = macros::instantiate(pool[2], &ai, 4);
        let items = riscv_isa::asm::parse(&masked).unwrap();
        assert!(verify_expansion(&ai, &items, 40, 4).is_err());
    }
}
