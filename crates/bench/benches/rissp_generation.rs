//! Criterion bench: RISSP generation time (Steps 2–3 + synthesis), the
//! methodology's per-design turnaround cost.

use criterion::{criterion_group, criterion_main, Criterion};
use hwlib::HwLibrary;
use rissp::{profile::InstructionSubset, Rissp};

fn bench(c: &mut Criterion) {
    let lib = HwLibrary::build_full();
    let small = InstructionSubset::from_names([
        "addi", "andi", "bge", "blt", "jal", "jalr", "lui", "lw", "srli", "sw", "xor", "xori",
    ]);
    let mut g = c.benchmark_group("rissp_generation");
    g.sample_size(10);
    g.bench_function("xgboost_subset", |b| {
        b.iter(|| Rissp::generate(&lib, &small))
    });
    g.bench_function("full_rv32e", |b| b.iter(|| Rissp::generate_full_isa(&lib)));
    g.bench_function("library_build", |b| b.iter(HwLibrary::build_full));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
