//! Criterion bench: xcc compile time across optimisation levels.

use criterion::{criterion_group, criterion_main, Criterion};
use xcc::OptLevel;

fn bench(c: &mut Criterion) {
    let w = workloads::by_name("nettle-sha256").expect("workload");
    let mut g = c.benchmark_group("compiler");
    for level in OptLevel::ALL {
        g.bench_function(level.flag(), |b| {
            b.iter(|| w.compile(level).expect("compiles"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
