//! Criterion bench: reference-simulator throughput (the Spike substitute).

use criterion::{criterion_group, criterion_main, Criterion};
use riscv_emu::Emulator;
use xcc::OptLevel;

fn bench(c: &mut Criterion) {
    let w = workloads::by_name("crc32").expect("crc32");
    let image = w.compile(OptLevel::O2).expect("compiles");
    c.bench_function("emulator_crc32_full_run", |b| {
        b.iter(|| {
            let mut emu = Emulator::new();
            image.load(&mut emu);
            emu.run(10_000_000).expect("runs").retired
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
