//! Criterion bench: gate-level execution throughput of a generated RISSP.

use criterion::{criterion_group, criterion_main, Criterion};
use hwlib::HwLibrary;
use rissp::{processor::GateLevelCpu, profile::InstructionSubset, Rissp};
use xcc::OptLevel;

fn bench(c: &mut Criterion) {
    let lib = HwLibrary::build_full();
    let w = workloads::by_name("crc32").expect("crc32");
    let image = w.compile(OptLevel::O2).expect("compiles");
    let subset = InstructionSubset::from_words(&image.words);
    let rissp = Rissp::generate(&lib, &subset);
    let mut g = c.benchmark_group("gate_sim");
    g.sample_size(10);
    g.bench_function("crc32_500_cycles", |b| {
        b.iter(|| {
            let mut cpu = GateLevelCpu::new(&rissp, 0);
            cpu.load_words(0, &image.words);
            for (base, words) in &image.data_segments {
                cpu.load_words(*base, words);
            }
            let _ = cpu.run(500);
            cpu.cycles()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
