//! Criterion bench: gate-level execution throughput of a generated RISSP.
//!
//! Measures the interpreted baseline against the compiled bit-parallel
//! backend and the multi-threaded sharded backend on the same crc32 core:
//! per-settle (scalar), with 64/128/256 stimulus lanes packed per settle
//! (K = 1/2/4 words per net), and with 4 shards x 64 lanes on 1 and 4
//! threads plus the fused 256-lane block equivalent — so the `SimBackend`
//! speedup, the lane-block scaling, and the thread-scaling are numbers
//! rather than assertions. Per-vector throughput = settles x lanes / time.
//!
//! The `settle_sparse_*` / `settle_dense_*` pairs compare the full-sweep
//! evaluator against the event-driven one (`EvalMode`) on low-activity
//! and maximum-activity stimulus schedules; each sparse run also prints
//! its measured ops/settle and levels-skipped counters so the README
//! numbers are reproducible.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hwlib::HwLibrary;
use netlist::{CompiledSim, EvalMode, ShardPolicy, ShardSchedule, ShardedSim, Sim};
use rissp::{processor::GateLevelCpu, profile::InstructionSubset, Rissp};
use std::sync::Arc;
use xcc::OptLevel;

const EVALS: usize = 200;

fn bench(c: &mut Criterion) {
    let lib = HwLibrary::build_full();
    let w = workloads::by_name("crc32").expect("crc32");
    let image = w.compile(OptLevel::O2).expect("compiles");
    let subset = InstructionSubset::from_words(&image.words);
    let rissp = Rissp::generate(&lib, &subset);
    // One shared core handle: every simulator construction below recompiles
    // but never re-clones the gate arena.
    let core_arc = Arc::new(rissp.core.clone());
    let mut g = c.benchmark_group("gate_sim");
    g.sample_size(10);
    g.bench_function("crc32_500_cycles", |b| {
        b.iter(|| {
            let mut cpu = GateLevelCpu::with_core_arc(core_arc.clone(), 0);
            cpu.load_words(0, &image.words);
            for (base, words) in &image.data_segments {
                cpu.load_words(*base, words);
            }
            let _ = cpu.run(500);
            cpu.cycles()
        })
    });

    // Same core, same stimulus schedule, three backends: the interpreted
    // match-per-gate baseline, the compiled scalar stream, and the compiled
    // stream with 64 lanes per settle (64 * EVALS vectors of work).
    let core = &rissp.core;
    let mut interpreted = Sim::new(core);
    g.bench_function("settle_interpreted", |b| {
        b.iter(|| {
            for i in 0..EVALS {
                interpreted.set_bus("insn", black_box(0x0000_0113 ^ (i as u32) << 7));
                interpreted.eval();
                interpreted.step();
            }
            interpreted.cycles()
        })
    });
    // The `settle_compiled*` and `settle_sharded*` rows quantify lane
    // packing and sharding against the interpreted baseline, so they pin
    // the full-sweep evaluator; the event-driven delta is measured by the
    // dedicated `settle_sparse_*`/`settle_dense_*` rows below.
    let mut compiled = CompiledSim::new_arc(core_arc.clone());
    compiled.set_eval_mode(EvalMode::FullSweep);
    g.bench_function("settle_compiled", |b| {
        b.iter(|| {
            for i in 0..EVALS {
                compiled.set_bus("insn", black_box(0x0000_0113 ^ (i as u32) << 7));
                compiled.eval();
                compiled.step();
            }
            compiled.cycles()
        })
    });
    // Lane-block width sweep: 64 lanes is one word per net (K = 1);
    // 128/256 lanes store K = 2/4 contiguous words per net and retire
    // K x the stimulus vectors per settle, so per-vector throughput =
    // settles x lanes / time is the number to compare across rows.
    for lanes in [64usize, 128, 256] {
        let mut wide = CompiledSim::with_lanes_arc(core_arc.clone(), lanes);
        wide.set_eval_mode(EvalMode::FullSweep);
        let mut stimuli = vec![0u64; lanes];
        g.bench_function(format!("settle_compiled_{lanes}_lanes"), |b| {
            b.iter(|| {
                for i in 0..EVALS {
                    for (lane, s) in stimuli.iter_mut().enumerate() {
                        *s = black_box(0x0000_0113u64 ^ ((i * lanes + lane) as u64) << 7);
                    }
                    wide.set_bus_lanes("insn", &stimuli);
                    wide.eval();
                    wide.step();
                }
                wide.cycles()
            })
        });
    }

    // Intra-netlist parallel level evaluation: the same 64-lane full-sweep
    // schedule with each wide level's ops split across worker threads
    // (`EvalPolicy::par_levels`). The `par{2,4}` rows pin the scoped
    // predecessor (a fresh thread::scope per settle); the `pool{2,4}`
    // rows run the identical schedule on the persistent worker pool.
    // Results are bit-identical to `settle_compiled_64_lanes`; on the
    // 1-CPU dev container the rows measure the per-settle dispatch
    // overhead each runtime pays rather than a speedup (see README).
    for (threads, use_pool) in [(2, false), (4, false), (2, true), (4, true)] {
        let mut par = CompiledSim::with_lanes_arc(core_arc.clone(), 64);
        par.set_eval_mode(EvalMode::FullSweep);
        par.set_eval_policy(netlist::EvalPolicy {
            use_pool,
            ..netlist::EvalPolicy::par_levels(threads)
        });
        let mut stimuli = [0u64; 64];
        let kind = if use_pool { "pool" } else { "par" };
        g.bench_function(format!("settle_compiled_64_lanes_{kind}{threads}"), |b| {
            b.iter(|| {
                for i in 0..EVALS {
                    for (lane, s) in stimuli.iter_mut().enumerate() {
                        *s = black_box(0x0000_0113u64 ^ ((i * 64 + lane) as u64) << 7);
                    }
                    par.set_bus_lanes("insn", &stimuli);
                    par.eval();
                    par.step();
                }
                par.cycles()
            })
        });
    }

    // Event-driven vs full-sweep evaluation. Sparse schedule: the packed
    // stimulus changes only every 8th settle (and there is no clock edge),
    // so 7 of 8 settles are fully quiescent — the low-activity shape of a
    // polling cycle loop. Dense schedule: all 64 lanes change every settle
    // plus a clock edge — the worst case for gating, where `Auto` must
    // fall back to full sweeps and stay regression-free.
    for (name, mode) in [
        ("settle_sparse_full_sweep", EvalMode::FullSweep),
        ("settle_sparse_event", EvalMode::EventDriven),
    ] {
        let mut sim = CompiledSim::with_lanes_arc(core_arc.clone(), 64);
        sim.set_eval_mode(mode);
        let mut stimuli = [0u64; 64];
        // The epoch persists across criterion iterations so every 8th
        // settle drives genuinely fresh words (an index-derived stimulus
        // would repeat byte-identically from the second iteration on and
        // the compare-before-write setters would never dirty anything).
        let mut epoch = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                for i in 0..EVALS {
                    if i % 8 == 0 {
                        epoch += 1;
                        for (lane, s) in stimuli.iter_mut().enumerate() {
                            *s = black_box(0x0000_0113u64 ^ (epoch * 64 + lane as u64) << 7);
                        }
                        sim.set_bus_lanes("insn", &stimuli);
                    }
                    sim.eval();
                }
                sim.get_bus_lane("next_pc", 0)
            })
        });
        let st = sim.eval_stats();
        eprintln!(
            "{name}: {:.1} ops/settle over {} settles ({} levels skipped, {} full sweeps)",
            st.ops_executed as f64 / st.settles as f64,
            st.settles,
            st.levels_skipped,
            st.full_sweeps,
        );
    }
    for (name, mode) in [
        ("settle_dense_full_sweep", EvalMode::FullSweep),
        ("settle_dense_auto", EvalMode::Auto),
    ] {
        let mut sim = CompiledSim::with_lanes_arc(core_arc.clone(), 64);
        sim.set_eval_mode(mode);
        let mut stimuli = [0u64; 64];
        // Persistent epoch: every settle of every iteration drives fresh
        // words (see the sparse benches above).
        let mut epoch = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                for _ in 0..EVALS {
                    epoch += 1;
                    for (lane, s) in stimuli.iter_mut().enumerate() {
                        *s = black_box(0x0000_0113u64 ^ (epoch * 64 + lane as u64) << 7);
                    }
                    sim.set_bus_lanes("insn", &stimuli);
                    sim.eval();
                    sim.step();
                }
                sim.cycles()
            })
        });
    }

    // Sharded backend: 4 shards x 64 lanes = 256 vectors per settle, the
    // whole EVALS-settle schedule batched inside one thread scope via
    // `par_shards` (shard s's lane l carries global vector s*64 + l, so
    // 1-thread and 4-thread runs do bit-identical work). Per-vector
    // throughput here is over 4x the vectors of `settle_compiled_64_lanes`.
    // `lane_words: 1` pins the historical one-sim-per-64-lanes layout —
    // the fused lane-block alternative is measured separately below.
    for threads in [1, 4] {
        let mut sharded = ShardedSim::with_policy(
            core,
            ShardPolicy {
                shards: 4,
                lanes_per_shard: 64,
                threads,
                lane_words: 1,
                ..ShardPolicy::single()
            },
        );
        g.bench_function(
            format!("settle_sharded_4x64_lanes_{threads}_threads"),
            |b| {
                b.iter(|| {
                    sharded.par_shards(|shard, sim| {
                        let mut stimuli = [0u64; 64];
                        for i in 0..EVALS {
                            for (lane, s) in stimuli.iter_mut().enumerate() {
                                let vector = (i * 256 + shard * 64 + lane) as u64;
                                *s = black_box(0x0000_0113u64 ^ vector << 7);
                            }
                            sim.set_bus_lanes("insn", &stimuli);
                            sim.eval();
                            sim.step();
                        }
                    });
                    sharded.cycles()
                })
            },
        );
    }

    // Block-sharded: the same 256 vectors per settle as the 4 x 64 rows,
    // fused into one 256-lane (K = 4) lane block — one compile, one state
    // arena, one settle walk — with the outer thread budget routed into
    // intra-shard parallel level evaluation.
    {
        let mut sharded = ShardedSim::with_policy(
            core,
            ShardPolicy {
                shards: 4,
                lanes_per_shard: 64,
                threads: 2,
                lane_words: 4,
                ..ShardPolicy::single()
            },
        );
        let mut stimuli = vec![0u64; 256];
        g.bench_function("settle_sharded_block_256_lanes", |b| {
            b.iter(|| {
                for i in 0..EVALS {
                    for (lane, s) in stimuli.iter_mut().enumerate() {
                        *s = black_box(0x0000_0113u64 ^ ((i * 256 + lane) as u64) << 7);
                    }
                    sharded.set_bus_lanes("insn", &stimuli);
                    sharded.eval();
                    sharded.step();
                }
                sharded.cycles()
            })
        });
    }

    // Work-stealing vs the deprecated static scheduler on a deliberately
    // uneven load: shard s settles (s + 1) * EVALS / 4 times, so static
    // chunking pins the heavy shards while stealing rebalances. Results
    // are bit-identical; only wall clock may differ. `lane_words: 1` keeps
    // the 8 logical shards as 8 physical shards — fused blocks would
    // change the loads the schedulers race on.
    #[allow(deprecated)] // the static row is the regression reference
    for (name, schedule) in [
        (
            "settle_uneven_8_shards_stealing",
            ShardSchedule::WorkStealing,
        ),
        ("settle_uneven_8_shards_static", ShardSchedule::Static),
    ] {
        let mut sharded = ShardedSim::with_policy_arc(
            core_arc.clone(),
            ShardPolicy {
                shards: 8,
                lanes_per_shard: 64,
                threads: 4,
                schedule,
                lane_words: 1,
                ..ShardPolicy::single()
            },
        );
        g.bench_function(name, |b| {
            b.iter(|| {
                sharded.par_shards(|shard, sim| {
                    let mut stimuli = [0u64; 64];
                    for i in 0..(shard + 1) * EVALS / 4 {
                        for (lane, s) in stimuli.iter_mut().enumerate() {
                            let vector = (i * 512 + shard * 64 + lane) as u64;
                            *s = black_box(0x0000_0113u64 ^ vector << 7);
                        }
                        sim.set_bus_lanes("insn", &stimuli);
                        sim.eval();
                        sim.step();
                    }
                });
                black_box(sharded.toggles()[0])
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
