//! Criterion bench: gate-level execution throughput of a generated RISSP.
//!
//! Measures the interpreted baseline against the compiled bit-parallel
//! backend and the multi-threaded sharded backend on the same crc32 core:
//! per-settle (scalar), with 64 stimulus lanes packed per settle, and with
//! 4 shards x 64 lanes on 1 and 4 threads — so both the `SimBackend`
//! speedup and the thread-scaling are numbers rather than assertions.
//! Per-vector throughput = settles x lanes / time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hwlib::HwLibrary;
use netlist::{CompiledSim, ShardPolicy, ShardedSim, Sim};
use rissp::{processor::GateLevelCpu, profile::InstructionSubset, Rissp};
use xcc::OptLevel;

const EVALS: usize = 200;

fn bench(c: &mut Criterion) {
    let lib = HwLibrary::build_full();
    let w = workloads::by_name("crc32").expect("crc32");
    let image = w.compile(OptLevel::O2).expect("compiles");
    let subset = InstructionSubset::from_words(&image.words);
    let rissp = Rissp::generate(&lib, &subset);
    let mut g = c.benchmark_group("gate_sim");
    g.sample_size(10);
    g.bench_function("crc32_500_cycles", |b| {
        b.iter(|| {
            let mut cpu = GateLevelCpu::new(&rissp, 0);
            cpu.load_words(0, &image.words);
            for (base, words) in &image.data_segments {
                cpu.load_words(*base, words);
            }
            let _ = cpu.run(500);
            cpu.cycles()
        })
    });

    // Same core, same stimulus schedule, three backends: the interpreted
    // match-per-gate baseline, the compiled scalar stream, and the compiled
    // stream with 64 lanes per settle (64 * EVALS vectors of work).
    let core = &rissp.core;
    let mut interpreted = Sim::new(core);
    g.bench_function("settle_interpreted", |b| {
        b.iter(|| {
            for i in 0..EVALS {
                interpreted.set_bus("insn", black_box(0x0000_0113 ^ (i as u32) << 7));
                interpreted.eval();
                interpreted.step();
            }
            interpreted.cycles()
        })
    });
    let mut compiled = CompiledSim::new(core);
    g.bench_function("settle_compiled", |b| {
        b.iter(|| {
            for i in 0..EVALS {
                compiled.set_bus("insn", black_box(0x0000_0113 ^ (i as u32) << 7));
                compiled.eval();
                compiled.step();
            }
            compiled.cycles()
        })
    });
    let mut wide = CompiledSim::with_lanes(core, 64);
    let mut stimuli = [0u64; 64];
    g.bench_function("settle_compiled_64_lanes", |b| {
        b.iter(|| {
            for i in 0..EVALS {
                for (lane, s) in stimuli.iter_mut().enumerate() {
                    *s = black_box(0x0000_0113u64 ^ ((i * 64 + lane) as u64) << 7);
                }
                wide.set_bus_lanes("insn", &stimuli);
                wide.eval();
                wide.step();
            }
            wide.cycles()
        })
    });

    // Sharded backend: 4 shards x 64 lanes = 256 vectors per settle, the
    // whole EVALS-settle schedule batched inside one thread scope via
    // `par_shards` (shard s's lane l carries global vector s*64 + l, so
    // 1-thread and 4-thread runs do bit-identical work). Per-vector
    // throughput here is over 4x the vectors of `settle_compiled_64_lanes`.
    for threads in [1, 4] {
        let mut sharded = ShardedSim::with_policy(
            core,
            ShardPolicy {
                shards: 4,
                lanes_per_shard: 64,
                threads,
            },
        );
        g.bench_function(
            format!("settle_sharded_4x64_lanes_{threads}_threads"),
            |b| {
                b.iter(|| {
                    sharded.par_shards(|shard, sim| {
                        let mut stimuli = [0u64; 64];
                        for i in 0..EVALS {
                            for (lane, s) in stimuli.iter_mut().enumerate() {
                                let vector = (i * 256 + shard * 64 + lane) as u64;
                                *s = black_box(0x0000_0113u64 ^ vector << 7);
                            }
                            sim.set_bus_lanes("insn", &stimuli);
                            sim.eval();
                            sim.step();
                        }
                    });
                    sharded.cycles()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
