//! Criterion bench: the netlist "synthesis" pass (sharing + sweep) and STA.

use criterion::{criterion_group, criterion_main, Criterion};
use flexic::{sta, tech::Tech};
use hwlib::HwLibrary;
use netlist::opt::synthesize;
use rissp::{processor::build_core, profile::InstructionSubset};

fn bench(c: &mut Criterion) {
    let lib = HwLibrary::build_full();
    let subset = InstructionSubset::from_names(["add", "addi", "beq", "jal", "lw", "sw", "sll"]);
    let unopt = build_core(&lib, &subset);
    let (opt, _) = synthesize(&unopt);
    let t = Tech::flexic_gen();
    let mut g = c.benchmark_group("synthesis");
    g.sample_size(10);
    g.bench_function("synthesize_core", |b| b.iter(|| synthesize(&unopt)));
    g.bench_function("static_timing_analysis", |b| {
        b.iter(|| sta::critical_path_ns(&opt, &t))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
