//! Criterion bench: macro synthesis + verification throughput (Section 5).

use criterion::{criterion_group, criterion_main, Criterion};
use retarget::{minimal_subset, Retargeter};
use riscv_isa::asm;

fn bench(c: &mut Criterion) {
    let items = asm::parse(
        "sub x7, x8, x9\nor x7, x8, x9\nxor x7, x8, x9\nslt x5, x8, x9\nhalt: jal x0, halt",
    )
    .unwrap();
    let mut g = c.benchmark_group("retargeting");
    g.sample_size(10);
    g.bench_function("alu_block", |b| {
        b.iter(|| {
            let mut tool = Retargeter::new(minimal_subset(), 77);
            tool.retarget(&items).expect("retargets")
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
