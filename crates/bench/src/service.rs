//! YCSB-style load-mix harness for the simulation service.
//!
//! The simulation stack behaves like a small service: clients submit jobs
//! (verify this core, evaluate that mutant) and the runtime answers them
//! out of two shared resources — the process-wide
//! [`netlist::ProgramCache`] (compiled programs keyed by netlist content)
//! and the multi-job worker pool (concurrent submissions claim disjoint
//! worker subsets). This module measures that service under the classic
//! YCSB load mixes:
//!
//! * a **read** is a functional verify of a library core — the netlist
//!   content is already cached, so the op reuses the compiled program and
//!   only pays for stimulus evaluation;
//! * an **update** is a fresh mutant — previously unseen netlist content,
//!   so the op pays a full compile (a cache miss) before evaluating.
//!
//! [`ServiceMix::builder`] mirrors YCSB's `Workload::builder()`
//! proportions API: `read_proportion(0.95).update_proportion(0.05)` is
//! workload B (read-heavy), `0.5/0.5` is workload A (update-heavy), and
//! so on. [`run_service`] drives the chosen mix from several concurrent
//! submitter threads — each op submits pool jobs, so independent
//! submissions exercise the job-table admission path — and reports
//! jobs/sec plus the cache-hit profile.

use hwlib::mutate::{mutants_of, Mutant};
use hwlib::verify::functional_verify_arc;
use hwlib::{HwLibrary, InstrBlock};
use netlist::{CacheStats, CompiledSim, EvalPolicy, ProgramCache, ShardPolicy};
use std::sync::Arc;
use std::time::Instant;

/// A YCSB-style operation mix: what fraction of service ops are reads
/// (verify a cached core) vs updates (compile + evaluate a fresh mutant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceMix {
    read: f64,
    update: f64,
}

impl ServiceMix {
    /// Starts a proportions builder (the YCSB `Workload::builder()` idiom).
    pub fn builder() -> ServiceMixBuilder {
        ServiceMixBuilder {
            read: 0.0,
            update: 0.0,
        }
    }

    /// YCSB workload B: 95% reads, 5% updates.
    pub fn read_heavy() -> ServiceMix {
        ServiceMix::builder()
            .read_proportion(0.95)
            .update_proportion(0.05)
            .build()
    }

    /// The inverse of [`ServiceMix::read_heavy`]: 5% reads, 95% updates —
    /// almost every op compiles fresh netlist content.
    pub fn write_heavy() -> ServiceMix {
        ServiceMix::builder()
            .read_proportion(0.05)
            .update_proportion(0.95)
            .build()
    }

    /// YCSB workload A: 50% reads, 50% updates.
    pub fn mixed() -> ServiceMix {
        ServiceMix::builder()
            .read_proportion(0.5)
            .update_proportion(0.5)
            .build()
    }
}

/// Builder for [`ServiceMix`]; proportions must sum to 1.
#[derive(Debug, Clone, Copy)]
pub struct ServiceMixBuilder {
    read: f64,
    update: f64,
}

impl ServiceMixBuilder {
    /// Sets the fraction of ops that verify an already-cached core.
    pub fn read_proportion(mut self, p: f64) -> ServiceMixBuilder {
        self.read = p;
        self
    }

    /// Sets the fraction of ops that compile + evaluate a fresh mutant.
    pub fn update_proportion(mut self, p: f64) -> ServiceMixBuilder {
        self.update = p;
        self
    }

    /// Finalizes the mix.
    ///
    /// # Panics
    ///
    /// Panics unless the proportions are non-negative and sum to 1
    /// (within floating-point slack) — a silently renormalized mix would
    /// make two differently-buggy call sites measure different workloads
    /// under the same name.
    pub fn build(self) -> ServiceMix {
        assert!(
            self.read >= 0.0 && self.update >= 0.0,
            "proportions must be non-negative"
        );
        assert!(
            (self.read + self.update - 1.0).abs() < 1e-9,
            "proportions must sum to 1 (read {} + update {})",
            self.read,
            self.update
        );
        ServiceMix {
            read: self.read,
            update: self.update,
        }
    }
}

/// One service load-mix run's shape.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// The read/update proportions.
    pub mix: ServiceMix,
    /// Concurrent submitter threads (each is an independent service
    /// client; > 1 exercises multi-job pool admission).
    pub submitters: usize,
    /// Ops issued per submitter.
    pub ops_per_submitter: usize,
    /// Worker threads per job's shard policy. At >= 2 every op submits a
    /// real pool job, so concurrent submitters contend on the job table
    /// rather than on a serializing submit lock.
    pub threads: usize,
    /// Seed for the deterministic per-submitter op sequence.
    pub seed: u64,
}

/// What a load-mix run measured.
#[derive(Debug, Clone, Copy)]
pub struct ServiceReport {
    /// Total ops completed (`submitters * ops_per_submitter`).
    pub jobs: u64,
    /// Reads among them.
    pub reads: u64,
    /// Updates among them.
    pub updates: u64,
    /// Wall-clock seconds for the whole mix.
    pub secs: f64,
    /// `jobs / secs`.
    pub jobs_per_sec: f64,
    /// Program-cache activity attributable to this run (counter deltas
    /// against [`ProgramCache::global`]; `entries` is the absolute
    /// post-run table size).
    pub cache: CacheStats,
}

/// Splitmix64: a tiny deterministic stream for op selection, so a mix's
/// read/update schedule depends only on the seed — never on thread
/// timing.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A read op: functionally verify one library core. The core's netlist
/// content is warm in the program cache, so the op's compile is a hit and
/// the cost is the stimulus sweep (which runs as a pool job when
/// `threads > 1`).
fn read_op(block: &InstrBlock, policy: ShardPolicy) {
    functional_verify_arc(block.mnemonic, Arc::new(block.netlist.clone()), policy)
        .expect("library cores verify");
}

/// An update op: evaluate a fresh single-gate mutant of a library core.
/// The mutant's netlist content has never been seen, so the op pays a
/// full compile (a cache miss) before sweeping a handful of stimuli.
fn update_op(mutant: &Mutant, threads: usize, rng: &mut u64) {
    let mut sim = CompiledSim::with_lanes_arc(Arc::new(mutant.netlist.clone()), 64);
    if threads > 1 {
        sim.set_eval_policy(EvalPolicy {
            threads,
            min_par_ops: 1,
            ..EvalPolicy::seq()
        });
    }
    let mut checksum = 0u64;
    for _ in 0..4 {
        sim.set_bus("insn", splitmix(rng) as u32);
        sim.set_bus("rs1_data", splitmix(rng) as u32);
        sim.set_bus("rs2_data", splitmix(rng) as u32);
        sim.eval();
        checksum ^= sim.get_bus_lane("rd_data", 0);
    }
    std::hint::black_box(checksum);
}

/// Runs one YCSB-style load mix against the simulation service and
/// reports jobs/sec plus the run's program-cache deltas.
///
/// Every submitter thread issues `cfg.ops_per_submitter` ops drawn
/// deterministically from `cfg.mix`; reads rotate over the library's
/// cores, updates walk a per-submitter pool of pre-generated mutants
/// (each mutant is distinct content, so each first evaluation is a
/// genuine compile). The library's cores are warmed into the cache before
/// the clock starts — the read path measures the steady cached state, not
/// the first-touch compiles.
pub fn run_service(lib: &HwLibrary, cfg: &ServiceConfig) -> ServiceReport {
    assert!(cfg.submitters >= 1 && cfg.ops_per_submitter >= 1);
    let blocks: Vec<&InstrBlock> = lib.iter().collect();
    let policy = if cfg.threads > 1 {
        ShardPolicy {
            shards: cfg.threads,
            lanes_per_shard: 2,
            threads: cfg.threads,
            ..ShardPolicy::single()
        }
    } else {
        ShardPolicy::single()
    };

    // Pre-plan each submitter's op sequence outside the timed region.
    let mut plans: Vec<(Vec<bool>, Vec<Mutant>, u64)> = (0..cfg.submitters)
        .map(|s| {
            let mut rng = cfg.seed ^ (s as u64).wrapping_mul(0xa076_1d64_78bd_642f);
            let ops: Vec<bool> = (0..cfg.ops_per_submitter)
                .map(|_| (splitmix(&mut rng) >> 11) as f64 / (1u64 << 53) as f64 >= cfg.mix.read)
                .collect();
            (ops, Vec::new(), rng)
        })
        .collect();
    // The update budget is known up front, so the mutant pool is sized to
    // never wrap (a wrapped mutant would be a cache hit and quietly fake
    // the write-heavy profile). One *global* enumeration keeps every
    // mutant distinct: within a block, `mutants_of` samples without
    // replacement; across blocks, the underlying logic differs — so no
    // two update ops (on any submitter) ever present the same content.
    let total_updates: usize = plans
        .iter()
        .map(|(ops, ..)| ops.iter().filter(|&&u| u).count())
        .sum();
    let per_block = total_updates.div_ceil(blocks.len().max(1));
    let mut pool: Vec<Mutant> = blocks
        .iter()
        .flat_map(|b| mutants_of(b, per_block, cfg.seed))
        .collect();
    assert!(
        pool.len() >= total_updates,
        "mutant enumeration exhausted: {} < {total_updates}",
        pool.len()
    );
    pool.truncate(total_updates);
    for (ops, mutants, _) in plans.iter_mut() {
        let updates = ops.iter().filter(|&&u| u).count();
        *mutants = pool.drain(..updates).collect();
    }

    // Warm the library cores so reads measure the cached steady state.
    for block in &blocks {
        drop(CompiledSim::new_arc(Arc::new(block.netlist.clone())));
    }

    let before = ProgramCache::global().stats();
    let start = Instant::now();
    std::thread::scope(|scope| {
        let blocks = &blocks;
        let policy = &policy;
        for (ops, mutants, seed) in &plans {
            scope.spawn(move || {
                let mut rng = *seed;
                let mut next_read = 0usize;
                let mut next_update = 0usize;
                for &is_update in ops {
                    if is_update {
                        update_op(&mutants[next_update], cfg.threads, &mut rng);
                        next_update += 1;
                    } else {
                        read_op(blocks[next_read % blocks.len()], *policy);
                        next_read += 1;
                    }
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let after = ProgramCache::global().stats();

    let jobs = (cfg.submitters * cfg.ops_per_submitter) as u64;
    let updates: u64 = plans
        .iter()
        .map(|(ops, ..)| ops.iter().filter(|&&u| u).count() as u64)
        .sum();
    ServiceReport {
        jobs,
        reads: jobs - updates,
        updates,
        secs,
        jobs_per_sec: jobs as f64 / secs,
        cache: CacheStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            evictions: after.evictions - before.evictions,
            bypasses: after.bypasses - before.bypasses,
            entries: after.entries,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportions_must_sum_to_one() {
        let m = ServiceMix::builder()
            .read_proportion(0.75)
            .update_proportion(0.25)
            .build();
        assert!((m.read - 0.75).abs() < 1e-12);
        assert!(
            std::panic::catch_unwind(|| ServiceMix::builder().read_proportion(0.9).build())
                .is_err(),
            "0.9 + 0.0 must be rejected"
        );
    }

    #[test]
    fn canned_mixes_have_the_ycsb_shapes() {
        assert!(ServiceMix::read_heavy().read > ServiceMix::read_heavy().update);
        assert!(ServiceMix::write_heavy().update > ServiceMix::write_heavy().read);
        assert_eq!(ServiceMix::mixed().read, ServiceMix::mixed().update);
    }

    #[test]
    fn a_small_mix_completes_and_accounts_every_op() {
        let lib = HwLibrary::build_full();
        let cfg = ServiceConfig {
            mix: ServiceMix::mixed(),
            submitters: 2,
            ops_per_submitter: 6,
            threads: 2,
            seed: 0x5e41_11ce,
        };
        let report = run_service(&lib, &cfg);
        assert_eq!(report.jobs, 12);
        assert_eq!(report.reads + report.updates, report.jobs);
        assert!(report.jobs_per_sec > 0.0);
        // The op schedule is seeded, so the split is reproducible.
        let again = run_service(&lib, &cfg);
        assert_eq!((again.reads, again.updates), (report.reads, report.updates));
        if netlist::env::program_cache_enabled() {
            // Every read verifies a pre-warmed core: at least the reads'
            // compiles must have been hits.
            assert!(
                report.cache.hits >= report.reads,
                "reads on warmed cores must hit the cache: {:?}",
                report.cache
            );
        }
    }
}
