//! Shared harness for regenerating every table and figure of the paper.
//!
//! Each `src/bin/figN.rs` / `src/bin/tableN.rs` binary prints the rows of
//! the corresponding exhibit; this library holds the common pipeline:
//! compile workload → extract subset → generate RISSP → measure activity on
//! the gate-level core → run the FlexIC flow.  See `EXPERIMENTS.md` at the
//! repository root for paper-vs-measured values.

pub mod service;

use flexic::tech::Tech;
use flexic::DesignMetrics;
use hwlib::HwLibrary;
use netlist::compiled::{EvalPolicy, MAX_TOTAL_LANES};
use netlist::stats::GateCounts;
use rissp::processor::{BatchedGateLevelCpu, GateLevelCpu};
use rissp::profile::InstructionSubset;
use rissp::Rissp;
use serv_model::{serv_gate_counts, ServTiming, SERV_ACTIVITY, SERV_CRITICAL_PATH_NS};
use workloads::Workload;
use xcc::OptLevel;

/// Gate-level simulation window used for switching-activity measurement.
pub const ACTIVITY_CYCLES: u64 = 1500;

/// Minimum ops a level needs before the characterisation harness lets
/// `EvalPolicy` split it across worker threads: the per-settle thread
/// scope plus per-level barriers cost ~0.5–1 ms, so chunking only pays
/// for levels tens of thousands of ops wide (the compiled sweep runs
/// ~400 Mops/s single-threaded).
pub const PAR_LEVEL_BREAK_EVEN_OPS: usize = 50_000;

/// Parses a `--threads N` (or `--threads=N`) knob from the process
/// arguments; defaults to 1 so the figure binaries stay single-threaded
/// unless asked. Thread counts only change wall-clock time, never results
/// — characterisation is deterministic per workload. An explicit but
/// unusable value (not a number, or zero) aborts instead of silently
/// running single-threaded.
pub fn threads_from_args() -> usize {
    let parse = |v: &str| -> usize {
        match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: `--threads {v}` is not a positive integer");
                std::process::exit(2);
            }
        }
    };
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            let Some(v) = args.next() else {
                eprintln!("error: `--threads` needs a value");
                std::process::exit(2);
            };
            return parse(&v);
        }
        if let Some(v) = a.strip_prefix("--threads=") {
            return parse(v);
        }
    }
    1
}

/// A fully characterised design: the RISSP plus its FlexIC metrics.
pub struct CharacterisedDesign {
    /// `RISSP-<app>` or a baseline name.
    pub name: String,
    /// Number of distinct instructions supported.
    pub distinct: usize,
    /// The analysis-ready metrics.
    pub metrics: DesignMetrics,
}

/// Builds the RISSP for one workload (compiled at `-O2`, as §4.2 fixes) and
/// measures its switching activity by running the actual application
/// through the gates for [`ACTIVITY_CYCLES`] cycles.
pub fn characterise_workload(lib: &HwLibrary, w: &Workload, t: &Tech) -> CharacterisedDesign {
    let image = w.compile(OptLevel::O2).expect("workload compiles");
    let subset = InstructionSubset::from_words(&image.words);
    let rissp = Rissp::generate(lib, &subset);
    let mut cpu = GateLevelCpu::new(&rissp, 0);
    cpu.load_words(0, &image.words);
    for (base, words) in &image.data_segments {
        cpu.load_words(*base, words);
    }
    let _ = cpu.run(ACTIVITY_CYCLES);
    let activity = flexic::power::measured_activity(cpu.sim());
    CharacterisedDesign {
        name: format!("RISSP-{}", w.name),
        distinct: subset.len(),
        metrics: DesignMetrics::of_netlist(format!("RISSP-{}", w.name), &rissp.core, t, activity),
    }
}

/// Builds the `RISSP-RV32E` full-ISA baseline. Its activity is measured by
/// one batched gate-level run: the full evaluation suite executes on a
/// single lane-parallel core simulation (up to 512 lanes as a K-word lane
/// block), one workload per lane with per-lane
/// memory and register-file models. The α is normalised by the *committed*
/// cycle total (lanes that halt early stop contributing both toggles and
/// cycles), so it is the cycle-weighted average of the per-workload scalar
/// α values — methodologically identical to [`characterise_workload`],
/// just over the whole suite instead of one representative workload.
///
/// `threads > 1` settles the shared core with parallel level evaluation
/// (`EvalPolicy::par_levels`); the measured activity is bit-identical for
/// every thread count — the batched run cannot be split over workloads the
/// way [`characterise_workloads`] splits, because all lanes share one
/// simulation, so intra-netlist parallelism is the axis that applies here.
pub fn characterise_rv32e(lib: &HwLibrary, t: &Tech, threads: usize) -> CharacterisedDesign {
    let rissp = Rissp::generate_full_isa(lib);
    let suite = workloads::all();
    assert!(
        suite.len() <= MAX_TOTAL_LANES,
        "evaluation suite ({} workloads) no longer fits one {MAX_TOTAL_LANES}-lane batch — chunk it",
        suite.len()
    );
    let images: Vec<_> = suite
        .iter()
        .map(|w| w.compile(OptLevel::O2).expect("workload compiles"))
        .collect();
    let entries = vec![0u32; images.len()];
    let mut cpu = BatchedGateLevelCpu::new(&rissp, &entries);
    if threads > 1 {
        // Raised split threshold: par-level workers only engage when a
        // level is wide enough that the chunked sweep can plausibly beat
        // the per-level barrier handshakes. The RV32E core's levels are
        // far below this, so today the policy resolves to a sequential
        // settle — the knob is plumbed through for the large-netlist
        // regime it targets, without silently slowing the small-core
        // case. (Settles run on the persistent worker pool, so the old
        // per-settle thread::scope spawn tax is gone either way.)
        cpu.set_eval_policy(EvalPolicy {
            threads,
            min_par_ops: PAR_LEVEL_BREAK_EVEN_OPS,
            ..EvalPolicy::seq()
        });
    }
    for (lane, image) in images.iter().enumerate() {
        cpu.load_words(lane, 0, &image.words);
        for (base, words) in &image.data_segments {
            cpu.load_words(lane, *base, words);
        }
    }
    let _ = cpu.run(ACTIVITY_CYCLES);
    let activity = flexic::power::activity_from_counts(
        cpu.sim().toggles().iter().sum(),
        cpu.sim().toggles().len(),
        cpu.committed_cycles(),
        1,
    );
    CharacterisedDesign {
        name: "RISSP-RV32E".into(),
        distinct: riscv_isa::ALL_MNEMONICS.len(),
        metrics: DesignMetrics::of_netlist("RISSP-RV32E", &rissp.core, t, activity),
    }
}

/// Characterises several workloads, splitting them over `threads` scoped
/// threads (each workload's RISSP generation and gate-level activity run
/// is independent). Results are returned in input order and are identical
/// for every thread count — the knob only changes wall-clock time.
pub fn characterise_workloads(
    lib: &HwLibrary,
    ws: &[Workload],
    t: &Tech,
    threads: usize,
) -> Vec<CharacterisedDesign> {
    let threads = threads.clamp(1, ws.len().max(1));
    if threads <= 1 {
        return ws
            .iter()
            .map(|w| characterise_workload(lib, w, t))
            .collect();
    }
    let chunk = ws.len().div_ceil(threads);
    let mut results = Vec::with_capacity(ws.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ws
            .chunks(chunk)
            .map(|group| {
                scope.spawn(move || {
                    group
                        .iter()
                        .map(|w| characterise_workload(lib, w, t))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        // Join in spawn order: output order matches input order.
        for h in handles {
            results.extend(h.join().expect("characterisation thread panicked"));
        }
    });
    results
}

/// Builds the Serv baseline's metrics; its CPI is measured by running the
/// given workload through the bit-serial cycle model.
pub fn characterise_serv(cpi_workload: &Workload) -> CharacterisedDesign {
    let image = cpi_workload.compile(OptLevel::O2).expect("compiles");
    let cpi = ServTiming.measure_cpi(&image.words, &image.data_segments);
    CharacterisedDesign {
        name: "Serv".into(),
        distinct: riscv_isa::ALL_MNEMONICS.len(),
        metrics: DesignMetrics {
            name: "Serv".into(),
            counts: serv_gate_counts(),
            critical_path_ns: SERV_CRITICAL_PATH_NS,
            activity: SERV_ACTIVITY,
            cpi,
        },
    }
}

/// Counts the distinct instructions of a compiled image.
pub fn distinct_of(words: &[u32]) -> InstructionSubset {
    InstructionSubset::from_words(words)
}

/// Gate counts of a RISSP core.
pub fn counts_of(rissp: &Rissp) -> GateCounts {
    GateCounts::of(&rissp.core)
}

/// Prints a standard experiment header.
pub fn header(title: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}
