//! Shared harness for regenerating every table and figure of the paper.
//!
//! Each `src/bin/figN.rs` / `src/bin/tableN.rs` binary prints the rows of
//! the corresponding exhibit; this library holds the common pipeline:
//! compile workload → extract subset → generate RISSP → measure activity on
//! the gate-level core → run the FlexIC flow.  See `EXPERIMENTS.md` at the
//! repository root for paper-vs-measured values.

use flexic::tech::Tech;
use flexic::DesignMetrics;
use hwlib::HwLibrary;
use netlist::stats::GateCounts;
use rissp::processor::GateLevelCpu;
use rissp::profile::InstructionSubset;
use rissp::Rissp;
use serv_model::{serv_gate_counts, ServTiming, SERV_ACTIVITY, SERV_CRITICAL_PATH_NS};
use workloads::Workload;
use xcc::OptLevel;

/// Gate-level simulation window used for switching-activity measurement.
pub const ACTIVITY_CYCLES: u64 = 1500;

/// A fully characterised design: the RISSP plus its FlexIC metrics.
pub struct CharacterisedDesign {
    /// `RISSP-<app>` or a baseline name.
    pub name: String,
    /// Number of distinct instructions supported.
    pub distinct: usize,
    /// The analysis-ready metrics.
    pub metrics: DesignMetrics,
}

/// Builds the RISSP for one workload (compiled at `-O2`, as §4.2 fixes) and
/// measures its switching activity by running the actual application
/// through the gates for [`ACTIVITY_CYCLES`] cycles.
pub fn characterise_workload(lib: &HwLibrary, w: &Workload, t: &Tech) -> CharacterisedDesign {
    let image = w.compile(OptLevel::O2).expect("workload compiles");
    let subset = InstructionSubset::from_words(&image.words);
    let rissp = Rissp::generate(lib, &subset);
    let mut cpu = GateLevelCpu::new(&rissp, 0);
    cpu.load_words(0, &image.words);
    for (base, words) in &image.data_segments {
        cpu.load_words(*base, words);
    }
    let _ = cpu.run(ACTIVITY_CYCLES);
    let activity = flexic::power::measured_activity(cpu.sim());
    CharacterisedDesign {
        name: format!("RISSP-{}", w.name),
        distinct: subset.len(),
        metrics: DesignMetrics::of_netlist(format!("RISSP-{}", w.name), &rissp.core, t, activity),
    }
}

/// Builds the `RISSP-RV32E` full-ISA baseline, exercised with a generic
/// mixed workload for activity.
pub fn characterise_rv32e(lib: &HwLibrary, t: &Tech) -> CharacterisedDesign {
    let rissp = Rissp::generate_full_isa(lib);
    // Activity from a representative workload (crc32 exercises the core).
    let w = workloads::by_name("crc32").expect("crc32 exists");
    let image = w.compile(OptLevel::O2).expect("compiles");
    let mut cpu = GateLevelCpu::new(&rissp, 0);
    cpu.load_words(0, &image.words);
    for (base, words) in &image.data_segments {
        cpu.load_words(*base, words);
    }
    let _ = cpu.run(ACTIVITY_CYCLES);
    let activity = flexic::power::measured_activity(cpu.sim());
    CharacterisedDesign {
        name: "RISSP-RV32E".into(),
        distinct: riscv_isa::ALL_MNEMONICS.len(),
        metrics: DesignMetrics::of_netlist("RISSP-RV32E", &rissp.core, t, activity),
    }
}

/// Builds the Serv baseline's metrics; its CPI is measured by running the
/// given workload through the bit-serial cycle model.
pub fn characterise_serv(cpi_workload: &Workload) -> CharacterisedDesign {
    let image = cpi_workload.compile(OptLevel::O2).expect("compiles");
    let cpi = ServTiming.measure_cpi(&image.words, &image.data_segments);
    CharacterisedDesign {
        name: "Serv".into(),
        distinct: riscv_isa::ALL_MNEMONICS.len(),
        metrics: DesignMetrics {
            name: "Serv".into(),
            counts: serv_gate_counts(),
            critical_path_ns: SERV_CRITICAL_PATH_NS,
            activity: SERV_ACTIVITY,
            cpi,
        },
    }
}

/// Counts the distinct instructions of a compiled image.
pub fn distinct_of(words: &[u32]) -> InstructionSubset {
    InstructionSubset::from_words(words)
}

/// Gate counts of a RISSP core.
pub fn counts_of(rissp: &Rissp) -> GateCounts {
    GateCounts::of(&rissp.core)
}

/// Prints a standard experiment header.
pub fn header(title: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}
