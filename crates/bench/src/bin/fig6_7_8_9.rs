//! Figures 6–9: maximum frequency, sweep-averaged NAND2 area, sweep-averaged
//! power, and energy per instruction for all 25 RISSPs and both baselines
//! (RISSP-RV32E, Serv).
//!
//! One binary regenerates all four figures because they share the expensive
//! pipeline (RISSP generation + gate-level activity measurement + sweep).
//! Pass `--threads N` to characterise the 25 workloads on N threads and
//! settle the RV32E baseline's batched run with N-way parallel level
//! evaluation (the numbers are identical for every thread count).

use bench::{
    characterise_rv32e, characterise_serv, characterise_workloads, header, threads_from_args,
};
use flexic::sweep::{energy_per_instruction_nj, frequency_sweep};
use flexic::tech::Tech;
use hwlib::HwLibrary;

fn main() {
    header("Figures 6–9 — fmax, average area, average power, energy per instruction");
    let t = Tech::flexic_gen();
    let lib = HwLibrary::build_full();
    let threads = threads_from_args();

    println!(
        "{:<22} {:>4} {:>10} {:>12} {:>11} {:>8} {:>10}",
        "design", "#ins", "fmax(kHz)", "area(NAND2)", "power(mW)", "CPI", "EPI(nJ)"
    );

    let mut risp_results = Vec::new();
    for d in characterise_workloads(&lib, &workloads::all(), &t, threads) {
        let sweep = frequency_sweep(&d.metrics);
        let epi = energy_per_instruction_nj(&d.metrics, &sweep);
        println!(
            "{:<22} {:>4} {:>10} {:>12.0} {:>11.3} {:>8.1} {:>10.3}",
            d.name,
            d.distinct,
            sweep.fmax_khz,
            sweep.avg_area_nand2,
            sweep.avg_power_mw,
            d.metrics.cpi,
            epi
        );
        risp_results.push((d, sweep, epi));
    }

    let rv32e = characterise_rv32e(&lib, &t, threads);
    let rv32e_sweep = frequency_sweep(&rv32e.metrics);
    let rv32e_epi = energy_per_instruction_nj(&rv32e.metrics, &rv32e_sweep);
    println!(
        "{:<22} {:>4} {:>10} {:>12.0} {:>11.3} {:>8.1} {:>10.3}",
        rv32e.name,
        rv32e.distinct,
        rv32e_sweep.fmax_khz,
        rv32e_sweep.avg_area_nand2,
        rv32e_sweep.avg_power_mw,
        rv32e.metrics.cpi,
        rv32e_epi
    );

    let serv = characterise_serv(&workloads::by_name("crc32").expect("crc32"));
    let serv_sweep = frequency_sweep(&serv.metrics);
    let serv_epi = energy_per_instruction_nj(&serv.metrics, &serv_sweep);
    println!(
        "{:<22} {:>4} {:>10} {:>12.0} {:>11.3} {:>8.1} {:>10.3}",
        serv.name,
        serv.distinct,
        serv_sweep.fmax_khz,
        serv_sweep.avg_area_nand2,
        serv_sweep.avg_power_mw,
        serv.metrics.cpi,
        serv_epi
    );

    println!();
    println!("summary vs paper:");
    let areas: Vec<f64> = risp_results
        .iter()
        .map(|(_, s, _)| s.avg_area_nand2)
        .collect();
    let powers: Vec<f64> = risp_results
        .iter()
        .map(|(_, s, _)| s.avg_power_mw)
        .collect();
    let area_red_min =
        100.0 * (1.0 - areas.iter().cloned().fold(f64::MIN, f64::max) / rv32e_sweep.avg_area_nand2);
    let area_red_max =
        100.0 * (1.0 - areas.iter().cloned().fold(f64::MAX, f64::min) / rv32e_sweep.avg_area_nand2);
    let pow_red_min =
        100.0 * (1.0 - powers.iter().cloned().fold(f64::MIN, f64::max) / rv32e_sweep.avg_power_mw);
    let pow_red_max =
        100.0 * (1.0 - powers.iter().cloned().fold(f64::MAX, f64::min) / rv32e_sweep.avg_power_mw);
    println!(
        "  Fig 7: RISSP area reduction vs RV32E: {area_red_min:.0}%–{area_red_max:.0}%  (paper: 8–43 %)"
    );
    println!(
        "  Fig 8: RISSP power reduction vs RV32E: {pow_red_min:.0}%–{pow_red_max:.0}%  (paper: 3–30 %)"
    );
    println!(
        "  Fig 8: Serv power / RV32E power: {:.2}×  (paper: ≈1.4×)",
        serv_sweep.avg_power_mw / rv32e_sweep.avg_power_mw
    );
    let mean_risp_epi: f64 =
        risp_results.iter().map(|(_, _, e)| *e).sum::<f64>() / risp_results.len() as f64;
    println!(
        "  Fig 9: Serv EPI / mean RISSP EPI: {:.0}×  (paper: ≈40×);  Serv EPI / RV32E EPI: {:.0}× (paper: ≈35×)",
        serv_epi / mean_risp_epi,
        serv_epi / rv32e_epi
    );
    println!(
        "  Fig 6: RISSP fmax range {}–{} kHz; RV32E {} kHz; Serv {} kHz  (paper: 1500–1850 / ≤1700 / 2050)",
        risp_results.iter().map(|(_, s, _)| s.fmax_khz).min().unwrap_or(0),
        risp_results.iter().map(|(_, s, _)| s.fmax_khz).max().unwrap_or(0),
        rv32e_sweep.fmax_khz,
        serv_sweep.fmax_khz
    );
}
