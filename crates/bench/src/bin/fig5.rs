//! Figure 5: code size (KiB) and distinct-instruction counts for all 25
//! applications across `-O0/-O1/-O2/-O3/-Oz`, plus the §4.1 summary
//! statistics (9–32 distinct instructions; 24–86 % of the ISA; average
//! static instruction counts per flag).

use bench::{distinct_of, header};
use riscv_isa::ALL_MNEMONICS;
use xcc::OptLevel;

fn main() {
    header("Figure 5 — instruction profiling across compiler optimisation flags");
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9}   {:>3} {:>3} {:>3} {:>3} {:>3}",
        "app", "-O0(KiB)", "-O1", "-O2", "-O3", "-Oz", "d0", "d1", "d2", "d3", "dz"
    );
    let mut static_sums = [0usize; 5];
    let mut distinct_min = usize::MAX;
    let mut distinct_max = 0usize;
    let mut distinct_sum = 0usize;
    let mut distinct_n = 0usize;
    let apps = workloads::all();
    for w in &apps {
        let mut sizes = Vec::new();
        let mut distinct = Vec::new();
        for (i, level) in OptLevel::ALL.iter().enumerate() {
            let image = w.compile(*level).expect("compiles");
            sizes.push(image.code_bytes() as f64 / 1024.0);
            let d = distinct_of(&image.words).len();
            distinct.push(d);
            static_sums[i] += image.words.len();
            distinct_min = distinct_min.min(d);
            distinct_max = distinct_max.max(d);
            distinct_sum += d;
            distinct_n += 1;
        }
        println!(
            "{:<16} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}   {:>3} {:>3} {:>3} {:>3} {:>3}",
            w.name,
            sizes[0],
            sizes[1],
            sizes[2],
            sizes[3],
            sizes[4],
            distinct[0],
            distinct[1],
            distinct[2],
            distinct[3],
            distinct[4]
        );
    }
    println!();
    println!("summary (§4.1):");
    println!(
        "  distinct instructions: min {} / max {} / mean {:.1}  (paper: 9–32, mean ≈19)",
        distinct_min,
        distinct_max,
        distinct_sum as f64 / distinct_n as f64
    );
    println!(
        "  ISA coverage: {:.0}%–{:.0}% of {} instructions (paper: 24–86 %)",
        100.0 * distinct_min as f64 / ALL_MNEMONICS.len() as f64,
        100.0 * distinct_max as f64 / ALL_MNEMONICS.len() as f64,
        ALL_MNEMONICS.len()
    );
    let n = apps.len();
    println!(
        "  average static instructions: O0 {} / O1 {} / O2 {} / O3 {} / Oz {}  (paper: 2027/1149/1207/1586/1018)",
        static_sums[0] / n,
        static_sums[1] / n,
        static_sums[2] / n,
        static_sums[3] / n,
        static_sums[4] / n
    );
}
