//! Campaign driver: mass mutation coverage, differential fuzzing, and
//! compliance sweeps from one CLI entry point.
//!
//! ```text
//! campaign smoke                      # bounded CI sweep: all three runners, pinned seeds
//! campaign mutation [--limit N] [--seed S] [--lanes L] [--threads T]
//!                   [--checkpoint PATH [--resume] [--max-chunks N]]
//! campaign fuzz [--iterations N] [--seed S] [--lanes L] [--opt 0..4] [--max-cycles N]
//!               [--checkpoint PATH [--resume] [--max-waves N]]
//! campaign compliance
//! ```
//!
//! Every runner is seeded and deterministic; see `docs/campaigns.md` for
//! the campaign semantics (lane↔mutant mapping, divergence contract,
//! seed pinning, checkpoint formats). The exit status distinguishes the
//! ways a run can stop:
//!
//! | code | meaning |
//! | --- | --- |
//! | 0 | campaign ran to completion and the verdict passed |
//! | 1 | campaign ran to completion and the verdict **failed** (survivors / divergences / mismatches) |
//! | 2 | usage error (bad flags) |
//! | 3 | runtime error (unreadable/corrupt/mismatched checkpoint, persistence failure) |
//! | 4 | interrupted by `--max-chunks`/`--max-waves` with progress checkpointed |
//!
//! `--checkpoint PATH` persists chunk-/wave-grained progress atomically
//! after every unit of work; `--resume` picks an existing checkpoint
//! back up (a checkpoint written under different campaign knobs is a
//! runtime error, never a silent restart). A resumed campaign's report
//! is bit-identical to an uninterrupted one.

use hwlib::campaign::{
    library_mutation_coverage, library_mutation_coverage_checkpointed, BlockCoverage,
    CampaignConfig, MutationCheckpoint, SweepOutcome,
};
use hwlib::HwLibrary;
use rissp::campaign::{
    compliance_corpus, compliance_sweep, differential_fuzz, differential_fuzz_resumable,
    FuzzCheckpoint, FuzzConfig, FuzzOutcome, FuzzReport,
};
use std::path::PathBuf;
use std::time::Instant;
use xcc::OptLevel;

/// Verdict passed.
const EXIT_PASS: i32 = 0;
/// Verdict failed (survivors, divergences, or compliance mismatches).
const EXIT_VERDICT: i32 = 1;
/// Usage error.
const EXIT_USAGE: i32 = 2;
/// Runtime error (checkpoint load/save/mismatch).
const EXIT_RUNTIME: i32 = 3;
/// Interrupted by a work budget, progress checkpointed.
const EXIT_INTERRUPTED: i32 = 4;

fn usage() -> ! {
    eprintln!(
        "usage: campaign smoke\n\
         \x20      campaign mutation [--limit N] [--seed S] [--lanes L] [--threads T]\n\
         \x20                        [--checkpoint PATH [--resume] [--max-chunks N]]\n\
         \x20      campaign fuzz [--iterations N] [--seed S] [--lanes L] [--opt 0..4] [--max-cycles N]\n\
         \x20                    [--checkpoint PATH [--resume] [--max-waves N]]\n\
         \x20      campaign compliance"
    );
    std::process::exit(EXIT_USAGE);
}

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>) -> T {
    args.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage())
}

/// Checkpoint-related flags shared by `mutation` and `fuzz`.
#[derive(Default)]
struct CheckpointOpts {
    path: Option<PathBuf>,
    resume: bool,
    budget: Option<usize>,
}

impl CheckpointOpts {
    /// `--resume` / budget flags without `--checkpoint` are usage errors:
    /// an interruption without persistence would just discard work.
    fn validate(&self) {
        if self.path.is_none() && (self.resume || self.budget.is_some()) {
            usage();
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let code = match args.next().as_deref() {
        Some("smoke") => smoke(),
        Some("mutation") => {
            let mut cfg = CampaignConfig::default();
            let mut opts = CheckpointOpts::default();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--limit" => cfg.limit = parse(&mut args),
                    "--seed" => cfg.seed = parse(&mut args),
                    "--lanes" => cfg.lanes = parse(&mut args),
                    "--threads" => cfg.threads = parse(&mut args),
                    "--checkpoint" => opts.path = Some(parse(&mut args)),
                    "--resume" => opts.resume = true,
                    "--max-chunks" => opts.budget = Some(parse(&mut args)),
                    _ => usage(),
                }
            }
            opts.validate();
            mutation(&cfg, &opts)
        }
        Some("fuzz") => {
            let mut cfg = FuzzConfig::default();
            let mut opts = CheckpointOpts::default();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--iterations" => cfg.iterations = parse(&mut args),
                    "--seed" => cfg.seed = parse(&mut args),
                    "--lanes" => cfg.lanes = parse(&mut args),
                    "--max-cycles" => cfg.max_cycles = parse(&mut args),
                    "--opt" => cfg.opt_level = OptLevel::ALL[parse::<usize>(&mut args).min(4)],
                    "--checkpoint" => opts.path = Some(parse(&mut args)),
                    "--resume" => opts.resume = true,
                    "--max-waves" => opts.budget = Some(parse(&mut args)),
                    _ => usage(),
                }
            }
            opts.validate();
            fuzz(&cfg, &opts)
        }
        Some("compliance") => {
            if compliance() {
                EXIT_PASS
            } else {
                EXIT_VERDICT
            }
        }
        _ => usage(),
    };
    std::process::exit(code);
}

/// The bounded CI sweep: every runner with pinned seeds, sized to finish
/// well under a minute on a shared runner.
fn smoke() -> i32 {
    let mutation_cfg = CampaignConfig {
        limit: 8,
        seed: 0xca3b_a161,
        ..CampaignConfig::default()
    };
    let fuzz_cfg = FuzzConfig {
        iterations: 64,
        lanes: 64,
        ..FuzzConfig::default()
    };
    let none = CheckpointOpts::default();
    let codes = [
        mutation(&mutation_cfg, &none),
        fuzz(&fuzz_cfg, &none),
        if compliance() {
            EXIT_PASS
        } else {
            EXIT_VERDICT
        },
    ];
    codes.into_iter().max().unwrap_or(EXIT_PASS)
}

/// Loads (or freshly creates) a checkpoint bound to the current config.
/// A `--resume` against a checkpoint written under different knobs is a
/// runtime error; without `--resume` any existing file is overwritten.
fn load_checkpoint<C>(
    opts: &CheckpointOpts,
    fresh: impl FnOnce() -> C,
    load: impl FnOnce(&std::path::Path) -> std::io::Result<Option<C>>,
    matches: impl FnOnce(&C) -> bool,
) -> Result<C, i32> {
    let Some(path) = &opts.path else {
        return Ok(fresh());
    };
    if !opts.resume {
        return Ok(fresh());
    }
    match load(path) {
        Ok(None) => Ok(fresh()),
        Ok(Some(ckpt)) if matches(&ckpt) => {
            eprintln!("campaign: resuming from {}", path.display());
            Ok(ckpt)
        }
        Ok(Some(_)) => {
            eprintln!(
                "campaign: checkpoint {} was written under different campaign knobs; \
                 refusing to resume (delete it or rerun with matching flags)",
                path.display()
            );
            Err(EXIT_RUNTIME)
        }
        Err(e) => {
            eprintln!("campaign: cannot load checkpoint {}: {e}", path.display());
            Err(EXIT_RUNTIME)
        }
    }
}

fn mutation(cfg: &CampaignConfig, opts: &CheckpointOpts) -> i32 {
    eprintln!(
        "campaign: mutation sweep (limit {}, seed {:#x}, {} lanes, {} threads)",
        cfg.limit, cfg.seed, cfg.lanes, cfg.threads
    );
    let lib = HwLibrary::build_full();
    let start = Instant::now();
    let reports = if opts.path.is_some() || opts.budget.is_some() {
        let mut ckpt = match load_checkpoint(
            opts,
            || MutationCheckpoint::new(cfg),
            MutationCheckpoint::load,
            |c| c.matches(cfg),
        ) {
            Ok(c) => c,
            Err(code) => return code,
        };
        match library_mutation_coverage_checkpointed(
            &lib,
            cfg,
            &mut ckpt,
            opts.path.as_deref(),
            opts.budget,
        ) {
            Ok(SweepOutcome::Complete(reports)) => reports,
            Ok(SweepOutcome::Interrupted { chunks_run }) => {
                eprintln!(
                    "campaign: interrupted after {chunks_run} chunk(s); progress checkpointed"
                );
                return EXIT_INTERRUPTED;
            }
            Err(e) => {
                eprintln!("campaign: checkpoint persistence failed: {e}");
                return EXIT_RUNTIME;
            }
        }
    } else {
        library_mutation_coverage(&lib, cfg)
    };
    if report_mutation(&reports, start.elapsed().as_secs_f64()) {
        EXIT_PASS
    } else {
        EXIT_VERDICT
    }
}

/// Prints the per-block coverage table; true when no observable mutant
/// survived.
fn report_mutation(reports: &[BlockCoverage], elapsed: f64) -> bool {
    let mut ok = true;
    let (mut generated, mut observable, mut killed) = (0usize, 0usize, 0usize);
    println!(
        "{:<8} {:>9} {:>10} {:>6} {:>9}",
        "block", "generated", "observable", "killed", "coverage"
    );
    for bc in reports {
        let r = &bc.report;
        generated += r.generated;
        observable += r.observable;
        killed += r.killed;
        let survived = r.observable - r.killed;
        println!(
            "{:<8} {:>9} {:>10} {:>6} {:>8.0}%{}",
            bc.mnemonic,
            r.generated,
            r.observable,
            r.killed,
            r.coverage() * 100.0,
            if survived > 0 { "  <-- SURVIVORS" } else { "" }
        );
        ok &= survived == 0;
    }
    println!(
        "total: {generated} mutants, {observable} observable, {killed} killed \
         in {elapsed:.2}s ({:.0} mutants/sec)",
        generated as f64 / elapsed.max(1e-9)
    );
    ok
}

fn fuzz(cfg: &FuzzConfig, opts: &CheckpointOpts) -> i32 {
    eprintln!(
        "campaign: differential fuzz ({} programs, seed {:#x}, {} lanes, {:?})",
        cfg.iterations, cfg.seed, cfg.lanes, cfg.opt_level
    );
    let lib = HwLibrary::build_full();
    let start = Instant::now();
    let report = if opts.path.is_some() || opts.budget.is_some() {
        let mut ckpt = match load_checkpoint(
            opts,
            || FuzzCheckpoint::new(cfg),
            FuzzCheckpoint::load,
            |c| c.matches(cfg),
        ) {
            Ok(c) => c,
            Err(code) => return code,
        };
        match differential_fuzz_resumable(&lib, cfg, &mut ckpt, opts.path.as_deref(), opts.budget) {
            Ok(FuzzOutcome::Complete(report)) => report,
            Ok(FuzzOutcome::Interrupted { waves_run }) => {
                eprintln!("campaign: interrupted after {waves_run} wave(s); progress checkpointed");
                return EXIT_INTERRUPTED;
            }
            Err(e) => {
                eprintln!("campaign: checkpoint persistence failed: {e}");
                return EXIT_RUNTIME;
            }
        }
    } else {
        differential_fuzz(&lib, cfg)
    };
    if report_fuzz(&report, start.elapsed().as_secs_f64()) {
        EXIT_PASS
    } else {
        EXIT_VERDICT
    }
}

/// Prints the fuzz summary and reproducers; true when nothing diverged.
fn report_fuzz(report: &FuzzReport, elapsed: f64) -> bool {
    println!(
        "fuzz: {} programs in {} waves (widest {}) in {elapsed:.2}s — {} divergence(s)",
        report.programs,
        report.waves,
        report.max_wave_width,
        report.reproducers.len()
    );
    for r in &report.reproducers {
        println!("\n--- reproducer ---\n{}", r.listing);
    }
    report.reproducers.is_empty()
}

fn compliance() -> bool {
    eprintln!("campaign: riscof compliance sweep");
    let lib = HwLibrary::build_full();
    let cases = compliance_corpus();
    let start = Instant::now();
    match compliance_sweep(&lib, &cases, 100_000) {
        Ok(reports) => {
            for (name, r) in &reports {
                println!(
                    "{name:<14} {} cycles, {} ref instructions, {}-word signature",
                    r.dut_cycles,
                    r.ref_instructions,
                    r.signature.len()
                );
            }
            println!(
                "compliance: {} case(s) passed in {:.2}s",
                reports.len(),
                start.elapsed().as_secs_f64()
            );
            true
        }
        Err((name, e)) => {
            println!("compliance: {name} FAILED: {e}");
            false
        }
    }
}
