//! Campaign driver: mass mutation coverage, differential fuzzing, and
//! compliance sweeps from one CLI entry point.
//!
//! ```text
//! campaign smoke                      # bounded CI sweep: all three runners, pinned seeds
//! campaign mutation [--limit N] [--seed S] [--lanes L] [--threads T]
//! campaign fuzz [--iterations N] [--seed S] [--lanes L] [--opt 0..4] [--max-cycles N]
//! campaign compliance
//! ```
//!
//! Every runner is seeded and deterministic; see `docs/campaigns.md` for
//! the campaign semantics (lane↔mutant mapping, divergence contract,
//! seed pinning). Exit status is the verdict: `mutation` fails if any
//! observable mutant survives, `fuzz` fails if any divergence is found,
//! `compliance` fails if any corpus case mismatches — so the CI
//! `campaign-smoke` job is just `campaign smoke`.

use hwlib::campaign::{library_mutation_coverage, CampaignConfig};
use hwlib::HwLibrary;
use rissp::campaign::{compliance_corpus, compliance_sweep, differential_fuzz, FuzzConfig};
use std::time::Instant;
use xcc::OptLevel;

fn usage() -> ! {
    eprintln!(
        "usage: campaign smoke\n\
         \x20      campaign mutation [--limit N] [--seed S] [--lanes L] [--threads T]\n\
         \x20      campaign fuzz [--iterations N] [--seed S] [--lanes L] [--opt 0..4] [--max-cycles N]\n\
         \x20      campaign compliance"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>) -> T {
    args.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let ok = match args.next().as_deref() {
        Some("smoke") => smoke(),
        Some("mutation") => {
            let mut cfg = CampaignConfig::default();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--limit" => cfg.limit = parse(&mut args),
                    "--seed" => cfg.seed = parse(&mut args),
                    "--lanes" => cfg.lanes = parse(&mut args),
                    "--threads" => cfg.threads = parse(&mut args),
                    _ => usage(),
                }
            }
            mutation(&cfg)
        }
        Some("fuzz") => {
            let mut cfg = FuzzConfig::default();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--iterations" => cfg.iterations = parse(&mut args),
                    "--seed" => cfg.seed = parse(&mut args),
                    "--lanes" => cfg.lanes = parse(&mut args),
                    "--max-cycles" => cfg.max_cycles = parse(&mut args),
                    "--opt" => cfg.opt_level = OptLevel::ALL[parse::<usize>(&mut args).min(4)],
                    _ => usage(),
                }
            }
            fuzz(&cfg)
        }
        Some("compliance") => compliance(),
        _ => usage(),
    };
    std::process::exit(if ok { 0 } else { 1 });
}

/// The bounded CI sweep: every runner with pinned seeds, sized to finish
/// well under a minute on a shared runner.
fn smoke() -> bool {
    let mutation_cfg = CampaignConfig {
        limit: 8,
        seed: 0xca3b_a161,
        ..CampaignConfig::default()
    };
    let fuzz_cfg = FuzzConfig {
        iterations: 64,
        lanes: 64,
        ..FuzzConfig::default()
    };
    let mut ok = mutation(&mutation_cfg);
    ok &= fuzz(&fuzz_cfg);
    ok &= compliance();
    ok
}

fn mutation(cfg: &CampaignConfig) -> bool {
    eprintln!(
        "campaign: mutation sweep (limit {}, seed {:#x}, {} lanes, {} threads)",
        cfg.limit, cfg.seed, cfg.lanes, cfg.threads
    );
    let lib = HwLibrary::build_full();
    let start = Instant::now();
    let reports = library_mutation_coverage(&lib, cfg);
    let elapsed = start.elapsed().as_secs_f64();
    let mut ok = true;
    let (mut generated, mut observable, mut killed) = (0usize, 0usize, 0usize);
    println!(
        "{:<8} {:>9} {:>10} {:>6} {:>9}",
        "block", "generated", "observable", "killed", "coverage"
    );
    for bc in &reports {
        let r = &bc.report;
        generated += r.generated;
        observable += r.observable;
        killed += r.killed;
        let survived = r.observable - r.killed;
        println!(
            "{:<8} {:>9} {:>10} {:>6} {:>8.0}%{}",
            bc.mnemonic,
            r.generated,
            r.observable,
            r.killed,
            r.coverage() * 100.0,
            if survived > 0 { "  <-- SURVIVORS" } else { "" }
        );
        ok &= survived == 0;
    }
    println!(
        "total: {generated} mutants, {observable} observable, {killed} killed \
         in {elapsed:.2}s ({:.0} mutants/sec)",
        generated as f64 / elapsed.max(1e-9)
    );
    ok
}

fn fuzz(cfg: &FuzzConfig) -> bool {
    eprintln!(
        "campaign: differential fuzz ({} programs, seed {:#x}, {} lanes, {:?})",
        cfg.iterations, cfg.seed, cfg.lanes, cfg.opt_level
    );
    let lib = HwLibrary::build_full();
    let start = Instant::now();
    let report = differential_fuzz(&lib, cfg);
    println!(
        "fuzz: {} programs in {} waves (widest {}) in {:.2}s — {} divergence(s)",
        report.programs,
        report.waves,
        report.max_wave_width,
        start.elapsed().as_secs_f64(),
        report.reproducers.len()
    );
    for r in &report.reproducers {
        println!("\n--- reproducer ---\n{}", r.listing);
    }
    report.reproducers.is_empty()
}

fn compliance() -> bool {
    eprintln!("campaign: riscof compliance sweep");
    let lib = HwLibrary::build_full();
    let cases = compliance_corpus();
    let start = Instant::now();
    match compliance_sweep(&lib, &cases, 100_000) {
        Ok(reports) => {
            for (name, r) in &reports {
                println!(
                    "{name:<14} {} cycles, {} ref instructions, {}-word signature",
                    r.dut_cycles,
                    r.ref_instructions,
                    r.signature.len()
                );
            }
            println!(
                "compliance: {} case(s) passed in {:.2}s",
                reports.len(),
                start.elapsed().as_secs_f64()
            );
            true
        }
        Err((name, e)) => {
            println!("compliance: {name} FAILED: {e}");
            false
        }
    }
}
