//! Table 2: the instruction hardware blocks per format — their interfaces
//! and per-block gate complexity from the pre-verified library.

use bench::header;
use hwlib::{ports, HwLibrary};
use netlist::stats::GateCounts;
use riscv_isa::{Format, ALL_MNEMONICS};

fn main() {
    header("Table 2 — instruction hardware blocks of the RV32I/E library");
    println!("standard interface:");
    println!(
        "  inputs : {}",
        ports::INPUTS.map(|(n, w)| format!("{n}[{w}]")).join(" ")
    );
    println!(
        "  outputs: {}",
        ports::OUTPUTS.map(|(n, w)| format!("{n}[{w}]")).join(" ")
    );
    println!();
    let lib = HwLibrary::build_full();
    for fmt in [
        Format::B,
        Format::R,
        Format::I,
        Format::S,
        Format::U,
        Format::J,
    ] {
        let members: Vec<_> = ALL_MNEMONICS.iter().filter(|m| m.format() == fmt).collect();
        println!("{fmt:?}-type ({} blocks):", members.len());
        for m in members {
            let counts = GateCounts::of(&lib.block(*m).netlist);
            println!(
                "  {:<6} {:>6.0} NAND2eq  ({} logic gates)",
                m.name(),
                counts.nand2_equivalent(),
                counts.logic_gates()
            );
        }
    }
}
