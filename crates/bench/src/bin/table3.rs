//! Table 3: the list of distinct instructions per application when compiled
//! with `-O2`.

use bench::{distinct_of, header};
use xcc::OptLevel;

fn main() {
    header("Table 3 — distinct instructions per application at -O2");
    for w in workloads::all() {
        let image = w.compile(OptLevel::O2).expect("compiles");
        let subset = distinct_of(&image.words);
        println!(
            "{:<16} ({:>2}) [{}]",
            w.name,
            subset.len(),
            subset.names().join(", ")
        );
    }
}
