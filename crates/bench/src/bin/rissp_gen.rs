//! `rissp-gen` — command-line RISSP generator, the user-facing face of the
//! methodology: feed it a binary (or a workload name, or an explicit
//! instruction list) and get the generated core's report.
//!
//! ```sh
//! cargo run --release -p bench --bin rissp_gen -- --workload crc32
//! cargo run --release -p bench --bin rissp_gen -- --subset addi,add,jal,lw,sw,beq
//! ```

use flexic::sweep::frequency_sweep;
use flexic::tech::Tech;
use flexic::DesignMetrics;
use hwlib::HwLibrary;
use netlist::stats::GateCounts;
use rissp::profile::InstructionSubset;
use rissp::Rissp;
use xcc::OptLevel;

fn usage() -> ! {
    eprintln!("usage: rissp_gen --workload <name> | --subset <m1,m2,...> [--opt O0|O1|O2|O3|Oz]");
    eprintln!(
        "workloads: {}",
        workloads::all()
            .iter()
            .map(|w| w.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = None;
    let mut subset_arg = None;
    let mut opt = OptLevel::O2;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workload" => workload = it.next().cloned(),
            "--subset" => subset_arg = it.next().cloned(),
            "--opt" => {
                opt = match it.next().map(String::as_str) {
                    Some("O0") => OptLevel::O0,
                    Some("O1") => OptLevel::O1,
                    Some("O2") => OptLevel::O2,
                    Some("O3") => OptLevel::O3,
                    Some("Oz") => OptLevel::Oz,
                    _ => usage(),
                }
            }
            _ => usage(),
        }
    }

    let (name, subset, activity) = if let Some(wname) = workload {
        let Some(w) = workloads::by_name(&wname) else {
            eprintln!("unknown workload `{wname}`");
            usage()
        };
        let image = w.compile(opt).expect("workload compiles");
        let subset = InstructionSubset::from_words(&image.words);
        println!(
            "profiled {wname} at {}: {} bytes, {} distinct instructions",
            opt.flag(),
            image.code_bytes(),
            subset.len()
        );
        (wname, subset, 0.10)
    } else if let Some(list) = subset_arg {
        let subset = InstructionSubset::from_names(list.split(','));
        if subset.is_empty() {
            eprintln!("no valid mnemonics in `{list}`");
            usage()
        }
        ("custom".to_string(), subset, 0.10)
    } else {
        usage()
    };

    println!("subset: {subset}");
    let lib = HwLibrary::build_full();
    let rissp = Rissp::generate(&lib, &subset);
    let counts = GateCounts::of(&rissp.core);
    println!(
        "generated RISSP-{name}: {} gates / {:.0} NAND2-equivalents ({} FFs, {:.1}% FF area)",
        counts.logic_gates(),
        counts.nand2_equivalent(),
        counts.dff,
        100.0 * counts.ff_area_fraction()
    );
    println!(
        "synthesis: {} → {} gates ({:.1}% redundancy removed)",
        rissp.synth.gates_before,
        rissp.synth.gates_after,
        100.0 * rissp.synth.reduction()
    );
    let t = Tech::flexic_gen();
    let metrics = DesignMetrics::of_netlist(format!("RISSP-{name}"), &rissp.core, &t, activity);
    let sweep = frequency_sweep(&metrics);
    println!(
        "FlexIC ({}): fmax {} kHz, avg area {:.0} NAND2, avg power {:.3} mW",
        t.name, sweep.fmax_khz, sweep.avg_area_nand2, sweep.avg_power_mw
    );
}
