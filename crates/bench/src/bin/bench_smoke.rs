//! Quick, machine-readable gate-simulation throughput probe for the CI
//! perf-trajectory job.
//!
//! Runs a small fixed settle schedule on the crc32 RISSP core through the
//! interesting backend × thread-count configurations and writes one JSON
//! report (`BENCH_pr.json` by default): ops/settle and settles/sec per
//! configuration. CI uploads the report as an artifact on every PR and
//! diffs it against the checked-in `BENCH_baseline.json` with a *soft*
//! threshold — regressions emit `::warning::` annotations but never fail
//! the job, because the shared 1–2 CPU runners are far too noisy for a
//! hard gate. The value is the trajectory: every PR leaves a comparable
//! number behind.
//!
//! ```text
//! bench_smoke [--out BENCH_pr.json] [--check-against BENCH_baseline.json]
//!             [--settles 2000]
//! ```
//!
//! The report format is intentionally line-oriented (one config per line)
//! so the checker can parse its own output without a JSON dependency.

use bench::service::{run_service, ServiceConfig, ServiceMix};
use hwlib::campaign::{library_mutation_coverage, CampaignConfig};
use netlist::sim::SimBackend;
use netlist::{CompiledSim, EvalMode, EvalPolicy, ShardPolicy, ShardSchedule, ShardedSim, Sim};
use rissp::profile::InstructionSubset;
use rissp::Rissp;
use std::sync::Arc;
use std::time::Instant;
use xcc::OptLevel;

/// Fraction of the baseline's settles/sec below which a configuration is
/// flagged. Generous on purpose: shared CI runners jitter by 2x and the
/// gate is advisory (warn, never fail).
const SOFT_THRESHOLD: f64 = 0.5;

/// Same-run pooled-vs-scoped pairs: each pooled configuration is flagged
/// if it comes in slower than its scoped predecessor *in the same run*
/// (so runner speed cancels out). The persistent pool exists precisely
/// to beat the per-settle `thread::scope` spawn, so pooled < scoped is a
/// regression signal worth a `::warning::` even on a noisy runner.
const POOLED_VS_SCOPED: [(&str, &str); 3] = [
    ("compiled_64_lanes_pool2", "compiled_64_lanes_par2"),
    ("compiled_64_lanes_pool4", "compiled_64_lanes_par4"),
    ("sharded_4x64_pool_2t", "sharded_4x64_stealing_2t"),
];

/// One measured configuration.
struct Row {
    name: &'static str,
    backend: &'static str,
    threads: usize,
    lanes: usize,
    ops_per_settle: f64,
    settles_per_sec: f64,
    /// Per-lane-vector throughput: `settles_per_sec * lanes`. The
    /// apples-to-apples number across lane widths — a 256-lane settle
    /// retires 4x the stimulus vectors of a 64-lane settle.
    lane_vectors_per_sec: f64,
}

/// One measured mutation-campaign configuration (a full-library
/// lane-parallel sweep; see `hwlib::campaign` and `docs/campaigns.md`).
struct CampaignRow {
    name: &'static str,
    threads: usize,
    lanes: usize,
    mutants: usize,
    mutants_per_sec: f64,
}

/// One measured service load-mix configuration (a YCSB-style read/update
/// mix against the program cache + multi-job pool; see `bench::service`
/// and `docs/simulation.md` § "Simulation as a service").
struct ServiceRow {
    name: &'static str,
    submitters: usize,
    jobs: u64,
    jobs_per_sec: f64,
    hit_rate: f64,
}

fn usage() -> ! {
    eprintln!("usage: bench_smoke [--out PATH] [--check-against PATH] [--settles N]");
    std::process::exit(2);
}

fn main() {
    let mut out = String::from("BENCH_pr.json");
    let mut baseline: Option<String> = None;
    // 2000 timed settles per config: ~20-100 ms of measured time each.
    // The old 200-settle default measured ~2 ms, which on a shared 1-CPU
    // runner swings +/-40% run to run — enough to fake a regression.
    let mut settles: u64 = 2000;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--check-against" => baseline = Some(args.next().unwrap_or_else(|| usage())),
            "--settles" => {
                settles = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }

    eprintln!("bench_smoke: building crc32 RISSP core...");
    let lib = hwlib::HwLibrary::build_full();
    let w = workloads::by_name("crc32").expect("crc32 workload");
    let image = w.compile(OptLevel::O2).expect("crc32 compiles");
    let subset = InstructionSubset::from_words(&image.words);
    let rissp = Rissp::generate(&lib, &subset);
    let core = Arc::new(rissp.core.clone());

    let rows = measure(&core, settles);
    eprintln!("bench_smoke: running mutation-campaign probes...");
    let campaigns = measure_campaigns(&lib);
    eprintln!("bench_smoke: running service load-mix probes...");
    let services = measure_service(&lib);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": 1,\n");
    json.push_str("  \"generated_by\": \"bench_smoke\",\n");
    json.push_str(&format!("  \"settles_per_config\": {settles},\n"));
    json.push_str("  \"configs\": [\n");
    for r in rows.iter() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"backend\": \"{}\", \"threads\": {}, \
             \"lanes\": {}, \"ops_per_settle\": {:.1}, \"settles_per_sec\": {:.1}, \
             \"lane_vectors_per_sec\": {:.1}}},\n",
            r.name,
            r.backend,
            r.threads,
            r.lanes,
            r.ops_per_settle,
            r.settles_per_sec,
            r.lane_vectors_per_sec
        ));
    }
    for r in campaigns.iter() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"backend\": \"campaign\", \"threads\": {}, \
             \"lanes\": {}, \"mutants\": {}, \"mutants_per_sec\": {:.1}}},\n",
            r.name, r.threads, r.lanes, r.mutants, r.mutants_per_sec
        ));
    }
    for (i, r) in services.iter().enumerate() {
        let comma = if i + 1 == services.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"backend\": \"service\", \"submitters\": {}, \
             \"jobs\": {}, \"jobs_per_sec\": {:.1}, \"cache_hit_rate\": {:.3}}}{comma}\n",
            r.name, r.submitters, r.jobs, r.jobs_per_sec, r.hit_rate
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("bench_smoke: cannot write {out}: {e}");
        std::process::exit(1);
    });

    println!(
        "{:<28} {:>8} {:>6} {:>14} {:>14} {:>12}",
        "config", "threads", "lanes", "ops/settle", "settles/sec", "Mlanevec/s"
    );
    for r in &rows {
        println!(
            "{:<28} {:>8} {:>6} {:>14.1} {:>14.1} {:>12.2}",
            r.name,
            r.threads,
            r.lanes,
            r.ops_per_settle,
            r.settles_per_sec,
            r.lane_vectors_per_sec / 1e6
        );
    }
    println!(
        "\n{:<28} {:>8} {:>6} {:>10} {:>14}",
        "campaign", "threads", "lanes", "mutants", "mutants/sec"
    );
    for r in &campaigns {
        println!(
            "{:<28} {:>8} {:>6} {:>10} {:>14.1}",
            r.name, r.threads, r.lanes, r.mutants, r.mutants_per_sec
        );
    }
    println!(
        "\n{:<28} {:>10} {:>8} {:>12} {:>10}",
        "service mix", "submitters", "jobs", "jobs/sec", "hit rate"
    );
    for r in &services {
        println!(
            "{:<28} {:>10} {:>8} {:>12.1} {:>9.1}%",
            r.name,
            r.submitters,
            r.jobs,
            r.jobs_per_sec,
            r.hit_rate * 100.0
        );
    }
    eprintln!("bench_smoke: wrote {out}");

    check_pooled_vs_scoped(&rows);
    if let Some(path) = baseline {
        let fresh: Vec<(String, f64)> = rows
            .iter()
            .map(|r| (r.name.to_string(), r.settles_per_sec))
            .chain(
                campaigns
                    .iter()
                    .map(|r| (r.name.to_string(), r.mutants_per_sec)),
            )
            .chain(
                services
                    .iter()
                    .map(|r| (r.name.to_string(), r.jobs_per_sec)),
            )
            .collect();
        check_against(&fresh, &path);
    }
}

/// Times full-library lane-parallel mutation sweeps (`hwlib::campaign`)
/// at the single-threaded and pooled shapes. Pinned seed and mutant
/// budget, so the mutant population is identical run to run and the
/// mutants/sec trajectory is comparable across PRs.
fn measure_campaigns(lib: &hwlib::HwLibrary) -> Vec<CampaignRow> {
    [
        ("campaign_mutation_256l_1t", 256, 1),
        ("campaign_mutation_256l_2t", 256, 2),
    ]
    .into_iter()
    .map(|(name, lanes, threads)| {
        let cfg = CampaignConfig {
            limit: 16,
            seed: 0xbe_ac_11,
            lanes,
            threads,
        };
        // Warm once (first run compiles the instrumented netlists cold),
        // then time a fresh sweep.
        library_mutation_coverage(lib, &cfg);
        let start = Instant::now();
        let reports = library_mutation_coverage(lib, &cfg);
        let elapsed = start.elapsed().as_secs_f64();
        let mutants: usize = reports.iter().map(|bc| bc.report.generated).sum();
        CampaignRow {
            name,
            threads,
            lanes,
            mutants,
            mutants_per_sec: mutants as f64 / elapsed.max(1e-9),
        }
    })
    .collect()
}

/// Times the YCSB-style service load mixes (`bench::service`): two
/// concurrent submitters drive read-heavy / write-heavy / 50-50 mixes
/// against the shared program cache and the multi-job worker pool. Reads
/// verify cached library cores (compile hits); updates evaluate fresh
/// mutants (compile misses). Pinned seeds, so the op schedule — and
/// therefore the hit-rate profile — is identical run to run; only
/// jobs/sec moves with the machine.
fn measure_service(lib: &hwlib::HwLibrary) -> Vec<ServiceRow> {
    [
        // One distinct seed per row: a shared seed would re-generate the
        // previous row's mutants, turning its "fresh" updates into cache
        // hits and faking the hit-rate profile.
        ("service_read_heavy_2s", ServiceMix::read_heavy(), 0x51),
        ("service_write_heavy_2s", ServiceMix::write_heavy(), 0x52),
        ("service_mixed_50_50_2s", ServiceMix::mixed(), 0x53),
    ]
    .into_iter()
    .map(|(name, mix, seed)| {
        let cfg = ServiceConfig {
            mix,
            submitters: 2,
            ops_per_submitter: 25,
            threads: 2,
            seed,
        };
        let report = run_service(lib, &cfg);
        ServiceRow {
            name,
            submitters: cfg.submitters,
            jobs: report.jobs,
            jobs_per_sec: report.jobs_per_sec,
            hit_rate: report.cache.hit_rate(),
        }
    })
    .collect()
}

/// Same-run soft gate: warn when a pooled configuration is slower than
/// its scoped predecessor. Comparing within one run cancels runner
/// speed, so unlike the baseline diff this comparison is meaningful even
/// on a noisy shared machine — but it stays advisory (warn, exit 0) all
/// the same.
fn check_pooled_vs_scoped(rows: &[Row]) {
    let speed = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .map(|r| r.settles_per_sec)
    };
    println!(
        "\n{:<28} {:>14} {:>14} {:>8}",
        "pooled vs scoped", "scoped s/s", "pooled s/s", "speedup"
    );
    for (pooled, scoped) in POOLED_VS_SCOPED {
        let (Some(p), Some(s)) = (speed(pooled), speed(scoped)) else {
            continue;
        };
        let ratio = p / s.max(1e-9);
        println!("{pooled:<28} {s:>14.1} {p:>14.1} {ratio:>7.2}x");
        if ratio < 1.0 {
            println!(
                "::warning::bench-smoke: pooled config {pooled} is slower than its \
                 scoped predecessor {scoped} ({p:.1} vs {s:.1} settles/sec); the \
                 persistent pool should always win — advisory only"
            );
        }
    }
}

/// Runs every configuration for `settles` timed settles (after a short
/// warmup) and returns the measured rows.
fn measure(core: &Arc<netlist::Netlist>, settles: u64) -> Vec<Row> {
    let mut rows = Vec::new();

    // Interpreted reference: the scalar one-gate-at-a-time baseline.
    {
        let mut sim = Sim::new(core);
        let f = time_settles(settles, |i| {
            sim.set_bus("insn", 0x0000_0113 ^ (i as u32) << 7);
            sim.eval();
            sim.step();
        });
        rows.push(row("interpreted_1_lane", "Sim", 1, 1, &sim, f));
    }

    // Compiled full sweep across lane-block widths: scalar, the classic
    // 64-lane single word, and the K = 2 / K = 4 wide blocks. One settle
    // of the 256-lane row retires 4x the stimulus vectors of the 64-lane
    // row, which is what the lane_vectors_per_sec column normalises.
    for (name, lanes) in [
        ("compiled_1_lane", 1),
        ("compiled_64_lanes", 64),
        ("compiled_128_lanes", 128),
        ("compiled_256_lanes", 256),
    ] {
        let mut sim = CompiledSim::with_lanes_arc(core.clone(), lanes);
        sim.set_eval_mode(EvalMode::FullSweep);
        let f = time_settles(settles, |i| {
            sim.set_bus("insn", 0x0000_0113 ^ (i as u32) << 7);
            sim.eval();
            sim.step();
        });
        rows.push(row(name, "CompiledSim", 1, lanes, &sim, f));
    }

    // The same full-sweep schedule through natively emitted code
    // (`EvalMode::Jit`, docs/jit.md): the per-op interpreter dispatch
    // is the cost these rows exist to measure the removal of. On hosts
    // without codegen support they silently measure the interpreted
    // fallback — the `::notice::` below flags that so a flat jit row on
    // CI is attributable.
    for (name, lanes) in [
        ("compiled_1_lane_jit", 1),
        ("compiled_64_lanes_jit", 64),
        ("compiled_256_lanes_jit", 256),
    ] {
        let mut sim = CompiledSim::with_lanes_arc(core.clone(), lanes);
        sim.set_eval_mode(EvalMode::Jit);
        if !sim.jit_active() {
            println!("::notice::bench-smoke: {name} is running the interpreter fallback (codegen unavailable on this host)");
        }
        let f = time_settles(settles, |i| {
            sim.set_bus("insn", 0x0000_0113 ^ (i as u32) << 7);
            sim.eval();
            sim.step();
        });
        rows.push(row(name, "CompiledSim", 1, lanes, &sim, f));
    }

    // Intra-netlist parallel level evaluation (the par_levels axis):
    // the scoped-thread predecessor rows (a fresh thread::scope per
    // settle) and the persistent-pool rows, same schedule, so the
    // pooled-vs-scoped comparison below measures exactly the per-settle
    // spawn tax the pool exists to kill.
    let par_rows = [
        ("compiled_64_lanes_par2", 2usize, false),
        ("compiled_64_lanes_par4", 4, false),
        ("compiled_64_lanes_pool2", 2, true),
        ("compiled_64_lanes_pool4", 4, true),
    ];
    for (name, threads, use_pool) in par_rows {
        let mut sim = CompiledSim::with_lanes_arc(core.clone(), 64);
        sim.set_eval_mode(EvalMode::FullSweep);
        sim.set_eval_policy(EvalPolicy {
            use_pool,
            ..EvalPolicy::par_levels(threads)
        });
        let f = time_settles(settles, |i| {
            sim.set_bus("insn", 0x0000_0113 ^ (i as u32) << 7);
            sim.eval();
            sim.step();
        });
        rows.push(row(name, "CompiledSim", threads, 64, &sim, f));
    }

    // Event-driven sparse schedule: stimulus changes every 8th settle.
    {
        let mut sim = CompiledSim::with_lanes_arc(core.clone(), 64);
        sim.set_eval_mode(EvalMode::EventDriven);
        let f = time_settles(settles, |i| {
            if i % 8 == 0 {
                sim.set_bus("insn", 0x0000_0113 ^ (i as u32) << 7);
            }
            sim.eval();
        });
        rows.push(row("event_driven_sparse", "CompiledSim", 1, 64, &sim, f));
    }

    // Sharded: pooled work-stealing (default) vs the scoped-thread
    // stealing fallback vs the deprecated static scheduler, 4 shards x
    // 64 lanes on 2 threads. `lane_words: 1` pins the historical
    // one-CompiledSim-per-64-lanes layout so these rows stay comparable
    // with their pre-lane-block baselines; the `sharded_block_*` row
    // below measures the same 256 lanes fused into one K = 4 lane block.
    #[allow(deprecated)] // the static row is the trajectory reference
    let schedules = [
        ("sharded_4x64_pool_2t", ShardSchedule::WorkStealing, true),
        (
            "sharded_4x64_stealing_2t",
            ShardSchedule::WorkStealing,
            false,
        ),
        ("sharded_4x64_static_2t", ShardSchedule::Static, false),
    ];
    for (name, schedule, use_pool) in schedules {
        let mut sim = ShardedSim::with_policy_arc(
            core.clone(),
            ShardPolicy {
                shards: 4,
                lanes_per_shard: 64,
                threads: 2,
                schedule,
                use_pool,
                lane_words: 1,
                ..ShardPolicy::single()
            },
        );
        let f = time_settles(settles, |i| {
            sim.set_bus("insn", 0x0000_0113 ^ (i as u32) << 7);
            sim.eval();
            sim.step();
        });
        rows.push(row(name, "ShardedSim", 2, 256, &sim, f));
    }

    // Block-sharded: the same 4 x 64 = 256 lanes, but fused into a
    // single 256-lane (K = 4) lane block — one compile, one state arena,
    // one settle walk — with the freed outer threads routed into
    // intra-shard parallel level evaluation.
    {
        let mut sim = ShardedSim::with_policy_arc(
            core.clone(),
            ShardPolicy {
                shards: 4,
                lanes_per_shard: 64,
                threads: 2,
                lane_words: 4,
                ..ShardPolicy::single()
            },
        );
        let f = time_settles(settles, |i| {
            sim.set_bus("insn", 0x0000_0113 ^ (i as u32) << 7);
            sim.eval();
            sim.step();
        });
        rows.push(row(
            "sharded_block_256_pool_2t",
            "ShardedSim",
            2,
            256,
            &sim,
            f,
        ));
    }

    rows
}

/// Times `settles` invocations of `step` (plus an untimed 8-settle
/// warmup, which also absorbs the priming full sweep) and returns
/// settles/sec.
fn time_settles(settles: u64, mut step: impl FnMut(u64)) -> f64 {
    for i in 0..8 {
        step(i);
    }
    let start = Instant::now();
    for i in 8..8 + settles {
        step(i);
    }
    settles as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn row(
    name: &'static str,
    backend: &'static str,
    threads: usize,
    lanes: usize,
    sim: &dyn SimBackend,
    settles_per_sec: f64,
) -> Row {
    let st = sim.eval_stats();
    Row {
        name,
        backend,
        threads,
        lanes,
        ops_per_settle: st.ops_executed as f64 / st.settles.max(1) as f64,
        settles_per_sec,
        lane_vectors_per_sec: settles_per_sec * lanes as f64,
    }
}

/// Parses the `(name, rate)` pairs out of a bench_smoke report, where
/// the rate is `settles_per_sec` for simulator configs,
/// `mutants_per_sec` for campaign configs and `jobs_per_sec` for service
/// load-mix configs. Line-oriented on purpose: one
/// config object per line, fields in a fixed order, so a substring scan
/// is sufficient and exact for the format this binary writes.
fn parse_rows(text: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(name) =
            field(line, "\"name\": \"").map(|v| v.split('"').next().unwrap_or("").to_string())
        else {
            continue;
        };
        // The rate is not necessarily the last field in the line, so cut
        // at the first delimiter rather than trimming from the end.
        let Some(rate) = field(line, "\"settles_per_sec\": ")
            .or_else(|| field(line, "\"mutants_per_sec\": "))
            .or_else(|| field(line, "\"jobs_per_sec\": "))
            .and_then(|v| v.split([',', '}']).next()?.trim().parse::<f64>().ok())
        else {
            continue;
        };
        rows.push((name, rate));
    }
    rows
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.find(key).map(|i| &line[i + key.len()..])
}

/// Diffs the fresh rows against a baseline report. Soft gate: prints a
/// GitHub `::warning::` annotation per regressed configuration and a
/// comparison table, but always exits 0 — the 1-CPU runners are too noisy
/// for a hard perf gate, and new configurations simply have no baseline
/// yet.
fn check_against(fresh: &[(String, f64)], path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            println!("::warning::bench-smoke: no baseline at {path} ({e}); skipping diff");
            return;
        }
    };
    let baseline = parse_rows(&text);
    println!(
        "\n{:<28} {:>14} {:>14} {:>8}",
        "config", "baseline rate", "pr rate", "ratio"
    );
    let mut unbaselined: Vec<&str> = Vec::new();
    for (name, rate) in fresh {
        let Some((_, base)) = baseline.iter().find(|(n, _)| n == name) else {
            println!("{name:<28} {:>14} {rate:>14.1} {:>8}", "-", "new");
            unbaselined.push(name);
            continue;
        };
        let ratio = rate / base.max(1e-9);
        println!("{name:<28} {base:>14.1} {rate:>14.1} {ratio:>8.2}");
        if ratio < SOFT_THRESHOLD {
            println!(
                "::warning::bench-smoke: {name} rate regressed to {:.0}% of baseline \
                 ({rate:.1} vs {base:.1}); advisory only — shared runners are noisy",
                ratio * 100.0
            );
        }
    }
    // A row with no baseline entry has no regression tracking at all, so a
    // newly added config (or a renamed one) must not vanish into the table
    // silently — flag it until the baseline is regenerated.
    if !unbaselined.is_empty() {
        println!(
            "::warning::bench-smoke: {} row(s) missing from the baseline: {}; regenerate it \
             with `cargo run --release -p bench --bin bench_smoke -- --out {path}` so they \
             get regression tracking",
            unbaselined.len(),
            unbaselined.join(", ")
        );
    }
    // And the reverse direction: baseline rows the fresh run no longer
    // produces usually mean a config was renamed or dropped — either way the
    // baseline is stale for them.
    let stale: Vec<&str> = baseline
        .iter()
        .filter(|(n, _)| !fresh.iter().any(|(f, _)| f == n))
        .map(|(n, _)| n.as_str())
        .collect();
    if !stale.is_empty() {
        println!(
            "::warning::bench-smoke: {} baseline row(s) not measured by this run: {}; \
             stale until the baseline is regenerated",
            stale.len(),
            stale.join(", ")
        );
    }
}
