//! Figure 10: full physical implementation at 300 kHz of the three
//! extreme-edge RISSPs plus the two baselines — die dimensions, area,
//! flip-flop fraction and power. Pass `--threads N` to characterise the
//! edge applications on N threads and settle the RV32E baseline's batched
//! run with N-way parallel level evaluation (results are thread-count
//! independent).

use bench::{
    characterise_rv32e, characterise_serv, characterise_workloads, header, threads_from_args,
};
use flexic::physical::implement;
use flexic::tech::Tech;
use hwlib::HwLibrary;

fn main() {
    header("Figure 10 — FlexIC physical implementation at 300 kHz");
    let t = Tech::flexic_gen();
    let lib = HwLibrary::build_full();
    let threads = threads_from_args();

    let mut layouts = Vec::new();
    let rv32e = characterise_rv32e(&lib, &t, threads);
    layouts.push(implement(&rv32e.metrics, &t, None));
    let edge: Vec<_> = ["af_detect", "armpit", "xgboost"]
        .into_iter()
        .map(|name| workloads::by_name(name).expect("edge app"))
        .collect();
    for d in characterise_workloads(&lib, &edge, &t, threads) {
        layouts.push(implement(&d.metrics, &t, Some(d.distinct)));
    }
    let serv = characterise_serv(&workloads::by_name("crc32").expect("crc32"));
    layouts.push(implement(&serv.metrics, &t, None));

    println!(
        "{:<18} {:>9} {:>9} {:>10} {:>7} {:>9} {:>10} {:>6}",
        "design", "X(um)", "Y(um)", "area(mm2)", "FF(%)", "pwr(mW)", "clk bufs", "#ins"
    );
    for l in &layouts {
        println!(
            "{:<18} {:>9.0} {:>9.0} {:>10.2} {:>7.1} {:>9.3} {:>10} {:>6}",
            l.name,
            l.die_w_um,
            l.die_h_um,
            l.die_area_mm2,
            l.ff_pct,
            l.power_mw,
            l.clock_buffers,
            l.distinct_instructions
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }

    println!();
    let area = |name: &str| {
        layouts
            .iter()
            .find(|l| l.name.contains(name))
            .map(|l| l.die_area_mm2)
    };
    let (Some(rv), Some(af), Some(ap), Some(xg), Some(sv)) = (
        area("RV32E"),
        area("af_detect"),
        area("armpit"),
        area("xgboost"),
        area("Serv"),
    ) else {
        return;
    };
    println!("summary vs paper (§4.3):");
    println!(
        "  af_detect vs RV32E: {:.0}% smaller (paper: 8 %)",
        100.0 * (1.0 - af / rv)
    );
    println!(
        "  armpit   vs RV32E: {:.0}% smaller (paper: ~35 %)",
        100.0 * (1.0 - ap / rv)
    );
    println!(
        "  xgboost  vs RV32E: {:.0}% smaller (paper: ~42 %)",
        100.0 * (1.0 - xg / rv)
    );
    println!(
        "  xgboost  vs Serv : {:.0}% smaller after layout (paper: ~11 %, the clock-tree flip)",
        100.0 * (1.0 - xg / sv)
    );
}
