//! Figure 12: code size and distinct-instruction comparison between the
//! original `-O2` binaries and the binaries retargeted to the twelve-
//! instruction minimal subset — plus an end-to-end functional check that
//! the retargeted binaries still compute the same result.

use bench::{distinct_of, header};
use retarget::{minimal_subset, Retargeter};
use riscv_emu::Emulator;
use xcc::OptLevel;

fn main() {
    header("Figure 12 — LLM-style retargeting to the 12-instruction minimal subset");
    println!("minimal subset: {}", minimal_subset().names().join(", "));
    println!();
    println!(
        "{:<12} {:>12} {:>12} {:>9} {:>9} {:>9} {:>9}  checksum ok",
        "app", "size(B)", "retgt(B)", "growth", "#ins", "#ins'", "sites"
    );
    for name in ["armpit", "xgboost", "af_detect"] {
        let w = workloads::by_name(name).expect("edge app");
        let image = w.compile(OptLevel::O2).expect("compiles");
        let before_distinct = distinct_of(&image.words).len();

        let mut tool = Retargeter::new(minimal_subset(), 0xecc5);
        let report = tool.retarget(&image.items).expect("retarget succeeds");
        let after_distinct = distinct_of(&report.words).len();

        // End-to-end: both binaries must produce the same a0 checksum.
        let run = |words: &[u32]| {
            let mut emu = Emulator::new();
            emu.load_words(0, words);
            for (base, data) in &image.data_segments {
                emu.load_words(*base, data);
            }
            emu.run(400_000_000).expect("runs");
            emu.state().regs[10]
        };
        let original = run(&image.words);
        let rewritten = run(&report.words);
        println!(
            "{:<12} {:>12} {:>12} {:>8.1}% {:>9} {:>9} {:>9}  {}",
            name,
            report.bytes_before,
            report.bytes_after,
            100.0 * report.size_increase(),
            before_distinct,
            after_distinct,
            report.expanded_sites,
            if original == rewritten {
                "yes"
            } else {
                "NO — MISMATCH"
            }
        );
        assert_eq!(original, rewritten, "{name}: retargeted binary diverged");
        let max_attempts = report.attempts.values().max().copied().unwrap_or(0);
        println!(
            "             attempts per macro ≤ {max_attempts} (paper: valid macro in <10 attempts)"
        );
    }
    println!();
    println!("paper: armpit +13 %, xgboost +5.2 %, af_detect +36 %; af_detect 23→12 distinct");
}
