//! Ablation study of the RISSP design choices called out in DESIGN.md:
//!
//! 1. **Synthesis off** — stitch ModularEX without the redundancy-removal
//!    pass (§3.3 argues synthesis recovers cross-block sharing; this
//!    quantifies how much).
//! 2. **Subset-size scaling** — area/fmax as instructions are added one at
//!    a time, showing where the "unused-instruction tax" of a full core
//!    comes from (shifters and loads dominate).
//! 3. **Switch overhead** — the cost of the ModularEX case-statement mux
//!    relative to the datapath blocks it steers.

use bench::header;
use flexic::{sta, tech::Tech};
use hwlib::HwLibrary;
use netlist::stats::GateCounts;
use riscv_isa::Mnemonic;
use rissp::processor::build_core;
use rissp::profile::InstructionSubset;
use rissp::Rissp;

fn main() {
    header("Ablation — synthesis, subset scaling, switch overhead");
    let lib = HwLibrary::build_full();
    let t = Tech::flexic_gen();

    // 1. Synthesis on/off.
    println!("1) redundancy removal by synthesis (§3.3):");
    for names in [
        vec!["addi", "add", "jal"],
        vec![
            "addi", "add", "sub", "and", "or", "xor", "jal", "beq", "lw", "sw",
        ],
        Vec::new(), // full ISA
    ] {
        let subset = if names.is_empty() {
            InstructionSubset::full_isa()
        } else {
            InstructionSubset::from_names(names.iter().copied())
        };
        let unopt = build_core(&lib, &subset);
        let rissp = Rissp::generate(&lib, &subset);
        let before = GateCounts::of(&unopt).nand2_equivalent();
        let after = GateCounts::of(&rissp.core).nand2_equivalent();
        println!(
            "   {:>2} instructions: stitched {:>7.0} → synthesised {:>7.0} NAND2 ({:>4.1}% removed)",
            subset.len(),
            before,
            after,
            100.0 * (1.0 - after / before)
        );
    }

    // 2. Subset scaling: grow from a seed core, adding instruction groups.
    println!();
    println!("2) incremental cost per instruction group:");
    let groups: [(&str, Vec<Mnemonic>); 7] = [
        (
            "control (jal/jalr/beq/bne)",
            vec![Mnemonic::Jal, Mnemonic::Jalr, Mnemonic::Beq, Mnemonic::Bne],
        ),
        (
            "add/sub",
            vec![Mnemonic::Add, Mnemonic::Addi, Mnemonic::Sub],
        ),
        (
            "logic",
            vec![
                Mnemonic::And,
                Mnemonic::Andi,
                Mnemonic::Or,
                Mnemonic::Ori,
                Mnemonic::Xor,
                Mnemonic::Xori,
            ],
        ),
        (
            "compares",
            vec![
                Mnemonic::Slt,
                Mnemonic::Slti,
                Mnemonic::Sltu,
                Mnemonic::Sltiu,
                Mnemonic::Blt,
                Mnemonic::Bge,
                Mnemonic::Bltu,
                Mnemonic::Bgeu,
            ],
        ),
        ("word memory", vec![Mnemonic::Lw, Mnemonic::Sw]),
        (
            "sub-word memory",
            vec![
                Mnemonic::Lb,
                Mnemonic::Lbu,
                Mnemonic::Lh,
                Mnemonic::Lhu,
                Mnemonic::Sb,
                Mnemonic::Sh,
            ],
        ),
        (
            "shifts",
            vec![
                Mnemonic::Sll,
                Mnemonic::Slli,
                Mnemonic::Srl,
                Mnemonic::Srli,
                Mnemonic::Sra,
                Mnemonic::Srai,
            ],
        ),
    ];
    let mut subset = InstructionSubset::new();
    let mut prev_area = 0.0;
    for (label, members) in groups {
        subset.extend(members);
        let rissp = Rissp::generate(&lib, &subset);
        let area = GateCounts::of(&rissp.core).nand2_equivalent();
        let cp = sta::critical_path_ns(&rissp.core, &t);
        println!(
            "   +{:<28} {:>2} ins, {:>7.0} NAND2 (+{:>5.0}), fmax {:>5.0} kHz",
            label,
            subset.len(),
            area,
            area - prev_area,
            1e6 / cp
        );
        prev_area = area;
    }

    // 3. Switch overhead: ModularEX vs the sum of its standalone blocks.
    println!();
    println!("3) ModularEX switch overhead vs standalone blocks:");
    for names in [
        vec!["add", "sub"],
        vec!["add", "sub", "xor", "and", "lw", "sw", "beq", "jal"],
    ] {
        let subset = InstructionSubset::from_names(names.iter().copied());
        let mex = rissp::modularex::build_modularex(&lib, &subset);
        let mex_area = GateCounts::of(&mex).nand2_equivalent();
        let blocks_area: f64 = subset
            .iter()
            .map(|m| GateCounts::of(&lib.block(m).netlist).nand2_equivalent())
            .sum();
        println!(
            "   {:>2} blocks: Σ standalone {:>7.0} NAND2, ModularEX {:>7.0} (switch/steering overhead {:+.1}%)",
            subset.len(),
            blocks_area,
            mex_area,
            100.0 * (mex_area / blocks_area - 1.0)
        );
    }
}
