//! The evaluation workloads of the paper (§4): the 22 Embench benchmarks
//! plus the three extreme-edge applications (*armpit*, *xgboost*,
//! *af_detect*), re-implemented in the `xcc` eDSL and compiled to RV32E.
//!
//! Every workload is a full baremetal program whose `main` returns a
//! checksum in `a0`.  Correctness is established differentially: all five
//! optimisation levels must produce the same checksum, and the gate-level
//! RISSP must reproduce the reference emulator's run exactly (the paper's
//! RISCOF flow).
//!
//! # Examples
//!
//! ```
//! use workloads::{all, by_name};
//! assert_eq!(all().len(), 25);
//! let crc = by_name("crc32").unwrap();
//! let image = crc.compile(xcc::OptLevel::O2).unwrap();
//! assert!(image.code_bytes() > 0);
//! ```

mod edge;
mod embench_a;
mod embench_b;

use riscv_emu::{Emulator, HaltReason};
use xcc::ast::Program;
use xcc::{compile, CompileError, CompiledProgram, OptLevel};

/// Which suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// One of the 22 Embench-style embedded benchmarks.
    Embench,
    /// One of the three extreme-edge applications of §4.
    ExtremeEdge,
}

/// A benchmark program plus metadata.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The paper's benchmark name.
    pub name: &'static str,
    /// Suite membership.
    pub category: Category,
    /// The source program.
    pub program: Program,
}

impl Workload {
    /// Compiles the workload at the given optimisation level.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] (would indicate a bug in the workload).
    pub fn compile(&self, level: OptLevel) -> Result<CompiledProgram, CompileError> {
        compile(&self.program, level)
    }

    /// Runs the workload on the reference emulator and returns `a0`
    /// (the checksum `main` computes).
    ///
    /// # Panics
    ///
    /// Panics if compilation or emulation fails, or if the program does not
    /// halt within the step budget — all indicate workload bugs.
    pub fn run_reference(&self, level: OptLevel) -> u32 {
        let image = self
            .compile(level)
            .unwrap_or_else(|e| panic!("{}: {e}", self.name));
        let mut emu = Emulator::new();
        image.load(&mut emu);
        let summary = emu
            .run(80_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", self.name));
        assert_eq!(
            summary.halt,
            HaltReason::SelfLoop,
            "{} did not halt",
            self.name
        );
        emu.state().regs[10]
    }
}

/// All 25 workloads in the paper's order (Embench alphabetical, then the
/// extreme-edge applications).
pub fn all() -> Vec<Workload> {
    let mut v = embench_a::all();
    v.extend(embench_b::all());
    v.extend(edge::all());
    v
}

/// Looks up a workload by its paper name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// The three extreme-edge applications only.
pub fn extreme_edge() -> Vec<Workload> {
    all()
        .into_iter()
        .filter(|w| w.category == Category::ExtremeEdge)
        .collect()
}

/// Deterministic pseudo-random words for workload input data (xorshift32).
pub(crate) fn lcg_words(seed: u32, n: usize) -> Vec<u32> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            x
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_the_paper() {
        let names: Vec<&str> = all().iter().map(|w| w.name).collect();
        let expected = [
            "aha-mont64",
            "crc32",
            "cubic",
            "edn",
            "huffbench",
            "matmult-int",
            "md5sum",
            "minver",
            "nbody",
            "nettle-aes",
            "nettle-sha256",
            "nsichneu",
            "picojpeg",
            "primecount",
            "qrduino",
            "sglib-combined",
            "slre",
            "st",
            "statemate",
            "tarfind",
            "ud",
            "wikisort",
            "armpit",
            "xgboost",
            "af_detect",
        ];
        assert_eq!(names, expected);
    }

    #[test]
    fn extreme_edge_subset() {
        let ee = extreme_edge();
        assert_eq!(ee.len(), 3);
        assert!(ee.iter().all(|w| w.category == Category::ExtremeEdge));
    }

    #[test]
    fn every_workload_compiles_at_every_level() {
        for w in all() {
            for level in OptLevel::ALL {
                w.compile(level)
                    .unwrap_or_else(|e| panic!("{} {level}: {e}", w.name));
            }
        }
    }

    #[test]
    fn checksums_agree_across_optimisation_levels() {
        // Differential correctness: -O0 through -Oz must agree.
        for w in all() {
            let baseline = w.run_reference(OptLevel::O0);
            for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Oz] {
                let got = w.run_reference(level);
                assert_eq!(got, baseline, "{} diverges at {level}", w.name);
            }
            assert_ne!(baseline, 0, "{}: trivial checksum", w.name);
        }
    }

    #[test]
    fn distinct_instruction_counts_land_in_papers_band() {
        // §4.1: applications use 9–32 distinct instructions (24–86 % of ISA).
        for w in all() {
            let image = w.compile(OptLevel::O2).unwrap();
            let mut set = std::collections::BTreeSet::new();
            for word in &image.words {
                if let Ok(i) = riscv_isa::Instruction::decode(*word) {
                    set.insert(i.mnemonic);
                }
            }
            assert!(
                (9..=34).contains(&set.len()),
                "{}: {} distinct instructions",
                w.name,
                set.len()
            );
        }
    }
}
