//! The three extreme-edge applications of §4.
//!
//! * `armpit` — malodour classification with two decision trees (one per
//!   gender), as in the FlexIC deployment of Ozer et al. (Nature Comms '23).
//! * `xgboost` — a gradient-boosted decision-stump ensemble extracted for
//!   the Pima Indians diabetes dataset (binary classification).
//! * `af_detect` — the APPT atrial-fibrillation detector: R-peak detection,
//!   RR/ΔRR intervals, and a Bloom-filter binary predictor (Ozer et al.,
//!   FLEPS '24).

use crate::{Category, Workload};
use xcc::ast::build::*;
use xcc::ast::{BinOp, DataObject, Function, Program};

fn w(name: &'static str, program: Program) -> Workload {
    Workload {
        name,
        category: Category::ExtremeEdge,
        program,
    }
}

/// `armpit`: two depth-3 decision trees over 8 odour-sensor features,
/// classifying malodour intensity per gender.
pub fn armpit() -> Workload {
    // classify(base): walks the tree at `base` for the feature vector at
    // `ap_feat`.  Nodes are 4 words: [feature, threshold, left, right];
    // leaves have feature == -1 and the class in `threshold`.
    // params 0=base; locals 1=node 2=feat 3=thr
    let classify = Function {
        name: "classify",
        params: 1,
        locals: 4,
        body: vec![
            set(1, c(0)),
            while_(
                c(1),
                vec![
                    set(2, lw(add(v(0), shl(v(1), c(4))))),
                    set(3, lw(add(v(0), add(shl(v(1), c(4)), c(4))))),
                    if_(eq(v(2), c(-1)), vec![ret(v(3))]),
                    if_else(
                        lt(lw(add(ga("ap_feat"), shl(v(2), c(2)))), v(3)),
                        vec![set(1, lw(add(v(0), add(shl(v(1), c(4)), c(8)))))],
                        vec![set(1, lw(add(v(0), add(shl(v(1), c(4)), c(12)))))],
                    ),
                ],
            ),
            ret(c(0)),
        ],
    };
    // main: classify 8 sensor vectors with both trees; pack the scores.
    // locals: 0=trial 1=i 2=male 3=female 4=acc
    let tree = |leaf_bias: i32| -> Vec<u32> {
        // Seven nodes: a full depth-3 tree.  Encoded as i32 words.
        let nodes: Vec<i32> = vec![
            0,
            120,
            1,
            2, // node 0: feat0 < 120 ?
            2,
            80,
            3,
            4, // node 1
            5,
            200,
            5,
            6, // node 2
            -1,
            leaf_bias,
            0,
            0, // node 3 (leaf)
            -1,
            leaf_bias + 1,
            0,
            0, // node 4
            -1,
            leaf_bias + 2,
            0,
            0, // node 5
            -1,
            leaf_bias + 3,
            0,
            0, // node 6
        ];
        nodes.into_iter().map(|x| x as u32).collect()
    };
    let sensors: Vec<u32> = crate::lcg_words(0xa9a9, 64)
        .iter()
        .map(|x| x % 256)
        .collect();
    let main = Function {
        name: "main",
        params: 0,
        locals: 5,
        body: vec![
            set(4, c(0)),
            for_(
                0,
                c(0),
                c(8),
                vec![
                    // Load this trial's 8 features into ap_feat.
                    for_(
                        1,
                        c(0),
                        c(8),
                        vec![sw(
                            add(ga("ap_feat"), shl(v(1), c(2))),
                            lw(add(ga("ap_raw"), shl(add(shl(v(0), c(3)), v(1)), c(2)))),
                        )],
                    ),
                    set(2, call("classify", vec![ga("ap_tree_m")])),
                    set(3, call("classify", vec![ga("ap_tree_f")])),
                    set(4, add(v(4), add(shl(v(2), c(4)), v(3)))),
                ],
            ),
            ret(v(4)),
        ],
    };
    let data = vec![
        DataObject {
            name: "ap_raw",
            words: sensors,
        },
        DataObject {
            name: "ap_feat",
            words: vec![0; 8],
        },
        DataObject {
            name: "ap_tree_m",
            words: tree(0),
        },
        DataObject {
            name: "ap_tree_f",
            words: tree(4),
        },
    ];
    w(
        "armpit",
        Program {
            functions: vec![classify, main],
            data,
        },
    )
}

/// `xgboost`: a boosted decision-stump ensemble over the Pima diabetes
/// features (8 attributes), summing per-tree scores and thresholding.
pub fn xgboost() -> Workload {
    // Stumps: [feature, threshold, score_if_less, score_if_geq] × 12.
    let stumps: Vec<i32> = vec![
        1, 130, -20, 35, // glucose
        5, 30, -10, 22, // BMI
        7, 40, -8, 18, // age
        0, 6, -5, 12, // pregnancies
        6, 50, -6, 14, // pedigree (scaled)
        2, 80, 4, -9, // blood pressure
        3, 25, -3, 7, // skin thickness
        4, 120, -4, 11, // insulin
        1, 160, -15, 28, // glucose again (boosting)
        5, 38, -7, 16, //
        7, 52, -5, 12, //
        1, 100, -12, 9,
    ];
    // 16 patients × 8 attributes.
    let patients: Vec<u32> = crate::lcg_words(0x9b0c, 128)
        .iter()
        .enumerate()
        .map(|(i, x)| match i % 8 {
            0 => x % 12,
            1 => 70 + x % 130,
            2 => 50 + x % 60,
            3 => 10 + x % 40,
            4 => x % 300,
            5 => 18 + x % 35,
            6 => x % 100,
            _ => 21 + x % 60,
        })
        .collect();
    // main: locals 0=p 1=t 2=score 3=feat 4=pos
    let main = Function {
        name: "main",
        params: 0,
        locals: 5,
        body: vec![
            set(4, c(0)),
            for_(
                0,
                c(0),
                c(16),
                vec![
                    set(2, c(0)),
                    for_(
                        1,
                        c(0),
                        c(12),
                        vec![
                            set(
                                3,
                                lw(add(
                                    ga("xg_p"),
                                    shl(
                                        add(
                                            shl(v(0), c(3)),
                                            lw(add(ga("xg_s"), shl(shl(v(1), c(2)), c(2)))),
                                        ),
                                        c(2),
                                    ),
                                )),
                            ),
                            if_else(
                                lt(
                                    v(3),
                                    lw(add(ga("xg_s"), add(shl(shl(v(1), c(2)), c(2)), c(4)))),
                                ),
                                vec![set(
                                    2,
                                    add(
                                        v(2),
                                        lw(add(ga("xg_s"), add(shl(shl(v(1), c(2)), c(2)), c(8)))),
                                    ),
                                )],
                                vec![set(
                                    2,
                                    add(
                                        v(2),
                                        lw(add(ga("xg_s"), add(shl(shl(v(1), c(2)), c(2)), c(12)))),
                                    ),
                                )],
                            ),
                        ],
                    ),
                    // Positive ensemble score ⇒ diabetic.
                    if_(bin(BinOp::GtS, v(2), c(0)), vec![set(4, add(v(4), c(1)))]),
                    set(4, xor(v(4), shl(and(v(2), c(0xff)), c(8)))),
                ],
            ),
            ret(add(v(4), c(1))),
        ],
    };
    let data = vec![
        DataObject {
            name: "xg_s",
            words: stumps.into_iter().map(|x| x as u32).collect(),
        },
        DataObject {
            name: "xg_p",
            words: patients,
        },
    ];
    w(
        "xgboost",
        Program {
            functions: vec![main],
            data,
        },
    )
}

/// `af_detect`: the APPT pipeline — R-peak detection on a synthetic ECG,
/// RR and ΔRR intervals, then a Bloom-filter presence predictor.
pub fn af_detect() -> Workload {
    // Synthetic ECG: baseline noise with peaks of irregular spacing (AF-ish).
    let ecg: Vec<u32> = {
        let mut samples = vec![40u32; 256];
        let peaks = [20usize, 55, 84, 121, 147, 186, 210, 241];
        for (k, &p) in peaks.iter().enumerate() {
            samples[p] = 200 + (k as u32 * 7) % 30;
            samples[p - 1] = 120;
            samples[p + 1] = 110;
        }
        samples
    };
    // bloom_hash(x, salt): params 0,1; locals 2
    let bloom_hash = Function {
        name: "bloom_hash",
        params: 2,
        locals: 3,
        body: vec![
            set(2, xor(v(0), shl(v(1), c(3)))),
            set(2, xor(v(2), shr(v(2), c(5)))),
            set(2, add(v(2), shl(v(2), c(2)))),
            ret(and(v(2), c(127))),
        ],
    };
    // main: locals 0=i 1=val 2=lastpeak 3=rr 4=lastrr 5=drr 6=h 7=af 8=word 9=bit
    let main = Function {
        name: "main",
        params: 0,
        locals: 10,
        body: vec![
            set(2, c(-1)),
            set(4, c(0)),
            set(7, c(0)),
            for_(
                0,
                c(1),
                c(255),
                vec![
                    set(1, lw(add(ga("af_ecg"), shl(v(0), c(2))))),
                    // R peak: above threshold and a local maximum.
                    if_(
                        and(
                            bin(BinOp::GtS, v(1), c(100)),
                            and(
                                bin(
                                    BinOp::GeS,
                                    v(1),
                                    lw(add(ga("af_ecg"), shl(sub(v(0), c(1)), c(2)))),
                                ),
                                bin(
                                    BinOp::GtS,
                                    v(1),
                                    lw(add(ga("af_ecg"), shl(add(v(0), c(1)), c(2)))),
                                ),
                            ),
                        ),
                        vec![
                            if_(
                                bin(BinOp::GeS, v(2), c(0)),
                                vec![
                                    set(3, sub(v(0), v(2))),
                                    if_(
                                        ne(v(4), c(0)),
                                        vec![
                                            set(5, sub(v(3), v(4))),
                                            if_(lt(v(5), c(0)), vec![set(5, sub(c(0), v(5)))]),
                                            // Bloom filter: set bit for (rr, drr).
                                            set(6, call("bloom_hash", vec![v(3), v(5)])),
                                            set(8, shr(v(6), c(5))),
                                            set(9, and(v(6), c(31))),
                                            sw(
                                                add(ga("af_bloom"), shl(v(8), c(2))),
                                                or(
                                                    lw(add(ga("af_bloom"), shl(v(8), c(2)))),
                                                    shl(c(1), v(9)),
                                                ),
                                            ),
                                            // Irregular rhythm votes for AF.
                                            if_(
                                                bin(BinOp::GtS, v(5), c(6)),
                                                vec![set(7, add(v(7), c(1)))],
                                            ),
                                        ],
                                    ),
                                    set(4, v(3)),
                                ],
                            ),
                            set(2, v(0)),
                        ],
                    ),
                ],
            ),
            // Decision: AF if enough irregular intervals; fold bloom words.
            set(6, c(0)),
            for_(
                0,
                c(0),
                c(4),
                vec![set(6, xor(v(6), lw(add(ga("af_bloom"), shl(v(0), c(2))))))],
            ),
            ret(add(
                shl(v(7), c(16)),
                xor(v(6), bin(BinOp::GtS, v(7), c(3))),
            )),
        ],
    };
    let data = vec![
        DataObject {
            name: "af_ecg",
            words: ecg,
        },
        DataObject {
            name: "af_bloom",
            words: vec![0; 4],
        },
    ];
    w(
        "af_detect",
        Program {
            functions: vec![bloom_hash, main],
            data,
        },
    )
}

/// The three extreme-edge applications.
pub fn all() -> Vec<Workload> {
    vec![armpit(), xgboost(), af_detect()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcc::OptLevel;

    #[test]
    fn af_detect_flags_irregular_rhythm() {
        // The synthetic ECG has 8 peaks with irregular spacing: expect
        // several ΔRR > 6 votes (high halfword of the checksum).
        let r = af_detect().run_reference(OptLevel::O2);
        let votes = r >> 16;
        assert!(votes >= 3, "only {votes} irregularity votes");
    }

    #[test]
    fn armpit_classifies_all_trials() {
        let r = armpit().run_reference(OptLevel::O2);
        assert_ne!(r, 0);
    }

    #[test]
    fn xgboost_produces_stable_scores() {
        let a = xgboost().run_reference(OptLevel::O1);
        let b = xgboost().run_reference(OptLevel::O3);
        assert_eq!(a, b);
    }

    #[test]
    fn xgboost_subset_is_small() {
        // The paper's xgboost RISSP uses only 12 distinct instructions; ours
        // should also be the smallest of the three extreme-edge apps.
        let count = |w: &Workload| {
            let image = w.compile(OptLevel::O2).unwrap();
            image
                .words
                .iter()
                .filter_map(|&x| riscv_isa::Instruction::decode(x).ok())
                .map(|i| i.mnemonic)
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        };
        let xg = count(&xgboost());
        let af = count(&af_detect());
        assert!(xg <= af, "xgboost {xg} vs af_detect {af}");
    }
}
