//! Embench workloads, second half: `nsichneu` … `wikisort`.

use crate::{lcg_words, Category, Workload};
use xcc::ast::build::*;
use xcc::ast::{BinOp, DataObject, Function, Program};

fn w(name: &'static str, program: Program) -> Workload {
    Workload {
        name,
        category: Category::Embench,
        program,
    }
}

/// `nsichneu`: a large Petri-net style token machine — long chains of
/// guarded updates on word-sized places (branch-heavy, no byte traffic).
pub fn nsichneu() -> Workload {
    // locals: 0=iter 1=p0 2=p1 3=p2 4=p3 5=fired
    let main = Function {
        name: "main",
        params: 0,
        locals: 6,
        body: vec![
            set(1, c(3)),
            set(2, c(0)),
            set(3, c(5)),
            set(4, c(0)),
            set(5, c(0)),
            for_(
                0,
                c(0),
                c(200),
                vec![
                    // T1: p0 && p2 -> p1
                    if_(
                        and(bin(BinOp::GtS, v(1), c(0)), bin(BinOp::GtS, v(3), c(0))),
                        vec![
                            set(1, sub(v(1), c(1))),
                            set(3, sub(v(3), c(1))),
                            set(2, add(v(2), c(2))),
                            set(5, add(v(5), c(1))),
                        ],
                    ),
                    // T2: p1 -> p3
                    if_(
                        bin(BinOp::GtS, v(2), c(1)),
                        vec![
                            set(2, sub(v(2), c(2))),
                            set(4, add(v(4), c(1))),
                            set(5, add(v(5), c(1))),
                        ],
                    ),
                    // T3: p3 -> p0, p2 (refill)
                    if_(
                        bin(BinOp::GtS, v(4), c(2)),
                        vec![
                            set(4, sub(v(4), c(3))),
                            set(1, add(v(1), c(2))),
                            set(3, add(v(3), c(2))),
                            set(5, add(v(5), c(1))),
                        ],
                    ),
                ],
            ),
            ret(add(shl(v(5), c(8)), add(add(v(1), v(2)), add(v(3), v(4))))),
        ],
    };
    w(
        "nsichneu",
        Program {
            functions: vec![main],
            data: vec![],
        },
    )
}

/// `picojpeg`: 8-point integer DCT butterflies with byte I/O and clamping.
pub fn picojpeg() -> Workload {
    // locals: 0=blk 1=i 2=a 3=b 4=t 5=sum
    let pixels: Vec<u32> = lcg_words(0x1e61, 16); // 64 bytes = one 8×8 block
    let main = Function {
        name: "main",
        params: 0,
        locals: 6,
        body: vec![
            set(5, c(0)),
            for_(
                0,
                c(0),
                c(8),
                vec![
                    // Butterfly pass over row `blk` (stride 8 bytes).
                    for_(
                        1,
                        c(0),
                        c(4),
                        vec![
                            set(2, lb(add(ga("jpg_in"), add(shl(v(0), c(3)), v(1))))),
                            set(
                                3,
                                lb(add(ga("jpg_in"), add(shl(v(0), c(3)), sub(c(7), v(1))))),
                            ),
                            set(4, add(v(2), v(3))),
                            // Scale and clamp to [-128, 127].
                            set(4, sar(add(v(4), shl(v(2), c(1))), c(2))),
                            if_(bin(BinOp::GtS, v(4), c(127)), vec![set(4, c(127))]),
                            if_(lt(v(4), c(-128)), vec![set(4, c(-128))]),
                            sb(add(ga("jpg_out"), add(shl(v(0), c(3)), v(1))), v(4)),
                            set(5, add(v(5), and(v(4), c(0xff)))),
                        ],
                    ),
                ],
            ),
            ret(add(v(5), c(1))),
        ],
    };
    let data = vec![
        DataObject {
            name: "jpg_in",
            words: pixels,
        },
        DataObject {
            name: "jpg_out",
            words: vec![0; 16],
        },
    ];
    w(
        "picojpeg",
        Program {
            functions: vec![main],
            data,
        },
    )
}

/// `primecount`: trial-division prime counting below 200.
pub fn primecount() -> Workload {
    // locals: 0=n 1=d 2=isp 3=count
    let main = Function {
        name: "main",
        params: 0,
        locals: 4,
        body: vec![
            set(3, c(0)),
            for_(
                0,
                c(2),
                c(200),
                vec![
                    set(2, c(1)),
                    set(1, c(2)),
                    while_(
                        and(bin(BinOp::LeS, mul(v(1), v(1)), v(0)), ne(v(2), c(0))),
                        vec![
                            if_(eq(bin(BinOp::RemU, v(0), v(1)), c(0)), vec![set(2, c(0))]),
                            set(1, add(v(1), c(1))),
                        ],
                    ),
                    if_(ne(v(2), c(0)), vec![set(3, add(v(3), c(1)))]),
                ],
            ),
            ret(v(3)),
        ],
    };
    w(
        "primecount",
        Program {
            functions: vec![main],
            data: vec![],
        },
    )
}

/// `qrduino`: GF(2⁸) Reed–Solomon style polynomial arithmetic.
pub fn qrduino() -> Workload {
    // gf_mul(a, b): params 0,1; locals 2=res 3=i
    let gf_mul = Function {
        name: "gf_mul",
        params: 2,
        locals: 4,
        body: vec![
            set(2, c(0)),
            set(3, c(0)),
            while_(
                lt(v(3), c(8)),
                vec![
                    if_(ne(and(v(1), c(1)), c(0)), vec![set(2, xor(v(2), v(0)))]),
                    set(0, shl(v(0), c(1))),
                    if_(
                        ne(and(v(0), c(0x100)), c(0)),
                        vec![set(0, xor(v(0), c(0x11d)))],
                    ),
                    set(1, shr(v(1), c(1))),
                    set(3, add(v(3), c(1))),
                ],
            ),
            ret(and(v(2), c(0xff))),
        ],
    };
    // main: RS parity over a 16-byte message with generator byte 0x1d.
    // locals: 0=i 1=j 2=fb 3=acc
    let msg: Vec<u32> = lcg_words(0x9d9d, 4);
    let main = Function {
        name: "main",
        params: 0,
        locals: 4,
        body: vec![
            for_(0, c(0), c(8), vec![sb(add(ga("qr_par"), v(0)), c(0))]),
            for_(
                0,
                c(0),
                c(16),
                vec![
                    set(2, xor(lbu(add(ga("qr_msg"), v(0))), lbu(ga("qr_par")))),
                    for_(
                        1,
                        c(0),
                        c(7),
                        vec![sb(
                            add(ga("qr_par"), v(1)),
                            xor(
                                lbu(add(ga("qr_par"), add(v(1), c(1)))),
                                call("gf_mul", vec![c(0x1d), v(2)]),
                            ),
                        )],
                    ),
                    sb(add(ga("qr_par"), c(7)), call("gf_mul", vec![c(0x2d), v(2)])),
                ],
            ),
            set(3, c(0)),
            for_(
                0,
                c(0),
                c(8),
                vec![set(3, add(shl(v(3), c(4)), lbu(add(ga("qr_par"), v(0)))))],
            ),
            ret(v(3)),
        ],
    };
    let data = vec![
        DataObject {
            name: "qr_msg",
            words: msg,
        },
        DataObject {
            name: "qr_par",
            words: vec![0; 2],
        },
    ];
    w(
        "qrduino",
        Program {
            functions: vec![gf_mul, main],
            data,
        },
    )
}

/// `sglib-combined`: container-library operations — insertion sort on an
/// array plus an array-encoded linked-list walk.
pub fn sglib_combined() -> Workload {
    // locals: 0=i 1=j 2=key 3=acc 4=node
    let vals: Vec<u32> = lcg_words(0x5a55, 16).iter().map(|x| x % 1000).collect();
    let main = Function {
        name: "main",
        params: 0,
        locals: 5,
        body: vec![
            // Insertion sort of arr[16].
            for_(
                0,
                c(1),
                c(16),
                vec![
                    set(2, lw(add(ga("sg_arr"), shl(v(0), c(2))))),
                    set(1, sub(v(0), c(1))),
                    while_(
                        and(
                            bin(BinOp::GeS, v(1), c(0)),
                            bin(BinOp::GtS, lw(add(ga("sg_arr"), shl(v(1), c(2)))), v(2)),
                        ),
                        vec![
                            sw(
                                add(ga("sg_arr"), shl(add(v(1), c(1)), c(2))),
                                lw(add(ga("sg_arr"), shl(v(1), c(2)))),
                            ),
                            set(1, sub(v(1), c(1))),
                        ],
                    ),
                    sw(add(ga("sg_arr"), shl(add(v(1), c(1)), c(2))), v(2)),
                ],
            ),
            // Linked list: next[i] = (i + 3) % 16 walk, 16 hops, summing.
            set(3, c(0)),
            set(4, c(0)),
            for_(
                0,
                c(0),
                c(16),
                vec![
                    set(3, add(v(3), lw(add(ga("sg_arr"), shl(v(4), c(2)))))),
                    set(4, and(add(v(4), c(3)), c(15))),
                ],
            ),
            // Checksum: sorted-order signature + walk sum.
            set(2, c(0)),
            for_(
                0,
                c(1),
                c(16),
                vec![if_(
                    bin(
                        BinOp::GtS,
                        lw(add(ga("sg_arr"), shl(sub(v(0), c(1)), c(2)))),
                        lw(add(ga("sg_arr"), shl(v(0), c(2)))),
                    ),
                    vec![set(2, add(v(2), c(1)))],
                )],
            ),
            ret(add(shl(v(2), c(16)), v(3))),
        ],
    };
    let data = vec![DataObject {
        name: "sg_arr",
        words: vals,
    }];
    w(
        "sglib-combined",
        Program {
            functions: vec![main],
            data,
        },
    )
}

/// `slre`: a tiny regular-expression matcher (`a+b*c` style patterns over a
/// byte string).
pub fn slre() -> Workload {
    // match_at(pos): returns end position if "ab*c" matches at pos, else -1.
    // params 0=pos; locals 1=p
    let match_at = Function {
        name: "match_at",
        params: 1,
        locals: 2,
        body: vec![
            if_(
                ne(lbu(add(ga("re_s"), v(0))), c('a' as i32)),
                vec![ret(c(-1))],
            ),
            set(1, add(v(0), c(1))),
            while_(
                eq(lbu(add(ga("re_s"), v(1))), c('b' as i32)),
                vec![set(1, add(v(1), c(1)))],
            ),
            if_(
                ne(lbu(add(ga("re_s"), v(1))), c('c' as i32)),
                vec![ret(c(-1))],
            ),
            ret(add(v(1), c(1))),
        ],
    };
    // main: count matches and sum end positions over the string.
    // locals: 0=i 1=r 2=count 3=acc
    let text = b"xabbbcabcaxbcabbcxxabbbbcz";
    let mut bytes = text.to_vec();
    while !bytes.len().is_multiple_of(4) {
        bytes.push(0);
    }
    let words: Vec<u32> = bytes
        .chunks(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let n = text.len() as i32;
    let main = Function {
        name: "main",
        params: 0,
        locals: 4,
        body: vec![
            set(2, c(0)),
            set(3, c(0)),
            for_(
                0,
                c(0),
                c(n),
                vec![
                    set(1, call("match_at", vec![v(0)])),
                    if_(
                        bin(BinOp::GeS, v(1), c(0)),
                        vec![set(2, add(v(2), c(1))), set(3, add(v(3), v(1)))],
                    ),
                ],
            ),
            ret(add(shl(v(2), c(8)), v(3))),
        ],
    };
    let data = vec![DataObject {
        name: "re_s",
        words,
    }];
    w(
        "slre",
        Program {
            functions: vec![match_at, main],
            data,
        },
    )
}

/// `st`: statistics kernel — mean, variance and correlation in fixed point.
pub fn st() -> Workload {
    // locals: 0=i 1=sumx 2=sumy 3=sxx 4=sxy 5=x 6=y
    let xs: Vec<u32> = (0..32u32).map(|i| (i * 7 + 3) % 64).collect();
    let ys: Vec<u32> = (0..32u32).map(|i| (i * 13 + 5) % 64).collect();
    let main = Function {
        name: "main",
        params: 0,
        locals: 7,
        body: vec![
            set(1, c(0)),
            set(2, c(0)),
            set(3, c(0)),
            set(4, c(0)),
            for_(
                0,
                c(0),
                c(32),
                vec![
                    set(5, lw(add(ga("st_x"), shl(v(0), c(2))))),
                    set(6, lw(add(ga("st_y"), shl(v(0), c(2))))),
                    set(1, add(v(1), v(5))),
                    set(2, add(v(2), v(6))),
                    set(3, add(v(3), mul(v(5), v(5)))),
                    set(4, add(v(4), mul(v(5), v(6)))),
                ],
            ),
            // var = (sxx - sumx²/n)/n ; cov = (sxy - sumx*sumy/n)/n
            set(
                5,
                bin(
                    BinOp::DivS,
                    sub(v(3), bin(BinOp::DivS, mul(v(1), v(1)), c(32))),
                    c(32),
                ),
            ),
            set(
                6,
                bin(
                    BinOp::DivS,
                    sub(v(4), bin(BinOp::DivS, mul(v(1), v(2)), c(32))),
                    c(32),
                ),
            ),
            ret(add(add(shl(v(5), c(8)), v(6)), add(v(1), v(2)))),
        ],
    };
    let data = vec![
        DataObject {
            name: "st_x",
            words: xs,
        },
        DataObject {
            name: "st_y",
            words: ys,
        },
    ];
    w(
        "st",
        Program {
            functions: vec![main],
            data,
        },
    )
}

/// `statemate`: a car-window controller state machine (dense byte-level
/// branching, no arithmetic beyond counters).
pub fn statemate() -> Workload {
    // States: 0=idle 1=up 2=down 3=blocked. Events drive transitions.
    // locals: 0=i 1=state 2=ev 3=upcnt 4=downcnt 5=blkcnt
    let events: Vec<u32> = lcg_words(0x57a7, 16);
    let main = Function {
        name: "main",
        params: 0,
        locals: 6,
        body: vec![
            set(1, c(0)),
            set(3, c(0)),
            set(4, c(0)),
            set(5, c(0)),
            for_(
                0,
                c(0),
                c(64),
                vec![
                    set(2, and(lbu(add(ga("sm_ev"), v(0))), c(3))),
                    if_else(
                        eq(v(1), c(0)),
                        vec![
                            if_(eq(v(2), c(1)), vec![set(1, c(1))]),
                            if_(eq(v(2), c(2)), vec![set(1, c(2))]),
                        ],
                        vec![if_else(
                            eq(v(1), c(1)),
                            vec![
                                set(3, add(v(3), c(1))),
                                if_(eq(v(2), c(0)), vec![set(1, c(0))]),
                                if_(eq(v(2), c(3)), vec![set(1, c(3))]),
                            ],
                            vec![if_else(
                                eq(v(1), c(2)),
                                vec![
                                    set(4, add(v(4), c(1))),
                                    if_(eq(v(2), c(0)), vec![set(1, c(0))]),
                                ],
                                vec![
                                    set(5, add(v(5), c(1))),
                                    if_(eq(v(2), c(2)), vec![set(1, c(0))]),
                                ],
                            )],
                        )],
                    ),
                ],
            ),
            ret(add(add(shl(v(3), c(16)), shl(v(4), c(8))), add(v(5), v(1)))),
        ],
    };
    let data = vec![DataObject {
        name: "sm_ev",
        words: events,
    }];
    w(
        "statemate",
        Program {
            functions: vec![main],
            data,
        },
    )
}

/// `tarfind`: scan a tar-like archive for records whose name starts with a
/// marker byte (byte compares and record skipping).
pub fn tarfind() -> Workload {
    // Records of 32 bytes: byte 0 = tag, byte 1 = payload length in words.
    // locals: 0=off 1=tag 2=found 3=acc
    let mut bytes = Vec::new();
    for i in 0..12u8 {
        let mut rec = vec![if i % 3 == 0 { b'T' } else { b'x' }, i];
        rec.extend((0..30).map(|j| (i.wrapping_mul(7).wrapping_add(j)) & 0x7f));
        bytes.extend(rec);
    }
    let words: Vec<u32> = bytes
        .chunks(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let main = Function {
        name: "main",
        params: 0,
        locals: 4,
        body: vec![
            set(0, c(0)),
            set(2, c(0)),
            set(3, c(0)),
            while_(
                lt(v(0), c(12 * 32)),
                vec![
                    set(1, lbu(add(ga("tar_buf"), v(0)))),
                    if_(
                        eq(v(1), c(b'T' as i32)),
                        vec![
                            set(2, add(v(2), c(1))),
                            set(3, add(v(3), lbu(add(ga("tar_buf"), add(v(0), c(1)))))),
                        ],
                    ),
                    set(0, add(v(0), c(32))),
                ],
            ),
            ret(add(shl(v(2), c(8)), v(3))),
        ],
    };
    let data = vec![DataObject {
        name: "tar_buf",
        words,
    }];
    w(
        "tarfind",
        Program {
            functions: vec![main],
            data,
        },
    )
}

/// `ud`: LU decomposition (Doolittle) of a 4×4 integer matrix in Q8.
pub fn ud() -> Workload {
    // locals: 0=i 1=j 2=k 3=acc 4=t
    let at = |g: &'static str, row: xcc::ast::Expr, col: xcc::ast::Expr| {
        lw(add(ga(g), shl(add(shl(row, c(2)), col), c(2))))
    };
    let store = |g: &'static str, row: xcc::ast::Expr, col: xcc::ast::Expr, val: xcc::ast::Expr| {
        sw(add(ga(g), shl(add(shl(row, c(2)), col), c(2))), val)
    };
    // A diagonally dominant Q8 matrix.
    let a: Vec<u32> = [
        8, 1, 2, 1, //
        1, 9, 1, 2, //
        2, 1, 7, 1, //
        1, 2, 1, 6,
    ]
    .iter()
    .map(|&x: &i32| (x << 8) as u32)
    .collect();
    let main = Function {
        name: "main",
        params: 0,
        locals: 5,
        body: vec![
            // In-place Doolittle: for i, for j>i: L(j,i)=A(j,i)/A(i,i);
            // row_j -= L * row_i.
            for_(
                0,
                c(0),
                c(4),
                vec![for_(
                    1,
                    c(0),
                    c(4),
                    vec![if_(
                        bin(BinOp::GtS, v(1), v(0)),
                        vec![
                            set(
                                4,
                                bin(
                                    BinOp::DivS,
                                    shl(at("ud_a", v(1), v(0)), c(8)),
                                    at("ud_a", v(0), v(0)),
                                ),
                            ),
                            for_(
                                2,
                                c(0),
                                c(4),
                                vec![store(
                                    "ud_a",
                                    v(1),
                                    v(2),
                                    sub(
                                        at("ud_a", v(1), v(2)),
                                        sar(mul(v(4), at("ud_a", v(0), v(2))), c(8)),
                                    ),
                                )],
                            ),
                            store("ud_l", v(1), v(0), v(4)),
                        ],
                    )],
                )],
            ),
            // Checksum: diagonal of U plus sum of L.
            set(3, c(0)),
            for_(
                0,
                c(0),
                c(4),
                vec![set(3, add(v(3), at("ud_a", v(0), v(0))))],
            ),
            for_(
                0,
                c(0),
                c(4),
                vec![for_(
                    1,
                    c(0),
                    c(4),
                    vec![set(3, xor(v(3), at("ud_l", v(0), v(1))))],
                )],
            ),
            ret(v(3)),
        ],
    };
    let data = vec![
        DataObject {
            name: "ud_a",
            words: a,
        },
        DataObject {
            name: "ud_l",
            words: vec![0; 16],
        },
    ];
    w(
        "ud",
        Program {
            functions: vec![main],
            data,
        },
    )
}

/// `wikisort`: bottom-up merge sort of a 32-element array with a scratch
/// buffer.
pub fn wikisort() -> Workload {
    // locals: 0=width 1=lo 2=mid 3=hi 4=i 5=j 6=k 7=t
    let vals: Vec<u32> = lcg_words(0x0131, 32).iter().map(|x| x % 10_000).collect();
    let at = |g: &'static str, i: xcc::ast::Expr| lw(add(ga(g), shl(i, c(2))));
    let put =
        |g: &'static str, i: xcc::ast::Expr, val: xcc::ast::Expr| sw(add(ga(g), shl(i, c(2))), val);
    let main = Function {
        name: "main",
        params: 0,
        locals: 8,
        body: vec![
            set(0, c(1)),
            while_(
                lt(v(0), c(32)),
                vec![
                    set(1, c(0)),
                    while_(
                        lt(v(1), c(32)),
                        vec![
                            set(2, add(v(1), v(0))),
                            set(3, add(v(1), shl(v(0), c(1)))),
                            if_(bin(BinOp::GtS, v(2), c(32)), vec![set(2, c(32))]),
                            if_(bin(BinOp::GtS, v(3), c(32)), vec![set(3, c(32))]),
                            // Merge [lo,mid) and [mid,hi) into scratch.
                            set(4, v(1)),
                            set(5, v(2)),
                            set(6, v(1)),
                            while_(
                                lt(v(6), v(3)),
                                vec![
                                    if_else(
                                        and(
                                            lt(v(4), v(2)),
                                            or(
                                                bin(BinOp::GeS, v(5), v(3)),
                                                bin(BinOp::LeS, at("ws_a", v(4)), at("ws_a", v(5))),
                                            ),
                                        ),
                                        vec![
                                            put("ws_b", v(6), at("ws_a", v(4))),
                                            set(4, add(v(4), c(1))),
                                        ],
                                        vec![
                                            put("ws_b", v(6), at("ws_a", v(5))),
                                            set(5, add(v(5), c(1))),
                                        ],
                                    ),
                                    set(6, add(v(6), c(1))),
                                ],
                            ),
                            // Copy back.
                            set(6, v(1)),
                            while_(
                                lt(v(6), v(3)),
                                vec![put("ws_a", v(6), at("ws_b", v(6))), set(6, add(v(6), c(1)))],
                            ),
                            set(1, add(v(1), shl(v(0), c(1)))),
                        ],
                    ),
                    set(0, shl(v(0), c(1))),
                ],
            ),
            // Verify sortedness and fold a checksum.
            set(7, c(0)),
            for_(
                4,
                c(1),
                c(32),
                vec![if_(
                    bin(BinOp::GtS, at("ws_a", sub(v(4), c(1))), at("ws_a", v(4))),
                    vec![set(7, add(v(7), c(1)))],
                )],
            ),
            ret(add(shl(add(v(7), c(1)), c(16)), at("ws_a", c(31)))),
        ],
    };
    let data = vec![
        DataObject {
            name: "ws_a",
            words: vals,
        },
        DataObject {
            name: "ws_b",
            words: vec![0; 32],
        },
    ];
    w(
        "wikisort",
        Program {
            functions: vec![main],
            data,
        },
    )
}

/// The remaining eleven Embench workloads, in the paper's order.
pub fn all() -> Vec<Workload> {
    vec![
        nsichneu(),
        picojpeg(),
        primecount(),
        qrduino(),
        sglib_combined(),
        slre(),
        st(),
        statemate(),
        tarfind(),
        ud(),
        wikisort(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcc::OptLevel;

    #[test]
    fn primecount_is_exact() {
        // 46 primes below 200.
        assert_eq!(primecount().run_reference(OptLevel::O2), 46);
    }

    #[test]
    fn wikisort_sorts() {
        // High half-word = inversion count + 1, so 1 << 16 means sorted.
        let r = wikisort().run_reference(OptLevel::O1);
        assert_eq!(r >> 16, 1, "array not sorted: {r:#x}");
    }

    #[test]
    fn slre_counts_matches() {
        // "xabbbcabcaxbcabbcxxabbbbcz": matches at 1 (abbbc), 6 (abc),
        // 13 (abbc), 19 (abbbbc) → 4 matches.
        let r = slre().run_reference(OptLevel::O2);
        assert_eq!(r >> 8, 4, "match count wrong: {r:#x}");
    }

    #[test]
    fn tarfind_finds_tagged_records() {
        // Records 0, 3, 6, 9 are tagged 'T'.
        let r = tarfind().run_reference(OptLevel::O0);
        assert_eq!(r >> 8, 4);
        assert_eq!(r & 0xff, (3 + 6 + 9) as u32);
    }
}
