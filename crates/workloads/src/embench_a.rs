//! Embench workloads, first half: `aha-mont64` … `nettle-sha256`.
//!
//! Each function reproduces the algorithmic core of the corresponding
//! Embench benchmark (the paper compiles them for RV32E baremetal).  Input
//! data is deterministic; `main` returns a checksum.

use crate::{lcg_words, Category, Workload};
use xcc::ast::build::*;
use xcc::ast::{BinOp, DataObject, Function, Program};

fn w(name: &'static str, program: Program) -> Workload {
    Workload {
        name,
        category: Category::Embench,
        program,
    }
}

/// Packs signed 16-bit samples into little-endian words.
fn pack_halfwords(vals: &[i16]) -> Vec<u32> {
    vals.chunks(2)
        .map(|c| {
            let lo = c[0] as u16 as u32;
            let hi = c.get(1).map(|&v| v as u16 as u32).unwrap_or(0);
            lo | (hi << 16)
        })
        .collect()
}

/// `aha-mont64`: modular multiply-accumulate chains (Montgomery-style
/// arithmetic kernel).
pub fn aha_mont64() -> Workload {
    // locals: 0=acc 1=i 2=sum
    let m = 65521;
    let main = Function {
        name: "main",
        params: 0,
        locals: 3,
        body: vec![
            set(0, c(1)),
            set(2, c(0)),
            for_(
                1,
                c(0),
                c(40),
                vec![
                    set(0, bin(BinOp::RemU, add(mul(v(0), v(0)), c(12345)), c(m))),
                    set(2, xor(v(2), add(v(0), v(1)))),
                ],
            ),
            ret(v(2)),
        ],
    };
    w(
        "aha-mont64",
        Program {
            functions: vec![main],
            data: vec![],
        },
    )
}

/// `crc32`: bitwise CRC-32 over a 64-byte buffer.
pub fn crc32() -> Workload {
    // locals: 0=crc 1=i 2=byte 3=j 4=mask
    let main = Function {
        name: "main",
        params: 0,
        locals: 5,
        body: vec![
            set(0, c(-1)),
            for_(
                1,
                c(0),
                c(64),
                vec![
                    set(2, lbu(add(ga("crcbuf"), v(1)))),
                    set(0, xor(v(0), v(2))),
                    for_(
                        3,
                        c(0),
                        c(8),
                        vec![
                            set(4, sub(c(0), and(v(0), c(1)))),
                            set(0, xor(shr(v(0), c(1)), and(c(0xedb8_8320u32 as i32), v(4)))),
                        ],
                    ),
                ],
            ),
            ret(xor(v(0), c(-1))),
        ],
    };
    let data = vec![DataObject {
        name: "crcbuf",
        words: lcg_words(0xc3c3, 16),
    }];
    w(
        "crc32",
        Program {
            functions: vec![main],
            data,
        },
    )
}

/// `cubic`: fixed-point (Q8) Newton iteration for cube roots.
pub fn cubic() -> Workload {
    // locals: 0=sum 1=i 2=a 3=x 4=it 5=x2 6=x3 7=num 8=den
    let main = Function {
        name: "main",
        params: 0,
        locals: 9,
        body: vec![
            set(0, c(0)),
            for_(
                1,
                c(1),
                c(8),
                vec![
                    set(2, shl(v(1), c(8))),
                    set(3, add(v(2), c(64))),
                    for_(
                        4,
                        c(0),
                        c(10),
                        vec![
                            set(5, sar(mul(v(3), v(3)), c(8))),
                            set(6, sar(mul(v(5), v(3)), c(8))),
                            set(7, sub(v(6), v(2))),
                            set(8, add(add(v(5), v(5)), v(5))),
                            if_(
                                ne(v(8), c(0)),
                                vec![set(3, sub(v(3), bin(BinOp::DivS, shl(v(7), c(8)), v(8))))],
                            ),
                        ],
                    ),
                    set(0, add(v(0), v(3))),
                ],
            ),
            ret(v(0)),
        ],
    };
    w(
        "cubic",
        Program {
            functions: vec![main],
            data: vec![],
        },
    )
}

/// `edn`: FIR filter over a 16-bit signal (halfword memory traffic).
pub fn edn() -> Workload {
    // locals: 0=n 1=k 2=acc 3=x 4=c 5=sum
    let taps: Vec<i16> = vec![3, -5, 7, 11, -13, 17, 19, -23];
    let signal: Vec<i16> = (0..64)
        .map(|i| ((i * 37 + 11) % 251 - 125) as i16)
        .collect();
    let main = Function {
        name: "main",
        params: 0,
        locals: 6,
        body: vec![
            set(5, c(0)),
            for_(
                0,
                c(8),
                c(64),
                vec![
                    set(2, c(0)),
                    for_(
                        1,
                        c(0),
                        c(8),
                        vec![
                            set(3, lh(add(ga("edn_x"), shl(sub(v(0), v(1)), c(1))))),
                            set(4, lh(add(ga("edn_c"), shl(v(1), c(1))))),
                            set(2, add(v(2), mul(v(3), v(4)))),
                        ],
                    ),
                    sh(add(ga("edn_y"), shl(v(0), c(1))), sar(v(2), c(6))),
                    set(5, add(v(5), sar(v(2), c(6)))),
                ],
            ),
            ret(xor(v(5), c(0x5a5a))),
        ],
    };
    let data = vec![
        DataObject {
            name: "edn_x",
            words: pack_halfwords(&signal),
        },
        DataObject {
            name: "edn_c",
            words: pack_halfwords(&taps),
        },
        DataObject {
            name: "edn_y",
            words: vec![0; 32],
        },
    ];
    w(
        "edn",
        Program {
            functions: vec![main],
            data,
        },
    )
}

/// `huffbench`: frequency counting and prefix-style bit packing.
pub fn huffbench() -> Workload {
    // locals: 0=i 1=sym 2=acc 3=bits 4=f 5=len
    let main = Function {
        name: "main",
        params: 0,
        locals: 6,
        body: vec![
            // Count nibble frequencies into freq[16].
            for_(
                0,
                c(0),
                c(16),
                vec![sw(add(ga("hfreq"), shl(v(0), c(2))), c(0))],
            ),
            for_(
                0,
                c(0),
                c(96),
                vec![
                    set(1, and(lbu(add(ga("hbuf"), v(0))), c(15))),
                    sw(
                        add(ga("hfreq"), shl(v(1), c(2))),
                        add(lw(add(ga("hfreq"), shl(v(1), c(2)))), c(1)),
                    ),
                ],
            ),
            // Encode: common symbols get short codes.
            set(2, c(0)),
            set(3, c(0)),
            for_(
                0,
                c(0),
                c(96),
                vec![
                    set(1, and(lbu(add(ga("hbuf"), v(0))), c(15))),
                    set(4, lw(add(ga("hfreq"), shl(v(1), c(2))))),
                    if_else(
                        bin(BinOp::GtS, v(4), c(8)),
                        vec![set(5, c(3))],
                        vec![set(5, c(6))],
                    ),
                    set(2, xor(v(2), shl(v(1), and(v(3), c(31))))),
                    set(3, add(v(3), v(5))),
                ],
            ),
            ret(add(v(2), v(3))),
        ],
    };
    let data = vec![
        DataObject {
            name: "hbuf",
            words: lcg_words(0x4f4f, 24),
        },
        DataObject {
            name: "hfreq",
            words: vec![0; 16],
        },
    ];
    w(
        "huffbench",
        Program {
            functions: vec![main],
            data,
        },
    )
}

/// `matmult-int`: 8×8 integer matrix multiplication.
pub fn matmult_int() -> Workload {
    // locals: 0=i 1=j 2=k 3=acc 4=a 5=b 6=sum
    let a: Vec<u32> = lcg_words(0xaaaa, 64).iter().map(|x| x % 31).collect();
    let b: Vec<u32> = lcg_words(0xbbbb, 64).iter().map(|x| x % 29).collect();
    let idx = |m: xcc::ast::Expr, row, col| {
        add(m, shl(add(shl(row, c(3)), col), c(2))) // m + 4*(8*row+col)
    };
    let main = Function {
        name: "main",
        params: 0,
        locals: 7,
        body: vec![
            set(6, c(0)),
            for_(
                0,
                c(0),
                c(8),
                vec![for_(
                    1,
                    c(0),
                    c(8),
                    vec![
                        set(3, c(0)),
                        for_(
                            2,
                            c(0),
                            c(8),
                            vec![
                                set(4, lw(idx(ga("mma"), v(0), v(2)))),
                                set(5, lw(idx(ga("mmb"), v(2), v(1)))),
                                set(3, add(v(3), mul(v(4), v(5)))),
                            ],
                        ),
                        sw(idx(ga("mmc"), v(0), v(1)), v(3)),
                        set(6, add(v(6), v(3))),
                    ],
                )],
            ),
            ret(v(6)),
        ],
    };
    let data = vec![
        DataObject {
            name: "mma",
            words: a,
        },
        DataObject {
            name: "mmb",
            words: b,
        },
        DataObject {
            name: "mmc",
            words: vec![0; 64],
        },
    ];
    w(
        "matmult-int",
        Program {
            functions: vec![main],
            data,
        },
    )
}

/// `md5sum`: MD5-style mixing rounds over a 16-word block.
pub fn md5sum() -> Workload {
    // locals: 0=a 1=b 2=c 3=d 4=i 5=f 6=wv 7=tmp
    let k: Vec<u32> = lcg_words(0x3141, 16);
    let block: Vec<u32> = lcg_words(0x2718, 16);
    let main = Function {
        name: "main",
        params: 0,
        locals: 8,
        body: vec![
            set(0, c(0x6745_2301u32 as i32)),
            set(1, c(0xefcd_ab89u32 as i32)),
            set(2, c(0x98ba_dcfeu32 as i32)),
            set(3, c(0x1032_5476u32 as i32)),
            for_(
                4,
                c(0),
                c(32),
                vec![
                    // f = (b & c) | (~b & d)
                    set(5, or(and(v(1), v(2)), and(xor(v(1), c(-1)), v(3)))),
                    set(6, lw(add(ga("md5w"), shl(and(v(4), c(15)), c(2))))),
                    set(
                        7,
                        add(
                            add(v(0), v(5)),
                            add(v(6), lw(add(ga("md5k"), shl(and(v(4), c(15)), c(2))))),
                        ),
                    ),
                    // a = b + rotl(tmp, 7)
                    set(0, add(v(1), or(shl(v(7), c(7)), shr(v(7), c(25))))),
                    // rotate registers (a,b,c,d) <- (d,a,b,c)
                    set(7, v(3)),
                    set(3, v(2)),
                    set(2, v(1)),
                    set(1, v(0)),
                    set(0, v(7)),
                ],
            ),
            ret(xor(xor(v(0), v(1)), xor(v(2), v(3)))),
        ],
    };
    let data = vec![
        DataObject {
            name: "md5w",
            words: block,
        },
        DataObject {
            name: "md5k",
            words: k,
        },
    ];
    w(
        "md5sum",
        Program {
            functions: vec![main],
            data,
        },
    )
}

/// `minver`: 3×3 fixed-point (Q8) matrix inversion via the adjugate.
pub fn minver() -> Workload {
    // m in Q8. locals: 0=det 1=i 2=sum 3=t
    // Helper det2(a,b,c,d) = (a*d - b*c) >> 8.
    let det2 = Function {
        name: "det2",
        params: 4,
        locals: 4,
        body: vec![ret(sar(sub(mul(v(0), v(3)), mul(v(1), v(2))), c(8)))],
    };
    let m = |i: i32| lw(add(ga("mv_m"), c(i * 4)));
    let main = Function {
        name: "main",
        params: 0,
        locals: 4,
        body: vec![
            // det = m0*det2(m4,m5,m7,m8) - m1*det2(m3,m5,m6,m8) + m2*det2(m3,m4,m6,m7), Q8.
            set(
                0,
                sar(
                    add(
                        sub(
                            mul(m(0), call("det2", vec![m(4), m(5), m(7), m(8)])),
                            mul(m(1), call("det2", vec![m(3), m(5), m(6), m(8)])),
                        ),
                        mul(m(2), call("det2", vec![m(3), m(4), m(6), m(7)])),
                    ),
                    c(8),
                ),
            ),
            if_(eq(v(0), c(0)), vec![ret(c(0xdead))]),
            // Cofactor sum: adj entries divided by det.
            set(2, c(0)),
            set(3, call("det2", vec![m(4), m(5), m(7), m(8)])),
            set(2, add(v(2), bin(BinOp::DivS, shl(v(3), c(8)), v(0)))),
            set(3, call("det2", vec![m(0), m(2), m(6), m(8)])),
            set(2, add(v(2), bin(BinOp::DivS, shl(v(3), c(8)), v(0)))),
            set(3, call("det2", vec![m(0), m(1), m(3), m(4)])),
            set(2, add(v(2), bin(BinOp::DivS, shl(v(3), c(8)), v(0)))),
            ret(add(v(2), v(0))),
        ],
    };
    // Q8 matrix with a comfortably non-zero determinant.
    let mat: Vec<u32> = [4 << 8, 1 << 8, 2 << 8, 0, 3 << 8, 1 << 8, 1 << 8, 0, 2 << 8]
        .iter()
        .map(|&x| x as u32)
        .collect();
    let data = vec![DataObject {
        name: "mv_m",
        words: mat,
    }];
    w(
        "minver",
        Program {
            functions: vec![det2, main],
            data,
        },
    )
}

/// `nbody`: fixed-point gravitational toy integrator (no multiplies,
/// matching the paper's mul-free instruction list for nbody).
pub fn nbody() -> Workload {
    // locals: 0=step 1=i 2=j 3=dx 4=f 5=sum
    let pos: Vec<u32> = vec![(10 << 8) as u32, (60 << 8) as u32, (200 << 8) as u32];
    let idx = |g: &'static str, i| add(ga(g), shl(i, c(2)));
    let main = Function {
        name: "main",
        params: 0,
        locals: 6,
        body: vec![
            for_(
                0,
                c(0),
                c(16),
                vec![
                    for_(
                        1,
                        c(0),
                        c(3),
                        vec![for_(
                            2,
                            c(0),
                            c(3),
                            vec![if_(
                                ne(v(1), v(2)),
                                vec![
                                    set(3, sub(lw(idx("nb_p", v(2))), lw(idx("nb_p", v(1))))),
                                    set(4, sar(v(3), c(5))),
                                    sw(idx("nb_v", v(1)), add(lw(idx("nb_v", v(1))), v(4))),
                                ],
                            )],
                        )],
                    ),
                    for_(
                        1,
                        c(0),
                        c(3),
                        vec![sw(
                            idx("nb_p", v(1)),
                            add(lw(idx("nb_p", v(1))), sar(lw(idx("nb_v", v(1))), c(3))),
                        )],
                    ),
                ],
            ),
            set(5, c(0)),
            for_(
                1,
                c(0),
                c(3),
                vec![set(5, add(v(5), lw(idx("nb_p", v(1)))))],
            ),
            for_(
                1,
                c(0),
                c(3),
                vec![set(5, xor(v(5), lw(idx("nb_v", v(1)))))],
            ),
            ret(v(5)),
        ],
    };
    let data = vec![
        DataObject {
            name: "nb_p",
            words: pos,
        },
        DataObject {
            name: "nb_v",
            words: vec![0; 3],
        },
    ];
    w(
        "nbody",
        Program {
            functions: vec![main],
            data,
        },
    )
}

/// `nettle-aes`: S-box substitution + key mixing rounds on a 16-byte state.
pub fn nettle_aes() -> Workload {
    // locals: 0=r 1=i 2=t
    // A bijective 256-entry S-box: affine-ish permutation computed host-side.
    let sbox: Vec<u32> = {
        let bytes: Vec<u8> = (0..256u32)
            .map(|i| {
                let x = i as u8;
                x.rotate_left(1) ^ x.wrapping_mul(17) ^ 0x63
            })
            .collect();
        bytes
            .chunks(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    };
    let key: Vec<u32> = lcg_words(0xa5e5, 8);
    let state: Vec<u32> = lcg_words(0x1001, 4);
    let main = Function {
        name: "main",
        params: 0,
        locals: 3,
        body: vec![
            for_(
                0,
                c(0),
                c(4),
                vec![for_(
                    1,
                    c(0),
                    c(16),
                    vec![
                        set(
                            2,
                            xor(
                                lbu(add(ga("aes_st"), v(1))),
                                lbu(add(ga("aes_key"), and(add(shl(v(0), c(4)), v(1)), c(31)))),
                            ),
                        ),
                        sb(add(ga("aes_st"), v(1)), lbu(add(ga("aes_sbox"), v(2)))),
                    ],
                )],
            ),
            // Fold the state into a checksum.
            set(2, c(0)),
            for_(
                1,
                c(0),
                c(4),
                vec![set(2, xor(v(2), lw(add(ga("aes_st"), shl(v(1), c(2))))))],
            ),
            ret(v(2)),
        ],
    };
    let data = vec![
        DataObject {
            name: "aes_sbox",
            words: sbox,
        },
        DataObject {
            name: "aes_key",
            words: key,
        },
        DataObject {
            name: "aes_st",
            words: state,
        },
    ];
    w(
        "nettle-aes",
        Program {
            functions: vec![main],
            data,
        },
    )
}

/// `nettle-sha256`: the SHA-256 compression structure (24 rounds).
pub fn nettle_sha256() -> Workload {
    // ror helper: params 0=x 1=n; locals 2
    let ror = Function {
        name: "ror32",
        params: 2,
        locals: 2,
        body: vec![ret(or(shr(v(0), v(1)), shl(v(0), sub(c(32), v(1)))))],
    };
    // locals: 0=a 1=b 2=c 3=e 4=t 5=w 6=s1 7=ch
    let kconst: Vec<u32> = lcg_words(0x6a09, 24);
    let wdata: Vec<u32> = lcg_words(0xbb67, 24);
    let main = Function {
        name: "main",
        params: 0,
        locals: 8,
        body: vec![
            set(0, c(0x6a09_e667u32 as i32)),
            set(1, c(0xbb67_ae85u32 as i32)),
            set(2, c(0x3c6e_f372u32 as i32)),
            set(3, c(0x510e_527fu32 as i32)),
            for_(
                4,
                c(0),
                c(24),
                vec![
                    set(5, lw(add(ga("shaw"), shl(v(4), c(2))))),
                    set(
                        6,
                        xor(
                            xor(
                                call("ror32", vec![v(3), c(6)]),
                                call("ror32", vec![v(3), c(11)]),
                            ),
                            call("ror32", vec![v(3), c(25)]),
                        ),
                    ),
                    set(7, xor(and(v(3), v(0)), and(xor(v(3), c(-1)), v(1)))),
                    set(
                        5,
                        add(
                            add(v(5), lw(add(ga("shak"), shl(v(4), c(2))))),
                            add(v(6), v(7)),
                        ),
                    ),
                    set(3, add(v(2), v(5))),
                    set(2, v(1)),
                    set(1, v(0)),
                    set(0, add(v(5), call("ror32", vec![v(0), c(2)]))),
                ],
            ),
            ret(xor(xor(v(0), v(1)), xor(v(2), v(3)))),
        ],
    };
    let data = vec![
        DataObject {
            name: "shak",
            words: kconst,
        },
        DataObject {
            name: "shaw",
            words: wdata,
        },
    ];
    w(
        "nettle-sha256",
        Program {
            functions: vec![ror, main],
            data,
        },
    )
}

/// The first eleven Embench workloads, in the paper's order.
pub fn all() -> Vec<Workload> {
    vec![
        aha_mont64(),
        crc32(),
        cubic(),
        edn(),
        huffbench(),
        matmult_int(),
        md5sum(),
        minver(),
        nbody(),
        nettle_aes(),
        nettle_sha256(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcc::OptLevel;

    #[test]
    fn crc32_matches_host_computation() {
        // Host-side golden CRC-32 over the same bytes.
        let words = lcg_words(0xc3c3, 16);
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut crc = 0xffff_ffffu32;
        for &b in &bytes {
            crc ^= b as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xedb8_8320 & mask);
            }
        }
        crc = !crc;
        assert_eq!(crc32().run_reference(OptLevel::O2), crc);
    }

    #[test]
    fn matmult_matches_host_computation() {
        let a: Vec<u32> = lcg_words(0xaaaa, 64).iter().map(|x| x % 31).collect();
        let b: Vec<u32> = lcg_words(0xbbbb, 64).iter().map(|x| x % 29).collect();
        let mut sum = 0u32;
        for i in 0..8 {
            for j in 0..8 {
                let mut acc = 0u32;
                for k in 0..8 {
                    acc = acc.wrapping_add(a[i * 8 + k].wrapping_mul(b[k * 8 + j]));
                }
                sum = sum.wrapping_add(acc);
            }
        }
        assert_eq!(matmult_int().run_reference(OptLevel::O1), sum);
    }

    #[test]
    fn cubic_converges_to_cube_roots() {
        // Σ cube-root(i) for i in 1..8 in Q8 ≈ Σ i^(1/3) * 256.
        let got = cubic().run_reference(OptLevel::O2) as f64 / 256.0;
        let want: f64 = (1..8).map(|i| (i as f64).cbrt()).sum();
        assert!((got - want).abs() < 0.3, "got {got}, want ≈ {want}");
    }

    #[test]
    fn sha256_like_uses_rotations() {
        let image = nettle_sha256().compile(OptLevel::O1).unwrap();
        let subset: std::collections::BTreeSet<_> = image
            .words
            .iter()
            .filter_map(|&w| riscv_isa::Instruction::decode(w).ok())
            .map(|i| i.mnemonic)
            .collect();
        assert!(subset.contains(&riscv_isa::Mnemonic::Srl));
        assert!(subset.contains(&riscv_isa::Mnemonic::Sll));
    }
}
