//! The pre-verified full-ISA hardware library (Step 0 of the paper).
//!
//! Every RV32I/E instruction is implemented as a discrete, fully functional
//! gate-level block with the standard interface of Table 2 (PC, instruction
//! word, register-file ports and the data-memory port).  Before a block is
//! admitted to the library it passes the paper's three-stage verification
//! (Figure 4):
//!
//! 1. **Architecture-test style testbenches** ([`verify::functional_verify`])
//!    — corner-case operand vectors per instruction, checked against the
//!    golden semantics in [`riscv_isa::semantics`].
//! 2. **Testbench self-checking via mutation coverage** ([`mutate`]) — the
//!    MCY step: single-gate mutants that observably change behaviour must be
//!    killed by the testbench.
//! 3. **Formal verification** ([`verify::formal_verify`]) — randomised +
//!    exhaustive-corner equivalence against the instruction's specification,
//!    plus interface assertions (the SVA step).
//!
//! # Examples
//!
//! ```
//! use hwlib::HwLibrary;
//! use riscv_isa::Mnemonic;
//!
//! let lib = HwLibrary::build_full();
//! let add = lib.block(Mnemonic::Add);
//! assert!(add.netlist.output("rd_data").is_some());
//! // Every block in the library has passed its pre-verification.
//! hwlib::verify::formal_verify(add, 256, 1).unwrap();
//! ```

pub mod blocks;
pub mod campaign;
pub mod mutate;
pub mod verify;

use netlist::Netlist;
use riscv_isa::{Mnemonic, ALL_MNEMONICS};
use std::collections::BTreeMap;

/// Canonical port names of the instruction-block interface (Table 2).
pub mod ports {
    /// 32-bit current PC (input).
    pub const PC: &str = "pc";
    /// 32-bit raw instruction word (input).
    pub const INSN: &str = "insn";
    /// 32-bit register-file read data, port 1 (input).
    pub const RS1_DATA: &str = "rs1_data";
    /// 32-bit register-file read data, port 2 (input).
    pub const RS2_DATA: &str = "rs2_data";
    /// 32-bit aligned word from data memory (input).
    pub const DMEM_RDATA: &str = "dmem_rdata";
    /// 1-bit decode match: this block implements the presented insn (output).
    pub const SEL: &str = "sel";
    /// 32-bit next PC (output).
    pub const NEXT_PC: &str = "next_pc";
    /// 4-bit register-file read address, port 1 (output).
    pub const RS1_ADDR: &str = "rs1_addr";
    /// 4-bit register-file read address, port 2 (output).
    pub const RS2_ADDR: &str = "rs2_addr";
    /// 4-bit destination register address (output).
    pub const RD_ADDR: &str = "rd_addr";
    /// 32-bit write-back data (output).
    pub const RD_DATA: &str = "rd_data";
    /// 1-bit write-back enable (output).
    pub const RD_WE: &str = "rd_we";
    /// 32-bit data memory byte address (output).
    pub const DMEM_ADDR: &str = "dmem_addr";
    /// 32-bit lane-aligned store data (output).
    pub const DMEM_WDATA: &str = "dmem_wdata";
    /// 4-bit per-byte store mask (output).
    pub const DMEM_WMASK: &str = "dmem_wmask";
    /// 1-bit memory read enable (output).
    pub const DMEM_RE: &str = "dmem_re";

    /// All input ports with widths, in declaration order.
    pub const INPUTS: [(&str, usize); 5] = [
        (PC, 32),
        (INSN, 32),
        (RS1_DATA, 32),
        (RS2_DATA, 32),
        (DMEM_RDATA, 32),
    ];
    /// All output ports with widths, in declaration order.
    pub const OUTPUTS: [(&str, usize); 11] = [
        (SEL, 1),
        (NEXT_PC, 32),
        (RS1_ADDR, 4),
        (RS2_ADDR, 4),
        (RD_ADDR, 4),
        (RD_DATA, 32),
        (RD_WE, 1),
        (DMEM_ADDR, 32),
        (DMEM_WDATA, 32),
        (DMEM_WMASK, 4),
        (DMEM_RE, 1),
    ];
}

/// One instruction hardware block: a mnemonic plus its gate-level netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrBlock {
    /// The instruction this block implements.
    pub mnemonic: Mnemonic,
    /// The block's combinational netlist with the Table 2 interface.
    pub netlist: Netlist,
}

/// The pre-verified full-ISA hardware library.
///
/// Analogous to a standard-cell library: built (and verified) once, then
/// reused for every RISSP generated from it.
#[derive(Debug, Clone)]
pub struct HwLibrary {
    blocks: BTreeMap<Mnemonic, InstrBlock>,
}

impl HwLibrary {
    /// Builds the library for the full RV32I/E base ISA.
    pub fn build_full() -> HwLibrary {
        let blocks = ALL_MNEMONICS
            .iter()
            .map(|&m| {
                (
                    m,
                    InstrBlock {
                        mnemonic: m,
                        netlist: blocks::build_block(m),
                    },
                )
            })
            .collect();
        HwLibrary { blocks }
    }

    /// Fetches the block for `mnemonic`.
    ///
    /// # Panics
    ///
    /// Panics if the mnemonic is not in the library (cannot happen for
    /// libraries from [`HwLibrary::build_full`]).
    pub fn block(&self, mnemonic: Mnemonic) -> &InstrBlock {
        &self.blocks[&mnemonic]
    }

    /// Iterates over all blocks in deterministic mnemonic order.
    pub fn iter(&self) -> impl Iterator<Item = &InstrBlock> {
        self.blocks.values()
    }

    /// Number of blocks in the library.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the library holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Replaces the block for `mnemonic`, returning the previous one.
    ///
    /// This exists for *sabotage testing*: campaign-layer tests swap in a
    /// deliberately faulty netlist and require the differential fuzzer or
    /// the mutation sweep to notice. Libraries handed to production RISSP
    /// generation must never be patched this way.
    ///
    /// # Panics
    ///
    /// Panics if the mnemonic is not in the library.
    pub fn replace_block(&mut self, block: InstrBlock) -> InstrBlock {
        let slot = self
            .blocks
            .get_mut(&block.mnemonic)
            .unwrap_or_else(|| panic!("{} is not in the library", block.mnemonic));
        std::mem::replace(slot, block)
    }

    /// Runs the full pre-verification pipeline over every block: functional
    /// testbench, formal check and interface assertions.
    ///
    /// This is the library's admission gate — the "one-time NRE" of the
    /// paper.  Mutation coverage is exercised separately (see [`mutate`])
    /// because it is quadratic in block size.
    ///
    /// # Errors
    ///
    /// Returns the first failing block and a description of the failure.
    pub fn verify_all(&self, samples: usize, seed: u64) -> Result<(), (Mnemonic, String)> {
        self.verify_all_with(samples, seed, netlist::ShardPolicy::single())
    }

    /// [`HwLibrary::verify_all`] under an explicit shard policy: each
    /// block's vector sweeps settle `policy.total_lanes()` stimuli at a
    /// time across `policy.threads` threads (full-width shards fuse into
    /// `policy.lane_words`-word lane blocks, up to 512 stimuli per
    /// physical shard). Verdicts are independent of the thread count and
    /// of the lane-block width (see `docs/simulation.md`).
    ///
    /// # Errors
    ///
    /// Returns the first failing block and a description of the failure.
    pub fn verify_all_with(
        &self,
        samples: usize,
        seed: u64,
        policy: netlist::ShardPolicy,
    ) -> Result<(), (Mnemonic, String)> {
        for block in self.iter() {
            // One shared handle per block: both verification sweeps (and
            // every shard inside them) reuse it instead of deep-cloning
            // the netlist again.
            let netlist = std::sync::Arc::new(block.netlist.clone());
            verify::functional_verify_arc(block.mnemonic, netlist.clone(), policy)
                .map_err(|e| (block.mnemonic, format!("functional: {e}")))?;
            verify::formal_verify_arc(block.mnemonic, netlist, samples, seed, policy)
                .map_err(|e| (block.mnemonic, format!("formal: {e}")))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_contains_all_mnemonics() {
        let lib = HwLibrary::build_full();
        assert_eq!(lib.len(), ALL_MNEMONICS.len());
        assert!(!lib.is_empty());
        for m in ALL_MNEMONICS {
            assert_eq!(lib.block(m).mnemonic, m);
        }
    }

    #[test]
    fn blocks_have_standard_interface() {
        let lib = HwLibrary::build_full();
        for block in lib.iter() {
            for (name, width) in ports::INPUTS {
                let p = block
                    .netlist
                    .input(name)
                    .unwrap_or_else(|| panic!("{}: missing input {name}", block.mnemonic));
                assert_eq!(p.nets.len(), width, "{}: {name}", block.mnemonic);
            }
            for (name, width) in ports::OUTPUTS {
                let p = block
                    .netlist
                    .output(name)
                    .unwrap_or_else(|| panic!("{}: missing output {name}", block.mnemonic));
                assert_eq!(p.nets.len(), width, "{}: {name}", block.mnemonic);
            }
        }
    }

    #[test]
    fn blocks_are_purely_combinational() {
        let lib = HwLibrary::build_full();
        for block in lib.iter() {
            assert_eq!(
                block.netlist.dffs().count(),
                0,
                "{} contains state",
                block.mnemonic
            );
        }
    }

    #[test]
    fn full_library_passes_preverification() {
        let lib = HwLibrary::build_full();
        lib.verify_all(64, 0xbeef).unwrap();
    }
}
