//! Pre-verification of instruction hardware blocks (Figure 4 of the paper).
//!
//! * [`functional_verify`] — the architecture-test step: structured
//!   corner-case vectors per instruction, compared against the golden
//!   semantics (our stand-in for the RISC-V Architecture Test SIG suite).
//! * [`formal_verify`] — the SVA/SymbiYosys step: randomised input-space
//!   equivalence against the specification plus interface assertions
//!   (no spurious memory writes, x0 suppression, decode selectivity).

use crate::{ports, InstrBlock};
use netlist::compiled::CompiledSim;
use netlist::sharded::{ShardPolicy, ShardedSim};
use netlist::sim::{Sim, SimBackend};
use netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use riscv_isa::semantics::{block_semantics, BlockInputs, BlockOutputs};
use riscv_isa::{Format, Instruction, Mnemonic, Reg, ALL_MNEMONICS};
use std::sync::Arc;

/// A verification failure: which check tripped and on which inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Human-readable description of the violated property.
    pub property: String,
    /// The stimulus that exposed the failure.
    pub inputs: BlockInputs,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (pc={:#x} insn={:#010x} rs1={:#x} rs2={:#x} rdata={:#x})",
            self.property,
            self.inputs.pc,
            self.inputs.insn,
            self.inputs.rs1_data,
            self.inputs.rs2_data,
            self.inputs.dmem_rdata
        )
    }
}

impl std::error::Error for VerifyError {}

/// Corner-case 32-bit operand values used by every testbench.
pub const CORNER_VALUES: [u32; 10] = [
    0,
    1,
    2,
    4,
    0x7fff_ffff,
    0x8000_0000,
    0xffff_ffff,
    0xaaaa_aaaa,
    0x5555_5555,
    0x0000_8000,
];

/// Evaluates a block netlist on the given inputs and returns its outputs in
/// golden-model shape.
pub fn run_hw_block(block: &InstrBlock, inputs: &BlockInputs) -> BlockOutputs {
    let mut sim = Sim::new(&block.netlist);
    drive(&mut sim, inputs);
    sim.eval();
    read_outputs(&sim)
}

fn drive<S: SimBackend>(sim: &mut S, inputs: &BlockInputs) {
    sim.set_bus(ports::PC, inputs.pc);
    sim.set_bus(ports::INSN, inputs.insn);
    sim.set_bus(ports::RS1_DATA, inputs.rs1_data);
    sim.set_bus(ports::RS2_DATA, inputs.rs2_data);
    sim.set_bus(ports::DMEM_RDATA, inputs.dmem_rdata);
}

fn drive_chunk(sim: &mut CompiledSim, chunk: &[BlockInputs]) {
    // One transposed write per port (ports resolve once per shard chunk).
    let field = |f: fn(&BlockInputs) -> u32| chunk.iter().map(|i| f(i) as u64).collect::<Vec<_>>();
    sim.set_bus_lanes(ports::PC, &field(|i| i.pc));
    sim.set_bus_lanes(ports::INSN, &field(|i| i.insn));
    sim.set_bus_lanes(ports::RS1_DATA, &field(|i| i.rs1_data));
    sim.set_bus_lanes(ports::RS2_DATA, &field(|i| i.rs2_data));
    sim.set_bus_lanes(ports::DMEM_RDATA, &field(|i| i.dmem_rdata));
}

fn read_outputs(sim: &Sim) -> BlockOutputs {
    read_outputs_lane(sim, 0)
}

pub(crate) fn read_outputs_lane<S: SimBackend>(sim: &S, lane: usize) -> BlockOutputs {
    BlockOutputs {
        next_pc: sim.get_bus_lane(ports::NEXT_PC, lane) as u32,
        rs1_addr: sim.get_bus_lane(ports::RS1_ADDR, lane) as u8,
        rs2_addr: sim.get_bus_lane(ports::RS2_ADDR, lane) as u8,
        rd_addr: sim.get_bus_lane(ports::RD_ADDR, lane) as u8,
        rd_data: sim.get_bus_lane(ports::RD_DATA, lane) as u32,
        rd_we: sim.get_bus_lane(ports::RD_WE, lane) != 0,
        dmem_addr: sim.get_bus_lane(ports::DMEM_ADDR, lane) as u32,
        dmem_wdata: sim.get_bus_lane(ports::DMEM_WDATA, lane) as u32,
        dmem_wmask: sim.get_bus_lane(ports::DMEM_WMASK, lane) as u8,
        dmem_re: sim.get_bus_lane(ports::DMEM_RE, lane) != 0,
    }
}

/// Evaluates `vectors` through a sharded block simulation: each settle
/// packs `sim.lanes()` stimuli (up to `lane_words * 64` per fused lane
/// block) and the *whole sweep* — driving, evaluation, and the per-lane
/// `check` calls — runs inside one thread scope via
/// [`ShardedSim::par_shards`], so both the settles and the golden-model
/// comparisons parallelise and thread-spawn cost is paid once per sweep,
/// not once per settle. Physical shard `s` owns the lane range
/// `[s * lanes_per_shard, s * lanes_per_shard + s.lanes())` of every
/// chunk and stops at its first failing vector; the smallest global index
/// across shards wins, so the returned error is exactly the one a
/// sequential sweep would hit first, at any thread count.
fn run_batched(
    sim: &mut ShardedSim,
    vectors: &[BlockInputs],
    check: impl Fn(&CompiledSim, usize, usize, &BlockInputs) -> Result<(), VerifyError> + Sync,
) -> Result<(), VerifyError> {
    let lanes_per_shard = sim.lanes_per_shard();
    let width = sim.lanes();
    let earliest = sim
        .par_shards(|shard, s| {
            // Shards are uniform except for a possibly-narrower trailing
            // lane block, so clamp this shard's slice to its own width.
            let shard_lanes = s.lanes();
            let mut first: Option<(usize, VerifyError)> = None;
            'chunks: for (chunk_idx, chunk) in vectors.chunks(width).enumerate() {
                let lo = (shard * lanes_per_shard).min(chunk.len());
                let hi = (shard * lanes_per_shard + shard_lanes).min(chunk.len());
                let slice = &chunk[lo..hi];
                if slice.is_empty() {
                    continue; // the final partial chunk may not reach this shard
                }
                drive_chunk(s, slice);
                s.eval();
                for (lane, inputs) in slice.iter().enumerate() {
                    let index = chunk_idx * width + lo + lane;
                    if let Err(e) = check(s, index, lane, inputs) {
                        first = Some((index, e));
                        break 'chunks;
                    }
                }
            }
            first
        })
        .into_iter()
        .flatten()
        .min_by_key(|(index, _)| *index);
    match earliest {
        Some((_, e)) => Err(e),
        None => Ok(()),
    }
}

/// Generates a random, valid instruction of the given mnemonic.
pub fn random_instruction(m: Mnemonic, rng: &mut StdRng) -> Instruction {
    let reg = |rng: &mut StdRng| Reg::from_index(rng.gen_range(0..16)).unwrap();
    match m.format() {
        Format::R => Instruction::r(m, reg(rng), reg(rng), reg(rng)),
        Format::I => {
            let imm = if m.funct7().is_some() {
                rng.gen_range(0..32)
            } else {
                rng.gen_range(-2048..=2047)
            };
            Instruction::i(m, reg(rng), reg(rng), imm)
        }
        Format::S => Instruction::s(m, reg(rng), reg(rng), rng.gen_range(-2048..=2047)),
        Format::B => Instruction::b(m, reg(rng), reg(rng), rng.gen_range(-2048..=2047) * 2),
        Format::U => Instruction::u(m, reg(rng), rng.gen::<i32>() & !0xfff),
        Format::J => Instruction::j(m, reg(rng), rng.gen_range(-262144..=262143) * 2),
    }
}

/// The architecture-test vector set for one instruction: a deterministic mix
/// of corner operand pairs and seeded random instructions.
pub fn arch_test_vectors(m: Mnemonic) -> Vec<BlockInputs> {
    let mut rng = StdRng::seed_from_u64(0xa5c3 ^ m as u64);
    let mut vectors = Vec::new();
    // Corner sweep with a handful of register/imm shapes.
    for _ in 0..3 {
        let instr = random_instruction(m, &mut rng);
        for &rs1 in &CORNER_VALUES {
            for &rs2 in &CORNER_VALUES {
                vectors.push(BlockInputs {
                    pc: 0x8000_0000u32.wrapping_add(rng.gen_range(0..1024) * 4),
                    insn: instr.encode(),
                    rs1_data: rs1,
                    rs2_data: rs2,
                    dmem_rdata: rng.gen(),
                });
            }
        }
    }
    // Random instructions with random operands.
    for _ in 0..200 {
        let instr = random_instruction(m, &mut rng);
        vectors.push(BlockInputs {
            pc: rng.gen::<u32>() & !3,
            insn: instr.encode(),
            rs1_data: rng.gen(),
            rs2_data: rng.gen(),
            dmem_rdata: rng.gen(),
        });
    }
    vectors
}

fn golden_check(
    mnemonic: Mnemonic,
    inputs: &BlockInputs,
    hw: &BlockOutputs,
) -> Result<(), VerifyError> {
    let instr = Instruction::decode(inputs.insn).expect("vector insn must decode");
    let golden = block_semantics(instr, inputs);
    if *hw != golden {
        return Err(VerifyError {
            property: format!("{mnemonic}: hardware {hw:?} differs from specification {golden:?}"),
            inputs: *inputs,
        });
    }
    Ok(())
}

/// Functional verification: runs the full architecture-test vector set for
/// the block's instruction through the netlist and the golden semantics.
///
/// The block is compiled once and the vectors are driven 64 per settle
/// through the bit-parallel backend. Delegates to
/// [`functional_verify_with`] with a single-shard policy; pass a wider
/// [`ShardPolicy`] to settle `shards * 64` vectors at a time across
/// threads.
///
/// # Errors
///
/// Returns the first mismatching vector.
pub fn functional_verify(block: &InstrBlock) -> Result<(), VerifyError> {
    functional_verify_with(block, ShardPolicy::single())
}

/// [`functional_verify`] under an explicit shard policy. The verdict (and
/// the vector any error reports) is independent of `policy.threads`.
///
/// # Errors
///
/// Returns the first mismatching vector.
pub fn functional_verify_with(block: &InstrBlock, policy: ShardPolicy) -> Result<(), VerifyError> {
    functional_verify_arc(block.mnemonic, Arc::new(block.netlist.clone()), policy)
}

/// [`functional_verify_with`] over a shared netlist handle: the shard
/// fan-out reuses the caller's [`Arc`] instead of deep-cloning the
/// netlist. This is the hot path for sweeps (e.g.
/// `HwLibrary::verify_all_with`) that verify one block several ways.
///
/// # Errors
///
/// Returns the first mismatching vector.
pub fn functional_verify_arc(
    mnemonic: Mnemonic,
    netlist: Arc<Netlist>,
    policy: ShardPolicy,
) -> Result<(), VerifyError> {
    let mut sim = ShardedSim::with_policy_arc(netlist, policy);
    let vectors = arch_test_vectors(mnemonic);
    run_batched(&mut sim, &vectors, |sim, _index, lane, inputs| {
        golden_check(mnemonic, inputs, &read_outputs_lane(sim, lane))
    })
}

/// Formal verification: seeded random equivalence over the block's full
/// input space plus the interface assertions of the standard port contract.
///
/// The assertions mirror the paper's SVA set:
/// * decode selectivity — `sel` asserts exactly for this mnemonic's
///   encodings (checked against every other mnemonic in the ISA);
/// * no spurious memory traffic — `dmem_wmask == 0` unless a store,
///   `dmem_re == 0` unless a load;
/// * no spurious write-back — `rd_we == 0` for stores/branches and for
///   `rd == x0`;
/// * PC sanity — non-control-flow blocks always produce `pc + 4`.
///
/// # Errors
///
/// Returns the first violated property.
pub fn formal_verify(block: &InstrBlock, samples: usize, seed: u64) -> Result<(), VerifyError> {
    formal_verify_with(block, samples, seed, ShardPolicy::single())
}

/// [`formal_verify`] under an explicit shard policy: each settle packs
/// `policy.total_lanes()` random vectors and the shards evaluate on
/// `policy.threads` scoped threads. The stimulus sequence depends only on
/// `seed`, so for a fixed policy shape the verdict is deterministic and
/// independent of the thread count.
///
/// # Errors
///
/// Returns the first violated property.
pub fn formal_verify_with(
    block: &InstrBlock,
    samples: usize,
    seed: u64,
    policy: ShardPolicy,
) -> Result<(), VerifyError> {
    formal_verify_arc(
        block.mnemonic,
        Arc::new(block.netlist.clone()),
        samples,
        seed,
        policy,
    )
}

/// [`formal_verify_with`] over a shared netlist handle (see
/// [`functional_verify_arc`] for why).
///
/// # Errors
///
/// Returns the first violated property.
pub fn formal_verify_arc(
    m: Mnemonic,
    netlist: Arc<Netlist>,
    samples: usize,
    seed: u64,
    policy: ShardPolicy,
) -> Result<(), VerifyError> {
    let mut rng = StdRng::seed_from_u64(seed ^ (m as u64) << 32);
    let mut sim = ShardedSim::with_policy_arc(netlist, policy);
    // One random stimulus vector per lane settles per eval: the whole
    // random sweep costs `samples / total_lanes` passes per shard.
    let vectors: Vec<BlockInputs> = (0..samples)
        .map(|_| {
            let instr = random_instruction(m, &mut rng);
            BlockInputs {
                pc: rng.gen::<u32>() & !3,
                insn: instr.encode(),
                rs1_data: rng.gen(),
                rs2_data: rng.gen(),
                dmem_rdata: rng.gen(),
            }
        })
        .collect();
    run_batched(&mut sim, &vectors, |sim, _index, lane, inputs| {
        let instr = Instruction::decode(inputs.insn).expect("vector insn must decode");
        let hw = read_outputs_lane(sim, lane);
        // Specification equivalence.
        golden_check(m, inputs, &hw)?;
        // Interface assertions on the raw hardware outputs.
        let inputs = *inputs;
        if !m.is_store() && hw.dmem_wmask != 0 {
            return Err(VerifyError {
                property: format!("{m}: non-store drove dmem_wmask"),
                inputs,
            });
        }
        if !m.is_load() && hw.dmem_re {
            return Err(VerifyError {
                property: format!("{m}: non-load drove dmem_re"),
                inputs,
            });
        }
        if !m.writes_rd() && hw.rd_we {
            return Err(VerifyError {
                property: format!("{m}: unexpected rd_we"),
                inputs,
            });
        }
        if instr.rd == Reg::X0 && hw.rd_we {
            return Err(VerifyError {
                property: format!("{m}: write-back to x0"),
                inputs,
            });
        }
        if !m.is_branch() && !m.is_jump() && hw.next_pc != inputs.pc.wrapping_add(4) {
            return Err(VerifyError {
                property: format!("{m}: sequential next_pc violated"),
                inputs,
            });
        }
        if sim.get_bus_lane(ports::SEL, lane) == 0 {
            return Err(VerifyError {
                property: format!("{m}: sel deasserted for own encoding"),
                inputs,
            });
        }
        Ok(())
    })?;
    // Decode selectivity against every other instruction in the ISA — all
    // foreign encodings batched into lanes as well.
    let others: Vec<Mnemonic> = ALL_MNEMONICS
        .into_iter()
        .filter(|&other| other != m)
        .collect();
    let foreign_vectors: Vec<BlockInputs> = others
        .iter()
        .map(|&other| {
            let instr = random_instruction(other, &mut rng);
            BlockInputs {
                pc: 0,
                insn: instr.encode(),
                rs1_data: rng.gen(),
                rs2_data: rng.gen(),
                dmem_rdata: rng.gen(),
            }
        })
        .collect();
    run_batched(&mut sim, &foreign_vectors, |sim, index, lane, inputs| {
        if sim.get_bus_lane(ports::SEL, lane) != 0 {
            return Err(VerifyError {
                property: format!("{m}: sel asserted for `{}` encoding", others[index]),
                inputs: *inputs,
            });
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::build_block;
    use netlist::sharded::ShardSchedule;

    fn block(m: Mnemonic) -> InstrBlock {
        InstrBlock {
            mnemonic: m,
            netlist: build_block(m),
        }
    }

    #[test]
    fn every_block_passes_functional_verification() {
        for m in ALL_MNEMONICS {
            functional_verify(&block(m)).unwrap_or_else(|e| panic!("{m}: {e}"));
        }
    }

    #[test]
    fn every_block_passes_formal_verification() {
        for m in ALL_MNEMONICS {
            formal_verify(&block(m), 128, 0xf00d).unwrap_or_else(|e| panic!("{m}: {e}"));
        }
    }

    #[test]
    fn verification_catches_a_wrong_block() {
        // Pass the `sub` netlist off as the `add` block: the specification
        // equivalence must fail (decode `sel` also differs, but the compare
        // runs first on add encodings where sub produces wrong rd_data).
        let wrong = InstrBlock {
            mnemonic: Mnemonic::Add,
            netlist: build_block(Mnemonic::Sub),
        };
        assert!(functional_verify(&wrong).is_err());
    }

    #[test]
    fn sharded_verification_matches_single_shard() {
        // 4 shards x 64 lanes = 256 vectors per settle; neither the shard
        // fan-out nor the thread count may change a verdict.
        for threads in [1, 2] {
            let policy = ShardPolicy {
                shards: 4,
                lanes_per_shard: 64,
                threads,
                ..ShardPolicy::single()
            };
            for m in [Mnemonic::Add, Mnemonic::Lw, Mnemonic::Beq] {
                functional_verify_with(&block(m), policy).unwrap_or_else(|e| panic!("{m}: {e}"));
                formal_verify_with(&block(m), 256, 0xf00d, policy)
                    .unwrap_or_else(|e| panic!("{m}: {e}"));
            }
        }
        // A failing block reports the same first vector under every policy.
        let wrong = InstrBlock {
            mnemonic: Mnemonic::Add,
            netlist: build_block(Mnemonic::Sub),
        };
        let single = functional_verify(&wrong).unwrap_err();
        let sharded = functional_verify_with(
            &wrong,
            ShardPolicy {
                shards: 4,
                lanes_per_shard: 64,
                threads: 2,
                ..ShardPolicy::single()
            },
        )
        .unwrap_err();
        assert_eq!(single, sharded);
    }

    #[test]
    fn verification_is_schedule_pool_and_par_level_independent() {
        // The scheduler (work-stealing vs deprecated static), the
        // persistent worker pool vs its scoped-thread fallback, and the
        // intra-shard parallel level evaluation are pure performance
        // knobs: verdicts and first failing vectors cannot move.
        #[allow(deprecated)] // pins the deprecated scheduler as reference
        let schedules = [ShardSchedule::WorkStealing, ShardSchedule::Static];
        for schedule in schedules {
            for (par_levels, use_pool) in [(1, true), (1, false), (2, true)] {
                let policy = ShardPolicy {
                    shards: 3,
                    lanes_per_shard: 64,
                    threads: 2,
                    schedule,
                    par_levels,
                    use_pool,
                    ..ShardPolicy::single()
                };
                functional_verify_with(&block(Mnemonic::Xor), policy)
                    .unwrap_or_else(|e| panic!("{schedule:?}/{par_levels}: {e}"));
                formal_verify_with(&block(Mnemonic::Sw), 192, 0xf00d, policy)
                    .unwrap_or_else(|e| panic!("{schedule:?}/{par_levels}: {e}"));
                let wrong = InstrBlock {
                    mnemonic: Mnemonic::Add,
                    netlist: build_block(Mnemonic::Sub),
                };
                assert_eq!(
                    functional_verify_with(&wrong, policy).unwrap_err(),
                    functional_verify(&wrong).unwrap_err(),
                    "{schedule:?}/{par_levels}/pool={use_pool} moved the \
                     first failing vector"
                );
            }
        }
    }

    #[test]
    fn arch_vectors_are_deterministic_and_plentiful() {
        let a = arch_test_vectors(Mnemonic::Add);
        let b = arch_test_vectors(Mnemonic::Add);
        assert_eq!(a, b);
        assert!(a.len() > 400);
    }

    #[test]
    fn random_instructions_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        for m in ALL_MNEMONICS {
            for _ in 0..50 {
                let i = random_instruction(m, &mut rng);
                assert_eq!(Instruction::decode(i.encode()), Ok(i), "{m}");
            }
        }
    }
}
