//! Gate-level generators for every instruction hardware block.
//!
//! Each block is self-contained (Table 2): it fully decodes the instruction
//! word internally, extracts its own immediate, computes its result and
//! drives the standard interface.  Only the datapath the instruction needs
//! is instantiated — an `add` block contains one adder, an `sll` block one
//! barrel shifter — which is exactly the property that makes RISSPs smaller
//! than a monolithic core once unused blocks are omitted.

use crate::ports;
use netlist::bus::{self, ShiftKind};
use netlist::{Builder, NetId, Netlist};
use riscv_isa::{Format, Mnemonic};

/// The shared input/output scaffolding of a block under construction.
struct BlockIo {
    pc: Vec<NetId>,
    insn: Vec<NetId>,
    rs1_data: Vec<NetId>,
    rs2_data: Vec<NetId>,
    dmem_rdata: Vec<NetId>,
}

impl BlockIo {
    fn declare(b: &mut Builder) -> BlockIo {
        BlockIo {
            pc: b.input_bus(ports::PC, 32),
            insn: b.input_bus(ports::INSN, 32),
            rs1_data: b.input_bus(ports::RS1_DATA, 32),
            rs2_data: b.input_bus(ports::RS2_DATA, 32),
            dmem_rdata: b.input_bus(ports::DMEM_RDATA, 32),
        }
    }
}

/// All output values a block drives; zeros where unused.
struct BlockOut {
    sel: NetId,
    next_pc: Vec<NetId>,
    rs1_addr: Vec<NetId>,
    rs2_addr: Vec<NetId>,
    rd_addr: Vec<NetId>,
    rd_data: Vec<NetId>,
    rd_we: NetId,
    dmem_addr: Vec<NetId>,
    dmem_wdata: Vec<NetId>,
    dmem_wmask: Vec<NetId>,
    dmem_re: NetId,
}

impl BlockOut {
    fn zeroed(b: &mut Builder) -> BlockOut {
        let z = b.zero();
        BlockOut {
            sel: z,
            next_pc: vec![z; 32],
            rs1_addr: vec![z; 4],
            rs2_addr: vec![z; 4],
            rd_addr: vec![z; 4],
            rd_data: vec![z; 32],
            rd_we: z,
            dmem_addr: vec![z; 32],
            dmem_wdata: vec![z; 32],
            dmem_wmask: vec![z; 4],
            dmem_re: z,
        }
    }

    fn emit(self, b: &mut Builder) {
        b.output(ports::SEL, self.sel);
        b.output_bus(ports::NEXT_PC, &self.next_pc);
        b.output_bus(ports::RS1_ADDR, &self.rs1_addr);
        b.output_bus(ports::RS2_ADDR, &self.rs2_addr);
        b.output_bus(ports::RD_ADDR, &self.rd_addr);
        b.output_bus(ports::RD_DATA, &self.rd_data);
        b.output(ports::RD_WE, self.rd_we);
        b.output_bus(ports::DMEM_ADDR, &self.dmem_addr);
        b.output_bus(ports::DMEM_WDATA, &self.dmem_wdata);
        b.output_bus(ports::DMEM_WMASK, &self.dmem_wmask);
        b.output(ports::DMEM_RE, self.dmem_re);
    }
}

/// Register-field extraction (RV32E: four significant bits).
fn rd_field(insn: &[NetId]) -> Vec<NetId> {
    insn[7..11].to_vec()
}

fn rs1_field(insn: &[NetId]) -> Vec<NetId> {
    insn[15..19].to_vec()
}

fn rs2_field(insn: &[NetId]) -> Vec<NetId> {
    insn[20..24].to_vec()
}

/// I-type immediate: sign-extended `insn[31:20]`.
fn imm_i(b: &mut Builder, insn: &[NetId]) -> Vec<NetId> {
    bus::sext(b, &insn[20..32], 32)
}

/// S-type immediate: sign-extended `{insn[31:25], insn[11:7]}`.
fn imm_s(b: &mut Builder, insn: &[NetId]) -> Vec<NetId> {
    let mut bits = insn[7..12].to_vec();
    bits.extend_from_slice(&insn[25..32]);
    bus::sext(b, &bits, 32)
}

/// B-type immediate: `{insn[31], insn[7], insn[30:25], insn[11:8], 0}`.
fn imm_b(b: &mut Builder, insn: &[NetId]) -> Vec<NetId> {
    let mut bits = vec![b.zero()];
    bits.extend_from_slice(&insn[8..12]); // imm[4:1]
    bits.extend_from_slice(&insn[25..31]); // imm[10:5]
    bits.push(insn[7]); // imm[11]
    bits.push(insn[31]); // imm[12]
    bus::sext(b, &bits, 32)
}

/// U-type immediate: `insn[31:12] << 12`.
fn imm_u(b: &mut Builder, insn: &[NetId]) -> Vec<NetId> {
    let mut bits = vec![b.zero(); 12];
    bits.extend_from_slice(&insn[12..32]);
    bits
}

/// J-type immediate: `{insn[31], insn[19:12], insn[20], insn[30:21], 0}`.
fn imm_j(b: &mut Builder, insn: &[NetId]) -> Vec<NetId> {
    let mut bits = vec![b.zero()];
    bits.extend_from_slice(&insn[21..31]); // imm[10:1]
    bits.push(insn[20]); // imm[11]
    bits.extend_from_slice(&insn[12..20]); // imm[19:12]
    bits.push(insn[31]); // imm[20]
    bus::sext(b, &bits, 32)
}

/// Checks that a bit slice equals a constant pattern.
fn match_const(b: &mut Builder, bits: &[NetId], value: u32) -> NetId {
    let matches: Vec<NetId> = bits
        .iter()
        .enumerate()
        .map(|(i, &bit)| {
            if (value >> i) & 1 == 1 {
                bit
            } else {
                b.not(bit)
            }
        })
        .collect();
    bus::tree_and(b, &matches)
}

/// Decode match for a mnemonic: opcode plus funct3/funct7 where applicable.
fn decode_sel(b: &mut Builder, insn: &[NetId], m: Mnemonic) -> NetId {
    let mut sel = match_const(b, &insn[0..7], m.opcode());
    if let Some(f3) = m.funct3() {
        let f3m = match_const(b, &insn[12..15], f3);
        sel = b.and(sel, f3m);
    }
    if let Some(f7) = m.funct7() {
        let f7m = match_const(b, &insn[25..32], f7);
        sel = b.and(sel, f7m);
    }
    sel
}

/// `rd_we` with the architectural x0-write suppression: enabled only when
/// the destination field is non-zero.
fn we_unless_x0(b: &mut Builder, rd_addr: &[NetId]) -> NetId {
    bus::tree_or(b, rd_addr)
}

/// Gates a bus to zero unless `en` — used to squash `rd_data` for x0 so the
/// block's outputs match the golden model bit-for-bit.
fn gate_bus(b: &mut Builder, en: NetId, data: &[NetId]) -> Vec<NetId> {
    data.iter().map(|&d| b.and(en, d)).collect()
}

/// Builds the hardware block for one instruction.
pub fn build_block(m: Mnemonic) -> Netlist {
    let mut b = Builder::new();
    let io = BlockIo::declare(&mut b);
    let mut out = BlockOut::zeroed(&mut b);
    out.sel = decode_sel(&mut b, &io.insn, m);

    let four = bus::constant(&mut b, 4, 32);
    let (seq_pc, _) = bus::add(&mut b, &io.pc, &four);

    match m.format() {
        Format::U => {
            let imm = imm_u(&mut b, &io.insn);
            out.rd_addr = rd_field(&io.insn);
            out.rd_we = we_unless_x0(&mut b, &out.rd_addr);
            let value = match m {
                Mnemonic::Lui => imm,
                Mnemonic::Auipc => bus::add(&mut b, &io.pc, &imm).0,
                _ => unreachable!("U-format"),
            };
            out.rd_data = gate_bus(&mut b, out.rd_we, &value);
            out.next_pc = seq_pc;
        }
        Format::J => {
            let imm = imm_j(&mut b, &io.insn);
            out.rd_addr = rd_field(&io.insn);
            out.rd_we = we_unless_x0(&mut b, &out.rd_addr);
            out.rd_data = gate_bus(&mut b, out.rd_we, &seq_pc);
            out.next_pc = bus::add(&mut b, &io.pc, &imm).0;
        }
        Format::B => {
            let imm = imm_b(&mut b, &io.insn);
            out.rs1_addr = rs1_field(&io.insn);
            out.rs2_addr = rs2_field(&io.insn);
            let taken = match m {
                Mnemonic::Beq => bus::eq(&mut b, &io.rs1_data, &io.rs2_data),
                Mnemonic::Bne => {
                    let e = bus::eq(&mut b, &io.rs1_data, &io.rs2_data);
                    b.not(e)
                }
                Mnemonic::Blt => bus::lt_signed(&mut b, &io.rs1_data, &io.rs2_data),
                Mnemonic::Bge => {
                    let lt = bus::lt_signed(&mut b, &io.rs1_data, &io.rs2_data);
                    b.not(lt)
                }
                Mnemonic::Bltu => bus::lt_unsigned(&mut b, &io.rs1_data, &io.rs2_data),
                Mnemonic::Bgeu => {
                    let lt = bus::lt_unsigned(&mut b, &io.rs1_data, &io.rs2_data);
                    b.not(lt)
                }
                _ => unreachable!("B-format"),
            };
            // One adder: pc + (taken ? imm : 4).
            let offset = bus::mux(&mut b, taken, &four, &imm);
            out.next_pc = bus::add(&mut b, &io.pc, &offset).0;
        }
        Format::S => {
            let imm = imm_s(&mut b, &io.insn);
            out.rs1_addr = rs1_field(&io.insn);
            out.rs2_addr = rs2_field(&io.insn);
            let (addr, _) = bus::add(&mut b, &io.rs1_data, &imm);
            out.dmem_addr = addr.clone();
            out.next_pc = seq_pc;
            let a0 = addr[0];
            let a1 = addr[1];
            match m {
                Mnemonic::Sw => {
                    out.dmem_wdata = io.rs2_data.clone();
                    out.dmem_wmask = vec![b.one(); 4];
                }
                Mnemonic::Sh => {
                    // mask = a1 ? 0b1100 : 0b0011
                    let na1 = b.not(a1);
                    out.dmem_wmask = vec![na1, na1, a1, a1];
                    // wdata = half << (a1 * 16), other lane zeroed.
                    let half = &io.rs2_data[0..16];
                    let lo = gate_bus(&mut b, na1, half);
                    let hi = gate_bus(&mut b, a1, half);
                    out.dmem_wdata = [lo, hi].concat();
                }
                Mnemonic::Sb => {
                    let lanes = bus::decode(&mut b, &[a0, a1]);
                    out.dmem_wmask = lanes.clone();
                    let byte = &io.rs2_data[0..8];
                    out.dmem_wdata = lanes
                        .iter()
                        .flat_map(|&lane| gate_bus(&mut b, lane, byte))
                        .collect();
                }
                _ => unreachable!("S-format"),
            }
        }
        Format::I if m.is_load() => {
            let imm = imm_i(&mut b, &io.insn);
            out.rs1_addr = rs1_field(&io.insn);
            out.rd_addr = rd_field(&io.insn);
            out.rd_we = we_unless_x0(&mut b, &out.rd_addr);
            out.dmem_re = b.one();
            let (addr, _) = bus::add(&mut b, &io.rs1_data, &imm);
            out.dmem_addr = addr.clone();
            out.next_pc = seq_pc;
            let a0 = addr[0];
            let a1 = addr[1];
            let word = &io.dmem_rdata;
            let value: Vec<NetId> = match m {
                Mnemonic::Lw => word.clone(),
                Mnemonic::Lb | Mnemonic::Lbu => {
                    let b01 = bus::mux(&mut b, a0, &word[0..8], &word[8..16]);
                    let b23 = bus::mux(&mut b, a0, &word[16..24], &word[24..32]);
                    let byte = bus::mux(&mut b, a1, &b01, &b23);
                    if m == Mnemonic::Lb {
                        bus::sext(&mut b, &byte, 32)
                    } else {
                        bus::zext(&mut b, &byte, 32)
                    }
                }
                Mnemonic::Lh | Mnemonic::Lhu => {
                    let half = bus::mux(&mut b, a1, &word[0..16], &word[16..32]);
                    if m == Mnemonic::Lh {
                        bus::sext(&mut b, &half, 32)
                    } else {
                        bus::zext(&mut b, &half, 32)
                    }
                }
                _ => unreachable!("load"),
            };
            out.rd_data = gate_bus(&mut b, out.rd_we, &value);
        }
        Format::I if m == Mnemonic::Jalr => {
            let imm = imm_i(&mut b, &io.insn);
            out.rs1_addr = rs1_field(&io.insn);
            out.rd_addr = rd_field(&io.insn);
            out.rd_we = we_unless_x0(&mut b, &out.rd_addr);
            out.rd_data = gate_bus(&mut b, out.rd_we, &seq_pc);
            let (target, _) = bus::add(&mut b, &io.rs1_data, &imm);
            let mut next = target;
            next[0] = b.zero(); // clear bit 0 per the spec
            out.next_pc = next;
        }
        // Remaining I-type ALU ops and all R-type ALU ops.
        Format::I | Format::R => {
            out.rs1_addr = rs1_field(&io.insn);
            out.rd_addr = rd_field(&io.insn);
            out.rd_we = we_unless_x0(&mut b, &out.rd_addr);
            out.next_pc = seq_pc;
            let operand: Vec<NetId> = if m.format() == Format::R {
                out.rs2_addr = rs2_field(&io.insn);
                io.rs2_data.clone()
            } else {
                imm_i(&mut b, &io.insn)
            };
            let shamt: Vec<NetId> = if m.format() == Format::R {
                operand[0..5].to_vec()
            } else {
                // Shift-immediates take shamt from insn[24:20].
                io.insn[20..25].to_vec()
            };
            let a = &io.rs1_data;
            let value: Vec<NetId> = match m {
                Mnemonic::Add | Mnemonic::Addi => bus::add(&mut b, a, &operand).0,
                Mnemonic::Sub => bus::sub(&mut b, a, &operand).0,
                Mnemonic::And | Mnemonic::Andi => bus::and(&mut b, a, &operand),
                Mnemonic::Or | Mnemonic::Ori => bus::or(&mut b, a, &operand),
                Mnemonic::Xor | Mnemonic::Xori => bus::xor(&mut b, a, &operand),
                Mnemonic::Slt | Mnemonic::Slti => {
                    let lt = bus::lt_signed(&mut b, a, &operand);
                    bus::zext(&mut b, &[lt], 32)
                }
                Mnemonic::Sltu | Mnemonic::Sltiu => {
                    let lt = bus::lt_unsigned(&mut b, a, &operand);
                    bus::zext(&mut b, &[lt], 32)
                }
                Mnemonic::Sll | Mnemonic::Slli => {
                    bus::barrel_shift(&mut b, a, &shamt, ShiftKind::LeftLogical)
                }
                Mnemonic::Srl | Mnemonic::Srli => {
                    bus::barrel_shift(&mut b, a, &shamt, ShiftKind::RightLogical)
                }
                Mnemonic::Sra | Mnemonic::Srai => {
                    bus::barrel_shift(&mut b, a, &shamt, ShiftKind::RightArithmetic)
                }
                _ => unreachable!("ALU op"),
            };
            out.rd_data = gate_bus(&mut b, out.rd_we, &value);
        }
    }

    out.emit(&mut b);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::sim::Sim;
    use netlist::stats::GateCounts;
    use riscv_isa::{Instruction, Reg, ALL_MNEMONICS};

    fn run_block(
        m: Mnemonic,
        instr: Instruction,
        pc: u32,
        rs1: u32,
        rs2: u32,
        rdata: u32,
    ) -> (Sim, Netlist) {
        let nl = build_block(m);
        let mut sim = Sim::new(&nl);
        sim.set_bus(ports::PC, pc);
        sim.set_bus(ports::INSN, instr.encode());
        sim.set_bus(ports::RS1_DATA, rs1);
        sim.set_bus(ports::RS2_DATA, rs2);
        sim.set_bus(ports::DMEM_RDATA, rdata);
        sim.eval();
        (sim, nl)
    }

    #[test]
    fn add_block_adds() {
        let i = Instruction::r(Mnemonic::Add, Reg::X5, Reg::X6, Reg::X7);
        let (sim, _) = run_block(Mnemonic::Add, i, 0x40, 30, 12, 0);
        assert_eq!(sim.get_bus(ports::SEL), 1);
        assert_eq!(sim.get_bus(ports::RD_DATA), 42);
        assert_eq!(sim.get_bus(ports::RD_ADDR), 5);
        assert_eq!(sim.get_bus(ports::RD_WE), 1);
        assert_eq!(sim.get_bus(ports::NEXT_PC), 0x44);
    }

    #[test]
    fn sel_rejects_other_instructions() {
        // Feed a `sub` encoding to the `add` block: decode must not match.
        let sub = Instruction::r(Mnemonic::Sub, Reg::X5, Reg::X6, Reg::X7);
        let (sim, _) = run_block(Mnemonic::Add, sub, 0, 1, 2, 0);
        assert_eq!(sim.get_bus(ports::SEL), 0);
    }

    #[test]
    fn branch_block_takes_and_falls_through() {
        let i = Instruction::b(Mnemonic::Blt, Reg::X1, Reg::X2, -16);
        let (sim, _) = run_block(Mnemonic::Blt, i, 0x100, 0xffff_ffff, 0, 0);
        assert_eq!(sim.get_bus(ports::NEXT_PC), 0xf0); // -1 < 0: taken
        let (sim, _) = run_block(Mnemonic::Blt, i, 0x100, 5, 3, 0);
        assert_eq!(sim.get_bus(ports::NEXT_PC), 0x104);
        assert_eq!(sim.get_bus(ports::RD_WE), 0);
    }

    #[test]
    fn store_block_drives_lane_masks() {
        let i = Instruction::s(Mnemonic::Sb, Reg::X2, Reg::X3, 1);
        let (sim, _) = run_block(Mnemonic::Sb, i, 0, 0x1000, 0xab, 0);
        assert_eq!(sim.get_bus(ports::DMEM_ADDR), 0x1001);
        assert_eq!(sim.get_bus(ports::DMEM_WMASK), 0b0010);
        assert_eq!(sim.get_bus(ports::DMEM_WDATA), 0xab00);
    }

    #[test]
    fn load_block_sign_extends() {
        let i = Instruction::i(Mnemonic::Lb, Reg::X4, Reg::X2, 2);
        let (sim, _) = run_block(Mnemonic::Lb, i, 0, 0x2000, 0, 0x00ff_0000);
        assert_eq!(sim.get_bus(ports::RD_DATA), 0xffff_ffff);
        assert_eq!(sim.get_bus(ports::DMEM_RE), 1);
    }

    #[test]
    fn x0_destination_is_suppressed_in_hardware() {
        let i = Instruction::i(Mnemonic::Addi, Reg::X0, Reg::X1, 99);
        let (sim, _) = run_block(Mnemonic::Addi, i, 0, 1, 0, 0);
        assert_eq!(sim.get_bus(ports::RD_WE), 0);
        assert_eq!(sim.get_bus(ports::RD_DATA), 0);
    }

    #[test]
    fn blocks_have_plausible_relative_sizes() {
        // A shifter block should be bigger than a logic-op block; loads
        // bigger than stores of the same width class.
        let area = |m: Mnemonic| GateCounts::of(&build_block(m)).nand2_equivalent();
        assert!(area(Mnemonic::Sll) > area(Mnemonic::And), "shift vs and");
        assert!(area(Mnemonic::Add) > area(Mnemonic::And), "add vs and");
        for m in ALL_MNEMONICS {
            let a = area(m);
            assert!(a > 50.0 && a < 2000.0, "{m}: {a}");
        }
    }
}
