//! Mutation coverage for instruction-block testbenches (the MCY step).
//!
//! The paper validates its *testbenches* — not just its designs — by
//! generating mutations of each instruction block with YosysHQ's MCY,
//! keeping only mutants that observably change behaviour, and requiring the
//! testbench to fail on every one of them.  This module reproduces that
//! loop: [`mutants_of`] enumerates single-gate mutations, [`is_observable`]
//! plays MCY's formal filter, and [`mutation_coverage`] reports the kill
//! ratio achieved by the architecture-test testbench.

use crate::verify::{arch_test_vectors, run_hw_block};
use crate::InstrBlock;
use netlist::{Gate, NetId, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use riscv_isa::semantics::BlockInputs;

/// A single-gate mutation applied to a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Replace the gate's function with another of the same arity
    /// (`And`→`Or`, `Xor`→`Xnor`, …).
    FlipKind,
    /// Force the net to constant 0.
    StuckAtZero,
    /// Force the net to constant 1.
    StuckAtOne,
    /// Swap the two data inputs of a mux.
    SwapMuxInputs,
}

/// A concrete mutant: where, what, and the mutated netlist.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// The mutated net.
    pub net: NetId,
    /// Which mutation was applied.
    pub mutation: Mutation,
    /// The faulty netlist.
    pub netlist: Netlist,
}

/// Result of a [`mutation_coverage`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageReport {
    /// Mutants generated before observability filtering.
    pub generated: usize,
    /// Mutants that observably change at least one probed output (MCY's
    /// "important change" filter).
    pub observable: usize,
    /// Observable mutants killed by the testbench.
    pub killed: usize,
}

impl CoverageReport {
    /// Kill ratio over observable mutants, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.observable == 0 {
            return 1.0;
        }
        self.killed as f64 / self.observable as f64
    }
}

fn flip(gate: Gate) -> Option<Gate> {
    Some(match gate {
        Gate::And(a, b) => Gate::Or(a, b),
        Gate::Or(a, b) => Gate::And(a, b),
        Gate::Xor(a, b) => Gate::Xnor(a, b),
        Gate::Xnor(a, b) => Gate::Xor(a, b),
        Gate::Nand(a, b) => Gate::Nor(a, b),
        Gate::Nor(a, b) => Gate::Nand(a, b),
        _ => return None,
    })
}

/// Enumerates up to `limit` single-gate mutants of `block`, sampled
/// deterministically across the netlist.
pub fn mutants_of(block: &InstrBlock, limit: usize, seed: u64) -> Vec<Mutant> {
    let nl = &block.netlist;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidates: Vec<(NetId, Mutation)> = Vec::new();
    for (id, gate) in nl.gates().iter().enumerate() {
        let id = id as NetId;
        match gate {
            Gate::Const(_) | Gate::Input(_) | Gate::Dff { .. } => continue,
            Gate::Mux { .. } => {
                candidates.push((id, Mutation::SwapMuxInputs));
                candidates.push((id, Mutation::StuckAtZero));
                candidates.push((id, Mutation::StuckAtOne));
            }
            Gate::Not(_) => {
                candidates.push((id, Mutation::StuckAtZero));
                candidates.push((id, Mutation::StuckAtOne));
            }
            _ => {
                candidates.push((id, Mutation::FlipKind));
                candidates.push((id, Mutation::StuckAtZero));
                candidates.push((id, Mutation::StuckAtOne));
            }
        }
    }
    // Uniform sample without replacement.
    let take = limit.min(candidates.len());
    let mut picked = Vec::with_capacity(take);
    for _ in 0..take {
        let idx = rng.gen_range(0..candidates.len());
        picked.push(candidates.swap_remove(idx));
    }
    picked
        .into_iter()
        .filter_map(|(net, mutation)| {
            let gate = nl.gates()[net as usize];
            let mutated = match mutation {
                Mutation::FlipKind => flip(gate)?,
                Mutation::StuckAtZero => Gate::Const(false),
                Mutation::StuckAtOne => Gate::Const(true),
                Mutation::SwapMuxInputs => match gate {
                    Gate::Mux { sel, a, b } => Gate::Mux { sel, a: b, b: a },
                    _ => return None,
                },
            };
            Some(Mutant {
                net,
                mutation,
                netlist: nl.with_gate_replaced(net, mutated),
            })
        })
        .collect()
}

/// The observability-probe subset of a testbench vector set, shared by the
/// scalar loop and the lane-parallel campaign engine so both filters see
/// the exact same stimuli (mirroring MCY's independent filter).
pub(crate) fn observability_probes(vectors: &[BlockInputs]) -> Vec<BlockInputs> {
    vectors.iter().step_by(7).copied().collect()
}

/// MCY's observability filter: does the mutant differ from the original on
/// any of `probes` random input vectors?
pub fn is_observable(original: &InstrBlock, mutant: &Mutant, probes: &[BlockInputs]) -> bool {
    let faulty = InstrBlock {
        mnemonic: original.mnemonic,
        netlist: mutant.netlist.clone(),
    };
    probes
        .iter()
        .any(|p| run_hw_block(original, p) != run_hw_block(&faulty, p))
}

/// Runs the full MCY-style loop for one block: generate mutants, filter for
/// observability, then check the architecture-test testbench kills each
/// observable mutant.
pub fn mutation_coverage(block: &InstrBlock, limit: usize, seed: u64) -> CoverageReport {
    let vectors = arch_test_vectors(block.mnemonic);
    let probes = observability_probes(&vectors);
    let mutants = mutants_of(block, limit, seed);
    let generated = mutants.len();
    let mut observable = 0;
    let mut killed = 0;
    for mutant in &mutants {
        if !is_observable(block, mutant, &probes) {
            continue;
        }
        observable += 1;
        let faulty = InstrBlock {
            mnemonic: block.mnemonic,
            netlist: mutant.netlist.clone(),
        };
        let caught = vectors.iter().any(|v| {
            let instr = riscv_isa::Instruction::decode(v.insn).expect("vector decodes");
            let golden = riscv_isa::semantics::block_semantics(instr, v);
            run_hw_block(&faulty, v) != golden
        });
        if caught {
            killed += 1;
        }
    }
    CoverageReport {
        generated,
        observable,
        killed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::build_block;
    use riscv_isa::Mnemonic;

    fn block(m: Mnemonic) -> InstrBlock {
        InstrBlock {
            mnemonic: m,
            netlist: build_block(m),
        }
    }

    #[test]
    fn mutants_are_generated_and_distinct_from_original() {
        let b = block(Mnemonic::Add);
        let mutants = mutants_of(&b, 20, 3);
        assert!(!mutants.is_empty());
        for m in &mutants {
            assert_ne!(m.netlist, b.netlist, "mutant at {} is identical", m.net);
        }
    }

    #[test]
    fn testbench_kills_all_observable_mutants_of_add() {
        let report = mutation_coverage(&block(Mnemonic::Add), 40, 11);
        assert!(report.observable > 0, "{report:?}");
        assert_eq!(report.killed, report.observable, "{report:?}");
    }

    #[test]
    fn testbench_kills_all_observable_mutants_of_branch_and_store() {
        for m in [Mnemonic::Beq, Mnemonic::Sb, Mnemonic::Lh, Mnemonic::Sra] {
            let report = mutation_coverage(&block(m), 25, 23);
            assert_eq!(report.killed, report.observable, "{m}: {report:?}");
        }
    }

    #[test]
    fn observability_filter_rejects_masked_faults() {
        // A stuck-at fault on a net that only affects `rd_data` when rd==x0
        // would be non-observable; we can't easily pinpoint one, but the
        // filter must at least pass sanity: a mutant is observable iff some
        // probe distinguishes it, so an empty probe list observes nothing.
        let b = block(Mnemonic::And);
        let mutants = mutants_of(&b, 5, 9);
        for m in &mutants {
            assert!(!is_observable(&b, m, &[]));
        }
    }
}
