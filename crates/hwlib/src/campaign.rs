//! Lane-parallel mutation-coverage campaigns (the MCY step at scale).
//!
//! [`mutate::mutation_coverage`](crate::mutate::mutation_coverage) runs one
//! mutant at a time through the interpreted [`netlist::Sim`] — fine for a
//! handful of blocks, hopeless for "millions of scenarios". This module
//! drives the same MCY loop through the batched backends: up to
//! `lanes - 1` mutants of a block settle *simultaneously*, one mutant per
//! stimulus lane of a single [`CompiledSim`], with the last lane reserved
//! as the unmutated reference.
//!
//! # Lane ↔ mutant mapping
//!
//! A chunk of mutants is compiled into one *instrumented* netlist: every
//! mutated net's driver is wrapped in an injection mux
//!
//! ```text
//! value(net) = mux(__mut{i}, original_gate, mutated_gate)
//! ```
//!
//! where `__mut{i}` is a fresh 1-bit input asserted **only on lane `i`**.
//! Lane `i` therefore computes exactly the function of
//! [`Netlist::with_gate_replaced`] applied for mutant `i` alone, while the
//! reference lane (all selects low) computes the original block — so one
//! broadcast settle evaluates the whole chunk against one stimulus.
//! Mutants of the *same* net chain their muxes in mutant order; at most
//! one select is high per lane, so the chain resolves to the single
//! requested fault.
//!
//! The verdicts — which mutants are observable and which of those the
//! architecture testbench kills — are **bit-identical** to the scalar
//! [`mutate::mutation_coverage`](crate::mutate::mutation_coverage) loop
//! for every lane width and thread count (`tests/campaigns.rs` pins this
//! across the whole block library), because both paths compare the same
//! output ports on the same vector sets; only the evaluation schedule
//! changes.

use crate::mutate::{mutants_of, observability_probes, CoverageReport, Mutant, Mutation};
use crate::verify::{arch_test_vectors, read_outputs_lane};
use crate::{HwLibrary, InstrBlock};
use netlist::compiled::{CompiledSim, LANES_PER_WORD, MAX_TOTAL_LANES};
use netlist::pool::{self, WorkerPool};
use netlist::{Builder, Gate, NetId, Netlist};
use riscv_isa::semantics::{block_semantics, BlockInputs};
use riscv_isa::Mnemonic;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Tuning knobs for a mutation-coverage campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Mutants sampled per block (the `limit` of
    /// [`mutants_of`]).
    pub limit: usize,
    /// Mutant-sampling seed, shared by every block (each block's mutant
    /// set still differs because its netlist differs).
    pub seed: u64,
    /// Stimulus lanes per settle: `lanes - 1` mutants evaluate per chunk
    /// and the last lane carries the unmutated reference. Clamped to
    /// [`MAX_TOTAL_LANES`].
    pub lanes: usize,
    /// Worker threads for the library-wide sweep (blocks are claimed off
    /// a shared counter by the persistent worker pool). `1` runs inline.
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            limit: 24,
            seed: 0x5eed_cafe,
            lanes: LANES_PER_WORD * netlist::env_lane_words().unwrap_or(4),
            threads: netlist::env_threads().unwrap_or(1),
        }
    }
}

/// One block's campaign outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockCoverage {
    /// The block the mutants were drawn from.
    pub mnemonic: Mnemonic,
    /// The kill report, bit-identical to the scalar MCY loop's.
    pub report: CoverageReport,
}

/// Builds the instrumented netlist for one chunk of mutants: every mutated
/// net's driver is wrapped in `mux(__mut{i}, original, mutated)` with a
/// fresh 1-bit `__mut{i}` input per mutant.
///
/// The rebuild walks the gate arena in topological (id) order through a
/// fresh [`Builder`], so hash-consing and constant folding re-apply; that
/// cannot change any lane's I/O function — lane `i` with only `__mut{i}`
/// high computes exactly the mutant-`i` netlist, and a lane with all
/// selects low computes the original block.
///
/// # Panics
///
/// Panics if the block netlist contains flip-flops (instruction blocks are
/// purely combinational) or a mutant refers to an out-of-range net.
pub fn instrument(netlist: &Netlist, mutants: &[&Mutant]) -> Netlist {
    let mut b = Builder::new();
    let mut map: Vec<NetId> = vec![NetId::MAX; netlist.len()];

    // Re-declare the input ports first, in declaration order, so the
    // instrumented netlist keeps the block's port interface; the injection
    // selects follow as fresh single-bit ports.
    for port in netlist.inputs() {
        let nets = b.input_bus(&port.name, port.nets.len());
        for (&old, &new) in port.nets.iter().zip(&nets) {
            map[old as usize] = new;
        }
    }
    let sels: Vec<NetId> = (0..mutants.len())
        .map(|i| b.input(&format!("__mut{i}")))
        .collect();

    for (id, gate) in netlist.gates().iter().enumerate() {
        let m = |n: NetId| map[n as usize];
        let mut new = match *gate {
            Gate::Input(_) => continue, // mapped with its port above
            Gate::Const(v) => b.constant(v),
            Gate::Not(x) => b.not(m(x)),
            Gate::And(x, y) => b.and(m(x), m(y)),
            Gate::Or(x, y) => b.or(m(x), m(y)),
            Gate::Xor(x, y) => b.xor(m(x), m(y)),
            Gate::Nand(x, y) => b.nand(m(x), m(y)),
            Gate::Nor(x, y) => b.nor(m(x), m(y)),
            Gate::Xnor(x, y) => b.xnor(m(x), m(y)),
            Gate::Mux { sel, a, b: bb } => b.mux(m(sel), m(a), m(bb)),
            Gate::Dff { .. } => panic!("instrument: instruction blocks are combinational"),
        };
        for (i, mutant) in mutants.iter().enumerate() {
            if mutant.net as usize != id {
                continue;
            }
            let faulty = mutated_value(&mut b, gate, mutant.mutation, &map);
            // sel high (lane i) selects the faulty value.
            new = b.mux(sels[i], new, faulty);
        }
        map[id] = new;
    }

    for port in netlist.outputs() {
        let nets: Vec<NetId> = port.nets.iter().map(|&n| map[n as usize]).collect();
        b.output_bus(&port.name, &nets);
    }
    b.finish()
}

/// Emits the faulty replacement value for one mutation of `gate`, with
/// fan-ins remapped into the instrumented netlist.
fn mutated_value(b: &mut Builder, gate: &Gate, mutation: Mutation, map: &[NetId]) -> NetId {
    let m = |n: NetId| map[n as usize];
    match mutation {
        Mutation::StuckAtZero => b.zero(),
        Mutation::StuckAtOne => b.one(),
        Mutation::FlipKind => match *gate {
            Gate::And(x, y) => b.or(m(x), m(y)),
            Gate::Or(x, y) => b.and(m(x), m(y)),
            Gate::Xor(x, y) => b.xnor(m(x), m(y)),
            Gate::Xnor(x, y) => b.xor(m(x), m(y)),
            Gate::Nand(x, y) => b.nor(m(x), m(y)),
            Gate::Nor(x, y) => b.nand(m(x), m(y)),
            ref g => panic!("FlipKind has no flip for {g:?}"),
        },
        Mutation::SwapMuxInputs => match *gate {
            Gate::Mux { sel, a, b: bb } => b.mux(m(sel), m(bb), m(a)),
            ref g => panic!("SwapMuxInputs on non-mux {g:?}"),
        },
    }
}

/// Drives every input port of the block interface identically on all
/// lanes (the injection selects are left untouched).
fn broadcast(sim: &mut CompiledSim, inputs: &BlockInputs) {
    sim.set_bus(crate::ports::PC, inputs.pc);
    sim.set_bus(crate::ports::INSN, inputs.insn);
    sim.set_bus(crate::ports::RS1_DATA, inputs.rs1_data);
    sim.set_bus(crate::ports::RS2_DATA, inputs.rs2_data);
    sim.set_bus(crate::ports::DMEM_RDATA, inputs.dmem_rdata);
}

/// One block's prepared campaign: the mutant population plus the shared
/// probe and testbench vector sets, ready to evaluate chunk by chunk.
/// This is the unit both the one-shot sweep and the checkpoint-resume
/// loop iterate over — a chunk's verdicts depend only on the chunk's own
/// instrumented simulator, which is what makes resumption bit-identical.
struct ChunkRunner<'b> {
    block: &'b InstrBlock,
    vectors: Vec<BlockInputs>,
    probes: Vec<BlockInputs>,
    mutants: Vec<Mutant>,
    lanes: usize,
}

impl<'b> ChunkRunner<'b> {
    fn new(block: &'b InstrBlock, limit: usize, seed: u64, lanes: usize) -> ChunkRunner<'b> {
        let lanes = lanes.min(MAX_TOTAL_LANES);
        assert!(lanes >= 2, "lane_mutation_coverage needs >= 2 lanes");
        let vectors = arch_test_vectors(block.mnemonic);
        let probes = observability_probes(&vectors);
        let mutants = mutants_of(block, limit, seed);
        ChunkRunner {
            block,
            vectors,
            probes,
            mutants,
            lanes,
        }
    }

    /// Chunks this block's campaign spans (`lanes - 1` mutants each).
    fn chunk_count(&self) -> usize {
        self.mutants.chunks(self.lanes - 1).count()
    }

    /// Evaluates chunk `index`, returning its `(observable, killed)`
    /// counts.
    fn run_chunk(&self, index: usize) -> (usize, usize) {
        let chunk = self
            .mutants
            .chunks(self.lanes - 1)
            .nth(index)
            .expect("chunk index in range");
        let refs: Vec<&Mutant> = chunk.iter().collect();
        let instrumented = instrument(&self.block.netlist, &refs);
        let width = refs.len() + 1; // + reference lane
        let reference = refs.len();
        let mut sim = CompiledSim::with_lanes_arc(std::sync::Arc::new(instrumented), width);
        // Assert each mutant's select on its own lane only. The selects
        // never change again, so the per-chunk sweeps below are pure
        // stimulus broadcasts.
        for (i, _) in refs.iter().enumerate() {
            let pattern: Vec<u64> = (0..width).map(|l| u64::from(l == i)).collect();
            sim.set_bus_lanes(&format!("__mut{i}"), &pattern);
        }

        // MCY observability filter: a mutant is observable iff some probe
        // vector distinguishes its lane from the reference lane.
        let mut is_observable = vec![false; refs.len()];
        for probe in &self.probes {
            broadcast(&mut sim, probe);
            sim.eval();
            let golden = read_outputs_lane(&sim, reference);
            for (i, seen) in is_observable.iter_mut().enumerate() {
                if !*seen && read_outputs_lane(&sim, i) != golden {
                    *seen = true;
                }
            }
            if is_observable.iter().all(|&o| o) {
                break;
            }
        }

        // Kill check: an observable mutant is killed iff some testbench
        // vector makes its lane differ from the golden semantics.
        let mut is_killed = vec![false; refs.len()];
        let mut open = is_observable.iter().filter(|&&o| o).count();
        'vectors: for v in &self.vectors {
            if open == 0 {
                break;
            }
            let instr = riscv_isa::Instruction::decode(v.insn).expect("vector decodes");
            let golden = block_semantics(instr, v);
            broadcast(&mut sim, v);
            sim.eval();
            for i in 0..refs.len() {
                if !is_observable[i] || is_killed[i] {
                    continue;
                }
                if read_outputs_lane(&sim, i) != golden {
                    is_killed[i] = true;
                    open -= 1;
                    if open == 0 {
                        break 'vectors;
                    }
                }
            }
        }

        (
            is_observable.iter().filter(|&&o| o).count(),
            is_killed.iter().filter(|&&k| k).count(),
        )
    }
}

/// Lane-parallel [`mutate::mutation_coverage`](crate::mutate::mutation_coverage):
/// same mutants, same probes, same testbench vectors, same verdicts — but
/// up to `lanes - 1` mutants settle per evaluation instead of one mutant
/// per interpreted sweep.
///
/// # Panics
///
/// Panics if `lanes < 2` after clamping (one mutant lane plus the
/// reference lane is the minimum useful width).
pub fn lane_mutation_coverage(
    block: &InstrBlock,
    limit: usize,
    seed: u64,
    lanes: usize,
) -> CoverageReport {
    let runner = ChunkRunner::new(block, limit, seed, lanes);
    let mut observable = 0;
    let mut killed = 0;
    for index in 0..runner.chunk_count() {
        let (o, k) = runner.run_chunk(index);
        observable += o;
        killed += k;
    }
    CoverageReport {
        generated: runner.mutants.len(),
        observable,
        killed,
    }
}

/// Runs the lane-parallel MCY loop over every block in the library, with
/// blocks claimed off a shared counter by the persistent worker pool when
/// `cfg.threads > 1`. Results are in deterministic mnemonic order and
/// independent of the thread count (each block's campaign is
/// self-contained).
pub fn library_mutation_coverage(lib: &HwLibrary, cfg: &CampaignConfig) -> Vec<BlockCoverage> {
    let blocks: Vec<&InstrBlock> = lib.iter().collect();
    let run = |block: &InstrBlock| BlockCoverage {
        mnemonic: block.mnemonic,
        report: lane_mutation_coverage(block, cfg.limit, cfg.seed, cfg.lanes),
    };
    let threads = cfg.threads.max(1).min(blocks.len().max(1));
    if threads == 1 || pool::in_job() {
        return blocks.into_iter().map(run).collect();
    }
    // Worker-pool fan-out: workers claim block indices off one atomic
    // counter (same claiming scheme as the shard scheduler) and publish
    // into index-addressed slots, so the output order never depends on
    // the interleaving.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<BlockCoverage>>> =
        blocks.iter().map(|_| Mutex::new(None)).collect();
    let pool = WorkerPool::shared(threads - 1);
    pool.run(threads, |_tid, _barrier| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(block) = blocks.get(i) else { break };
        *slots[i].lock().unwrap() = Some(run(block));
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every block was claimed"))
        .collect()
}

// ---------------------------------------------------------------------------
// Resumable campaigns: chunk-grained checkpoints
// ---------------------------------------------------------------------------

/// Per-block resume state: how many chunks of the block's mutant
/// population have been fully evaluated and the verdict counts they
/// accumulated. A chunk's verdicts depend only on that chunk's own
/// instrumented simulator (see [`ChunkRunner`]), so replaying the
/// remaining chunks after a restart yields the same totals as an
/// uninterrupted sweep, bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockProgress {
    /// Chunks fully evaluated so far.
    pub chunks_done: usize,
    /// Mutants generated for the block (fixed by `limit`/`seed`; recorded
    /// so a finished checkpoint can rebuild the report without re-running
    /// the mutant generator... it is re-derived on resume anyway and must
    /// match).
    pub generated: usize,
    /// Observable verdicts accumulated over the finished chunks.
    pub observable: usize,
    /// Killed verdicts accumulated over the finished chunks.
    pub killed: usize,
    /// True once every chunk of the block has been evaluated.
    pub complete: bool,
}

/// On-disk checkpoint of a library mutation sweep: the campaign knobs the
/// verdicts depend on plus one [`BlockProgress`] line per started block.
///
/// The format is a line-oriented text file (version-tagged, written
/// atomically via a `.tmp` sibling + rename) so interrupted runs can be
/// inspected with a pager:
///
/// ```text
/// gate-sim-checkpoint v1 mutation
/// config limit=24 seed=0x5eedcafe lanes=256
/// block add chunks=1 generated=24 observable=20 killed=20 done
/// block and chunks=1 generated=24 observable=19 killed=19
/// ```
///
/// A checkpoint is only valid for the exact `(limit, seed, lanes)` it was
/// written under — [`MutationCheckpoint::matches`] gates resumption, and
/// the `campaign` binary turns a mismatch into a runtime error rather
/// than silently restarting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationCheckpoint {
    /// Mutants sampled per block when the checkpoint was written.
    pub limit: usize,
    /// Mutant-sampling seed when the checkpoint was written.
    pub seed: u64,
    /// Stimulus lanes per settle when the checkpoint was written. The
    /// chunk grain is `lanes - 1` mutants, so resuming under a different
    /// width would mis-slice the population.
    pub lanes: usize,
    /// Progress per block, keyed by the mnemonic's display name.
    pub blocks: BTreeMap<String, BlockProgress>,
}

impl MutationCheckpoint {
    /// Fresh, empty checkpoint bound to `cfg`'s verdict-relevant knobs.
    pub fn new(cfg: &CampaignConfig) -> MutationCheckpoint {
        MutationCheckpoint {
            limit: cfg.limit,
            seed: cfg.seed,
            lanes: cfg.lanes,
            blocks: BTreeMap::new(),
        }
    }

    /// True when the checkpoint was written under the same
    /// verdict-relevant knobs as `cfg` and may therefore be resumed.
    /// (`threads` intentionally excluded: it never affects verdicts.)
    pub fn matches(&self, cfg: &CampaignConfig) -> bool {
        self.limit == cfg.limit && self.seed == cfg.seed && self.lanes == cfg.lanes
    }

    /// Serializes to the v1 text format (see the type docs).
    pub fn render(&self) -> String {
        let mut out = String::from("gate-sim-checkpoint v1 mutation\n");
        out.push_str(&format!(
            "config limit={} seed={:#x} lanes={}\n",
            self.limit, self.seed, self.lanes
        ));
        for (name, p) in &self.blocks {
            out.push_str(&format!(
                "block {name} chunks={} generated={} observable={} killed={}{}\n",
                p.chunks_done,
                p.generated,
                p.observable,
                p.killed,
                if p.complete { " done" } else { "" }
            ));
        }
        out
    }

    /// Parses the v1 text format, rejecting anything malformed — a
    /// corrupt checkpoint must fail loudly, never resume wrong.
    pub fn parse(text: &str) -> Result<MutationCheckpoint, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("gate-sim-checkpoint v1 mutation") => {}
            other => return Err(format!("bad checkpoint header: {other:?}")),
        }
        let config = lines.next().ok_or("missing config line")?;
        let mut limit = None;
        let mut seed = None;
        let mut lanes = None;
        let mut fields = config.split_whitespace();
        if fields.next() != Some("config") {
            return Err(format!("bad config line: {config:?}"));
        }
        for field in fields {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("bad config field: {field:?}"))?;
            match key {
                "limit" => limit = Some(parse_usize(value)?),
                "seed" => seed = Some(parse_u64(value)?),
                "lanes" => lanes = Some(parse_usize(value)?),
                _ => return Err(format!("unknown config key: {key:?}")),
            }
        }
        let (Some(limit), Some(seed), Some(lanes)) = (limit, seed, lanes) else {
            return Err(format!("incomplete config line: {config:?}"));
        };
        let mut blocks = BTreeMap::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            if fields.next() != Some("block") {
                return Err(format!("bad block line: {line:?}"));
            }
            let name = fields.next().ok_or("block line without a name")?;
            let mut p = BlockProgress::default();
            for field in fields {
                if field == "done" {
                    p.complete = true;
                    continue;
                }
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| format!("bad block field: {field:?}"))?;
                match key {
                    "chunks" => p.chunks_done = parse_usize(value)?,
                    "generated" => p.generated = parse_usize(value)?,
                    "observable" => p.observable = parse_usize(value)?,
                    "killed" => p.killed = parse_usize(value)?,
                    _ => return Err(format!("unknown block key: {key:?}")),
                }
            }
            if blocks.insert(name.to_string(), p).is_some() {
                return Err(format!("duplicate block line for {name:?}"));
            }
        }
        Ok(MutationCheckpoint {
            limit,
            seed,
            lanes,
            blocks,
        })
    }

    /// Loads a checkpoint from `path`. `Ok(None)` when the file does not
    /// exist (a fresh run); malformed contents are an
    /// [`io::ErrorKind::InvalidData`] error, never a silent restart.
    pub fn load(path: &Path) -> io::Result<Option<MutationCheckpoint>> {
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        MutationCheckpoint::parse(&text)
            .map(Some)
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
    }

    /// Atomically persists the checkpoint: the rendered text is written
    /// to a `.tmp` sibling and renamed over `path`, so a crash mid-write
    /// leaves either the previous checkpoint or the new one — never a
    /// torn file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, self.render())?;
        fs::rename(&tmp, path)
    }
}

fn parse_usize(value: &str) -> Result<usize, String> {
    value
        .parse::<usize>()
        .map_err(|_| format!("bad integer: {value:?}"))
}

fn parse_u64(value: &str) -> Result<u64, String> {
    if let Some(hex) = value.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|_| format!("bad hex integer: {value:?}"))
    } else {
        value
            .parse::<u64>()
            .map_err(|_| format!("bad integer: {value:?}"))
    }
}

/// Result of a checkpointed sweep: either every block finished, or the
/// chunk budget ran out with the checkpoint recording where to pick up.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepOutcome {
    /// Every block completed; the per-block reports are in library
    /// (mnemonic) order and bit-identical to an uninterrupted
    /// [`library_mutation_coverage`] run at the same knobs.
    Complete(Vec<BlockCoverage>),
    /// The chunk budget ran out first. `chunks_run` chunks were evaluated
    /// this invocation and the checkpoint (in memory and, when a path was
    /// given, on disk) records the frontier.
    Interrupted {
        /// Chunks evaluated before the budget ran out.
        chunks_run: usize,
    },
}

/// [`library_mutation_coverage`] with chunk-grained checkpointing: blocks
/// already marked complete in `checkpoint` are skipped, a partially
/// finished block resumes at its first unevaluated chunk, and the
/// checkpoint is re-persisted to `path` (atomically) after **every**
/// chunk, so an interruption at any point loses at most one chunk of
/// work. `chunk_budget` bounds how many chunks this invocation may
/// evaluate (`None` = unbounded) — the deterministic stand-in for a
/// mid-run SIGKILL in tests and the `--max-chunks` flag of the `campaign`
/// binary.
///
/// Unlike the plain sweep this walks blocks sequentially (checkpoint
/// writes serialize the block loop); the lane parallelism *within* each
/// chunk is unchanged, which is where the actual speedup lives.
///
/// # Errors
///
/// Only checkpoint persistence can fail; verdict evaluation itself never
/// returns an error.
///
/// # Panics
///
/// Panics if `checkpoint` does not [`match`](MutationCheckpoint::matches)
/// `cfg` — callers decide whether a mismatch is a usage error (the
/// `campaign` binary refuses with a runtime error) before getting here.
pub fn library_mutation_coverage_checkpointed(
    lib: &HwLibrary,
    cfg: &CampaignConfig,
    checkpoint: &mut MutationCheckpoint,
    path: Option<&Path>,
    chunk_budget: Option<usize>,
) -> io::Result<SweepOutcome> {
    assert!(
        checkpoint.matches(cfg),
        "checkpoint knobs (limit={} seed={:#x} lanes={}) do not match the campaign config",
        checkpoint.limit,
        checkpoint.seed,
        checkpoint.lanes
    );
    let mut chunks_run = 0usize;
    for block in lib.iter() {
        let key = block.mnemonic.to_string();
        let mut progress = checkpoint.blocks.get(&key).copied().unwrap_or_default();
        if progress.complete {
            continue;
        }
        let runner = ChunkRunner::new(block, cfg.limit, cfg.seed, cfg.lanes);
        progress.generated = runner.mutants.len();
        let total = runner.chunk_count();
        loop {
            if progress.chunks_done >= total {
                progress.complete = true;
                checkpoint.blocks.insert(key.clone(), progress);
                if let Some(path) = path {
                    checkpoint.save(path)?;
                }
                break;
            }
            if chunk_budget.is_some_and(|budget| chunks_run >= budget) {
                checkpoint.blocks.insert(key.clone(), progress);
                if let Some(path) = path {
                    checkpoint.save(path)?;
                }
                return Ok(SweepOutcome::Interrupted { chunks_run });
            }
            let (o, k) = runner.run_chunk(progress.chunks_done);
            progress.chunks_done += 1;
            progress.observable += o;
            progress.killed += k;
            chunks_run += 1;
            checkpoint.blocks.insert(key.clone(), progress);
            if let Some(path) = path {
                checkpoint.save(path)?;
            }
        }
    }
    let results = lib
        .iter()
        .map(|block| {
            let p = checkpoint.blocks[&block.mnemonic.to_string()];
            BlockCoverage {
                mnemonic: block.mnemonic,
                report: CoverageReport {
                    generated: p.generated,
                    observable: p.observable,
                    killed: p.killed,
                },
            }
        })
        .collect();
    Ok(SweepOutcome::Complete(results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::build_block;
    use crate::mutate::mutation_coverage;

    fn block(m: Mnemonic) -> InstrBlock {
        InstrBlock {
            mnemonic: m,
            netlist: build_block(m),
        }
    }

    #[test]
    fn lane_coverage_matches_scalar_for_representative_blocks() {
        for m in [Mnemonic::Add, Mnemonic::Beq, Mnemonic::Sb, Mnemonic::Sra] {
            let b = block(m);
            let scalar = mutation_coverage(&b, 25, 23);
            for lanes in [4, 64, 96] {
                let batched = lane_mutation_coverage(&b, 25, 23, lanes);
                assert_eq!(batched, scalar, "{m} at {lanes} lanes");
            }
        }
    }

    #[test]
    fn chunking_never_changes_the_report() {
        // 3 lanes -> 2 mutants per chunk: the 20-mutant campaign spans 10
        // instrumented netlists and must still agree with the widest case.
        let b = block(Mnemonic::Xor);
        let narrow = lane_mutation_coverage(&b, 20, 7, 3);
        let wide = lane_mutation_coverage(&b, 20, 7, MAX_TOTAL_LANES);
        assert_eq!(narrow, wide);
        assert_eq!(narrow, mutation_coverage(&b, 20, 7));
    }

    #[test]
    fn instrumented_netlist_with_idle_selects_matches_original() {
        let b = block(Mnemonic::And);
        let mutants = mutants_of(&b, 6, 3);
        let refs: Vec<&Mutant> = mutants.iter().collect();
        let instrumented = instrument(&b.netlist, &refs);
        let mut sim = CompiledSim::with_lanes_arc(std::sync::Arc::new(instrumented), 2);
        for v in arch_test_vectors(b.mnemonic).iter().take(40) {
            broadcast(&mut sim, v);
            sim.eval();
            let hw = crate::verify::run_hw_block(&b, v);
            assert_eq!(read_outputs_lane(&sim, 0), hw);
            assert_eq!(read_outputs_lane(&sim, 1), hw);
        }
    }

    #[test]
    fn library_sweep_is_thread_count_independent() {
        let lib = HwLibrary::build_full();
        let cfg = CampaignConfig {
            limit: 3,
            seed: 11,
            lanes: 64,
            threads: 1,
        };
        let seq = library_mutation_coverage(&lib, &cfg);
        assert_eq!(seq.len(), lib.len());
        let par = library_mutation_coverage(&lib, &CampaignConfig { threads: 4, ..cfg });
        assert_eq!(seq, par);
    }

    #[test]
    fn checkpoint_roundtrips_through_text() {
        let cfg = CampaignConfig {
            limit: 24,
            seed: 0x5eed_cafe,
            lanes: 256,
            threads: 1,
        };
        let mut ckpt = MutationCheckpoint::new(&cfg);
        ckpt.blocks.insert(
            "add".into(),
            BlockProgress {
                chunks_done: 1,
                generated: 24,
                observable: 20,
                killed: 20,
                complete: true,
            },
        );
        ckpt.blocks.insert(
            "and".into(),
            BlockProgress {
                chunks_done: 1,
                generated: 24,
                observable: 19,
                killed: 19,
                complete: false,
            },
        );
        let parsed = MutationCheckpoint::parse(&ckpt.render()).expect("roundtrip");
        assert_eq!(parsed, ckpt);
        assert!(parsed.matches(&cfg));
        assert!(!parsed.matches(&CampaignConfig { seed: 1, ..cfg }));
        assert!(!parsed.matches(&CampaignConfig { lanes: 64, ..cfg }));
        // `threads` never affects verdicts, so it never invalidates.
        assert!(parsed.matches(&CampaignConfig { threads: 8, ..cfg }));
    }

    #[test]
    fn checkpoint_parse_rejects_corruption() {
        let good = MutationCheckpoint::new(&CampaignConfig::default()).render();
        assert!(MutationCheckpoint::parse("").is_err(), "empty file");
        assert!(
            MutationCheckpoint::parse(&good.replace("v1", "v9")).is_err(),
            "unknown version"
        );
        assert!(
            MutationCheckpoint::parse(&good.replace("limit=", "limit=x")).is_err(),
            "bad integer"
        );
        assert!(
            MutationCheckpoint::parse(&good.replace("lanes=", "sharks=")).is_err(),
            "unknown config key"
        );
        let dup = format!("{good}block add chunks=1\nblock add chunks=2\n");
        assert!(MutationCheckpoint::parse(&dup).is_err(), "duplicate block");
        assert!(
            MutationCheckpoint::parse(&format!("{good}block add chunks=nope\n")).is_err(),
            "bad block field"
        );
    }

    #[test]
    fn interrupted_sweep_resumes_bit_identically() {
        let lib = HwLibrary::build_full();
        let cfg = CampaignConfig {
            limit: 3,
            seed: 11,
            lanes: 64,
            threads: 1,
        };
        let baseline = library_mutation_coverage(&lib, &cfg);
        let path = std::env::temp_dir().join(format!(
            "gate-sim-mutation-resume-{}.checkpoint",
            std::process::id()
        ));
        let _ = fs::remove_file(&path);

        // Drive the sweep a few chunks at a time, dropping the in-memory
        // checkpoint after every interruption: each round reloads from
        // disk exactly as a restarted process would.
        let mut ckpt = MutationCheckpoint::new(&cfg);
        let mut interruptions = 0;
        let final_reports = loop {
            match library_mutation_coverage_checkpointed(
                &lib,
                &cfg,
                &mut ckpt,
                Some(&path),
                Some(7),
            )
            .expect("checkpoint persistence")
            {
                SweepOutcome::Complete(reports) => break reports,
                SweepOutcome::Interrupted { chunks_run } => {
                    assert!(chunks_run <= 7);
                    interruptions += 1;
                    assert!(interruptions < 1_000, "sweep never completes");
                    ckpt = MutationCheckpoint::load(&path)
                        .expect("readable checkpoint")
                        .expect("checkpoint was saved");
                    assert!(ckpt.matches(&cfg));
                }
            }
        };
        assert!(interruptions >= 1, "budget never interrupted the sweep");
        assert_eq!(
            final_reports, baseline,
            "resumed sweep must be bit-identical to the uninterrupted one"
        );
        // A completed checkpoint resumes to the same reports without
        // re-running any chunk.
        let mut done = MutationCheckpoint::load(&path).unwrap().unwrap();
        match library_mutation_coverage_checkpointed(&lib, &cfg, &mut done, None, Some(0)).unwrap()
        {
            SweepOutcome::Complete(reports) => assert_eq!(reports, baseline),
            other => panic!("completed checkpoint re-ran work: {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }
}
