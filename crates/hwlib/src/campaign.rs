//! Lane-parallel mutation-coverage campaigns (the MCY step at scale).
//!
//! [`mutate::mutation_coverage`](crate::mutate::mutation_coverage) runs one
//! mutant at a time through the interpreted [`netlist::Sim`] — fine for a
//! handful of blocks, hopeless for "millions of scenarios". This module
//! drives the same MCY loop through the batched backends: up to
//! `lanes - 1` mutants of a block settle *simultaneously*, one mutant per
//! stimulus lane of a single [`CompiledSim`], with the last lane reserved
//! as the unmutated reference.
//!
//! # Lane ↔ mutant mapping
//!
//! A chunk of mutants is compiled into one *instrumented* netlist: every
//! mutated net's driver is wrapped in an injection mux
//!
//! ```text
//! value(net) = mux(__mut{i}, original_gate, mutated_gate)
//! ```
//!
//! where `__mut{i}` is a fresh 1-bit input asserted **only on lane `i`**.
//! Lane `i` therefore computes exactly the function of
//! [`Netlist::with_gate_replaced`] applied for mutant `i` alone, while the
//! reference lane (all selects low) computes the original block — so one
//! broadcast settle evaluates the whole chunk against one stimulus.
//! Mutants of the *same* net chain their muxes in mutant order; at most
//! one select is high per lane, so the chain resolves to the single
//! requested fault.
//!
//! The verdicts — which mutants are observable and which of those the
//! architecture testbench kills — are **bit-identical** to the scalar
//! [`mutate::mutation_coverage`](crate::mutate::mutation_coverage) loop
//! for every lane width and thread count (`tests/campaigns.rs` pins this
//! across the whole block library), because both paths compare the same
//! output ports on the same vector sets; only the evaluation schedule
//! changes.

use crate::mutate::{mutants_of, observability_probes, CoverageReport, Mutant, Mutation};
use crate::verify::{arch_test_vectors, read_outputs_lane};
use crate::{HwLibrary, InstrBlock};
use netlist::compiled::{CompiledSim, LANES_PER_WORD, MAX_TOTAL_LANES};
use netlist::pool::{self, WorkerPool};
use netlist::{Builder, Gate, NetId, Netlist};
use riscv_isa::semantics::{block_semantics, BlockInputs};
use riscv_isa::Mnemonic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Tuning knobs for a mutation-coverage campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Mutants sampled per block (the `limit` of
    /// [`mutants_of`]).
    pub limit: usize,
    /// Mutant-sampling seed, shared by every block (each block's mutant
    /// set still differs because its netlist differs).
    pub seed: u64,
    /// Stimulus lanes per settle: `lanes - 1` mutants evaluate per chunk
    /// and the last lane carries the unmutated reference. Clamped to
    /// [`MAX_TOTAL_LANES`].
    pub lanes: usize,
    /// Worker threads for the library-wide sweep (blocks are claimed off
    /// a shared counter by the persistent worker pool). `1` runs inline.
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            limit: 24,
            seed: 0x5eed_cafe,
            lanes: LANES_PER_WORD * netlist::env_lane_words().unwrap_or(4),
            threads: netlist::env_threads().unwrap_or(1),
        }
    }
}

/// One block's campaign outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockCoverage {
    /// The block the mutants were drawn from.
    pub mnemonic: Mnemonic,
    /// The kill report, bit-identical to the scalar MCY loop's.
    pub report: CoverageReport,
}

/// Builds the instrumented netlist for one chunk of mutants: every mutated
/// net's driver is wrapped in `mux(__mut{i}, original, mutated)` with a
/// fresh 1-bit `__mut{i}` input per mutant.
///
/// The rebuild walks the gate arena in topological (id) order through a
/// fresh [`Builder`], so hash-consing and constant folding re-apply; that
/// cannot change any lane's I/O function — lane `i` with only `__mut{i}`
/// high computes exactly the mutant-`i` netlist, and a lane with all
/// selects low computes the original block.
///
/// # Panics
///
/// Panics if the block netlist contains flip-flops (instruction blocks are
/// purely combinational) or a mutant refers to an out-of-range net.
pub fn instrument(netlist: &Netlist, mutants: &[&Mutant]) -> Netlist {
    let mut b = Builder::new();
    let mut map: Vec<NetId> = vec![NetId::MAX; netlist.len()];

    // Re-declare the input ports first, in declaration order, so the
    // instrumented netlist keeps the block's port interface; the injection
    // selects follow as fresh single-bit ports.
    for port in netlist.inputs() {
        let nets = b.input_bus(&port.name, port.nets.len());
        for (&old, &new) in port.nets.iter().zip(&nets) {
            map[old as usize] = new;
        }
    }
    let sels: Vec<NetId> = (0..mutants.len())
        .map(|i| b.input(&format!("__mut{i}")))
        .collect();

    for (id, gate) in netlist.gates().iter().enumerate() {
        let m = |n: NetId| map[n as usize];
        let mut new = match *gate {
            Gate::Input(_) => continue, // mapped with its port above
            Gate::Const(v) => b.constant(v),
            Gate::Not(x) => b.not(m(x)),
            Gate::And(x, y) => b.and(m(x), m(y)),
            Gate::Or(x, y) => b.or(m(x), m(y)),
            Gate::Xor(x, y) => b.xor(m(x), m(y)),
            Gate::Nand(x, y) => b.nand(m(x), m(y)),
            Gate::Nor(x, y) => b.nor(m(x), m(y)),
            Gate::Xnor(x, y) => b.xnor(m(x), m(y)),
            Gate::Mux { sel, a, b: bb } => b.mux(m(sel), m(a), m(bb)),
            Gate::Dff { .. } => panic!("instrument: instruction blocks are combinational"),
        };
        for (i, mutant) in mutants.iter().enumerate() {
            if mutant.net as usize != id {
                continue;
            }
            let faulty = mutated_value(&mut b, gate, mutant.mutation, &map);
            // sel high (lane i) selects the faulty value.
            new = b.mux(sels[i], new, faulty);
        }
        map[id] = new;
    }

    for port in netlist.outputs() {
        let nets: Vec<NetId> = port.nets.iter().map(|&n| map[n as usize]).collect();
        b.output_bus(&port.name, &nets);
    }
    b.finish()
}

/// Emits the faulty replacement value for one mutation of `gate`, with
/// fan-ins remapped into the instrumented netlist.
fn mutated_value(b: &mut Builder, gate: &Gate, mutation: Mutation, map: &[NetId]) -> NetId {
    let m = |n: NetId| map[n as usize];
    match mutation {
        Mutation::StuckAtZero => b.zero(),
        Mutation::StuckAtOne => b.one(),
        Mutation::FlipKind => match *gate {
            Gate::And(x, y) => b.or(m(x), m(y)),
            Gate::Or(x, y) => b.and(m(x), m(y)),
            Gate::Xor(x, y) => b.xnor(m(x), m(y)),
            Gate::Xnor(x, y) => b.xor(m(x), m(y)),
            Gate::Nand(x, y) => b.nor(m(x), m(y)),
            Gate::Nor(x, y) => b.nand(m(x), m(y)),
            ref g => panic!("FlipKind has no flip for {g:?}"),
        },
        Mutation::SwapMuxInputs => match *gate {
            Gate::Mux { sel, a, b: bb } => b.mux(m(sel), m(bb), m(a)),
            ref g => panic!("SwapMuxInputs on non-mux {g:?}"),
        },
    }
}

/// Drives every input port of the block interface identically on all
/// lanes (the injection selects are left untouched).
fn broadcast(sim: &mut CompiledSim, inputs: &BlockInputs) {
    sim.set_bus(crate::ports::PC, inputs.pc);
    sim.set_bus(crate::ports::INSN, inputs.insn);
    sim.set_bus(crate::ports::RS1_DATA, inputs.rs1_data);
    sim.set_bus(crate::ports::RS2_DATA, inputs.rs2_data);
    sim.set_bus(crate::ports::DMEM_RDATA, inputs.dmem_rdata);
}

/// Lane-parallel [`mutate::mutation_coverage`](crate::mutate::mutation_coverage):
/// same mutants, same probes, same testbench vectors, same verdicts — but
/// up to `lanes - 1` mutants settle per evaluation instead of one mutant
/// per interpreted sweep.
///
/// # Panics
///
/// Panics if `lanes < 2` after clamping (one mutant lane plus the
/// reference lane is the minimum useful width).
pub fn lane_mutation_coverage(
    block: &InstrBlock,
    limit: usize,
    seed: u64,
    lanes: usize,
) -> CoverageReport {
    let lanes = lanes.min(MAX_TOTAL_LANES);
    assert!(lanes >= 2, "lane_mutation_coverage needs >= 2 lanes");
    let vectors = arch_test_vectors(block.mnemonic);
    let probes = observability_probes(&vectors);
    let mutants = mutants_of(block, limit, seed);
    let generated = mutants.len();
    let mut observable = 0;
    let mut killed = 0;

    for chunk in mutants.chunks(lanes - 1) {
        let refs: Vec<&Mutant> = chunk.iter().collect();
        let instrumented = instrument(&block.netlist, &refs);
        let width = refs.len() + 1; // + reference lane
        let reference = refs.len();
        let mut sim = CompiledSim::with_lanes_arc(std::sync::Arc::new(instrumented), width);
        // Assert each mutant's select on its own lane only. The selects
        // never change again, so the per-chunk sweeps below are pure
        // stimulus broadcasts.
        for (i, _) in refs.iter().enumerate() {
            let pattern: Vec<u64> = (0..width).map(|l| u64::from(l == i)).collect();
            sim.set_bus_lanes(&format!("__mut{i}"), &pattern);
        }

        // MCY observability filter: a mutant is observable iff some probe
        // vector distinguishes its lane from the reference lane.
        let mut is_observable = vec![false; refs.len()];
        for probe in &probes {
            broadcast(&mut sim, probe);
            sim.eval();
            let golden = read_outputs_lane(&sim, reference);
            for (i, seen) in is_observable.iter_mut().enumerate() {
                if !*seen && read_outputs_lane(&sim, i) != golden {
                    *seen = true;
                }
            }
            if is_observable.iter().all(|&o| o) {
                break;
            }
        }

        // Kill check: an observable mutant is killed iff some testbench
        // vector makes its lane differ from the golden semantics.
        let mut is_killed = vec![false; refs.len()];
        let mut open = is_observable.iter().filter(|&&o| o).count();
        'vectors: for v in &vectors {
            if open == 0 {
                break;
            }
            let instr = riscv_isa::Instruction::decode(v.insn).expect("vector decodes");
            let golden = block_semantics(instr, v);
            broadcast(&mut sim, v);
            sim.eval();
            for i in 0..refs.len() {
                if !is_observable[i] || is_killed[i] {
                    continue;
                }
                if read_outputs_lane(&sim, i) != golden {
                    is_killed[i] = true;
                    open -= 1;
                    if open == 0 {
                        break 'vectors;
                    }
                }
            }
        }

        observable += is_observable.iter().filter(|&&o| o).count();
        killed += is_killed.iter().filter(|&&k| k).count();
    }

    CoverageReport {
        generated,
        observable,
        killed,
    }
}

/// Runs the lane-parallel MCY loop over every block in the library, with
/// blocks claimed off a shared counter by the persistent worker pool when
/// `cfg.threads > 1`. Results are in deterministic mnemonic order and
/// independent of the thread count (each block's campaign is
/// self-contained).
pub fn library_mutation_coverage(lib: &HwLibrary, cfg: &CampaignConfig) -> Vec<BlockCoverage> {
    let blocks: Vec<&InstrBlock> = lib.iter().collect();
    let run = |block: &InstrBlock| BlockCoverage {
        mnemonic: block.mnemonic,
        report: lane_mutation_coverage(block, cfg.limit, cfg.seed, cfg.lanes),
    };
    let threads = cfg.threads.max(1).min(blocks.len().max(1));
    if threads == 1 || pool::in_job() {
        return blocks.into_iter().map(run).collect();
    }
    // Worker-pool fan-out: workers claim block indices off one atomic
    // counter (same claiming scheme as the shard scheduler) and publish
    // into index-addressed slots, so the output order never depends on
    // the interleaving.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<BlockCoverage>>> =
        blocks.iter().map(|_| Mutex::new(None)).collect();
    let pool = WorkerPool::shared(threads - 1);
    pool.run(threads, |_tid, _barrier| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(block) = blocks.get(i) else { break };
        *slots[i].lock().unwrap() = Some(run(block));
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every block was claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::build_block;
    use crate::mutate::mutation_coverage;

    fn block(m: Mnemonic) -> InstrBlock {
        InstrBlock {
            mnemonic: m,
            netlist: build_block(m),
        }
    }

    #[test]
    fn lane_coverage_matches_scalar_for_representative_blocks() {
        for m in [Mnemonic::Add, Mnemonic::Beq, Mnemonic::Sb, Mnemonic::Sra] {
            let b = block(m);
            let scalar = mutation_coverage(&b, 25, 23);
            for lanes in [4, 64, 96] {
                let batched = lane_mutation_coverage(&b, 25, 23, lanes);
                assert_eq!(batched, scalar, "{m} at {lanes} lanes");
            }
        }
    }

    #[test]
    fn chunking_never_changes_the_report() {
        // 3 lanes -> 2 mutants per chunk: the 20-mutant campaign spans 10
        // instrumented netlists and must still agree with the widest case.
        let b = block(Mnemonic::Xor);
        let narrow = lane_mutation_coverage(&b, 20, 7, 3);
        let wide = lane_mutation_coverage(&b, 20, 7, MAX_TOTAL_LANES);
        assert_eq!(narrow, wide);
        assert_eq!(narrow, mutation_coverage(&b, 20, 7));
    }

    #[test]
    fn instrumented_netlist_with_idle_selects_matches_original() {
        let b = block(Mnemonic::And);
        let mutants = mutants_of(&b, 6, 3);
        let refs: Vec<&Mutant> = mutants.iter().collect();
        let instrumented = instrument(&b.netlist, &refs);
        let mut sim = CompiledSim::with_lanes_arc(std::sync::Arc::new(instrumented), 2);
        for v in arch_test_vectors(b.mnemonic).iter().take(40) {
            broadcast(&mut sim, v);
            sim.eval();
            let hw = crate::verify::run_hw_block(&b, v);
            assert_eq!(read_outputs_lane(&sim, 0), hw);
            assert_eq!(read_outputs_lane(&sim, 1), hw);
        }
    }

    #[test]
    fn library_sweep_is_thread_count_independent() {
        let lib = HwLibrary::build_full();
        let cfg = CampaignConfig {
            limit: 3,
            seed: 11,
            lanes: 64,
            threads: 1,
        };
        let seq = library_mutation_coverage(&lib, &cfg);
        assert_eq!(seq.len(), lib.len());
        let par = library_mutation_coverage(&lib, &CampaignConfig { threads: 4, ..cfg });
        assert_eq!(seq, par);
    }
}
