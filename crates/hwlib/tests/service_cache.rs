//! Service-level program-cache guarantees over the hardware library.
//!
//! These live in their own integration-test binary (their own process) so
//! the [`netlist::ProgramCache::global`] counters they assert on are not
//! perturbed by unrelated tests compiling netlists concurrently. Within
//! the binary, the global-cache tests serialize on [`cache_mutex`].

use hwlib::campaign::instrument;
use hwlib::mutate::{mutants_of, Mutant};
use hwlib::HwLibrary;
use netlist::ProgramCache;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serializes the tests that assert on the process-wide cache counters.
fn cache_mutex() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The service contract of `docs/simulation.md` § "Simulation as a
/// service": one process compiles each distinct library core exactly
/// once. The first `verify_all` sweep misses once per distinct core (and
/// already hits when a block's second verification stage reuses the
/// content); a second full sweep adds zero misses — every compile in it
/// is a cache hit.
#[test]
fn verify_all_compiles_each_distinct_core_exactly_once_per_process() {
    if !netlist::env::program_cache_enabled() {
        return; // GATE_SIM_PROGRAM_CACHE=0: every compile is a bypass.
    }
    let _guard = cache_mutex();
    let cache = ProgramCache::global();
    let lib = HwLibrary::build_full();
    cache.clear();
    let before = cache.stats();

    lib.verify_all(64, 1).expect("library verifies");
    let mid = cache.stats();
    let first_misses = mid.misses - before.misses;
    assert!(
        first_misses > 0 && first_misses <= lib.len() as u64,
        "first sweep must compile each distinct core once: {first_misses} misses for {} blocks",
        lib.len()
    );
    // Each block is verified twice (functional + formal) over the same
    // content, so the first sweep already reuses compiles.
    assert!(
        mid.hits - before.hits >= lib.len() as u64,
        "the second verification stage of each block must hit: {:?}",
        mid
    );

    lib.verify_all(64, 1).expect("library verifies again");
    let after = cache.stats();
    assert_eq!(
        after.misses - mid.misses,
        0,
        "a second verify_all sweep must not compile anything: {:?}",
        after
    );
    assert!(after.hits > mid.hits, "the second sweep must hit");
    let sweep = netlist::CacheStats {
        hits: after.hits - mid.hits,
        misses: 0,
        evictions: 0,
        bypasses: after.bypasses - mid.bypasses,
        entries: after.entries,
    };
    assert_eq!(sweep.hit_rate(), 1.0, "second sweep is 100% hits");
}

/// The content hash is the correctness boundary: instrumented campaign
/// netlists carrying different mutant sets are different content and must
/// never share a compiled program — while re-presenting the same mutant
/// set behind a fresh allocation is the same content and must hit.
#[test]
fn instrumented_netlists_with_different_mutants_never_false_hit() {
    let lib = HwLibrary::build_full();
    let block = lib.iter().next().expect("library is non-empty");
    let mutants = mutants_of(block, 4, 9);
    assert!(mutants.len() >= 2, "need two mutants to instrument with");
    let refs: Vec<&Mutant> = mutants.iter().collect();
    let set_a = instrument(&block.netlist, &refs[..1]);
    let set_b = instrument(&block.netlist, &refs[1..2]);
    assert_ne!(
        ProgramCache::content_hash(&set_a),
        ProgramCache::content_hash(&set_b),
        "different mutant sets must hash as different content"
    );

    // A private cache keeps this test independent of the global counters
    // (and of GATE_SIM_PROGRAM_CACHE): the keying contract is the same.
    let cache = ProgramCache::new(8);
    let a = cache.get_or_compile(&std::sync::Arc::new(set_a.clone()));
    let b = cache.get_or_compile(&std::sync::Arc::new(set_b));
    let stats = cache.stats();
    assert_eq!(
        (stats.misses, stats.hits),
        (2, 0),
        "each mutant set is distinct content: {stats:?}"
    );
    assert!(
        !std::sync::Arc::ptr_eq(&a, &b),
        "different content must never share a program"
    );
    // Same content behind a brand-new allocation: a hit on A's program.
    let a_again = cache.get_or_compile(&std::sync::Arc::new(set_a));
    assert!(std::sync::Arc::ptr_eq(&a, &a_again));
    assert_eq!(cache.stats().hits, 1);
}
