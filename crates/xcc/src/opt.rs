//! AST-level optimisation passes.
//!
//! Each gcc optimisation level the paper profiles (Figure 5) maps to a pass
//! pipeline here:
//!
//! | level | passes |
//! |-------|--------|
//! | `-O0` | none (and codegen keeps every local on the stack) |
//! | `-O1` | constant folding + register allocation |
//! | `-O2` | `-O1` + strength reduction + small-function inlining |
//! | `-O3` | `-O2` + aggressive inlining + full unrolling of short counted loops |
//! | `-Oz` | folding + strength reduction only (size-first: no inlining, no unrolling) |

use crate::ast::{BinOp, Expr, Function, Program, Stmt, UnOp, VarId};
use std::collections::HashMap;

/// Optimisation level, mirroring the gcc flags of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    /// No optimisation; locals live on the stack.
    O0,
    /// Folding and register allocation.
    O1,
    /// `-O1` plus strength reduction and small inlining.
    O2,
    /// `-O2` plus aggressive inlining and loop unrolling.
    O3,
    /// Optimise for size.
    Oz,
}

impl OptLevel {
    /// All levels in Figure 5's order.
    pub const ALL: [OptLevel; 5] = [
        OptLevel::O0,
        OptLevel::O1,
        OptLevel::O2,
        OptLevel::O3,
        OptLevel::Oz,
    ];

    /// The flag spelling used in reports (`-O0` … `-Oz`).
    pub fn flag(self) -> &'static str {
        match self {
            OptLevel::O0 => "-O0",
            OptLevel::O1 => "-O1",
            OptLevel::O2 => "-O2",
            OptLevel::O3 => "-O3",
            OptLevel::Oz => "-Oz",
        }
    }

    /// Whether codegen should allocate locals to registers.
    pub fn allocate_registers(self) -> bool {
        self != OptLevel::O0
    }

    fn fold(self) -> bool {
        self != OptLevel::O0
    }

    fn strength_reduce(self) -> bool {
        matches!(self, OptLevel::O2 | OptLevel::O3 | OptLevel::Oz)
    }

    fn inline_limit(self) -> usize {
        match self {
            OptLevel::O2 => 4,
            OptLevel::O3 => 16,
            _ => 0,
        }
    }

    fn unroll_limit(self) -> usize {
        match self {
            OptLevel::O3 => 16,
            _ => 0,
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.flag())
    }
}

/// Runs the pass pipeline for `level` over the whole program.
pub fn optimize(program: &Program, level: OptLevel) -> Program {
    let mut p = program.clone();
    if level.fold() {
        for f in &mut p.functions {
            fold_body(&mut f.body);
        }
    }
    if level.strength_reduce() {
        for f in &mut p.functions {
            reduce_body(&mut f.body);
        }
        if level.fold() {
            for f in &mut p.functions {
                fold_body(&mut f.body);
            }
        }
    }
    if level.inline_limit() > 0 {
        p = inline_functions(&p, level.inline_limit());
    }
    if level.unroll_limit() > 0 {
        for f in &mut p.functions {
            unroll_body(&mut f.body, level.unroll_limit());
        }
    }
    p
}

// ---------------------------------------------------------------------------
// Constant folding.
// ---------------------------------------------------------------------------

fn fold_body(body: &mut [Stmt]) {
    for s in body {
        match s {
            Stmt::Assign(_, e) | Stmt::Return(Some(e)) | Stmt::Expr(e) => fold_expr(e),
            Stmt::Store { addr, value, .. } => {
                fold_expr(addr);
                fold_expr(value);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                fold_expr(cond);
                fold_body(then_body);
                fold_body(else_body);
            }
            Stmt::While { cond, body } => {
                fold_expr(cond);
                fold_body(body);
            }
            Stmt::For { from, to, body, .. } => {
                fold_expr(from);
                fold_expr(to);
                fold_body(body);
            }
            Stmt::Return(None) => {}
        }
    }
}

/// Folds constant sub-expressions in place.
pub fn fold_expr(e: &mut Expr) {
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::GlobalAddr(_) => {}
        Expr::Un(op, inner) => {
            fold_expr(inner);
            if let Expr::Const(v) = **inner {
                *e = Expr::Const(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::BitNot => !v,
                    UnOp::Not => (v == 0) as i32,
                });
            }
        }
        Expr::Bin(op, a, b) => {
            fold_expr(a);
            fold_expr(b);
            if let (Expr::Const(x), Expr::Const(y)) = (&**a, &**b) {
                if let Some(v) = eval_const(*op, *x, *y) {
                    *e = Expr::Const(v);
                    return;
                }
            }
            // Identity simplifications.
            match (&*op, &**a, &**b) {
                (BinOp::Add, _, Expr::Const(0)) | (BinOp::Sub, _, Expr::Const(0)) => {
                    *e = (**a).clone();
                }
                (BinOp::Add, Expr::Const(0), _) => *e = (**b).clone(),
                (BinOp::Mul, _, Expr::Const(1)) => *e = (**a).clone(),
                (BinOp::Mul, Expr::Const(1), _) => *e = (**b).clone(),
                (BinOp::Mul, _, Expr::Const(0)) | (BinOp::Mul, Expr::Const(0), _) => {
                    *e = Expr::Const(0);
                }
                (BinOp::Shl | BinOp::ShrU | BinOp::ShrS, _, Expr::Const(0)) => {
                    *e = (**a).clone();
                }
                _ => {}
            }
        }
        Expr::Load { addr, .. } => fold_expr(addr),
        Expr::Call(_, args) => args.iter_mut().for_each(fold_expr),
    }
}

/// Evaluates a binary operator over constants (compile-time semantics match
/// the RV32E run-time semantics exactly).
pub fn eval_const(op: BinOp, x: i32, y: i32) -> Option<i32> {
    let (ux, uy) = (x as u32, y as u32);
    Some(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::DivS => {
            if y == 0 {
                return None;
            }
            x.wrapping_div(y)
        }
        BinOp::DivU => {
            if uy == 0 {
                return None;
            }
            (ux / uy) as i32
        }
        BinOp::RemS => {
            if y == 0 {
                return None;
            }
            x.wrapping_rem(y)
        }
        BinOp::RemU => {
            if uy == 0 {
                return None;
            }
            (ux % uy) as i32
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => ((ux) << (uy & 31)) as i32,
        BinOp::ShrU => (ux >> (uy & 31)) as i32,
        BinOp::ShrS => x >> (uy & 31),
        BinOp::Eq => (x == y) as i32,
        BinOp::Ne => (x != y) as i32,
        BinOp::LtS => (x < y) as i32,
        BinOp::LtU => (ux < uy) as i32,
        BinOp::GeS => (x >= y) as i32,
        BinOp::GeU => (ux >= uy) as i32,
        BinOp::LeS => (x <= y) as i32,
        BinOp::GtS => (x > y) as i32,
    })
}

// ---------------------------------------------------------------------------
// Strength reduction.
// ---------------------------------------------------------------------------

fn reduce_body(body: &mut [Stmt]) {
    for s in body {
        match s {
            Stmt::Assign(_, e) | Stmt::Return(Some(e)) | Stmt::Expr(e) => reduce_expr(e),
            Stmt::Store { addr, value, .. } => {
                reduce_expr(addr);
                reduce_expr(value);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                reduce_expr(cond);
                reduce_body(then_body);
                reduce_body(else_body);
            }
            Stmt::While { cond, body } => {
                reduce_expr(cond);
                reduce_body(body);
            }
            Stmt::For { from, to, body, .. } => {
                reduce_expr(from);
                reduce_expr(to);
                reduce_body(body);
            }
            Stmt::Return(None) => {}
        }
    }
}

/// Rewrites multiplications/divisions by suitable constants into shift/add
/// forms (gcc's `-O2` strength reduction).
pub fn reduce_expr(e: &mut Expr) {
    // Recurse first so nested constants are already reduced.
    match e {
        Expr::Un(_, inner) => reduce_expr(inner),
        Expr::Bin(_, a, b) => {
            reduce_expr(a);
            reduce_expr(b);
        }
        Expr::Load { addr, .. } => reduce_expr(addr),
        Expr::Call(_, args) => args.iter_mut().for_each(reduce_expr),
        _ => {}
    }
    let Expr::Bin(op, a, b) = e else { return };
    let (konst, other) = match (&**a, &**b) {
        (_, Expr::Const(k)) => (*k, (**a).clone()),
        (Expr::Const(k), _) if *op == BinOp::Mul => (*k, (**b).clone()),
        _ => return,
    };
    match op {
        BinOp::Mul => {
            if let Some(replacement) = mul_by_const(other, konst) {
                *e = replacement;
            }
        }
        BinOp::DivU if konst > 0 && (konst as u32).is_power_of_two() => {
            *e = Expr::Bin(
                BinOp::ShrU,
                Box::new(other),
                Box::new(Expr::Const((konst as u32).trailing_zeros() as i32)),
            );
        }
        BinOp::RemU if konst > 0 && (konst as u32).is_power_of_two() => {
            *e = Expr::Bin(
                BinOp::And,
                Box::new(other),
                Box::new(Expr::Const(konst - 1)),
            );
        }
        _ => {}
    }
}

/// Builds `x * k` out of shifts and adds when `k` decomposes into at most
/// three power-of-two terms.
fn mul_by_const(x: Expr, k: i32) -> Option<Expr> {
    if k == 0 {
        return Some(Expr::Const(0));
    }
    if k == 1 {
        return Some(x);
    }
    let (mag, negate) = if k < 0 {
        (k.unsigned_abs(), true)
    } else {
        (k as u32, false)
    };
    let ones = mag.count_ones();
    if ones > 3 {
        return None;
    }
    let mut terms: Vec<u32> = (0..32).filter(|i| mag & (1 << i) != 0).collect();
    terms.reverse();
    let shifted = |sh: u32| -> Expr {
        if sh == 0 {
            x.clone()
        } else {
            Expr::Bin(
                BinOp::Shl,
                Box::new(x.clone()),
                Box::new(Expr::Const(sh as i32)),
            )
        }
    };
    let mut acc = shifted(terms[0]);
    for &t in &terms[1..] {
        acc = Expr::Bin(BinOp::Add, Box::new(acc), Box::new(shifted(t)));
    }
    if negate {
        acc = Expr::Bin(BinOp::Sub, Box::new(Expr::Const(0)), Box::new(acc));
    }
    Some(acc)
}

// ---------------------------------------------------------------------------
// Inlining.
// ---------------------------------------------------------------------------

fn stmt_count(body: &[Stmt]) -> usize {
    body.iter()
        .map(|s| match s {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => 1 + stmt_count(then_body) + stmt_count(else_body),
            Stmt::While { body, .. } | Stmt::For { body, .. } => 1 + stmt_count(body),
            _ => 1,
        })
        .sum()
}

fn calls_in_body(body: &[Stmt], out: &mut Vec<&'static str>) {
    fn expr(e: &Expr, out: &mut Vec<&'static str>) {
        match e {
            Expr::Call(name, args) => {
                out.push(name);
                args.iter().for_each(|a| expr(a, out));
            }
            Expr::Un(_, a) => expr(a, out),
            Expr::Bin(_, a, b) => {
                expr(a, out);
                expr(b, out);
            }
            Expr::Load { addr, .. } => expr(addr, out),
            _ => {}
        }
    }
    for s in body {
        match s {
            Stmt::Assign(_, e) | Stmt::Return(Some(e)) | Stmt::Expr(e) => expr(e, out),
            Stmt::Store { addr, value, .. } => {
                expr(addr, out);
                expr(value, out);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                expr(cond, out);
                calls_in_body(then_body, out);
                calls_in_body(else_body, out);
            }
            Stmt::While { cond, body } => {
                expr(cond, out);
                calls_in_body(body, out);
            }
            Stmt::For { from, to, body, .. } => {
                expr(from, out);
                expr(to, out);
                calls_in_body(body, out);
            }
            Stmt::Return(None) => {}
        }
    }
}

/// Direct calls made by a function (with repetition).
pub fn calls_of(f: &Function) -> Vec<&'static str> {
    let mut out = Vec::new();
    calls_in_body(&f.body, &mut out);
    out
}

/// A function is inline-eligible when it is small, non-recursive and its
/// only `Return` is the final top-level statement.
fn inlinable(f: &Function, limit: usize) -> bool {
    if stmt_count(&f.body) > limit || f.name == "main" {
        return false;
    }
    if calls_of(f).contains(&f.name) {
        return false;
    }
    fn has_return(body: &[Stmt]) -> bool {
        body.iter().any(|s| match s {
            Stmt::Return(_) => true,
            Stmt::If {
                then_body,
                else_body,
                ..
            } => has_return(then_body) || has_return(else_body),
            Stmt::While { body, .. } | Stmt::For { body, .. } => has_return(body),
            _ => false,
        })
    }
    // Returns allowed only as the final top-level statement.
    let (last, rest) = match f.body.split_last() {
        Some(x) => x,
        None => return true,
    };
    if has_return(rest) {
        return false;
    }
    match last {
        Stmt::Return(_) => true,
        other => !has_return(std::slice::from_ref(other)),
    }
}

fn remap_expr(e: &Expr, offset: usize) -> Expr {
    match e {
        Expr::Var(v) => Expr::Var(v + offset),
        Expr::Un(op, a) => Expr::Un(*op, Box::new(remap_expr(a, offset))),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(remap_expr(a, offset)),
            Box::new(remap_expr(b, offset)),
        ),
        Expr::Load {
            width,
            signed,
            addr,
        } => Expr::Load {
            width: *width,
            signed: *signed,
            addr: Box::new(remap_expr(addr, offset)),
        },
        Expr::Call(name, args) => {
            Expr::Call(name, args.iter().map(|a| remap_expr(a, offset)).collect())
        }
        other => other.clone(),
    }
}

fn remap_body(body: &[Stmt], offset: usize) -> Vec<Stmt> {
    body.iter()
        .map(|s| match s {
            Stmt::Assign(v, e) => Stmt::Assign(v + offset, remap_expr(e, offset)),
            Stmt::Store { width, addr, value } => Stmt::Store {
                width: *width,
                addr: remap_expr(addr, offset),
                value: remap_expr(value, offset),
            },
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => Stmt::If {
                cond: remap_expr(cond, offset),
                then_body: remap_body(then_body, offset),
                else_body: remap_body(else_body, offset),
            },
            Stmt::While { cond, body } => Stmt::While {
                cond: remap_expr(cond, offset),
                body: remap_body(body, offset),
            },
            Stmt::For {
                var,
                from,
                to,
                body,
            } => Stmt::For {
                var: var + offset,
                from: remap_expr(from, offset),
                to: remap_expr(to, offset),
                body: remap_body(body, offset),
            },
            Stmt::Return(e) => Stmt::Return(e.as_ref().map(|e| remap_expr(e, offset))),
            Stmt::Expr(e) => Stmt::Expr(remap_expr(e, offset)),
        })
        .collect()
}

/// Inlines eligible callees at statement-level call sites:
/// `Assign(v, Call(..))` and `Expr(Call(..))`.
pub fn inline_functions(program: &Program, limit: usize) -> Program {
    let eligible: HashMap<&'static str, Function> = program
        .functions
        .iter()
        .filter(|f| inlinable(f, limit))
        .map(|f| (f.name, f.clone()))
        .collect();
    let mut p = program.clone();
    for f in &mut p.functions {
        let mut locals = f.locals;
        f.body = inline_body(&f.body, &eligible, &mut locals, f.name);
        f.locals = locals;
    }
    p
}

fn inline_body(
    body: &[Stmt],
    eligible: &HashMap<&'static str, Function>,
    locals: &mut usize,
    host: &str,
) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in body {
        match s {
            Stmt::Assign(v, Expr::Call(name, args))
                if eligible.contains_key(name) && *name != host =>
            {
                let callee = &eligible[name];
                out.extend(expand_call(callee, args, Some(*v), locals));
            }
            Stmt::Expr(Expr::Call(name, args)) if eligible.contains_key(name) && *name != host => {
                let callee = &eligible[name];
                out.extend(expand_call(callee, args, None, locals));
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => out.push(Stmt::If {
                cond: cond.clone(),
                then_body: inline_body(then_body, eligible, locals, host),
                else_body: inline_body(else_body, eligible, locals, host),
            }),
            Stmt::While { cond, body } => out.push(Stmt::While {
                cond: cond.clone(),
                body: inline_body(body, eligible, locals, host),
            }),
            Stmt::For {
                var,
                from,
                to,
                body,
            } => out.push(Stmt::For {
                var: *var,
                from: from.clone(),
                to: to.clone(),
                body: inline_body(body, eligible, locals, host),
            }),
            other => out.push(other.clone()),
        }
    }
    out
}

fn expand_call(
    callee: &Function,
    args: &[Expr],
    result: Option<VarId>,
    locals: &mut usize,
) -> Vec<Stmt> {
    let offset = *locals;
    *locals += callee.locals;
    let mut out = Vec::new();
    for (i, a) in args.iter().enumerate() {
        out.push(Stmt::Assign(offset + i, a.clone()));
    }
    let mut body = remap_body(&callee.body, offset);
    // Replace the (single, trailing) Return with an assignment.
    if let Some(Stmt::Return(e)) = body.last().cloned() {
        body.pop();
        if let (Some(v), Some(e)) = (result, e) {
            body.push(Stmt::Assign(v, e));
        }
    }
    out.extend(body);
    out
}

// ---------------------------------------------------------------------------
// Loop unrolling.
// ---------------------------------------------------------------------------

fn unroll_body(body: &mut Vec<Stmt>, limit: usize) {
    let mut out = Vec::with_capacity(body.len());
    for s in body.drain(..) {
        match s {
            Stmt::For {
                var,
                from: Expr::Const(lo),
                to: Expr::Const(hi),
                mut body,
            } if hi >= lo && ((hi - lo) as usize) <= limit => {
                unroll_body(&mut body, limit);
                for i in lo..hi {
                    out.push(Stmt::Assign(var, Expr::Const(i)));
                    out.extend(body.iter().cloned());
                }
                out.push(Stmt::Assign(var, Expr::Const(hi)));
            }
            Stmt::For {
                var,
                from,
                to,
                mut body,
            } => {
                unroll_body(&mut body, limit);
                out.push(Stmt::For {
                    var,
                    from,
                    to,
                    body,
                });
            }
            Stmt::While { cond, mut body } => {
                unroll_body(&mut body, limit);
                out.push(Stmt::While { cond, body });
            }
            Stmt::If {
                cond,
                mut then_body,
                mut else_body,
            } => {
                unroll_body(&mut then_body, limit);
                unroll_body(&mut else_body, limit);
                out.push(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                });
            }
            other => out.push(other),
        }
    }
    *body = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;

    #[test]
    fn folding_collapses_constants() {
        let mut e = add(c(2), mul(c(3), c(4)));
        fold_expr(&mut e);
        assert_eq!(e, Expr::Const(14));
        let mut e = add(v(0), c(0));
        fold_expr(&mut e);
        assert_eq!(e, Expr::Var(0));
    }

    #[test]
    fn folding_matches_riscv_wrapping() {
        let mut e = add(c(i32::MAX), c(1));
        fold_expr(&mut e);
        assert_eq!(e, Expr::Const(i32::MIN));
        let mut e = bin(BinOp::ShrU, c(-1), c(28));
        fold_expr(&mut e);
        assert_eq!(e, Expr::Const(0xf));
    }

    #[test]
    fn strength_reduction_rewrites_mul_by_pow2() {
        let mut e = mul(v(0), c(8));
        reduce_expr(&mut e);
        assert_eq!(e, shl(v(0), c(3)));
        // 10 = 8 + 2 → (x<<3) + (x<<1)
        let mut e = mul(v(0), c(10));
        reduce_expr(&mut e);
        assert_eq!(e, add(shl(v(0), c(3)), shl(v(0), c(1))));
        // Dense constants stay as calls.
        let mut e = mul(v(0), c(0x7777));
        reduce_expr(&mut e);
        assert!(matches!(e, Expr::Bin(BinOp::Mul, ..)));
    }

    #[test]
    fn strength_reduction_divides_by_pow2() {
        let mut e = bin(BinOp::DivU, v(1), c(16));
        reduce_expr(&mut e);
        assert_eq!(e, shr(v(1), c(4)));
        let mut e = bin(BinOp::RemU, v(1), c(16));
        reduce_expr(&mut e);
        assert_eq!(e, and(v(1), c(15)));
    }

    #[test]
    fn inlining_splices_small_functions() {
        let callee = Function {
            name: "double",
            params: 1,
            locals: 1,
            body: vec![Stmt::Return(Some(add(v(0), v(0))))],
        };
        let caller = Function {
            name: "main",
            params: 0,
            locals: 2,
            body: vec![set(0, c(21)), set(1, call("double", vec![v(0)])), ret(v(1))],
        };
        let p = Program {
            functions: vec![callee, caller],
            data: vec![],
        };
        let inlined = inline_functions(&p, 4);
        let main = inlined.function("main").unwrap();
        assert!(
            calls_of(main).is_empty(),
            "call not inlined: {:?}",
            main.body
        );
        assert!(main.locals > 2, "callee frame not added");
    }

    #[test]
    fn recursive_functions_are_not_inlined() {
        let rec = Function {
            name: "f",
            params: 1,
            locals: 1,
            body: vec![Stmt::Return(Some(call("f", vec![v(0)])))],
        };
        let caller = Function {
            name: "main",
            params: 0,
            locals: 1,
            body: vec![set(0, call("f", vec![c(1)]))],
        };
        let p = Program {
            functions: vec![rec, caller],
            data: vec![],
        };
        let inlined = inline_functions(&p, 100);
        assert_eq!(calls_of(inlined.function("main").unwrap()), vec!["f"]);
    }

    #[test]
    fn unrolling_expands_short_counted_loops() {
        let mut body = vec![for_(0, c(0), c(4), vec![set(1, add(v(1), v(0)))])];
        unroll_body(&mut body, 16);
        // 4 × (assign i, body) + final assign = 9 statements.
        assert_eq!(body.len(), 9);
        assert!(body.iter().all(|s| !matches!(s, Stmt::For { .. })));
        // Long loops survive.
        let mut body = vec![for_(0, c(0), c(100), vec![set(1, v(0))])];
        unroll_body(&mut body, 16);
        assert!(matches!(body[0], Stmt::For { .. }));
    }

    #[test]
    fn optimize_pipeline_is_level_dependent() {
        let f = Function {
            name: "main",
            params: 0,
            locals: 2,
            body: vec![set(0, mul(v(1), c(12)))],
        };
        let p = Program {
            functions: vec![f],
            data: vec![],
        };
        let o0 = optimize(&p, OptLevel::O0);
        assert!(matches!(
            o0.function("main").unwrap().body[0],
            Stmt::Assign(_, Expr::Bin(BinOp::Mul, ..))
        ));
        let o2 = optimize(&p, OptLevel::O2);
        assert!(matches!(
            o2.function("main").unwrap().body[0],
            Stmt::Assign(_, Expr::Bin(BinOp::Add, ..))
        ));
    }
}
