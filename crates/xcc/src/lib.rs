//! `xcc` — a small optimising C-like compiler targeting RV32E.
//!
//! The paper profiles applications compiled with
//! `riscv32-unknown-elf-gcc` at `-O0/-O1/-O2/-O3/-Oz` (§4.1, Figure 5); this
//! crate is the reproduction's compiler.  Programs are written in the
//! [`ast`] eDSL, optimised by the level-dependent pipeline in [`opt`], and
//! lowered to RV32E machine code by [`codegen`] with the runtime support
//! routines of [`builtins`] linked in on demand.
//!
//! The resulting [`CompiledProgram`] is a baremetal image: `_start` sets up
//! the stack, calls `main`, and parks in the self-loop halt the whole
//! repository uses as its termination convention.
//!
//! # Examples
//!
//! ```
//! use xcc::ast::build::*;
//! use xcc::ast::{Function, Program};
//! use xcc::{compile, OptLevel};
//!
//! let program = Program {
//!     functions: vec![Function {
//!         name: "main",
//!         params: 0,
//!         locals: 2,
//!         body: vec![set(0, c(6)), set(1, mul(v(0), c(7))), ret(v(1))],
//!     }],
//!     data: vec![],
//! };
//! let image = compile(&program, OptLevel::O2).unwrap();
//! let mut emu = riscv_emu::Emulator::new();
//! image.load(&mut emu);
//! emu.run(100_000).unwrap();
//! assert_eq!(emu.state().regs[10], 42); // a0 = main's return value
//! ```

pub mod ast;
pub mod builtins;
pub mod codegen;
pub mod opt;

pub use codegen::CodegenError;
pub use opt::OptLevel;

use ast::{DataObject, Program};
use riscv_isa::asm::{self, AsmError, Item};
use std::collections::{HashMap, HashSet};

/// Base address of the static data segment.
pub const DATA_BASE: u32 = 0x0001_0000;
/// Initial stack pointer (grows downward).
pub const STACK_TOP: u32 = 0x0004_0000;
/// Code base address (the reset PC).
pub const CODE_BASE: u32 = 0;

/// A compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The program has no `main`.
    NoMain,
    /// Code generation failed.
    Codegen(CodegenError),
    /// Assembly/label resolution failed.
    Asm(AsmError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::NoMain => write!(f, "program has no `main` function"),
            CompileError::Codegen(e) => write!(f, "codegen: {e}"),
            CompileError::Asm(e) => write!(f, "assembler: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<CodegenError> for CompileError {
    fn from(e: CodegenError) -> Self {
        CompileError::Codegen(e)
    }
}

impl From<AsmError> for CompileError {
    fn from(e: AsmError) -> Self {
        CompileError::Asm(e)
    }
}

/// A fully linked baremetal image.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The assembly stream (labels + instructions), for inspection and for
    /// the retargeting tool.
    pub items: Vec<Item>,
    /// Encoded code words, based at [`CODE_BASE`].
    pub words: Vec<u32>,
    /// Data segments: `(address, words)`.
    pub data_segments: Vec<(u32, Vec<u32>)>,
    /// Global symbol addresses (data objects).
    pub globals: HashMap<&'static str, u32>,
    /// The optimisation level used.
    pub opt_level: OptLevel,
}

impl CompiledProgram {
    /// Loads code and data into a reference emulator.
    pub fn load(&self, emu: &mut riscv_emu::Emulator) {
        emu.load_words(CODE_BASE, &self.words);
        for (base, words) in &self.data_segments {
            emu.load_words(*base, words);
        }
    }

    /// All loadable segments — the code image at [`CODE_BASE`] followed by
    /// the data segments — as `(base, words)` pairs, for loaders other
    /// than the reference emulator (e.g. one lane of a batched gate-level
    /// CPU).
    pub fn segments(&self) -> impl Iterator<Item = (u32, &[u32])> {
        std::iter::once((CODE_BASE, self.words.as_slice()))
            .chain(self.data_segments.iter().map(|(b, w)| (*b, w.as_slice())))
    }

    /// Code size in bytes (Figure 5's y-axis).
    pub fn code_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// The address of a global data object.
    pub fn global(&self, name: &str) -> Option<u32> {
        self.globals.get(name).copied()
    }
}

/// Lays out data objects from [`DATA_BASE`].
#[allow(clippy::type_complexity)]
fn layout_data(data: &[DataObject]) -> (HashMap<&'static str, u32>, Vec<(u32, Vec<u32>)>) {
    let mut globals = HashMap::new();
    let mut segments = Vec::new();
    let mut cursor = DATA_BASE;
    for obj in data {
        globals.insert(obj.name, cursor);
        segments.push((cursor, obj.words.clone()));
        cursor += (obj.words.len() as u32) * 4;
        // Keep objects word-aligned with a small guard gap.
        cursor = (cursor + 7) & !3;
    }
    (globals, segments)
}

/// Compiles `program` at `level` into a linked baremetal image.
///
/// # Errors
///
/// Returns [`CompileError`] for missing `main`, codegen failures (unknown
/// calls/globals, >4 args) or assembly failures (range overflows).
pub fn compile(program: &Program, level: OptLevel) -> Result<CompiledProgram, CompileError> {
    if program.function("main").is_none() {
        return Err(CompileError::NoMain);
    }
    let optimised = opt::optimize(program, level);
    let lowered = codegen::lower(&optimised);

    // Link in the builtins reachable from user code.
    let builtin_defs = builtins::all();
    let mut linked = lowered.clone();
    let mut known: HashSet<&'static str> = linked.functions.iter().map(|f| f.name).collect();
    loop {
        let mut called: HashSet<&'static str> = HashSet::new();
        for f in &linked.functions {
            called.extend(opt::calls_of(f));
        }
        let missing: Vec<&'static str> = called.difference(&known).copied().collect();
        if missing.is_empty() {
            break;
        }
        let mut progress = false;
        for (def, _) in &builtin_defs {
            if missing.contains(&def.name) {
                // Builtins go through the same codegen (they contain no
                // mul/div themselves, so no further lowering is needed).
                linked.functions.push(def.clone());
                known.insert(def.name);
                progress = true;
            }
        }
        if !progress {
            // A genuinely unknown function: let codegen report it.
            break;
        }
    }

    let (globals, data_segments) = layout_data(&linked.data);
    let function_names: Vec<&'static str> = linked.functions.iter().map(|f| f.name).collect();

    // _start: sp = STACK_TOP; call main; halt self-loop.
    let mut items = asm::parse(&format!(
        "_start:\n lui sp, {:#x}\n jal ra, main\n__halt: jal x0, __halt\n",
        STACK_TOP >> 12
    ))
    .expect("startup stub parses");
    // main first so short programs stay compact, then the rest.
    let mut funcs: Vec<&ast::Function> = linked.functions.iter().collect();
    funcs.sort_by_key(|f| (f.name != "main", f.name));
    for f in funcs {
        items.extend(codegen::emit_function(f, level, &globals, &function_names)?);
    }
    let words = asm::assemble(&items, CODE_BASE)?;
    Ok(CompiledProgram {
        items,
        words,
        data_segments,
        globals,
        opt_level: level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ast::build::*;
    use ast::{BinOp, Function, Program, Stmt};
    use riscv_emu::Emulator;

    fn run(program: &Program, level: OptLevel) -> (u32, CompiledProgram) {
        let image = compile(program, level).unwrap_or_else(|e| panic!("{level}: {e}"));
        let mut emu = Emulator::new();
        image.load(&mut emu);
        let summary = emu
            .run(5_000_000)
            .unwrap_or_else(|e| panic!("{level}: {e}"));
        assert_eq!(summary.halt, riscv_emu::HaltReason::SelfLoop, "{level}");
        (emu.state().regs[10], image)
    }

    fn main_only(locals: usize, body: Vec<Stmt>) -> Program {
        Program {
            functions: vec![Function {
                name: "main",
                params: 0,
                locals,
                body,
            }],
            data: vec![],
        }
    }

    #[test]
    fn arithmetic_is_correct_at_every_level() {
        // main: sum of i*i for i in 0..10, minus 100/7.
        let p = main_only(
            3,
            vec![
                set(0, c(0)),
                for_(1, c(0), c(10), vec![set(0, add(v(0), mul(v(1), v(1))))]),
                set(2, bin(BinOp::DivS, c(100), c(7))),
                ret(sub(v(0), v(2))),
            ],
        );
        for level in OptLevel::ALL {
            let (result, _) = run(&p, level);
            assert_eq!(result as i32, 285 - 14, "{level}");
        }
    }

    #[test]
    fn signed_division_and_remainder() {
        let cases: [(i32, i32); 6] = [(7, 2), (-7, 2), (7, -2), (-7, -2), (0, 5), (100, 9)];
        for (a, b) in cases {
            let p = main_only(
                2,
                vec![
                    set(0, bin(BinOp::DivS, c(a), c(b))),
                    set(1, bin(BinOp::RemS, c(a), c(b))),
                    ret(add(mul(v(0), c(1000)), bin(BinOp::And, v(1), c(0xff)))),
                ],
            );
            // O0 avoids folding so the libcalls actually execute.
            let (result, _) = run(&p, OptLevel::O0);
            let want = (a / b).wrapping_mul(1000) + ((a % b) & 0xff);
            assert_eq!(result as i32, want, "{a}/{b}");
        }
    }

    #[test]
    fn memory_widths_and_globals() {
        let p = Program {
            functions: vec![Function {
                name: "main",
                params: 0,
                locals: 2,
                body: vec![
                    sw(ga("buf"), c(-1)),
                    sb(add(ga("buf"), c(1)), c(0x42)),
                    sh(add(ga("buf"), c(4)), c(0x1234)),
                    set(0, lw(ga("buf"))),
                    set(1, lbu(add(ga("buf"), c(1)))),
                    ret(add(v(0), v(1))),
                ],
            }],
            data: vec![DataObject {
                name: "buf",
                words: vec![0, 0],
            }],
        };
        for level in OptLevel::ALL {
            let (result, image) = run(&p, level);
            assert_eq!(result, 0xffff_42ffu32.wrapping_add(0x42), "{level}");
            let mut emu = Emulator::new();
            image.load(&mut emu);
            emu.run(100_000).unwrap();
            let buf = image.global("buf").unwrap();
            assert_eq!(emu.memory().load_word(buf + 4) & 0xffff, 0x1234);
        }
    }

    #[test]
    fn calls_preserve_registers_across_levels() {
        let callee = Function {
            name: "clobber",
            params: 1,
            locals: 4,
            body: vec![
                set(1, c(111)),
                set(2, c(222)),
                set(3, add(v(1), v(2))),
                ret(add(v(0), v(3))),
            ],
        };
        let main = Function {
            name: "main",
            params: 0,
            locals: 4,
            body: vec![
                set(0, c(10)),
                set(1, c(20)),
                set(2, call("clobber", vec![c(1)])),
                // v0/v1 must survive the call.
                ret(add(add(v(0), v(1)), v(2))),
            ],
        };
        let p = Program {
            functions: vec![callee, main],
            data: vec![],
        };
        for level in OptLevel::ALL {
            let (result, _) = run(&p, level);
            assert_eq!(result, 10 + 20 + 334, "{level}");
        }
    }

    #[test]
    fn deep_expressions_spill_correctly() {
        // A right-deep chain forcing expression-stack traffic.
        let mut e = c(1);
        for i in 2..=9 {
            e = add(shl(c(i), c(1)), e);
        }
        let p = main_only(1, vec![set(0, e), ret(v(0))]);
        let want: i32 = (2..=9).map(|i| i * 2).sum::<i32>() + 1;
        let (result, _) = run(&p, OptLevel::O0);
        assert_eq!(result as i32, want);
    }

    #[test]
    fn opt_levels_change_code_size_in_the_expected_direction() {
        // A workload with inlinable helpers, constant loops and mults.
        let helper = Function {
            name: "step",
            params: 1,
            locals: 2,
            body: vec![set(1, mul(v(0), c(12))), ret(add(v(1), c(3)))],
        };
        let main = Function {
            name: "main",
            params: 0,
            locals: 3,
            body: vec![
                set(0, c(0)),
                for_(
                    1,
                    c(0),
                    c(8),
                    vec![set(0, add(v(0), call("step", vec![v(1)])))],
                ),
                ret(v(0)),
            ],
        };
        let p = Program {
            functions: vec![helper, main],
            data: vec![],
        };
        let sizes: HashMap<OptLevel, usize> = OptLevel::ALL
            .iter()
            .map(|&l| {
                let (result, image) = run(&p, l);
                let want: i32 = (0..8).map(|i| i * 12 + 3).sum();
                assert_eq!(result as i32, want, "{l}");
                (l, image.code_bytes())
            })
            .collect();
        assert!(sizes[&OptLevel::O0] > sizes[&OptLevel::O1], "{sizes:?}");
        assert!(
            sizes[&OptLevel::O3] > sizes[&OptLevel::O2],
            "unroll grows code: {sizes:?}"
        );
        assert!(sizes[&OptLevel::Oz] <= sizes[&OptLevel::O2], "{sizes:?}");
    }

    #[test]
    fn distinct_instruction_sets_stay_in_the_papers_band() {
        let p = main_only(
            2,
            vec![
                set(0, c(0)),
                for_(1, c(0), c(20), vec![set(0, add(v(0), mul(v(1), c(3))))]),
                ret(v(0)),
            ],
        );
        for level in OptLevel::ALL {
            let image = compile(&p, level).unwrap();
            let mut set: HashSet<riscv_isa::Mnemonic> = HashSet::new();
            for w in &image.words {
                if let Ok(i) = riscv_isa::Instruction::decode(*w) {
                    set.insert(i.mnemonic);
                }
            }
            let n = set.len();
            assert!((5..=32).contains(&n), "{level}: {n}");
        }
    }

    #[test]
    fn missing_main_is_reported() {
        let p = Program {
            functions: vec![],
            data: vec![],
        };
        assert_eq!(compile(&p, OptLevel::O1).unwrap_err(), CompileError::NoMain);
    }

    #[test]
    fn unknown_function_is_reported() {
        let p = main_only(1, vec![set(0, call("nope", vec![]))]);
        assert!(matches!(
            compile(&p, OptLevel::O1),
            Err(CompileError::Codegen(CodegenError::UnknownFunction(_)))
        ));
    }
}
