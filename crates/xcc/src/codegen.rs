//! RV32E code generation: lowering, register allocation and emission.
//!
//! Calling convention (ILP32E-flavoured, internal to `xcc`):
//!
//! * `x1`=ra, `x2`=sp; arguments in `a0–a3` (x10–x13), result in `a0`;
//! * `x5`/`x6` are expression scratch (caller-clobbered);
//! * the allocatable pool `{x7, x8, x9, x14, x15}` is callee-saved — every
//!   function saves exactly the pool registers it uses in its prologue, so
//!   values allocated to the pool survive calls;
//! * each frame reserves a fixed expression-spill area, the spilled-local
//!   area, the saved registers and `ra`.
//!
//! At `-O0` no local is register-allocated (every access goes through the
//! stack, as gcc does); at `-O1` and above a linear-scan allocator maps
//! locals onto the pool with loop-aware live intervals.

use crate::ast::{BinOp, Expr, Function, Program, Stmt, UnOp, VarId, Width};
use crate::opt::OptLevel;
use riscv_isa::asm::{AsmInstr, Item, Target};
use riscv_isa::{Instruction, Mnemonic, Reg};
use std::collections::HashMap;

const T0: Reg = Reg::X5;
const T1: Reg = Reg::X6;
const RA: Reg = Reg::X1;
const SP: Reg = Reg::X2;
const A0: Reg = Reg::X10;
const ARG_REGS: [Reg; 4] = [Reg::X10, Reg::X11, Reg::X12, Reg::X13];
const POOL: [Reg; 5] = [Reg::X7, Reg::X8, Reg::X9, Reg::X14, Reg::X15];
/// Expression-stack slots reserved in every frame.
const TEMP_SLOTS: i32 = 16;

/// A code-generation failure (all are programmer errors in the workload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// A called function does not exist in the program.
    UnknownFunction(String),
    /// More than four arguments are not supported.
    TooManyArgs(String),
    /// Expression nesting exceeded the reserved spill area.
    ExprTooDeep(String),
    /// A referenced global has no data object.
    UnknownGlobal(String),
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            CodegenError::TooManyArgs(n) => write!(f, "more than 4 args in call to `{n}`"),
            CodegenError::ExprTooDeep(n) => write!(f, "expression too deep in `{n}`"),
            CodegenError::UnknownGlobal(n) => write!(f, "unknown global `{n}`"),
        }
    }
}

impl std::error::Error for CodegenError {}

// ---------------------------------------------------------------------------
// Pre-codegen lowering.
// ---------------------------------------------------------------------------

/// Rewrites `Mul`/`Div`/`Rem` into libcalls (RV32E has no M extension) and
/// desugars `For` into `While`.
pub fn lower(program: &Program) -> Program {
    let mut p = program.clone();
    for f in &mut p.functions {
        f.body = lower_body(std::mem::take(&mut f.body));
    }
    p
}

fn lower_body(body: Vec<Stmt>) -> Vec<Stmt> {
    body.into_iter().map(lower_stmt).collect()
}

fn lower_stmt(s: Stmt) -> Stmt {
    match s {
        Stmt::Assign(v, e) => Stmt::Assign(v, lower_expr(e)),
        Stmt::Store { width, addr, value } => Stmt::Store {
            width,
            addr: lower_expr(addr),
            value: lower_expr(value),
        },
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => Stmt::If {
            cond: lower_expr(cond),
            then_body: lower_body(then_body),
            else_body: lower_body(else_body),
        },
        Stmt::While { cond, body } => Stmt::While {
            cond: lower_expr(cond),
            body: lower_body(body),
        },
        Stmt::For {
            var,
            from,
            to,
            body,
        } => {
            // for (v = from; v < to; v++) { body }
            let mut wbody = lower_body(body);
            wbody.push(Stmt::Assign(
                var,
                Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Var(var)),
                    Box::new(Expr::Const(1)),
                ),
            ));
            Stmt::While {
                cond: Expr::Bin(
                    BinOp::LtS,
                    Box::new(Expr::Var(var)),
                    Box::new(lower_expr(to.clone())),
                ),
                body: wbody,
            }
            .prefixed(Stmt::Assign(var, lower_expr(from)))
        }
        Stmt::Return(e) => Stmt::Return(e.map(lower_expr)),
        Stmt::Expr(e) => Stmt::Expr(lower_expr(e)),
    }
}

impl Stmt {
    /// Packs `first; self` into a no-op `If` so lowering can return a single
    /// statement.  (`if (1) { first; self }` — folded away in emission.)
    fn prefixed(self, first: Stmt) -> Stmt {
        Stmt::If {
            cond: Expr::Const(1),
            then_body: vec![first, self],
            else_body: vec![],
        }
    }
}

fn lower_expr(e: Expr) -> Expr {
    match e {
        Expr::Un(op, a) => Expr::Un(op, Box::new(lower_expr(*a))),
        Expr::Bin(op, a, b) => {
            let (a, b) = (lower_expr(*a), lower_expr(*b));
            let libcall = |name| Expr::Call(name, vec![a.clone(), b.clone()]);
            match op {
                BinOp::Mul => libcall("__mulsi3"),
                BinOp::DivS => libcall("__divsi3"),
                BinOp::DivU => libcall("__udivsi3"),
                BinOp::RemS => libcall("__modsi3"),
                BinOp::RemU => libcall("__umodsi3"),
                _ => Expr::Bin(op, Box::new(a), Box::new(b)),
            }
        }
        Expr::Load {
            width,
            signed,
            addr,
        } => Expr::Load {
            width,
            signed,
            addr: Box::new(lower_expr(*addr)),
        },
        Expr::Call(name, args) => Expr::Call(name, args.into_iter().map(lower_expr).collect()),
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Register allocation.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Intervals {
    /// var → (first, last) access positions.
    ranges: HashMap<VarId, (u32, u32)>,
    /// (start, end) spans of loops, with accesses inside.
    loops: Vec<(u32, u32)>,
    accesses: Vec<(VarId, u32)>,
    pos: u32,
}

impl Intervals {
    fn touch(&mut self, v: VarId) {
        let pos = self.pos;
        self.accesses.push((v, pos));
        let entry = self.ranges.entry(v).or_insert((pos, pos));
        entry.0 = entry.0.min(pos);
        entry.1 = entry.1.max(pos);
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Var(v) => self.touch(*v),
            Expr::Un(_, a) => self.expr(a),
            Expr::Bin(_, a, b) => {
                self.expr(a);
                self.expr(b);
            }
            Expr::Load { addr, .. } => self.expr(addr),
            Expr::Call(_, args) => args.iter().for_each(|a| self.expr(a)),
            _ => {}
        }
    }

    fn body(&mut self, body: &[Stmt]) {
        for s in body {
            self.pos += 1;
            match s {
                Stmt::Assign(v, e) => {
                    self.expr(e);
                    self.touch(*v);
                }
                Stmt::Store { addr, value, .. } => {
                    self.expr(addr);
                    self.expr(value);
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.expr(cond);
                    self.body(then_body);
                    self.body(else_body);
                }
                Stmt::While { cond, body } | Stmt::For { to: cond, body, .. } => {
                    let start = self.pos;
                    self.expr(cond);
                    if let Stmt::For { var, from, .. } = s {
                        self.expr(from);
                        self.touch(*var);
                    }
                    self.body(body);
                    self.loops.push((start, self.pos));
                }
                Stmt::Return(Some(e)) | Stmt::Expr(e) => self.expr(e),
                Stmt::Return(None) => {}
            }
        }
    }

    fn finish(mut self) -> HashMap<VarId, (u32, u32)> {
        // Any variable touched inside a loop is live across the whole loop.
        for &(s, e) in &self.loops {
            for &(v, pos) in &self.accesses {
                if pos >= s && pos <= e {
                    let r = self.ranges.get_mut(&v).expect("touched var has range");
                    r.0 = r.0.min(s);
                    r.1 = r.1.max(e);
                }
            }
        }
        self.ranges
    }
}

/// Where a local lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Home {
    Reg(Reg),
    /// Index into the spilled-local area.
    Slot(usize),
}

fn allocate(f: &Function, level: OptLevel) -> (HashMap<VarId, Home>, usize) {
    let mut homes = HashMap::new();
    if !level.allocate_registers() {
        for v in 0..f.locals {
            homes.insert(v, Home::Slot(v));
        }
        return (homes, f.locals);
    }
    let mut iv = Intervals::default();
    // Parameters are live from position 0.
    for p in 0..f.params {
        iv.touch(p);
    }
    iv.pos = 1;
    iv.body(&f.body);
    let ranges = iv.finish();
    let mut intervals: Vec<(VarId, u32, u32)> =
        ranges.iter().map(|(&v, &(s, e))| (v, s, e)).collect();
    intervals.sort_by_key(|&(v, s, _)| (s, v));

    let mut active: Vec<(u32, Reg, VarId)> = Vec::new(); // (end, reg, var)
    let mut free: Vec<Reg> = POOL.to_vec();
    let mut slots = 0usize;
    for (v, s, e) in intervals {
        active.retain(|&(end, reg, _)| {
            if end < s {
                free.push(reg);
                false
            } else {
                true
            }
        });
        if let Some(reg) = free.pop() {
            homes.insert(v, Home::Reg(reg));
            active.push((e, reg, v));
        } else {
            // Spill the interval that ends last (classic linear scan).
            active.sort_by_key(|&(end, _, _)| end);
            let &(last_end, reg, victim) = active.last().expect("pool exhausted ⇒ active");
            if last_end > e {
                active.pop();
                homes.insert(victim, Home::Slot(slots));
                slots += 1;
                homes.insert(v, Home::Reg(reg));
                active.push((e, reg, v));
            } else {
                homes.insert(v, Home::Slot(slots));
                slots += 1;
            }
        }
    }
    // Locals never accessed get slots (harmless).
    for v in 0..f.locals {
        homes.entry(v).or_insert_with(|| {
            let h = Home::Slot(slots);
            slots += 1;
            h
        });
    }
    (homes, slots)
}

// ---------------------------------------------------------------------------
// Emission.
// ---------------------------------------------------------------------------

/// An evaluated expression's location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    Imm(i32),
    /// A stable register (variable home or x0) — never clobbered by
    /// expression evaluation.
    Stable(Reg),
    /// The scratch accumulator `T0`.
    Scratch,
}

struct FnEmitter<'a> {
    items: Vec<Item>,
    homes: HashMap<VarId, Home>,
    fname: &'static str,
    labels: u32,
    /// Expression-stack depth (compile-time).
    esp: i32,
    max_esp: i32,
    globals: &'a HashMap<&'static str, u32>,
    functions: &'a [&'static str],
    spill_base: i32,
    epilogue: String,
}

impl<'a> FnEmitter<'a> {
    fn label(&mut self, hint: &str) -> String {
        self.labels += 1;
        format!(".L{}_{}_{}", self.fname, hint, self.labels)
    }

    fn emit(&mut self, i: Instruction) {
        self.items.push(Item::instr(i));
    }

    fn emit_to_label(&mut self, m: Mnemonic, rd: Reg, rs1: Reg, rs2: Reg, label: &str) {
        self.items.push(Item::Instr(AsmInstr {
            mnemonic: m,
            rd,
            rs1,
            rs2,
            target: Target::Label(label.to_string()),
        }));
    }

    fn jump(&mut self, label: &str) {
        self.emit_to_label(Mnemonic::Jal, Reg::X0, Reg::X0, Reg::X0, label);
    }

    /// Loads a 32-bit constant into `rd`.
    fn li(&mut self, rd: Reg, value: i32) {
        if (-2048..=2047).contains(&value) {
            self.emit(Instruction::i(Mnemonic::Addi, rd, Reg::X0, value));
        } else {
            let lo = (value << 20) >> 20; // low 12, sign-extended
            let hi = value.wrapping_sub(lo);
            self.emit(Instruction::u(Mnemonic::Lui, rd, hi));
            if lo != 0 {
                self.emit(Instruction::i(Mnemonic::Addi, rd, rd, lo));
            }
        }
    }

    fn mv(&mut self, rd: Reg, rs: Reg) {
        if rd != rs {
            self.emit(Instruction::i(Mnemonic::Addi, rd, rs, 0));
        }
    }

    /// Materialises a value into a register, using `scratch` if needed.
    fn reg_of(&mut self, v: Val, scratch: Reg) -> Reg {
        match v {
            Val::Imm(0) => Reg::X0,
            Val::Imm(k) => {
                self.li(scratch, k);
                scratch
            }
            Val::Stable(r) => r,
            Val::Scratch => T0,
        }
    }

    fn push_t0(&mut self) -> Result<(), CodegenError> {
        if self.esp >= TEMP_SLOTS {
            return Err(CodegenError::ExprTooDeep(self.fname.to_string()));
        }
        self.emit(Instruction::s(Mnemonic::Sw, SP, T0, self.esp * 4));
        self.esp += 1;
        self.max_esp = self.max_esp.max(self.esp);
        Ok(())
    }

    fn pop(&mut self, rd: Reg) {
        self.esp -= 1;
        let esp = self.esp;
        self.emit(Instruction::i(Mnemonic::Lw, rd, SP, esp * 4));
    }

    fn slot_offset(&self, slot: usize) -> i32 {
        self.spill_base + (slot as i32) * 4
    }

    /// True when evaluating `e` emits no instructions that clobber T0/T1.
    fn is_leaf(&self, e: &Expr) -> bool {
        match e {
            Expr::Const(_) | Expr::GlobalAddr(_) => true,
            Expr::Var(v) => matches!(self.homes[v], Home::Reg(_)),
            _ => false,
        }
    }

    /// True when evaluating `e` *as an address* leaves T0 untouched
    /// (leaf bases and `leaf + small-const` addressing forms).
    fn is_leaf_addr(&self, e: &Expr) -> bool {
        let leaf_base = |e: &Expr| matches!(e, Expr::GlobalAddr(_)) || self.is_leaf(e);
        if leaf_base(e) {
            return true;
        }
        if let Expr::Bin(BinOp::Add, a, b) = e {
            if let Expr::Const(k) = **b {
                return (-2048..=2047).contains(&k) && leaf_base(a);
            }
            if let Expr::Const(k) = **a {
                return (-2048..=2047).contains(&k) && leaf_base(b);
            }
        }
        false
    }

    // -- expression evaluation ---------------------------------------------

    fn eval(&mut self, e: &Expr) -> Result<Val, CodegenError> {
        match e {
            Expr::Const(k) => Ok(Val::Imm(*k)),
            Expr::GlobalAddr(name) => {
                let addr = *self
                    .globals
                    .get(name)
                    .ok_or_else(|| CodegenError::UnknownGlobal(name.to_string()))?;
                Ok(Val::Imm(addr as i32))
            }
            Expr::Var(v) => match self.homes[v] {
                Home::Reg(r) => Ok(Val::Stable(r)),
                Home::Slot(s) => {
                    let off = self.slot_offset(s);
                    self.emit(Instruction::i(Mnemonic::Lw, T0, SP, off));
                    Ok(Val::Scratch)
                }
            },
            Expr::Un(op, a) => {
                let va = self.eval(a)?;
                let r = self.reg_of(va, T0);
                match op {
                    UnOp::Neg => self.emit(Instruction::r(Mnemonic::Sub, T0, Reg::X0, r)),
                    UnOp::BitNot => self.emit(Instruction::i(Mnemonic::Xori, T0, r, -1)),
                    UnOp::Not => self.emit(Instruction::i(Mnemonic::Sltiu, T0, r, 1)),
                }
                Ok(Val::Scratch)
            }
            Expr::Bin(op, a, b) => self.eval_bin(*op, a, b, T0).map(|_| Val::Scratch),
            Expr::Load {
                width,
                signed,
                addr,
            } => {
                let (base, off) = self.eval_address(addr, T0)?;
                let m = match (width, signed) {
                    (Width::Byte, true) => Mnemonic::Lb,
                    (Width::Byte, false) => Mnemonic::Lbu,
                    (Width::Half, true) => Mnemonic::Lh,
                    (Width::Half, false) => Mnemonic::Lhu,
                    (Width::Word, _) => Mnemonic::Lw,
                };
                self.emit(Instruction::i(m, T0, base, off));
                Ok(Val::Scratch)
            }
            Expr::Call(name, args) => {
                self.eval_call(name, args)?;
                self.mv(T0, A0);
                Ok(Val::Scratch)
            }
        }
    }

    /// Splits an address expression into (base register, 12-bit offset),
    /// materialising constant bases into `scratch`.
    fn eval_address(&mut self, addr: &Expr, scratch: Reg) -> Result<(Reg, i32), CodegenError> {
        // Peel `base + const` into an addressing-mode offset.
        if let Expr::Bin(BinOp::Add, a, b) = addr {
            if let Expr::Const(k) = **b {
                if (-2048..=2047).contains(&k) {
                    let va = self.eval(a)?;
                    return Ok((self.reg_of(va, scratch), k));
                }
            }
            if let Expr::Const(k) = **a {
                if (-2048..=2047).contains(&k) {
                    let vb = self.eval(b)?;
                    return Ok((self.reg_of(vb, scratch), k));
                }
            }
        }
        let v = self.eval(addr)?;
        Ok((self.reg_of(v, scratch), 0))
    }

    /// Emits `dest = a op b` for non-libcall operators.
    fn eval_bin(&mut self, op: BinOp, a: &Expr, b: &Expr, dest: Reg) -> Result<(), CodegenError> {
        debug_assert!(
            !matches!(
                op,
                BinOp::Mul | BinOp::DivS | BinOp::DivU | BinOp::RemS | BinOp::RemU
            ),
            "mul/div must be lowered to libcalls before codegen"
        );
        // Immediate forms.
        let imm_mnemonic = |op: BinOp| -> Option<Mnemonic> {
            Some(match op {
                BinOp::Add => Mnemonic::Addi,
                BinOp::And => Mnemonic::Andi,
                BinOp::Or => Mnemonic::Ori,
                BinOp::Xor => Mnemonic::Xori,
                BinOp::LtS => Mnemonic::Slti,
                BinOp::LtU => Mnemonic::Sltiu,
                BinOp::Shl => Mnemonic::Slli,
                BinOp::ShrU => Mnemonic::Srli,
                BinOp::ShrS => Mnemonic::Srai,
                _ => return None,
            })
        };
        if let Expr::Const(k) = *b {
            let imm_ok = match op {
                BinOp::Shl | BinOp::ShrU | BinOp::ShrS => (0..32).contains(&k),
                BinOp::Sub => (-2047..=2048).contains(&k),
                _ => (-2048..=2047).contains(&k),
            };
            if imm_ok {
                if op == BinOp::Sub {
                    let va = self.eval(a)?;
                    let r = self.reg_of(va, T0);
                    self.emit(Instruction::i(Mnemonic::Addi, dest, r, -k));
                    return Ok(());
                }
                if let Some(m) = imm_mnemonic(op) {
                    let va = self.eval(a)?;
                    let r = self.reg_of(va, T0);
                    self.emit(Instruction::i(m, dest, r, k));
                    return Ok(());
                }
                // Comparison immediates.
                match op {
                    BinOp::Eq => {
                        let va = self.eval(a)?;
                        let r = self.reg_of(va, T0);
                        if k == 0 {
                            self.emit(Instruction::i(Mnemonic::Sltiu, dest, r, 1));
                        } else {
                            self.emit(Instruction::i(Mnemonic::Xori, dest, r, k));
                            self.emit(Instruction::i(Mnemonic::Sltiu, dest, dest, 1));
                        }
                        return Ok(());
                    }
                    BinOp::Ne => {
                        let va = self.eval(a)?;
                        let r = self.reg_of(va, T0);
                        if k == 0 {
                            self.emit(Instruction::r(Mnemonic::Sltu, dest, Reg::X0, r));
                        } else {
                            self.emit(Instruction::i(Mnemonic::Xori, dest, r, k));
                            self.emit(Instruction::r(Mnemonic::Sltu, dest, Reg::X0, dest));
                        }
                        return Ok(());
                    }
                    _ => {}
                }
            }
        }
        // General register-register path.
        let va = self.eval(a)?;
        let va = if va == Val::Scratch && !self.is_leaf(b) {
            self.push_t0()?;
            None // stacked
        } else {
            Some(va)
        };
        let vb = self.eval(b)?;
        let (r1, r2) = match va {
            Some(v) => {
                let r2 = self.reg_of(vb, T1);
                // If the right operand landed in T0, materialise the left
                // one into T1 so it is not clobbered.
                let r1 = self.reg_of(v, if r2 == T0 { T1 } else { T0 });
                (r1, r2)
            }
            None => {
                // Left operand is on the expression stack.
                let r2 = match vb {
                    Val::Scratch => {
                        self.mv(T1, T0);
                        T1
                    }
                    other => self.reg_of(other, T1),
                };
                self.pop(T0);
                (T0, r2)
            }
        };
        let rr = |m: Mnemonic| Instruction::r(m, dest, r1, r2);
        match op {
            BinOp::Add => self.emit(rr(Mnemonic::Add)),
            BinOp::Sub => self.emit(rr(Mnemonic::Sub)),
            BinOp::And => self.emit(rr(Mnemonic::And)),
            BinOp::Or => self.emit(rr(Mnemonic::Or)),
            BinOp::Xor => self.emit(rr(Mnemonic::Xor)),
            BinOp::Shl => self.emit(rr(Mnemonic::Sll)),
            BinOp::ShrU => self.emit(rr(Mnemonic::Srl)),
            BinOp::ShrS => self.emit(rr(Mnemonic::Sra)),
            BinOp::LtS => self.emit(rr(Mnemonic::Slt)),
            BinOp::LtU => self.emit(rr(Mnemonic::Sltu)),
            BinOp::GeS => {
                self.emit(rr(Mnemonic::Slt));
                self.emit(Instruction::i(Mnemonic::Xori, dest, dest, 1));
            }
            BinOp::GeU => {
                self.emit(rr(Mnemonic::Sltu));
                self.emit(Instruction::i(Mnemonic::Xori, dest, dest, 1));
            }
            BinOp::GtS => self.emit(Instruction::r(Mnemonic::Slt, dest, r2, r1)),
            BinOp::LeS => {
                self.emit(Instruction::r(Mnemonic::Slt, dest, r2, r1));
                self.emit(Instruction::i(Mnemonic::Xori, dest, dest, 1));
            }
            BinOp::Eq => {
                self.emit(rr(Mnemonic::Xor));
                self.emit(Instruction::i(Mnemonic::Sltiu, dest, dest, 1));
            }
            BinOp::Ne => {
                self.emit(rr(Mnemonic::Xor));
                self.emit(Instruction::r(Mnemonic::Sltu, dest, Reg::X0, dest));
            }
            BinOp::Mul | BinOp::DivS | BinOp::DivU | BinOp::RemS | BinOp::RemU => {
                unreachable!("lowered before codegen")
            }
        }
        Ok(())
    }

    fn eval_call(&mut self, name: &str, args: &[Expr]) -> Result<(), CodegenError> {
        if !self.functions.contains(&name) {
            return Err(CodegenError::UnknownFunction(name.to_string()));
        }
        if args.len() > ARG_REGS.len() {
            return Err(CodegenError::TooManyArgs(name.to_string()));
        }
        // Evaluate each argument and park it on the expression stack, then
        // pop into the argument registers in reverse.
        for a in args {
            let v = self.eval(a)?;
            let r = self.reg_of(v, T0);
            self.mv(T0, r);
            self.push_t0()?;
        }
        for (i, _) in args.iter().enumerate().rev() {
            self.pop(ARG_REGS[i]);
        }
        self.emit_to_label(Mnemonic::Jal, RA, Reg::X0, Reg::X0, name);
        Ok(())
    }

    /// Evaluates `e` directly into `dest` (a stable register).
    fn eval_into(&mut self, dest: Reg, e: &Expr) -> Result<(), CodegenError> {
        match e {
            Expr::Const(k) => {
                self.li(dest, *k);
                Ok(())
            }
            Expr::Bin(op, a, b)
                if !matches!(
                    op,
                    BinOp::Mul | BinOp::DivS | BinOp::DivU | BinOp::RemS | BinOp::RemU
                ) =>
            {
                self.eval_bin(*op, a, b, dest)
            }
            Expr::Call(name, args) => {
                self.eval_call(name, args)?;
                self.mv(dest, A0);
                Ok(())
            }
            other => {
                let v = self.eval(other)?;
                match v {
                    Val::Imm(k) => self.li(dest, k),
                    Val::Stable(r) => self.mv(dest, r),
                    Val::Scratch => self.mv(dest, T0),
                }
                Ok(())
            }
        }
    }

    // -- statements ----------------------------------------------------------

    fn stmt(&mut self, s: &Stmt) -> Result<(), CodegenError> {
        match s {
            Stmt::Assign(v, e) => match self.homes[v] {
                Home::Reg(r) => self.eval_into(r, e),
                Home::Slot(slot) => {
                    let val = self.eval(e)?;
                    let r = self.reg_of(val, T0);
                    let off = self.slot_offset(slot);
                    self.emit(Instruction::s(Mnemonic::Sw, SP, r, off));
                    Ok(())
                }
            },
            Stmt::Store { width, addr, value } => {
                let m = match width {
                    Width::Byte => Mnemonic::Sb,
                    Width::Half => Mnemonic::Sh,
                    Width::Word => Mnemonic::Sw,
                };
                let vv = self.eval(value)?;
                let vv = if vv == Val::Scratch && !self.is_leaf_addr(addr) {
                    self.push_t0()?;
                    None
                } else {
                    Some(vv)
                };
                // When the value sits un-pushed in T0, the (leaf) address
                // must materialise through T1 to avoid clobbering it.
                let addr_scratch = if vv == Some(Val::Scratch) { T1 } else { T0 };
                let (base, off) = self.eval_address(addr, addr_scratch)?;
                let data = match vv {
                    Some(v) => {
                        let data_scratch = if base == T1 { T0 } else { T1 };
                        self.reg_of(v, data_scratch)
                    }
                    None => {
                        self.pop(T1);
                        T1
                    }
                };
                self.emit(Instruction::s(m, base, data, off));
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if matches!(cond, Expr::Const(k) if *k != 0) && else_body.is_empty() {
                    // Lowering artifact: `if (1) { .. }` — emit body directly.
                    for s in then_body {
                        self.stmt(s)?;
                    }
                    return Ok(());
                }
                let else_l = self.label("else");
                let end_l = self.label("endif");
                self.branch_if_false(cond, &else_l)?;
                for s in then_body {
                    self.stmt(s)?;
                }
                if else_body.is_empty() {
                    self.items.push(Item::label(else_l));
                } else {
                    self.jump(&end_l);
                    self.items.push(Item::label(else_l));
                    for s in else_body {
                        self.stmt(s)?;
                    }
                    self.items.push(Item::label(end_l));
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let head = self.label("while");
                let end = self.label("wend");
                self.items.push(Item::label(head.clone()));
                self.branch_if_false(cond, &end)?;
                for s in body {
                    self.stmt(s)?;
                }
                self.jump(&head);
                self.items.push(Item::label(end));
                Ok(())
            }
            Stmt::For { .. } => unreachable!("For is desugared by lower()"),
            Stmt::Return(e) => {
                if let Some(e) = e {
                    self.eval_into(A0, e)?;
                }
                let epilogue = self.epilogue.clone();
                self.jump(&epilogue);
                Ok(())
            }
            Stmt::Expr(e) => {
                let _ = self.eval(e)?;
                Ok(())
            }
        }
    }

    /// Emits a conditional branch to `label` taken when `cond` is false,
    /// fusing comparisons into RISC-V branch instructions.
    fn branch_if_false(&mut self, cond: &Expr, label: &str) -> Result<(), CodegenError> {
        if let Expr::Bin(op, a, b) = cond {
            // Branch on the *negation* of the comparison.
            let fused = match op {
                BinOp::Eq => Some((Mnemonic::Bne, false)),
                BinOp::Ne => Some((Mnemonic::Beq, false)),
                BinOp::LtS => Some((Mnemonic::Bge, false)),
                BinOp::LtU => Some((Mnemonic::Bgeu, false)),
                BinOp::GeS => Some((Mnemonic::Blt, false)),
                BinOp::GeU => Some((Mnemonic::Bltu, false)),
                // a <= b  ⇔  !(b < a): branch when b < a.
                BinOp::LeS => Some((Mnemonic::Blt, true)),
                // a > b  ⇔  b < a: branch (false) when b >= a.
                BinOp::GtS => Some((Mnemonic::Bge, true)),
                _ => None,
            };
            if let Some((m, swapped)) = fused {
                let va = self.eval(a)?;
                let va = if va == Val::Scratch && !self.is_leaf(b) {
                    self.push_t0()?;
                    None
                } else {
                    Some(va)
                };
                let vb = self.eval(b)?;
                let (r1, r2) = match va {
                    Some(v) => {
                        let r2 = self.reg_of(vb, T1);
                        (self.reg_of(v, if r2 == T0 { T1 } else { T0 }), r2)
                    }
                    None => {
                        let r2 = match vb {
                            Val::Scratch => {
                                self.mv(T1, T0);
                                T1
                            }
                            other => self.reg_of(other, T1),
                        };
                        self.pop(T0);
                        (T0, r2)
                    }
                };
                let (r1, r2) = if swapped { (r2, r1) } else { (r1, r2) };
                self.emit_to_label(m, Reg::X0, r1, r2, label);
                return Ok(());
            }
        }
        let v = self.eval(cond)?;
        match v {
            Val::Imm(0) => self.jump(label),
            Val::Imm(_) => {} // always true: fall through
            other => {
                let r = self.reg_of(other, T0);
                self.emit_to_label(Mnemonic::Beq, Reg::X0, r, Reg::X0, label);
            }
        }
        Ok(())
    }
}

/// Emits one function, returning its items.
pub fn emit_function(
    f: &Function,
    level: OptLevel,
    globals: &HashMap<&'static str, u32>,
    functions: &[&'static str],
) -> Result<Vec<Item>, CodegenError> {
    let (homes, spill_slots) = allocate(f, level);
    // Pool registers actually used.
    let mut used_pool: Vec<Reg> = homes
        .values()
        .filter_map(|h| match h {
            Home::Reg(r) => Some(*r),
            Home::Slot(_) => None,
        })
        .collect();
    used_pool.sort();
    used_pool.dedup();

    let saved = used_pool.len() as i32 + 1; // + ra
    let frame = (TEMP_SLOTS + spill_slots as i32 + saved) * 4;
    let spill_base = TEMP_SLOTS * 4;
    let epilogue = format!(".L{}_ret", f.name);

    let mut em = FnEmitter {
        items: vec![Item::label(f.name)],
        homes,
        fname: f.name,
        labels: 0,
        esp: 0,
        max_esp: 0,
        globals,
        functions,
        spill_base,
        epilogue: epilogue.clone(),
    };

    // Prologue.
    em.emit(Instruction::i(Mnemonic::Addi, SP, SP, -frame));
    em.emit(Instruction::s(Mnemonic::Sw, SP, RA, frame - 4));
    for (i, r) in used_pool.iter().enumerate() {
        em.emit(Instruction::s(
            Mnemonic::Sw,
            SP,
            *r,
            frame - 8 - 4 * i as i32,
        ));
    }
    // Park parameters in their homes.
    assert!(
        f.params <= ARG_REGS.len(),
        "function `{}` has {} params; at most {} are supported",
        f.name,
        f.params,
        ARG_REGS.len()
    );
    for (p, &arg) in ARG_REGS.iter().enumerate().take(f.params) {
        let home = em.homes[&p];
        match home {
            Home::Reg(r) => em.mv(r, arg),
            Home::Slot(s) => {
                let off = em.slot_offset(s);
                em.emit(Instruction::s(Mnemonic::Sw, SP, arg, off));
            }
        }
    }

    for s in &f.body {
        em.stmt(s)?;
    }

    // Epilogue.
    em.items.push(Item::label(epilogue));
    for (i, r) in used_pool.iter().enumerate() {
        em.emit(Instruction::i(
            Mnemonic::Lw,
            *r,
            SP,
            frame - 8 - 4 * i as i32,
        ));
    }
    em.emit(Instruction::i(Mnemonic::Lw, RA, SP, frame - 4));
    em.emit(Instruction::i(Mnemonic::Addi, SP, SP, frame));
    em.emit(Instruction::i(Mnemonic::Jalr, Reg::X0, RA, 0));
    debug_assert_eq!(em.esp, 0, "{}: unbalanced expression stack", f.name);
    Ok(em.items)
}
