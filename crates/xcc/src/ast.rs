//! The `xcc` source language: a small, C-like AST built as a Rust eDSL.
//!
//! The paper compiles C benchmarks with `riscv32-unknown-elf-gcc`; this
//! repository's workloads are written directly against this AST and compiled
//! by `xcc`, whose optimisation levels mirror gcc's `-O0/-O1/-O2/-O3/-Oz`
//! in the ways that matter for instruction-subset profiling (register
//! allocation, constant folding, strength reduction, inlining, unrolling).
//!
//! All values are 32-bit; signedness is a property of the operator, as in
//! RISC-V itself.  Memory is byte-addressed with explicit load/store widths
//! so workloads exercise the full `lb/lh/lw/lbu/lhu/sb/sh/sw` family.

/// A local variable slot within a function (parameters come first).
pub type VarId = usize;

/// Load/store access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    /// 8-bit access (`lb`/`lbu`/`sb`).
    Byte,
    /// 16-bit access (`lh`/`lhu`/`sh`).
    Half,
    /// 32-bit access (`lw`/`sw`).
    Word,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    BitNot,
    /// Logical not (`x == 0`).
    Not,
}

/// Binary operators; comparison results are 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (lowered to `__mulsi3` — RV32E has no M
    /// extension).
    Mul,
    /// Signed division (lowered to `__divsi3`).
    DivS,
    /// Unsigned division (lowered to `__udivsi3`, or a shift for powers of
    /// two at `-O2`).
    DivU,
    /// Signed remainder (lowered to `__modsi3`).
    RemS,
    /// Unsigned remainder (lowered to `__umodsi3`, or a mask at `-O2`).
    RemU,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical left shift.
    Shl,
    /// Logical right shift.
    ShrU,
    /// Arithmetic right shift.
    ShrS,
    /// Equality (0/1).
    Eq,
    /// Inequality (0/1).
    Ne,
    /// Signed less-than.
    LtS,
    /// Unsigned less-than.
    LtU,
    /// Signed greater-or-equal.
    GeS,
    /// Unsigned greater-or-equal.
    GeU,
    /// Signed less-or-equal.
    LeS,
    /// Signed greater-than.
    GtS,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const(i32),
    /// Read a local variable.
    Var(VarId),
    /// Address of a named global data object.
    GlobalAddr(&'static str),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Memory load from a byte address.
    Load {
        /// Access width.
        width: Width,
        /// Sign-extend sub-word loads.
        signed: bool,
        /// Byte address.
        addr: Box<Expr>,
    },
    /// Direct call returning a value (void calls use [`Stmt::Expr`]).
    Call(&'static str, Vec<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var = expr;`
    Assign(VarId, Expr),
    /// `*(width*)addr = value;`
    Store {
        /// Access width.
        width: Width,
        /// Byte address.
        addr: Expr,
        /// Value (low bits stored for sub-word widths).
        value: Expr,
    },
    /// `if (cond) { .. } else { .. }` — `cond != 0` is true.
    If {
        /// Condition expression.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (may be empty).
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { .. }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Counted loop `for (var = from; var < to; var++)`, fully analysable
    /// for `-O3` unrolling.
    For {
        /// Induction variable.
        var: VarId,
        /// Inclusive start.
        from: Expr,
        /// Exclusive end.
        to: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Return from the function.
    Return(Option<Expr>),
    /// Evaluate for side effects (calls).
    Expr(Expr),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Symbol name.
    pub name: &'static str,
    /// Number of parameters (the first `params` [`VarId`]s).
    pub params: usize,
    /// Total local slots, parameters included.
    pub locals: usize,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A static data object placed in the data segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataObject {
    /// Symbol name referenced by [`Expr::GlobalAddr`].
    pub name: &'static str,
    /// Initial contents (words); zero-fill by sizing with zeros.
    pub words: Vec<u32>,
}

/// A whole program: functions plus static data, with `main` as entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// All functions; must include `main`.
    pub functions: Vec<Function>,
    /// Static data objects.
    pub data: Vec<DataObject>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// Expression construction helpers used by the workloads.
pub mod build {
    use super::*;

    /// Integer literal.
    pub fn c(v: i32) -> Expr {
        Expr::Const(v)
    }

    /// Variable reference.
    pub fn v(id: VarId) -> Expr {
        Expr::Var(id)
    }

    /// Address of a global.
    pub fn ga(name: &'static str) -> Expr {
        Expr::GlobalAddr(name)
    }

    /// Binary operation.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Add, a, b)
    }

    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Sub, a, b)
    }

    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Mul, a, b)
    }

    /// `a & b`.
    pub fn and(a: Expr, b: Expr) -> Expr {
        bin(BinOp::And, a, b)
    }

    /// `a | b`.
    pub fn or(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Or, a, b)
    }

    /// `a ^ b`.
    pub fn xor(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Xor, a, b)
    }

    /// `a << b`.
    pub fn shl(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Shl, a, b)
    }

    /// `a >> b` (logical).
    pub fn shr(a: Expr, b: Expr) -> Expr {
        bin(BinOp::ShrU, a, b)
    }

    /// `a >> b` (arithmetic).
    pub fn sar(a: Expr, b: Expr) -> Expr {
        bin(BinOp::ShrS, a, b)
    }

    /// `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Eq, a, b)
    }

    /// `a != b`.
    pub fn ne(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Ne, a, b)
    }

    /// Signed `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        bin(BinOp::LtS, a, b)
    }

    /// Unsigned `a < b`.
    pub fn ltu(a: Expr, b: Expr) -> Expr {
        bin(BinOp::LtU, a, b)
    }

    /// Signed `a >= b`.
    pub fn ge(a: Expr, b: Expr) -> Expr {
        bin(BinOp::GeS, a, b)
    }

    /// Word load.
    pub fn lw(addr: Expr) -> Expr {
        Expr::Load {
            width: Width::Word,
            signed: false,
            addr: Box::new(addr),
        }
    }

    /// Unsigned byte load.
    pub fn lbu(addr: Expr) -> Expr {
        Expr::Load {
            width: Width::Byte,
            signed: false,
            addr: Box::new(addr),
        }
    }

    /// Signed byte load.
    pub fn lb(addr: Expr) -> Expr {
        Expr::Load {
            width: Width::Byte,
            signed: true,
            addr: Box::new(addr),
        }
    }

    /// Unsigned halfword load.
    pub fn lhu(addr: Expr) -> Expr {
        Expr::Load {
            width: Width::Half,
            signed: false,
            addr: Box::new(addr),
        }
    }

    /// Signed halfword load.
    pub fn lh(addr: Expr) -> Expr {
        Expr::Load {
            width: Width::Half,
            signed: true,
            addr: Box::new(addr),
        }
    }

    /// Call expression.
    pub fn call(name: &'static str, args: Vec<Expr>) -> Expr {
        Expr::Call(name, args)
    }

    /// Word store statement.
    pub fn sw(addr: Expr, value: Expr) -> Stmt {
        Stmt::Store {
            width: Width::Word,
            addr,
            value,
        }
    }

    /// Byte store statement.
    pub fn sb(addr: Expr, value: Expr) -> Stmt {
        Stmt::Store {
            width: Width::Byte,
            addr,
            value,
        }
    }

    /// Halfword store statement.
    pub fn sh(addr: Expr, value: Expr) -> Stmt {
        Stmt::Store {
            width: Width::Half,
            addr,
            value,
        }
    }

    /// Assignment statement.
    pub fn set(var: VarId, e: Expr) -> Stmt {
        Stmt::Assign(var, e)
    }

    /// If-then statement.
    pub fn if_(cond: Expr, then_body: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_body,
            else_body: vec![],
        }
    }

    /// If-then-else statement.
    pub fn if_else(cond: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_body,
            else_body,
        }
    }

    /// While statement.
    pub fn while_(cond: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::While { cond, body }
    }

    /// Counted-for statement.
    pub fn for_(var: VarId, from: Expr, to: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            var,
            from,
            to,
            body,
        }
    }

    /// Return statement.
    pub fn ret(e: Expr) -> Stmt {
        Stmt::Return(Some(e))
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    #[test]
    fn builders_construct_expected_shapes() {
        let e = add(v(0), c(1));
        assert_eq!(
            e,
            Expr::Bin(BinOp::Add, Box::new(Expr::Var(0)), Box::new(Expr::Const(1)))
        );
        let s = sw(ga("buf"), v(2));
        assert!(matches!(
            s,
            Stmt::Store {
                width: Width::Word,
                ..
            }
        ));
    }

    #[test]
    fn program_function_lookup() {
        let p = Program {
            functions: vec![Function {
                name: "main",
                params: 0,
                locals: 1,
                body: vec![],
            }],
            data: vec![],
        };
        assert!(p.function("main").is_some());
        assert!(p.function("missing").is_none());
    }
}
