//! Compiler runtime support functions (the libgcc stand-ins).
//!
//! RV32E has no M extension, so `*`, `/` and `%` lower to calls of the
//! shift-and-add/subtract routines below — exactly what gcc emits as
//! `__mulsi3`, `__divsi3`, `__udivsi3`, `__modsi3` and `__umodsi3` when
//! libgcc is linked for rv32e.  They are written in the `xcc` AST itself
//! and compiled with the same pipeline as user code.

use crate::ast::build::*;
use crate::ast::{BinOp, Expr, Function, Stmt};

/// `__mulsi3(a, b)` — 32-bit wrapping multiply (works for both signs).
pub fn mulsi3() -> Function {
    // v0=a v1=b v2=res
    Function {
        name: "__mulsi3",
        params: 2,
        locals: 3,
        body: vec![
            set(2, c(0)),
            while_(
                ne(v(1), c(0)),
                vec![
                    if_(and(v(1), c(1)), vec![set(2, add(v(2), v(0)))]),
                    set(0, shl(v(0), c(1))),
                    set(1, shr(v(1), c(1))),
                ],
            ),
            ret(v(2)),
        ],
    }
}

/// `__udivsi3(n, d)` — unsigned division; returns 0 for division by zero.
pub fn udivsi3() -> Function {
    // v0=n v1=d v2=q v3=r v4=i v5=bit
    Function {
        name: "__udivsi3",
        params: 2,
        locals: 6,
        body: vec![
            set(2, c(0)),
            set(3, c(0)),
            if_(eq(v(1), c(0)), vec![ret(c(0))]),
            set(4, c(31)),
            while_(
                bin(BinOp::GeS, v(4), c(0)),
                vec![
                    set(5, and(shr(v(0), v(4)), c(1))),
                    set(3, or(shl(v(3), c(1)), v(5))),
                    if_(
                        bin(BinOp::GeU, v(3), v(1)),
                        vec![set(3, sub(v(3), v(1))), set(2, or(v(2), shl(c(1), v(4))))],
                    ),
                    set(4, sub(v(4), c(1))),
                ],
            ),
            ret(v(2)),
        ],
    }
}

/// `__umodsi3(n, d)` — unsigned remainder; returns `n` for division by zero.
pub fn umodsi3() -> Function {
    Function {
        name: "__umodsi3",
        params: 2,
        locals: 6,
        body: vec![
            set(3, c(0)),
            if_(eq(v(1), c(0)), vec![ret(v(0))]),
            set(4, c(31)),
            while_(
                bin(BinOp::GeS, v(4), c(0)),
                vec![
                    set(5, and(shr(v(0), v(4)), c(1))),
                    set(3, or(shl(v(3), c(1)), v(5))),
                    if_(bin(BinOp::GeU, v(3), v(1)), vec![set(3, sub(v(3), v(1)))]),
                    set(4, sub(v(4), c(1))),
                ],
            ),
            ret(v(3)),
        ],
    }
}

/// `__divsi3(a, b)` — signed division truncating toward zero.
pub fn divsi3() -> Function {
    // v0=a v1=b v2=sign v3=q
    Function {
        name: "__divsi3",
        params: 2,
        locals: 4,
        body: vec![
            set(2, c(0)),
            if_(
                lt(v(0), c(0)),
                vec![set(0, sub(c(0), v(0))), set(2, xor(v(2), c(1)))],
            ),
            if_(
                lt(v(1), c(0)),
                vec![set(1, sub(c(0), v(1))), set(2, xor(v(2), c(1)))],
            ),
            set(3, call("__udivsi3", vec![v(0), v(1)])),
            if_(ne(v(2), c(0)), vec![set(3, sub(c(0), v(3)))]),
            ret(v(3)),
        ],
    }
}

/// `__modsi3(a, b)` — signed remainder with the sign of the dividend.
pub fn modsi3() -> Function {
    Function {
        name: "__modsi3",
        params: 2,
        locals: 4,
        body: vec![
            set(2, c(0)),
            if_(lt(v(0), c(0)), vec![set(0, sub(c(0), v(0))), set(2, c(1))]),
            if_(lt(v(1), c(0)), vec![set(1, sub(c(0), v(1)))]),
            set(3, call("__umodsi3", vec![v(0), v(1)])),
            if_(ne(v(2), c(0)), vec![set(3, sub(c(0), v(3)))]),
            ret(v(3)),
        ],
    }
}

/// All builtins by name, with the builtins *they* call.
pub fn all() -> Vec<(Function, &'static [&'static str])> {
    vec![
        (mulsi3(), &[]),
        (udivsi3(), &[]),
        (umodsi3(), &[]),
        (divsi3(), &["__udivsi3"]),
        (modsi3(), &["__umodsi3"]),
    ]
}

/// Expression helper re-exported for workloads that want a raw remainder.
pub fn rem_u(a: Expr, b: Expr) -> Expr {
    bin(BinOp::RemU, a, b)
}

/// Expression helper for unsigned division.
pub fn div_u(a: Expr, b: Expr) -> Expr {
    bin(BinOp::DivU, a, b)
}

/// Statement helper: no-op placeholder (useful in generated tables).
pub fn nop() -> Stmt {
    Stmt::Expr(Expr::Const(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_shapes() {
        for (f, _) in all() {
            assert!(f.params == 2);
            assert!(f.locals >= f.params);
            assert!(!f.body.is_empty());
            assert!(f.name.starts_with("__"));
        }
    }
}
