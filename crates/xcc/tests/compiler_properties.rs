//! Property-based compiler testing: randomly generated programs must
//! behave identically at every optimisation level (classic differential
//! compiler testing, à la Csmith but for the `xcc` eDSL).

use proptest::prelude::*;
use riscv_emu::Emulator;
use xcc::ast::build::*;
use xcc::ast::{BinOp, Expr, Function, Program, Stmt};
use xcc::OptLevel;

/// Operators safe for random generation (division by a random value is
/// guarded separately).
const SAFE_OPS: [BinOp; 12] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::ShrU,
    BinOp::ShrS,
    BinOp::LtS,
    BinOp::LtU,
    BinOp::Eq,
];

/// A small random expression over locals 0..4 with bounded depth.
fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        prop_oneof![(-4096i32..4096).prop_map(c), (0usize..4).prop_map(v),].boxed()
    } else {
        let sub = arb_expr(depth - 1);
        prop_oneof![
            (-4096i32..4096).prop_map(c),
            (0usize..4).prop_map(v),
            (0usize..SAFE_OPS.len(), sub.clone(), sub.clone()).prop_map(|(op, a, b)| {
                // Mask shift amounts so behaviour is defined.
                let op = SAFE_OPS[op];
                match op {
                    BinOp::Shl | BinOp::ShrU | BinOp::ShrS => bin(op, a, and(b, c(31))),
                    _ => bin(op, a, b),
                }
            }),
        ]
        .boxed()
    }
}

/// A random statement list: assignments, guarded ifs, and bounded loops.
fn arb_body() -> impl Strategy<Value = Vec<Stmt>> {
    proptest::collection::vec(
        prop_oneof![
            ((0usize..4), arb_expr(2)).prop_map(|(var, e)| set(var, e)),
            (arb_expr(1), (0usize..4), arb_expr(1))
                .prop_map(|(cond, var, e)| { if_(cond, vec![set(var, e)]) }),
            // Counted loop with a small constant bound: always terminates.
            ((0i32..6), (0usize..4), arb_expr(1)).prop_map(|(n, var, e)| {
                // Loop variable is local 4 (never used by arb_expr).
                for_(4, c(0), c(n), vec![set(var, e)])
            }),
        ],
        1..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Differential testing: every optimisation level computes the same
    /// result for random programs.
    #[test]
    fn all_levels_agree_on_random_programs(body in arb_body()) {
        let mut full = vec![set(0, c(3)), set(1, c(-7)), set(2, c(100)), set(3, c(0))];
        full.extend(body);
        full.push(ret(add(add(v(0), v(1)), add(v(2), v(3)))));
        let program = Program {
            functions: vec![Function { name: "main", params: 0, locals: 5, body: full }],
            data: vec![],
        };
        let mut results = Vec::new();
        for level in OptLevel::ALL {
            let image = xcc::compile(&program, level).unwrap();
            let mut emu = Emulator::new();
            image.load(&mut emu);
            let summary = emu.run(3_000_000).unwrap();
            prop_assert_eq!(summary.halt, riscv_emu::HaltReason::SelfLoop, "{}", level);
            results.push(emu.state().regs[10]);
        }
        for (i, r) in results.iter().enumerate() {
            prop_assert_eq!(*r, results[0], "level {} diverged", OptLevel::ALL[i]);
        }
    }

    /// The compiler never emits instructions outside RV32E, and every
    /// emitted word decodes.
    #[test]
    fn emitted_code_always_decodes(body in arb_body()) {
        let program = Program {
            functions: vec![Function { name: "main", params: 0, locals: 5, body }],
            data: vec![],
        };
        for level in OptLevel::ALL {
            let image = xcc::compile(&program, level).unwrap();
            for w in &image.words {
                prop_assert!(riscv_isa::Instruction::decode(*w).is_ok(), "{:#010x}", w);
            }
        }
    }

    /// Division and remainder by non-zero constants agree with Rust across
    /// the full signed range.
    #[test]
    fn division_agrees_with_rust(a in any::<i32>(), b in any::<i32>()) {
        prop_assume!(b != 0);
        // i32::MIN / -1 overflows in Rust; RISC-V defines it as MIN.
        prop_assume!(!(a == i32::MIN && b == -1));
        let program = Program {
            functions: vec![Function {
                name: "main",
                params: 0,
                locals: 2,
                body: vec![
                    set(0, bin(BinOp::DivS, c(a), c(b))),
                    set(1, bin(BinOp::RemS, c(a), c(b))),
                    ret(xor(v(0), shl(v(1), c(1)))),
                ],
            }],
            data: vec![],
        };
        // -O0: the libcalls actually execute.
        let image = xcc::compile(&program, OptLevel::O0).unwrap();
        let mut emu = Emulator::new();
        image.load(&mut emu);
        emu.run(2_000_000).unwrap();
        let want = (a / b) ^ ((a % b) << 1);
        prop_assert_eq!(emu.state().regs[10], want as u32);
    }
}
