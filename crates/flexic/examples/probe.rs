use flexic::{sta, tech::Tech, DesignMetrics};
use hwlib::HwLibrary;
use netlist::stats::GateCounts;
use rissp::{profile::InstructionSubset, Rissp};

fn main() {
    let lib = HwLibrary::build_full();
    let t = Tech::flexic_gen();
    for (name, subset) in [
        ("RV32E", InstructionSubset::full_isa()),
        (
            "xgboost-ish",
            InstructionSubset::from_names([
                "addi", "andi", "bge", "blt", "jal", "jalr", "lui", "lw", "srli", "sw", "xor",
                "xori",
            ]),
        ),
        (
            "armpit-ish",
            InstructionSubset::from_names([
                "add", "addi", "andi", "beq", "bge", "blt", "bne", "jal", "jalr", "lbu", "lui",
                "lw", "slli", "sltiu", "sw",
            ]),
        ),
    ] {
        let r = Rissp::generate(&lib, &subset);
        let counts = GateCounts::of(&r.core);
        let cp = sta::critical_path_ns(&r.core, &t);
        println!(
            "{name}: gates={} nand2eq={:.0} dff={} ff%={:.1} cp={:.0}ns fmax={:.0}kHz",
            counts.logic_gates(),
            counts.nand2_equivalent(),
            counts.dff,
            100.0 * counts.ff_area_fraction(),
            cp,
            1e6 / cp
        );
        let m = DesignMetrics::of_netlist(name, &r.core, &t, 0.08);
        let s = flexic::sweep::frequency_sweep(&m);
        println!(
            "   fmax_grid={} avg_area={:.0} avg_power={:.3}mW epi={:.3}nJ",
            s.fmax_khz,
            s.avg_area_nand2,
            s.avg_power_mw,
            flexic::sweep::energy_per_instruction_nj(&m, &s)
        );
    }
}
