//! FlexIC process characterisation (0.6 µm IGZO metal-oxide TFT).
//!
//! The constants below are calibrated so that the reproduction's processors
//! land in the operating bands the paper reports for its process: RISSP
//! maximum frequencies of 1.5–1.85 MHz, milliwatt-class total power at 3 V,
//! and flip-flops consuming roughly ten times the power of a NAND2 gate
//! (§4.2.3).  Relative behaviour between designs comes from the real
//! netlists; only the absolute scale is calibrated.

use netlist::Gate;

/// Per-gate-class electrical characterisation.
#[derive(Debug, Clone, PartialEq)]
pub struct Tech {
    /// Process name (reports print it).
    pub name: &'static str,
    /// Propagation delay of an inverter, ns.
    pub delay_not_ns: f64,
    /// Delay of NAND2/NOR2, ns.
    pub delay_nand_ns: f64,
    /// Delay of AND2/OR2, ns.
    pub delay_and_ns: f64,
    /// Delay of XOR2/XNOR2, ns.
    pub delay_xor_ns: f64,
    /// Delay of a 2:1 mux, ns.
    pub delay_mux_ns: f64,
    /// Flip-flop clock-to-Q plus setup, ns (charged once per cycle).
    pub dff_overhead_ns: f64,
    /// Fixed per-cycle overhead for the combinational instruction fetch and
    /// register-file access outside the synthesised netlist, ns.
    pub external_ns: f64,
    /// Leakage per NAND2-equivalent of logic, nanowatts.
    pub leak_nw_per_nand2: f64,
    /// Switching energy per logic-gate toggle, picojoules.
    pub switch_pj: f64,
    /// Switching energy per flip-flop clock tick (clock + internal nodes),
    /// picojoules — the 10× NAND2 factor of §4.2.3 lives here.
    pub dff_clock_pj: f64,
}

impl Tech {
    /// The calibrated FlexIC IGZO process model used throughout the
    /// reproduction.
    pub fn flexic_gen() -> Tech {
        Tech {
            name: "flexic-igzo-0.6um",
            delay_not_ns: 1.7,
            delay_nand_ns: 2.4,
            delay_and_ns: 3.1,
            delay_xor_ns: 5.4,
            delay_mux_ns: 5.4,
            dff_overhead_ns: 24.0,
            external_ns: 60.0,
            leak_nw_per_nand2: 20.0,
            switch_pj: 1.2,
            dff_clock_pj: 12.0,
        }
    }

    /// Propagation delay of one gate, ns (zero for constants/inputs; DFF
    /// outputs launch at zero — their overhead is charged per cycle).
    pub fn delay_of(&self, gate: &Gate) -> f64 {
        match gate {
            Gate::Const(_) | Gate::Input(_) | Gate::Dff { .. } => 0.0,
            Gate::Not(_) => self.delay_not_ns,
            Gate::Nand(..) | Gate::Nor(..) => self.delay_nand_ns,
            Gate::And(..) | Gate::Or(..) => self.delay_and_ns,
            Gate::Xor(..) | Gate::Xnor(..) => self.delay_xor_ns,
            Gate::Mux { .. } => self.delay_mux_ns,
        }
    }
}

impl Default for Tech {
    fn default() -> Self {
        Tech::flexic_gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ff_power_is_roughly_ten_nand2_toggles() {
        let t = Tech::flexic_gen();
        let ratio = t.dff_clock_pj / t.switch_pj;
        assert!(
            (8.0..=12.0).contains(&ratio),
            "FF/NAND2 power ratio {ratio}"
        );
    }

    #[test]
    fn delays_order_sensibly() {
        let t = Tech::flexic_gen();
        assert!(t.delay_not_ns < t.delay_nand_ns);
        assert!(t.delay_nand_ns < t.delay_xor_ns);
        assert!(t.delay_of(&Gate::Const(false)) == 0.0);
    }
}
