//! Static timing analysis over gate-level netlists.
//!
//! The longest combinational path determines the maximum clock frequency:
//! for a single-cycle RISSP the loop is PC-flop → fetch → decode/execute →
//! PC-flop, with the external IMEM/RF access charged as a fixed adder
//! ([`crate::tech::Tech::external_ns`]).

use crate::tech::Tech;
use netlist::{Gate, Netlist};

/// Arrival time of every net, ns (index = net id).
pub fn arrival_times(nl: &Netlist, t: &Tech) -> Vec<f64> {
    let mut at = vec![0.0f64; nl.len()];
    for (id, gate) in nl.gates().iter().enumerate() {
        let input_at = gate.fanin().map(|f| at[f as usize]).fold(0.0f64, f64::max);
        at[id] = input_at + t.delay_of(gate);
    }
    at
}

/// Longest register-to-register (or input-to-output) combinational path in
/// nanoseconds, including the flip-flop and external-access overheads.
pub fn critical_path_ns(nl: &Netlist, t: &Tech) -> f64 {
    let at = arrival_times(nl, t);
    let mut worst = 0.0f64;
    // Paths end at DFF data inputs …
    for gate in nl.gates().iter() {
        if let Gate::Dff { d, .. } = gate {
            worst = worst.max(at[*d as usize]);
        }
    }
    // … and at output ports (which feed the external RF/memory).
    for port in nl.outputs() {
        for &net in &port.nets {
            worst = worst.max(at[net as usize]);
        }
    }
    worst + t.dff_overhead_ns + t.external_ns
}

/// Maximum clock frequency in kHz for the given critical path.
pub fn fmax_khz(critical_path_ns: f64) -> f64 {
    1e6 / critical_path_ns
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{bus, Builder};

    fn ripple_adder(width: usize) -> Netlist {
        let mut b = Builder::new();
        let x = b.input_bus("x", width);
        let y = b.input_bus("y", width);
        let (s, _) = bus::add(&mut b, &x, &y);
        b.output_bus("s", &s);
        b.finish()
    }

    #[test]
    fn wider_adders_have_longer_paths() {
        let t = Tech::flexic_gen();
        let cp8 = critical_path_ns(&ripple_adder(8), &t);
        let cp32 = critical_path_ns(&ripple_adder(32), &t);
        assert!(cp32 > cp8 + 10.0, "8-bit {cp8} vs 32-bit {cp32}");
    }

    #[test]
    fn dff_feedback_paths_are_timed() {
        // counter: ff -> ++ -> ff
        let mut b = Builder::new();
        let ffs: Vec<_> = (0..8).map(|_| b.dff(false)).collect();
        let one = bus::constant(&mut b, 1, 8);
        let (next, _) = bus::add(&mut b, &ffs, &one);
        for (ff, d) in ffs.iter().zip(&next) {
            b.connect_dff(*ff, *d);
        }
        b.output_bus("q", &ffs);
        let nl = b.finish();
        let t = Tech::flexic_gen();
        let cp = critical_path_ns(&nl, &t);
        assert!(cp > t.dff_overhead_ns + t.external_ns, "{cp}");
    }

    #[test]
    fn fmax_inverts_period() {
        assert!((fmax_khz(500.0) - 2000.0).abs() < 1e-9);
    }
}
