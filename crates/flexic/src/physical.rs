//! Physical implementation: floorplan, clock tree and routing (§4.3).
//!
//! The paper takes the three extreme-edge RISSPs and both baselines through
//! full FlexIC layouts at 300 kHz.  The decisive effect it reports is that
//! clock-tree insertion penalises FF-heavy designs: Serv is *smaller* than
//! RISSP-xgboost at synthesis but *larger* after physical implementation
//! because 60 % of its cells are flip-flops needing clock buffers.  This
//! module models exactly that mechanism: cell area + clock-buffer insertion
//! (one buffer per fan-out group of FFs) + routing/utilisation overhead.

use crate::power::total_power_mw;
use crate::tech::Tech;
use crate::DesignMetrics;

/// The fixed implementation frequency of §4.3.
pub const IMPL_FREQ_KHZ: f64 = 300.0;

/// Cell area of one NAND2-equivalent in the 0.6 µm FlexIC process, µm².
pub const UM2_PER_NAND2: f64 = 1350.0;
/// Placement utilisation (cell area / core area).
pub const UTILISATION: f64 = 0.62;
/// Flip-flops driven per clock buffer.
pub const FFS_PER_CLOCK_BUFFER: usize = 6;
/// Clock buffer size, NAND2-equivalents.
pub const CLOCK_BUFFER_NAND2: f64 = 5.0;
/// Layout-area factor applied to flip-flop cells: clock routing keep-out,
/// buffer staging and hold fixing inflate each FF's placed footprint well
/// beyond its synthesis area — the mechanism by which the FF-heavy Serv,
/// smaller than RISSP-xgboost at synthesis, comes out *larger* after
/// physical implementation (Figure 10).
pub const FF_LAYOUT_FACTOR: f64 = 2.0;
/// Per-clock-buffer switching energy, pJ per cycle.
pub const CLOCK_BUFFER_PJ: f64 = 7.0;
/// I/O ring + power ring overhead added to each die edge, µm.
pub const RING_UM: f64 = 180.0;

/// A completed layout (one panel of Figure 10).
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutResult {
    /// Design name.
    pub name: String,
    /// Die width, µm.
    pub die_w_um: f64,
    /// Die height, µm.
    pub die_h_um: f64,
    /// Die area, mm².
    pub die_area_mm2: f64,
    /// Percentage of placed cell area that is flip-flops.
    pub ff_pct: f64,
    /// Inserted clock buffers.
    pub clock_buffers: usize,
    /// Total power at 300 kHz, mW (including the clock tree).
    pub power_mw: f64,
    /// Number of distinct instructions (annotated in Figure 10 for RISSPs;
    /// `None` for Serv).
    pub distinct_instructions: Option<usize>,
}

/// Runs floorplan + CTS + routing estimation for one design.
pub fn implement(
    m: &DesignMetrics,
    t: &Tech,
    distinct_instructions: Option<usize>,
) -> LayoutResult {
    // Clock tree: buffers inserted per group of FFs, recursively (a tree,
    // so ~n/(k-1) total for fan-out k; one level is enough at these sizes).
    let ffs = m.counts.dff;
    let clock_buffers = ffs.div_ceil(FFS_PER_CLOCK_BUFFER);
    let cts_nand2 = clock_buffers as f64 * CLOCK_BUFFER_NAND2;

    let ff_synth_area = m.counts.dff as f64 * netlist::stats::nand2_weight::DFF;
    let logic_area = m.nand2_area() - ff_synth_area;
    let cell_nand2 = logic_area + ff_synth_area * FF_LAYOUT_FACTOR + cts_nand2;
    let cell_um2 = cell_nand2 * UM2_PER_NAND2;
    let core_um2 = cell_um2 / UTILISATION;
    // Square floorplan plus the ring.
    let core_edge = core_um2.sqrt();
    let die_w = core_edge + 2.0 * RING_UM;
    let die_h = core_edge + 2.0 * RING_UM;
    let die_area_mm2 = die_w * die_h / 1e6;

    // Figure 10 annotates the fraction of *placed* area that is flip-flops.
    let ff_pct = 100.0 * (ff_synth_area * FF_LAYOUT_FACTOR) / cell_nand2;

    // Power at 300 kHz: logic + FF clocking + the inserted clock buffers.
    let base = total_power_mw(m, t, IMPL_FREQ_KHZ, 1.0);
    let cts_mw = clock_buffers as f64 * CLOCK_BUFFER_PJ * 1e-12 * (IMPL_FREQ_KHZ * 1e3) * 1e3;
    LayoutResult {
        name: m.name.clone(),
        die_w_um: die_w,
        die_h_um: die_h,
        die_area_mm2,
        ff_pct,
        clock_buffers,
        power_mw: base + cts_mw,
        distinct_instructions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::stats::GateCounts;

    fn design(name: &str, nand: usize, dff: usize) -> DesignMetrics {
        DesignMetrics {
            name: name.into(),
            counts: GateCounts {
                nand,
                dff,
                ..GateCounts::default()
            },
            critical_path_ns: 500.0,
            activity: 0.08,
            cpi: 1.0,
        }
    }

    #[test]
    fn ff_heavy_designs_pay_a_clock_tree_penalty() {
        // Equal synthesis area; the FF-heavy one must come out larger.
        let ff_equiv = (1000.0 / netlist::stats::nand2_weight::DFF) as usize;
        let logic = implement(&design("logic", 1000, 8), &Tech::flexic_gen(), None);
        let ffy = implement(&design("ffy", 0, ff_equiv + 8), &Tech::flexic_gen(), None);
        assert!(ffy.clock_buffers > logic.clock_buffers);
        assert!(ffy.die_area_mm2 > logic.die_area_mm2);
        assert!(ffy.power_mw > logic.power_mw);
        assert!(ffy.ff_pct > 50.0 && logic.ff_pct < 20.0);
    }

    #[test]
    fn die_dimensions_are_consistent() {
        let l = implement(&design("d", 2500, 32), &Tech::flexic_gen(), Some(20));
        assert!((l.die_w_um * l.die_h_um / 1e6 - l.die_area_mm2).abs() < 1e-9);
        assert!(l.die_area_mm2 > 1.0, "{}", l.die_area_mm2);
        assert_eq!(l.distinct_instructions, Some(20));
    }
}
