//! The paper's frequency sweep (§4.2.1) and sweep-averaged metrics.
//!
//! "Starting at 100 kHz with significant positive slack, the frequency was
//! incremented by 25 kHz steps until reaching 3 MHz … The highest frequency
//! with positive slack is identified as the maximum."  Area and power
//! (Figures 7 and 8) are averaged "across the range of frequencies with
//! positive slack".

use crate::power::average_power_mw;
use crate::DesignMetrics;

/// Sweep bounds from §4.2.1.
pub const SWEEP_START_KHZ: u32 = 100;
/// Step size between synthesis runs.
pub const SWEEP_STEP_KHZ: u32 = 25;
/// Upper bound where the paper's designs became over-constrained.
pub const SWEEP_END_KHZ: u32 = 3000;

/// One synthesis design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Target clock frequency, kHz.
    pub freq_khz: u32,
    /// Timing slack at this frequency, ns.
    pub slack_ns: f64,
    /// NAND2-equivalent area after synthesis effort at this target.
    pub area_nand2: f64,
    /// Total (static + dynamic) power, mW.
    pub power_mw: f64,
}

/// Sweep summary for one design (one bar of Figures 6–8).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Design name.
    pub name: String,
    /// All positive-slack points.
    pub points: Vec<DesignPoint>,
    /// Highest positive-slack frequency, kHz (Figure 6).
    pub fmax_khz: u32,
    /// Area averaged across positive-slack points (Figure 7).
    pub avg_area_nand2: f64,
    /// Power averaged across positive-slack points (Figure 8).
    pub avg_power_mw: f64,
}

/// Synthesis-effort area model: approaching the timing wall, the optimiser
/// upsizes and duplicates critical-path logic.  `x` is the fraction of the
/// period consumed by the critical path.
fn effort_area(base_area: f64, x: f64) -> f64 {
    base_area * (1.0 + 0.28 * x.powi(4))
}

/// Runs the §4.2.1 sweep for one design.
pub fn frequency_sweep(m: &DesignMetrics) -> SweepResult {
    let mut points = Vec::new();
    let base_area = m.nand2_area();
    let mut f = SWEEP_START_KHZ;
    while f <= SWEEP_END_KHZ {
        let period_ns = 1e6 / f as f64;
        let slack = period_ns - m.critical_path_ns;
        if slack > 0.0 {
            let x = m.critical_path_ns / period_ns;
            let area = effort_area(base_area, x);
            let power = average_power_mw(m, f as f64, area / base_area);
            points.push(DesignPoint {
                freq_khz: f,
                slack_ns: slack,
                area_nand2: area,
                power_mw: power,
            });
        }
        f += SWEEP_STEP_KHZ;
    }
    let fmax_khz = points.last().map(|p| p.freq_khz).unwrap_or(0);
    let n = points.len().max(1) as f64;
    let avg_area_nand2 = points.iter().map(|p| p.area_nand2).sum::<f64>() / n;
    let avg_power_mw = points.iter().map(|p| p.power_mw).sum::<f64>() / n;
    SweepResult {
        name: m.name.clone(),
        points,
        fmax_khz,
        avg_area_nand2,
        avg_power_mw,
    }
}

/// Energy per instruction in nanojoules at the maximum frequency
/// (Figure 9): `EPI = P(fmax) / fmax × CPI`.
pub fn energy_per_instruction_nj(m: &DesignMetrics, sweep: &SweepResult) -> f64 {
    let Some(at_fmax) = sweep.points.last() else {
        return f64::NAN;
    };
    let fmax_hz = at_fmax.freq_khz as f64 * 1e3;
    let power_w = at_fmax.power_mw * 1e-3;
    power_w / fmax_hz * m.cpi * 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::stats::GateCounts;

    fn fake_metrics(cp_ns: f64, dffs: usize) -> DesignMetrics {
        let counts = GateCounts {
            nand: 1000,
            dff: dffs,
            ..GateCounts::default()
        };
        DesignMetrics {
            name: "fake".into(),
            counts,
            critical_path_ns: cp_ns,
            activity: 0.08,
            cpi: 1.0,
        }
    }

    #[test]
    fn fmax_matches_critical_path() {
        // 600 ns path → fmax just below 1667 kHz, on the 25 kHz grid.
        let m = fake_metrics(600.0, 32);
        let s = frequency_sweep(&m);
        assert!(s.fmax_khz <= 1666, "{}", s.fmax_khz);
        assert!(s.fmax_khz >= 1640, "{}", s.fmax_khz);
        // Grid alignment.
        assert_eq!((s.fmax_khz - SWEEP_START_KHZ) % SWEEP_STEP_KHZ, 0);
    }

    #[test]
    fn area_grows_towards_the_timing_wall() {
        let m = fake_metrics(600.0, 32);
        let s = frequency_sweep(&m);
        let first = s.points.first().unwrap().area_nand2;
        let last = s.points.last().unwrap().area_nand2;
        assert!(last > first);
        assert!(s.avg_area_nand2 > first && s.avg_area_nand2 < last);
    }

    #[test]
    fn shorter_paths_reach_higher_frequencies() {
        let fast = frequency_sweep(&fake_metrics(480.0, 32));
        let slow = frequency_sweep(&fake_metrics(660.0, 32));
        assert!(fast.fmax_khz > slow.fmax_khz);
    }

    #[test]
    fn epi_scales_with_cpi() {
        let m1 = fake_metrics(600.0, 32);
        let mut m32 = fake_metrics(600.0, 32);
        m32.cpi = 32.0;
        let s1 = frequency_sweep(&m1);
        let s32 = frequency_sweep(&m32);
        let e1 = energy_per_instruction_nj(&m1, &s1);
        let e32 = energy_per_instruction_nj(&m32, &s32);
        assert!((e32 / e1 - 32.0).abs() < 1e-9);
    }
}
