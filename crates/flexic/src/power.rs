//! Activity-based power estimation (§4.2.3).
//!
//! Total power = leakage (∝ area) + combinational switching (α · E · f per
//! gate) + flip-flop clocking (every FF's clock network toggles each cycle,
//! costing ~10 NAND2 toggles — this is why the FF-heavy Serv consumes more
//! power than the larger RISSP-RV32E in Figure 8).

use crate::tech::Tech;
use crate::DesignMetrics;
use netlist::sim::SimBackend;

/// Total power in mW for a design at frequency `freq_khz`, with `area_scale`
/// accounting for synthesis upsizing near the timing wall.
pub fn total_power_mw(m: &DesignMetrics, t: &Tech, freq_khz: f64, area_scale: f64) -> f64 {
    let f_hz = freq_khz * 1e3;
    let logic_nand2 = m.nand2_area() * area_scale;
    let static_mw = logic_nand2 * t.leak_nw_per_nand2 * 1e-6;
    // Combinational switching: α toggles/gate/cycle over the logic gates.
    let logic_gates = (m.counts.logic_gates() - m.counts.dff) as f64 * area_scale;
    let dyn_logic_mw = logic_gates * m.activity * t.switch_pj * 1e-12 * f_hz * 1e3;
    // Sequential: every FF's clock pin ticks every cycle.
    let dyn_ff_mw = m.counts.dff as f64 * t.dff_clock_pj * 1e-12 * f_hz * 1e3;
    static_mw + dyn_logic_mw + dyn_ff_mw
}

/// Power with the default FlexIC technology (used by the sweep).
pub fn average_power_mw(m: &DesignMetrics, freq_khz: f64, area_scale: f64) -> f64 {
    total_power_mw(m, &Tech::flexic_gen(), freq_khz, area_scale)
}

/// Extracts the measured switching activity of a simulation run: toggles
/// per gate per cycle (per stimulus lane), the α used in the dynamic-power
/// term. Works with any [`SimBackend`] — interpreted, compiled, or sharded
/// — since the compiled popcount toggle accounting is exact and sharded
/// merging is an exact sum (see `docs/simulation.md`).
///
/// For multi-lane runs (e.g. `rissp`'s `BatchedGateLevelCpu` with one
/// workload per lane, up to 512 lanes per K-word lane block) this is the
/// per-lane average: the merged toggle total divided by
/// `gates * cycles * lanes`.
pub fn measured_activity<S: SimBackend + ?Sized>(sim: &S) -> f64 {
    sim.average_activity()
}

/// The α activity factor from raw accounting quantities: `toggle_total`
/// switching events observed over `gates` nets, `cycles` clock cycles and
/// `lanes` stimulus lanes. This is the exact formula every backend's
/// `average_activity` implements; it is exposed so flows that merge toggle
/// counts themselves (per-shard, per-lane, or across runs) can reduce them
/// to an α without a live simulator.
pub fn activity_from_counts(toggle_total: u64, gates: usize, cycles: u64, lanes: usize) -> f64 {
    if gates == 0 || cycles == 0 || lanes == 0 {
        return 0.0;
    }
    toggle_total as f64 / (gates as f64 * cycles as f64 * lanes as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::stats::GateCounts;

    fn design(nands: usize, dffs: usize, activity: f64) -> DesignMetrics {
        DesignMetrics {
            name: "d".into(),
            counts: GateCounts {
                nand: nands,
                dff: dffs,
                ..GateCounts::default()
            },
            critical_path_ns: 500.0,
            activity,
            cpi: 1.0,
        }
    }

    #[test]
    fn power_scales_with_frequency() {
        let m = design(2000, 32, 0.1);
        let t = Tech::flexic_gen();
        let p1 = total_power_mw(&m, &t, 300.0, 1.0);
        let p2 = total_power_mw(&m, &t, 1500.0, 1.0);
        assert!(p2 > p1);
        // Static floor: power at DC would still be positive.
        let p0 = total_power_mw(&m, &t, 0.0, 1.0);
        assert!(p0 > 0.0);
    }

    #[test]
    fn ff_heavy_designs_burn_more_power_at_same_gate_count() {
        let t = Tech::flexic_gen();
        // Same NAND2-equivalent area, very different FF fractions.
        let logic_heavy = design(2000, 20, 0.1);
        let ff_equiv = (2000.0 / netlist::stats::nand2_weight::DFF) as usize;
        let ff_heavy = design(0, ff_equiv + 20, 0.1);
        let p_logic = total_power_mw(&logic_heavy, &t, 1000.0, 1.0);
        let p_ff = total_power_mw(&ff_heavy, &t, 1000.0, 1.0);
        assert!(
            p_ff > p_logic,
            "FF-heavy {p_ff:.3} mW should exceed logic-heavy {p_logic:.3} mW"
        );
    }

    #[test]
    fn activity_from_counts_matches_backend_accounting() {
        use netlist::{Builder, CompiledSim, SimBackend};
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        b.output_bus("y", &x);
        let nl = std::sync::Arc::new(b.finish());
        let mut sim = CompiledSim::with_lanes_arc(nl, 8);
        for i in 0..10u64 {
            for lane in 0..8 {
                sim.set_bus_lane("x", lane, i * (lane as u64 + 1));
            }
            sim.eval();
            sim.step();
        }
        let direct = sim.average_activity();
        let from_counts = activity_from_counts(
            sim.toggles().iter().sum(),
            sim.toggles().len(),
            SimBackend::cycles(&sim),
            sim.lanes(),
        );
        assert!((direct - from_counts).abs() < 1e-15);
        assert_eq!(activity_from_counts(100, 0, 10, 1), 0.0);
    }

    #[test]
    fn wide_lane_blocks_report_the_same_activity() {
        // α from one 128-lane (K = 2) block equals α from the same
        // stimuli split across two 64-lane sims: the popcount-per-word
        // toggle rule keeps the accounting exact at every lane width.
        use netlist::{Builder, CompiledSim, SimBackend};
        let mut b = Builder::new();
        let x = b.input_bus("x", 6);
        let lo = b.and(x[0], x[1]);
        let hi = b.xor(x[4], x[5]);
        b.output_bus("y", &[lo, hi, x[2], x[3]]);
        let nl = std::sync::Arc::new(b.finish());
        // All three sims share one netlist Arc and (via the program
        // cache) one compiled program.
        let mut wide = CompiledSim::with_lanes_arc(nl.clone(), 128);
        let mut chunks = [
            CompiledSim::with_lanes_arc(nl.clone(), 64),
            CompiledSim::with_lanes_arc(nl.clone(), 64),
        ];
        for i in 0..10u64 {
            for lane in 0..128usize {
                let v = i.wrapping_mul(lane as u64 * 2 + 1) & 0x3f;
                wide.set_bus_lane("x", lane, v);
                chunks[lane / 64].set_bus_lane("x", lane % 64, v);
            }
            wide.eval();
            wide.step();
            for c in &mut chunks {
                c.eval();
                c.step();
            }
        }
        let toggle_sum: u64 = chunks.iter().flat_map(|c| c.toggles()).sum();
        let merged = activity_from_counts(toggle_sum, nl.len(), SimBackend::cycles(&wide), 128);
        assert!((wide.average_activity() - merged).abs() < 1e-15);
    }

    #[test]
    fn milliwatt_class_at_paper_operating_points() {
        // A ~2500-NAND2 processor at ~1.5 MHz should land in the paper's
        // 0.2–1.4 mW band.
        let m = design(2500, 32, 0.08);
        let p = average_power_mw(&m, 1500.0, 1.1);
        assert!((0.1..=2.0).contains(&p), "{p} mW");
    }
}
