//! FlexIC implementation flow: technology model, static timing analysis,
//! synthesis frequency sweep, power estimation and physical implementation.
//!
//! The paper implements every processor in Pragmatic's 0.6 µm IGZO
//! metal-oxide FlexIC process with a commercial EDA flow (§4.2–§4.3).
//! This crate reproduces that flow over the gate-level netlists of the
//! `netlist`/`rissp` crates:
//!
//! * [`tech`] — per-gate delay/leakage/switching-energy characterisation of
//!   the FlexIC process (flip-flops cost ~10× a NAND2 in power, as §4.2.3
//!   states);
//! * [`sta`] — longest-register-to-register-path timing analysis;
//! * [`sweep`] — the paper's exact frequency procedure: start at 100 kHz,
//!   step 25 kHz until 3 MHz, keep points with positive slack (§4.2.1), and
//!   average area/power across them (§4.2.2–§4.2.3);
//! * [`power`] — activity-based power (toggle counts from gate-level
//!   simulation of the actual workload);
//! * [`physical`] — floorplan, clock-tree buffering and routing overhead at
//!   the fixed 300 kHz implementation point of §4.3.
//!
//! # Examples
//!
//! The full netlist-to-power pipeline: build a design, measure its
//! switching activity by gate-level simulation (any `netlist::SimBackend`
//! works — the backends' toggle accounting is bit-identical, see
//! `docs/simulation.md`), then evaluate the FlexIC power model:
//!
//! ```
//! use flexic::tech::Tech;
//! use flexic::DesignMetrics;
//! use netlist::{bus, Builder, CompiledSim};
//!
//! // An 8-bit accumulator: acc' = acc + x.
//! let mut b = Builder::new();
//! let x = b.input_bus("x", 8);
//! let acc: Vec<_> = (0..8).map(|_| b.dff(false)).collect();
//! let (next, _) = bus::add(&mut b, &acc, &x);
//! for (ff, d) in acc.iter().zip(&next) {
//!     b.connect_dff(*ff, *d);
//! }
//! b.output_bus("acc", &acc);
//! let nl = b.finish();
//!
//! // Simulate a workload and extract the α activity factor.
//! let mut sim = CompiledSim::new(&nl);
//! for i in 0..100u32 {
//!     sim.set_bus("x", i * 37);
//!     sim.eval();
//!     sim.step();
//! }
//! let activity = flexic::power::measured_activity(&sim);
//! assert!(activity > 0.0);
//!
//! // Characterise the design and evaluate power at 300 kHz.
//! let t = Tech::flexic_gen();
//! let m = DesignMetrics::of_netlist("accumulator", &nl, &t, activity);
//! let p = flexic::power::total_power_mw(&m, &t, 300.0, 1.0);
//! assert!(p > 0.0);
//! ```

pub mod physical;
pub mod power;
pub mod sta;
pub mod sweep;
pub mod tech;

use netlist::stats::GateCounts;

/// Technology-independent summary of a design, the common currency of the
/// analysis passes.  Netlist-backed designs come from
/// [`DesignMetrics::of_netlist`]; the Serv baseline provides one from its
/// structural model.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignMetrics {
    /// Display name (e.g. `RISSP-crc32`).
    pub name: String,
    /// Combinational + sequential gate census.
    pub counts: GateCounts,
    /// Longest register-to-register path, in nanoseconds.
    pub critical_path_ns: f64,
    /// Average switching activity α (toggles per gate per cycle), measured
    /// by gate-level simulation of the target workload.
    pub activity: f64,
    /// Average cycles per instruction (1 for single-cycle RISSPs, ≈32 for
    /// the bit-serial Serv).
    pub cpi: f64,
}

impl DesignMetrics {
    /// Builds metrics for a netlist under a technology, with a measured (or
    /// assumed) switching activity.
    pub fn of_netlist(
        name: impl Into<String>,
        nl: &netlist::Netlist,
        t: &tech::Tech,
        activity: f64,
    ) -> DesignMetrics {
        DesignMetrics {
            name: name.into(),
            counts: GateCounts::of(nl),
            critical_path_ns: sta::critical_path_ns(nl, t),
            activity,
            cpi: 1.0,
        }
    }

    /// NAND2-equivalent area (Figure 7's metric).
    pub fn nand2_area(&self) -> f64 {
        self.counts.nand2_equivalent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{bus, Builder};

    #[test]
    fn metrics_of_a_small_netlist() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        let y = b.input_bus("y", 8);
        let (s, _) = bus::add(&mut b, &x, &y);
        b.output_bus("s", &s);
        let nl = b.finish();
        let t = tech::Tech::flexic_gen();
        let m = DesignMetrics::of_netlist("adder", &nl, &t, 0.1);
        assert!(m.nand2_area() > 10.0);
        assert!(m.critical_path_ns > 0.0);
        assert_eq!(m.cpi, 1.0);
    }
}
