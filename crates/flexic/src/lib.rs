//! FlexIC implementation flow: technology model, static timing analysis,
//! synthesis frequency sweep, power estimation and physical implementation.
//!
//! The paper implements every processor in Pragmatic's 0.6 µm IGZO
//! metal-oxide FlexIC process with a commercial EDA flow (§4.2–§4.3).
//! This crate reproduces that flow over the gate-level netlists of the
//! `netlist`/`rissp` crates:
//!
//! * [`tech`] — per-gate delay/leakage/switching-energy characterisation of
//!   the FlexIC process (flip-flops cost ~10× a NAND2 in power, as §4.2.3
//!   states);
//! * [`sta`] — longest-register-to-register-path timing analysis;
//! * [`sweep`] — the paper's exact frequency procedure: start at 100 kHz,
//!   step 25 kHz until 3 MHz, keep points with positive slack (§4.2.1), and
//!   average area/power across them (§4.2.2–§4.2.3);
//! * [`power`] — activity-based power (toggle counts from gate-level
//!   simulation of the actual workload);
//! * [`physical`] — floorplan, clock-tree buffering and routing overhead at
//!   the fixed 300 kHz implementation point of §4.3.

pub mod physical;
pub mod power;
pub mod sta;
pub mod sweep;
pub mod tech;

use netlist::stats::GateCounts;

/// Technology-independent summary of a design, the common currency of the
/// analysis passes.  Netlist-backed designs come from
/// [`DesignMetrics::of_netlist`]; the Serv baseline provides one from its
/// structural model.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignMetrics {
    /// Display name (e.g. `RISSP-crc32`).
    pub name: String,
    /// Combinational + sequential gate census.
    pub counts: GateCounts,
    /// Longest register-to-register path, in nanoseconds.
    pub critical_path_ns: f64,
    /// Average switching activity α (toggles per gate per cycle), measured
    /// by gate-level simulation of the target workload.
    pub activity: f64,
    /// Average cycles per instruction (1 for single-cycle RISSPs, ≈32 for
    /// the bit-serial Serv).
    pub cpi: f64,
}

impl DesignMetrics {
    /// Builds metrics for a netlist under a technology, with a measured (or
    /// assumed) switching activity.
    pub fn of_netlist(
        name: impl Into<String>,
        nl: &netlist::Netlist,
        t: &tech::Tech,
        activity: f64,
    ) -> DesignMetrics {
        DesignMetrics {
            name: name.into(),
            counts: GateCounts::of(nl),
            critical_path_ns: sta::critical_path_ns(nl, t),
            activity,
            cpi: 1.0,
        }
    }

    /// NAND2-equivalent area (Figure 7's metric).
    pub fn nand2_area(&self) -> f64 {
        self.counts.nand2_equivalent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{bus, Builder};

    #[test]
    fn metrics_of_a_small_netlist() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        let y = b.input_bus("y", 8);
        let (s, _) = bus::add(&mut b, &x, &y);
        b.output_bus("s", &s);
        let nl = b.finish();
        let t = tech::Tech::flexic_gen();
        let m = DesignMetrics::of_netlist("adder", &nl, &t, 0.1);
        assert!(m.nand2_area() > 10.0);
        assert!(m.critical_path_ns > 0.0);
        assert_eq!(m.cpi, 1.0);
    }
}
