//! riscv-formal-style RVFI checking of the integrated RISSP (§3.4.2).
//!
//! The gate-level core implements the RISC-V Formal Interface: every retired
//! instruction exposes PC, register traffic and memory traffic.  The checks
//! here mirror riscv-formal's instruction/register/PC checkers, bounded to a
//! trace prefix (the paper verifies "up to a specific depth"):
//!
//! * **insn check** — each retirement matches the golden instruction
//!   semantics evaluated on the observed operands;
//! * **reg check** — read ports return the last written value (checked by
//!   replaying the trace through a shadow register file);
//! * **PC check** — `next_pc` of retirement *n* equals `pc` of *n+1*.

use riscv_emu::{RvfiRecord, RvfiTrace};
use riscv_isa::semantics::{block_semantics, BlockInputs};
use riscv_isa::{Instruction, REG_COUNT};

use crate::processor::{ExecError, GateLevelCpu};
use crate::Rissp;

/// An RVFI property violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RvfiViolation {
    /// Index of the retirement in the trace.
    pub index: usize,
    /// Which property failed.
    pub property: String,
}

impl std::fmt::Display for RvfiViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RVFI violation at retirement {}: {}",
            self.index, self.property
        )
    }
}

impl std::error::Error for RvfiViolation {}

/// Checks an RVFI trace against the riscv-formal properties.
///
/// # Errors
///
/// Returns the first violated property.
pub fn check_trace(trace: &RvfiTrace) -> Result<(), RvfiViolation> {
    let mut shadow_rf = [0u32; REG_COUNT];
    for (index, rec) in trace.records().iter().enumerate() {
        // PC chaining.
        if index + 1 < trace.len() {
            let next = &trace.records()[index + 1];
            if rec.next_pc != next.pc {
                return Err(RvfiViolation {
                    index,
                    property: format!(
                        "pc chain broken: next_pc={:#x} but following pc={:#x}",
                        rec.next_pc, next.pc
                    ),
                });
            }
        }
        // Register read consistency against the shadow RF.
        check_read(index, rec, &shadow_rf, rec.rs1_addr, rec.rs1_data, "rs1")?;
        check_read(index, rec, &shadow_rf, rec.rs2_addr, rec.rs2_data, "rs2")?;
        // Instruction semantics.
        let instr = Instruction::decode(rec.insn).map_err(|e| RvfiViolation {
            index,
            property: format!("retired word does not decode: {e}"),
        })?;
        let golden = block_semantics(
            instr,
            &BlockInputs {
                pc: rec.pc,
                insn: rec.insn,
                rs1_data: rec.rs1_data,
                rs2_data: rec.rs2_data,
                dmem_rdata: rec.mem_rdata,
            },
        );
        let observed = (
            rec.next_pc,
            rec.rd_we,
            rec.rd_we.then_some((rec.rd_addr, rec.rd_wdata)),
            rec.mem_wmask,
            (rec.mem_wmask != 0).then_some((rec.mem_addr, rec.mem_wdata)),
        );
        let expected = (
            golden.next_pc,
            golden.rd_we,
            golden.rd_we.then_some((golden.rd_addr, golden.rd_data)),
            golden.dmem_wmask,
            (golden.dmem_wmask != 0).then_some((golden.dmem_addr, golden.dmem_wdata)),
        );
        if observed != expected {
            return Err(RvfiViolation {
                index,
                property: format!(
                    "insn `{instr}` retired {observed:x?}, specification says {expected:x?}"
                ),
            });
        }
        if rec.rd_we {
            if rec.rd_addr as usize >= REG_COUNT {
                return Err(RvfiViolation {
                    index,
                    property: format!("rd_addr {} out of range", rec.rd_addr),
                });
            }
            shadow_rf[rec.rd_addr as usize] = rec.rd_wdata;
        }
    }
    Ok(())
}

fn check_read(
    index: usize,
    rec: &RvfiRecord,
    shadow: &[u32; REG_COUNT],
    addr: u8,
    data: u32,
    port: &str,
) -> Result<(), RvfiViolation> {
    let expected = shadow.get(addr as usize).copied().unwrap_or(0);
    if data != expected {
        return Err(RvfiViolation {
            index,
            property: format!(
                "{port} read x{addr} returned {data:#x}, shadow RF holds {expected:#x} (pc={:#x})",
                rec.pc
            ),
        });
    }
    Ok(())
}

/// Runs `program` on the gate-level core with tracing enabled and checks the
/// trace to depth `max_steps`, additionally cross-checking against the
/// reference simulator's trace.
///
/// # Errors
///
/// Returns a violation description on any failed property, execution fault,
/// or divergence between the gate-level and reference traces.
pub fn verify_bounded(
    rissp: &Rissp,
    program: &[u32],
    base: u32,
    max_steps: u64,
) -> Result<usize, String> {
    let mut dut = GateLevelCpu::new(rissp, base);
    dut.enable_trace();
    dut.load_words(base, program);
    match dut.run(max_steps) {
        Ok(_) | Err(ExecError::StepLimit { .. }) => {}
        Err(e) => return Err(format!("gate-level fault: {e}")),
    }
    let dut_trace = dut.take_trace();
    check_trace(&dut_trace).map_err(|e| e.to_string())?;

    let mut reference = riscv_emu::Emulator::with_entry(base);
    reference.enable_trace();
    reference.load_words(base, program);
    reference
        .run(max_steps)
        .map_err(|e| format!("reference fault: {e}"))?;
    let ref_trace = reference.take_trace();

    for (i, (d, r)) in dut_trace
        .records()
        .iter()
        .zip(ref_trace.records())
        .enumerate()
    {
        if d != r {
            return Err(format!(
                "trace divergence at retirement {i}: dut={d:x?} ref={r:x?}"
            ));
        }
    }
    Ok(dut_trace.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::InstructionSubset;
    use hwlib::HwLibrary;
    use riscv_isa::asm;

    #[test]
    fn bounded_verification_passes_for_mixed_program() {
        let program = asm::assemble(
            &asm::parse(
                "
                addi a0, zero, -7
                srai a1, a0, 1
                sltu a2, a0, a1
                sb   a0, 0x40(zero)
                lbu  a3, 0x40(zero)
                lh   a4, 0x40(zero)
                halt: jal x0, halt
                ",
            )
            .unwrap(),
            0,
        )
        .unwrap();
        let lib = HwLibrary::build_full();
        let subset = InstructionSubset::from_words(&program);
        let rissp = crate::Rissp::generate(&lib, &subset);
        let depth = verify_bounded(&rissp, &program, 0, 100).unwrap();
        assert!(depth >= 6);
    }

    #[test]
    fn trace_checker_rejects_corrupted_writeback() {
        let mut trace = RvfiTrace::new();
        let addi = riscv_isa::Instruction::i(
            riscv_isa::Mnemonic::Addi,
            riscv_isa::Reg::X1,
            riscv_isa::Reg::X0,
            5,
        );
        trace.push(RvfiRecord {
            pc: 0,
            insn: addi.encode(),
            rd_addr: 1,
            rd_wdata: 6, // wrong: should be 5
            rd_we: true,
            next_pc: 4,
            ..Default::default()
        });
        let err = check_trace(&trace).unwrap_err();
        assert!(err.property.contains("specification"), "{err}");
    }

    #[test]
    fn trace_checker_rejects_broken_pc_chain() {
        let addi = riscv_isa::Instruction::i(
            riscv_isa::Mnemonic::Addi,
            riscv_isa::Reg::X1,
            riscv_isa::Reg::X0,
            5,
        );
        let rec = RvfiRecord {
            pc: 0,
            insn: addi.encode(),
            rd_addr: 1,
            rd_wdata: 5,
            rd_we: true,
            next_pc: 4,
            ..Default::default()
        };
        let mut trace = RvfiTrace::new();
        trace.push(rec);
        trace.push(RvfiRecord { pc: 8, ..rec }); // gap: 4 != 8
        let err = check_trace(&trace).unwrap_err();
        assert!(err.property.contains("pc chain"), "{err}");
    }

    #[test]
    fn trace_checker_rejects_stale_register_read() {
        let addi = riscv_isa::Instruction::i(
            riscv_isa::Mnemonic::Addi,
            riscv_isa::Reg::X1,
            riscv_isa::Reg::X0,
            5,
        );
        let add = riscv_isa::Instruction::r(
            riscv_isa::Mnemonic::Add,
            riscv_isa::Reg::X2,
            riscv_isa::Reg::X1,
            riscv_isa::Reg::X0,
        );
        let mut trace = RvfiTrace::new();
        trace.push(RvfiRecord {
            pc: 0,
            insn: addi.encode(),
            rd_addr: 1,
            rd_wdata: 5,
            rd_we: true,
            next_pc: 4,
            ..Default::default()
        });
        trace.push(RvfiRecord {
            pc: 4,
            insn: add.encode(),
            rs1_addr: 1,
            rs1_data: 99, // stale: shadow RF says 5
            rd_addr: 2,
            rd_wdata: 99,
            rd_we: true,
            next_pc: 8,
            ..Default::default()
        });
        let err = check_trace(&trace).unwrap_err();
        assert!(err.property.contains("shadow RF"), "{err}");
    }
}
