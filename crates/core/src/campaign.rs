//! Differential fuzzing and batched compliance campaigns over the full
//! stack: eDSL → `xcc` → gate-level RISSP vs. the reference emulator.
//!
//! The ROADMAP's north star — "as many scenarios as you can imagine" —
//! needs a driver, not just lane-parallel machinery. This module supplies
//! two:
//!
//! * [`differential_fuzz`] — seeded random eDSL programs are compiled by
//!   `xcc`, executed on a [`BatchedGateLevelCpu`] (up to
//!   [`MAX_TOTAL_LANES`] program-seeds settle per eval, one program per
//!   lane) and on the [`riscv_emu::Emulator`] golden reference; any lane
//!   whose architectural outcome differs is localized against the scalar
//!   RVFI traces and shrunk to a minimal self-contained [`Reproducer`].
//! * [`run_compliance_batched`] / [`compliance_sweep`] — the RISCOF step
//!   ([`crate::riscof`]) lane-batched: one signature case per lane, the
//!   whole corpus settling together on a union-subset core, with reports
//!   identical to the scalar [`crate::riscof::run_compliance`] per case.
//!
//! # Seed pinning and determinism
//!
//! Everything downstream of a [`FuzzConfig`] is a pure function of it:
//! program generation uses one `StdRng` stream per seed, wave packing is
//! by seed order, and the shrinker ([`shrink`]) is a deterministic
//! cheapest-first removal fixpoint — the same config always yields the
//! same reproducers, byte for byte. CI runs pinned configs (see
//! `docs/campaigns.md`).

use crate::processor::{BatchedGateLevelCpu, ExecError, GateLevelCpu};
use crate::profile::InstructionSubset;
use crate::riscof::{RiscofError, RiscofReport};
use crate::Rissp;
use hwlib::{HwLibrary, InstrBlock};
use netlist::compiled::MAX_TOTAL_LANES;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use riscv_emu::{Emulator, HaltReason};
use xcc::ast::build::*;
use xcc::ast::{BinOp, DataObject, Expr, Function, Program, Stmt, VarId};
use xcc::{compile, CompiledProgram, OptLevel, CODE_BASE};

/// Words in the shared `buf` data object every generated program reads
/// and writes; its final contents are part of the compared outcome.
pub const BUF_WORDS: usize = 16;

/// Tuning knobs for a differential-fuzz campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Number of program seeds to run.
    pub iterations: u64,
    /// Base seed; program `i` is generated from `seed + i`.
    pub seed: u64,
    /// Lanes per wave: up to this many programs settle per eval on one
    /// batched CPU. Clamped to [`MAX_TOTAL_LANES`].
    pub lanes: usize,
    /// Optimisation level every program is compiled at.
    pub opt_level: OptLevel,
    /// Per-program cycle budget (generated programs always terminate well
    /// inside the default).
    pub max_cycles: u64,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            iterations: 64,
            seed: 0xf022_5eed,
            lanes: 64,
            opt_level: OptLevel::O1,
            max_cycles: 500_000,
        }
    }
}

/// How a lane's architectural outcome differed from the reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The gate-level run faulted while the reference ran to completion.
    DutFault(ExecError),
    /// Cycle/retirement relation broken (`dut_cycles != ref_retired + 1`
    /// for the single-cycle core, which counts the halt jal once).
    CycleMismatch {
        /// Cycles the gate-level lane executed.
        dut: u64,
        /// Instructions the reference retired.
        ref_retired: u64,
    },
    /// A register differs after halt.
    RegMismatch {
        /// Register index (1..16; x0 is never compared).
        index: usize,
        /// Gate-level value.
        dut: u32,
        /// Reference value.
        reference: u32,
    },
    /// A word of the `buf` data object differs after halt.
    MemMismatch {
        /// Byte address of the differing word.
        addr: u32,
        /// Gate-level value.
        dut: u32,
        /// Reference value.
        reference: u32,
    },
}

impl std::fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DivergenceKind::DutFault(e) => write!(f, "gate-level fault: {e}"),
            DivergenceKind::CycleMismatch { dut, ref_retired } => {
                write!(f, "cycle mismatch: dut={dut} ref_retired={ref_retired}")
            }
            DivergenceKind::RegMismatch {
                index,
                dut,
                reference,
            } => write!(
                f,
                "x{index} mismatch: dut={dut:#010x} ref={reference:#010x}"
            ),
            DivergenceKind::MemMismatch {
                addr,
                dut,
                reference,
            } => write!(
                f,
                "mem[{addr:#x}] mismatch: dut={dut:#010x} ref={reference:#010x}"
            ),
        }
    }
}

/// A divergence pinned to its program seed, with the first differing RVFI
/// retirement when trace localization could find one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The program seed that exposed the divergence.
    pub seed: u64,
    /// What differed.
    pub kind: DivergenceKind,
    /// Index of the first retirement at which the scalar gate-level RVFI
    /// trace differs from the reference trace (`None` when the traces
    /// agree up to the shorter one and the divergence is elsewhere, e.g.
    /// a post-halt memory difference).
    pub first_retirement: Option<usize>,
}

/// A minimal, self-contained failing artifact emitted by the fuzzer.
///
/// Self-contained means: [`replay`] regenerates everything from the
/// fields alone — the program is recompiled at `opt_level`, a RISSP is
/// generated from the program's own instruction subset, and the
/// divergence must reproduce. The shrunk program is 1-minimal under the
/// shrinker's moves: removing any single remaining statement makes the
/// divergence disappear.
#[derive(Debug, Clone, PartialEq)]
pub struct Reproducer {
    /// The original failing seed.
    pub seed: u64,
    /// Optimisation level the divergence reproduces at.
    pub opt_level: OptLevel,
    /// The shrunk program.
    pub program: Program,
    /// The divergence [`replay`] reproduces.
    pub divergence: Divergence,
    /// Human-readable artifact: the shrunk AST plus the divergence, ready
    /// to paste into a bug report.
    pub listing: String,
}

/// Outcome of a [`differential_fuzz`] campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzReport {
    /// Programs generated and executed.
    pub programs: u64,
    /// Batched waves run.
    pub waves: usize,
    /// Widest wave (program-seeds that settled together per eval).
    pub max_wave_width: usize,
    /// One minimal reproducer per diverging seed, in seed order.
    pub reproducers: Vec<Reproducer>,
}

// ---------------------------------------------------------------------
// Program generation
// ---------------------------------------------------------------------

/// Locals 0..ASSIGNABLE are fair game for `set`; the remaining slots are
/// loop induction variables only, so a generated `For` body can never
/// overwrite its own counter (which could make the loop non-terminating).
const ASSIGNABLE: VarId = 4;
const MAIN_LOCALS: usize = 6;

fn gen_leaf(rng: &mut StdRng, locals: VarId) -> Expr {
    match rng.gen_range(0..5u32) {
        0 => c([0i32, 1, -1, 2, 0x7fff_ffff, i32::MIN, 0x5a5a][rng.gen_range(0..7)]),
        1 => c(rng.gen_range(-128..128)),
        2 => v(rng.gen_range(0..locals)),
        3 => lw(add(ga("buf"), c(4 * rng.gen_range(0..BUF_WORDS as i32)))),
        _ => {
            if rng.gen() {
                lbu(add(ga("buf"), c(rng.gen_range(0..(BUF_WORDS * 4) as i32))))
            } else {
                lb(add(ga("buf"), c(rng.gen_range(0..(BUF_WORDS * 4) as i32))))
            }
        }
    }
}

fn gen_expr(rng: &mut StdRng, depth: u32, locals: VarId, calls: bool) -> Expr {
    if depth == 0 {
        return gen_leaf(rng, locals);
    }
    let sub = |rng: &mut StdRng| gen_expr(rng, depth - 1, locals, calls);
    match rng.gen_range(0..14u32) {
        0 => add(sub(rng), sub(rng)),
        1 => sub_(sub(rng), sub(rng)),
        2 => mul(sub(rng), sub(rng)),
        3 => and(sub(rng), sub(rng)),
        4 => or(sub(rng), sub(rng)),
        5 => xor(sub(rng), sub(rng)),
        6 => shl(sub(rng), sub(rng)),
        7 => shr(sub(rng), sub(rng)),
        8 => sar(sub(rng), sub(rng)),
        // Nonzero constant divisors: the division builtins always
        // terminate and compile-time folding cannot hit divide-by-zero.
        9 => bin(
            if rng.gen() { BinOp::DivS } else { BinOp::RemU },
            sub(rng),
            c(rng.gen_range(1..10)),
        ),
        10 => eq(sub(rng), sub(rng)),
        11 => ltu(sub(rng), sub(rng)),
        12 => lt(sub(rng), sub(rng)),
        _ if calls => call("helper", vec![sub(rng), sub(rng)]),
        _ => ge(sub(rng), sub(rng)),
    }
}

// `sub` the builder collides with the closure name above.
use xcc::ast::build::sub as sub_;

fn gen_stmts(rng: &mut StdRng, depth: u32, count: usize, loop_depth: usize) -> Vec<Stmt> {
    let locals = MAIN_LOCALS;
    (0..count)
        .map(|_| match rng.gen_range(0..8u32) {
            0..=2 => {
                let depth = rng.gen_range(1..3);
                set(
                    rng.gen_range(0..ASSIGNABLE),
                    gen_expr(rng, depth, locals, true),
                )
            }
            3 => sw(
                add(ga("buf"), c(4 * rng.gen_range(0..BUF_WORDS as i32))),
                gen_expr(rng, 1, locals, true),
            ),
            4 => {
                // Sub-word stores at width-aligned offsets so neither
                // side can fault on alignment.
                if rng.gen() {
                    sb(
                        add(ga("buf"), c(rng.gen_range(0..(BUF_WORDS * 4) as i32))),
                        gen_expr(rng, 1, locals, false),
                    )
                } else {
                    sh(
                        add(ga("buf"), c(2 * rng.gen_range(0..(BUF_WORDS * 2) as i32))),
                        gen_expr(rng, 1, locals, false),
                    )
                }
            }
            5 if depth > 0 => {
                let var = ASSIGNABLE + loop_depth;
                let to = rng.gen_range(2..6);
                let count = rng.gen_range(1..3);
                Stmt::For {
                    var,
                    from: c(0),
                    to: c(to),
                    body: gen_stmts(rng, depth - 1, count, loop_depth + 1),
                }
            }
            6 if depth > 0 => {
                let cond = gen_expr(rng, 1, locals, false);
                let count = rng.gen_range(1..3);
                if_else(
                    cond,
                    gen_stmts(rng, depth - 1, count, loop_depth),
                    gen_stmts(rng, depth - 1, 1, loop_depth),
                )
            }
            _ => set(
                rng.gen_range(0..ASSIGNABLE),
                gen_expr(rng, 1, locals, false),
            ),
        })
        .collect()
}

/// Generates a random, always-terminating, always-compiling eDSL program
/// from one seed: a `main` over a shared 16-word `buf` global plus a
/// loop-free `helper` callee. Loops are counted `For`s with constant
/// bounds whose induction variables are never assigned in their bodies,
/// division is by nonzero constants, and sub-word accesses are
/// width-aligned — so both executions terminate and any dut/ref
/// difference is a real stack divergence, not a generator artifact.
pub fn random_program(seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let helper = Function {
        name: "helper",
        params: 2,
        locals: 4,
        body: vec![
            set(2, gen_expr(&mut rng, 2, 2, false)),
            set(3, gen_expr(&mut rng, 1, 4, false)),
            ret(gen_expr(&mut rng, 1, 4, false)),
        ],
    };
    let count = rng.gen_range(4..9);
    let mut body = gen_stmts(&mut rng, 2, count, 0);
    body.push(ret(gen_expr(&mut rng, 1, MAIN_LOCALS, true)));
    let main = Function {
        name: "main",
        params: 0,
        locals: MAIN_LOCALS,
        body,
    };
    let words = (0..BUF_WORDS as u64)
        .map(|i| {
            let mut r = StdRng::seed_from_u64(seed ^ i.rotate_left(17));
            r.gen()
        })
        .collect();
    Program {
        functions: vec![helper, main],
        data: vec![DataObject { name: "buf", words }],
    }
}

// ---------------------------------------------------------------------
// Execution and comparison
// ---------------------------------------------------------------------

fn run_reference(image: &CompiledProgram, max_cycles: u64) -> (Emulator, u64) {
    let mut emu = Emulator::with_entry(CODE_BASE);
    image.load(&mut emu);
    let summary = emu.run(max_cycles).expect("generated programs never fault");
    assert_eq!(
        summary.halt,
        HaltReason::SelfLoop,
        "generated programs always halt within the cycle budget"
    );
    (emu, summary.retired)
}

/// Compares one halted gate-level lane against the reference outcome.
/// The comparison order (fault, cycles, registers, memory) is fixed so a
/// given divergence always reports the same kind.
fn compare_lane(
    dut_result: &Result<u64, ExecError>,
    reg: impl Fn(usize) -> u32,
    mem_word: impl Fn(u32) -> u32,
    emu: &Emulator,
    ref_retired: u64,
    buf_base: u32,
) -> Option<DivergenceKind> {
    let dut_cycles = match dut_result {
        Ok(c) => *c,
        Err(e) => return Some(DivergenceKind::DutFault(e.clone())),
    };
    // The single-cycle core executes the halt jal once before the
    // self-loop is detected; the emulator stops on retiring it.
    if dut_cycles != ref_retired + 1 {
        return Some(DivergenceKind::CycleMismatch {
            dut: dut_cycles,
            ref_retired,
        });
    }
    for index in 1..riscv_isa::REG_COUNT {
        let dut = reg(index);
        let reference = emu.state().regs[index];
        if dut != reference {
            return Some(DivergenceKind::RegMismatch {
                index,
                dut,
                reference,
            });
        }
    }
    for i in 0..BUF_WORDS as u32 {
        let addr = buf_base + 4 * i;
        let dut = mem_word(addr);
        let reference = emu.memory().load_word(addr);
        if dut != reference {
            return Some(DivergenceKind::MemMismatch {
                addr,
                dut,
                reference,
            });
        }
    }
    None
}

/// Subset-keyed cache of generated cores: shrink candidates usually
/// share an instruction subset with their parent, so the expensive
/// generate-and-synthesize step runs once per distinct subset instead of
/// once per candidate.
type CoreCache =
    std::collections::HashMap<Vec<riscv_isa::Mnemonic>, std::sync::Arc<netlist::Netlist>>;

fn cached_core(
    lib: &HwLibrary,
    cache: &mut CoreCache,
    subset: &InstructionSubset,
) -> std::sync::Arc<netlist::Netlist> {
    let key: Vec<riscv_isa::Mnemonic> = subset.iter().collect();
    cache
        .entry(key)
        .or_insert_with(|| std::sync::Arc::new(Rissp::generate(lib, subset).core))
        .clone()
}

fn check_diverges(
    lib: &HwLibrary,
    cache: &mut CoreCache,
    program: &Program,
    opt_level: OptLevel,
    max_cycles: u64,
) -> Option<DivergenceKind> {
    let Ok(image) = compile(program, opt_level) else {
        // Shrink candidates must stay compilable; a candidate that is not
        // simply does not reproduce.
        return None;
    };
    let subset = InstructionSubset::from_words(&image.words);
    if subset.is_empty() {
        return None;
    }
    let core = cached_core(lib, cache, &subset);
    let mut dut = GateLevelCpu::with_core_arc(core, CODE_BASE);
    for (base, words) in image.segments() {
        dut.load_words(base, words);
    }
    let (emu, ref_retired) = run_reference(&image, max_cycles);
    // An agreeing DUT halts in exactly ref_retired + 1 cycles; one cycle
    // past that the verdict is already "diverged", so a diverging run
    // that never reaches its halt self-loop stops immediately instead of
    // burning the whole cycle budget.
    let dut_result = dut.run(max_cycles.min(ref_retired + 2));
    let buf_base = image.global("buf").unwrap_or(xcc::DATA_BASE);
    compare_lane(
        &dut_result,
        |i| dut.reg(i),
        |a| dut.memory().load_word(a),
        &emu,
        ref_retired,
        buf_base,
    )
}

/// Checks whether `program` diverges between the gate-level core and the
/// reference at `opt_level`, regenerating the RISSP from the program's
/// own instruction subset. This is the shrinker's oracle and the replay
/// contract of a [`Reproducer`]: it depends only on `lib`, the program
/// and the level.
pub fn reproduces(
    lib: &HwLibrary,
    program: &Program,
    opt_level: OptLevel,
    max_cycles: u64,
) -> Option<DivergenceKind> {
    check_diverges(lib, &mut CoreCache::new(), program, opt_level, max_cycles)
}

/// Localizes a known-diverging program: re-runs it on the scalar
/// gate-level CPU and the reference with RVFI tracing enabled and returns
/// the first retirement index at which the traces disagree.
fn localize(
    lib: &HwLibrary,
    cache: &mut CoreCache,
    program: &Program,
    opt_level: OptLevel,
    max_cycles: u64,
) -> Option<usize> {
    let image = compile(program, opt_level).ok()?;
    let subset = InstructionSubset::from_words(&image.words);
    let core = cached_core(lib, cache, &subset);
    let mut emu = Emulator::with_entry(CODE_BASE);
    emu.enable_trace();
    image.load(&mut emu);
    let ref_retired = emu
        .run(max_cycles)
        .map(|summary| summary.retired)
        .unwrap_or(max_cycles);
    let ref_trace = emu.take_trace();
    let mut dut = GateLevelCpu::with_core_arc(core, CODE_BASE);
    dut.enable_trace();
    for (base, words) in image.segments() {
        dut.load_words(base, words);
    }
    // A diverging DUT must disagree with the reference trace within the
    // reference's own retirement count: if every retirement through the
    // halt matched, the final architectural state would match too. So the
    // trace run gets the same `ref_retired + 2` cap as the verdict runs.
    let _ = dut.run(max_cycles.min(ref_retired + 2));
    let dut_trace = dut.take_trace();
    dut_trace.first_divergence(&ref_trace)
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

fn body_of_mut<'p>(f: &'p mut Function, path: &[usize]) -> &'p mut Vec<Stmt> {
    let mut body = &mut f.body;
    for &step in path {
        let idx = step >> 1;
        body = match &mut body[idx] {
            Stmt::For { body, .. } | Stmt::While { body, .. } => body,
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                if step & 1 == 0 {
                    then_body
                } else {
                    else_body
                }
            }
            _ => unreachable!("path descends through a leaf statement"),
        };
    }
    body
}

/// Enumerates every removable statement position in `f` as
/// (block-path, index) pairs, outermost blocks first. A path element
/// `2*i` descends into statement `i`'s single body (`For`/`While`) or
/// then-branch; `2*i + 1` descends into its else-branch.
fn removal_sites(f: &Function) -> Vec<(Vec<usize>, usize)> {
    fn walk(body: &[Stmt], path: &mut Vec<usize>, out: &mut Vec<(Vec<usize>, usize)>) {
        for (i, stmt) in body.iter().enumerate() {
            out.push((path.clone(), i));
            match stmt {
                Stmt::For { body, .. } | Stmt::While { body, .. } => {
                    path.push(2 * i);
                    walk(body, path, out);
                    path.pop();
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    path.push(2 * i);
                    walk(then_body, path, out);
                    path.pop();
                    path.push(2 * i + 1);
                    walk(else_body, path, out);
                    path.pop();
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(&f.body, &mut Vec::new(), &mut out);
    out
}

/// Enumerates every single-statement-removal candidate of `program`, in
/// the shrinker's fixed order: functions in order, outer blocks before
/// their bodies.
fn removal_candidates(program: &Program) -> Vec<Program> {
    let mut candidates = Vec::new();
    for fi in 0..program.functions.len() {
        for (path, idx) in removal_sites(&program.functions[fi]) {
            let mut candidate = program.clone();
            body_of_mut(&mut candidate.functions[fi], &path).remove(idx);
            candidates.push(candidate);
        }
    }
    candidates
}

/// Returns the index of the *cheapest* diverging candidate — the one
/// whose reference run retires the fewest instructions, ties broken by
/// position — evaluating the whole list lane-parallel: one candidate per
/// lane of a union-subset [`BatchedGateLevelCpu`], chunks of up to
/// `MAX_TOTAL_LANES`. Verdicts equal the scalar [`check_diverges`] per
/// candidate (a superset core executes an in-subset program identically,
/// and CPI = 1 makes cycle counts core-independent), and the
/// `(ref_retired, index)` key is deterministic, so the choice is a pure
/// function of the candidate list. Preferring the fastest survivor means
/// the shrinker sheds long-running loops first, which keeps every later
/// pass (all capped at the slowest lane's reference run) cheap.
fn best_diverging(
    lib: &HwLibrary,
    cache: &mut CoreCache,
    candidates: &[Program],
    opt_level: OptLevel,
    max_cycles: u64,
) -> Option<usize> {
    let mut best: Option<(u64, usize)> = None;
    for (ci, chunk) in candidates.chunks(MAX_TOTAL_LANES).enumerate() {
        // Candidates that fail to compile or have an empty instruction
        // subset cannot diverge; they simply get no lane.
        let images: Vec<(usize, CompiledProgram)> = chunk
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let image = compile(p, opt_level).ok()?;
                if InstructionSubset::from_words(&image.words).is_empty() {
                    return None;
                }
                Some((ci * MAX_TOTAL_LANES + i, image))
            })
            .collect();
        if images.is_empty() {
            continue;
        }
        let subset = images
            .iter()
            .map(|(_, image)| InstructionSubset::from_words(&image.words))
            .fold(InstructionSubset::new(), |a, b| a.union(&b));
        let core = cached_core(lib, cache, &subset);
        let entries = vec![CODE_BASE; images.len()];
        let mut cpu = BatchedGateLevelCpu::with_core_arc(core, &entries);
        for (lane, (_, image)) in images.iter().enumerate() {
            for (base, words) in image.segments() {
                cpu.load_words(lane, base, words);
            }
        }
        // The whole chunk is capped at the slowest reference's retirement
        // + 2: any lane still running past its own ref_retired + 1 has
        // already diverged (see `check_diverges`).
        let refs: Vec<(Emulator, u64)> = images
            .iter()
            .map(|(_, image)| run_reference(image, max_cycles))
            .collect();
        let slowest = refs.iter().map(|&(_, r)| r).max().unwrap_or(0);
        let results = cpu.run(max_cycles.min(slowest + 2));
        for (lane, (index, image)) in images.iter().enumerate() {
            let (emu, ref_retired) = &refs[lane];
            let buf_base = image.global("buf").unwrap_or(xcc::DATA_BASE);
            let diverged = compare_lane(
                &results[lane],
                |i| cpu.reg(lane, i),
                |a| cpu.memory(lane).load_word(a),
                emu,
                *ref_retired,
                buf_base,
            );
            if diverged.is_some() {
                let key = (*ref_retired, *index);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
    }
    best.map(|(_, index)| index)
}

/// Deterministically shrinks a diverging program to a 1-minimal
/// reproducer: repeatedly remove the single statement whose removal
/// keeps the divergence alive *and* leaves the fastest-running program
/// (ties broken by position — functions in order, outer blocks before
/// their bodies), until no single removal diverges. The selection key is
/// fixed, so the result is a pure function of the input program —
/// re-shrinking the same divergence always yields the same artifact.
/// Each pass evaluates all removal candidates lane-parallel on one
/// union-subset batched CPU, which changes only the wall clock.
pub fn shrink(lib: &HwLibrary, program: &Program, opt_level: OptLevel, max_cycles: u64) -> Program {
    shrink_with(lib, &mut CoreCache::new(), program, opt_level, max_cycles)
}

fn shrink_with(
    lib: &HwLibrary,
    cache: &mut CoreCache,
    program: &Program,
    opt_level: OptLevel,
    max_cycles: u64,
) -> Program {
    let mut current = program.clone();
    loop {
        let mut candidates = removal_candidates(&current);
        match best_diverging(lib, cache, &candidates, opt_level, max_cycles) {
            Some(i) => current = candidates.swap_remove(i),
            None => return current,
        }
    }
}

/// The shrinker's postcondition, exposed for tests and audits: `program`
/// still diverges, and removing any single statement (at any nesting
/// depth, in any function) makes the divergence disappear.
pub fn is_one_minimal(
    lib: &HwLibrary,
    program: &Program,
    opt_level: OptLevel,
    max_cycles: u64,
) -> bool {
    let mut cache = CoreCache::new();
    if check_diverges(lib, &mut cache, program, opt_level, max_cycles).is_none() {
        return false;
    }
    let candidates = removal_candidates(program);
    best_diverging(lib, &mut cache, &candidates, opt_level, max_cycles).is_none()
}

fn make_reproducer(
    lib: &HwLibrary,
    cache: &mut CoreCache,
    seed: u64,
    program: &Program,
    cfg: &FuzzConfig,
) -> Reproducer {
    let shrunk = shrink_with(lib, cache, program, cfg.opt_level, cfg.max_cycles);
    let kind = check_diverges(lib, cache, &shrunk, cfg.opt_level, cfg.max_cycles)
        .expect("shrink preserves the divergence");
    let divergence = Divergence {
        seed,
        kind: kind.clone(),
        first_retirement: localize(lib, cache, &shrunk, cfg.opt_level, cfg.max_cycles),
    };
    let listing = format!(
        "seed {seed} at {}: {kind}\nfirst diverging retirement: {:?}\n{:#?}",
        cfg.opt_level, divergence.first_retirement, shrunk
    );
    Reproducer {
        seed,
        opt_level: cfg.opt_level,
        program: shrunk,
        divergence,
        listing,
    }
}

/// Replays a reproducer from its fields alone and returns the divergence
/// it exposes (`None` means it no longer fails — e.g. the underlying bug
/// was fixed).
pub fn replay(lib: &HwLibrary, r: &Reproducer) -> Option<DivergenceKind> {
    reproduces(
        lib,
        &r.program,
        r.opt_level,
        FuzzConfig::default().max_cycles,
    )
}

// ---------------------------------------------------------------------
// The fuzz campaign
// ---------------------------------------------------------------------

/// Runs one wave — up to `lanes` program seeds on one batched CPU — and
/// returns the diverging seeds in lane order. This is the unit both the
/// one-shot campaign and the checkpoint-resume loop iterate over: a
/// wave's verdicts are a pure function of its seed slice and `cfg`
/// (its core comes from the wave's own union subset), so waves can be
/// replayed or skipped independently without changing any verdict.
fn run_wave(lib: &HwLibrary, wave: &[u64], cfg: &FuzzConfig) -> Vec<u64> {
    let programs: Vec<Program> = wave.iter().map(|&s| random_program(s)).collect();
    let images: Vec<CompiledProgram> = programs
        .iter()
        .map(|p| compile(p, cfg.opt_level).expect("generated programs compile"))
        .collect();
    // One core per wave, supporting the union of every lane's subset:
    // lanes execute different binaries on the same netlist.
    let subset = images
        .iter()
        .map(|i| InstructionSubset::from_words(&i.words))
        .fold(InstructionSubset::new(), |a, b| a.union(&b));
    let rissp = Rissp::generate(lib, &subset);
    let entries = vec![CODE_BASE; wave.len()];
    let mut cpu = BatchedGateLevelCpu::new(&rissp, &entries);
    for (lane, image) in images.iter().enumerate() {
        for (base, words) in image.segments() {
            cpu.load_words(lane, base, words);
        }
    }
    // Cap the wave at the slowest reference's retirement + 2: a lane
    // still running past its own ref_retired + 1 cycles has already
    // diverged (see `check_diverges`), so a diverging wave settles
    // for as long as its programs actually run, not the full budget.
    let refs: Vec<(Emulator, u64)> = images
        .iter()
        .map(|image| run_reference(image, cfg.max_cycles))
        .collect();
    let slowest = refs.iter().map(|&(_, r)| r).max().unwrap_or(0);
    let results = cpu.run(cfg.max_cycles.min(slowest + 2));

    let mut diverging = Vec::new();
    for (lane, (&seed, image)) in wave.iter().zip(&images).enumerate() {
        let (emu, ref_retired) = &refs[lane];
        let buf_base = image.global("buf").unwrap_or(xcc::DATA_BASE);
        let diverged = compare_lane(
            &results[lane],
            |i| cpu.reg(lane, i),
            |a| cpu.memory(lane).load_word(a),
            emu,
            *ref_retired,
            buf_base,
        );
        if diverged.is_some() {
            diverging.push(seed);
        }
    }
    diverging
}

/// Builds the final report from the diverging-seed list: one minimal
/// [`Reproducer`] per seed, regenerated deterministically (the seed
/// recreates the program, the shrinker is a pure function of it). This
/// is why checkpoints only need to record *seeds*: resuming rebuilds
/// byte-identical reproducers.
fn finish_report(lib: &HwLibrary, cfg: &FuzzConfig, waves: usize, diverged: &[u64]) -> FuzzReport {
    let lanes = cfg.lanes.clamp(1, MAX_TOTAL_LANES);
    // One subset-keyed core cache for all the shrinks: candidates across
    // different divergences revisit the same subsets, and regenerating a
    // RISSP per candidate dwarfs the actual runs.
    let mut cache = CoreCache::new();
    let reproducers = diverged
        .iter()
        .map(|&seed| make_reproducer(lib, &mut cache, seed, &random_program(seed), cfg))
        .collect();
    FuzzReport {
        programs: cfg.iterations,
        waves,
        // Every wave is `lanes` wide except a possibly-short last one, so
        // the widest is min(lanes, iterations) — computable without
        // replaying the wave loop (0 iterations means 0 waves).
        max_wave_width: (cfg.iterations.min(lanes as u64)) as usize,
        reproducers,
    }
}

/// Runs a differential-fuzz campaign: `cfg.iterations` seeded programs,
/// packed `cfg.lanes` per wave onto one [`BatchedGateLevelCpu`] whose
/// core is generated from the wave's union instruction subset, compared
/// lane-by-lane against the reference emulator, with every divergence
/// shrunk to a minimal self-contained [`Reproducer`].
pub fn differential_fuzz(lib: &HwLibrary, cfg: &FuzzConfig) -> FuzzReport {
    let lanes = cfg.lanes.clamp(1, MAX_TOTAL_LANES);
    let seeds: Vec<u64> = (0..cfg.iterations).map(|i| cfg.seed + i).collect();
    let mut waves = 0;
    let mut diverged = Vec::new();
    for wave in seeds.chunks(lanes) {
        waves += 1;
        diverged.extend(run_wave(lib, wave, cfg));
    }
    finish_report(lib, cfg, waves, &diverged)
}

// ---------------------------------------------------------------------
// Resumable fuzzing: wave-grained checkpoints
// ---------------------------------------------------------------------

/// On-disk checkpoint of a differential-fuzz campaign: the config the
/// verdicts depend on, how many waves have fully run, and the diverging
/// seeds found so far. Reproducers are deliberately *not* stored — the
/// shrinker is a pure function of (library, seed, config), so resuming
/// regenerates them byte-identically from the seed list.
///
/// Same atomic text-file discipline as
/// `hwlib::campaign::MutationCheckpoint` (version-tagged, `.tmp` +
/// rename, strict parse):
///
/// ```text
/// gate-sim-checkpoint v1 fuzz
/// config iterations=64 seed=0xf0225eed lanes=64 opt=-O1 max_cycles=500000
/// waves_done 2
/// diverged 0xf0225f03
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCheckpoint {
    /// `FuzzConfig::iterations` the checkpoint was written under.
    pub iterations: u64,
    /// `FuzzConfig::seed` the checkpoint was written under.
    pub seed: u64,
    /// `FuzzConfig::lanes` the checkpoint was written under (the wave
    /// grain — resuming at a different width would re-slice the seeds).
    pub lanes: usize,
    /// `FuzzConfig::opt_level` the checkpoint was written under.
    pub opt_level: OptLevel,
    /// `FuzzConfig::max_cycles` the checkpoint was written under.
    pub max_cycles: u64,
    /// Waves fully evaluated so far.
    pub waves_done: usize,
    /// Diverging seeds found in the finished waves, in seed order.
    pub diverged: Vec<u64>,
}

impl FuzzCheckpoint {
    /// Fresh, empty checkpoint bound to `cfg`.
    pub fn new(cfg: &FuzzConfig) -> FuzzCheckpoint {
        FuzzCheckpoint {
            iterations: cfg.iterations,
            seed: cfg.seed,
            lanes: cfg.lanes,
            opt_level: cfg.opt_level,
            max_cycles: cfg.max_cycles,
            waves_done: 0,
            diverged: Vec::new(),
        }
    }

    /// True when the checkpoint was written under exactly `cfg` — every
    /// field of [`FuzzConfig`] affects verdicts, so all of them gate
    /// resumption.
    pub fn matches(&self, cfg: &FuzzConfig) -> bool {
        self.iterations == cfg.iterations
            && self.seed == cfg.seed
            && self.lanes == cfg.lanes
            && self.opt_level == cfg.opt_level
            && self.max_cycles == cfg.max_cycles
    }

    /// Serializes to the v1 text format (see the type docs).
    pub fn render(&self) -> String {
        let mut out = String::from("gate-sim-checkpoint v1 fuzz\n");
        out.push_str(&format!(
            "config iterations={} seed={:#x} lanes={} opt={} max_cycles={}\n",
            self.iterations, self.seed, self.lanes, self.opt_level, self.max_cycles
        ));
        out.push_str(&format!("waves_done {}\n", self.waves_done));
        for seed in &self.diverged {
            out.push_str(&format!("diverged {seed:#x}\n"));
        }
        out
    }

    /// Parses the v1 text format, rejecting anything malformed.
    pub fn parse(text: &str) -> Result<FuzzCheckpoint, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("gate-sim-checkpoint v1 fuzz") => {}
            other => return Err(format!("bad checkpoint header: {other:?}")),
        }
        let config = lines.next().ok_or("missing config line")?;
        let mut fields = config.split_whitespace();
        if fields.next() != Some("config") {
            return Err(format!("bad config line: {config:?}"));
        }
        let mut iterations = None;
        let mut seed = None;
        let mut lanes = None;
        let mut opt_level = None;
        let mut max_cycles = None;
        for field in fields {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("bad config field: {field:?}"))?;
            match key {
                "iterations" => iterations = Some(parse_u64(value)?),
                "seed" => seed = Some(parse_u64(value)?),
                "lanes" => lanes = Some(parse_u64(value)? as usize),
                "opt" => opt_level = Some(parse_opt_level(value)?),
                "max_cycles" => max_cycles = Some(parse_u64(value)?),
                _ => return Err(format!("unknown config key: {key:?}")),
            }
        }
        let (Some(iterations), Some(seed), Some(lanes), Some(opt_level), Some(max_cycles)) =
            (iterations, seed, lanes, opt_level, max_cycles)
        else {
            return Err(format!("incomplete config line: {config:?}"));
        };
        let mut waves_done = None;
        let mut diverged = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match line.split_whitespace().collect::<Vec<_>>()[..] {
                ["waves_done", n] if waves_done.is_none() => {
                    waves_done = Some(parse_u64(n)? as usize);
                }
                ["diverged", s] => diverged.push(parse_u64(s)?),
                _ => return Err(format!("bad checkpoint line: {line:?}")),
            }
        }
        Ok(FuzzCheckpoint {
            iterations,
            seed,
            lanes,
            opt_level,
            max_cycles,
            waves_done: waves_done.ok_or("missing waves_done line")?,
            diverged,
        })
    }

    /// Loads a checkpoint from `path`. `Ok(None)` when the file does not
    /// exist (a fresh run); malformed contents are an
    /// [`io::ErrorKind::InvalidData`](std::io::ErrorKind::InvalidData)
    /// error, never a silent restart.
    pub fn load(path: &std::path::Path) -> std::io::Result<Option<FuzzCheckpoint>> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        FuzzCheckpoint::parse(&text)
            .map(Some)
            .map_err(|msg| std::io::Error::new(std::io::ErrorKind::InvalidData, msg))
    }

    /// Atomically persists the checkpoint (`.tmp` sibling + rename).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.render())?;
        std::fs::rename(&tmp, path)
    }
}

fn parse_u64(value: &str) -> Result<u64, String> {
    if let Some(hex) = value.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|_| format!("bad hex integer: {value:?}"))
    } else {
        value
            .parse::<u64>()
            .map_err(|_| format!("bad integer: {value:?}"))
    }
}

fn parse_opt_level(value: &str) -> Result<OptLevel, String> {
    match value {
        "-O0" => Ok(OptLevel::O0),
        "-O1" => Ok(OptLevel::O1),
        "-O2" => Ok(OptLevel::O2),
        "-O3" => Ok(OptLevel::O3),
        "-Oz" => Ok(OptLevel::Oz),
        _ => Err(format!("bad opt level: {value:?}")),
    }
}

/// Result of a checkpointed fuzz run: either the campaign finished (the
/// report is bit-identical to an uninterrupted [`differential_fuzz`] at
/// the same config), or the wave budget ran out first.
#[derive(Debug, Clone, PartialEq)]
pub enum FuzzOutcome {
    /// Every wave ran; reproducers were (re)generated from the diverging
    /// seed list.
    Complete(FuzzReport),
    /// The wave budget ran out. `waves_run` waves were evaluated this
    /// invocation and the checkpoint records the frontier.
    Interrupted {
        /// Waves evaluated before the budget ran out.
        waves_run: usize,
    },
}

/// [`differential_fuzz`] with wave-grained checkpointing: waves already
/// recorded in `checkpoint` are skipped, the checkpoint is re-persisted
/// to `path` (atomically) after **every** wave, and `wave_budget` bounds
/// how many waves this invocation may run (`None` = unbounded) — the
/// deterministic stand-in for a mid-run kill in tests and the
/// `--max-waves` flag of the `campaign` binary. Shrinking only happens
/// on completion, from the accumulated seed list, so an interrupted run
/// never wastes shrink work.
///
/// # Errors
///
/// Only checkpoint persistence can fail.
///
/// # Panics
///
/// Panics if `checkpoint` does not [`match`](FuzzCheckpoint::matches)
/// `cfg` — the `campaign` binary refuses a mismatch with a runtime error
/// before getting here.
pub fn differential_fuzz_resumable(
    lib: &HwLibrary,
    cfg: &FuzzConfig,
    checkpoint: &mut FuzzCheckpoint,
    path: Option<&std::path::Path>,
    wave_budget: Option<usize>,
) -> std::io::Result<FuzzOutcome> {
    assert!(
        checkpoint.matches(cfg),
        "checkpoint config does not match the campaign config"
    );
    let lanes = cfg.lanes.clamp(1, MAX_TOTAL_LANES);
    let seeds: Vec<u64> = (0..cfg.iterations).map(|i| cfg.seed + i).collect();
    let total_waves = seeds.chunks(lanes).count();
    let resumed_from = checkpoint.waves_done;
    for (index, wave) in seeds.chunks(lanes).enumerate().skip(resumed_from) {
        let waves_run = index - resumed_from;
        if wave_budget.is_some_and(|budget| waves_run >= budget) {
            if let Some(path) = path {
                checkpoint.save(path)?;
            }
            return Ok(FuzzOutcome::Interrupted { waves_run });
        }
        checkpoint.diverged.extend(run_wave(lib, wave, cfg));
        checkpoint.waves_done = index + 1;
        if let Some(path) = path {
            checkpoint.save(path)?;
        }
    }
    Ok(FuzzOutcome::Complete(finish_report(
        lib,
        cfg,
        total_waves,
        &checkpoint.diverged,
    )))
}

// ---------------------------------------------------------------------
// Sabotage support
// ---------------------------------------------------------------------

/// Returns a copy of `block` whose `rd_data` output has bit 0 inverted —
/// a deterministic, decode-preserving fault for sabotage testing: the
/// block still selects exactly its own encodings, but every executed
/// instance writes back a wrong value. Pair with
/// [`HwLibrary::replace_block`] to prove a campaign catches a bad block.
pub fn sabotage_rd_data(block: &InstrBlock) -> InstrBlock {
    use std::collections::HashMap;
    let mut b = netlist::Builder::new();
    let mut bind: HashMap<&str, Vec<netlist::NetId>> = HashMap::new();
    for (name, width) in hwlib::ports::INPUTS {
        bind.insert(name, b.input_bus(name, width));
    }
    for (name, nets) in b.import(&block.netlist, &bind) {
        let mut nets = nets;
        if name == hwlib::ports::RD_DATA {
            nets[0] = b.not(nets[0]);
        }
        b.output_bus(&name, &nets);
    }
    InstrBlock {
        mnemonic: block.mnemonic,
        netlist: b.finish(),
    }
}

// ---------------------------------------------------------------------
// Batched compliance (the RISCOF sweep)
// ---------------------------------------------------------------------

/// One RISCOF-style signature case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComplianceCase {
    /// Test name, for reporting.
    pub name: &'static str,
    /// The program image, loaded at `base`.
    pub program: Vec<u32>,
    /// Load address and entry point.
    pub base: u32,
    /// Signature region start (inclusive).
    pub sig_begin: u32,
    /// Signature region end (exclusive).
    pub sig_end: u32,
}

/// Lane-batched [`crate::riscof::run_compliance`]: every case runs on its
/// own lane of one batched CPU over `rissp` (which must support the union
/// of all cases' subsets), then each lane's signature is compared against
/// the reference emulator. Per-case reports are identical to the scalar
/// path — cycles on the single-cycle core depend only on the program, not
/// on which supporting core executes it.
pub fn run_compliance_batched(
    rissp: &Rissp,
    cases: &[ComplianceCase],
    max_steps: u64,
) -> Vec<Result<RiscofReport, RiscofError>> {
    assert!(!cases.is_empty(), "no compliance cases");
    let mut reports = Vec::with_capacity(cases.len());
    for chunk in cases.chunks(MAX_TOTAL_LANES) {
        let entries: Vec<u32> = chunk.iter().map(|c| c.base).collect();
        let mut cpu = BatchedGateLevelCpu::new(rissp, &entries);
        for (lane, case) in chunk.iter().enumerate() {
            cpu.load_words(lane, case.base, &case.program);
        }
        let results = cpu.run(max_steps);
        for (lane, case) in chunk.iter().enumerate() {
            reports.push(compliance_verdict(
                &cpu,
                lane,
                case,
                &results[lane],
                max_steps,
            ));
        }
    }
    reports
}

fn compliance_verdict(
    cpu: &BatchedGateLevelCpu,
    lane: usize,
    case: &ComplianceCase,
    result: &Result<u64, ExecError>,
    max_steps: u64,
) -> Result<RiscofReport, RiscofError> {
    let dut_cycles = result.clone().map_err(RiscofError::Dut)?;
    let mut reference = Emulator::with_entry(case.base);
    reference.load_words(case.base, &case.program);
    let run = reference
        .run(max_steps)
        .map_err(|e| RiscofError::Reference(e.to_string()))?;
    let words = ((case.sig_end - case.sig_begin) / 4) as usize;
    let dut_sig: Vec<u32> = (0..words)
        .map(|i| cpu.memory(lane).load_word(case.sig_begin + 4 * i as u32))
        .collect();
    let ref_sig = reference.signature(case.sig_begin, case.sig_end);
    for (index, (d, r)) in dut_sig.iter().zip(&ref_sig).enumerate() {
        if d != r {
            return Err(RiscofError::SignatureMismatch {
                index,
                dut: *d,
                reference: *r,
            });
        }
    }
    Ok(RiscofReport {
        dut_cycles,
        ref_instructions: run.retired,
        signature: dut_sig,
    })
}

/// The handwritten RISCOF corpus: signature-writing programs covering
/// arithmetic, logic, shifts, comparisons, loads/stores of every width,
/// branches, jumps and upper-immediate instructions. Each writes its
/// signature from `0x1000`.
pub fn compliance_corpus() -> Vec<ComplianceCase> {
    use riscv_isa::asm;
    let case = |name: &'static str, src: &str, words: u32| ComplianceCase {
        name,
        program: asm::assemble(&asm::parse(src).unwrap(), 0).unwrap(),
        base: 0,
        sig_begin: 0x1000,
        sig_end: 0x1000 + 4 * words,
    };
    vec![
        case(
            "arith_loop",
            "
            lui  a5, 0x1
            addi a0, zero, 1
            addi a1, zero, 0
            loop:
            add  a1, a1, a0
            addi a0, a0, 1
            sw   a1, 0(a5)
            addi a5, a5, 4
            sltiu a3, a0, 10
            bne  a3, zero, loop
            halt: jal x0, halt
            ",
            9,
        ),
        case(
            "logic_imm",
            "
            lui  a5, 0x1
            addi a0, zero, -1
            andi a1, a0, 0x5a5
            ori  a2, a1, 0x0f0
            xori a3, a2, -1
            sw   a1, 0(a5)
            sw   a2, 4(a5)
            sw   a3, 8(a5)
            halt: jal x0, halt
            ",
            3,
        ),
        case(
            "shifts",
            "
            lui  a5, 0x1
            lui  a0, 0x80000
            srai a1, a0, 4
            srli a2, a0, 4
            addi a3, zero, 3
            sll  a4, a3, a3
            sw   a1, 0(a5)
            sw   a2, 4(a5)
            sw   a4, 8(a5)
            halt: jal x0, halt
            ",
            3,
        ),
        case(
            "mem_widths",
            "
            lui  a5, 0x1
            lui  a0, 0x12345
            addi a0, a0, 0x678
            sw   a0, 0(a5)
            sb   a0, 5(a5)
            sh   a0, 8(a5)
            lb   a1, 5(a5)
            lhu  a2, 8(a5)
            sw   a1, 12(a5)
            sw   a2, 16(a5)
            halt: jal x0, halt
            ",
            5,
        ),
        case(
            "branches",
            "
            lui  a5, 0x1
            addi a0, zero, -5
            addi a1, zero, 5
            blt  a0, a1, lt_taken
            addi a2, zero, 0
            jal  x0, store
            lt_taken:
            addi a2, zero, 1
            store:
            bltu a0, a1, u_taken
            addi a3, zero, 2
            jal  x0, fin
            u_taken:
            addi a3, zero, 3
            fin:
            sw   a2, 0(a5)
            sw   a3, 4(a5)
            bge  a1, a0, ge_taken
            addi a4, zero, 9
            ge_taken:
            sw   a4, 8(a5)
            halt: jal x0, halt
            ",
            3,
        ),
        case(
            "jumps_upper",
            "
            lui  a5, 0x1
            auipc a0, 0
            jal  a1, target
            addi a2, zero, 77
            target:
            sw   a0, 0(a5)
            sw   a1, 4(a5)
            addi a3, zero, 32
            jalr a4, a3, 4
            addi a2, zero, 88
            sw   a2, 8(a5)
            halt: jal x0, halt
            ",
            3,
        ),
    ]
}

/// Runs the whole compliance corpus lane-batched on a core generated
/// from the union of the cases' subsets, returning `(name, report)`
/// pairs.
///
/// # Errors
///
/// Returns the first failing case.
pub fn compliance_sweep(
    lib: &HwLibrary,
    cases: &[ComplianceCase],
    max_steps: u64,
) -> Result<Vec<(&'static str, RiscofReport)>, (&'static str, RiscofError)> {
    let subset = cases
        .iter()
        .map(|c| InstructionSubset::from_words(&c.program))
        .fold(InstructionSubset::new(), |a, b| a.union(&b));
    let rissp = Rissp::generate(lib, &subset);
    let reports = run_compliance_batched(&rissp, cases, max_steps);
    cases
        .iter()
        .zip(reports)
        .map(|(case, r)| match r {
            Ok(report) => Ok((case.name, report)),
            Err(e) => Err((case.name, e)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::riscof::run_compliance;

    #[test]
    fn generated_programs_are_deterministic_and_terminate() {
        for seed in 0..8 {
            let a = random_program(seed);
            let b = random_program(seed);
            assert_eq!(a, b, "seed {seed}");
            let image = compile(&a, OptLevel::O1).expect("compiles");
            let (_, retired) = run_reference(&image, FuzzConfig::default().max_cycles);
            assert!(retired > 0);
        }
    }

    #[test]
    fn clean_library_fuzz_finds_nothing() {
        let lib = HwLibrary::build_full();
        let cfg = FuzzConfig {
            iterations: 8,
            lanes: 8,
            ..FuzzConfig::default()
        };
        let report = differential_fuzz(&lib, &cfg);
        assert_eq!(report.programs, 8);
        assert_eq!(report.waves, 1);
        assert_eq!(report.max_wave_width, 8);
        assert!(
            report.reproducers.is_empty(),
            "clean stack diverged: {}",
            report.reproducers[0].listing
        );
    }

    #[test]
    fn batched_compliance_matches_scalar_reports() {
        let lib = HwLibrary::build_full();
        let cases = compliance_corpus();
        let swept = compliance_sweep(&lib, &cases, 100_000).unwrap();
        for (case, (name, batched)) in cases.iter().zip(&swept) {
            assert_eq!(case.name, *name);
            let subset = InstructionSubset::from_words(&case.program);
            let rissp = Rissp::generate(&lib, &subset);
            let scalar = run_compliance(
                &rissp,
                &case.program,
                case.base,
                case.sig_begin,
                case.sig_end,
                100_000,
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(&scalar, batched, "{name}");
            assert_eq!(batched.dut_cycles - 1, batched.ref_instructions, "{name}");
        }
    }

    #[test]
    fn fuzz_checkpoint_roundtrips_through_text() {
        let cfg = FuzzConfig::default();
        let mut ckpt = FuzzCheckpoint::new(&cfg);
        ckpt.waves_done = 2;
        ckpt.diverged = vec![0xf022_5f03, 0xf022_5f10];
        let parsed = FuzzCheckpoint::parse(&ckpt.render()).expect("roundtrip");
        assert_eq!(parsed, ckpt);
        assert!(parsed.matches(&cfg));
        // Every FuzzConfig field affects verdicts, so each invalidates.
        assert!(!parsed.matches(&FuzzConfig { seed: 1, ..cfg }));
        assert!(!parsed.matches(&FuzzConfig {
            opt_level: OptLevel::O3,
            ..cfg
        }));
        assert!(!parsed.matches(&FuzzConfig {
            max_cycles: 1,
            ..cfg
        }));

        assert!(FuzzCheckpoint::parse("").is_err(), "empty file");
        let good = ckpt.render();
        assert!(
            FuzzCheckpoint::parse(&good.replace("fuzz", "muzz")).is_err(),
            "wrong kind"
        );
        assert!(
            FuzzCheckpoint::parse(&good.replace("opt=-O1", "opt=-O9")).is_err(),
            "bad opt level"
        );
        assert!(
            FuzzCheckpoint::parse(&good.replace("waves_done 2", "waves_done two")).is_err(),
            "bad waves_done"
        );
    }

    #[test]
    fn interrupted_fuzz_resumes_bit_identically() {
        let lib = HwLibrary::build_full();
        let cfg = FuzzConfig {
            iterations: 12,
            lanes: 4,
            ..FuzzConfig::default()
        };
        let baseline = differential_fuzz(&lib, &cfg);
        assert_eq!(baseline.waves, 3);
        let path = std::env::temp_dir().join(format!(
            "gate-sim-fuzz-resume-{}.checkpoint",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        // One wave per invocation, reloading the checkpoint from disk
        // each time — exactly what a restarted process would see.
        let mut ckpt = FuzzCheckpoint::new(&cfg);
        let mut interruptions = 0;
        let report = loop {
            match differential_fuzz_resumable(&lib, &cfg, &mut ckpt, Some(&path), Some(1))
                .expect("checkpoint persistence")
            {
                FuzzOutcome::Complete(report) => break report,
                FuzzOutcome::Interrupted { waves_run } => {
                    assert_eq!(waves_run, 1);
                    interruptions += 1;
                    assert!(interruptions < 100, "fuzz never completes");
                    ckpt = FuzzCheckpoint::load(&path)
                        .expect("readable checkpoint")
                        .expect("checkpoint was saved");
                    assert!(ckpt.matches(&cfg));
                }
            }
        };
        assert!(interruptions >= 1, "budget never interrupted the run");
        assert_eq!(
            report, baseline,
            "resumed fuzz must be bit-identical to the uninterrupted one"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resumed_fuzz_regenerates_identical_reproducers() {
        // A sabotaged `add` writeback makes essentially every generated
        // program diverge; the point here is that reproducers are *not*
        // checkpointed — resumption regenerates them from the diverging
        // seed list — so the resumed report (listings included) must be
        // byte-identical to the uninterrupted one.
        let mut lib = HwLibrary::build_full();
        lib.replace_block(sabotage_rd_data(lib.block(riscv_isa::Mnemonic::Add)));
        let cfg = FuzzConfig {
            iterations: 2,
            lanes: 1,
            ..FuzzConfig::default()
        };
        let baseline = differential_fuzz(&lib, &cfg);
        assert!(
            !baseline.reproducers.is_empty(),
            "sabotaged add produced no divergence"
        );
        let mut ckpt = FuzzCheckpoint::new(&cfg);
        let first = differential_fuzz_resumable(&lib, &cfg, &mut ckpt, None, Some(1)).unwrap();
        assert_eq!(first, FuzzOutcome::Interrupted { waves_run: 1 });
        // Simulate the restart by rebuilding the checkpoint from text.
        let mut ckpt = FuzzCheckpoint::parse(&ckpt.render()).unwrap();
        match differential_fuzz_resumable(&lib, &cfg, &mut ckpt, None, None).unwrap() {
            FuzzOutcome::Complete(report) => assert_eq!(report, baseline),
            other => panic!("unbounded resume did not complete: {other:?}"),
        }
    }

    #[test]
    fn sabotaged_block_preserves_decode_but_breaks_writeback() {
        let lib = HwLibrary::build_full();
        let bad = sabotage_rd_data(lib.block(riscv_isa::Mnemonic::Xor));
        // Decode (sel) is untouched...
        assert!(hwlib::verify::formal_verify(&bad, 64, 1).is_err());
        // ...and the divergence is observable through the full stack.
        let mut sabotaged = lib.clone();
        sabotaged.replace_block(bad);
        let program = Program {
            functions: vec![Function {
                name: "main",
                params: 0,
                locals: 2,
                body: vec![
                    // Register-register xor: loads cannot constant-fold,
                    // so codegen must emit the sabotaged `xor`, not `xori`.
                    set(0, lw(ga("buf"))),
                    set(1, lw(add(ga("buf"), c(4)))),
                    set(0, xor(v(0), v(1))),
                    sw(ga("buf"), v(0)),
                    ret(v(0)),
                ],
            }],
            data: vec![DataObject {
                name: "buf",
                words: {
                    let mut words = vec![0; BUF_WORDS];
                    words[0] = 0x0f0f;
                    words[1] = 0x00ff;
                    words
                },
            }],
        };
        let kind = reproduces(&sabotaged, &program, OptLevel::O0, 100_000)
            .expect("sabotaged xor must diverge");
        assert!(
            !matches!(kind, DivergenceKind::DutFault(_)),
            "decode-preserving sabotage must not fault: {kind}"
        );
    }
}
