//! RISSP construction (Step 3) and gate-level execution.
//!
//! [`build_core`] stitches ModularEX with the fixed fetch unit (the 32-bit
//! PC register) exactly as Figure 3 shows.  The register file and the
//! instruction/data memories are the pre-verified fixed units outside the
//! synthesised netlist — the paper synthesises each RISSP *without* the RF
//! "to better understand the effects of the instruction subsets in the
//! hardware" (§4.2) — and [`GateLevelCpu`] attaches behavioural models of
//! them to execute real programs through the gates.

use hwlib::{ports, HwLibrary};
use netlist::compiled::CompiledSim;
use netlist::{Builder, NetId, Netlist};
use riscv_emu::{RvfiRecord, RvfiTrace, SparseMemory};
use riscv_isa::semantics::Memory as _;
use std::collections::HashMap;

use crate::modularex::build_modularex;
use crate::profile::InstructionSubset;

/// Builds the complete core netlist: ModularEX plus the fetch unit.
///
/// Interface:
/// * inputs — `insn`, `rs1_data`, `rs2_data`, `dmem_rdata`;
/// * outputs — `pc` (from the PC flip-flops) plus every ModularEX output
///   (`next_pc`, register addresses, write-back, memory command, `valid`).
///
/// # Panics
///
/// Panics if `subset` is empty.
pub fn build_core(library: &HwLibrary, subset: &InstructionSubset) -> Netlist {
    let mex = build_modularex(library, subset);
    let mut b = Builder::new();
    let insn = b.input_bus(ports::INSN, 32);
    let rs1_data = b.input_bus(ports::RS1_DATA, 32);
    let rs2_data = b.input_bus(ports::RS2_DATA, 32);
    let dmem_rdata = b.input_bus(ports::DMEM_RDATA, 32);

    // Fetch unit: the PC register (reset vector 0).
    let pc: Vec<NetId> = (0..32).map(|_| b.dff(false)).collect();

    let mut bindings: HashMap<&str, Vec<NetId>> = HashMap::new();
    bindings.insert(ports::PC, pc.clone());
    bindings.insert(ports::INSN, insn);
    bindings.insert(ports::RS1_DATA, rs1_data);
    bindings.insert(ports::RS2_DATA, rs2_data);
    bindings.insert(ports::DMEM_RDATA, dmem_rdata);
    let outs = build_modularex_into(&mut b, &mex, &bindings);

    // next_pc feeds the PC register.
    let next_pc = outs
        .iter()
        .find(|(name, _)| name == ports::NEXT_PC)
        .map(|(_, nets)| nets.clone())
        .expect("ModularEX exposes next_pc");
    for (ff, d) in pc.iter().zip(&next_pc) {
        b.connect_dff(*ff, *d);
    }

    b.output_bus("pc", &pc);
    for (name, nets) in &outs {
        b.output_bus(name, nets);
    }
    b.finish()
}

fn build_modularex_into(
    b: &mut Builder,
    mex: &Netlist,
    bindings: &HashMap<&str, Vec<NetId>>,
) -> Vec<(String, Vec<NetId>)> {
    b.import(mex, bindings)
}

/// An execution fault at gate level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The fetched instruction is not in the core's subset (`valid` was 0).
    Unsupported {
        /// PC of the faulting fetch.
        pc: u32,
        /// The raw instruction word.
        insn: u32,
    },
    /// The step budget expired before the program halted.
    StepLimit {
        /// Cycles executed.
        cycles: u64,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Unsupported { pc, insn } => {
                write!(f, "unsupported instruction {insn:#010x} at pc={pc:#010x}")
            }
            ExecError::StepLimit { cycles } => write!(f, "step limit after {cycles} cycles"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Gate-level single-cycle CPU: the synthesised core netlist driven cycle by
/// cycle, with behavioural register file and unified memory attached.
///
/// The cycle loop runs on the compiled bit-parallel backend
/// ([`CompiledSim`]): the core netlist is levelized and lowered to a flat
/// op stream once at construction, then every fetch/decode/execute settle
/// is a dense, branch-predictable sweep instead of a `match` per gate.
#[derive(Debug, Clone)]
pub struct GateLevelCpu {
    sim: CompiledSim,
    rf: [u32; riscv_isa::REG_COUNT],
    mem: SparseMemory,
    cycles: u64,
    trace: Option<RvfiTrace>,
}

impl GateLevelCpu {
    /// Creates a CPU over `rissp`'s core with the PC forced to `entry`.
    pub fn new(rissp: &crate::Rissp, entry: u32) -> GateLevelCpu {
        let mut sim = CompiledSim::new(&rissp.core);
        let pc_port = rissp
            .core
            .output("pc")
            .expect("core exposes pc")
            .nets
            .clone();
        for (i, net) in pc_port.iter().enumerate() {
            sim.set_ff(*net, (entry >> i) & 1 == 1);
        }
        GateLevelCpu {
            sim,
            rf: [0; riscv_isa::REG_COUNT],
            mem: SparseMemory::new(),
            cycles: 0,
            trace: None,
        }
    }

    /// Enables RVFI trace capture.
    pub fn enable_trace(&mut self) {
        self.trace = Some(RvfiTrace::default());
    }

    /// Takes the captured RVFI trace, leaving capture enabled.
    pub fn take_trace(&mut self) -> RvfiTrace {
        self.trace.replace(RvfiTrace::default()).unwrap_or_default()
    }

    /// Copies a binary image into unified memory.
    pub fn load_words(&mut self, base: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.mem.store_word(base + (i as u32) * 4, w);
        }
    }

    /// Reads an architectural register.
    pub fn reg(&self, index: usize) -> u32 {
        self.rf[index]
    }

    /// Writes an architectural register (x0 writes are ignored).
    pub fn set_reg(&mut self, index: usize, value: u32) {
        if index != 0 {
            self.rf[index] = value;
        }
    }

    /// The unified instruction/data memory.
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// Mutable access to the unified memory.
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }

    /// Cycles executed (equals retired instructions: the core is
    /// single-cycle, CPI = 1).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The gate-level simulation backend (for activity/power extraction).
    pub fn sim(&self) -> &CompiledSim {
        &self.sim
    }

    /// The current PC (settles the netlist to read the flops).
    pub fn pc(&mut self) -> u32 {
        self.sim.eval();
        self.sim.get_bus("pc")
    }

    /// Executes one cycle through the gates.
    ///
    /// Returns `Ok(true)` when the instruction jumped to itself (the halt
    /// convention).
    ///
    /// # Errors
    ///
    /// [`ExecError::Unsupported`] when the fetched word is outside the
    /// subset (the core's `valid` output is low).
    pub fn step(&mut self) -> Result<bool, ExecError> {
        // Phase 0: settle to read the PC flops.
        self.sim.eval();
        let pc = self.sim.get_bus("pc");
        // Phase 1: instruction fetch (combinational IMEM read).
        let insn = self.mem.load_word(pc);
        self.sim.set_bus(ports::INSN, insn);
        self.sim.eval();
        // Phase 2: register file read (combinational RF read).
        let rs1_addr = self.sim.get_bus(ports::RS1_ADDR) as usize;
        let rs2_addr = self.sim.get_bus(ports::RS2_ADDR) as usize;
        let rs1_data = self.rf[rs1_addr];
        let rs2_data = self.rf[rs2_addr];
        self.sim.set_bus(ports::RS1_DATA, rs1_data);
        self.sim.set_bus(ports::RS2_DATA, rs2_data);
        self.sim.eval();
        // Phase 3: data memory read (combinational DMEM read).
        let dmem_re = self.sim.get_bus(ports::DMEM_RE) != 0;
        let dmem_addr = self.sim.get_bus(ports::DMEM_ADDR);
        let rdata = if dmem_re {
            self.mem.load_word(dmem_addr)
        } else {
            0
        };
        self.sim.set_bus(ports::DMEM_RDATA, rdata);
        self.sim.eval();

        if self.sim.get_bus("valid") == 0 {
            return Err(ExecError::Unsupported { pc, insn });
        }

        // Commit: memory write, register write-back, PC update.
        let wmask = self.sim.get_bus(ports::DMEM_WMASK) as u8;
        let wdata = self.sim.get_bus(ports::DMEM_WDATA);
        let addr = self.sim.get_bus(ports::DMEM_ADDR);
        if wmask != 0 {
            self.mem.write_word(addr, wdata, wmask);
        }
        let rd_we = self.sim.get_bus(ports::RD_WE) != 0;
        let rd_addr = self.sim.get_bus(ports::RD_ADDR) as usize;
        let rd_data = self.sim.get_bus(ports::RD_DATA);
        if rd_we {
            self.set_reg(rd_addr, rd_data);
        }
        let next_pc = self.sim.get_bus(ports::NEXT_PC);
        if let Some(trace) = &mut self.trace {
            trace.push(RvfiRecord {
                pc,
                insn,
                rs1_addr: rs1_addr as u8,
                rs2_addr: rs2_addr as u8,
                rs1_data,
                rs2_data,
                rd_addr: rd_addr as u8,
                rd_wdata: rd_data,
                rd_we,
                next_pc,
                mem_addr: addr,
                mem_rdata: rdata,
                mem_wdata: wdata,
                mem_wmask: wmask,
            });
        }
        self.sim.step();
        self.cycles += 1;
        Ok(next_pc == pc)
    }

    /// Runs until halt (self-loop) or the cycle budget expires.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError::Unsupported`]; returns
    /// [`ExecError::StepLimit`] if the budget expires.
    pub fn run(&mut self, max_cycles: u64) -> Result<u64, ExecError> {
        for _ in 0..max_cycles {
            if self.step()? {
                return Ok(self.cycles);
            }
        }
        Err(ExecError::StepLimit {
            cycles: self.cycles,
        })
    }

    /// Reads the RISCOF-style signature region `[begin, end)`.
    pub fn signature(&self, begin: u32, end: u32) -> Vec<u32> {
        (begin..end)
            .step_by(4)
            .map(|a| self.mem.load_word(a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rissp;
    use riscv_isa::asm;

    fn cpu_for(program: &str) -> (GateLevelCpu, Vec<u32>) {
        let words = asm::assemble(&asm::parse(program).unwrap(), 0).unwrap();
        let subset = InstructionSubset::from_words(&words);
        let lib = HwLibrary::build_full();
        let rissp = Rissp::generate(&lib, &subset);
        let mut cpu = GateLevelCpu::new(&rissp, 0);
        cpu.load_words(0, &words);
        (cpu, words)
    }

    #[test]
    fn gate_level_arithmetic_program() {
        let (mut cpu, _) = cpu_for(
            "
            addi a0, zero, 10
            addi a1, zero, 3
            sub  a2, a0, a1
            xor  a3, a0, a1
            halt: jal x0, halt
            ",
        );
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(12), 7);
        assert_eq!(cpu.reg(13), 9);
        assert_eq!(cpu.cycles(), 5); // 4 instructions + the halting jal
    }

    #[test]
    fn gate_level_memory_and_branches() {
        let (mut cpu, _) = cpu_for(
            "
            addi a0, zero, 5     # n
            addi a1, zero, 0     # sum
            loop:
            beq  a0, zero, done
            add  a1, a1, a0
            addi a0, a0, -1
            jal  x0, loop
            done:
            sw   a1, 0x100(zero)
            halt: jal x0, halt
            ",
        );
        cpu.run(1000).unwrap();
        assert_eq!(cpu.reg(11), 15);
        assert_eq!(cpu.memory().load_word(0x100), 15);
    }

    #[test]
    fn unsupported_instruction_faults() {
        let lib = HwLibrary::build_full();
        let subset: InstructionSubset = [riscv_isa::Mnemonic::Addi, riscv_isa::Mnemonic::Jal]
            .into_iter()
            .collect();
        let rissp = Rissp::generate(&lib, &subset);
        let mut cpu = GateLevelCpu::new(&rissp, 0);
        // `xor` is not in the subset.
        let words = asm::assemble(
            &asm::parse("addi a0, zero, 1\nxor a0, a0, a0\nhalt: jal x0, halt").unwrap(),
            0,
        )
        .unwrap();
        cpu.load_words(0, &words);
        let err = cpu.run(10).unwrap_err();
        assert!(matches!(err, ExecError::Unsupported { pc: 4, .. }), "{err}");
    }

    #[test]
    fn entry_point_is_respected() {
        let words = asm::assemble(
            &asm::parse("addi a0, zero, 9\nhalt: jal x0, halt").unwrap(),
            0x200,
        )
        .unwrap();
        let subset = InstructionSubset::from_words(&words);
        let lib = HwLibrary::build_full();
        let rissp = Rissp::generate(&lib, &subset);
        let mut cpu = GateLevelCpu::new(&rissp, 0x200);
        cpu.load_words(0x200, &words);
        assert_eq!(cpu.pc(), 0x200);
        cpu.run(10).unwrap();
        assert_eq!(cpu.reg(10), 9);
    }
}
