//! RISSP construction (Step 3) and gate-level execution.
//!
//! [`build_core`] stitches ModularEX with the fixed fetch unit (the 32-bit
//! PC register) exactly as Figure 3 shows.  The register file and the
//! instruction/data memories are the pre-verified fixed units outside the
//! synthesised netlist — the paper synthesises each RISSP *without* the RF
//! "to better understand the effects of the instruction subsets in the
//! hardware" (§4.2) — and [`GateLevelCpu`] attaches behavioural models of
//! them to execute real programs through the gates.
//!
//! [`BatchedGateLevelCpu`] is the lane-parallel variant: one compiled core
//! simulation with up to 512 stimulus lanes (K-word lane blocks), one independent program per
//! lane, each lane carrying its own behavioural register file, memory, PC
//! and halt state. Per-lane architectural results are bit-identical to the
//! corresponding scalar [`GateLevelCpu`] runs, and merged toggle counts are
//! their exact sum (`docs/simulation.md` § "Toggle accounting").

use hwlib::{ports, HwLibrary};
use netlist::compiled::{CompiledSim, EvalPolicy, MAX_TOTAL_LANES};
use netlist::{Builder, NetId, Netlist};
use riscv_emu::{RvfiRecord, RvfiTrace, SparseMemory};
use riscv_isa::semantics::Memory as _;
use std::collections::HashMap;
use std::sync::Arc;

use crate::modularex::build_modularex;
use crate::profile::InstructionSubset;

/// Builds the complete core netlist: ModularEX plus the fetch unit.
///
/// Interface:
/// * inputs — `insn`, `rs1_data`, `rs2_data`, `dmem_rdata`;
/// * outputs — `pc` (from the PC flip-flops) plus every ModularEX output
///   (`next_pc`, register addresses, write-back, memory command, `valid`).
///
/// # Panics
///
/// Panics if `subset` is empty.
pub fn build_core(library: &HwLibrary, subset: &InstructionSubset) -> Netlist {
    let mex = build_modularex(library, subset);
    let mut b = Builder::new();
    let insn = b.input_bus(ports::INSN, 32);
    let rs1_data = b.input_bus(ports::RS1_DATA, 32);
    let rs2_data = b.input_bus(ports::RS2_DATA, 32);
    let dmem_rdata = b.input_bus(ports::DMEM_RDATA, 32);

    // Fetch unit: the PC register (reset vector 0).
    let pc: Vec<NetId> = (0..32).map(|_| b.dff(false)).collect();

    let mut bindings: HashMap<&str, Vec<NetId>> = HashMap::new();
    bindings.insert(ports::PC, pc.clone());
    bindings.insert(ports::INSN, insn);
    bindings.insert(ports::RS1_DATA, rs1_data);
    bindings.insert(ports::RS2_DATA, rs2_data);
    bindings.insert(ports::DMEM_RDATA, dmem_rdata);
    let outs = build_modularex_into(&mut b, &mex, &bindings);

    // next_pc feeds the PC register.
    let next_pc = outs
        .iter()
        .find(|(name, _)| name == ports::NEXT_PC)
        .map(|(_, nets)| nets.clone())
        .expect("ModularEX exposes next_pc");
    for (ff, d) in pc.iter().zip(&next_pc) {
        b.connect_dff(*ff, *d);
    }

    b.output_bus("pc", &pc);
    for (name, nets) in &outs {
        b.output_bus(name, nets);
    }
    b.finish()
}

fn build_modularex_into(
    b: &mut Builder,
    mex: &Netlist,
    bindings: &HashMap<&str, Vec<NetId>>,
) -> Vec<(String, Vec<NetId>)> {
    b.import(mex, bindings)
}

/// An execution fault at gate level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The fetched instruction is not in the core's subset (`valid` was 0).
    Unsupported {
        /// PC of the faulting fetch.
        pc: u32,
        /// The raw instruction word.
        insn: u32,
    },
    /// The step budget expired before the program halted.
    StepLimit {
        /// Cycles executed.
        cycles: u64,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Unsupported { pc, insn } => {
                write!(f, "unsupported instruction {insn:#010x} at pc={pc:#010x}")
            }
            ExecError::StepLimit { cycles } => write!(f, "step limit after {cycles} cycles"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Gate-level single-cycle CPU: the synthesised core netlist driven cycle by
/// cycle, with behavioural register file and unified memory attached.
///
/// The cycle loop runs on the compiled bit-parallel backend
/// ([`CompiledSim`]): the core netlist is levelized and lowered to a flat
/// op stream once at construction, then every fetch/decode/execute settle
/// is a dense, branch-predictable sweep instead of a `match` per gate.
#[derive(Debug, Clone)]
pub struct GateLevelCpu {
    sim: CompiledSim,
    rf: [u32; riscv_isa::REG_COUNT],
    mem: SparseMemory,
    cycles: u64,
    trace: Option<RvfiTrace>,
}

impl GateLevelCpu {
    /// Creates a CPU over `rissp`'s core with the PC forced to `entry`.
    pub fn new(rissp: &crate::Rissp, entry: u32) -> GateLevelCpu {
        GateLevelCpu::with_core_arc(Arc::new(rissp.core.clone()), entry)
    }

    /// Like [`GateLevelCpu::new`] but over a shared core netlist handle:
    /// constructing many CPUs from one core (e.g. a bench loop, or a
    /// characterisation sweep) compiles each time but never re-clones the
    /// gate arena.
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not expose the core's `pc` output port.
    pub fn with_core_arc(core: Arc<Netlist>, entry: u32) -> GateLevelCpu {
        let pc_port = core.output("pc").expect("core exposes pc").nets.clone();
        let mut sim = CompiledSim::new_arc(core);
        for (i, net) in pc_port.iter().enumerate() {
            sim.set_ff(*net, (entry >> i) & 1 == 1);
        }
        GateLevelCpu {
            sim,
            rf: [0; riscv_isa::REG_COUNT],
            mem: SparseMemory::new(),
            cycles: 0,
            trace: None,
        }
    }

    /// Enables RVFI trace capture.
    pub fn enable_trace(&mut self) {
        self.trace = Some(RvfiTrace::default());
    }

    /// Takes the captured RVFI trace, leaving capture enabled.
    pub fn take_trace(&mut self) -> RvfiTrace {
        self.trace.replace(RvfiTrace::default()).unwrap_or_default()
    }

    /// Copies a binary image into unified memory.
    pub fn load_words(&mut self, base: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.mem.store_word(base + (i as u32) * 4, w);
        }
    }

    /// Reads an architectural register.
    pub fn reg(&self, index: usize) -> u32 {
        self.rf[index]
    }

    /// Writes an architectural register (x0 writes are ignored).
    pub fn set_reg(&mut self, index: usize, value: u32) {
        if index != 0 {
            self.rf[index] = value;
        }
    }

    /// The unified instruction/data memory.
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// Mutable access to the unified memory.
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }

    /// Cycles executed (equals retired instructions: the core is
    /// single-cycle, CPI = 1).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The gate-level simulation backend (for activity/power extraction).
    pub fn sim(&self) -> &CompiledSim {
        &self.sim
    }

    /// Selects the core simulation's intra-settle parallelism
    /// ([`EvalPolicy`]). Purely a performance knob — architectural state,
    /// cycle counts, and exact toggle counts are bit-identical for every
    /// policy; on small cores the widest-level cap usually keeps the
    /// settle sequential anyway. Parallel settles run on the persistent
    /// worker pool, whose spin-then-park workers stay hot across the
    /// back-to-back settles of a cycle loop — the cost of asking for
    /// threads is a few atomics per settle, not a thread spawn.
    pub fn set_eval_policy(&mut self, policy: EvalPolicy) {
        self.sim.set_eval_policy(policy);
    }

    /// The current PC (settles the netlist to read the flops).
    pub fn pc(&mut self) -> u32 {
        self.sim.eval();
        self.sim.get_bus("pc")
    }

    /// Executes one cycle through the gates.
    ///
    /// Returns `Ok(true)` when the instruction jumped to itself (the halt
    /// convention).
    ///
    /// # Errors
    ///
    /// [`ExecError::Unsupported`] when the fetched word is outside the
    /// subset (the core's `valid` output is low).
    pub fn step(&mut self) -> Result<bool, ExecError> {
        // Phase 0: settle to read the PC flops.
        self.sim.eval();
        let pc = self.sim.get_bus("pc");
        // Phase 1: instruction fetch (combinational IMEM read).
        let insn = self.mem.load_word(pc);
        self.sim.set_bus(ports::INSN, insn);
        self.sim.eval();
        // Phase 2: register file read (combinational RF read).
        let rs1_addr = self.sim.get_bus(ports::RS1_ADDR) as usize;
        let rs2_addr = self.sim.get_bus(ports::RS2_ADDR) as usize;
        let rs1_data = self.rf[rs1_addr];
        let rs2_data = self.rf[rs2_addr];
        self.sim.set_bus(ports::RS1_DATA, rs1_data);
        self.sim.set_bus(ports::RS2_DATA, rs2_data);
        self.sim.eval();
        // Phase 3: data memory read (combinational DMEM read).
        let dmem_re = self.sim.get_bus(ports::DMEM_RE) != 0;
        let dmem_addr = self.sim.get_bus(ports::DMEM_ADDR);
        let rdata = if dmem_re {
            self.mem.load_word(dmem_addr)
        } else {
            0
        };
        self.sim.set_bus(ports::DMEM_RDATA, rdata);
        self.sim.eval();

        if self.sim.get_bus("valid") == 0 {
            return Err(ExecError::Unsupported { pc, insn });
        }

        // Commit: memory write, register write-back, PC update.
        let wmask = self.sim.get_bus(ports::DMEM_WMASK) as u8;
        let wdata = self.sim.get_bus(ports::DMEM_WDATA);
        let addr = self.sim.get_bus(ports::DMEM_ADDR);
        if wmask != 0 {
            self.mem.write_word(addr, wdata, wmask);
        }
        let rd_we = self.sim.get_bus(ports::RD_WE) != 0;
        let rd_addr = self.sim.get_bus(ports::RD_ADDR) as usize;
        let rd_data = self.sim.get_bus(ports::RD_DATA);
        if rd_we {
            self.set_reg(rd_addr, rd_data);
        }
        let next_pc = self.sim.get_bus(ports::NEXT_PC);
        if let Some(trace) = &mut self.trace {
            trace.push(RvfiRecord {
                pc,
                insn,
                rs1_addr: rs1_addr as u8,
                rs2_addr: rs2_addr as u8,
                rs1_data,
                rs2_data,
                rd_addr: rd_addr as u8,
                rd_wdata: rd_data,
                rd_we,
                next_pc,
                mem_addr: addr,
                mem_rdata: rdata,
                mem_wdata: wdata,
                mem_wmask: wmask,
            });
        }
        self.sim.step();
        self.cycles += 1;
        Ok(next_pc == pc)
    }

    /// Runs until halt (self-loop) or the cycle budget expires.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError::Unsupported`]; returns
    /// [`ExecError::StepLimit`] if the budget expires.
    pub fn run(&mut self, max_cycles: u64) -> Result<u64, ExecError> {
        for _ in 0..max_cycles {
            if self.step()? {
                return Ok(self.cycles);
            }
        }
        Err(ExecError::StepLimit {
            cycles: self.cycles,
        })
    }

    /// Reads the RISCOF-style signature region `[begin, end)`.
    pub fn signature(&self, begin: u32, end: u32) -> Vec<u32> {
        (begin..end)
            .step_by(4)
            .map(|a| self.mem.load_word(a))
            .collect()
    }
}

/// Per-lane execution status of a [`BatchedGateLevelCpu`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum LaneState {
    /// Still fetching and committing instructions.
    Running,
    /// Reached the self-loop halt convention.
    Halted,
    /// Faulted (instruction outside the subset); no further commits.
    Faulted(ExecError),
}

/// Lane-parallel gate-level CPU: one compiled core simulation, up to 512
/// independent programs — one per stimulus lane of a K-word lane block —
/// each with its own
/// behavioural register file, unified memory, PC and halt state.
///
/// Every lane follows the exact phase schedule of the scalar
/// [`GateLevelCpu`] (settle → fetch → RF read → DMEM read → commit →
/// clock edge), so per-lane architectural state is bit-identical to a
/// scalar run of the same program on the same core, and — for runs where
/// no lane faults — the merged toggle counts equal the exact sum of the
/// scalar runs' counts, which is what makes `bench`'s batched activity
/// characterisation exact.
///
/// Lanes that halt keep re-executing their self-loop jump (stable inputs,
/// so they contribute no further switching). Lanes that fault stop
/// committing architectural state and have their PC pinned back to the
/// faulting address every cycle, so they too settle to a stable, non-
/// switching state; the settles around the fault itself can still add a
/// few toggles a scalar run (which stops before the clock edge) would
/// not, so exact scalar-sum accounting is only guaranteed fault-free.
#[derive(Debug, Clone)]
pub struct BatchedGateLevelCpu {
    sim: CompiledSim,
    lanes: usize,
    rf: Vec<[u32; riscv_isa::REG_COUNT]>,
    mem: Vec<SparseMemory>,
    cycles: Vec<u64>,
    state: Vec<LaneState>,
    /// The PC flip-flop nets, kept for per-lane re-pinning after a fault.
    pc_nets: Vec<NetId>,
    // Per-lane phase buffers, preallocated so the cycle loop never
    // allocates: fetched PCs, the insn/rdata word being driven, and the
    // two register-file read ports.
    pcs: Vec<u32>,
    words: Vec<u64>,
    rs1: Vec<u64>,
    rs2: Vec<u64>,
}

impl BatchedGateLevelCpu {
    /// Creates a batched CPU over `rissp`'s core with one lane per entry
    /// point in `entries` (lane `l` starts at `entries[l]`).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or holds more than
    /// [`MAX_TOTAL_LANES`] lanes.
    pub fn new(rissp: &crate::Rissp, entries: &[u32]) -> BatchedGateLevelCpu {
        BatchedGateLevelCpu::with_core_arc(Arc::new(rissp.core.clone()), entries)
    }

    /// Like [`BatchedGateLevelCpu::new`] but over a shared core netlist
    /// handle (no deep clone of the gate arena per construction).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty, holds more than [`MAX_TOTAL_LANES`]
    /// lanes, or the netlist does not expose the core's `pc` output port.
    pub fn with_core_arc(core: Arc<Netlist>, entries: &[u32]) -> BatchedGateLevelCpu {
        assert!(
            (1..=MAX_TOTAL_LANES).contains(&entries.len()),
            "lane count must be in 1..={MAX_TOTAL_LANES}, got {}",
            entries.len()
        );
        let lanes = entries.len();
        let pc_nets = core.output("pc").expect("core exposes pc").nets.clone();
        let mut sim = CompiledSim::with_lanes_arc(core, lanes);
        for (lane, &entry) in entries.iter().enumerate() {
            for (i, net) in pc_nets.iter().enumerate() {
                sim.set_ff_lane(*net, lane, (entry >> i) & 1 == 1);
            }
        }
        BatchedGateLevelCpu {
            sim,
            lanes,
            rf: vec![[0; riscv_isa::REG_COUNT]; lanes],
            mem: vec![SparseMemory::new(); lanes],
            cycles: vec![0; lanes],
            state: vec![LaneState::Running; lanes],
            pc_nets,
            pcs: vec![0; lanes],
            words: vec![0; lanes],
            rs1: vec![0; lanes],
            rs2: vec![0; lanes],
        }
    }

    /// Number of stimulus lanes (programs) in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Copies a binary image into one lane's unified memory.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes()`.
    pub fn load_words(&mut self, lane: usize, base: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.mem[lane].store_word(base + (i as u32) * 4, w);
        }
    }

    /// Reads an architectural register of one lane.
    pub fn reg(&self, lane: usize, index: usize) -> u32 {
        self.rf[lane][index]
    }

    /// One lane's unified instruction/data memory.
    pub fn memory(&self, lane: usize) -> &SparseMemory {
        &self.mem[lane]
    }

    /// Instructions retired by one lane (CPI = 1 on the single-cycle core).
    pub fn cycles(&self, lane: usize) -> u64 {
        self.cycles[lane]
    }

    /// Total committed cycles summed over lanes. This is the denominator
    /// that makes merged activity comparable with scalar runs: lanes that
    /// halt early stop contributing cycles (their idle self-loop also adds
    /// no toggles), so `total_toggles / (gates * committed_cycles())`
    /// equals the cycle-weighted average of the per-lane scalar α values
    /// instead of being diluted by idle tails.
    pub fn committed_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// The shared gate-level simulation (for merged activity extraction).
    pub fn sim(&self) -> &CompiledSim {
        &self.sim
    }

    /// Selects the batched core simulation's intra-settle parallelism
    /// ([`EvalPolicy`]): each fetch/decode/execute settle splits its
    /// wide levels across the policy's worker threads on the persistent
    /// worker pool (workers stay hot between consecutive settles of the
    /// run loop). Purely a performance knob — per-lane architectural
    /// state and exact toggle counts are bit-identical for every policy.
    pub fn set_eval_policy(&mut self, policy: EvalPolicy) {
        self.sim.set_eval_policy(policy);
    }

    /// True when no lane is still running.
    pub fn all_done(&self) -> bool {
        self.state.iter().all(|s| *s != LaneState::Running)
    }

    /// Executes one cycle on every lane through the shared gates.
    pub fn step(&mut self) {
        // Phase 0: settle to read every lane's PC flops.
        self.sim.eval();
        for l in 0..self.lanes {
            self.pcs[l] = self.sim.get_bus_lane("pc", l) as u32;
        }
        // Phase 1: per-lane instruction fetch (combinational IMEM read).
        for l in 0..self.lanes {
            self.words[l] = self.mem[l].load_word(self.pcs[l]) as u64;
        }
        self.sim.set_bus_lanes(ports::INSN, &self.words);
        self.sim.eval();
        // Phase 2: per-lane register file read.
        for l in 0..self.lanes {
            let rs1_addr = self.sim.get_bus_lane(ports::RS1_ADDR, l) as usize;
            let rs2_addr = self.sim.get_bus_lane(ports::RS2_ADDR, l) as usize;
            self.rs1[l] = self.rf[l][rs1_addr] as u64;
            self.rs2[l] = self.rf[l][rs2_addr] as u64;
        }
        self.sim.set_bus_lanes(ports::RS1_DATA, &self.rs1);
        self.sim.set_bus_lanes(ports::RS2_DATA, &self.rs2);
        self.sim.eval();
        // Phase 3: per-lane data memory read.
        for l in 0..self.lanes {
            let re = self.sim.get_bus_lane(ports::DMEM_RE, l) != 0;
            let addr = self.sim.get_bus_lane(ports::DMEM_ADDR, l) as u32;
            self.words[l] = if re {
                self.mem[l].load_word(addr) as u64
            } else {
                0
            };
        }
        self.sim.set_bus_lanes(ports::DMEM_RDATA, &self.words);
        self.sim.eval();

        // Commit per running lane: memory write, write-back, halt detection.
        for l in 0..self.lanes {
            let pc = self.pcs[l];
            if self.state[l] != LaneState::Running {
                continue;
            }
            if self.sim.get_bus_lane("valid", l) == 0 {
                self.state[l] = LaneState::Faulted(ExecError::Unsupported {
                    pc,
                    insn: self.mem[l].load_word(pc),
                });
                continue;
            }
            let wmask = self.sim.get_bus_lane(ports::DMEM_WMASK, l) as u8;
            if wmask != 0 {
                let addr = self.sim.get_bus_lane(ports::DMEM_ADDR, l) as u32;
                let wdata = self.sim.get_bus_lane(ports::DMEM_WDATA, l) as u32;
                self.mem[l].write_word(addr, wdata, wmask);
            }
            if self.sim.get_bus_lane(ports::RD_WE, l) != 0 {
                let rd_addr = self.sim.get_bus_lane(ports::RD_ADDR, l) as usize;
                if rd_addr != 0 {
                    self.rf[l][rd_addr] = self.sim.get_bus_lane(ports::RD_DATA, l) as u32;
                }
            }
            self.cycles[l] += 1;
            let next_pc = self.sim.get_bus_lane(ports::NEXT_PC, l) as u32;
            if next_pc == pc {
                self.state[l] = LaneState::Halted;
            }
        }
        self.sim.step();
        // Pin every faulted lane's PC flops back to the faulting address:
        // the lane then re-fetches the same word forever (like a halted
        // lane's self-loop) instead of wandering through memory and
        // polluting the merged toggle counts.
        for l in 0..self.lanes {
            if let LaneState::Faulted(ExecError::Unsupported { pc, .. }) = self.state[l] {
                for (i, net) in self.pc_nets.iter().enumerate() {
                    self.sim.set_ff_lane(*net, l, (pc >> i) & 1 == 1);
                }
            }
        }
    }

    /// Runs until every lane has halted or faulted, or `max_cycles` global
    /// cycles elapse, and returns each lane's outcome: retired instructions
    /// on a clean halt, [`ExecError::Unsupported`] on a subset fault, or
    /// [`ExecError::StepLimit`] if the budget expired first.
    pub fn run(&mut self, max_cycles: u64) -> Vec<Result<u64, ExecError>> {
        for _ in 0..max_cycles {
            if self.all_done() {
                break;
            }
            self.step();
        }
        self.state
            .iter()
            .enumerate()
            .map(|(l, s)| match s {
                LaneState::Halted => Ok(self.cycles[l]),
                LaneState::Faulted(e) => Err(e.clone()),
                LaneState::Running => Err(ExecError::StepLimit {
                    cycles: self.cycles[l],
                }),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rissp;
    use riscv_isa::asm;

    fn cpu_for(program: &str) -> (GateLevelCpu, Vec<u32>) {
        let words = asm::assemble(&asm::parse(program).unwrap(), 0).unwrap();
        let subset = InstructionSubset::from_words(&words);
        let lib = HwLibrary::build_full();
        let rissp = Rissp::generate(&lib, &subset);
        let mut cpu = GateLevelCpu::new(&rissp, 0);
        cpu.load_words(0, &words);
        (cpu, words)
    }

    #[test]
    fn gate_level_arithmetic_program() {
        let (mut cpu, _) = cpu_for(
            "
            addi a0, zero, 10
            addi a1, zero, 3
            sub  a2, a0, a1
            xor  a3, a0, a1
            halt: jal x0, halt
            ",
        );
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(12), 7);
        assert_eq!(cpu.reg(13), 9);
        assert_eq!(cpu.cycles(), 5); // 4 instructions + the halting jal
    }

    #[test]
    fn gate_level_memory_and_branches() {
        let (mut cpu, _) = cpu_for(
            "
            addi a0, zero, 5     # n
            addi a1, zero, 0     # sum
            loop:
            beq  a0, zero, done
            add  a1, a1, a0
            addi a0, a0, -1
            jal  x0, loop
            done:
            sw   a1, 0x100(zero)
            halt: jal x0, halt
            ",
        );
        cpu.run(1000).unwrap();
        assert_eq!(cpu.reg(11), 15);
        assert_eq!(cpu.memory().load_word(0x100), 15);
    }

    #[test]
    fn unsupported_instruction_faults() {
        let lib = HwLibrary::build_full();
        let subset: InstructionSubset = [riscv_isa::Mnemonic::Addi, riscv_isa::Mnemonic::Jal]
            .into_iter()
            .collect();
        let rissp = Rissp::generate(&lib, &subset);
        let mut cpu = GateLevelCpu::new(&rissp, 0);
        // `xor` is not in the subset.
        let words = asm::assemble(
            &asm::parse("addi a0, zero, 1\nxor a0, a0, a0\nhalt: jal x0, halt").unwrap(),
            0,
        )
        .unwrap();
        cpu.load_words(0, &words);
        let err = cpu.run(10).unwrap_err();
        assert!(matches!(err, ExecError::Unsupported { pc: 4, .. }), "{err}");
    }

    #[test]
    fn batched_lanes_match_scalar_runs_exactly() {
        // Two different programs share one core (union subset), one lane
        // each; both architectural state and merged toggle counts must be
        // bit-identical to the two scalar runs.
        let prog_a = "
            addi a0, zero, 10
            addi a1, zero, 3
            sub  a2, a0, a1
            xor  a3, a0, a1
            halt: jal x0, halt
            ";
        let prog_b = "
            addi a0, zero, 5
            addi a1, zero, 0
            loop:
            beq  a0, zero, done
            add  a1, a1, a0
            addi a0, a0, -1
            jal  x0, loop
            done:
            sw   a1, 0x100(zero)
            halt: jal x0, halt
            ";
        let words_a = asm::assemble(&asm::parse(prog_a).unwrap(), 0).unwrap();
        let words_b = asm::assemble(&asm::parse(prog_b).unwrap(), 0).unwrap();
        let union: Vec<u32> = words_a.iter().chain(&words_b).copied().collect();
        let subset = InstructionSubset::from_words(&union);
        let lib = HwLibrary::build_full();
        let rissp = Rissp::generate(&lib, &subset);

        let scalar = |words: &[u32]| {
            let mut cpu = GateLevelCpu::new(&rissp, 0);
            cpu.load_words(0, words);
            let cycles = cpu.run(1000).unwrap();
            (cycles, cpu)
        };
        let (cycles_a, cpu_a) = scalar(&words_a);
        let (cycles_b, cpu_b) = scalar(&words_b);

        let mut batch = BatchedGateLevelCpu::new(&rissp, &[0, 0]);
        batch.load_words(0, 0, &words_a);
        batch.load_words(1, 0, &words_b);
        let results = batch.run(1000);
        assert_eq!(results[0].as_ref().unwrap(), &cycles_a);
        assert_eq!(results[1].as_ref().unwrap(), &cycles_b);
        for r in 10..14 {
            assert_eq!(batch.reg(0, r), cpu_a.reg(r), "lane 0 x{r}");
            assert_eq!(batch.reg(1, r), cpu_b.reg(r), "lane 1 x{r}");
        }
        assert_eq!(batch.memory(1).load_word(0x100), 15);
        // Exact toggle accounting: lanes are independent, so the merged
        // per-net counts are the sum of the scalar runs' counts (halted
        // lanes re-execute their stable self-loop and add nothing).
        let merged: Vec<u64> = cpu_a
            .sim()
            .toggles()
            .iter()
            .zip(cpu_b.sim().toggles())
            .map(|(&a, &b)| a + b)
            .collect();
        assert_eq!(batch.sim().toggles(), &merged[..]);
    }

    #[test]
    fn batched_lane_fault_is_isolated() {
        let lib = HwLibrary::build_full();
        let subset: InstructionSubset = [riscv_isa::Mnemonic::Addi, riscv_isa::Mnemonic::Jal]
            .into_iter()
            .collect();
        let rissp = Rissp::generate(&lib, &subset);
        let good = asm::assemble(
            &asm::parse("addi a0, zero, 7\nhalt: jal x0, halt").unwrap(),
            0,
        )
        .unwrap();
        // `xor` is outside the subset: lane 1 faults at pc 4.
        let bad = asm::assemble(
            &asm::parse("addi a0, zero, 1\nxor a0, a0, a0\nhalt: jal x0, halt").unwrap(),
            0,
        )
        .unwrap();
        let mut batch = BatchedGateLevelCpu::new(&rissp, &[0, 0]);
        batch.load_words(0, 0, &good);
        batch.load_words(1, 0, &bad);
        let results = batch.run(100);
        assert_eq!(results[0], Ok(2));
        assert!(
            matches!(results[1], Err(ExecError::Unsupported { pc: 4, .. })),
            "{:?}",
            results[1]
        );
        // The healthy lane's state is untouched by the faulting one.
        assert_eq!(batch.reg(0, 10), 7);
        // Once every lane is halted or faulted (and the faulted lane's PC
        // is pinned), the whole batch is stable: further cycles add no
        // switching, so a fault cannot pollute activity without bound.
        batch.step();
        let settled: u64 = batch.sim().toggles().iter().sum();
        for _ in 0..5 {
            batch.step();
        }
        assert_eq!(batch.sim().toggles().iter().sum::<u64>(), settled);
    }

    #[test]
    fn batched_entry_points_are_per_lane() {
        let words = asm::assemble(
            &asm::parse("addi a0, zero, 9\nhalt: jal x0, halt").unwrap(),
            0x200,
        )
        .unwrap();
        let subset = InstructionSubset::from_words(&words);
        let lib = HwLibrary::build_full();
        let rissp = Rissp::generate(&lib, &subset);
        let mut batch = BatchedGateLevelCpu::new(&rissp, &[0x200, 0x200]);
        for lane in 0..2 {
            batch.load_words(lane, 0x200, &words);
        }
        let results = batch.run(10);
        assert!(results.iter().all(|r| r.is_ok()), "{results:?}");
        assert_eq!(batch.reg(0, 10), 9);
        assert_eq!(batch.reg(1, 10), 9);
    }

    #[test]
    fn entry_point_is_respected() {
        let words = asm::assemble(
            &asm::parse("addi a0, zero, 9\nhalt: jal x0, halt").unwrap(),
            0x200,
        )
        .unwrap();
        let subset = InstructionSubset::from_words(&words);
        let lib = HwLibrary::build_full();
        let rissp = Rissp::generate(&lib, &subset);
        let mut cpu = GateLevelCpu::new(&rissp, 0x200);
        cpu.load_words(0x200, &words);
        assert_eq!(cpu.pc(), 0x200);
        cpu.run(10).unwrap();
        assert_eq!(cpu.reg(10), 9);
    }
}
