//! ModularEX: the switch-stitched modular execution unit (Step 2).
//!
//! The instruction hardware blocks of the subset are imported into one
//! netlist; an automatically generated switch — "a simple case statement
//! ... with N cases" (§3.2) — selects which block's outputs drive the
//! shared interface.  Each block's `sel` output is its own full decode, so
//! the switch reduces to a one-hot AND/OR mux layer, exactly the structure
//! synthesis produces for a SystemVerilog `case`.

use hwlib::{ports, HwLibrary};
use netlist::{Builder, NetId, Netlist};
use std::collections::HashMap;

use crate::profile::InstructionSubset;

/// Builds the ModularEX netlist for `subset`.
///
/// Interface: the standard block ports (Table 2) plus a 1-bit `valid`
/// output that asserts when the presented instruction decodes to *some*
/// block in the subset (used by the testbench to detect out-of-subset
/// instructions).
///
/// # Panics
///
/// Panics if `subset` is empty.
pub fn build_modularex(library: &HwLibrary, subset: &InstructionSubset) -> Netlist {
    assert!(!subset.is_empty(), "ModularEX needs at least one block");
    let mut b = Builder::new();
    let pc = b.input_bus(ports::PC, 32);
    let insn = b.input_bus(ports::INSN, 32);
    let rs1_data = b.input_bus(ports::RS1_DATA, 32);
    let rs2_data = b.input_bus(ports::RS2_DATA, 32);
    let dmem_rdata = b.input_bus(ports::DMEM_RDATA, 32);

    let mut bindings: HashMap<&str, Vec<NetId>> = HashMap::new();
    bindings.insert(ports::PC, pc);
    bindings.insert(ports::INSN, insn);
    bindings.insert(ports::RS1_DATA, rs1_data);
    bindings.insert(ports::RS2_DATA, rs2_data);
    bindings.insert(ports::DMEM_RDATA, dmem_rdata);

    // Import every block and collect (sel, outputs-by-name).
    let mut selected: Vec<(NetId, HashMap<String, Vec<NetId>>)> = Vec::new();
    for m in subset.iter() {
        let block = library.block(m);
        let outs = b.import(&block.netlist, &bindings);
        let by_name: HashMap<String, Vec<NetId>> = outs.into_iter().collect();
        let sel = by_name[ports::SEL][0];
        selected.push((sel, by_name));
    }

    // The switch: for every output bus, OR together (sel_i AND out_i).
    // Blocks already zero their unused outputs, but gating with sel is what
    // the generated SystemVerilog case statement does, and it guarantees
    // exactly one driver even for overlapping don't-care outputs.
    for (name, width) in ports::OUTPUTS {
        if name == ports::SEL {
            continue;
        }
        let mut acc: Vec<NetId> = vec![b.zero(); width];
        for (sel, outs) in &selected {
            let nets = &outs[name];
            for (bit, &net) in nets.iter().enumerate() {
                let gated = b.and(*sel, net);
                acc[bit] = b.or(acc[bit], gated);
            }
        }
        b.output_bus(name, &acc);
    }
    let sels: Vec<NetId> = selected.iter().map(|(s, _)| *s).collect();
    let valid = netlist::bus::tree_or(&mut b, &sels);
    b.output("valid", valid);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::sim::Sim;
    use riscv_isa::{Instruction, Mnemonic, Reg};

    fn drive_and_eval(nl: &Netlist, instr: Instruction, rs1: u32, rs2: u32) -> Sim {
        let mut sim = Sim::new(nl);
        sim.set_bus(ports::PC, 0x100);
        sim.set_bus(ports::INSN, instr.encode());
        sim.set_bus(ports::RS1_DATA, rs1);
        sim.set_bus(ports::RS2_DATA, rs2);
        sim.set_bus(ports::DMEM_RDATA, 0);
        sim.eval();
        sim
    }

    #[test]
    fn switch_routes_the_selected_block() {
        let lib = HwLibrary::build_full();
        let subset: InstructionSubset = [Mnemonic::Add, Mnemonic::Sub, Mnemonic::Xor]
            .into_iter()
            .collect();
        let mex = build_modularex(&lib, &subset);
        let add = Instruction::r(Mnemonic::Add, Reg::X1, Reg::X2, Reg::X3);
        let sim = drive_and_eval(&mex, add, 40, 2);
        assert_eq!(sim.get_bus(ports::RD_DATA), 42);
        assert_eq!(sim.get_bus("valid"), 1);
        let sub = Instruction::r(Mnemonic::Sub, Reg::X1, Reg::X2, Reg::X3);
        let sim = drive_and_eval(&mex, sub, 40, 2);
        assert_eq!(sim.get_bus(ports::RD_DATA), 38);
    }

    #[test]
    fn out_of_subset_instruction_deasserts_valid() {
        let lib = HwLibrary::build_full();
        let subset: InstructionSubset = [Mnemonic::Add].into_iter().collect();
        let mex = build_modularex(&lib, &subset);
        let xor = Instruction::r(Mnemonic::Xor, Reg::X1, Reg::X2, Reg::X3);
        let sim = drive_and_eval(&mex, xor, 1, 2);
        assert_eq!(sim.get_bus("valid"), 0);
        assert_eq!(sim.get_bus(ports::RD_WE), 0, "invalid insn must not write");
    }

    #[test]
    fn modularex_is_fully_combinational() {
        let lib = HwLibrary::build_full();
        let subset: InstructionSubset = [Mnemonic::Addi, Mnemonic::Beq].into_iter().collect();
        let mex = build_modularex(&lib, &subset);
        assert_eq!(mex.dffs().count(), 0);
    }

    #[test]
    fn sharing_grows_sublinearly_with_blocks() {
        // Importing add and sub should share the field/imm extraction.
        let lib = HwLibrary::build_full();
        let one: InstructionSubset = [Mnemonic::Add].into_iter().collect();
        let two: InstructionSubset = [Mnemonic::Add, Mnemonic::Sub].into_iter().collect();
        let n1 = build_modularex(&lib, &one).len();
        let n2 = build_modularex(&lib, &two).len();
        let add_alone = lib.block(Mnemonic::Add).netlist.len();
        assert!(
            n2 - n1 < add_alone,
            "second block added {} gates, standalone is {}",
            n2 - n1,
            add_alone
        );
    }
}
