//! RISCOF-style architectural compatibility testing (§3.4.2).
//!
//! The paper checks every generated RISSP with the RISCOF framework: the
//! core runs a test program, writes a signature to memory, and the
//! signature is compared against one produced by a reference simulator
//! (Spike).  Here the RISSP executes at gate level and the reference is the
//! [`riscv_emu::Emulator`].

use riscv_emu::Emulator;

use crate::processor::{ExecError, GateLevelCpu};
use crate::Rissp;

/// Outcome of one RISCOF comparison run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RiscofReport {
    /// Cycles the gate-level core took (CPI = 1, so also instructions).
    pub dut_cycles: u64,
    /// Instructions the reference simulator retired.
    pub ref_instructions: u64,
    /// The (identical) signature both produced.
    pub signature: Vec<u32>,
}

/// A RISCOF failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RiscofError {
    /// The gate-level run faulted.
    Dut(ExecError),
    /// The reference simulator faulted.
    Reference(String),
    /// Both ran, but the signatures differ at word index `index`.
    SignatureMismatch {
        /// First differing signature word.
        index: usize,
        /// DUT's word at that index.
        dut: u32,
        /// Reference's word at that index.
        reference: u32,
    },
}

impl std::fmt::Display for RiscofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RiscofError::Dut(e) => write!(f, "gate-level DUT fault: {e}"),
            RiscofError::Reference(e) => write!(f, "reference simulator fault: {e}"),
            RiscofError::SignatureMismatch {
                index,
                dut,
                reference,
            } => write!(
                f,
                "signature mismatch at word {index}: dut={dut:#010x} ref={reference:#010x}"
            ),
        }
    }
}

impl std::error::Error for RiscofError {}

/// Runs `program` on the gate-level RISSP and on the reference simulator,
/// then compares the memory signatures in `[sig_begin, sig_end)`.
///
/// # Errors
///
/// Returns [`RiscofError`] on any fault or on signature mismatch.
pub fn run_compliance(
    rissp: &Rissp,
    program: &[u32],
    base: u32,
    sig_begin: u32,
    sig_end: u32,
    max_steps: u64,
) -> Result<RiscofReport, RiscofError> {
    let mut dut = GateLevelCpu::new(rissp, base);
    dut.load_words(base, program);
    let dut_cycles = dut.run(max_steps).map_err(RiscofError::Dut)?;

    let mut reference = Emulator::with_entry(base);
    reference.load_words(base, program);
    let run = reference
        .run(max_steps)
        .map_err(|e| RiscofError::Reference(e.to_string()))?;

    let dut_sig = dut.signature(sig_begin, sig_end);
    let ref_sig = reference.signature(sig_begin, sig_end);
    for (index, (d, r)) in dut_sig.iter().zip(&ref_sig).enumerate() {
        if d != r {
            return Err(RiscofError::SignatureMismatch {
                index,
                dut: *d,
                reference: *r,
            });
        }
    }
    Ok(RiscofReport {
        dut_cycles,
        ref_instructions: run.retired,
        signature: dut_sig,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::InstructionSubset;
    use hwlib::HwLibrary;
    use riscv_isa::asm;

    #[test]
    fn compliance_passes_for_store_heavy_program() {
        let program = asm::assemble(
            &asm::parse(
                "
                lui  a5, 0x1          # signature base 0x1000
                addi a0, zero, 1
                addi a1, zero, 0
                loop:
                add  a1, a1, a0
                addi a0, a0, 1
                slli a2, a0, 2
                sw   a1, 0(a5)
                addi a5, a5, 4
                sltiu a3, a0, 10
                bne  a3, zero, loop
                halt: jal x0, halt
                ",
            )
            .unwrap(),
            0,
        )
        .unwrap();
        let lib = HwLibrary::build_full();
        let subset = InstructionSubset::from_words(&program);
        let rissp = crate::Rissp::generate(&lib, &subset);
        let report = run_compliance(&rissp, &program, 0, 0x1000, 0x1000 + 9 * 4, 10_000).unwrap();
        assert_eq!(report.dut_cycles as u64 - 1, report.ref_instructions);
        assert_eq!(report.signature[0], 1);
        assert_eq!(report.signature[8], 45);
    }

    #[test]
    fn mismatch_is_detected_for_wrong_subset_execution() {
        // Run a program on a core missing one of its instructions: DUT fault.
        let program = asm::assemble(
            &asm::parse("addi a0, zero, 3\nxor a0, a0, a0\nhalt: jal x0, halt").unwrap(),
            0,
        )
        .unwrap();
        let lib = HwLibrary::build_full();
        let subset = InstructionSubset::from_names(["addi", "jal"]);
        let rissp = crate::Rissp::generate(&lib, &subset);
        let err = run_compliance(&rissp, &program, 0, 0x1000, 0x1004, 100).unwrap_err();
        assert!(matches!(err, RiscofError::Dut(_)), "{err}");
    }
}
