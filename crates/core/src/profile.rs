//! Application characterisation: instruction-subset extraction (Step 1).
//!
//! The paper compiles an application to RV32E and analyses the binary to
//! identify the distinct instructions it uses (§4.1, Figure 5, Table 3).
//! [`InstructionSubset`] is that set, and [`StaticProfile`] carries the
//! code-size statistics the figure plots alongside it.

use riscv_isa::{Instruction, Mnemonic, ALL_MNEMONICS};
use std::collections::BTreeSet;

/// A set of distinct RV32E instructions — the domain-specific instruction
/// set a RISSP is generated for.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstructionSubset {
    set: BTreeSet<Mnemonic>,
}

impl InstructionSubset {
    /// The empty subset.
    pub fn new() -> InstructionSubset {
        InstructionSubset::default()
    }

    /// The full RV32E base ISA (the `RISSP-RV32E` baseline).
    pub fn full_isa() -> InstructionSubset {
        ALL_MNEMONICS.iter().copied().collect()
    }

    /// Extracts the subset used by a binary image, ignoring words that do
    /// not decode (data).
    pub fn from_words(words: &[u32]) -> InstructionSubset {
        words
            .iter()
            .filter_map(|&w| Instruction::decode(w).ok())
            .map(|i| i.mnemonic)
            .collect()
    }

    /// Builds a subset from mnemonic names (as printed in Table 3).
    ///
    /// Unknown names are ignored.
    pub fn from_names<'a>(names: impl IntoIterator<Item = &'a str>) -> InstructionSubset {
        names.into_iter().filter_map(Mnemonic::from_name).collect()
    }

    /// Inserts a mnemonic; returns `true` if it was not already present.
    pub fn insert(&mut self, m: Mnemonic) -> bool {
        self.set.insert(m)
    }

    /// True when the subset supports `m`.
    pub fn contains(&self, m: Mnemonic) -> bool {
        self.set.contains(&m)
    }

    /// Number of distinct instructions.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True for the empty subset.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterates in deterministic (enum) order.
    pub fn iter(&self) -> impl Iterator<Item = Mnemonic> + '_ {
        self.set.iter().copied()
    }

    /// Union with another subset (for domain-level RISSPs covering several
    /// applications).
    pub fn union(&self, other: &InstructionSubset) -> InstructionSubset {
        self.set.union(&other.set).copied().collect()
    }

    /// Fraction of the full RV32E ISA used, in `[0, 1]` (the paper's
    /// "applications use only 24–86 % of the full ISA").
    pub fn isa_coverage(&self) -> f64 {
        self.len() as f64 / ALL_MNEMONICS.len() as f64
    }

    /// The mnemonic names, sorted alphabetically as Table 3 prints them.
    pub fn names(&self) -> Vec<&'static str> {
        let mut names: Vec<_> = self.set.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names
    }
}

impl FromIterator<Mnemonic> for InstructionSubset {
    fn from_iter<T: IntoIterator<Item = Mnemonic>>(iter: T) -> Self {
        InstructionSubset {
            set: iter.into_iter().collect(),
        }
    }
}

impl Extend<Mnemonic> for InstructionSubset {
    fn extend<T: IntoIterator<Item = Mnemonic>>(&mut self, iter: T) {
        self.set.extend(iter);
    }
}

impl std::fmt::Display for InstructionSubset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}]", self.names().join(", "))
    }
}

/// Static profile of a compiled binary (one point of Figure 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticProfile {
    /// Distinct instructions used.
    pub subset: InstructionSubset,
    /// Total static instruction count.
    pub static_instructions: usize,
    /// Code size in bytes (4 × static instructions + literal data words).
    pub code_bytes: usize,
}

impl StaticProfile {
    /// Profiles a binary image.
    pub fn of_words(words: &[u32]) -> StaticProfile {
        let static_instructions = words
            .iter()
            .filter(|&&w| Instruction::decode(w).is_ok())
            .count();
        StaticProfile {
            subset: InstructionSubset::from_words(words),
            static_instructions,
            code_bytes: words.len() * 4,
        }
    }

    /// Code size in KiB as Figure 5 plots it.
    pub fn code_kbytes(&self) -> f64 {
        self.code_bytes as f64 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::asm;

    #[test]
    fn subset_extraction_ignores_data_words() {
        let words = asm::assemble(
            &asm::parse("addi a0, zero, 1\nsw a0, 0(sp)\n.word 0xffffffff").unwrap(),
            0,
        )
        .unwrap();
        let subset = InstructionSubset::from_words(&words);
        assert_eq!(subset.len(), 2);
        assert!(subset.contains(Mnemonic::Addi));
        assert!(subset.contains(Mnemonic::Sw));
    }

    #[test]
    fn full_isa_covers_everything() {
        let full = InstructionSubset::full_isa();
        assert_eq!(full.len(), ALL_MNEMONICS.len());
        assert!((full.isa_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn names_round_trip_table3_style() {
        let subset = InstructionSubset::from_names([
            "addi", "andi", "bge", "blt", "jal", "jalr", "lui", "lw", "srli", "sw", "xor", "xori",
        ]);
        assert_eq!(subset.len(), 12); // the paper's xgboost subset
        assert_eq!(
            subset.names(),
            vec![
                "addi", "andi", "bge", "blt", "jal", "jalr", "lui", "lw", "srli", "sw", "xor",
                "xori"
            ]
        );
    }

    #[test]
    fn union_merges_domains() {
        let a = InstructionSubset::from_names(["add", "sub"]);
        let b = InstructionSubset::from_names(["sub", "xor"]);
        assert_eq!(a.union(&b).len(), 3);
    }

    #[test]
    fn static_profile_counts_bytes() {
        let words = asm::assemble(
            &asm::parse("addi a0, zero, 1\naddi a0, a0, 1\n.word 7").unwrap(),
            0,
        )
        .unwrap();
        let p = StaticProfile::of_words(&words);
        assert_eq!(p.static_instructions, 2);
        assert_eq!(p.code_bytes, 12);
        assert!((p.code_kbytes() - 12.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn display_lists_names() {
        let subset = InstructionSubset::from_names(["add", "xor"]);
        assert_eq!(subset.to_string(), "[add, xor]");
    }
}
