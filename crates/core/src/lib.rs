//! RISSP — RISC-V Instruction Subset Processor generation.
//!
//! This crate is the paper's primary contribution: given an application (or
//! a domain of applications), it
//!
//! 1. profiles the distinct RV32E instructions the compiled binary uses
//!    ([`profile`], Step 1 of Figure 2);
//! 2. pulls the corresponding pre-verified instruction hardware blocks from
//!    the [`hwlib`] library and stitches them behind an automatically
//!    generated switch into the **ModularEX** execution unit
//!    ([`modularex`], Step 2);
//! 3. attaches the fixed units — fetch/PC and the register file — plus the
//!    memory interfaces to produce a complete single-cycle processor
//!    ([`processor`], Step 3), with redundancy removal performed by the
//!    synthesis pass in [`netlist::opt`];
//! 4. verifies the integrated core by RISCOF-style signature comparison
//!    against the reference simulator and by RVFI trace checking
//!    ([`riscof`] and [`rvfi`], §3.4.2).
//!
//! # Examples
//!
//! Generate a RISSP for a tiny program and run it at gate level:
//!
//! ```
//! use hwlib::HwLibrary;
//! use riscv_isa::asm;
//! use rissp::{processor::GateLevelCpu, profile::InstructionSubset, Rissp};
//!
//! let words = asm::assemble(
//!     &asm::parse("addi a0, zero, 7\nadd a0, a0, a0\nhalt: jal x0, halt").unwrap(),
//!     0,
//! ).unwrap();
//! let subset = InstructionSubset::from_words(&words);
//! let lib = HwLibrary::build_full();
//! let rissp = Rissp::generate(&lib, &subset);
//! let mut cpu = GateLevelCpu::new(&rissp, 0);
//! cpu.load_words(0, &words);
//! cpu.run(100).unwrap();
//! assert_eq!(cpu.reg(10), 14);
//! ```

pub mod campaign;
pub mod modularex;
pub mod processor;
pub mod profile;
pub mod riscof;
pub mod rvfi;

use hwlib::HwLibrary;
use netlist::opt::{synthesize, SynthReport};
use netlist::Netlist;
use profile::InstructionSubset;

/// A generated RISC-V instruction subset processor.
#[derive(Debug, Clone)]
pub struct Rissp {
    /// The instruction subset this core supports.
    pub subset: InstructionSubset,
    /// The synthesised ModularEX + fetch core netlist (combinational logic
    /// plus the 32 PC flip-flops; the register file is a fixed pre-verified
    /// unit attached behaviourally, and — as in the paper's synthesis
    /// experiments — excluded from the synthesised netlist).
    pub core: Netlist,
    /// Synthesis statistics (gates before/after redundancy removal).
    pub synth: SynthReport,
}

impl Rissp {
    /// Generates a RISSP for `subset` from the pre-verified library
    /// (Steps 2–3 of the methodology), running the synthesis optimiser over
    /// the stitched design.
    ///
    /// # Panics
    ///
    /// Panics if `subset` is empty.
    pub fn generate(library: &HwLibrary, subset: &InstructionSubset) -> Rissp {
        assert!(
            !subset.is_empty(),
            "cannot generate a RISSP for an empty subset"
        );
        let unoptimised = processor::build_core(library, subset);
        let (core, synth) = synthesize(&unoptimised);
        Rissp {
            subset: subset.clone(),
            core,
            synth,
        }
    }

    /// Generates the application-independent baseline supporting the full
    /// RV32E ISA (`RISSP-RV32E` in the paper's evaluation).
    pub fn generate_full_isa(library: &HwLibrary) -> Rissp {
        Rissp::generate(library, &InstructionSubset::full_isa())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::Mnemonic;

    #[test]
    fn generation_shrinks_with_subset_size() {
        let lib = HwLibrary::build_full();
        let small: InstructionSubset = [Mnemonic::Addi, Mnemonic::Add, Mnemonic::Jal]
            .into_iter()
            .collect();
        let rissp_small = Rissp::generate(&lib, &small);
        let rissp_full = Rissp::generate_full_isa(&lib);
        assert!(
            rissp_small.core.len() < rissp_full.core.len(),
            "small {} !< full {}",
            rissp_small.core.len(),
            rissp_full.core.len()
        );
    }

    #[test]
    fn synthesis_removes_redundancy() {
        let lib = HwLibrary::build_full();
        let rissp = Rissp::generate_full_isa(&lib);
        assert!(rissp.synth.gates_after < rissp.synth.gates_before);
    }

    #[test]
    #[should_panic(expected = "empty subset")]
    fn empty_subset_is_rejected() {
        let lib = HwLibrary::build_full();
        let empty = InstructionSubset::default();
        let _ = Rissp::generate(&lib, &empty);
    }
}
