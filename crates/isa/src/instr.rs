//! Decoded instruction representation, encoding and decoding.

use crate::mnemonic::{opcode, Format, Mnemonic, ALL_MNEMONICS};
use crate::Reg;

/// A decoded RV32E instruction.
///
/// Operands not used by the instruction's [`Format`] are ignored by
/// [`Instruction::encode`] and are normalised to `Reg::X0` / `0` by the
/// constructors so that `==` works structurally.
///
/// ```
/// use riscv_isa::{Instruction, Mnemonic, Reg};
/// let i = Instruction::i(Mnemonic::Addi, Reg::X5, Reg::X6, -4);
/// assert_eq!(Instruction::decode(i.encode()).unwrap(), i);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// The operation.
    pub mnemonic: Mnemonic,
    /// Destination register (R/I/U/J formats).
    pub rd: Reg,
    /// First source register (R/I/S/B formats).
    pub rs1: Reg,
    /// Second source register (R/S/B formats).
    pub rs2: Reg,
    /// Sign-extended immediate (I/S/B/U/J formats); for U-type this is the
    /// *pre-shift* upper-20 value in bits `[31:12]` semantics, stored here as
    /// the full 32-bit value `imm20 << 12`.
    pub imm: i32,
}

/// An error produced by [`Instruction::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The major opcode is not part of the RV32I/E base set.
    UnknownOpcode(u32),
    /// The opcode is known but the funct3/funct7 fields are invalid.
    UnknownFunction(u32),
    /// A register field addresses x16–x31, which do not exist in RV32E.
    RegisterOutOfRange(u32),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnknownOpcode(w) => write!(f, "unknown opcode in word {w:#010x}"),
            DecodeError::UnknownFunction(w) => {
                write!(f, "unknown funct3/funct7 in word {w:#010x}")
            }
            DecodeError::RegisterOutOfRange(w) => {
                write!(f, "register above x15 in word {w:#010x} (RV32E)")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

fn field(word: u32, lo: u32, len: u32) -> u32 {
    (word >> lo) & ((1 << len) - 1)
}

impl Instruction {
    /// Builds an R-type instruction.
    pub fn r(mnemonic: Mnemonic, rd: Reg, rs1: Reg, rs2: Reg) -> Instruction {
        debug_assert_eq!(mnemonic.format(), Format::R);
        Instruction {
            mnemonic,
            rd,
            rs1,
            rs2,
            imm: 0,
        }
    }

    /// Builds an I-type instruction (ALU-immediate, load, or `jalr`).
    ///
    /// For shift-immediates (`slli`/`srli`/`srai`) only the low five bits of
    /// `imm` are significant.
    pub fn i(mnemonic: Mnemonic, rd: Reg, rs1: Reg, imm: i32) -> Instruction {
        debug_assert_eq!(mnemonic.format(), Format::I);
        Instruction {
            mnemonic,
            rd,
            rs1,
            rs2: Reg::X0,
            imm,
        }
    }

    /// Builds an S-type (store) instruction; `imm` is the address offset.
    pub fn s(mnemonic: Mnemonic, rs1: Reg, rs2: Reg, imm: i32) -> Instruction {
        debug_assert_eq!(mnemonic.format(), Format::S);
        Instruction {
            mnemonic,
            rd: Reg::X0,
            rs1,
            rs2,
            imm,
        }
    }

    /// Builds a B-type (branch) instruction; `imm` is the byte offset from
    /// the branch's own PC (must be even).
    pub fn b(mnemonic: Mnemonic, rs1: Reg, rs2: Reg, imm: i32) -> Instruction {
        debug_assert_eq!(mnemonic.format(), Format::B);
        Instruction {
            mnemonic,
            rd: Reg::X0,
            rs1,
            rs2,
            imm,
        }
    }

    /// Builds a U-type instruction; `imm` must have its low 12 bits clear.
    pub fn u(mnemonic: Mnemonic, rd: Reg, imm: i32) -> Instruction {
        debug_assert_eq!(mnemonic.format(), Format::U);
        Instruction {
            mnemonic,
            rd,
            rs1: Reg::X0,
            rs2: Reg::X0,
            imm: imm & !0xfff_i32,
        }
    }

    /// Builds a `jal`; `imm` is the byte offset from the jump's own PC.
    pub fn j(mnemonic: Mnemonic, rd: Reg, imm: i32) -> Instruction {
        debug_assert_eq!(mnemonic.format(), Format::J);
        Instruction {
            mnemonic,
            rd,
            rs1: Reg::X0,
            rs2: Reg::X0,
            imm,
        }
    }

    /// Encodes the instruction into its 32-bit RISC-V machine word.
    pub fn encode(&self) -> u32 {
        let m = self.mnemonic;
        let opc = m.opcode();
        let rd = self.rd.index() as u32;
        let rs1 = self.rs1.index() as u32;
        let rs2 = self.rs2.index() as u32;
        let f3 = m.funct3().unwrap_or(0);
        let imm = self.imm as u32;
        match m.format() {
            Format::R => {
                opc | (rd << 7)
                    | (f3 << 12)
                    | (rs1 << 15)
                    | (rs2 << 20)
                    | (m.funct7().unwrap() << 25)
            }
            Format::I => {
                let imm12 = if m.funct7().is_some() {
                    // Shift-immediate: shamt in [24:20], funct7 in [31:25].
                    (imm & 0x1f) | (m.funct7().unwrap() << 5)
                } else {
                    imm & 0xfff
                };
                opc | (rd << 7) | (f3 << 12) | (rs1 << 15) | (imm12 << 20)
            }
            Format::S => {
                let lo = imm & 0x1f;
                let hi = (imm >> 5) & 0x7f;
                opc | (lo << 7) | (f3 << 12) | (rs1 << 15) | (rs2 << 20) | (hi << 25)
            }
            Format::B => {
                let b11 = (imm >> 11) & 1;
                let b4_1 = (imm >> 1) & 0xf;
                let b10_5 = (imm >> 5) & 0x3f;
                let b12 = (imm >> 12) & 1;
                opc | (b11 << 7)
                    | (b4_1 << 8)
                    | (f3 << 12)
                    | (rs1 << 15)
                    | (rs2 << 20)
                    | (b10_5 << 25)
                    | (b12 << 31)
            }
            Format::U => opc | (rd << 7) | (imm & 0xfffff000),
            Format::J => {
                let b19_12 = (imm >> 12) & 0xff;
                let b11 = (imm >> 11) & 1;
                let b10_1 = (imm >> 1) & 0x3ff;
                let b20 = (imm >> 20) & 1;
                opc | (rd << 7) | (b19_12 << 12) | (b11 << 20) | (b10_1 << 21) | (b20 << 31)
            }
        }
    }

    /// Decodes a 32-bit machine word.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the word is not a valid RV32E base
    /// instruction (unknown opcode, unknown function fields, or a register
    /// above `x15`).
    pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
        let opc = field(word, 0, 7);
        let rd_i = field(word, 7, 5);
        let f3 = field(word, 12, 3);
        let rs1_i = field(word, 15, 5);
        let rs2_i = field(word, 20, 5);
        let f7 = field(word, 25, 7);

        let mnemonic = ALL_MNEMONICS
            .iter()
            .copied()
            .find(|m| {
                if m.opcode() != opc {
                    return false;
                }
                if let Some(mf3) = m.funct3() {
                    if mf3 != f3 {
                        return false;
                    }
                }
                // funct7 only discriminates OP and shift-immediates.
                match m.format() {
                    Format::R => m.funct7() == Some(f7),
                    Format::I if m.funct7().is_some() => m.funct7() == Some(f7),
                    _ => true,
                }
            })
            .ok_or({
                if [
                    opcode::LUI,
                    opcode::AUIPC,
                    opcode::JAL,
                    opcode::JALR,
                    opcode::BRANCH,
                    opcode::LOAD,
                    opcode::STORE,
                    opcode::OP_IMM,
                    opcode::OP,
                ]
                .contains(&opc)
                {
                    DecodeError::UnknownFunction(word)
                } else {
                    DecodeError::UnknownOpcode(word)
                }
            })?;

        let reg = |i: u32, used: bool| -> Result<Reg, DecodeError> {
            if !used {
                return Ok(Reg::X0);
            }
            Reg::from_index(i as usize).ok_or(DecodeError::RegisterOutOfRange(word))
        };
        let fmt = mnemonic.format();
        let rd = reg(rd_i, mnemonic.writes_rd())?;
        let rs1 = reg(rs1_i, mnemonic.reads_rs1())?;
        let rs2 = reg(rs2_i, mnemonic.reads_rs2())?;

        let imm = match fmt {
            Format::R => 0,
            Format::I => {
                if mnemonic.funct7().is_some() {
                    rs2_i as i32 // shamt
                } else {
                    (word as i32) >> 20
                }
            }
            Format::S => {
                let lo = field(word, 7, 5);
                let hi = (word as i32) >> 25; // sign-extends
                (hi << 5) | lo as i32
            }
            Format::B => {
                let b12 = (word as i32) >> 31; // sign
                let b11 = field(word, 7, 1) as i32;
                let b10_5 = field(word, 25, 6) as i32;
                let b4_1 = field(word, 8, 4) as i32;
                (b12 << 12) | (b11 << 11) | (b10_5 << 5) | (b4_1 << 1)
            }
            Format::U => (word & 0xfffff000) as i32,
            Format::J => {
                let b20 = (word as i32) >> 31;
                let b19_12 = field(word, 12, 8) as i32;
                let b11 = field(word, 20, 1) as i32;
                let b10_1 = field(word, 21, 10) as i32;
                (b20 << 20) | (b19_12 << 12) | (b11 << 11) | (b10_1 << 1)
            }
        };

        Ok(Instruction {
            mnemonic,
            rd,
            rs1,
            rs2,
            imm,
        })
    }
}

impl std::fmt::Display for Instruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.mnemonic;
        match m.format() {
            Format::R => write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.rs2),
            Format::I if m.is_load() || m == Mnemonic::Jalr => {
                write!(f, "{m} {}, {}({})", self.rd, self.imm, self.rs1)
            }
            Format::I => write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.imm),
            Format::S => write!(f, "{m} {}, {}({})", self.rs2, self.imm, self.rs1),
            Format::B => write!(f, "{m} {}, {}, {}", self.rs1, self.rs2, self.imm),
            Format::U => write!(f, "{m} {}, {:#x}", self.rd, (self.imm as u32) >> 12),
            Format::J => write!(f, "{m} {}, {}", self.rd, self.imm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(i: Instruction) {
        let word = i.encode();
        let back = Instruction::decode(word).unwrap_or_else(|e| panic!("{i}: {e}"));
        assert_eq!(back, i, "word {word:#010x}");
    }

    #[test]
    fn r_type_round_trip() {
        for m in [
            Mnemonic::Add,
            Mnemonic::Sub,
            Mnemonic::Sll,
            Mnemonic::Slt,
            Mnemonic::Sltu,
            Mnemonic::Xor,
            Mnemonic::Srl,
            Mnemonic::Sra,
            Mnemonic::Or,
            Mnemonic::And,
        ] {
            round_trip(Instruction::r(m, Reg::X1, Reg::X15, Reg::X7));
        }
    }

    #[test]
    fn i_type_round_trip_extremes() {
        for imm in [-2048, -1, 0, 1, 2047] {
            round_trip(Instruction::i(Mnemonic::Addi, Reg::X3, Reg::X4, imm));
            round_trip(Instruction::i(Mnemonic::Lw, Reg::X3, Reg::X4, imm));
            round_trip(Instruction::i(Mnemonic::Jalr, Reg::X1, Reg::X4, imm));
        }
        for shamt in [0, 1, 15, 31] {
            round_trip(Instruction::i(Mnemonic::Slli, Reg::X2, Reg::X2, shamt));
            round_trip(Instruction::i(Mnemonic::Srai, Reg::X2, Reg::X2, shamt));
            round_trip(Instruction::i(Mnemonic::Srli, Reg::X2, Reg::X2, shamt));
        }
    }

    #[test]
    fn s_b_round_trip_extremes() {
        for imm in [-2048, -4, 0, 4, 2047] {
            round_trip(Instruction::s(Mnemonic::Sw, Reg::X5, Reg::X6, imm));
        }
        for imm in [-4096, -2, 0, 2, 4094] {
            round_trip(Instruction::b(Mnemonic::Beq, Reg::X5, Reg::X6, imm));
            round_trip(Instruction::b(Mnemonic::Bgeu, Reg::X5, Reg::X6, imm));
        }
    }

    #[test]
    fn u_j_round_trip_extremes() {
        for imm20 in [0u32, 1, 0x80000, 0xfffff] {
            round_trip(Instruction::u(Mnemonic::Lui, Reg::X9, (imm20 << 12) as i32));
            round_trip(Instruction::u(
                Mnemonic::Auipc,
                Reg::X9,
                (imm20 << 12) as i32,
            ));
        }
        for imm in [-1048576, -2, 0, 2, 1048574] {
            round_trip(Instruction::j(Mnemonic::Jal, Reg::X1, imm));
        }
    }

    #[test]
    fn known_golden_encodings() {
        // Cross-checked against the RISC-V spec / gnu assembler.
        // addi x1, x2, 3  => 0x00310093
        assert_eq!(
            Instruction::i(Mnemonic::Addi, Reg::X1, Reg::X2, 3).encode(),
            0x0031_0093
        );
        // add x3, x4, x5 => 0x005201b3
        assert_eq!(
            Instruction::r(Mnemonic::Add, Reg::X3, Reg::X4, Reg::X5).encode(),
            0x0052_01b3
        );
        // sw x6, 8(x7) => 0x0063a423
        assert_eq!(
            Instruction::s(Mnemonic::Sw, Reg::X7, Reg::X6, 8).encode(),
            0x0063_a423
        );
        // beq x8, x9, 16 => 0x00940863
        assert_eq!(
            Instruction::b(Mnemonic::Beq, Reg::X8, Reg::X9, 16).encode(),
            0x0094_0863
        );
        // lui x10, 0x12345 => 0x12345537
        assert_eq!(
            Instruction::u(Mnemonic::Lui, Reg::X10, 0x12345 << 12).encode(),
            0x1234_5537
        );
        // jal x1, 2048 => 0x001000ef
        assert_eq!(
            Instruction::j(Mnemonic::Jal, Reg::X1, 2048).encode(),
            0x0010_00ef
        );
    }

    #[test]
    fn decode_rejects_rv32i_only_registers() {
        // add x3, x20, x5 is valid RV32I but not RV32E.
        let word = 0x0052_01b3 | (20 << 15);
        assert_eq!(
            Instruction::decode(word),
            Err(DecodeError::RegisterOutOfRange(word))
        );
    }

    #[test]
    fn decode_rejects_unknown_opcode_and_funct() {
        assert!(matches!(
            Instruction::decode(0xffff_ffff),
            Err(DecodeError::UnknownFunction(_)) | Err(DecodeError::UnknownOpcode(_))
        ));
        // System opcode (ecall) is not in the computational set.
        assert_eq!(
            Instruction::decode(0x0000_0073),
            Err(DecodeError::UnknownOpcode(0x0000_0073))
        );
    }

    #[test]
    fn display_formats_reasonably() {
        let i = Instruction::i(Mnemonic::Lw, Reg::X1, Reg::X2, -8);
        assert_eq!(i.to_string(), "lw x1, -8(x2)");
        let b = Instruction::b(Mnemonic::Bne, Reg::X3, Reg::X4, 12);
        assert_eq!(b.to_string(), "bne x3, x4, 12");
    }
}
