//! Instruction mnemonics, formats and encoding constants for RV32I/E.

/// The six RISC-V base instruction formats (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Format {
    /// Register-register ALU operations.
    R,
    /// Register-immediate ALU operations, loads and `jalr`.
    I,
    /// Stores.
    S,
    /// Conditional branches.
    B,
    /// `lui` / `auipc`.
    U,
    /// `jal`.
    J,
}

/// Every instruction of the RV32I/E base integer ISA covered by the paper's
/// pre-verified hardware library.
///
/// The paper reports the RV32E ISA as "around 40 instructions"; the 37
/// computational instructions below are the ones that appear in Table 3 and
/// that the hardware library implements as discrete blocks (`fence`,
/// `ecall` and `ebreak` are no-ops for a baremetal single-cycle core and are
/// handled by the fetch unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mnemonic {
    // U-type
    Lui,
    Auipc,
    // J-type
    Jal,
    // I-type jump
    Jalr,
    // B-type
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    // I-type loads
    Lb,
    Lh,
    Lw,
    Lbu,
    Lhu,
    // S-type stores
    Sb,
    Sh,
    Sw,
    // I-type ALU
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    // R-type ALU
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
}

/// All mnemonics in a stable, deterministic order.
pub const ALL_MNEMONICS: [Mnemonic; 37] = [
    Mnemonic::Lui,
    Mnemonic::Auipc,
    Mnemonic::Jal,
    Mnemonic::Jalr,
    Mnemonic::Beq,
    Mnemonic::Bne,
    Mnemonic::Blt,
    Mnemonic::Bge,
    Mnemonic::Bltu,
    Mnemonic::Bgeu,
    Mnemonic::Lb,
    Mnemonic::Lh,
    Mnemonic::Lw,
    Mnemonic::Lbu,
    Mnemonic::Lhu,
    Mnemonic::Sb,
    Mnemonic::Sh,
    Mnemonic::Sw,
    Mnemonic::Addi,
    Mnemonic::Slti,
    Mnemonic::Sltiu,
    Mnemonic::Xori,
    Mnemonic::Ori,
    Mnemonic::Andi,
    Mnemonic::Slli,
    Mnemonic::Srli,
    Mnemonic::Srai,
    Mnemonic::Add,
    Mnemonic::Sub,
    Mnemonic::Sll,
    Mnemonic::Slt,
    Mnemonic::Sltu,
    Mnemonic::Xor,
    Mnemonic::Srl,
    Mnemonic::Sra,
    Mnemonic::Or,
    Mnemonic::And,
];

/// Opcode constants (bits `[6:0]` of the encoding).
pub(crate) mod opcode {
    pub const LUI: u32 = 0b0110111;
    pub const AUIPC: u32 = 0b0010111;
    pub const JAL: u32 = 0b1101111;
    pub const JALR: u32 = 0b1100111;
    pub const BRANCH: u32 = 0b1100011;
    pub const LOAD: u32 = 0b0000011;
    pub const STORE: u32 = 0b0100011;
    pub const OP_IMM: u32 = 0b0010011;
    pub const OP: u32 = 0b0110011;
}

impl Mnemonic {
    /// The instruction format of this mnemonic.
    pub fn format(self) -> Format {
        use Mnemonic::*;
        match self {
            Lui | Auipc => Format::U,
            Jal => Format::J,
            Jalr | Lb | Lh | Lw | Lbu | Lhu | Addi | Slti | Sltiu | Xori | Ori | Andi | Slli
            | Srli | Srai => Format::I,
            Beq | Bne | Blt | Bge | Bltu | Bgeu => Format::B,
            Sb | Sh | Sw => Format::S,
            Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And => Format::R,
        }
    }

    /// The major opcode (bits `[6:0]`).
    pub fn opcode(self) -> u32 {
        use Mnemonic::*;
        match self {
            Lui => opcode::LUI,
            Auipc => opcode::AUIPC,
            Jal => opcode::JAL,
            Jalr => opcode::JALR,
            Beq | Bne | Blt | Bge | Bltu | Bgeu => opcode::BRANCH,
            Lb | Lh | Lw | Lbu | Lhu => opcode::LOAD,
            Sb | Sh | Sw => opcode::STORE,
            Addi | Slti | Sltiu | Xori | Ori | Andi | Slli | Srli | Srai => opcode::OP_IMM,
            Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And => opcode::OP,
        }
    }

    /// The `funct3` field, or `None` for formats without one (U/J).
    pub fn funct3(self) -> Option<u32> {
        use Mnemonic::*;
        Some(match self {
            Lui | Auipc | Jal => return None,
            Jalr => 0b000,
            Beq => 0b000,
            Bne => 0b001,
            Blt => 0b100,
            Bge => 0b101,
            Bltu => 0b110,
            Bgeu => 0b111,
            Lb => 0b000,
            Lh => 0b001,
            Lw => 0b010,
            Lbu => 0b100,
            Lhu => 0b101,
            Sb => 0b000,
            Sh => 0b001,
            Sw => 0b010,
            Addi => 0b000,
            Slti => 0b010,
            Sltiu => 0b011,
            Xori => 0b100,
            Ori => 0b110,
            Andi => 0b111,
            Slli => 0b001,
            Srli => 0b101,
            Srai => 0b101,
            Add => 0b000,
            Sub => 0b000,
            Sll => 0b001,
            Slt => 0b010,
            Sltu => 0b011,
            Xor => 0b100,
            Srl => 0b101,
            Sra => 0b101,
            Or => 0b110,
            And => 0b111,
        })
    }

    /// The `funct7` field for R-type instructions and shift-immediates, or
    /// `None` when the encoding does not constrain bits `[31:25]`.
    pub fn funct7(self) -> Option<u32> {
        use Mnemonic::*;
        match self {
            Add | Sll | Slt | Sltu | Xor | Srl | Or | And | Slli | Srli => Some(0b0000000),
            Sub | Sra | Srai => Some(0b0100000),
            _ => None,
        }
    }

    /// The lowercase assembly spelling of the mnemonic.
    pub fn name(self) -> &'static str {
        use Mnemonic::*;
        match self {
            Lui => "lui",
            Auipc => "auipc",
            Jal => "jal",
            Jalr => "jalr",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bltu => "bltu",
            Bgeu => "bgeu",
            Lb => "lb",
            Lh => "lh",
            Lw => "lw",
            Lbu => "lbu",
            Lhu => "lhu",
            Sb => "sb",
            Sh => "sh",
            Sw => "sw",
            Addi => "addi",
            Slti => "slti",
            Sltiu => "sltiu",
            Xori => "xori",
            Ori => "ori",
            Andi => "andi",
            Slli => "slli",
            Srli => "srli",
            Srai => "srai",
            Add => "add",
            Sub => "sub",
            Sll => "sll",
            Slt => "slt",
            Sltu => "sltu",
            Xor => "xor",
            Srl => "srl",
            Sra => "sra",
            Or => "or",
            And => "and",
        }
    }

    /// Parses a lowercase assembly mnemonic.
    pub fn from_name(name: &str) -> Option<Mnemonic> {
        ALL_MNEMONICS.iter().copied().find(|m| m.name() == name)
    }

    /// True for `lb/lh/lw/lbu/lhu`.
    pub fn is_load(self) -> bool {
        self.opcode() == opcode::LOAD
    }

    /// True for `sb/sh/sw`.
    pub fn is_store(self) -> bool {
        self.opcode() == opcode::STORE
    }

    /// True for conditional branches.
    pub fn is_branch(self) -> bool {
        self.opcode() == opcode::BRANCH
    }

    /// True for `jal`/`jalr`.
    pub fn is_jump(self) -> bool {
        matches!(self, Mnemonic::Jal | Mnemonic::Jalr)
    }

    /// True when the instruction writes a destination register.
    pub fn writes_rd(self) -> bool {
        !matches!(self.format(), Format::B | Format::S)
    }

    /// True when the instruction reads `rs1`.
    pub fn reads_rs1(self) -> bool {
        !matches!(self.format(), Format::U | Format::J)
    }

    /// True when the instruction reads `rs2`.
    pub fn reads_rs2(self) -> bool {
        matches!(self.format(), Format::R | Format::S | Format::B)
    }
}

impl std::fmt::Display for Mnemonic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_mnemonics_has_no_duplicates() {
        let mut v = ALL_MNEMONICS.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 37);
    }

    #[test]
    fn names_round_trip() {
        for m in ALL_MNEMONICS {
            assert_eq!(Mnemonic::from_name(m.name()), Some(m), "{m}");
        }
        assert_eq!(Mnemonic::from_name("mul"), None);
    }

    #[test]
    fn funct3_present_exactly_when_format_has_it() {
        for m in ALL_MNEMONICS {
            let has = m.funct3().is_some();
            let expect = !matches!(m.format(), Format::U | Format::J);
            assert_eq!(has, expect, "{m}");
        }
    }

    #[test]
    fn encodings_are_unique() {
        // (opcode, funct3, funct7) triples must uniquely identify mnemonics.
        let mut keys: Vec<_> = ALL_MNEMONICS
            .iter()
            .map(|m| (m.opcode(), m.funct3(), m.funct7()))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), ALL_MNEMONICS.len());
    }

    #[test]
    fn format_predicates_are_consistent() {
        for m in ALL_MNEMONICS {
            if m.is_store() {
                assert!(!m.writes_rd(), "{m}");
                assert!(m.reads_rs2(), "{m}");
            }
            if m.is_branch() {
                assert!(!m.writes_rd(), "{m}");
            }
            if m.is_load() {
                assert!(m.writes_rd(), "{m}");
                assert!(!m.reads_rs2(), "{m}");
            }
        }
    }
}
