//! RV32I/E instruction set architecture support for the RISSP reproduction.
//!
//! This crate is the single source of truth for the RISC-V RV32E subset used
//! throughout the repository:
//!
//! * [`Mnemonic`] enumerates every base-ISA instruction the paper's
//!   pre-verified hardware library implements (Table 2 of the paper).
//! * [`Instruction`] is a decoded instruction with [`Instruction::encode`] /
//!   [`Instruction::decode`] round-tripping through the standard 32-bit
//!   RISC-V encodings.
//! * [`asm`] provides a two-pass assembler (programmatic and textual) used by
//!   the compiler, the workloads, and the retargeting tool.
//! * [`semantics`] gives the *golden* datapath semantics of each instruction
//!   in exactly the port shape of the paper's instruction hardware blocks;
//!   the hardware library is formally checked against these functions.
//!
//! # Examples
//!
//! ```
//! use riscv_isa::{Instruction, Mnemonic, Reg};
//!
//! let add = Instruction::r(Mnemonic::Add, Reg::X1, Reg::X2, Reg::X3);
//! let word = add.encode();
//! assert_eq!(Instruction::decode(word).unwrap(), add);
//! ```

pub mod asm;
mod instr;
mod mnemonic;
pub mod semantics;

pub use instr::{DecodeError, Instruction};
pub use mnemonic::{Format, Mnemonic, ALL_MNEMONICS};

/// A general-purpose register in the RV32E register file (`x0`–`x15`).
///
/// RV32E halves the integer register file relative to RV32I; the paper's
/// RISSPs are generated for RV32E, so this crate enforces the 16-register
/// limit statically.
///
/// ```
/// use riscv_isa::Reg;
/// assert_eq!(Reg::X10.index(), 10);
/// assert_eq!(Reg::from_index(10), Some(Reg::X10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    X0 = 0,
    X1,
    X2,
    X3,
    X4,
    X5,
    X6,
    X7,
    X8,
    X9,
    X10,
    X11,
    X12,
    X13,
    X14,
    X15,
}

impl Reg {
    /// All sixteen RV32E registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::X0,
        Reg::X1,
        Reg::X2,
        Reg::X3,
        Reg::X4,
        Reg::X5,
        Reg::X6,
        Reg::X7,
        Reg::X8,
        Reg::X9,
        Reg::X10,
        Reg::X11,
        Reg::X12,
        Reg::X13,
        Reg::X14,
        Reg::X15,
    ];

    /// The register's architectural index (0–15).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a register from an architectural index, returning `None` for
    /// indices outside RV32E's sixteen registers.
    pub fn from_index(index: usize) -> Option<Reg> {
        Reg::ALL.get(index).copied()
    }

    /// The RISC-V ABI name used by the textual assembler/disassembler.
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 16] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5",
        ];
        NAMES[self.index()]
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.index())
    }
}

/// The architectural register count of the target ISA (RV32E).
pub const REG_COUNT: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_round_trips_through_index() {
        for reg in Reg::ALL {
            assert_eq!(Reg::from_index(reg.index()), Some(reg));
        }
        assert_eq!(Reg::from_index(16), None);
    }

    #[test]
    fn reg_display_uses_x_names() {
        assert_eq!(Reg::X0.to_string(), "x0");
        assert_eq!(Reg::X15.to_string(), "x15");
    }

    #[test]
    fn abi_names_are_distinct() {
        let mut names: Vec<_> = Reg::ALL.iter().map(|r| r.abi_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 16);
    }
}
