//! A two-pass RV32E assembler, programmatic and textual.
//!
//! The compiler (`xcc`), the workloads and the retargeting tool all produce
//! [`Item`] streams: a mix of labels and instructions whose branch/jump
//! targets may be symbolic.  [`assemble`] resolves labels and emits machine
//! words; [`parse`] additionally accepts the textual syntax used by macro
//! files (Section 5 of the paper).
//!
//! ```
//! use riscv_isa::asm;
//! let program = asm::parse(
//!     "start: addi x1, x0, 10\n\
//!      loop:  addi x1, x1, -1\n\
//!             bne  x1, x0, loop\n",
//! ).unwrap();
//! let words = asm::assemble(&program, 0).unwrap();
//! assert_eq!(words.len(), 3);
//! ```

use crate::{Format, Instruction, Mnemonic, Reg};
use std::collections::HashMap;

/// An operand that is either a resolved immediate or a symbolic label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// A concrete immediate (byte offset for branches/jumps).
    Imm(i32),
    /// A label whose PC-relative offset is resolved at assembly time.
    Label(String),
}

impl From<i32> for Target {
    fn from(v: i32) -> Target {
        Target::Imm(v)
    }
}

impl From<&str> for Target {
    fn from(v: &str) -> Target {
        Target::Label(v.to_string())
    }
}

/// An instruction whose control-flow target may be symbolic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmInstr {
    /// The operation.
    pub mnemonic: Mnemonic,
    /// Destination register.
    pub rd: Reg,
    /// First source register.
    pub rs1: Reg,
    /// Second source register.
    pub rs2: Reg,
    /// Immediate or label target.
    pub target: Target,
}

impl AsmInstr {
    /// Wraps a fully resolved [`Instruction`].
    pub fn resolved(instr: Instruction) -> AsmInstr {
        AsmInstr {
            mnemonic: instr.mnemonic,
            rd: instr.rd,
            rs1: instr.rs1,
            rs2: instr.rs2,
            target: Target::Imm(instr.imm),
        }
    }
}

/// One element of an assembly stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A label definition at the current PC.
    Label(String),
    /// An instruction.
    Instr(AsmInstr),
    /// A literal 32-bit data word (`.word`).
    Word(u32),
}

impl Item {
    /// Convenience constructor for a resolved instruction item.
    pub fn instr(instr: Instruction) -> Item {
        Item::Instr(AsmInstr::resolved(instr))
    }

    /// Convenience constructor for a label item.
    pub fn label(name: impl Into<String>) -> Item {
        Item::Label(name.into())
    }
}

/// Errors produced by [`assemble`] or [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// A branch or jump target is out of encodable range.
    TargetOutOfRange { mnemonic: Mnemonic, offset: i32 },
    /// A parse error with line number and message.
    Parse { line: usize, message: String },
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::TargetOutOfRange { mnemonic, offset } => {
                write!(f, "target offset {offset} out of range for `{mnemonic}`")
            }
            AsmError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for AsmError {}

/// Resolves labels and encodes an assembly stream into machine words.
///
/// `base` is the byte address of the first emitted word; label offsets are
/// PC-relative as the B/J encodings require.
///
/// # Errors
///
/// Returns an error for undefined or duplicate labels and for branch/jump
/// offsets that do not fit their encodings.
pub fn assemble(items: &[Item], base: u32) -> Result<Vec<u32>, AsmError> {
    let instrs = resolve(items, base)?;
    Ok(instrs
        .iter()
        .map(|w| match w {
            ResolvedWord::Instr(i) => i.encode(),
            ResolvedWord::Data(d) => *d,
        })
        .collect())
}

/// A resolved element: either an instruction or a literal data word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedWord {
    /// An encoded instruction.
    Instr(Instruction),
    /// A literal data word.
    Data(u32),
}

/// Resolves labels to concrete instructions without encoding them.
///
/// # Errors
///
/// Same conditions as [`assemble`].
pub fn resolve(items: &[Item], base: u32) -> Result<Vec<ResolvedWord>, AsmError> {
    let mut labels: HashMap<&str, u32> = HashMap::new();
    let mut pc = base;
    for item in items {
        match item {
            Item::Label(name) => {
                if labels.insert(name, pc).is_some() {
                    return Err(AsmError::DuplicateLabel(name.clone()));
                }
            }
            Item::Instr(_) | Item::Word(_) => pc = pc.wrapping_add(4),
        }
    }

    let mut out = Vec::new();
    let mut pc = base;
    for item in items {
        match item {
            Item::Label(_) => {}
            Item::Word(w) => {
                out.push(ResolvedWord::Data(*w));
                pc = pc.wrapping_add(4);
            }
            Item::Instr(ai) => {
                let imm = match &ai.target {
                    Target::Imm(v) => *v,
                    Target::Label(name) => {
                        let addr = *labels
                            .get(name.as_str())
                            .ok_or_else(|| AsmError::UndefinedLabel(name.clone()))?;
                        addr.wrapping_sub(pc) as i32
                    }
                };
                check_range(ai.mnemonic, imm)?;
                let instr = Instruction {
                    mnemonic: ai.mnemonic,
                    rd: ai.rd,
                    rs1: ai.rs1,
                    rs2: ai.rs2,
                    imm: if ai.mnemonic.format() == Format::U {
                        imm & !0xfff
                    } else {
                        imm
                    },
                };
                out.push(ResolvedWord::Instr(instr));
                pc = pc.wrapping_add(4);
            }
        }
    }
    Ok(out)
}

fn check_range(m: Mnemonic, imm: i32) -> Result<(), AsmError> {
    let ok = match m.format() {
        Format::R => true,
        Format::I => {
            if m.funct7().is_some() {
                (0..32).contains(&imm)
            } else {
                (-2048..=2047).contains(&imm)
            }
        }
        Format::S => (-2048..=2047).contains(&imm),
        Format::B => (-4096..=4094).contains(&imm) && imm % 2 == 0,
        Format::U => true,
        Format::J => (-1048576..=1048574).contains(&imm) && imm % 2 == 0,
    };
    if ok {
        Ok(())
    } else {
        Err(AsmError::TargetOutOfRange {
            mnemonic: m,
            offset: imm,
        })
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let err = || AsmError::Parse {
        line,
        message: format!("bad register `{tok}`"),
    };
    if let Some(num) = tok.strip_prefix('x') {
        let idx: usize = num.parse().map_err(|_| err())?;
        return Reg::from_index(idx).ok_or_else(err);
    }
    Reg::ALL
        .iter()
        .copied()
        .find(|r| r.abi_name() == tok)
        .ok_or_else(err)
}

fn parse_imm(tok: &str, line: usize) -> Result<i32, AsmError> {
    let err = || AsmError::Parse {
        line,
        message: format!("bad immediate `{tok}`"),
    };
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let value = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).map_err(|_| err())?
    } else {
        body.parse::<i64>().map_err(|_| err())?
    };
    let value = if neg { -value } else { value };
    // Accept the full u32 range for hex literals (e.g. `.word 0xdeadbeef`).
    if (i32::MIN as i64..=u32::MAX as i64).contains(&value) {
        Ok(value as u32 as i32)
    } else {
        Err(err())
    }
}

fn parse_target(tok: &str, line: usize) -> Result<Target, AsmError> {
    if tok.starts_with(|c: char| c.is_ascii_digit() || c == '-') {
        Ok(Target::Imm(parse_imm(tok, line)?))
    } else {
        Ok(Target::Label(tok.to_string()))
    }
}

/// Parses textual RV32E assembly into an [`Item`] stream.
///
/// Supported syntax: one instruction or `label:` per line, `#`/`;` comments,
/// `lw rd, imm(rs1)` memory operands, symbolic branch/jump targets, `.word
/// <value>` data directives, and `lui rd, <imm20>` (the immediate is the
/// upper-20 value as in GNU as).
///
/// # Errors
///
/// Returns [`AsmError::Parse`] with a line number for malformed input.
pub fn parse(text: &str) -> Result<Vec<Item>, AsmError> {
    let mut items = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let mut line = raw_line;
        if let Some(pos) = line.find(['#', ';']) {
            line = &line[..pos];
        }
        let mut rest = line.trim();
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(AsmError::Parse {
                    line: line_no,
                    message: format!("bad label `{label}`"),
                });
            }
            items.push(Item::Label(label.to_string()));
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(word) = rest.strip_prefix(".word") {
            let tok = word.trim();
            items.push(Item::Word(parse_imm(tok, line_no)? as u32));
            continue;
        }
        items.push(Item::Instr(parse_instr(rest, line_no)?));
    }
    Ok(items)
}

fn parse_instr(text: &str, line: usize) -> Result<AsmInstr, AsmError> {
    let err = |message: String| AsmError::Parse { line, message };
    let (name, ops) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
    let mnemonic = Mnemonic::from_name(name.trim())
        .ok_or_else(|| err(format!("unknown mnemonic `{name}`")))?;
    let ops: Vec<&str> = ops
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let argc = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(format!(
                "`{name}` expects {n} operands, got {}",
                ops.len()
            )))
        }
    };
    // Parses "imm(rs1)" memory operands.
    let mem_operand = |tok: &str| -> Result<(i32, Reg), AsmError> {
        let open = tok
            .find('(')
            .ok_or_else(|| err(format!("expected `imm(reg)`, got `{tok}`")))?;
        let close = tok
            .rfind(')')
            .ok_or_else(|| err(format!("expected `imm(reg)`, got `{tok}`")))?;
        let imm_part = tok[..open].trim();
        let imm = if imm_part.is_empty() {
            0
        } else {
            parse_imm(imm_part, line)?
        };
        let reg = parse_reg(tok[open + 1..close].trim(), line)?;
        Ok((imm, reg))
    };

    let mut ai = AsmInstr {
        mnemonic,
        rd: Reg::X0,
        rs1: Reg::X0,
        rs2: Reg::X0,
        target: Target::Imm(0),
    };
    match mnemonic.format() {
        Format::R => {
            argc(3)?;
            ai.rd = parse_reg(ops[0], line)?;
            ai.rs1 = parse_reg(ops[1], line)?;
            ai.rs2 = parse_reg(ops[2], line)?;
        }
        Format::I if mnemonic.is_load() => {
            argc(2)?;
            ai.rd = parse_reg(ops[0], line)?;
            let (imm, rs1) = mem_operand(ops[1])?;
            ai.rs1 = rs1;
            ai.target = Target::Imm(imm);
        }
        Format::I if mnemonic == Mnemonic::Jalr => {
            // Accept both `jalr rd, imm(rs1)` and `jalr rd, rs1, imm`.
            argc(2).or_else(|_| argc(3))?;
            ai.rd = parse_reg(ops[0], line)?;
            if ops.len() == 2 {
                let (imm, rs1) = mem_operand(ops[1])?;
                ai.rs1 = rs1;
                ai.target = Target::Imm(imm);
            } else {
                ai.rs1 = parse_reg(ops[1], line)?;
                ai.target = Target::Imm(parse_imm(ops[2], line)?);
            }
        }
        Format::I => {
            argc(3)?;
            ai.rd = parse_reg(ops[0], line)?;
            ai.rs1 = parse_reg(ops[1], line)?;
            ai.target = Target::Imm(parse_imm(ops[2], line)?);
        }
        Format::S => {
            argc(2)?;
            ai.rs2 = parse_reg(ops[0], line)?;
            let (imm, rs1) = mem_operand(ops[1])?;
            ai.rs1 = rs1;
            ai.target = Target::Imm(imm);
        }
        Format::B => {
            argc(3)?;
            ai.rs1 = parse_reg(ops[0], line)?;
            ai.rs2 = parse_reg(ops[1], line)?;
            ai.target = parse_target(ops[2], line)?;
        }
        Format::U => {
            argc(2)?;
            ai.rd = parse_reg(ops[0], line)?;
            let imm20 = parse_imm(ops[1], line)?;
            ai.target = Target::Imm(imm20 << 12);
        }
        Format::J => {
            argc(2)?;
            ai.rd = parse_reg(ops[0], line)?;
            ai.target = parse_target(ops[1], line)?;
        }
    }
    Ok(ai)
}

/// Disassembles machine words back into display strings (for reports).
pub fn disassemble(words: &[u32]) -> Vec<String> {
    words
        .iter()
        .map(|&w| match Instruction::decode(w) {
            Ok(i) => i.to_string(),
            Err(_) => format!(".word {w:#010x}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_resolution_backward_and_forward() {
        let items = vec![
            Item::label("top"),
            Item::Instr(AsmInstr {
                mnemonic: Mnemonic::Jal,
                rd: Reg::X0,
                rs1: Reg::X0,
                rs2: Reg::X0,
                target: "end".into(),
            }),
            Item::Instr(AsmInstr {
                mnemonic: Mnemonic::Beq,
                rd: Reg::X0,
                rs1: Reg::X1,
                rs2: Reg::X2,
                target: "top".into(),
            }),
            Item::label("end"),
            Item::instr(Instruction::i(Mnemonic::Addi, Reg::X1, Reg::X0, 1)),
        ];
        let words = assemble(&items, 0x80).unwrap();
        let jal = Instruction::decode(words[0]).unwrap();
        assert_eq!(jal.imm, 8); // 0x88 - 0x80
        let beq = Instruction::decode(words[1]).unwrap();
        assert_eq!(beq.imm, -4); // 0x80 - 0x84
    }

    #[test]
    fn duplicate_and_undefined_labels_error() {
        let dup = vec![Item::label("a"), Item::label("a")];
        assert_eq!(assemble(&dup, 0), Err(AsmError::DuplicateLabel("a".into())));
        let undef = vec![Item::Instr(AsmInstr {
            mnemonic: Mnemonic::Jal,
            rd: Reg::X0,
            rs1: Reg::X0,
            rs2: Reg::X0,
            target: "nowhere".into(),
        })];
        assert_eq!(
            assemble(&undef, 0),
            Err(AsmError::UndefinedLabel("nowhere".into()))
        );
    }

    #[test]
    fn range_checks() {
        let too_far = vec![Item::instr(Instruction::i(
            Mnemonic::Addi,
            Reg::X1,
            Reg::X0,
            4096,
        ))];
        assert!(matches!(
            assemble(&too_far, 0),
            Err(AsmError::TargetOutOfRange { .. })
        ));
    }

    #[test]
    fn parse_full_program() {
        let text = "
            # compute 5!
            start:
                addi a0, zero, 1
                addi a1, zero, 5
            loop:
                beq  a1, zero, done
                addi a1, a1, -1
                jal  x0, loop
            done:
                sw   a0, 0(sp)
                lw   a2, 0(sp)
        ";
        let items = parse(text).unwrap();
        let words = assemble(&items, 0).unwrap();
        assert_eq!(words.len(), 7);
        let beq = Instruction::decode(words[2]).unwrap();
        assert_eq!(beq.mnemonic, Mnemonic::Beq);
        assert_eq!(beq.imm, 12);
    }

    #[test]
    fn parse_mem_and_shift_and_lui() {
        let items =
            parse("lw x1, -8(x2)\nslli x3, x4, 5\nlui x5, 0x12345\n.word 0xdeadbeef").unwrap();
        let words = assemble(&items, 0).unwrap();
        assert_eq!(Instruction::decode(words[0]).unwrap().imm, -8);
        assert_eq!(Instruction::decode(words[1]).unwrap().imm, 5);
        assert_eq!(Instruction::decode(words[2]).unwrap().imm, 0x12345 << 12);
        assert_eq!(words[3], 0xdead_beef);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse("addi x1, x0, 1\nbogus x1, x2").unwrap_err();
        assert!(matches!(e, AsmError::Parse { line: 2, .. }), "{e}");
        let e = parse("addi x99, x0, 1").unwrap_err();
        assert!(matches!(e, AsmError::Parse { line: 1, .. }), "{e}");
    }

    #[test]
    fn disassemble_round_trips_through_parse() {
        let text = "addi x1, x2, 3\nand x4, x5, x6\nsb x7, 1(x8)";
        let words = assemble(&parse(text).unwrap(), 0).unwrap();
        let dis = disassemble(&words).join("\n");
        let words2 = assemble(&parse(&dis).unwrap(), 0).unwrap();
        assert_eq!(words, words2);
    }
}
