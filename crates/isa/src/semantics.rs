//! Golden architectural semantics for every instruction.
//!
//! The functions here play two roles in the reproduction:
//!
//! 1. [`block_semantics`] defines each instruction as a *pure function* over
//!    exactly the ports of the paper's instruction hardware blocks (Table 2):
//!    inputs `pc`, `insn`, `rs1_data`, `rs2_data`, `dmem_rdata` and outputs
//!    `next_pc`, `rd_data`, memory command signals, etc.  The hardware
//!    library in the `hwlib` crate is formally checked against these
//!    functions, mirroring the paper's SVA-based per-block verification.
//! 2. [`step`] executes one instruction against an architectural state and a
//!    memory, and is the building block of the reference simulator
//!    (`riscv-emu`), our stand-in for Spike.
//!
//! # Memory access convention
//!
//! The single-cycle datapath exchanges *aligned 32-bit words* with data
//! memory.  `dmem_addr` is the byte address computed by the instruction; the
//! memory returns the aligned word containing it and accepts a 4-bit byte
//! write mask plus lane-aligned write data.  Sub-word loads select the lane
//! with `addr[1:0]` (halfwords use `addr[1]`, ignoring bit 0); this is the
//! deterministic behaviour both the golden model and the hardware blocks
//! implement, and workloads only issue naturally aligned accesses.

use crate::{Instruction, Mnemonic, Reg};

/// Inputs of an instruction hardware block (one execution's worth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockInputs {
    /// Current program counter.
    pub pc: u32,
    /// The raw 32-bit instruction word.
    pub insn: u32,
    /// Value read from the register file at `rs1`.
    pub rs1_data: u32,
    /// Value read from the register file at `rs2`.
    pub rs2_data: u32,
    /// Aligned 32-bit word returned by data memory for `dmem_addr`.
    pub dmem_rdata: u32,
}

/// Outputs of an instruction hardware block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockOutputs {
    /// Program counter for the next cycle.
    pub next_pc: u32,
    /// Register-file read port addresses, straight from the encoding.
    pub rs1_addr: u8,
    /// Second register-file read port address.
    pub rs2_addr: u8,
    /// Destination register address.
    pub rd_addr: u8,
    /// Write-back value for `rd`.
    pub rd_data: u32,
    /// Whether `rd` is written this cycle.
    pub rd_we: bool,
    /// Byte address driven to data memory.
    pub dmem_addr: u32,
    /// Lane-aligned write data.
    pub dmem_wdata: u32,
    /// Per-byte write mask (bit *i* enables byte lane *i*).
    pub dmem_wmask: u8,
    /// Whether a memory read is performed.
    pub dmem_re: bool,
}

fn lane_shift(addr: u32) -> u32 {
    (addr & 3) * 8
}

/// Evaluates the golden datapath semantics of `instr` for the given block
/// inputs.
///
/// `inputs.insn` must be the encoding of `instr`; the register addresses in
/// the output are extracted from it exactly as the hardware does.
///
/// # Panics
///
/// Debug builds assert that `inputs.insn` round-trips to `instr`.
pub fn block_semantics(instr: Instruction, inputs: &BlockInputs) -> BlockOutputs {
    debug_assert_eq!(
        Instruction::decode(inputs.insn).ok(),
        Some(instr),
        "insn word does not match decoded instruction"
    );
    use Mnemonic::*;
    let m = instr.mnemonic;
    let pc = inputs.pc;
    let rs1 = inputs.rs1_data;
    let rs2 = inputs.rs2_data;
    let imm = instr.imm as u32;
    let seq_pc = pc.wrapping_add(4);

    let mut out = BlockOutputs {
        next_pc: seq_pc,
        rs1_addr: if m.reads_rs1() {
            instr.rs1.index() as u8
        } else {
            0
        },
        rs2_addr: if m.reads_rs2() {
            instr.rs2.index() as u8
        } else {
            0
        },
        rd_addr: if m.writes_rd() {
            instr.rd.index() as u8
        } else {
            0
        },
        ..BlockOutputs::default()
    };

    match m {
        Lui => {
            out.rd_data = imm;
            out.rd_we = true;
        }
        Auipc => {
            out.rd_data = pc.wrapping_add(imm);
            out.rd_we = true;
        }
        Jal => {
            out.rd_data = seq_pc;
            out.rd_we = true;
            out.next_pc = pc.wrapping_add(imm);
        }
        Jalr => {
            out.rd_data = seq_pc;
            out.rd_we = true;
            out.next_pc = rs1.wrapping_add(imm) & !1;
        }
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            let taken = match m {
                Beq => rs1 == rs2,
                Bne => rs1 != rs2,
                Blt => (rs1 as i32) < (rs2 as i32),
                Bge => (rs1 as i32) >= (rs2 as i32),
                Bltu => rs1 < rs2,
                Bgeu => rs1 >= rs2,
                _ => unreachable!(),
            };
            if taken {
                out.next_pc = pc.wrapping_add(imm);
            }
        }
        Lb | Lh | Lw | Lbu | Lhu => {
            let addr = rs1.wrapping_add(imm);
            out.dmem_addr = addr;
            out.dmem_re = true;
            out.rd_we = true;
            let word = inputs.dmem_rdata;
            out.rd_data = match m {
                Lw => word,
                Lb => {
                    let byte = (word >> lane_shift(addr)) & 0xff;
                    byte as u8 as i8 as i32 as u32
                }
                Lbu => (word >> lane_shift(addr)) & 0xff,
                Lh => {
                    let half = (word >> ((addr & 2) * 8)) & 0xffff;
                    half as u16 as i16 as i32 as u32
                }
                Lhu => (word >> ((addr & 2) * 8)) & 0xffff,
                _ => unreachable!(),
            };
        }
        Sb | Sh | Sw => {
            let addr = rs1.wrapping_add(imm);
            out.dmem_addr = addr;
            match m {
                Sw => {
                    out.dmem_wdata = rs2;
                    out.dmem_wmask = 0b1111;
                }
                Sh => {
                    let sh = (addr & 2) * 8;
                    out.dmem_wdata = (rs2 & 0xffff) << sh;
                    out.dmem_wmask = 0b0011 << (addr & 2);
                }
                Sb => {
                    let sh = lane_shift(addr);
                    out.dmem_wdata = (rs2 & 0xff) << sh;
                    out.dmem_wmask = 1 << (addr & 3);
                }
                _ => unreachable!(),
            }
        }
        Addi | Slti | Sltiu | Xori | Ori | Andi | Slli | Srli | Srai | Add | Sub | Sll | Slt
        | Sltu | Xor | Srl | Sra | Or | And => {
            let b = match m.format() {
                crate::Format::R => rs2,
                _ => imm,
            };
            let shamt = b & 0x1f;
            out.rd_data = match m {
                Addi | Add => rs1.wrapping_add(b),
                Sub => rs1.wrapping_sub(b),
                Slti | Slt => ((rs1 as i32) < (b as i32)) as u32,
                Sltiu | Sltu => (rs1 < b) as u32,
                Xori | Xor => rs1 ^ b,
                Ori | Or => rs1 | b,
                Andi | And => rs1 & b,
                Slli | Sll => rs1 << shamt,
                Srli | Srl => rs1 >> shamt,
                Srai | Sra => ((rs1 as i32) >> shamt) as u32,
                _ => unreachable!(),
            };
            out.rd_we = true;
        }
    }
    // Writes to x0 are architectural no-ops; the register file enforces it,
    // but the golden model also reports it so RVFI checks line up.
    if out.rd_addr == 0 {
        out.rd_we = false;
        out.rd_data = 0;
    }
    out
}

/// Architectural state of an RV32E hart: PC plus sixteen registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    /// Program counter.
    pub pc: u32,
    /// Register file; `regs[0]` is always zero.
    pub regs: [u32; crate::REG_COUNT],
}

impl ArchState {
    /// A reset hart with `pc = entry` and all registers zero.
    pub fn new(entry: u32) -> ArchState {
        ArchState {
            pc: entry,
            regs: [0; crate::REG_COUNT],
        }
    }

    /// Reads a register (`x0` reads as zero by construction).
    pub fn read(&self, reg: Reg) -> u32 {
        self.regs[reg.index()]
    }

    /// Writes a register; writes to `x0` are discarded.
    pub fn write(&mut self, reg: Reg, value: u32) {
        if reg != Reg::X0 {
            self.regs[reg.index()] = value;
        }
    }
}

impl Default for ArchState {
    fn default() -> Self {
        ArchState::new(0)
    }
}

/// Byte-addressable memory as seen by [`step`].
pub trait Memory {
    /// Reads the aligned 32-bit word containing byte address `addr`.
    fn read_word(&mut self, addr: u32) -> u32;
    /// Writes the byte lanes of `mask` within the aligned word containing
    /// `addr`; `data` is lane-aligned.
    fn write_word(&mut self, addr: u32, data: u32, mask: u8);
}

/// Executes one instruction, updating `state` and `mem`, and returns the
/// block-level view of the execution (used for RVFI trace comparison).
pub fn step<M: Memory>(state: &mut ArchState, instr: Instruction, mem: &mut M) -> BlockOutputs {
    let mut inputs = BlockInputs {
        pc: state.pc,
        insn: instr.encode(),
        rs1_data: state.read(instr.rs1),
        rs2_data: state.read(instr.rs2),
        dmem_rdata: 0,
    };
    if instr.mnemonic.is_load() {
        let addr = inputs.rs1_data.wrapping_add(instr.imm as u32);
        inputs.dmem_rdata = mem.read_word(addr);
    }
    let out = block_semantics(instr, &inputs);
    if out.dmem_wmask != 0 {
        mem.write_word(out.dmem_addr, out.dmem_wdata, out.dmem_wmask);
    }
    if out.rd_we {
        if let Some(rd) = Reg::from_index(out.rd_addr as usize) {
            state.write(rd, out.rd_data);
        }
    }
    state.pc = out.next_pc;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec1(instr: Instruction, rs1: u32, rs2: u32) -> BlockOutputs {
        let inputs = BlockInputs {
            pc: 0x100,
            insn: instr.encode(),
            rs1_data: rs1,
            rs2_data: rs2,
            dmem_rdata: 0,
        };
        block_semantics(instr, &inputs)
    }

    #[test]
    fn add_sub_wrap() {
        let add = Instruction::r(Mnemonic::Add, Reg::X1, Reg::X2, Reg::X3);
        assert_eq!(exec1(add, u32::MAX, 1).rd_data, 0);
        let sub = Instruction::r(Mnemonic::Sub, Reg::X1, Reg::X2, Reg::X3);
        assert_eq!(exec1(sub, 0, 1).rd_data, u32::MAX);
    }

    #[test]
    fn slt_signed_vs_unsigned() {
        let slt = Instruction::r(Mnemonic::Slt, Reg::X1, Reg::X2, Reg::X3);
        let sltu = Instruction::r(Mnemonic::Sltu, Reg::X1, Reg::X2, Reg::X3);
        assert_eq!(exec1(slt, 0xffff_ffff, 0).rd_data, 1); // -1 < 0
        assert_eq!(exec1(sltu, 0xffff_ffff, 0).rd_data, 0);
    }

    #[test]
    fn shifts_use_low_five_bits() {
        let sll = Instruction::r(Mnemonic::Sll, Reg::X1, Reg::X2, Reg::X3);
        assert_eq!(exec1(sll, 1, 33).rd_data, 2);
        let sra = Instruction::r(Mnemonic::Sra, Reg::X1, Reg::X2, Reg::X3);
        assert_eq!(exec1(sra, 0x8000_0000, 31).rd_data, 0xffff_ffff);
        let srl = Instruction::r(Mnemonic::Srl, Reg::X1, Reg::X2, Reg::X3);
        assert_eq!(exec1(srl, 0x8000_0000, 31).rd_data, 1);
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let beq = Instruction::b(Mnemonic::Beq, Reg::X2, Reg::X3, -8);
        assert_eq!(
            exec1(beq, 5, 5).next_pc,
            0x100u32.wrapping_add(-8i32 as u32)
        );
        assert_eq!(exec1(beq, 5, 6).next_pc, 0x104);
        let bgeu = Instruction::b(Mnemonic::Bgeu, Reg::X2, Reg::X3, 16);
        assert_eq!(exec1(bgeu, 1, 0xffff_ffff).next_pc, 0x104);
    }

    #[test]
    fn jal_jalr_link_and_target() {
        let jal = Instruction::j(Mnemonic::Jal, Reg::X1, 0x40);
        let o = exec1(jal, 0, 0);
        assert_eq!(o.next_pc, 0x140);
        assert_eq!(o.rd_data, 0x104);
        assert!(o.rd_we);
        let jalr = Instruction::i(Mnemonic::Jalr, Reg::X1, Reg::X2, 3);
        let o = exec1(jalr, 0x200, 0);
        assert_eq!(o.next_pc, 0x202); // low bit cleared
    }

    #[test]
    fn load_lane_selection() {
        let mut inputs = BlockInputs {
            pc: 0,
            insn: 0,
            rs1_data: 0x1001, // byte lane 1
            rs2_data: 0,
            dmem_rdata: 0x8899_aabb,
        };
        let lb = Instruction::i(Mnemonic::Lb, Reg::X1, Reg::X2, 0);
        inputs.insn = lb.encode();
        assert_eq!(block_semantics(lb, &inputs).rd_data, 0xffff_ffaa);
        let lbu = Instruction::i(Mnemonic::Lbu, Reg::X1, Reg::X2, 0);
        inputs.insn = lbu.encode();
        assert_eq!(block_semantics(lbu, &inputs).rd_data, 0xaa);
        inputs.rs1_data = 0x1002; // half lane 1
        let lh = Instruction::i(Mnemonic::Lh, Reg::X1, Reg::X2, 0);
        inputs.insn = lh.encode();
        assert_eq!(block_semantics(lh, &inputs).rd_data, 0xffff_8899);
        let lhu = Instruction::i(Mnemonic::Lhu, Reg::X1, Reg::X2, 0);
        inputs.insn = lhu.encode();
        assert_eq!(block_semantics(lhu, &inputs).rd_data, 0x8899);
    }

    #[test]
    fn store_masks_and_lanes() {
        let sb = Instruction::s(Mnemonic::Sb, Reg::X2, Reg::X3, 0);
        let o = exec1(sb, 0x2003, 0xdd);
        assert_eq!(o.dmem_wmask, 0b1000);
        assert_eq!(o.dmem_wdata, 0xdd00_0000);
        let sh = Instruction::s(Mnemonic::Sh, Reg::X2, Reg::X3, 0);
        let o = exec1(sh, 0x2002, 0xbeef);
        assert_eq!(o.dmem_wmask, 0b1100);
        assert_eq!(o.dmem_wdata, 0xbeef_0000);
        let sw = Instruction::s(Mnemonic::Sw, Reg::X2, Reg::X3, 0);
        let o = exec1(sw, 0x2000, 0x1234_5678);
        assert_eq!(o.dmem_wmask, 0b1111);
        assert_eq!(o.dmem_wdata, 0x1234_5678);
    }

    #[test]
    fn x0_writes_are_suppressed() {
        let addi = Instruction::i(Mnemonic::Addi, Reg::X0, Reg::X2, 7);
        let o = exec1(addi, 1, 0);
        assert!(!o.rd_we);
        assert_eq!(o.rd_data, 0);
    }

    #[test]
    fn step_updates_state_and_memory() {
        struct Flat(Vec<u32>);
        impl Memory for Flat {
            fn read_word(&mut self, addr: u32) -> u32 {
                self.0[(addr >> 2) as usize]
            }
            fn write_word(&mut self, addr: u32, data: u32, mask: u8) {
                let w = &mut self.0[(addr >> 2) as usize];
                for lane in 0..4 {
                    if mask & (1 << lane) != 0 {
                        let m = 0xffu32 << (lane * 8);
                        *w = (*w & !m) | (data & m);
                    }
                }
            }
        }
        let mut mem = Flat(vec![0; 16]);
        let mut st = ArchState::new(0);
        st.write(Reg::X2, 0x1234);
        step(
            &mut st,
            Instruction::s(Mnemonic::Sw, Reg::X0, Reg::X2, 8),
            &mut mem,
        );
        assert_eq!(mem.0[2], 0x1234);
        step(
            &mut st,
            Instruction::i(Mnemonic::Lw, Reg::X3, Reg::X0, 8),
            &mut mem,
        );
        assert_eq!(st.read(Reg::X3), 0x1234);
        assert_eq!(st.pc, 8);
    }
}
