//! Multi-threaded sharded simulation backend.
//!
//! [`ShardedSim`] runs N independent [`CompiledSim`]s — the *shards* —
//! over disjoint stimulus lane ranges, optionally spread across worker
//! threads. Because shards never share mutable state, the merged results
//! (outputs, FF state, per-net toggle counts) are bit-identical to
//! running the same shards sequentially on one thread: the thread count
//! is purely a scheduling knob and can never change a simulation result.
//! The full contract is written down in `docs/simulation.md` and enforced
//! by the cross-backend property tests in
//! `crates/netlist/tests/properties.rs`.
//!
//! Since the compiled backend grew K-word lane blocks, full-width (64
//! lane) logical shards *fuse*: [`ShardPolicy::lane_words`] consecutive
//! shards become one wide `CompiledSim` of up to `lane_words * 64` lanes
//! — one compile, one state arena, one settle walk for the whole block —
//! and any thread budget the fusion frees up is routed into intra-shard
//! parallel level evaluation ([`EvalPolicy::par_levels`]). A policy
//! asking for `4 x 64` lanes on 2 threads therefore runs one 256-lane
//! sim whose settles split levels across 2 workers, instead of 4 sims
//! paying 4 level walks. Shards narrower than a full word never fuse.
//!
//! Lane numbering is global: a [`ShardedSim`] over `T` total lanes in
//! physical blocks of `B` puts global lane `g` in block `g / B` at local
//! lane `g % B` (only the trailing block may be narrower). Toggle merging
//! is exact because the compiled backend's popcount accounting is
//! per-lane independent — the merged per-net count is simply the sum over
//! shards (see `docs/simulation.md` § "Toggle accounting").
//!
//! Two usage patterns:
//! * **Per-settle** — drive lanes through the [`SimBackend`] trait and call
//!   [`ShardedSim::eval`]; each eval submits one job to the persistent
//!   worker pool. Good when settles are interleaved with host-side logic.
//! * **Batched** — hand a whole per-shard schedule to
//!   [`ShardedSim::par_shards`]; one pool job covers the entire run.
//!   This is what `hwlib`'s verification sweeps and the `gate_sim` bench
//!   use.
//!
//! Under the default [`ShardSchedule::WorkStealing`], idle workers claim
//! the next shard index off a single atomic counter — no queue, no lock.
//! Evaluation runs on the shared [`crate::pool::WorkerPool`] when
//! available ([`ShardPolicy::use_pool`], `GATE_SIM_POOL`), and on
//! per-call scoped threads otherwise; both paths use the same claim
//! counter and are bit-identical.

use crate::compiled::{CompiledSim, EvalMode, EvalPolicy, LANES_PER_WORD, MAX_LANE_WORDS};
use crate::pool::{self, WorkerPool};
use crate::sim::{EvalStats, SimBackend};
use crate::{NetId, Netlist};
use std::cell::OnceCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Default lane-block fusion width when `GATE_SIM_LANE_WORDS` is unset:
/// 4 words = 256 lanes per block, the widest monomorphized kernel.
pub const DEFAULT_LANE_WORDS: usize = 4;

/// How a batch of shards is scheduled onto the worker threads of one
/// [`ShardedSim::par_shards`] scope.
///
/// Purely a scheduling knob: shards are disjoint and results are written
/// back in shard order, so every schedule produces bit-identical results
/// (property-tested in `crates/netlist/tests/properties.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ShardSchedule {
    /// Threads pull the next unclaimed shard from a shared queue the
    /// moment they finish their current one, so uneven per-shard loads
    /// (e.g. one shard's schedule settling far more than the others') no
    /// longer serialize on the slowest statically-assigned thread.
    #[default]
    WorkStealing,
    /// The pre-work-stealing scheduler: shards are pre-sliced into one
    /// contiguous chunk per thread, balanced by *weight* (a shard's op
    /// stream length times its lane-block width), so a partial trailing
    /// lane block no longer drags a full-width shard onto its thread.
    /// Runs on the persistent worker pool like the stealing scheduler.
    #[deprecated(
        since = "0.1.0",
        note = "static pre-slicing balances compile-time weight but still \
                cannot rebalance loads that only differ at run time (e.g. \
                per-shard settle counts); use ShardSchedule::WorkStealing \
                (the default). Kept reachable so the determinism property \
                tests can pin both schedulers against each other."
    )]
    Static,
}

/// How a stimulus batch is split into shards and scheduled onto threads.
///
/// `shards * lanes_per_shard` is the total lane count; `threads`,
/// `schedule`, `par_levels`, and `lane_words` only control how those
/// lanes evaluate (how many OS threads, how shards are handed to them,
/// how many additional workers split each level *inside* a shard settle,
/// and how many full-width shards fuse into one wide lane block) and
/// never affect simulation values or toggle counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPolicy {
    /// Number of logical [`CompiledSim`] shards.
    pub shards: usize,
    /// Stimulus lanes per logical shard (1..=[`LANES_PER_WORD`]).
    pub lanes_per_shard: usize,
    /// Worker threads to spread shards over (clamped to the physical
    /// shard count after lane-block fusion; the leftover budget becomes
    /// intra-shard [`EvalPolicy::par_levels`] workers).
    pub threads: usize,
    /// How shards are handed to the worker threads.
    pub schedule: ShardSchedule,
    /// Intra-shard parallel level evaluation: every shard settles with
    /// [`EvalPolicy::par_levels`]`(par_levels)` workers (1 = sequential
    /// shard settles). Multiplies with `threads`, so keep
    /// `threads * par_levels` within the physical core budget.
    pub par_levels: usize,
    /// Run work-stealing evaluations on the persistent shared
    /// [`crate::pool::WorkerPool`] (the default) instead of spawning a
    /// fresh `std::thread::scope` per call. Purely a performance knob —
    /// both paths claim shards off the same atomic counter and are
    /// bit-identical — kept switchable so benches can measure the pool
    /// against its scoped predecessor (`GATE_SIM_POOL=0` forces it off
    /// globally).
    pub use_pool: bool,
    /// Lane-block fusion width in 64-lane words
    /// (1..=[`MAX_LANE_WORDS`]): up to `lane_words` consecutive
    /// *full-width* (64-lane) logical shards fuse into one wide
    /// [`CompiledSim`] so one settle walk covers the whole block; `1`
    /// reproduces the historical one-sim-per-64-lanes layout exactly.
    /// Shards narrower than 64 lanes never fuse. Values and toggle
    /// counts are bit-identical for every width; only
    /// [`crate::sim::EvalStats`] work counters may differ (a wide block
    /// re-evaluates an op when *any* of its lanes changed). Defaults to
    /// the `GATE_SIM_LANE_WORDS` environment override
    /// ([`crate::env_lane_words`]), falling back to 4.
    pub lane_words: usize,
}

impl ShardPolicy {
    /// One full-width shard on the calling thread — behaves exactly like a
    /// plain 64-lane [`CompiledSim`].
    pub fn single() -> ShardPolicy {
        ShardPolicy {
            shards: 1,
            lanes_per_shard: LANES_PER_WORD,
            threads: 1,
            schedule: ShardSchedule::default(),
            par_levels: 1,
            use_pool: true,
            lane_words: crate::env_lane_words().unwrap_or(DEFAULT_LANE_WORDS),
        }
    }

    /// `n` full-width shards, one thread each (fusion permitting — see
    /// [`ShardPolicy::lane_words`]).
    pub fn threads(n: usize) -> ShardPolicy {
        ShardPolicy {
            shards: n.max(1),
            lanes_per_shard: LANES_PER_WORD,
            threads: n.max(1),
            ..ShardPolicy::single()
        }
    }

    /// One full-width shard per thread, honouring the `GATE_SIM_THREADS`
    /// environment override ([`crate::env_threads`]) first and falling
    /// back to one per available CPU (at least one).
    pub fn auto() -> ShardPolicy {
        let n = crate::env_threads().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        });
        ShardPolicy::threads(n)
    }

    /// Total stimulus lanes across all shards.
    pub fn total_lanes(&self) -> usize {
        self.shards * self.lanes_per_shard
    }
}

impl Default for ShardPolicy {
    fn default() -> ShardPolicy {
        ShardPolicy::single()
    }
}

/// Multi-threaded sharded simulator: N independent compiled shards over
/// disjoint stimulus lanes, merged deterministically.
#[derive(Debug)]
pub struct ShardedSim {
    shards: Vec<CompiledSim>,
    /// Physical lanes per shard after fusion (only the trailing shard may
    /// hold fewer).
    lanes_per_shard: usize,
    /// Total stimulus lanes (`policy.shards * policy.lanes_per_shard`).
    total_lanes: usize,
    threads: usize,
    schedule: ShardSchedule,
    /// Whether pooled evaluation was requested ([`ShardPolicy::use_pool`]);
    /// remembered so [`ShardedSim::set_threads`] can re-acquire the pool.
    want_pool: bool,
    /// Handle on the persistent worker pool, held while the policy wants
    /// pooled threads. Dropping the last handle process-wide joins the
    /// pool's workers.
    pool: Option<Arc<WorkerPool>>,
    /// Merged per-net toggle counts, rebuilt lazily after each eval.
    merged_toggles: OnceCell<Vec<u64>>,
}

impl ShardedSim {
    /// Compiles `netlist` into `threads` full-width shards, one thread each.
    pub fn new(netlist: &Netlist, threads: usize) -> ShardedSim {
        ShardedSim::with_policy(netlist, ShardPolicy::threads(threads))
    }

    /// Like [`ShardedSim::new`], but shares an already-owned netlist
    /// instead of deep-cloning it.
    pub fn new_arc(netlist: Arc<Netlist>, threads: usize) -> ShardedSim {
        ShardedSim::with_policy_arc(netlist, ShardPolicy::threads(threads))
    }

    /// Compiles `netlist` under an explicit shard policy. Thin wrapper
    /// over [`ShardedSim::with_policy_arc`] that clones the netlist once;
    /// callers that already hold an [`Arc<Netlist>`] should pass it to the
    /// `_arc` constructor so the shard fan-out shares their copy.
    ///
    /// # Panics
    ///
    /// Panics if `policy.shards == 0`, `policy.threads == 0`, or
    /// `policy.lanes_per_shard` is outside `1..=64`.
    pub fn with_policy(netlist: &Netlist, policy: ShardPolicy) -> ShardedSim {
        ShardedSim::with_policy_arc(Arc::new(netlist.clone()), policy)
    }

    /// Compiles the shared `netlist` under an explicit shard policy
    /// without copying the netlist structure: every shard holds the same
    /// [`Arc`], so the gate arena exists once regardless of shard count.
    ///
    /// # Panics
    ///
    /// Panics if `policy.shards == 0`, `policy.threads == 0`, or
    /// `policy.lanes_per_shard` is outside `1..=64`.
    pub fn with_policy_arc(netlist: Arc<Netlist>, policy: ShardPolicy) -> ShardedSim {
        assert!(policy.shards >= 1, "policy needs at least one shard");
        assert!(policy.threads >= 1, "policy needs at least one thread");
        assert!(
            policy.par_levels >= 1,
            "policy needs at least one par-level worker"
        );
        assert!(
            (1..=MAX_LANE_WORDS).contains(&policy.lane_words),
            "policy.lane_words must be in 1..={MAX_LANE_WORDS}, got {}",
            policy.lane_words
        );
        let total_lanes = policy.shards * policy.lanes_per_shard;
        // Lane-block fusion: full-width logical shards regroup into wide
        // physical blocks of `lane_words * 64` lanes (one compile, one
        // state arena, one settle walk per block); narrower shards are
        // not word-aligned and keep their requested shape.
        let block_lanes = if policy.lanes_per_shard == LANES_PER_WORD && policy.lane_words > 1 {
            policy.lane_words * LANES_PER_WORD
        } else {
            policy.lanes_per_shard
        };
        let shard_lanes: Vec<usize> = (0..total_lanes.div_ceil(block_lanes))
            .map(|i| (total_lanes - i * block_lanes).min(block_lanes))
            .collect();
        let threads = policy.threads.min(shard_lanes.len());
        // Fusion can leave fewer blocks than requested threads; route the
        // freed budget into intra-shard parallel level evaluation so
        // `threads` keeps meaning "worker threads the eval may use".
        // Results are unaffected: par-level settles are bit-identical.
        let intra = policy.par_levels * (policy.threads / shard_lanes.len()).max(1);
        // Blocks are identical at reset: levelize/compile once, clone (or
        // reshape, for a partial trailing block — both share the compiled
        // program and the netlist Arc).
        let mut first = CompiledSim::with_lanes_arc(netlist, shard_lanes[0]);
        first.set_eval_policy(EvalPolicy {
            use_pool: policy.use_pool,
            ..EvalPolicy::par_levels(intra)
        });
        let shards: Vec<CompiledSim> = shard_lanes
            .iter()
            .map(|&l| {
                if l == shard_lanes[0] {
                    first.clone()
                } else {
                    first.reshaped(l)
                }
            })
            .collect();
        let mut sim = ShardedSim {
            shards,
            // `shard_lanes[0]`, not `block_lanes`: when `total_lanes` is
            // smaller than a full fusion block the only shard is narrower
            // than the block cap, and `lanes_per_shard()` must report the
            // width callers can actually drive.
            lanes_per_shard: shard_lanes[0],
            total_lanes,
            threads,
            schedule: policy.schedule,
            want_pool: policy.use_pool,
            pool: None,
            merged_toggles: OnceCell::new(),
        };
        sim.acquire_pool();
        sim
    }

    /// (Re-)acquires or releases the shared worker pool to match the
    /// current `threads`/`want_pool` configuration. Both schedulers run
    /// their slices on the pool: pooled-vs-scoped execution is
    /// bit-identical, so pooling the deprecated static path keeps the
    /// determinism pins intact while removing its per-call spawn tax.
    fn acquire_pool(&mut self) {
        let poolable = self.threads > 1 && self.want_pool && pool::env_pool_enabled();
        self.pool = poolable.then(|| WorkerPool::shared(self.threads - 1));
    }

    /// Selects every shard's evaluation strategy ([`EvalMode`]). Purely a
    /// performance knob: results are bit-identical in every mode.
    pub fn set_eval_mode(&mut self, mode: EvalMode) {
        for s in &mut self.shards {
            s.set_eval_mode(mode);
        }
    }

    /// Selects every shard's intra-settle parallelism ([`EvalPolicy`]).
    /// Purely a performance knob: results are bit-identical for every
    /// policy. Each shard settle then uses `policy.threads` workers *in
    /// addition to* the shard threads, so keep the product within the
    /// physical core budget.
    pub fn set_eval_policy(&mut self, policy: EvalPolicy) {
        for s in &mut self.shards {
            s.set_eval_policy(policy);
        }
    }

    /// How shards are handed to the worker threads.
    pub fn schedule(&self) -> ShardSchedule {
        self.schedule
    }

    /// Merged work counters: the elementwise sum of every shard's
    /// [`CompiledSim::eval_stats`].
    pub fn eval_stats(&self) -> EvalStats {
        self.shards
            .iter()
            .map(|s| s.eval_stats())
            .fold(EvalStats::default(), EvalStats::merge)
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        self.shards[0].netlist()
    }

    /// The physical shard simulators, in lane order (read access for
    /// inspection). With lane-block fusion these are *wide* sims — see
    /// [`ShardPolicy::lane_words`].
    pub fn shards(&self) -> &[CompiledSim] {
        &self.shards
    }

    /// Number of physical shards (lane blocks) after fusion.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Stimulus lanes per physical shard (the trailing shard may hold
    /// fewer; see [`CompiledSim::lanes`][SimBackend::lanes] per shard).
    pub fn lanes_per_shard(&self) -> usize {
        self.lanes_per_shard
    }

    /// Worker threads used per evaluation.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Re-schedules future evaluations over `threads` threads. Results are
    /// unaffected — this is purely a performance knob.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1).min(self.shards.len());
        self.acquire_pool();
    }

    fn shard_of(&self, lane: usize) -> (usize, usize) {
        assert!(
            lane < self.total_lanes,
            "lane {lane} out of range (lanes = {})",
            self.total_lanes
        );
        (lane / self.lanes_per_shard, lane % self.lanes_per_shard)
    }

    /// Runs `f(shard_index, shard)` for every shard, spread over the
    /// configured threads as one job on the persistent worker pool (or
    /// one scoped-thread batch on the fallback paths), and returns the
    /// results in shard order.
    ///
    /// This is the batched entry point: putting a whole settle schedule
    /// inside `f` amortises even the (small) per-job submission cost over
    /// the run. Shards are disjoint, so any interleaving produces
    /// identical state — but keep shards in *cycle lockstep* (equal
    /// [`CompiledSim::step`] counts) if you later read
    /// [`ShardedSim::cycles`] or activity.
    ///
    /// Under the default [`ShardSchedule::WorkStealing`] the threads
    /// claim shard indices off one atomic counter, so uneven per-shard
    /// loads rebalance automatically; results are written back by shard
    /// index either way, so `f`'s return values (and all shard state) are
    /// independent of the schedule and the thread count.
    pub fn par_shards<R, F>(&mut self, f: F) -> Vec<R>
    where
        F: Fn(usize, &mut CompiledSim) -> R + Sync,
        R: Send,
    {
        self.merged_toggles.take();
        let threads = self.threads.min(self.shards.len());
        if threads <= 1 {
            return self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(i, s)| f(i, s))
                .collect();
        }
        #[allow(deprecated)] // the deprecated static path stays reachable
        match self.schedule {
            ShardSchedule::WorkStealing => self.par_shards_stealing(threads, f),
            ShardSchedule::Static => self.par_shards_static(threads, f),
        }
    }

    /// [`ShardedSim::par_shards`] under [`ShardSchedule::WorkStealing`]:
    /// each worker claims the next unclaimed shard index off one atomic
    /// counter the moment it goes idle — lock-free, no queue structure at
    /// all (this replaced a mutex-guarded iterator queue). The claim
    /// order is nondeterministic; the work and the results are not — a
    /// `fetch_add` hands out each index exactly once, so every `(index,
    /// shard)` pair is processed by exactly one thread and each result is
    /// written into its own slot of a shard-indexed vector.
    ///
    /// Runs as one job on the persistent pool when available, and on
    /// per-call scoped threads otherwise (`GATE_SIM_POOL=0`, a policy
    /// opt-out, or a call nested inside another pool job); both paths
    /// execute the identical claim loop.
    fn par_shards_stealing<R, F>(&mut self, threads: usize, f: F) -> Vec<R>
    where
        F: Fn(usize, &mut CompiledSim) -> R + Sync,
        R: Send,
    {
        let count = self.shards.len();
        let next = AtomicUsize::new(0);
        let mut results: Vec<Option<R>> = (0..count).map(|_| None).collect();

        /// Raw, `Sync` view of the shard array and the result slots.
        ///
        /// # Safety contract
        ///
        /// Index `i` of both arrays is touched only by the worker whose
        /// `next.fetch_add(1)` returned `i` — the counter hands out each
        /// index exactly once — so all concurrent access is
        /// index-disjoint, and the job's completion edge (pool latch or
        /// scope join) orders every slot write before the caller's reads.
        struct StealArena<R> {
            shards: *mut CompiledSim,
            results: *mut Option<R>,
        }
        // SAFETY: see the struct-level contract — index-disjoint access
        // ordered by the job completion edge.
        unsafe impl<R> Sync for StealArena<R> {}

        let arena = StealArena {
            shards: self.shards.as_mut_ptr(),
            results: results.as_mut_ptr(),
        };
        let worker = |_tid: usize, _barrier: &pool::SpinBarrier| loop {
            // Capture the whole arena, not its raw-pointer fields: the
            // `Sync` contract lives on the struct (edition-2021 closures
            // would otherwise capture the pointers disjointly).
            let arena = &arena;
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= count {
                break;
            }
            // SAFETY: the claim counter yielded `i` to this worker alone.
            let shard = unsafe { &mut *arena.shards.add(i) };
            let r = f(i, shard);
            // SAFETY: same claim; the slot was preset to None by the
            // caller and is read back only after the job completes.
            unsafe { *arena.results.add(i) = Some(r) };
        };
        pool::dispatch(self.pool.as_deref(), threads, worker);
        results
            .into_iter()
            .map(|r| r.expect("every shard index claimed exactly once"))
            .collect()
    }

    /// [`ShardedSim::par_shards`] under the deprecated
    /// [`ShardSchedule::Static`]: shards are pre-sliced into one
    /// contiguous chunk per thread, balanced by measured weight (a
    /// shard's op stream length times its lane-block width) instead of
    /// by shard count, so a cheap partial trailing block no longer
    /// occupies a whole thread while a heavy one queues. The slicing is
    /// a pure function of the (immutable) program and shard shapes —
    /// fully deterministic — and each shard index is owned by exactly
    /// one thread, so results are bit-identical to the stealing
    /// scheduler and to sequential execution. Runtime load imbalance
    /// (e.g. uneven per-shard settle counts in `f`) still serializes on
    /// the assigned thread; that is why the stealing scheduler remains
    /// the default.
    fn par_shards_static<R, F>(&mut self, threads: usize, f: F) -> Vec<R>
    where
        F: Fn(usize, &mut CompiledSim) -> R + Sync,
        R: Send,
    {
        let weights: Vec<u64> = self
            .shards
            .iter()
            .map(|s| (s.program().len() * s.lane_words()) as u64)
            .collect();
        let bounds = balanced_bounds(&weights, threads);
        let mut results: Vec<Option<R>> = (0..self.shards.len()).map(|_| None).collect();

        /// Raw, `Sync` view of the shard array and the result slots.
        ///
        /// # Safety contract
        ///
        /// `bounds` partitions `0..shards.len()` into disjoint contiguous
        /// ranges, and thread `t` touches exactly the indices of
        /// `bounds[t]` — so all concurrent access is index-disjoint, and
        /// the job's completion edge (pool latch or scope join) orders
        /// every slot write before the caller's reads.
        struct StaticArena<R> {
            shards: *mut CompiledSim,
            results: *mut Option<R>,
        }
        // SAFETY: see the struct-level contract — index-disjoint access
        // ordered by the job completion edge.
        unsafe impl<R> Sync for StaticArena<R> {}

        let arena = StaticArena {
            shards: self.shards.as_mut_ptr(),
            results: results.as_mut_ptr(),
        };
        let worker = |tid: usize, _barrier: &pool::SpinBarrier| {
            // Capture the whole arena, not its raw-pointer fields (the
            // `Sync` contract lives on the struct).
            let arena = &arena;
            for i in bounds[tid].clone() {
                // SAFETY: `bounds` hands index `i` to this thread alone.
                let shard = unsafe { &mut *arena.shards.add(i) };
                let r = f(i, shard);
                // SAFETY: same ownership; the slot was preset to None by
                // the caller and read back only after the job completes.
                unsafe { *arena.results.add(i) = Some(r) };
            }
        };
        pool::dispatch(self.pool.as_deref(), threads, worker);
        results
            .into_iter()
            .map(|r| r.expect("balanced bounds cover every shard index"))
            .collect()
    }

    /// Settles all combinational logic on every shard (one pool job, or
    /// one thread scope on the fallback paths).
    pub fn eval(&mut self) {
        self.par_shards(|_, s| s.eval());
    }

    /// Clock edge on every shard. Cheap (per-DFF word copies), so it runs
    /// on the calling thread.
    pub fn step(&mut self) {
        for s in &mut self.shards {
            s.step();
        }
    }

    /// Drives one global lane of the named input port.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or `lane >= lanes()`.
    pub fn set_bus_lane(&mut self, port: &str, lane: usize, value: u64) {
        let (shard, local) = self.shard_of(lane);
        self.shards[shard].set_bus_lane(port, local, value);
    }

    /// Drives the named input port with one value per global lane
    /// (`values[lane]`'s low bits), splitting the batch across shards.
    ///
    /// Lanes beyond `values.len()` keep their previous stimulus, exactly as
    /// in [`CompiledSim::set_bus_lanes`].
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or `values.len() > lanes()`.
    pub fn set_bus_lanes(&mut self, port: &str, values: &[u64]) {
        assert!(
            values.len() <= self.total_lanes,
            "{} stimuli exceed {} lanes",
            values.len(),
            self.total_lanes
        );
        for (shard, chunk) in values.chunks(self.lanes_per_shard).enumerate() {
            self.shards[shard].set_bus_lanes(port, chunk);
        }
    }

    /// Drives the named input port identically on every lane of every shard.
    pub fn set_bus_u64(&mut self, port: &str, value: u64) {
        for s in &mut self.shards {
            s.set_bus_u64(port, value);
        }
    }

    /// Reads one net on one global lane.
    pub fn get_lane(&self, net: NetId, lane: usize) -> bool {
        let (shard, local) = self.shard_of(lane);
        self.shards[shard].get_lane(net, local)
    }

    /// Reads up to 64 bits of the named output port on one global lane.
    pub fn get_bus_lane(&self, port: &str, lane: usize) -> u64 {
        let (shard, local) = self.shard_of(lane);
        self.shards[shard].get_bus_lane(port, local)
    }

    /// Forces the stored state of a DFF on every lane of every shard.
    pub fn set_ff(&mut self, net: NetId, value: bool) {
        for s in &mut self.shards {
            s.set_ff(net, value);
        }
    }

    /// Merged per-net toggle counts: the exact elementwise sum of every
    /// shard's counts (rebuilt lazily after an eval).
    pub fn toggles(&self) -> &[u64] {
        self.merged_toggles.get_or_init(|| {
            let mut merged = self.shards[0].toggles().to_vec();
            for s in &self.shards[1..] {
                for (m, &t) in merged.iter_mut().zip(s.toggles()) {
                    *m += t;
                }
            }
            merged
        })
    }

    /// Clock cycles stepped so far (shards step in lockstep; shard 0 is
    /// the reference).
    pub fn cycles(&self) -> u64 {
        self.shards[0].cycles()
    }
}

/// Pre-slices `weights.len()` items into `threads` contiguous ranges so
/// each range's weight is as close to the remaining average as a greedy
/// left-to-right walk can make it, while guaranteeing every range holds
/// at least one item (callers clamp `threads <= weights.len()`). Fully
/// deterministic: the slicing depends only on the weights.
fn balanced_bounds(weights: &[u64], threads: usize) -> Vec<std::ops::Range<usize>> {
    let n = weights.len();
    debug_assert!(threads >= 1 && threads <= n);
    let total: u64 = weights.iter().sum();
    let mut bounds = Vec::with_capacity(threads);
    let (mut start, mut spent) = (0usize, 0u64);
    for t in 0..threads {
        let left = threads - t; // ranges still to emit, this one included
                                // Later ranges must keep at least one item each; this one must
                                // take at least one.
        let hi = n - (left - 1);
        let target = (total - spent).div_ceil(left as u64);
        let mut end = start + 1;
        let mut acc = weights[start];
        while end < hi && acc < target {
            acc += weights[end];
            end += 1;
        }
        spent += acc;
        bounds.push(start..end);
        start = end;
    }
    bounds
}

impl SimBackend for ShardedSim {
    fn netlist(&self) -> &Netlist {
        ShardedSim::netlist(self)
    }

    fn lanes(&self) -> usize {
        self.total_lanes
    }

    fn set_bus_u64(&mut self, port: &str, value: u64) {
        ShardedSim::set_bus_u64(self, port, value);
    }

    fn set_bus_lane(&mut self, port: &str, lane: usize, value: u64) {
        ShardedSim::set_bus_lane(self, port, lane, value);
    }

    fn eval(&mut self) {
        ShardedSim::eval(self);
    }

    fn step(&mut self) {
        ShardedSim::step(self);
    }

    fn get_lane(&self, net: NetId, lane: usize) -> bool {
        ShardedSim::get_lane(self, net, lane)
    }

    fn get_bus_lane(&self, port: &str, lane: usize) -> u64 {
        ShardedSim::get_bus_lane(self, port, lane)
    }

    fn set_ff(&mut self, net: NetId, value: bool) {
        ShardedSim::set_ff(self, net, value);
    }

    fn toggles(&self) -> &[u64] {
        ShardedSim::toggles(self)
    }

    fn cycles(&self) -> u64 {
        ShardedSim::cycles(self)
    }

    fn eval_stats(&self) -> EvalStats {
        ShardedSim::eval_stats(self)
    }

    fn set_eval_policy(&mut self, policy: EvalPolicy) {
        ShardedSim::set_eval_policy(self, policy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Sim;
    use crate::Builder;

    fn counter(bits: usize) -> Netlist {
        let mut b = Builder::new();
        let ffs: Vec<NetId> = (0..bits).map(|_| b.dff(false)).collect();
        let one = crate::bus::constant(&mut b, 1, bits);
        let (next, _) = crate::bus::add(&mut b, &ffs, &one);
        for (ff, d) in ffs.iter().zip(&next) {
            b.connect_dff(*ff, *d);
        }
        b.output_bus("count", &ffs);
        b.finish()
    }

    #[test]
    fn matches_interpreter_on_counter_any_thread_count() {
        let nl = counter(4);
        for threads in [1, 2, 4] {
            let mut int = Sim::new(&nl);
            let mut sharded = ShardedSim::with_policy(
                &nl,
                ShardPolicy {
                    shards: 4,
                    lanes_per_shard: 1,
                    threads,
                    ..ShardPolicy::single()
                },
            );
            for _ in 0..20 {
                int.eval();
                sharded.eval();
                for lane in 0..4 {
                    assert_eq!(
                        sharded.get_bus_lane("count", lane),
                        int.get_bus_u64("count")
                    );
                }
                int.step();
                sharded.step();
            }
            // Every lane replays the interpreted run, so the merged counts
            // are exactly 4x the single-lane reference.
            let expect: Vec<u64> = int.toggles().iter().map(|&t| 4 * t).collect();
            assert_eq!(sharded.toggles(), &expect[..], "threads = {threads}");
            assert_eq!(sharded.cycles(), 20);
        }
    }

    #[test]
    fn work_stealing_matches_static_on_uneven_loads() {
        // Deliberately uneven per-shard loads: shard i settles (i + 1) * 4
        // times inside one par_shards scope. Under static chunking the
        // heavy shards pin their thread; stealing rebalances — but state,
        // toggles, and results must be bit-identical either way, at every
        // thread count.
        let nl = counter(5);
        #[allow(deprecated)] // pins the deprecated scheduler as reference
        let schedules = [ShardSchedule::WorkStealing, ShardSchedule::Static];
        let run = |schedule: ShardSchedule, threads: usize| {
            let mut sim = ShardedSim::with_policy(
                &nl,
                ShardPolicy {
                    shards: 6,
                    lanes_per_shard: 2,
                    threads,
                    schedule,
                    ..ShardPolicy::single()
                },
            );
            let settles = sim.par_shards(|i, s| {
                for _ in 0..(i + 1) * 4 {
                    s.eval();
                    s.step();
                }
                s.cycles()
            });
            (settles, sim.toggles().to_vec())
        };
        let reference = run(schedules[1], 1);
        assert_eq!(
            reference.0,
            vec![4, 8, 12, 16, 20, 24],
            "per-shard settle counts are genuinely uneven"
        );
        for schedule in schedules {
            for threads in [1, 2, 3, 4, 6] {
                assert_eq!(
                    run(schedule, threads),
                    reference,
                    "{schedule:?} x{threads} diverged"
                );
            }
        }
    }

    #[test]
    fn stealing_queue_claims_every_shard_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let nl = counter(3);
        let mut sim = ShardedSim::with_policy(
            &nl,
            ShardPolicy {
                shards: 9,
                lanes_per_shard: 1,
                threads: 3,
                ..ShardPolicy::single()
            },
        );
        assert_eq!(sim.schedule(), ShardSchedule::WorkStealing);
        let claims = AtomicUsize::new(0);
        let indices = sim.par_shards(|i, _| {
            claims.fetch_add(1, Ordering::Relaxed);
            i
        });
        // Results come back in shard order even though claim order is a
        // race, and no shard is processed twice or dropped.
        assert_eq!(indices, (0..9).collect::<Vec<_>>());
        assert_eq!(claims.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let nl = counter(6);
        let run = |threads: usize| {
            let mut sim = ShardedSim::with_policy(
                &nl,
                ShardPolicy {
                    shards: 3,
                    lanes_per_shard: 2,
                    threads,
                    ..ShardPolicy::single()
                },
            );
            for _ in 0..13 {
                sim.eval();
                sim.step();
            }
            sim.eval();
            let outs: Vec<u64> = (0..sim.shard_count() * sim.lanes_per_shard())
                .map(|l| sim.get_bus_lane("count", l))
                .collect();
            (outs, sim.toggles().to_vec(), sim.cycles())
        };
        let reference = run(1);
        assert_eq!(run(2), reference);
        assert_eq!(run(3), reference);
        assert_eq!(run(64), reference);
    }

    #[test]
    fn global_lanes_route_to_the_right_shard() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        b.output_bus("y", &x);
        let nl = b.finish();
        let mut sim = ShardedSim::with_policy(
            &nl,
            ShardPolicy {
                shards: 2,
                lanes_per_shard: 4,
                threads: 2,
                ..ShardPolicy::single()
            },
        );
        assert_eq!(SimBackend::lanes(&sim), 8);
        for lane in 0..8u64 {
            sim.set_bus_lane("x", lane as usize, lane * 11);
        }
        sim.eval();
        for lane in 0..8u64 {
            assert_eq!(sim.get_bus_lane("y", lane as usize), (lane * 11) & 0xff);
        }
        // The batch writer resolves to the same lanes.
        let values: Vec<u64> = (0..8).map(|l| 200 - l).collect();
        sim.set_bus_lanes("x", &values);
        sim.eval();
        for (lane, &v) in values.iter().enumerate() {
            assert_eq!(sim.get_bus_lane("y", lane), v & 0xff);
        }
    }

    #[test]
    fn par_shards_preserves_shard_order_and_merges_toggles() {
        let nl = counter(4);
        let mut sim = ShardedSim::with_policy(
            &nl,
            ShardPolicy {
                shards: 5,
                lanes_per_shard: 1,
                threads: 3,
                ..ShardPolicy::single()
            },
        );
        // Each shard runs a different number of settles inside one scope.
        let indices = sim.par_shards(|i, s| {
            for _ in 0..=i {
                s.eval();
                s.step();
            }
            i
        });
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
        // Merged toggles must re-merge after the batched run (the lazy cache
        // was invalidated by par_shards).
        let manual: u64 = sim
            .shards()
            .iter()
            .map(|s| s.toggles().iter().sum::<u64>())
            .sum();
        assert_eq!(sim.toggles().iter().sum::<u64>(), manual);
    }

    #[test]
    fn single_shard_is_a_compiled_sim() {
        let nl = counter(5);
        let mut comp = CompiledSim::new(&nl);
        let mut sharded = ShardedSim::with_policy(
            &nl,
            ShardPolicy {
                shards: 1,
                lanes_per_shard: 1,
                threads: 1,
                ..ShardPolicy::single()
            },
        );
        for _ in 0..17 {
            comp.eval();
            sharded.eval();
            assert_eq!(sharded.get_bus_lane("count", 0), comp.get_bus_u64("count"));
            comp.step();
            sharded.step();
        }
        assert_eq!(sharded.toggles(), comp.toggles());
        assert_eq!(sharded.cycles(), comp.cycles());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lane_routing_rejects_out_of_range() {
        let nl = counter(2);
        let sim = ShardedSim::with_policy(
            &nl,
            ShardPolicy {
                shards: 2,
                lanes_per_shard: 2,
                threads: 1,
                ..ShardPolicy::single()
            },
        );
        let _ = sim.get_bus_lane("count", 4);
    }

    #[test]
    fn full_width_shards_fuse_into_lane_blocks() {
        let nl = counter(4);
        let sim = ShardedSim::with_policy(
            &nl,
            ShardPolicy {
                shards: 5,
                lanes_per_shard: 64,
                threads: 4,
                lane_words: 4,
                ..ShardPolicy::single()
            },
        );
        // 5 x 64 lanes fuse into a 256-lane block plus a 64-lane tail.
        assert_eq!(sim.shard_count(), 2);
        assert_eq!(sim.lanes_per_shard(), 256);
        assert_eq!(SimBackend::lanes(&sim), 320);
        assert_eq!(SimBackend::lanes(&sim.shards()[0]), 256);
        assert_eq!(SimBackend::lanes(&sim.shards()[1]), 64);
        // Fusion halved the outer thread count; the freed budget became
        // intra-shard parallel level workers (4 threads / 2 blocks = 2).
        assert_eq!(sim.thread_count(), 2);
        assert_eq!(sim.shards()[0].eval_policy().threads, 2);
        // Narrow shards never fuse.
        let narrow = ShardedSim::with_policy(
            &nl,
            ShardPolicy {
                shards: 6,
                lanes_per_shard: 2,
                threads: 1,
                lane_words: 4,
                ..ShardPolicy::single()
            },
        );
        assert_eq!(narrow.shard_count(), 6);
        assert_eq!(narrow.lanes_per_shard(), 2);
    }

    #[test]
    fn fused_lane_blocks_match_unfused_shards() {
        let nl = counter(6);
        let run = |lane_words: usize, threads: usize| {
            let mut sim = ShardedSim::with_policy(
                &nl,
                ShardPolicy {
                    shards: 4,
                    lanes_per_shard: 64,
                    threads,
                    lane_words,
                    ..ShardPolicy::single()
                },
            );
            for _ in 0..9 {
                sim.eval();
                sim.step();
            }
            sim.eval();
            let outs: Vec<u64> = (0..256).map(|l| sim.get_bus_lane("count", l)).collect();
            (outs, sim.toggles().to_vec(), sim.cycles())
        };
        let reference = run(1, 1);
        for lane_words in [2, 4, 8] {
            for threads in [1, 2, 4] {
                assert_eq!(
                    run(lane_words, threads),
                    reference,
                    "lane_words = {lane_words}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn balanced_bounds_slices_by_weight_not_count() {
        // One heavy item among light ones: count-based chunking would put
        // two items per thread regardless; weight-based slicing gives the
        // heavy item its own thread.
        let bounds = balanced_bounds(&[6, 1, 1, 1, 1, 2], 3);
        assert_eq!(bounds, vec![0..1, 1..4, 4..6]);
        let covered: Vec<usize> = bounds.iter().flat_map(|r| r.clone()).collect();
        assert_eq!(covered, (0..6).collect::<Vec<_>>(), "a partition");
        // Degenerate slices.
        assert_eq!(balanced_bounds(&[3, 3, 3], 1), vec![0..3]);
        assert_eq!(balanced_bounds(&[5, 1], 2), vec![0..1, 1..2]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let nl = counter(2);
        let _ = ShardedSim::with_policy(
            &nl,
            ShardPolicy {
                shards: 0,
                lanes_per_shard: 1,
                threads: 1,
                ..ShardPolicy::single()
            },
        );
    }
}
