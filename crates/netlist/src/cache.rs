//! Process-wide compiled-program cache.
//!
//! Every [`crate::CompiledSim`] construction lowers its netlist through
//! [`Program::compile`] — levelization plus SoA op-stream emission, the
//! most expensive step of standing up a simulator. A service-shaped
//! process (many verification/characterisation jobs against a shared
//! block library) compiles the *same* netlists over and over: each
//! `verify_all` sweep re-wraps every block in a fresh [`Arc<Netlist>`],
//! each of the 25 workload cores is rebuilt per characterisation run.
//! The [`ProgramCache`] makes the second and every later construction of
//! a structurally identical netlist free.
//!
//! # The content-hash contract
//!
//! Entries are keyed by a **structural content hash** over the netlist's
//! gate arena and named ports — never by pointer identity or [`Arc`]
//! address. Two `Netlist` values that compare equal share one cached
//! [`Program`]; two that differ anywhere (one replaced gate, one renamed
//! port) never do. Hash collisions cannot cause a false hit: each entry
//! stores its full [`Arc<Netlist>`] and a lookup verifies structural
//! equality (`Netlist == Netlist`, an `O(gates)` compare — orders of
//! magnitude cheaper than a compile) before returning the program. This
//! is the correctness boundary the campaign layer leans on: an
//! instrumented netlist with a different mutant set hashes (and compares)
//! differently, so it can never be served another population's program.
//!
//! # Invalidation
//!
//! There is none, by construction: a [`Netlist`] is immutable once built
//! (mutation testing goes through [`Netlist::with_gate_replaced`], which
//! returns a *new* netlist with a new content hash), so a cached program
//! can never go stale. Entries leave the cache only by LRU eviction when
//! the capacity bound is hit, and eviction only drops the cache's own
//! `Arc` — simulators already holding the program keep it alive.
//!
//! `GATE_SIM_PROGRAM_CACHE=0` (see [`crate::env`]) bypasses the global
//! cache entirely; results are bit-identical either way.
//!
//! # Native code rides the cache
//!
//! A cached [`Program`] also carries its lazily-built [`crate::jit`]
//! code (one W^X mapping per lane-block width, behind the program's
//! `jit` slots). Code lifetime therefore follows the same rules as the
//! program itself: a cache hit reuses already-emitted machine code, LRU
//! eviction drops only the cache's `Arc` (simulators executing the code
//! keep it mapped), and a structurally new netlist — e.g. an
//! instrumented mutant — gets a fresh program with empty slots, so
//! stale code can never run for the wrong netlist. See `docs/jit.md`
//! § "Code lifetime".

use crate::level::Program;
use crate::Netlist;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Default capacity of the process-wide cache, in entries. Generous next
/// to the steady-state working set (the hardware library's ~25 blocks
/// plus a handful of cores) so real workloads never thrash, yet small
/// enough that a campaign churning thousands of single-use instrumented
/// netlists stays bounded.
pub const DEFAULT_CAPACITY: usize = 256;

/// Hit/miss/eviction counters of a [`ProgramCache`], captured by
/// [`ProgramCache::stats`].
///
/// Counters are cumulative over the cache's lifetime; callers interested
/// in one phase (a sweep, a bench window) snapshot before and after and
/// subtract. `hits + misses` equals the number of cache-routed compile
/// requests; `bypasses` counts constructions that skipped the cache
/// because `GATE_SIM_PROGRAM_CACHE=0` disabled it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a cached program (no compile ran).
    pub hits: u64,
    /// Lookups that compiled and inserted a fresh program.
    pub misses: u64,
    /// Entries dropped by the LRU capacity bound.
    pub evictions: u64,
    /// Compile requests that skipped the cache (disabled by env).
    pub bypasses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of cache-routed requests served without compiling, in
    /// `0.0..=1.0` (zero when nothing was requested).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// One resident program: the netlist it was compiled from (the equality
/// witness for collision-proof lookups) and an LRU stamp.
struct Entry {
    netlist: Arc<Netlist>,
    prog: Arc<Program>,
    last_used: u64,
}

/// Hash buckets plus the monotonic LRU clock, behind one mutex. The
/// critical section only ever scans one bucket or (on insert past
/// capacity) the entry table — compiles happen *outside* the lock, so
/// concurrent service jobs compiling different netlists never serialize
/// on the cache.
struct Inner {
    buckets: HashMap<u64, Vec<Entry>>,
    len: usize,
    tick: u64,
}

/// A bounded, content-addressed `Netlist` → [`Program`] cache. See the
/// module docs for the hashing and invalidation contract.
///
/// Most code uses the process-wide instance implicitly through
/// [`crate::CompiledSim::with_lanes_arc`]; [`ProgramCache::global`]
/// exposes it for stats and tests. Private instances
/// ([`ProgramCache::new`]) are always enabled regardless of the
/// environment knob, which keeps unit tests independent of process-global
/// state.
pub struct ProgramCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bypasses: AtomicU64,
}

impl std::fmt::Debug for ProgramCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ProgramCache")
            .field("capacity", &self.capacity)
            .field("stats", &s)
            .finish()
    }
}

impl ProgramCache {
    /// A private cache bounded to `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> ProgramCache {
        ProgramCache {
            inner: Mutex::new(Inner {
                buckets: HashMap::new(),
                len: 0,
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        }
    }

    /// The process-wide cache every `CompiledSim` construction consults
    /// (unless `GATE_SIM_PROGRAM_CACHE=0`; see [`crate::env`]).
    pub fn global() -> &'static ProgramCache {
        static GLOBAL: OnceLock<ProgramCache> = OnceLock::new();
        GLOBAL.get_or_init(|| ProgramCache::new(DEFAULT_CAPACITY))
    }

    /// The stable structural content hash lookups key on: gates, input
    /// ports and output ports, nothing else. Exposed so tests and
    /// diagnostics can reason about the key; equal netlists always hash
    /// equal, and the cache never trusts the hash alone (see module docs).
    pub fn content_hash(netlist: &Netlist) -> u64 {
        let mut h = DefaultHasher::new();
        netlist.hash(&mut h);
        h.finish()
    }

    /// Returns the compiled program for `netlist`, compiling at most once
    /// per distinct content per residency: a hit shares the cached
    /// [`Arc<Program>`], a miss compiles outside the cache lock and
    /// publishes the result (keeping the winner if another thread raced
    /// the same netlist in, so all simulators share one program).
    pub fn get_or_compile(&self, netlist: &Arc<Netlist>) -> Arc<Program> {
        let key = Self::content_hash(netlist);
        // Chaos: a forced miss recompiles and drives the race-convergent
        // `insert` path below — results are bit-identical because equal
        // netlists compile to equal programs; only the counters move.
        let forced_miss = crate::failpoints::fire("cache::miss").is_some();
        if !forced_miss {
            if let Some(prog) = self.lookup(key, netlist) {
                self.hits.fetch_add(1, SeqCst);
                return prog;
            }
        }
        // Miss: compile with the lock released. Two threads racing the
        // same netlist both compile (identical outputs), and `insert`
        // below keeps whichever published first.
        let prog = Arc::new(Program::compile(netlist));
        self.misses.fetch_add(1, SeqCst);
        self.insert(key, netlist, prog)
    }

    fn lookup(&self, key: u64, netlist: &Netlist) -> Option<Arc<Program>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner
            .buckets
            .get_mut(&key)?
            .iter_mut()
            // Full structural equality, not just the hash: a collision
            // must miss, never serve a foreign program.
            .find(|e| *e.netlist == *netlist)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.prog))
    }

    fn insert(&self, key: u64, netlist: &Arc<Netlist>, prog: Arc<Program>) -> Arc<Program> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(existing) = inner
            .buckets
            .get_mut(&key)
            .and_then(|b| b.iter_mut().find(|e| *e.netlist == **netlist))
        {
            // Lost a racing compile of the same content: share the
            // published program so every simulator holds one Arc.
            existing.last_used = tick;
            return Arc::clone(&existing.prog);
        }
        inner.buckets.entry(key).or_default().push(Entry {
            netlist: Arc::clone(netlist),
            prog: Arc::clone(&prog),
            last_used: tick,
        });
        inner.len += 1;
        while inner.len > self.capacity {
            Self::evict_lru(&mut inner);
            self.evictions.fetch_add(1, SeqCst);
        }
        // Chaos: a forced eviction exercises the LRU sweep under
        // pressure that the capacity bound alone would not create. The
        // guard keeps the just-inserted entry alive (mirroring the
        // capacity >= 1 invariant of the organic path).
        if inner.len > 1 && crate::failpoints::fire("cache::evict").is_some() {
            Self::evict_lru(&mut inner);
            self.evictions.fetch_add(1, SeqCst);
        }
        prog
    }

    /// Drops the least-recently-used entry (capacity is >= 1, so the
    /// just-inserted entry always survives its own insert).
    fn evict_lru(inner: &mut Inner) {
        let Some((&key, stamp)) = inner
            .buckets
            .iter()
            .filter_map(|(k, b)| Some((k, b.iter().map(|e| e.last_used).min()?)))
            .min_by_key(|&(_, stamp)| stamp)
        else {
            return;
        };
        let bucket = inner.buckets.get_mut(&key).expect("bucket exists");
        if let Some(i) = bucket.iter().position(|e| e.last_used == stamp) {
            bucket.swap_remove(i);
            inner.len -= 1;
        }
        if bucket.is_empty() {
            inner.buckets.remove(&key);
        }
    }

    /// Drops every entry (counters are kept — they are cumulative).
    /// Simulators holding cached programs are unaffected; the next
    /// construction of each netlist recompiles once.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.buckets.clear();
        inner.len = 0;
    }

    /// A consistent snapshot of the counters and residency.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len;
        CacheStats {
            hits: self.hits.load(SeqCst),
            misses: self.misses.load(SeqCst),
            evictions: self.evictions.load(SeqCst),
            bypasses: self.bypasses.load(SeqCst),
            entries,
        }
    }

    /// The compile entry point [`crate::CompiledSim`] construction uses:
    /// the global cache when enabled, a counted straight compile when
    /// `GATE_SIM_PROGRAM_CACHE=0`.
    pub(crate) fn compile_via_global(netlist: &Arc<Netlist>) -> Arc<Program> {
        let cache = ProgramCache::global();
        if crate::env::program_cache_enabled() {
            cache.get_or_compile(netlist)
        } else {
            cache.bypasses.fetch_add(1, SeqCst);
            Arc::new(Program::compile(netlist))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Builder, Gate};

    /// A small distinctive netlist; `tag` varies the structure so each
    /// call keys differently.
    fn netlist(tag: usize) -> Arc<Netlist> {
        let mut b = Builder::new();
        let x = b.input_bus("x", 4 + (tag % 3));
        let mut acc = x[0];
        for (i, &bit) in x.iter().enumerate().skip(1) {
            acc = if (tag >> i) & 1 == 1 {
                b.xor(acc, bit)
            } else {
                b.and(acc, bit)
            };
        }
        b.output_bus("y", &[acc]);
        Arc::new(b.finish())
    }

    #[test]
    fn content_equal_netlists_hit_pointer_identity_is_irrelevant() {
        let cache = ProgramCache::new(8);
        let a = netlist(1);
        let b = Arc::new((*a).clone()); // distinct allocation, equal content
        let pa = cache.get_or_compile(&a);
        let pb = cache.get_or_compile(&b);
        assert!(
            Arc::ptr_eq(&pa, &pb),
            "equal content must share one program"
        );
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn structurally_different_netlists_never_share() {
        let cache = ProgramCache::new(8);
        let base = netlist(0);
        // One replaced gate: same shape, different content.
        let gate_id = base.len() as u32 - 1;
        let mutated = Arc::new(base.with_gate_replaced(gate_id, Gate::Not(0)));
        let pa = cache.get_or_compile(&base);
        let pb = cache.get_or_compile(&mutated);
        assert!(!Arc::ptr_eq(&pa, &pb));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 2));
    }

    #[test]
    fn port_names_are_part_of_the_content() {
        let build = |out: &str| {
            let mut b = Builder::new();
            let x = b.input_bus("x", 2);
            let y = b.and(x[0], x[1]);
            b.output_bus(out, &[y]);
            Arc::new(b.finish())
        };
        let cache = ProgramCache::new(8);
        cache.get_or_compile(&build("y"));
        cache.get_or_compile(&build("z"));
        assert_eq!(cache.stats().misses, 2, "renamed port must not hit");
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ProgramCache::new(2);
        let (a, b, c) = (netlist(1), netlist(2), netlist(3));
        cache.get_or_compile(&a); // [a]
        cache.get_or_compile(&b); // [a b]
        cache.get_or_compile(&a); // touch a: b is now coldest
        cache.get_or_compile(&c); // evicts b -> [a c]
        let s = cache.stats();
        assert_eq!((s.evictions, s.entries), (1, 2));
        cache.get_or_compile(&a);
        assert_eq!(cache.stats().hits, 2, "a stayed resident");
        cache.get_or_compile(&b);
        assert_eq!(cache.stats().misses, 4, "b was the eviction victim");
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = ProgramCache::new(8);
        cache.get_or_compile(&netlist(5));
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.misses, s.entries), (1, 0));
        cache.get_or_compile(&netlist(5));
        assert_eq!(cache.stats().misses, 2, "cleared entries recompile once");
    }

    #[test]
    fn hit_rate_reflects_the_mix() {
        let cache = ProgramCache::new(8);
        assert_eq!(cache.stats().hit_rate(), 0.0);
        let a = netlist(7);
        cache.get_or_compile(&a);
        cache.get_or_compile(&a);
        cache.get_or_compile(&a);
        cache.get_or_compile(&a);
        assert!((cache.stats().hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn concurrent_requests_for_one_netlist_converge_on_one_program() {
        let cache = ProgramCache::new(8);
        let nl = netlist(9);
        let progs: Vec<Arc<Program>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let nl = Arc::new((*nl).clone());
                    let cache = &cache;
                    scope.spawn(move || cache.get_or_compile(&nl))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for p in &progs[1..] {
            assert!(
                Arc::ptr_eq(&progs[0], p),
                "racing compiles must converge on the published program"
            );
        }
        assert_eq!(cache.stats().entries, 1);
    }
}
