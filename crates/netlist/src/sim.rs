//! Two-phase gate-level simulation: the [`SimBackend`] abstraction and the
//! interpreted reference backend [`Sim`].
//!
//! Evaluation exploits the arena's topological order: one linear pass
//! settles all combinational logic, then [`SimBackend::step`] latches every
//! DFF. Toggle counts accumulate per net and feed the dynamic-power model
//! in the `flexic` crate (the paper's power numbers are activity-based).
//!
//! Two backends implement the trait:
//! * [`Sim`] — the one-gate-at-a-time interpreter below, single-lane;
//! * [`crate::compiled::CompiledSim`] — a compiled op-stream backend that
//!   evaluates up to 64 stimulus lanes per pass (`u64` bit-vector per net).

use crate::compiled::EvalPolicy;
use crate::{Gate, NetId, Netlist};

/// Bit `i` of `value` as a 0/1 word, where bits at and beyond 64 read as 0:
/// ports wider than 64 bits have their high bits driven to 0 through the
/// `u64` bus API instead of overflowing the shift (`docs/simulation.md`
/// § "Lane packing"). Shared by every backend so the rule cannot diverge.
pub(crate) fn port_bit(value: u64, i: usize) -> u64 {
    if i < 64 {
        (value >> i) & 1
    } else {
        0
    }
}

/// Work counters for a backend's settles.
///
/// Purely diagnostic: the counters never influence simulation results —
/// they let benches and tests assert that an optimisation (e.g. the
/// compiled backend's event-driven level skipping, `docs/simulation.md`
/// § "Event-driven evaluation") actually engaged, and quantify how many
/// ops a stimulus schedule really executed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EvalStats {
    /// Total `eval()` calls.
    pub settles: u64,
    /// Settles evaluated by an unconditional sweep of every op/gate.
    pub full_sweeps: u64,
    /// Ops (gates) actually executed, summed over all settles.
    pub ops_executed: u64,
    /// Whole levels skipped by event-driven evaluation (0 for backends
    /// that always sweep).
    pub levels_skipped: u64,
}

impl EvalStats {
    /// Elementwise sum (merging counters across shards/backends).
    pub fn merge(self, other: EvalStats) -> EvalStats {
        EvalStats {
            settles: self.settles + other.settles,
            full_sweeps: self.full_sweeps + other.full_sweeps,
            ops_executed: self.ops_executed + other.ops_executed,
            levels_skipped: self.levels_skipped + other.levels_skipped,
        }
    }
}

/// A gate-level simulation engine over one [`Netlist`].
///
/// A backend owns per-net values, DFF state, and switching-activity
/// counters. Backends may evaluate several independent stimulus *lanes* per
/// pass; lane 0 is the scalar view, and the single-lane entry points
/// ([`SimBackend::set_bus_u64`], [`SimBackend::get_bus_u64`], …) drive and
/// read lane 0 while broadcasting writes to every lane, so scalar callers
/// behave identically on every backend.
pub trait SimBackend {
    /// The simulated netlist.
    fn netlist(&self) -> &Netlist;

    /// Number of independent stimulus lanes evaluated per pass.
    fn lanes(&self) -> usize {
        1
    }

    /// Drives the named input port with the low bits of `value` on every
    /// lane.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    fn set_bus_u64(&mut self, port: &str, value: u64);

    /// Drives one lane of the named input port.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or `lane >= lanes()`.
    fn set_bus_lane(&mut self, port: &str, lane: usize, value: u64);

    /// Drives the named input port with the low bits of `value` (all lanes).
    fn set_bus(&mut self, port: &str, value: u32) {
        self.set_bus_u64(port, value as u64);
    }

    /// Settles all combinational logic for the current inputs and FF state.
    fn eval(&mut self);

    /// Clock edge: latches every DFF's `d` into its state. Call after
    /// [`SimBackend::eval`] has settled the cycle's logic.
    fn step(&mut self);

    /// Reads a single net's settled value on one lane.
    fn get_lane(&self, net: NetId, lane: usize) -> bool;

    /// Reads a single net's settled value (lane 0).
    fn get(&self, net: NetId) -> bool {
        self.get_lane(net, 0)
    }

    /// Reads up to 64 bits of the named output port on one lane.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    fn get_bus_lane(&self, port: &str, lane: usize) -> u64;

    /// Reads up to 64 bits of the named output port (lane 0).
    fn get_bus_u64(&self, port: &str) -> u64 {
        self.get_bus_lane(port, 0)
    }

    /// Reads up to 32 bits of the named output port (lane 0).
    fn get_bus(&self, port: &str) -> u32 {
        self.get_bus_u64(port) as u32
    }

    /// Forces the stored state of a DFF on every lane (e.g. a reset PC).
    ///
    /// # Panics
    ///
    /// Panics if `net` is not a DFF.
    fn set_ff(&mut self, net: NetId, value: bool);

    /// Total toggles per net since construction, summed over active lanes.
    fn toggles(&self) -> &[u64];

    /// Clock cycles stepped so far.
    fn cycles(&self) -> u64;

    /// Average switching activity (toggles per gate per cycle per lane) —
    /// the α factor of the dynamic power model.
    fn average_activity(&self) -> f64 {
        let (cycles, toggles) = (self.cycles(), self.toggles());
        if cycles == 0 || toggles.is_empty() {
            return 0.0;
        }
        let total: u64 = toggles.iter().sum();
        total as f64 / (toggles.len() as f64 * cycles as f64 * self.lanes() as f64)
    }

    /// Work counters for this backend's settles ([`EvalStats`]). Purely
    /// diagnostic — results never depend on how much work a settle
    /// skipped. Backends that do not track work report all-zero counters.
    fn eval_stats(&self) -> EvalStats {
        EvalStats::default()
    }

    /// Requests an intra-settle parallelism policy ([`EvalPolicy`]:
    /// levels split into chunks across scoped worker threads). Purely a
    /// performance knob — results are bit-identical for every policy, so
    /// backends without a compiled level structure (e.g. the interpreted
    /// [`Sim`]) are free to ignore it; the default does.
    fn set_eval_policy(&mut self, _policy: EvalPolicy) {}
}

/// Interpreted simulator for one netlist (owns a copy of the structure).
#[derive(Debug, Clone)]
pub struct Sim {
    netlist: Netlist,
    values: Vec<bool>,
    ff_state: Vec<bool>,
    input_values: Vec<bool>,
    toggles: Vec<u64>,
    cycles: u64,
    primed: bool,
    stats: EvalStats,
}

impl Sim {
    /// Creates a simulator with DFFs at their reset values and inputs at 0.
    pub fn new(netlist: &Netlist) -> Sim {
        let ff_state = netlist
            .gates()
            .iter()
            .map(|g| match g {
                Gate::Dff { init, .. } => *init,
                _ => false,
            })
            .collect();
        let input_count = netlist.inputs().iter().map(|p| p.nets.len()).sum();
        Sim {
            values: vec![false; netlist.len()],
            ff_state,
            input_values: vec![false; input_count],
            toggles: vec![0; netlist.len()],
            cycles: 0,
            primed: false,
            stats: EvalStats::default(),
            netlist: netlist.clone(),
        }
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Drives the named input port with the low bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn set_bus(&mut self, port: &str, value: u32) {
        self.set_bus_u64(port, value as u64);
    }

    /// Drives the named input port with the low bits of a 64-bit value.
    /// Port bits at and beyond 64 are driven to 0 (same rule as the
    /// compiled backend's bus helpers).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn set_bus_u64(&mut self, port: &str, value: u64) {
        let port = self
            .netlist
            .input(port)
            .unwrap_or_else(|| panic!("no input port `{port}`"));
        for (i, &net) in port.nets.iter().enumerate() {
            match self.netlist.gates()[net as usize] {
                Gate::Input(idx) => self.input_values[idx as usize] = port_bit(value, i) == 1,
                ref g => panic!("net {net} is not an input: {g:?}"),
            }
        }
    }

    /// Settles all combinational logic for the current inputs and FF state.
    pub fn eval(&mut self) {
        for (id, gate) in self.netlist.gates().iter().enumerate() {
            let v = match *gate {
                Gate::Const(v) => v,
                Gate::Input(idx) => self.input_values[idx as usize],
                Gate::Not(x) => !self.values[x as usize],
                Gate::And(x, y) => self.values[x as usize] && self.values[y as usize],
                Gate::Or(x, y) => self.values[x as usize] || self.values[y as usize],
                Gate::Xor(x, y) => self.values[x as usize] ^ self.values[y as usize],
                Gate::Nand(x, y) => !(self.values[x as usize] && self.values[y as usize]),
                Gate::Nor(x, y) => !(self.values[x as usize] || self.values[y as usize]),
                Gate::Xnor(x, y) => !(self.values[x as usize] ^ self.values[y as usize]),
                Gate::Mux { sel, a, b } => {
                    if self.values[sel as usize] {
                        self.values[b as usize]
                    } else {
                        self.values[a as usize]
                    }
                }
                Gate::Dff { .. } => self.ff_state[id],
            };
            if self.values[id] != v {
                self.toggles[id] += 1;
                self.values[id] = v;
            }
        }
        self.stats.settles += 1;
        self.stats.full_sweeps += 1;
        self.stats.ops_executed += self.netlist.len() as u64;
        if !self.primed {
            // The all-false reset state is arbitrary, so the transitions of
            // the very first settle are initialization, not switching —
            // counting them would skew `average_activity` and every power
            // number derived from it.
            self.toggles.iter_mut().for_each(|t| *t = 0);
            self.primed = true;
        }
    }

    /// Clock edge: latches every DFF's `d` into its state.
    ///
    /// Call after [`Sim::eval`] has settled the cycle's logic.
    pub fn step(&mut self) {
        for id in 0..self.netlist.len() {
            if let Gate::Dff { d, .. } = self.netlist.gates()[id] {
                self.ff_state[id] = self.values[d as usize];
            }
        }
        self.cycles += 1;
    }

    /// Reads a single net's settled value.
    pub fn get(&self, net: NetId) -> bool {
        self.values[net as usize]
    }

    /// Forces the stored state of a DFF (e.g. to set a reset PC).
    ///
    /// # Panics
    ///
    /// Panics if `net` is not a DFF.
    pub fn set_ff(&mut self, net: NetId, value: bool) {
        assert!(
            self.netlist.gates()[net as usize].is_dff(),
            "net {net} is not a DFF"
        );
        self.ff_state[net as usize] = value;
    }

    /// Reads up to 32 bits of the named output port.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn get_bus(&self, port: &str) -> u32 {
        self.get_bus_u64(port) as u32
    }

    /// Reads up to 64 bits of the named output port. Port bits at and
    /// beyond 64 do not fit in the result and read as 0.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn get_bus_u64(&self, port: &str) -> u64 {
        let port = self
            .netlist
            .output(port)
            .unwrap_or_else(|| panic!("no output port `{port}`"));
        port.nets
            .iter()
            .take(64)
            .enumerate()
            .fold(0u64, |acc, (i, &n)| acc | ((self.get(n) as u64) << i))
    }

    /// Work counters for this simulator's settles (the interpreted
    /// backend always sweeps every gate).
    pub fn eval_stats(&self) -> EvalStats {
        self.stats
    }

    /// Total toggles per net since construction.
    pub fn toggles(&self) -> &[u64] {
        &self.toggles
    }

    /// Clock cycles stepped so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Average switching activity (toggles per gate per cycle) — the α
    /// factor of the dynamic power model.
    pub fn average_activity(&self) -> f64 {
        if self.cycles == 0 || self.toggles.is_empty() {
            return 0.0;
        }
        let total: u64 = self.toggles.iter().sum();
        total as f64 / (self.toggles.len() as f64 * self.cycles as f64)
    }

    /// Convenience: construct, drive inputs, settle, and read one output.
    ///
    /// # Panics
    ///
    /// Panics if a named port is missing.
    pub fn evaluate_once(netlist: &Netlist, inputs: &[(&str, u64)], output: &str) -> u64 {
        let mut sim = Sim::new(netlist);
        for (name, value) in inputs {
            sim.set_bus_u64(name, *value);
        }
        sim.eval();
        sim.get_bus_u64(output)
    }
}

impl SimBackend for Sim {
    fn netlist(&self) -> &Netlist {
        Sim::netlist(self)
    }

    fn set_bus_u64(&mut self, port: &str, value: u64) {
        Sim::set_bus_u64(self, port, value);
    }

    fn set_bus_lane(&mut self, port: &str, lane: usize, value: u64) {
        assert_eq!(lane, 0, "interpreted backend has a single lane");
        Sim::set_bus_u64(self, port, value);
    }

    fn eval(&mut self) {
        Sim::eval(self);
    }

    fn step(&mut self) {
        Sim::step(self);
    }

    fn get_lane(&self, net: NetId, lane: usize) -> bool {
        assert_eq!(lane, 0, "interpreted backend has a single lane");
        Sim::get(self, net)
    }

    fn get_bus_lane(&self, port: &str, lane: usize) -> u64 {
        assert_eq!(lane, 0, "interpreted backend has a single lane");
        Sim::get_bus_u64(self, port)
    }

    fn set_ff(&mut self, net: NetId, value: bool) {
        Sim::set_ff(self, net, value);
    }

    fn toggles(&self) -> &[u64] {
        Sim::toggles(self)
    }

    fn cycles(&self) -> u64 {
        Sim::cycles(self)
    }

    fn average_activity(&self) -> f64 {
        Sim::average_activity(self)
    }

    fn eval_stats(&self) -> EvalStats {
        Sim::eval_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    #[test]
    fn counter_counts() {
        // 4-bit counter: ff += 1 each cycle.
        let mut b = Builder::new();
        let ffs: Vec<NetId> = (0..4).map(|_| b.dff(false)).collect();
        let one = crate::bus::constant(&mut b, 1, 4);
        let (next, _) = crate::bus::add(&mut b, &ffs, &one);
        for (ff, d) in ffs.iter().zip(&next) {
            b.connect_dff(*ff, *d);
        }
        b.output_bus("count", &ffs);
        let nl = b.finish();
        let mut sim = Sim::new(&nl);
        for expected in 0..20u32 {
            sim.eval();
            assert_eq!(sim.get_bus("count"), expected % 16);
            sim.step();
        }
        assert_eq!(sim.cycles(), 20);
    }

    #[test]
    fn toggles_accumulate() {
        let mut b = Builder::new();
        let x = b.input("x");
        let nx = b.not(x);
        b.output("y", nx);
        let nl = b.finish();
        let mut sim = Sim::new(&nl);
        for i in 0..10 {
            sim.set_bus("x", i & 1);
            sim.eval();
            sim.step();
        }
        assert!(sim.average_activity() > 0.0);
        assert!(sim.toggles().iter().sum::<u64>() >= 9);
    }

    #[test]
    fn first_eval_does_not_count_reset_transients() {
        // Regression: `values` starts all-false, so the first settle used to
        // count initialization as switching and skew average_activity().
        let mut b = Builder::new();
        let x = b.input("x");
        let nx = b.not(x); // settles to 1 on the first eval
        let one = b.one(); // Const(true): 0 -> 1 on the first eval
        let y = b.and(nx, one);
        b.output("y", y);
        let nl = b.finish();
        let mut sim = Sim::new(&nl);
        for _ in 0..10 {
            sim.set_bus("x", 0);
            sim.eval();
            sim.step();
        }
        // Constant stimulus: zero genuine switching over 10 cycles.
        assert_eq!(sim.toggles().iter().sum::<u64>(), 0);
        assert_eq!(sim.average_activity(), 0.0);
    }

    #[test]
    fn wide_ports_drive_and_read_without_shift_overflow() {
        // Regression: same rule as the compiled backend — port bits at and
        // beyond 64 drive as 0 and are not included in u64 reads, instead
        // of overflowing `value >> i` / `<< i`.
        let mut b = Builder::new();
        let x = b.input_bus("x", 70);
        b.output_bus("y", &x);
        let nl = b.finish();
        let mut sim = Sim::new(&nl);
        sim.set_bus_u64("x", u64::MAX);
        sim.eval();
        assert_eq!(sim.get_bus_u64("y"), u64::MAX);
        for (i, &n) in x.iter().enumerate() {
            assert_eq!(sim.get(n), i < 64, "bit {i}");
        }
    }

    #[test]
    fn eval_stats_count_full_sweeps() {
        let mut b = Builder::new();
        let x = b.input("x");
        let nx = b.not(x);
        b.output("y", nx);
        let nl = b.finish();
        let mut sim = Sim::new(&nl);
        sim.eval();
        sim.eval();
        let stats = SimBackend::eval_stats(&sim);
        assert_eq!(stats.settles, 2);
        assert_eq!(stats.full_sweeps, 2);
        assert_eq!(stats.ops_executed, 2 * nl.len() as u64);
        assert_eq!(stats.levels_skipped, 0);
    }

    #[test]
    fn evaluate_once_helper() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        let y = b.input_bus("y", 8);
        let z = crate::bus::xor(&mut b, &x, &y);
        b.output_bus("z", &z);
        let nl = b.finish();
        assert_eq!(
            Sim::evaluate_once(&nl, &[("x", 0xf0), ("y", 0x3c)], "z"),
            0xcc
        );
    }
}
