//! Levelization and compilation of a netlist into a flat instruction stream.
//!
//! [`levelize`] assigns every net an ASAP logic level (sources — constants,
//! primary inputs, and DFF outputs — are level 0; every other gate sits one
//! past its deepest fan-in) and produces a level-major evaluation order.
//! [`Program::compile`] then lowers the netlist to a dense, branch-friendly
//! opcode stream in structure-of-arrays layout: one opcode byte plus up to
//! three operand net indices per op. The stream is what
//! [`crate::compiled::CompiledSim`] executes 64 stimulus lanes at a time;
//! the level boundaries are retained so parallel backends (e.g.
//! [`crate::sharded::ShardedSim`]'s shards, or a future per-level
//! evaluator) can exploit the recorded level structure.
//!
//! Compilation also records per-level *fan-in level sets*
//! ([`Program::level_deps`]): for each level, a bitset over the earlier
//! levels whose nets feed it. This is what lets
//! [`crate::compiled::CompiledSim`]'s event-driven evaluation skip a whole
//! level when none of its fan-in levels changed a value word during the
//! current settle (see `docs/simulation.md` § "Event-driven evaluation").

use crate::{Gate, NetId, Netlist};

/// Converts an op-stream size to the `u32` index space the compiled arrays
/// use, panicking with an actionable message instead of silently
/// truncating when a netlist is too large.
fn checked_u32(n: usize, what: &str) -> u32 {
    u32::try_from(n).unwrap_or_else(|_| {
        panic!(
            "netlist too large to compile: {n} {what} exceed the u32 index \
             space of the compiled op stream ({} max); shard the design or \
             widen the Program index type",
            u32::MAX
        )
    })
}

/// ASAP levelization of a netlist.
#[derive(Debug, Clone)]
pub struct Levelized {
    /// Logic depth per net (indexed by `NetId`).
    pub depth: Vec<u32>,
    /// All nets in level-major order (stable by id within a level).
    pub order: Vec<NetId>,
    /// `order[bounds[l] as usize..bounds[l + 1] as usize]` is level `l`.
    pub bounds: Vec<u32>,
}

impl Levelized {
    /// Number of levels (combinational depth + 1).
    pub fn levels(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }
}

/// Computes ASAP levels over the gate arena.
///
/// Relies on the arena's topological invariant (every combinational fan-in
/// id is smaller than the gate's id), so a single forward pass suffices.
pub fn levelize(netlist: &Netlist) -> Levelized {
    let gates = netlist.gates();
    // The counting sort below and the compiled op stream index nets with
    // u32; reject oversized arenas up front instead of wrapping.
    checked_u32(gates.len(), "nets");
    let mut depth = vec![0u32; gates.len()];
    let mut max_level = 0u32;
    for (id, gate) in gates.iter().enumerate() {
        let d = match gate {
            Gate::Const(_) | Gate::Input(_) | Gate::Dff { .. } => 0,
            _ => gate.fanin().map(|f| depth[f as usize]).max().unwrap_or(0) + 1,
        };
        depth[id] = d;
        max_level = max_level.max(d);
    }
    // Counting sort by level keeps the order stable (ids ascending within a
    // level), which in turn keeps toggle accounting identical to the
    // interpreted backend's id-order pass.
    let mut bounds = vec![0u32; max_level as usize + 2];
    for &d in &depth {
        bounds[d as usize + 1] += 1;
    }
    for l in 1..bounds.len() {
        bounds[l] += bounds[l - 1];
    }
    let mut cursor = bounds.clone();
    let mut order = vec![0 as NetId; gates.len()];
    for (id, &d) in depth.iter().enumerate() {
        order[cursor[d as usize] as usize] = id as NetId;
        cursor[d as usize] += 1;
    }
    Levelized {
        depth,
        order,
        bounds,
    }
}

/// One flat-stream operation kind.
///
/// Constants are not scheduled (their value words are preset once at reset
/// and never change), so the stream holds only ops whose result can vary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpCode {
    /// `dst = input_word(a)` — copy a primary-input lane word.
    Input,
    /// `dst = !a`.
    Not,
    /// `dst = a & b`.
    And,
    /// `dst = a | b`.
    Or,
    /// `dst = a ^ b`.
    Xor,
    /// `dst = !(a & b)`.
    Nand,
    /// `dst = !(a | b)`.
    Nor,
    /// `dst = !(a ^ b)`.
    Xnor,
    /// `dst = (c & b) | (!c & a)` — 2:1 mux with select `c`.
    Mux,
    /// `dst = ff_state(dst)` — publish a flip-flop's stored word.
    DffOut,
}

/// A netlist compiled to a structure-of-arrays op stream.
///
/// All five arrays have one entry per op; unused operand slots are 0. Ops
/// are stored level-major, so a forward sweep is a valid combinational
/// settle and [`Program::level_ops`] exposes per-level slices for parallel
/// execution strategies.
#[derive(Debug, Clone)]
pub struct Program {
    /// Opcode per op.
    pub opcodes: Vec<OpCode>,
    /// Destination net per op.
    pub dst: Vec<u32>,
    /// First operand: net id, or the primary-input index for [`OpCode::Input`].
    pub a: Vec<u32>,
    /// Second operand net (two-input gates, mux `b` leg).
    pub b: Vec<u32>,
    /// Third operand net (mux select).
    pub c: Vec<u32>,
    /// Op-stream offsets of each level (`len = levels + 1`).
    pub bounds: Vec<u32>,
    /// Per-level fan-in *dirt source* sets, flattened:
    /// `level_deps[l * dep_stride .. (l + 1) * dep_stride]` is a bitset
    /// (bit `k` = word `k / 64`, bit `k % 64`) over the sources whose
    /// change forces level `l` to re-evaluate:
    ///
    /// * bit `k < levels` — some op in level `l` reads a net computed in
    ///   level `k`. Level-0 nets are published from external words and get
    ///   the two dedicated bits below instead, so bit 0 is never set.
    /// * bit `levels` ([`Program::dep_bit_inputs`]) — some op reads a net
    ///   published from a primary-input word ([`OpCode::Input`]).
    /// * bit `levels + 1` ([`Program::dep_bit_ffs`]) — some op reads a net
    ///   published from a stored FF word ([`OpCode::DffOut`]).
    ///
    /// Splitting level 0 by source kind is what lets a cycle loop skip
    /// input-fed cones when only flip-flops changed (and vice versa).
    /// Constant nets are excluded entirely: they can never change.
    pub level_deps: Vec<u64>,
    /// Bitset words per level in [`Program::level_deps`]
    /// (`(levels + 2).div_ceil(64)`).
    pub dep_stride: usize,
    /// Constant nets and their fixed values (preset at reset, never executed).
    pub consts: Vec<(NetId, bool)>,
    /// `(ff net, d net)` pairs latched by a clock edge.
    pub dffs: Vec<(NetId, NetId)>,
    /// Total nets in the source netlist (sizing for value/toggle arrays).
    pub net_count: usize,
    /// Number of primary-input bits.
    pub input_count: usize,
    /// Lazily-compiled native code, one slot per lane-block width
    /// ([`crate::jit`]). Rides the program's lifetime — including
    /// through [`crate::cache::ProgramCache`] `Arc`s — and clones
    /// empty, so hand-mutated program copies never execute stale code.
    pub(crate) jit: crate::jit::JitSlots,
}

impl Program {
    /// Lowers `netlist` into the flat op stream.
    pub fn compile(netlist: &Netlist) -> Program {
        let lev = levelize(netlist);
        let gates = netlist.gates();
        let levels = lev.levels();
        // Two extra dirt-source bits past the per-level ones: "input-fed"
        // and "FF-fed" (see the `level_deps` docs).
        let dep_stride = (levels + 2).div_ceil(64);
        let mut p = Program {
            opcodes: Vec::with_capacity(gates.len()),
            dst: Vec::with_capacity(gates.len()),
            a: Vec::with_capacity(gates.len()),
            b: Vec::with_capacity(gates.len()),
            c: Vec::with_capacity(gates.len()),
            bounds: Vec::with_capacity(lev.bounds.len()),
            level_deps: vec![0u64; levels * dep_stride],
            dep_stride,
            consts: Vec::new(),
            dffs: Vec::new(),
            net_count: gates.len(),
            input_count: netlist.inputs().iter().map(|port| port.nets.len()).sum(),
            jit: crate::jit::JitSlots::default(),
        };
        p.bounds.push(0);
        for level in 0..levels {
            for &id in &lev.order[lev.bounds[level] as usize..lev.bounds[level + 1] as usize] {
                let (op, a, b, c) = match gates[id as usize] {
                    Gate::Const(v) => {
                        p.consts.push((id, v));
                        continue;
                    }
                    Gate::Input(idx) => (OpCode::Input, idx, 0, 0),
                    Gate::Not(x) => (OpCode::Not, x, 0, 0),
                    Gate::And(x, y) => (OpCode::And, x, y, 0),
                    Gate::Or(x, y) => (OpCode::Or, x, y, 0),
                    Gate::Xor(x, y) => (OpCode::Xor, x, y, 0),
                    Gate::Nand(x, y) => (OpCode::Nand, x, y, 0),
                    Gate::Nor(x, y) => (OpCode::Nor, x, y, 0),
                    Gate::Xnor(x, y) => (OpCode::Xnor, x, y, 0),
                    Gate::Mux { sel, a, b } => (OpCode::Mux, a, b, sel),
                    Gate::Dff { d, .. } => {
                        p.dffs.push((id, d));
                        (OpCode::DffOut, 0, 0, 0)
                    }
                };
                // Record which dirt sources feed this level. Constant
                // fan-ins are skipped (preset at reset, can never change);
                // level-0 fan-ins resolve to the input-fed or FF-fed
                // source bit depending on what publishes them.
                for f in gates[id as usize].fanin() {
                    let dep = match gates[f as usize] {
                        Gate::Const(_) => continue,
                        Gate::Input(_) => levels,
                        Gate::Dff { .. } => levels + 1,
                        _ => lev.depth[f as usize] as usize,
                    };
                    p.level_deps[level * dep_stride + dep / 64] |= 1u64 << (dep % 64);
                }
                p.opcodes.push(op);
                p.dst.push(id);
                p.a.push(a);
                p.b.push(b);
                p.c.push(c);
            }
            p.bounds.push(checked_u32(p.opcodes.len(), "ops"));
        }
        p
    }

    /// Native code for `lane_words`-word lane blocks, compiled with
    /// default [`crate::jit::JitOptions`] on first request and cached
    /// on the program (so [`crate::cache::ProgramCache`] hits reuse
    /// it). `None` when codegen is unavailable for this host, program,
    /// or width — callers run the interpreter instead.
    pub fn jit(&self, lane_words: usize) -> Option<std::sync::Arc<crate::jit::JitProgram>> {
        self.jit.get_or_build(self, lane_words)
    }

    /// Number of scheduled ops.
    pub fn len(&self) -> usize {
        self.opcodes.len()
    }

    /// True when the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.opcodes.is_empty()
    }

    /// Number of levels in the schedule.
    pub fn levels(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// The op index range of one level.
    pub fn level_ops(&self, level: usize) -> std::ops::Range<usize> {
        self.bounds[level] as usize..self.bounds[level + 1] as usize
    }

    /// [`Program::level_deps`] bit index of the "a primary-input word
    /// changed" dirt source.
    pub fn dep_bit_inputs(&self) -> usize {
        self.levels()
    }

    /// [`Program::level_deps`] bit index of the "a stored FF word changed"
    /// dirt source.
    pub fn dep_bit_ffs(&self) -> usize {
        self.levels() + 1
    }

    /// The dirt-source set of one level, as a `dep_stride`-word bitset
    /// slice (see [`Program::level_deps`] for the bit layout).
    pub fn level_dep_set(&self, level: usize) -> &[u64] {
        &self.level_deps[level * self.dep_stride..(level + 1) * self.dep_stride]
    }

    /// Scheduled ops of the widest level — the upper bound on how much
    /// intra-level parallelism ([`crate::compiled::EvalPolicy`]) the
    /// schedule can ever exploit.
    pub fn max_level_ops(&self) -> usize {
        (0..self.levels())
            .map(|l| self.level_ops(l).len())
            .max()
            .unwrap_or(0)
    }
}

/// The contiguous sub-range of `range` that worker `tid` of `threads`
/// evaluates when a level is split for parallel evaluation.
///
/// The split is purely positional — `div_ceil`-sized chunks in op order —
/// so it is deterministic for a fixed `(range, threads)` and the chunks
/// partition `range` exactly (no op is evaluated twice or dropped).
/// Ranges shorter than `min_ops` are not split at all: worker 0 takes the
/// whole range and every other worker gets an empty chunk, because the
/// per-level barrier handshake would dominate tiny levels.
pub(crate) fn par_chunk(
    range: std::ops::Range<usize>,
    tid: usize,
    threads: usize,
    min_ops: usize,
) -> std::ops::Range<usize> {
    let n = range.len();
    if n < min_ops || threads <= 1 {
        return if tid == 0 {
            range
        } else {
            range.start..range.start
        };
    }
    let chunk = n.div_ceil(threads);
    let lo = range.start + (tid * chunk).min(n);
    let hi = range.start + ((tid + 1) * chunk).min(n);
    lo..hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    fn sample() -> Netlist {
        let mut b = Builder::new();
        let x = b.input("x");
        let y = b.input("y");
        let a = b.and(x, y);
        let o = b.or(a, x);
        let ff = b.dff(false);
        let n = b.xor(o, ff);
        b.connect_dff(ff, n);
        b.output("q", n);
        b.finish()
    }

    #[test]
    fn levels_respect_fanin_depth() {
        let nl = sample();
        let lev = levelize(&nl);
        for (id, gate) in nl.gates().iter().enumerate() {
            for f in gate.fanin() {
                assert!(
                    lev.depth[f as usize] < lev.depth[id],
                    "fan-in {f} not strictly shallower than {id}"
                );
            }
        }
        assert!(lev.levels() >= 3);
        assert_eq!(lev.order.len(), nl.len());
    }

    #[test]
    fn order_is_a_permutation() {
        let nl = sample();
        let lev = levelize(&nl);
        let mut seen = vec![false; nl.len()];
        for &id in &lev.order {
            assert!(!seen[id as usize]);
            seen[id as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn level_deps_cover_exactly_the_fanin_sources() {
        let nl = sample();
        let lev = levelize(&nl);
        let p = Program::compile(&nl);
        assert_eq!(p.dep_stride, (p.levels() + 2).div_ceil(64));
        assert_eq!(p.level_deps.len(), p.levels() * p.dep_stride);
        // Reconstruct the expected sets straight from the gate arena.
        let gates = nl.gates();
        for level in 0..p.levels() {
            let deps = p.level_dep_set(level);
            let mut expect = vec![0u64; p.dep_stride];
            for i in p.level_ops(level) {
                for f in gates[p.dst[i] as usize].fanin() {
                    let d = match gates[f as usize] {
                        Gate::Const(_) => continue,
                        Gate::Input(_) => p.dep_bit_inputs(),
                        Gate::Dff { .. } => p.dep_bit_ffs(),
                        _ => lev.depth[f as usize] as usize,
                    };
                    expect[d / 64] |= 1u64 << (d % 64);
                }
            }
            assert_eq!(deps, &expect[..], "level {level}");
            // Net fan-ins are strictly earlier levels, and never level 0
            // (level-0 nets resolve to the external dirt-source bits).
            assert_eq!(deps[0] & 1, 0, "level {level} claims a level-0 net");
            for k in level..p.levels() {
                assert_eq!(deps[k / 64] & (1 << (k % 64)), 0, "level {level} dep {k}");
            }
        }
        // Level 0 itself reads only external words: an all-empty set.
        assert!(p.level_dep_set(0).iter().all(|&w| w == 0));
        // The sample circuit's level 1 reads inputs (and/or) but no FFs;
        // the xor level reads the FF output.
        assert_ne!(
            p.level_dep_set(1)[p.dep_bit_inputs() / 64] & (1 << (p.dep_bit_inputs() % 64)),
            0
        );
        let ff_reader = (1..p.levels())
            .any(|l| p.level_dep_set(l)[p.dep_bit_ffs() / 64] & (1 << (p.dep_bit_ffs() % 64)) != 0);
        assert!(ff_reader, "some level must read the DFF output");
    }

    #[test]
    #[should_panic(expected = "netlist too large to compile")]
    fn oversized_op_streams_are_rejected_not_truncated() {
        // Regression for the silent `as u32` truncation: the checked
        // conversion must panic with an actionable message instead of
        // wrapping when a netlist exceeds the u32 index space.
        let _ = checked_u32(u32::MAX as usize + 1, "ops");
    }

    #[test]
    fn par_chunks_partition_every_range_exactly() {
        for (start, len) in [(0usize, 0usize), (3, 1), (10, 7), (0, 64), (100, 1000)] {
            for threads in [1usize, 2, 3, 4, 7, 64] {
                let range = start..start + len;
                let mut covered = Vec::new();
                for tid in 0..threads {
                    let c = par_chunk(range.clone(), tid, threads, 1);
                    assert!(c.start >= range.start && c.end <= range.end);
                    covered.extend(c);
                }
                // Exactly the range, each op once, in order.
                assert_eq!(
                    covered,
                    range.collect::<Vec<_>>(),
                    "{len} ops / {threads} threads"
                );
            }
        }
    }

    #[test]
    fn par_chunks_keep_small_levels_on_worker_zero() {
        let range = 5..20; // 15 ops, below the 16-op threshold
        assert_eq!(par_chunk(range.clone(), 0, 4, 16), range);
        for tid in 1..4 {
            assert!(par_chunk(range.clone(), tid, 4, 16).is_empty());
        }
    }

    #[test]
    fn max_level_ops_matches_widest_level() {
        let nl = sample();
        let p = Program::compile(&nl);
        let widest = (0..p.levels()).map(|l| p.level_ops(l).len()).max().unwrap();
        assert_eq!(p.max_level_ops(), widest);
        assert!(widest >= 1);
    }

    #[test]
    fn compile_schedules_every_non_const_gate_once() {
        let nl = sample();
        let p = Program::compile(&nl);
        let const_count = nl
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Const(_)))
            .count();
        assert_eq!(p.len() + const_count, nl.len());
        assert_eq!(p.consts.len(), const_count);
        assert_eq!(p.dffs.len(), 1);
        // Ops within the stream never read a net scheduled at the same or a
        // later position, except DffOut/Input which read external state.
        let mut scheduled = vec![false; nl.len()];
        for &(id, _) in p.consts.iter() {
            scheduled[id as usize] = true;
        }
        for i in 0..p.len() {
            match p.opcodes[i] {
                OpCode::Input | OpCode::DffOut => {}
                OpCode::Mux => {
                    assert!(scheduled[p.a[i] as usize]);
                    assert!(scheduled[p.b[i] as usize]);
                    assert!(scheduled[p.c[i] as usize]);
                }
                OpCode::Not => assert!(scheduled[p.a[i] as usize]),
                _ => {
                    assert!(scheduled[p.a[i] as usize]);
                    assert!(scheduled[p.b[i] as usize]);
                }
            }
            scheduled[p.dst[i] as usize] = true;
        }
    }
}
