//! Levelization and compilation of a netlist into a flat instruction stream.
//!
//! [`levelize`] assigns every net an ASAP logic level (sources — constants,
//! primary inputs, and DFF outputs — are level 0; every other gate sits one
//! past its deepest fan-in) and produces a level-major evaluation order.
//! [`Program::compile`] then lowers the netlist to a dense, branch-friendly
//! opcode stream in structure-of-arrays layout: one opcode byte plus up to
//! three operand net indices per op. The stream is what
//! [`crate::compiled::CompiledSim`] executes 64 stimulus lanes at a time;
//! the level boundaries are retained so parallel backends (e.g.
//! [`crate::sharded::ShardedSim`]'s shards, or a future per-level
//! evaluator) can exploit the recorded level structure.

use crate::{Gate, NetId, Netlist};

/// ASAP levelization of a netlist.
#[derive(Debug, Clone)]
pub struct Levelized {
    /// Logic depth per net (indexed by `NetId`).
    pub depth: Vec<u32>,
    /// All nets in level-major order (stable by id within a level).
    pub order: Vec<NetId>,
    /// `order[bounds[l] as usize..bounds[l + 1] as usize]` is level `l`.
    pub bounds: Vec<u32>,
}

impl Levelized {
    /// Number of levels (combinational depth + 1).
    pub fn levels(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }
}

/// Computes ASAP levels over the gate arena.
///
/// Relies on the arena's topological invariant (every combinational fan-in
/// id is smaller than the gate's id), so a single forward pass suffices.
pub fn levelize(netlist: &Netlist) -> Levelized {
    let gates = netlist.gates();
    let mut depth = vec![0u32; gates.len()];
    let mut max_level = 0u32;
    for (id, gate) in gates.iter().enumerate() {
        let d = match gate {
            Gate::Const(_) | Gate::Input(_) | Gate::Dff { .. } => 0,
            _ => gate.fanin().map(|f| depth[f as usize]).max().unwrap_or(0) + 1,
        };
        depth[id] = d;
        max_level = max_level.max(d);
    }
    // Counting sort by level keeps the order stable (ids ascending within a
    // level), which in turn keeps toggle accounting identical to the
    // interpreted backend's id-order pass.
    let mut bounds = vec![0u32; max_level as usize + 2];
    for &d in &depth {
        bounds[d as usize + 1] += 1;
    }
    for l in 1..bounds.len() {
        bounds[l] += bounds[l - 1];
    }
    let mut cursor = bounds.clone();
    let mut order = vec![0 as NetId; gates.len()];
    for (id, &d) in depth.iter().enumerate() {
        order[cursor[d as usize] as usize] = id as NetId;
        cursor[d as usize] += 1;
    }
    Levelized {
        depth,
        order,
        bounds,
    }
}

/// One flat-stream operation kind.
///
/// Constants are not scheduled (their value words are preset once at reset
/// and never change), so the stream holds only ops whose result can vary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpCode {
    /// `dst = input_word(a)` — copy a primary-input lane word.
    Input,
    /// `dst = !a`.
    Not,
    /// `dst = a & b`.
    And,
    /// `dst = a | b`.
    Or,
    /// `dst = a ^ b`.
    Xor,
    /// `dst = !(a & b)`.
    Nand,
    /// `dst = !(a | b)`.
    Nor,
    /// `dst = !(a ^ b)`.
    Xnor,
    /// `dst = (c & b) | (!c & a)` — 2:1 mux with select `c`.
    Mux,
    /// `dst = ff_state(dst)` — publish a flip-flop's stored word.
    DffOut,
}

/// A netlist compiled to a structure-of-arrays op stream.
///
/// All five arrays have one entry per op; unused operand slots are 0. Ops
/// are stored level-major, so a forward sweep is a valid combinational
/// settle and [`Program::level_ops`] exposes per-level slices for parallel
/// execution strategies.
#[derive(Debug, Clone)]
pub struct Program {
    /// Opcode per op.
    pub opcodes: Vec<OpCode>,
    /// Destination net per op.
    pub dst: Vec<u32>,
    /// First operand: net id, or the primary-input index for [`OpCode::Input`].
    pub a: Vec<u32>,
    /// Second operand net (two-input gates, mux `b` leg).
    pub b: Vec<u32>,
    /// Third operand net (mux select).
    pub c: Vec<u32>,
    /// Op-stream offsets of each level (`len = levels + 1`).
    pub bounds: Vec<u32>,
    /// Constant nets and their fixed values (preset at reset, never executed).
    pub consts: Vec<(NetId, bool)>,
    /// `(ff net, d net)` pairs latched by a clock edge.
    pub dffs: Vec<(NetId, NetId)>,
    /// Total nets in the source netlist (sizing for value/toggle arrays).
    pub net_count: usize,
    /// Number of primary-input bits.
    pub input_count: usize,
}

impl Program {
    /// Lowers `netlist` into the flat op stream.
    pub fn compile(netlist: &Netlist) -> Program {
        let lev = levelize(netlist);
        let gates = netlist.gates();
        let mut p = Program {
            opcodes: Vec::with_capacity(gates.len()),
            dst: Vec::with_capacity(gates.len()),
            a: Vec::with_capacity(gates.len()),
            b: Vec::with_capacity(gates.len()),
            c: Vec::with_capacity(gates.len()),
            bounds: Vec::with_capacity(lev.bounds.len()),
            consts: Vec::new(),
            dffs: Vec::new(),
            net_count: gates.len(),
            input_count: netlist.inputs().iter().map(|port| port.nets.len()).sum(),
        };
        p.bounds.push(0);
        for level in 0..lev.levels() {
            for &id in &lev.order[lev.bounds[level] as usize..lev.bounds[level + 1] as usize] {
                let (op, a, b, c) = match gates[id as usize] {
                    Gate::Const(v) => {
                        p.consts.push((id, v));
                        continue;
                    }
                    Gate::Input(idx) => (OpCode::Input, idx, 0, 0),
                    Gate::Not(x) => (OpCode::Not, x, 0, 0),
                    Gate::And(x, y) => (OpCode::And, x, y, 0),
                    Gate::Or(x, y) => (OpCode::Or, x, y, 0),
                    Gate::Xor(x, y) => (OpCode::Xor, x, y, 0),
                    Gate::Nand(x, y) => (OpCode::Nand, x, y, 0),
                    Gate::Nor(x, y) => (OpCode::Nor, x, y, 0),
                    Gate::Xnor(x, y) => (OpCode::Xnor, x, y, 0),
                    Gate::Mux { sel, a, b } => (OpCode::Mux, a, b, sel),
                    Gate::Dff { d, .. } => {
                        p.dffs.push((id, d));
                        (OpCode::DffOut, 0, 0, 0)
                    }
                };
                p.opcodes.push(op);
                p.dst.push(id);
                p.a.push(a);
                p.b.push(b);
                p.c.push(c);
            }
            p.bounds.push(p.opcodes.len() as u32);
        }
        p
    }

    /// Number of scheduled ops.
    pub fn len(&self) -> usize {
        self.opcodes.len()
    }

    /// True when the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.opcodes.is_empty()
    }

    /// Number of levels in the schedule.
    pub fn levels(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// The op index range of one level.
    pub fn level_ops(&self, level: usize) -> std::ops::Range<usize> {
        self.bounds[level] as usize..self.bounds[level + 1] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    fn sample() -> Netlist {
        let mut b = Builder::new();
        let x = b.input("x");
        let y = b.input("y");
        let a = b.and(x, y);
        let o = b.or(a, x);
        let ff = b.dff(false);
        let n = b.xor(o, ff);
        b.connect_dff(ff, n);
        b.output("q", n);
        b.finish()
    }

    #[test]
    fn levels_respect_fanin_depth() {
        let nl = sample();
        let lev = levelize(&nl);
        for (id, gate) in nl.gates().iter().enumerate() {
            for f in gate.fanin() {
                assert!(
                    lev.depth[f as usize] < lev.depth[id],
                    "fan-in {f} not strictly shallower than {id}"
                );
            }
        }
        assert!(lev.levels() >= 3);
        assert_eq!(lev.order.len(), nl.len());
    }

    #[test]
    fn order_is_a_permutation() {
        let nl = sample();
        let lev = levelize(&nl);
        let mut seen = vec![false; nl.len()];
        for &id in &lev.order {
            assert!(!seen[id as usize]);
            seen[id as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn compile_schedules_every_non_const_gate_once() {
        let nl = sample();
        let p = Program::compile(&nl);
        let const_count = nl
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Const(_)))
            .count();
        assert_eq!(p.len() + const_count, nl.len());
        assert_eq!(p.consts.len(), const_count);
        assert_eq!(p.dffs.len(), 1);
        // Ops within the stream never read a net scheduled at the same or a
        // later position, except DffOut/Input which read external state.
        let mut scheduled = vec![false; nl.len()];
        for &(id, _) in p.consts.iter() {
            scheduled[id as usize] = true;
        }
        for i in 0..p.len() {
            match p.opcodes[i] {
                OpCode::Input | OpCode::DffOut => {}
                OpCode::Mux => {
                    assert!(scheduled[p.a[i] as usize]);
                    assert!(scheduled[p.b[i] as usize]);
                    assert!(scheduled[p.c[i] as usize]);
                }
                OpCode::Not => assert!(scheduled[p.a[i] as usize]),
                _ => {
                    assert!(scheduled[p.a[i] as usize]);
                    assert!(scheduled[p.b[i] as usize]);
                }
            }
            scheduled[p.dst[i] as usize] = true;
        }
    }
}
