//! Netlist optimisation — the reproduction's "synthesis tool".
//!
//! The paper deliberately leaves all optimisation to synthesis: instruction
//! hardware blocks are stitched naively and "the synthesis tool will
//! optimize the gate netlists by maximizing the resource sharing" (§3.3).
//! [`synthesize`] plays that role here: it re-builds the netlist through
//! the hash-consing [`Builder`] (merging structurally identical logic and
//! re-applying constant folding) and then sweeps logic unreachable from any
//! output or DFF.  [`check_equivalence`] is the stand-in for the
//! equivalence checking synthesis tools run after optimisation.

use crate::sharded::{ShardPolicy, ShardedSim};
use crate::{Builder, Gate, NetId, Netlist};
use std::collections::HashMap;

/// Statistics from one [`synthesize`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthReport {
    /// Gate count before optimisation.
    pub gates_before: usize,
    /// Gate count after sharing and sweeping.
    pub gates_after: usize,
}

impl SynthReport {
    /// Fraction of gates removed, in `[0, 1]`.
    pub fn reduction(&self) -> f64 {
        if self.gates_before == 0 {
            return 0.0;
        }
        1.0 - self.gates_after as f64 / self.gates_before as f64
    }
}

/// Rebuilds `netlist` with maximal structural sharing and dead-logic
/// removal, preserving port names and order.
pub fn synthesize(netlist: &Netlist) -> (Netlist, SynthReport) {
    // Pass 1: re-cons every gate through a fresh builder.
    let mut b = Builder::new();
    let mut map: Vec<NetId> = Vec::with_capacity(netlist.len());
    let mut dff_fixups: Vec<(NetId, NetId)> = Vec::new();
    let mut input_nets: HashMap<u32, NetId> = HashMap::new();
    for port in netlist.inputs() {
        let nets = b.input_bus(&port.name, port.nets.len());
        for (&old, new) in port.nets.iter().zip(nets) {
            if let Gate::Input(idx) = netlist.gates()[old as usize] {
                input_nets.insert(idx, new);
            }
        }
    }
    for gate in netlist.gates() {
        let new_id = match *gate {
            Gate::Const(v) => b.constant(v),
            Gate::Input(idx) => input_nets[&idx],
            Gate::Not(x) => {
                let x = map[x as usize];
                b.not(x)
            }
            Gate::And(x, y) => {
                let (x, y) = (map[x as usize], map[y as usize]);
                b.and(x, y)
            }
            Gate::Or(x, y) => {
                let (x, y) = (map[x as usize], map[y as usize]);
                b.or(x, y)
            }
            Gate::Xor(x, y) => {
                let (x, y) = (map[x as usize], map[y as usize]);
                b.xor(x, y)
            }
            Gate::Nand(x, y) => {
                let (x, y) = (map[x as usize], map[y as usize]);
                b.nand(x, y)
            }
            Gate::Nor(x, y) => {
                let (x, y) = (map[x as usize], map[y as usize]);
                b.nor(x, y)
            }
            Gate::Xnor(x, y) => {
                let (x, y) = (map[x as usize], map[y as usize]);
                b.xnor(x, y)
            }
            Gate::Mux { sel, a, b: bb } => {
                let (sel, a, bb) = (map[sel as usize], map[a as usize], map[bb as usize]);
                b.mux(sel, a, bb)
            }
            Gate::Dff { d, init } => {
                let ff = b.dff(init);
                dff_fixups.push((ff, d));
                ff
            }
        };
        map.push(new_id);
    }
    for (ff, old_d) in dff_fixups {
        let d = map[old_d as usize];
        b.connect_dff(ff, d);
    }
    for port in netlist.outputs() {
        let nets: Vec<NetId> = port.nets.iter().map(|&n| map[n as usize]).collect();
        b.output_bus(&port.name, &nets);
    }
    let consed = b.finish();

    // Pass 2: sweep gates unreachable from outputs or DFF data inputs.
    let swept = sweep(&consed);
    let report = SynthReport {
        gates_before: netlist.len(),
        gates_after: swept.len(),
    };
    (swept, report)
}

/// Removes logic not reachable from any output port or DFF `d` input.
pub fn sweep(netlist: &Netlist) -> Netlist {
    let n = netlist.len();
    let mut live = vec![false; n];
    let mut stack: Vec<NetId> = Vec::new();
    for port in netlist.outputs() {
        stack.extend(&port.nets);
    }
    for (id, gate) in netlist.gates().iter().enumerate() {
        if let Gate::Dff { d, .. } = gate {
            // A DFF is a root only if its output is reachable; handled below
            // by treating reachable DFFs' `d` as live.  Seed nothing here.
            let _ = (id, d);
        }
    }
    while let Some(id) = stack.pop() {
        if live[id as usize] {
            continue;
        }
        live[id as usize] = true;
        let gate = netlist.gates()[id as usize];
        for f in gate.fanin() {
            stack.push(f);
        }
        if let Gate::Dff { d, .. } = gate {
            stack.push(d);
        }
    }
    // Inputs stay (they are the module's pins) even if unused.
    for port in netlist.inputs() {
        for &net in &port.nets {
            live[net as usize] = true;
        }
    }
    // Rebuild, keeping live gates in order.
    let mut b = Builder::new();
    let mut map: Vec<NetId> = vec![NetId::MAX; n];
    let mut input_nets: HashMap<u32, NetId> = HashMap::new();
    for port in netlist.inputs() {
        let nets = b.input_bus(&port.name, port.nets.len());
        for (&old, new) in port.nets.iter().zip(nets) {
            if let Gate::Input(idx) = netlist.gates()[old as usize] {
                input_nets.insert(idx, new);
            }
        }
    }
    let mut dff_fixups: Vec<(NetId, NetId)> = Vec::new();
    for (id, gate) in netlist.gates().iter().enumerate() {
        if !live[id] {
            continue;
        }
        let new_id = match *gate {
            Gate::Const(v) => b.constant(v),
            Gate::Input(idx) => input_nets[&idx],
            Gate::Not(x) => {
                let x = map[x as usize];
                b.not(x)
            }
            Gate::And(x, y) => {
                let (x, y) = (map[x as usize], map[y as usize]);
                b.and(x, y)
            }
            Gate::Or(x, y) => {
                let (x, y) = (map[x as usize], map[y as usize]);
                b.or(x, y)
            }
            Gate::Xor(x, y) => {
                let (x, y) = (map[x as usize], map[y as usize]);
                b.xor(x, y)
            }
            Gate::Nand(x, y) => {
                let (x, y) = (map[x as usize], map[y as usize]);
                b.nand(x, y)
            }
            Gate::Nor(x, y) => {
                let (x, y) = (map[x as usize], map[y as usize]);
                b.nor(x, y)
            }
            Gate::Xnor(x, y) => {
                let (x, y) = (map[x as usize], map[y as usize]);
                b.xnor(x, y)
            }
            Gate::Mux { sel, a, b: bb } => {
                let (sel, a, bb) = (map[sel as usize], map[a as usize], map[bb as usize]);
                b.mux(sel, a, bb)
            }
            Gate::Dff { d, init } => {
                let ff = b.dff(init);
                dff_fixups.push((ff, d));
                ff
            }
        };
        map[id] = new_id;
    }
    for (ff, old_d) in dff_fixups {
        let d = map[old_d as usize];
        assert_ne!(d, NetId::MAX, "live DFF feeds from dead logic");
        b.connect_dff(ff, d);
    }
    for port in netlist.outputs() {
        let nets: Vec<NetId> = port.nets.iter().map(|&n| map[n as usize]).collect();
        b.output_bus(&port.name, &nets);
    }
    b.finish()
}

/// Randomised combinational equivalence check between two netlists with
/// identical port interfaces — the reproduction's analogue of the formal
/// equivalence checking synthesis tools perform after optimisation.
///
/// Both netlists are compiled once and the random vectors are packed 64 per
/// evaluation (one stimulus per compiled-backend lane), so the input sweep
/// costs `samples / 64` settles per netlist instead of `samples`.
/// Delegates to [`check_equivalence_with`] with a single-shard policy; pass
/// a wider [`ShardPolicy`] to drive `shards * 64` vectors per settle across
/// threads.
///
/// Returns `Ok(())` after `samples` agreeing random vectors, or the first
/// disagreeing `(port, input_assignment)` pair.
///
/// # Errors
///
/// Returns the name of the first output port that diverged plus the input
/// vector that exposed it.
pub fn check_equivalence(
    a: &Netlist,
    b: &Netlist,
    samples: usize,
    seed: u64,
) -> Result<(), (String, Vec<(String, u64)>)> {
    check_equivalence_with(a, b, samples, seed, ShardPolicy::single())
}

/// [`check_equivalence`] with an explicit shard policy: each settle packs
/// `policy.total_lanes()` random vectors (up to `lane_words * 64` per
/// fused lane block) and the shards of
/// both netlists evaluate on `policy.threads` workers of the persistent
/// [`crate::pool::WorkerPool`] (or scoped threads on the fallback paths).
///
/// The random vector sequence depends only on `seed` and
/// `policy.total_lanes()` — never on the thread count, the scheduler, or
/// the pool/scoped dispatch — so the verdict is deterministic for a
/// fixed policy shape.
///
/// # Errors
///
/// Returns the name of the first output port that diverged plus the input
/// vector that exposed it.
pub fn check_equivalence_with(
    a: &Netlist,
    b: &Netlist,
    samples: usize,
    seed: u64,
    policy: ShardPolicy,
) -> Result<(), (String, Vec<(String, u64)>)> {
    assert_eq!(
        a.inputs()
            .iter()
            .map(|p| (&p.name, p.nets.len()))
            .collect::<Vec<_>>(),
        b.inputs()
            .iter()
            .map(|p| (&p.name, p.nets.len()))
            .collect::<Vec<_>>(),
        "input interfaces differ"
    );
    // xorshift64* PRNG: deterministic, dependency-free.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let mut sa = ShardedSim::with_policy(a, policy);
    let mut sb = ShardedSim::with_policy(b, policy);
    let width = policy.total_lanes();
    // Physical lanes per shard after lane-block fusion (both sims share
    // the policy, so their physical shapes agree).
    let lanes_per_shard = sa.lanes_per_shard();
    let mut remaining = samples;
    // values[port index][lane], allocated once — port names are recovered
    // from `a.inputs()` order only on the rare mismatch.
    let mut values: Vec<Vec<u64>> = vec![vec![0; width]; a.inputs().len()];
    while remaining > 0 {
        let lanes = remaining.min(width);
        for (port, port_values) in a.inputs().iter().zip(values.iter_mut()) {
            let mask = if port.nets.len() >= 64 {
                u64::MAX
            } else {
                (1u64 << port.nets.len()) - 1
            };
            for slot in port_values.iter_mut().take(lanes) {
                *slot = next() & mask;
            }
            sa.set_bus_lanes(&port.name, &port_values[..lanes]);
            sb.set_bus_lanes(&port.name, &port_values[..lanes]);
        }
        sa.eval();
        sb.eval();
        for port in a.outputs() {
            let Some(port_b) = b.output(&port.name) else {
                continue;
            };
            // Word-compare shard by shard, one `u64` of the lane block at
            // a time, across all active lanes at once (numeric equality:
            // the common bits must match and the wider port's extra bits
            // must be zero); only on a mismatch do we pay for per-lane
            // reconstruction of the failing assignment.
            let common = port.nets.len().min(port_b.nets.len());
            let diverged = sa.shards().iter().zip(sb.shards()).enumerate().any(
                |(shard, (shard_a, shard_b))| {
                    let active = lanes
                        .saturating_sub(shard * lanes_per_shard)
                        .min(lanes_per_shard);
                    if active == 0 {
                        return false;
                    }
                    (0..shard_a.lane_words()).any(|w| {
                        let in_word = active
                            .saturating_sub(w * crate::compiled::LANES_PER_WORD)
                            .min(crate::compiled::LANES_PER_WORD);
                        if in_word == 0 {
                            return false;
                        }
                        let lane_mask = crate::compiled::word_lane_mask(in_word);
                        port.nets[..common].iter().zip(&port_b.nets[..common]).any(
                            |(&net_a, &net_b)| {
                                (shard_a.lane_word_at(net_a, w) ^ shard_b.lane_word_at(net_b, w))
                                    & lane_mask
                                    != 0
                            },
                        ) || port.nets[common..]
                            .iter()
                            .any(|&n| shard_a.lane_word_at(n, w) & lane_mask != 0)
                            || port_b.nets[common..]
                                .iter()
                                .any(|&n| shard_b.lane_word_at(n, w) & lane_mask != 0)
                    })
                },
            );
            if diverged {
                for lane in 0..lanes {
                    if sa.get_bus_lane(&port.name, lane) != sb.get_bus_lane(&port.name, lane) {
                        let assignment = a
                            .inputs()
                            .iter()
                            .zip(&values)
                            .map(|(p, v)| (p.name.clone(), v[lane]))
                            .collect();
                        return Err((port.name.clone(), assignment));
                    }
                }
            }
        }
        remaining -= lanes;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus;
    use crate::sim::Sim;

    fn adder_with_waste() -> Netlist {
        let mut b = Builder::new();
        let x = b.input_bus("x", 8);
        let y = b.input_bus("y", 8);
        let (sum, _) = bus::add(&mut b, &x, &y);
        // Dead logic: a second adder nobody reads.
        let (_dead, _) = bus::sub(&mut b, &x, &y);
        b.output_bus("sum", &sum);
        b.finish()
    }

    #[test]
    fn synthesize_removes_dead_logic() {
        let nl = adder_with_waste();
        let (opt, report) = synthesize(&nl);
        assert!(report.gates_after < report.gates_before);
        assert!(report.reduction() > 0.1);
        check_equivalence(&nl, &opt, 200, 42).unwrap();
    }

    #[test]
    fn synthesize_preserves_sequential_behaviour() {
        // LFSR: x' = x>>1 with feedback taps.
        let mut b = Builder::new();
        let ffs: Vec<NetId> = (0..8).map(|i| b.dff(i == 0)).collect();
        let fb1 = b.xor(ffs[0], ffs[2]);
        let fb = b.xor(fb1, ffs[3]);
        for i in 0..7 {
            b.connect_dff(ffs[i], ffs[i + 1]);
        }
        b.connect_dff(ffs[7], fb);
        b.output_bus("state", &ffs);
        let nl = b.finish();
        let (opt, _) = synthesize(&nl);
        let mut s1 = Sim::new(&nl);
        let mut s2 = Sim::new(&opt);
        for _ in 0..100 {
            s1.eval();
            s2.eval();
            assert_eq!(s1.get_bus("state"), s2.get_bus("state"));
            s1.step();
            s2.step();
        }
    }

    #[test]
    fn equivalence_check_catches_differences() {
        let good = adder_with_waste();
        let bad = {
            let mut b = Builder::new();
            let x = b.input_bus("x", 8);
            let y = b.input_bus("y", 8);
            let (diff, _) = bus::sub(&mut b, &x, &y);
            b.output_bus("sum", &diff);
            b.finish()
        };
        assert!(check_equivalence(&good, &bad, 100, 7).is_err());
    }

    #[test]
    fn sharded_equivalence_check_matches_single_shard_verdicts() {
        let good = adder_with_waste();
        let (opt, _) = synthesize(&good);
        let bad = {
            let mut b = Builder::new();
            let x = b.input_bus("x", 8);
            let y = b.input_bus("y", 8);
            let (diff, _) = bus::sub(&mut b, &x, &y);
            b.output_bus("sum", &diff);
            b.finish()
        };
        for threads in [1, 2, 4] {
            let policy = ShardPolicy {
                shards: 4,
                lanes_per_shard: 64,
                threads,
                ..ShardPolicy::single()
            };
            // 4x64 = 256 vectors per settle; the verdicts must not depend
            // on the thread count.
            check_equivalence_with(&good, &opt, 500, 42, policy).unwrap();
            assert!(check_equivalence_with(&good, &bad, 100, 7, policy).is_err());
        }
        // A sample count that does not divide the lane width exercises the
        // partial final round (per-shard lane masks).
        let policy = ShardPolicy {
            shards: 3,
            lanes_per_shard: 64,
            threads: 2,
            ..ShardPolicy::single()
        };
        check_equivalence_with(&good, &opt, 130, 9, policy).unwrap();
        // The scheduler and intra-shard parallel level evaluation are pure
        // performance knobs: same verdicts under the deprecated static
        // scheduler and with par-level workers inside each shard.
        #[allow(deprecated)] // pins the deprecated scheduler as reference
        let static_policy = ShardPolicy {
            schedule: crate::sharded::ShardSchedule::Static,
            par_levels: 2,
            ..policy
        };
        check_equivalence_with(&good, &opt, 130, 9, static_policy).unwrap();
        assert!(check_equivalence_with(&good, &bad, 100, 7, static_policy).is_err());
        // So is the persistent-pool vs scoped-thread dispatch.
        let scoped_policy = ShardPolicy {
            use_pool: false,
            ..policy
        };
        check_equivalence_with(&good, &opt, 130, 9, scoped_policy).unwrap();
        assert!(check_equivalence_with(&good, &bad, 100, 7, scoped_policy).is_err());
    }

    #[test]
    fn sweep_keeps_input_pins() {
        let mut b = Builder::new();
        let _unused = b.input_bus("unused", 4);
        let x = b.input("x");
        b.output("y", x);
        let nl = b.finish();
        let swept = sweep(&nl);
        assert!(swept.input("unused").is_some());
        assert_eq!(swept.input("unused").unwrap().nets.len(), 4);
    }
}
