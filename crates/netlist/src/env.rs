//! The `GATE_SIM_*` environment knobs, parsed in one place.
//!
//! Every knob follows the same contract: **unset (or set to the empty
//! string) means default**, a well-formed value overrides, and a
//! malformed value panics — a typo'd CI matrix or shell export must
//! never silently test the wrong configuration. (The empty string
//! counts as unset because CI matrix legs that omit a key would
//! otherwise export `FOO=""` and panic.) The five knobs:
//!
//! | variable | values | default | consumers |
//! | --- | --- | --- | --- |
//! | `GATE_SIM_THREADS` | positive integer | auto | [`crate::ShardPolicy::auto`], CI property sweeps, [`crate::pool::WorkerPool::shared`] seeding |
//! | `GATE_SIM_LANE_WORDS` | `1..=`[`MAX_LANE_WORDS`] | 4 | [`crate::ShardPolicy`] lane-block fusion width |
//! | `GATE_SIM_POOL` | `0/1/true/false/on/off` | on | pool acquisition ([`crate::pool`]); off forces scoped-thread fallbacks |
//! | `GATE_SIM_PROGRAM_CACHE` | `0/1/true/false/on/off` | on | the process-wide [`crate::cache::ProgramCache`]; off recompiles every construction |
//! | `GATE_SIM_JIT` | `0/1/true/false/on/off` | unset | [`crate::jit`]: `1` makes [`crate::EvalMode::Jit`] the default eval mode; `0` disables codegen entirely (explicit `Jit` falls back to the interpreter); unset leaves the JIT available but opt-in |
//! | `GATE_SIM_FAILPOINTS` | `<seed>:<site>=<rule>[@<arg>],...` | unset | [`crate::failpoints`] chaos schedules (parsed there, not here) — **only with the `failpoints` cargo feature**; in default builds the variable is ignored and the sites compile to nothing |
//!
//! The same table, with prose semantics, lives in the README's
//! "Environment knobs" section — keep the two in sync.
//!
//! The historical entry points (`netlist::env_threads`,
//! `netlist::env_lane_words`, `netlist::pool::env_pool_enabled`) remain
//! as re-exports, so existing callers and the CI matrix scripts keep
//! working unchanged.

use crate::compiled::MAX_LANE_WORDS;

/// Thread-count override from the `GATE_SIM_THREADS` environment
/// variable, used by [`crate::ShardPolicy::auto`] and the CI
/// thread-matrix (the property tests read it so the parallel paths run
/// with real concurrency when CI sets it). Returns `None` when unset.
///
/// # Panics
///
/// Panics if the variable is set to anything but a positive integer.
pub fn threads() -> Option<usize> {
    let v = non_empty("GATE_SIM_THREADS")?;
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => panic!("GATE_SIM_THREADS={v} is not a positive integer"),
    }
}

/// Lane-block width override from the `GATE_SIM_LANE_WORDS` environment
/// variable: the default [`crate::ShardPolicy`] fusion width, in 64-lane
/// words (`1..=`[`MAX_LANE_WORDS`]). `1` reproduces the historical
/// one-`CompiledSim`-per-64-lanes sharding; the CI matrix runs the test
/// suite at both `1` and `4`. Returns `None` when unset.
///
/// # Panics
///
/// Panics if the variable is set to anything but an integer in
/// `1..=`[`MAX_LANE_WORDS`].
pub fn lane_words() -> Option<usize> {
    let v = non_empty("GATE_SIM_LANE_WORDS")?;
    match v.parse::<usize>() {
        Ok(n) if (1..=MAX_LANE_WORDS).contains(&n) => Some(n),
        _ => panic!("GATE_SIM_LANE_WORDS={v} is not an integer in 1..={MAX_LANE_WORDS}"),
    }
}

/// Whether simulators may acquire the shared worker pool, from the
/// `GATE_SIM_POOL` environment variable. Unset or `1`/`true`/`on` means
/// enabled; `0`/`false`/`off` disables the pool and forces the
/// scoped-thread fallbacks (useful for A/B benches and as an escape
/// hatch).
///
/// # Panics
///
/// Panics if the variable is set to anything else.
pub fn pool_enabled() -> bool {
    switch("GATE_SIM_POOL")
}

/// Whether `CompiledSim` construction may consult the process-wide
/// [`crate::cache::ProgramCache`], from the `GATE_SIM_PROGRAM_CACHE`
/// environment variable. Unset or `1`/`true`/`on` means enabled;
/// `0`/`false`/`off` forces a fresh [`crate::level::Program`] compile on
/// every construction (the pre-cache behavior — results are bit-identical
/// either way, this is an A/B and escape hatch, mirrored by a CI leg).
///
/// # Panics
///
/// Panics if the variable is set to anything else.
pub fn program_cache_enabled() -> bool {
    switch("GATE_SIM_PROGRAM_CACHE")
}

/// The `GATE_SIM_JIT` tri-state, governing [`crate::jit`] native code
/// emission:
///
/// * unset (`None`) — the JIT is *available* but opt-in: the default
///   [`crate::EvalMode`] stays `Auto`, and callers select codegen with
///   [`crate::CompiledSim::set_eval_mode`]`(EvalMode::Jit)`.
/// * `1`/`true`/`on` (`Some(true)`) — `EvalMode::Jit` becomes the
///   default eval mode for every newly constructed `CompiledSim` (and
///   therefore every `ShardedSim` shard). Hosts without codegen support
///   fall back to interpreted full sweeps, bit-identically.
/// * `0`/`false`/`off` (`Some(false)`) — codegen is disabled outright:
///   even an explicit `EvalMode::Jit` runs the interpreter.
///
/// # Panics
///
/// Panics if the variable is set to anything else.
pub fn jit() -> Option<bool> {
    tri_switch("GATE_SIM_JIT")
}

/// `Some(value)` of `name` when set non-empty; empty-string counts as
/// unset (a CI matrix leg without the key exports `""`).
fn non_empty(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|v| !v.is_empty())
}

/// Shared on/off parser: unset defaults to on, junk panics.
fn switch(name: &str) -> bool {
    tri_switch(name).unwrap_or(true)
}

/// On/off parser that preserves the unset case: `None` when unset or
/// empty, `Some(bool)` otherwise, junk panics.
fn tri_switch(name: &str) -> Option<bool> {
    match non_empty(name)?.as_str() {
        "1" | "true" | "on" => Some(true),
        "0" | "false" | "off" => Some(false),
        other => panic!("{name}={other} is not one of 0/1/true/false/on/off"),
    }
}
