//! Word-level combinational building blocks.
//!
//! Buses are `&[NetId]` slices, LSB first.  These helpers are the vocabulary
//! the instruction hardware blocks are written in: ripple-carry adders,
//! barrel shifters, comparators and wide multiplexers, all expressed through
//! the folding [`Builder`] so constant operands melt away.

use crate::{Builder, NetId};

/// Builds a constant bus of `width` bits holding `value`.
pub fn constant(b: &mut Builder, value: u32, width: usize) -> Vec<NetId> {
    (0..width)
        .map(|i| b.constant((value >> i) & 1 == 1))
        .collect()
}

/// Bitwise NOT of a bus.
pub fn not(b: &mut Builder, a: &[NetId]) -> Vec<NetId> {
    a.iter().map(|&x| b.not(x)).collect()
}

/// Bitwise AND of two equal-width buses.
///
/// # Panics
///
/// Panics on width mismatch (as do all two-operand helpers here).
pub fn and(b: &mut Builder, x: &[NetId], y: &[NetId]) -> Vec<NetId> {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&p, &q)| b.and(p, q)).collect()
}

/// Bitwise OR of two equal-width buses.
pub fn or(b: &mut Builder, x: &[NetId], y: &[NetId]) -> Vec<NetId> {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&p, &q)| b.or(p, q)).collect()
}

/// Bitwise XOR of two equal-width buses.
pub fn xor(b: &mut Builder, x: &[NetId], y: &[NetId]) -> Vec<NetId> {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&p, &q)| b.xor(p, q)).collect()
}

/// Bus-wide 2:1 mux: `sel ? y : x`.
pub fn mux(b: &mut Builder, sel: NetId, x: &[NetId], y: &[NetId]) -> Vec<NetId> {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&p, &q)| b.mux(sel, p, q)).collect()
}

/// Ripple-carry addition; returns `(sum, carry_out)`.
pub fn add(b: &mut Builder, x: &[NetId], y: &[NetId]) -> (Vec<NetId>, NetId) {
    let zero = b.zero();
    add_with_carry(b, x, y, zero)
}

/// Ripple-carry addition with carry-in; returns `(sum, carry_out)`.
pub fn add_with_carry(
    b: &mut Builder,
    x: &[NetId],
    y: &[NetId],
    carry_in: NetId,
) -> (Vec<NetId>, NetId) {
    assert_eq!(x.len(), y.len());
    let mut carry = carry_in;
    let mut sum = Vec::with_capacity(x.len());
    for (&p, &q) in x.iter().zip(y) {
        let pxq = b.xor(p, q);
        let s = b.xor(pxq, carry);
        let t1 = b.and(p, q);
        let t2 = b.and(pxq, carry);
        carry = b.or(t1, t2);
        sum.push(s);
    }
    (sum, carry)
}

/// Two's-complement subtraction `x - y`; returns `(difference, carry_out)`
/// where `carry_out == 1` means no borrow (i.e. `x >= y` unsigned).
pub fn sub(b: &mut Builder, x: &[NetId], y: &[NetId]) -> (Vec<NetId>, NetId) {
    let ny = not(b, y);
    let one = b.one();
    add_with_carry(b, x, &ny, one)
}

/// Equality comparison of two buses.
pub fn eq(b: &mut Builder, x: &[NetId], y: &[NetId]) -> NetId {
    assert_eq!(x.len(), y.len());
    let bits = xor(b, x, y);
    let any = tree_or(b, &bits);
    b.not(any)
}

/// Unsigned `x < y`.
pub fn lt_unsigned(b: &mut Builder, x: &[NetId], y: &[NetId]) -> NetId {
    let (_, carry) = sub(b, x, y);
    b.not(carry)
}

/// Signed `x < y` (two's complement).
pub fn lt_signed(b: &mut Builder, x: &[NetId], y: &[NetId]) -> NetId {
    assert!(!x.is_empty());
    let (diff, carry) = sub(b, x, y);
    let _ = diff;
    let sx = *x.last().unwrap();
    let sy = *y.last().unwrap();
    // Signs differ: x < y iff x is negative.  Signs equal: unsigned borrow.
    let borrow = b.not(carry);
    let signs_differ = b.xor(sx, sy);
    b.mux(signs_differ, borrow, sx)
}

/// OR-reduction of a bus as a balanced tree.
pub fn tree_or(b: &mut Builder, bits: &[NetId]) -> NetId {
    match bits.len() {
        0 => b.zero(),
        1 => bits[0],
        n => {
            let (lo, hi) = bits.split_at(n / 2);
            let l = tree_or(b, lo);
            let r = tree_or(b, hi);
            b.or(l, r)
        }
    }
}

/// AND-reduction of a bus as a balanced tree.
pub fn tree_and(b: &mut Builder, bits: &[NetId]) -> NetId {
    match bits.len() {
        0 => b.one(),
        1 => bits[0],
        n => {
            let (lo, hi) = bits.split_at(n / 2);
            let l = tree_and(b, lo);
            let r = tree_and(b, hi);
            b.and(l, r)
        }
    }
}

/// Zero-extends (or truncates) a bus to `width`.
pub fn zext(b: &mut Builder, a: &[NetId], width: usize) -> Vec<NetId> {
    let mut out: Vec<NetId> = a.iter().copied().take(width).collect();
    while out.len() < width {
        out.push(b.zero());
    }
    out
}

/// Sign-extends (or truncates) a bus to `width`.
///
/// # Panics
///
/// Panics on an empty source bus.
pub fn sext(b: &mut Builder, a: &[NetId], width: usize) -> Vec<NetId> {
    assert!(!a.is_empty());
    let _ = b;
    let sign = *a.last().unwrap();
    let mut out: Vec<NetId> = a.iter().copied().take(width).collect();
    while out.len() < width {
        out.push(sign);
    }
    out
}

/// Shift direction and fill for [`barrel_shift`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftKind {
    /// Logical left (`<<`).
    LeftLogical,
    /// Logical right (`>>` with zero fill).
    RightLogical,
    /// Arithmetic right (`>>` replicating the sign bit).
    RightArithmetic,
}

/// Barrel shifter: shifts `value` by the 5-bit amount `shamt` (LSB first).
///
/// Built as log₂(width) mux stages, the same structure synthesis produces
/// for a `<<`/`>>` operator.
///
/// # Panics
///
/// Panics unless `shamt` has exactly 5 bits and `value` has 32.
pub fn barrel_shift(
    b: &mut Builder,
    value: &[NetId],
    shamt: &[NetId],
    kind: ShiftKind,
) -> Vec<NetId> {
    assert_eq!(value.len(), 32, "barrel shifter is 32-bit");
    assert_eq!(shamt.len(), 5, "shift amount is 5 bits");
    let fill = match kind {
        ShiftKind::LeftLogical | ShiftKind::RightLogical => b.zero(),
        ShiftKind::RightArithmetic => *value.last().unwrap(),
    };
    let mut cur: Vec<NetId> = value.to_vec();
    for (stage, &sel) in shamt.iter().enumerate() {
        let amount = 1usize << stage;
        let shifted: Vec<NetId> = (0..32)
            .map(|i| match kind {
                ShiftKind::LeftLogical => {
                    if i >= amount {
                        cur[i - amount]
                    } else {
                        fill
                    }
                }
                ShiftKind::RightLogical | ShiftKind::RightArithmetic => {
                    if i + amount < 32 {
                        cur[i + amount]
                    } else {
                        fill
                    }
                }
            })
            .collect();
        cur = mux(b, sel, &cur, &shifted);
    }
    cur
}

/// One-hot decoder: `n`-bit input to `2^n` select lines.
pub fn decode(b: &mut Builder, a: &[NetId]) -> Vec<NetId> {
    let mut lines = vec![b.one()];
    for &bit in a {
        let nbit = b.not(bit);
        let mut next = Vec::with_capacity(lines.len() * 2);
        for &line in &lines {
            next.push(b.and(line, nbit));
        }
        for &line in &lines {
            next.push(b.and(line, bit));
        }
        lines = next;
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Sim;

    fn eval2(
        width: usize,
        f: impl Fn(&mut Builder, &[NetId], &[NetId]) -> Vec<NetId>,
        a: u32,
        c: u32,
    ) -> u32 {
        let mut b = Builder::new();
        let x = b.input_bus("x", width);
        let y = b.input_bus("y", width);
        let out = f(&mut b, &x, &y);
        b.output_bus("out", &out);
        let nl = b.finish();
        let mut sim = Sim::new(&nl);
        sim.set_bus("x", a);
        sim.set_bus("y", c);
        sim.eval();
        sim.get_bus("out")
    }

    #[test]
    fn adder_matches_wrapping_add() {
        for (a, c) in [
            (0, 0),
            (1, 1),
            (0xffff_ffff, 1),
            (0x8000_0000, 0x8000_0000),
            (123, 456),
        ] {
            let got = eval2(32, |b, x, y| add(b, x, y).0, a, c);
            assert_eq!(got, a.wrapping_add(c), "{a} + {c}");
        }
    }

    #[test]
    fn subtractor_matches_wrapping_sub() {
        for (a, c) in [(0, 1), (5, 3), (0, 0xffff_ffff), (0x8000_0000, 1)] {
            let got = eval2(32, |b, x, y| sub(b, x, y).0, a, c);
            assert_eq!(got, a.wrapping_sub(c), "{a} - {c}");
        }
    }

    #[test]
    fn comparators() {
        let lt_u = |a: u32, c: u32| eval2(32, |b, x, y| vec![lt_unsigned(b, x, y)], a, c);
        assert_eq!(lt_u(1, 2), 1);
        assert_eq!(lt_u(2, 1), 0);
        assert_eq!(lt_u(0xffff_ffff, 0), 0);
        let lt_s = |a: u32, c: u32| eval2(32, |b, x, y| vec![lt_signed(b, x, y)], a, c);
        assert_eq!(lt_s(0xffff_ffff, 0), 1); // -1 < 0
        assert_eq!(lt_s(0, 0xffff_ffff), 0);
        assert_eq!(lt_s(0x8000_0000, 0x7fff_ffff), 1); // INT_MIN < INT_MAX
        let eq_f = |a: u32, c: u32| eval2(32, |b, x, y| vec![eq(b, x, y)], a, c);
        assert_eq!(eq_f(7, 7), 1);
        assert_eq!(eq_f(7, 8), 0);
    }

    #[test]
    fn barrel_shifts_match_rust_semantics() {
        for kind in [
            ShiftKind::LeftLogical,
            ShiftKind::RightLogical,
            ShiftKind::RightArithmetic,
        ] {
            for value in [0u32, 1, 0x8000_0001, 0xdead_beef] {
                for sh in [0u32, 1, 5, 16, 31] {
                    let mut b = Builder::new();
                    let v = b.input_bus("v", 32);
                    let s = b.input_bus("s", 5);
                    let out = barrel_shift(&mut b, &v, &s, kind);
                    b.output_bus("out", &out);
                    let nl = b.finish();
                    let mut sim = Sim::new(&nl);
                    sim.set_bus("v", value);
                    sim.set_bus("s", sh);
                    sim.eval();
                    let want = match kind {
                        ShiftKind::LeftLogical => value << sh,
                        ShiftKind::RightLogical => value >> sh,
                        ShiftKind::RightArithmetic => ((value as i32) >> sh) as u32,
                    };
                    assert_eq!(sim.get_bus("out"), want, "{kind:?} {value:#x} >> {sh}");
                }
            }
        }
    }

    #[test]
    fn decoder_is_one_hot() {
        let mut b = Builder::new();
        let a = b.input_bus("a", 3);
        let lines = decode(&mut b, &a);
        assert_eq!(lines.len(), 8);
        b.output_bus("lines", &lines);
        let nl = b.finish();
        for v in 0..8 {
            let mut sim = Sim::new(&nl);
            sim.set_bus("a", v);
            sim.eval();
            assert_eq!(sim.get_bus("lines"), 1 << v);
        }
    }

    #[test]
    fn extension_helpers() {
        let mut b = Builder::new();
        let a = b.input_bus("a", 4);
        let z = zext(&mut b, &a, 8);
        let s = sext(&mut b, &a, 8);
        b.output_bus("z", &z);
        b.output_bus("s", &s);
        let nl = b.finish();
        let mut sim = Sim::new(&nl);
        sim.set_bus("a", 0b1010);
        sim.eval();
        assert_eq!(sim.get_bus("z"), 0b0000_1010);
        assert_eq!(sim.get_bus("s"), 0b1111_1010);
    }
}
