//! Deterministic, seeded fault injection for chaos testing.
//!
//! The runtime has many fallback paths — worker-panic recovery in the
//! [`crate::pool`], forced misses and evictions in the
//! [`crate::cache::ProgramCache`], `mmap` refusal and emit overflow in
//! the [`crate::jit`] — that are only reachable in production when
//! something actually goes wrong. This module makes them reachable on
//! purpose: named *failpoints* are compiled into those modules behind
//! the `failpoints` cargo feature, and a seeded schedule decides, fully
//! deterministically, which hits of which site fire.
//!
//! # Zero cost by default
//!
//! Without the `failpoints` feature (the default), [`fire`] is a
//! `const`-foldable `None` and every call site compiles away. The
//! feature is only enabled by chaos tests and the CI `chaos-smoke`
//! job; release artifacts never carry it. `docs/robustness.md` is the
//! normative description of the failure model this module exercises.
//!
//! # Spec grammar
//!
//! A schedule is configured either programmatically ([`configure`]) or
//! via the `GATE_SIM_FAILPOINTS` environment variable:
//!
//! ```text
//! GATE_SIM_FAILPOINTS = <seed> ":" <site> "=" <rule> [ "@" <arg> ] ( "," <site> "=" <rule> [ "@" <arg> ] )*
//! rule                = "always" | "never" | "once" | "first" <n> | <n> "%"
//! ```
//!
//! * `<seed>` — decimal or `0x`-prefixed hex `u64`; the only source of
//!   randomness. Two runs with the same seed and spec fire the exact
//!   same hits.
//! * `<site>` — one of [`SITES`]; unknown names panic at parse time so
//!   a typo cannot silently disable a schedule.
//! * `always` / `never` / `once` / `first N` — fire on every / no /
//!   only the first / the first N hits of the site.
//! * `N%` — fire pseudo-randomly on about N% of hits; the decision for
//!   hit *k* is a pure function of `(seed, site, k)`.
//! * `@<arg>` — optional site argument (e.g. a delay in milliseconds
//!   for the latency sites, an errno for `jit::map`). Defaults to 0;
//!   each site documents how it interprets the argument.
//!
//! Example: `GATE_SIM_FAILPOINTS=7:pool::worker_doze=10%@2,jit::map=always`
//!
//! # Injection sites
//!
//! | site                  | effect when it fires                                        |
//! |-----------------------|-------------------------------------------------------------|
//! | `pool::worker_panic`  | worker panics *inside* the job closure (captured payload)   |
//! | `pool::worker_loss`   | worker thread dies *outside* the catch — exercises respawn  |
//! | `pool::worker_doze`   | worker sleeps `arg` ms before scanning the job table        |
//! | `pool::stalled_claim` | worker sleeps `arg` ms between descriptor read and claim CAS|
//! | `cache::miss`         | program-cache lookup reports a miss even on a hit           |
//! | `cache::evict`        | program-cache insert immediately evicts the LRU entry       |
//! | `jit::map`            | `ExecBuf::new` fails with `MapError::Map(arg)` (0 → ENOMEM) |
//! | `jit::emit`           | `jit::compile` fails with a synthesized `CodeTooLarge`      |
//!
//! All sites are *soft*: every one lands on a path the runtime already
//! survives (typed error, silent fallback, or recovery), which is
//! exactly the property the chaos axis asserts.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Every failpoint site compiled into the runtime. Parse-time
/// validation rejects any site not in this list.
pub const SITES: &[&str] = &[
    "pool::worker_panic",
    "pool::worker_loss",
    "pool::worker_doze",
    "pool::stalled_claim",
    "cache::miss",
    "cache::evict",
    "jit::map",
    "jit::emit",
];

/// Should `site` fire now? `None` means "do not fire"; `Some(arg)`
/// carries the site's `@` argument (0 when omitted).
///
/// With the `failpoints` feature disabled this is a constant `None`
/// and the call site optimizes out entirely.
#[inline(always)]
pub fn fire(site: &str) -> Option<u64> {
    #[cfg(feature = "failpoints")]
    {
        active::fire(site)
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        None
    }
}

/// When to fire a site, decided per hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Fire on every hit.
    Always,
    /// Never fire (useful to switch a site off inside a broad spec).
    Never,
    /// Fire on the first `n` hits only (`once` is `First(1)`).
    First(u64),
    /// Fire pseudo-randomly on about `pct`% of hits, deterministically
    /// from `(seed, site, hit index)`.
    Percent(u64),
}

/// One parsed `<site>=<rule>[@<arg>]` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// The site name (one of [`SITES`]).
    pub site: &'static str,
    /// When the site fires.
    pub rule: Rule,
    /// The `@` argument (0 when omitted).
    pub arg: u64,
}

/// A full failpoint schedule: a seed plus one clause per armed site.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Plan {
    /// The determinism seed.
    pub seed: u64,
    /// The armed sites. Sites without a clause never fire.
    pub clauses: Vec<Clause>,
}

impl Plan {
    /// Parses `<seed>:<spec>` (the `GATE_SIM_FAILPOINTS` grammar).
    ///
    /// # Panics
    ///
    /// Panics on malformed input or unknown site names — same contract
    /// as every other `GATE_SIM_*` knob (see [`crate::env`]).
    pub fn parse(text: &str) -> Plan {
        let bad = |why: &str| -> ! {
            panic!("GATE_SIM_FAILPOINTS: {why} (spec: `{text}`; grammar: <seed>:<site>=<rule>[@<arg>],...)")
        };
        let (seed_text, spec) = match text.split_once(':') {
            Some(parts) => parts,
            None => bad("missing `:` between seed and spec"),
        };
        let seed = parse_u64(seed_text.trim())
            .unwrap_or_else(|| bad("seed must be a decimal or 0x-prefixed u64"));
        let mut clauses = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (site_text, rule_text) = match part.split_once('=') {
                Some(parts) => parts,
                None => bad("clause missing `=`"),
            };
            let site = match SITES.iter().find(|s| **s == site_text.trim()) {
                Some(s) => *s,
                None => bad("unknown failpoint site"),
            };
            let (rule_text, arg) = match rule_text.split_once('@') {
                Some((r, a)) => (
                    r.trim(),
                    parse_u64(a.trim()).unwrap_or_else(|| bad("`@` argument must be a u64")),
                ),
                None => (rule_text.trim(), 0),
            };
            let rule = if rule_text == "always" {
                Rule::Always
            } else if rule_text == "never" {
                Rule::Never
            } else if rule_text == "once" {
                Rule::First(1)
            } else if let Some(n) = rule_text.strip_prefix("first") {
                Rule::First(parse_u64(n.trim()).unwrap_or_else(|| bad("`first` needs a count")))
            } else if let Some(n) = rule_text.strip_suffix('%') {
                let pct = parse_u64(n.trim()).unwrap_or_else(|| bad("percentage must be a u64"));
                if pct > 100 {
                    bad("percentage above 100");
                }
                Rule::Percent(pct)
            } else {
                bad("rule must be always|never|once|first<N>|<N>%")
            };
            clauses.push(Clause { site, rule, arg });
        }
        Plan { seed, clauses }
    }
}

fn parse_u64(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

/// Installs `plan` process-wide, resetting every site's hit counter.
/// Overrides any `GATE_SIM_FAILPOINTS` schedule until [`clear`].
///
/// No-op without the `failpoints` feature.
pub fn configure(plan: Plan) {
    #[cfg(feature = "failpoints")]
    active::install(Some(plan));
    #[cfg(not(feature = "failpoints"))]
    let _ = plan;
}

/// Disarms every failpoint, including any `GATE_SIM_FAILPOINTS`
/// schedule (the environment is only latched when *nothing* was ever
/// installed — an explicit clear wins until the next [`configure`]).
pub fn clear() {
    #[cfg(feature = "failpoints")]
    active::install(None);
}

/// Serializes chaos tests: failpoint schedules are process-global, so
/// tests that [`configure`]/[`clear`] must hold this guard for their
/// whole body. Poisoning is ignored — a failing chaos test must not
/// cascade into every later one.
pub fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The deterministic per-hit coin: SplitMix64 over `(seed, site, hit)`.
/// Public so tests can predict exactly which hits of a `N%` site fire.
pub fn coin(seed: u64, site: &str, hit: u64) -> u64 {
    let mut x = seed ^ fnv1a(site) ^ hit.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    // SplitMix64 finalizer.
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The live machinery, only compiled with the `failpoints` feature.
#[cfg(feature = "failpoints")]
mod active {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{OnceLock, RwLock};

    /// An installed plan plus one hit counter per clause.
    struct Armed {
        plan: Plan,
        hits: Vec<AtomicU64>,
    }

    /// `None` inside the outer `Option` = "not yet initialized from the
    /// environment"; `Some(None)` = "explicitly cleared / env unset".
    static ARMED: RwLock<Option<Option<Armed>>> = RwLock::new(None);

    fn arm(plan: Plan) -> Armed {
        let hits = plan.clauses.iter().map(|_| AtomicU64::new(0)).collect();
        Armed { plan, hits }
    }

    pub(super) fn install(plan: Option<Plan>) {
        let mut slot = ARMED.write().unwrap_or_else(PoisonError::into_inner);
        *slot = Some(plan.map(arm));
    }

    fn env_plan() -> Option<Plan> {
        static ENV: OnceLock<Option<Plan>> = OnceLock::new();
        ENV.get_or_init(|| {
            std::env::var("GATE_SIM_FAILPOINTS")
                .ok()
                .filter(|v| !v.trim().is_empty())
                .map(|v| Plan::parse(&v))
        })
        .clone()
    }

    pub(super) fn fire(site: &str) -> Option<u64> {
        {
            let slot = ARMED.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(state) = slot.as_ref() {
                return fire_in(state.as_ref(), site);
            }
        }
        // First hit ever: latch the environment schedule (possibly
        // "none") and retry under the read lock.
        let from_env = env_plan();
        {
            let mut slot = ARMED.write().unwrap_or_else(PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(from_env.map(arm));
            }
        }
        let slot = ARMED.read().unwrap_or_else(PoisonError::into_inner);
        fire_in(slot.as_ref().and_then(|s| s.as_ref()), site)
    }

    fn fire_in(armed: Option<&Armed>, site: &str) -> Option<u64> {
        let armed = armed?;
        let idx = armed.plan.clauses.iter().position(|c| c.site == site)?;
        let clause = &armed.plan.clauses[idx];
        let hit = armed.hits[idx].fetch_add(1, Ordering::Relaxed);
        let fires = match clause.rule {
            Rule::Always => true,
            Rule::Never => false,
            Rule::First(n) => hit < n,
            Rule::Percent(pct) => coin(armed.plan.seed, site, hit) % 100 < pct,
        };
        fires.then_some(clause.arg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let plan = Plan::parse("0x2a:pool::worker_doze=10%@2,jit::map=always,cache::miss=first3");
        assert_eq!(plan.seed, 42);
        assert_eq!(
            plan.clauses,
            vec![
                Clause {
                    site: "pool::worker_doze",
                    rule: Rule::Percent(10),
                    arg: 2
                },
                Clause {
                    site: "jit::map",
                    rule: Rule::Always,
                    arg: 0
                },
                Clause {
                    site: "cache::miss",
                    rule: Rule::First(3),
                    arg: 0
                },
            ]
        );
        assert_eq!(
            Plan::parse("7:pool::worker_panic=once").clauses[0].rule,
            Rule::First(1)
        );
        assert_eq!(
            Plan::parse("7:cache::evict=never").clauses[0].rule,
            Rule::Never
        );
    }

    #[test]
    #[should_panic(expected = "unknown failpoint site")]
    fn parse_rejects_unknown_sites() {
        Plan::parse("1:pool::nonsense=always");
    }

    #[test]
    #[should_panic(expected = "missing `:`")]
    fn parse_rejects_missing_seed() {
        Plan::parse("worker_panic=always");
    }

    #[test]
    #[should_panic(expected = "seed must be a decimal or 0x-prefixed u64")]
    fn parse_rejects_spec_without_a_seed_prefix() {
        // `pool::worker_panic` splits at its own first colon: the "seed"
        // is the word `pool`, which must be rejected loudly.
        Plan::parse("pool::worker_panic=always");
    }

    #[test]
    #[should_panic(expected = "percentage above 100")]
    fn parse_rejects_overlarge_percentage() {
        Plan::parse("1:cache::miss=150%");
    }

    #[test]
    fn coin_is_deterministic_and_site_dependent() {
        assert_eq!(coin(7, "jit::map", 0), coin(7, "jit::map", 0));
        assert_ne!(coin(7, "jit::map", 0), coin(7, "jit::map", 1));
        assert_ne!(coin(7, "jit::map", 0), coin(7, "cache::miss", 0));
        assert_ne!(coin(7, "jit::map", 0), coin(8, "jit::map", 0));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn rules_fire_deterministically() {
        let _guard = exclusive();
        configure(Plan::parse(
            "9:jit::map=first2@12,cache::miss=50%,cache::evict=never",
        ));
        assert_eq!(fire("jit::map"), Some(12));
        assert_eq!(fire("jit::map"), Some(12));
        assert_eq!(fire("jit::map"), None, "first2 stops after two hits");
        assert_eq!(fire("cache::evict"), None);
        assert_eq!(fire("pool::worker_panic"), None, "unarmed sites never fire");
        // The percent site replays exactly from the coin.
        let got: Vec<bool> = (0..64).map(|_| fire("cache::miss").is_some()).collect();
        let want: Vec<bool> = (0..64)
            .map(|k| coin(9, "cache::miss", k) % 100 < 50)
            .collect();
        assert_eq!(got, want);
        let on = got.iter().filter(|f| **f).count();
        assert!((10..=54).contains(&on), "50% site fired {on}/64 times");
        // Reconfiguring resets hit counters.
        configure(Plan::parse("9:jit::map=once"));
        assert_eq!(fire("jit::map"), Some(0));
        assert_eq!(fire("jit::map"), None);
        clear();
        assert_eq!(fire("jit::map"), None);
    }

    #[cfg(not(feature = "failpoints"))]
    #[test]
    fn disabled_build_never_fires() {
        configure(Plan::parse("9:jit::map=always"));
        assert_eq!(fire("jit::map"), None);
        clear();
    }
}
