//! The W^X executable code buffer.
//!
//! [`ExecBuf`] owns one anonymous private mapping whose lifecycle
//! enforces write-xor-execute: the pages are mapped `PROT_READ |
//! PROT_WRITE`, the finished code bytes are copied in, and the
//! protection is then flipped to `PROT_READ | PROT_EXEC` before any
//! entry pointer is handed out. The mapping is never writable and
//! executable at the same time, and it is unmapped on drop — the
//! [`crate::level::Program`] (and through it every
//! [`crate::cache::ProgramCache`] entry) holds the owning
//! `Arc<JitProgram>`, so code outlives every simulator borrowing it.
//!
//! The workspace builds offline with no `libc` crate, so on
//! x86-64 Linux the three required syscalls (`mmap`, `mprotect`,
//! `munmap`) are issued directly via inline assembly. On any other
//! target the constructor returns [`MapError::Unsupported`] and the
//! JIT layer falls back to the interpreter.

/// Mapping-layer failures. All of them downgrade to interpreter
/// fallback; none abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// Not an x86-64 Linux host — no syscall shims for this target.
    Unsupported,
    /// `mmap` failed (negated errno).
    Map(i32),
    /// `mprotect` to read+execute failed (negated errno).
    Protect(i32),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Unsupported => write!(f, "executable mappings unsupported on this target"),
            MapError::Map(e) => write!(f, "mmap failed (errno {e})"),
            MapError::Protect(e) => write!(f, "mprotect failed (errno {e})"),
        }
    }
}

/// One read+execute mapping holding finalized machine code.
#[derive(Debug)]
pub struct ExecBuf {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the mapping is immutable (R+X) after construction and owned
// exclusively by this value; raw-pointer aliasing is read/execute only.
unsafe impl Send for ExecBuf {}
unsafe impl Sync for ExecBuf {}

impl ExecBuf {
    /// Map `code` into fresh executable pages (W^X: written while RW,
    /// executed only after the flip to RX).
    pub fn new(code: &[u8]) -> Result<ExecBuf, MapError> {
        if let Some(errno) = crate::failpoints::fire("jit::map") {
            // Chaos: refuse the mapping as the kernel would. The `@`
            // argument is the errno (0 defaults to ENOMEM), so schedules
            // can simulate memory pressure or a W^X lockdown (EACCES).
            return Err(MapError::Map(if errno == 0 { 12 } else { errno as i32 }));
        }
        sys::map_executable(code)
    }

    /// Pointer to the code byte at `offset`. The caller is responsible
    /// for only calling into offsets that are genuine instruction
    /// starts emitted by the lowering layer.
    pub fn entry(&self, offset: usize) -> *const u8 {
        assert!(
            offset < self.len,
            "entry offset {offset} outside code ({} bytes)",
            self.len
        );
        // SAFETY: offset is in-bounds for the mapping.
        unsafe { self.ptr.add(offset) }
    }

    /// Size of the mapping in bytes (page-rounded).
    pub fn len(&self) -> usize {
        self.len
    }

    /// A mapping is never empty — kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for ExecBuf {
    fn drop(&mut self) {
        sys::unmap(self.ptr, self.len);
    }
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod sys {
    use super::{ExecBuf, MapError};

    const SYS_MMAP: usize = 9;
    const SYS_MPROTECT: usize = 10;
    const SYS_MUNMAP: usize = 11;
    const PROT_READ: usize = 1;
    const PROT_WRITE: usize = 2;
    const PROT_EXEC: usize = 4;
    const MAP_PRIVATE: usize = 2;
    const MAP_ANONYMOUS: usize = 0x20;
    const PAGE: usize = 4096;

    /// Raw x86-64 Linux syscall. The kernel clobbers `rcx`/`r11`.
    unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    fn errno(ret: isize) -> Option<i32> {
        // Linux returns -errno in [-4095, -1] on failure.
        if (-4095..0).contains(&ret) {
            Some(-ret as i32)
        } else {
            None
        }
    }

    pub(super) fn map_executable(code: &[u8]) -> Result<ExecBuf, MapError> {
        let len = code.len().max(1).div_ceil(PAGE) * PAGE;
        // SAFETY: anonymous private mapping of a fresh region; no
        // existing memory is touched.
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                len,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                usize::MAX, // fd = -1
                0,
            )
        };
        if let Some(e) = errno(ret) {
            return Err(MapError::Map(e));
        }
        let ptr = ret as *mut u8;
        // SAFETY: ptr..ptr+len is the mapping just created, RW.
        unsafe { core::ptr::copy_nonoverlapping(code.as_ptr(), ptr, code.len()) };
        // SAFETY: flips our own fresh mapping to R+X.
        let ret = unsafe {
            syscall6(
                SYS_MPROTECT,
                ptr as usize,
                len,
                PROT_READ | PROT_EXEC,
                0,
                0,
                0,
            )
        };
        if let Some(e) = errno(ret) {
            unmap(ptr, len);
            return Err(MapError::Protect(e));
        }
        Ok(ExecBuf { ptr, len })
    }

    pub(super) fn unmap(ptr: *mut u8, len: usize) {
        // SAFETY: unmaps exactly the mapping created in map_executable;
        // failure (impossible for a valid mapping) leaks, which is safe.
        unsafe { syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0) };
    }
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
mod sys {
    use super::{ExecBuf, MapError};

    pub(super) fn map_executable(_code: &[u8]) -> Result<ExecBuf, MapError> {
        Err(MapError::Unsupported)
    }

    pub(super) fn unmap(_ptr: *mut u8, _len: usize) {}
}

#[cfg(all(test, target_arch = "x86_64", target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn maps_and_executes_a_trivial_function() {
        // mov rax, rdi ; ret — the sysv64 identity function.
        let code = [0x48, 0x89, 0xf8, 0xc3];
        let buf = ExecBuf::new(&code).expect("mmap");
        let f: unsafe extern "sysv64" fn(u64) -> u64 =
            // SAFETY: entry(0) points at the code above.
            unsafe { std::mem::transmute(buf.entry(0)) };
        // SAFETY: valid straight-line sysv64 function.
        assert_eq!(unsafe { f(0xdead_beef) }, 0xdead_beef);
        assert_eq!(unsafe { f(u64::MAX) }, u64::MAX);
    }
}
