//! Lowering: the levelized [`Program`] op stream → LIR → x86-64 code.
//!
//! Two passes, both per scheduled op:
//!
//! 1. **Fold** ([`lower_op`]): resolve operands against the program's
//!    constant-net set and simplify — `AND` with a constant-false
//!    operand becomes [`Lir::Fill`], `XOR` with constant-true becomes
//!    [`Lir::Not`], a mux with a constant select collapses to a copy,
//!    and a mux with a constant-false `b` leg becomes the fused
//!    [`Lir::AndNot`] (`!sel & a`), which the emitter maps to a single
//!    BMI1 `andn` when available. The [`crate::Builder`] already folds
//!    most of these shapes at construction time, but instrumented
//!    netlists built by [`crate::Netlist::with_gate_replaced`] (the
//!    mutation-campaign path) bypass the builder, so stream-level
//!    folding has real work to do.
//! 2. **Emit** ([`emit_op`]): straight-line x86-64 per lane word —
//!    compute the new value, diff it against the stored word under the
//!    active-lane mask, `popcnt` the diff into the toggle counter, and
//!    store. The emitted arithmetic is exactly the interpreter's
//!    ([`crate::compiled`]'s `exec_chunk_full_impl`), which is what
//!    makes bit-identity an invariant rather than an aspiration — see
//!    `docs/jit.md` for the worked example and the normative contract.
//!
//! The code layout is one function per level plus an entry function
//! that `call`s each level in order (forward references patched
//! through the [`EmitState`] fixup machinery):
//!
//! ```text
//! entry:  call L0 ; call L1 ; ... ; ret
//! L0:     <level-0 ops> ret
//! L1:     <level-1 ops> ret
//! ```

use super::emit::{EmitState, Label};
use super::x86::{self, Alu, Reg};
use super::JitError;
use crate::level::{OpCode, Program};

/// Lowered op: operands are net ids with constants folded away.
/// `AndNot(x, y)` is `!x & y`; `OrNot(x, y)` is `!x | y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lir {
    /// `dst = inputs[idx]` — publish a primary-input word.
    Input(u32),
    /// `dst = ffs[dst]` — publish the stored FF word.
    DffOut,
    /// `dst = broadcast(v)` — a fully folded constant.
    Fill(bool),
    /// `dst = values[net]`.
    Copy(u32),
    Not(u32),
    And(u32, u32),
    Or(u32, u32),
    Xor(u32, u32),
    Nand(u32, u32),
    Nor(u32, u32),
    Xnor(u32, u32),
    /// `dst = !a & b` (ANDN fusion).
    AndNot(u32, u32),
    /// `dst = !a | b`.
    OrNot(u32, u32),
    /// `dst = (sel & b) | (!sel & a)`.
    Mux {
        sel: u32,
        a: u32,
        b: u32,
    },
}

/// An operand after constant resolution.
#[derive(Debug, Clone, Copy)]
enum Operand {
    Net(u32),
    Const(bool),
}

/// Fold one scheduled op to LIR. `is_const` maps net id → constant
/// value for the program's preset nets. Fails on ops the JIT does not
/// implement — [`OpCode::Input`]/[`OpCode::DffOut`] outside level 0
/// (impossible for [`Program::compile`] output, but hand-built streams
/// can express it, and the documented contract is fallback, not UB).
pub fn lower_op(prog: &Program, index: usize, is_const: &[Option<bool>]) -> Result<Lir, JitError> {
    use Operand::{Const, Net};
    let op = prog.opcodes[index];
    let level0 = index < prog.bounds[1.min(prog.bounds.len() - 1)] as usize;
    let resolve = |net: u32| -> Operand {
        match is_const.get(net as usize).copied().flatten() {
            Some(v) => Const(v),
            None => Net(net),
        }
    };
    let a = resolve(prog.a[index]);
    let b = resolve(prog.b[index]);
    Ok(match op {
        OpCode::Input if level0 => Lir::Input(prog.a[index]),
        OpCode::DffOut if level0 => Lir::DffOut,
        OpCode::Input | OpCode::DffOut => {
            return Err(JitError::UnsupportedOp { index, opcode: op })
        }
        OpCode::Not => match a {
            Const(v) => Lir::Fill(!v),
            Net(x) => Lir::Not(x),
        },
        OpCode::And => match (a, b) {
            (Const(x), Const(y)) => Lir::Fill(x & y),
            (Const(false), _) | (_, Const(false)) => Lir::Fill(false),
            (Const(true), Net(x)) | (Net(x), Const(true)) => Lir::Copy(x),
            (Net(x), Net(y)) => Lir::And(x, y),
        },
        OpCode::Or => match (a, b) {
            (Const(x), Const(y)) => Lir::Fill(x | y),
            (Const(true), _) | (_, Const(true)) => Lir::Fill(true),
            (Const(false), Net(x)) | (Net(x), Const(false)) => Lir::Copy(x),
            (Net(x), Net(y)) => Lir::Or(x, y),
        },
        OpCode::Xor => match (a, b) {
            (Const(x), Const(y)) => Lir::Fill(x ^ y),
            (Const(true), Net(x)) | (Net(x), Const(true)) => Lir::Not(x),
            (Const(false), Net(x)) | (Net(x), Const(false)) => Lir::Copy(x),
            (Net(x), Net(y)) => Lir::Xor(x, y),
        },
        OpCode::Nand => match (a, b) {
            (Const(x), Const(y)) => Lir::Fill(!(x & y)),
            (Const(false), _) | (_, Const(false)) => Lir::Fill(true),
            (Const(true), Net(x)) | (Net(x), Const(true)) => Lir::Not(x),
            (Net(x), Net(y)) => Lir::Nand(x, y),
        },
        OpCode::Nor => match (a, b) {
            (Const(x), Const(y)) => Lir::Fill(!(x | y)),
            (Const(true), _) | (_, Const(true)) => Lir::Fill(false),
            (Const(false), Net(x)) | (Net(x), Const(false)) => Lir::Not(x),
            (Net(x), Net(y)) => Lir::Nor(x, y),
        },
        OpCode::Xnor => match (a, b) {
            (Const(x), Const(y)) => Lir::Fill(!(x ^ y)),
            (Const(true), Net(x)) | (Net(x), Const(true)) => Lir::Copy(x),
            (Const(false), Net(x)) | (Net(x), Const(false)) => Lir::Not(x),
            (Net(x), Net(y)) => Lir::Xnor(x, y),
        },
        OpCode::Mux => {
            // v = (sel & b) | (!sel & a)
            let sel = resolve(prog.c[index]);
            match (sel, a, b) {
                (Const(s), a, b) => {
                    let arm = if s { b } else { a };
                    match arm {
                        Const(v) => Lir::Fill(v),
                        Net(x) => Lir::Copy(x),
                    }
                }
                (Net(s), Const(x), Const(y)) => match (x, y) {
                    (false, false) => Lir::Fill(false),
                    (true, true) => Lir::Fill(true),
                    (false, true) => Lir::Copy(s),
                    (true, false) => Lir::Not(s),
                },
                // v = sel ? b : 0  →  sel & b
                (Net(s), Const(false), Net(y)) => Lir::And(s, y),
                // v = sel ? b : 1  →  !sel | b
                (Net(s), Const(true), Net(y)) => Lir::OrNot(s, y),
                // v = sel ? 1 : a  →  sel | a
                (Net(s), Net(x), Const(true)) => Lir::Or(s, x),
                // v = sel ? 0 : a  →  !sel & a (the ANDN shape)
                (Net(s), Net(x), Const(false)) => Lir::AndNot(s, x),
                (Net(s), Net(x), Net(y)) => Lir::Mux { sel: s, a: x, b: y },
            }
        }
    })
}

/// Byte displacement of net `net`'s lane word `w` (`K`-word blocks),
/// checked against the 32-bit displacement field.
fn disp(net: u32, k: usize, w: usize, index: usize) -> Result<i32, JitError> {
    i32::try_from((net as usize * k + w) * 8).map_err(|_| JitError::OperandOutOfRange { index })
}

/// Emit one lowered op: per lane word, compute the value into `rax`,
/// accumulate the masked popcount diff, store. Register roles are
/// fixed: `rdi`/`rsi`/`rdx`/`rcx`/`r8` hold the five argument base
/// pointers untouched, `rax`/`r9`/`r10` are scratch, `r11` accumulates
/// the op's toggle count across lane words.
pub fn emit_op(
    e: &mut EmitState,
    lir: Lir,
    dst: u32,
    k: usize,
    use_bmi1: bool,
    index: usize,
) -> Result<(), JitError> {
    let toggles_disp =
        i32::try_from(dst as usize * 8).map_err(|_| JitError::OperandOutOfRange { index })?;
    for w in 0..k {
        let vdisp = |net: u32| disp(net, k, w, index);
        let dst_disp = vdisp(dst)?;
        // rax = new value word.
        match lir {
            Lir::Input(idx) => x86::mov_reg_mem(e, Reg::Rax, Reg::Rsi, vdisp(idx)?),
            Lir::DffOut => x86::mov_reg_mem(e, Reg::Rax, Reg::Rdx, dst_disp),
            Lir::Fill(v) => x86::mov_reg_imm32(e, Reg::Rax, if v { -1 } else { 0 }),
            Lir::Copy(x) => x86::mov_reg_mem(e, Reg::Rax, Reg::Rdi, vdisp(x)?),
            Lir::Not(x) => {
                x86::mov_reg_mem(e, Reg::Rax, Reg::Rdi, vdisp(x)?);
                x86::not_reg(e, Reg::Rax);
            }
            Lir::And(x, y) | Lir::Or(x, y) | Lir::Xor(x, y) => {
                let alu = match lir {
                    Lir::And(..) => Alu::And,
                    Lir::Or(..) => Alu::Or,
                    _ => Alu::Xor,
                };
                x86::mov_reg_mem(e, Reg::Rax, Reg::Rdi, vdisp(x)?);
                x86::alu_reg_mem(e, alu, Reg::Rax, Reg::Rdi, vdisp(y)?);
            }
            Lir::Nand(x, y) | Lir::Nor(x, y) | Lir::Xnor(x, y) => {
                let alu = match lir {
                    Lir::Nand(..) => Alu::And,
                    Lir::Nor(..) => Alu::Or,
                    _ => Alu::Xor,
                };
                x86::mov_reg_mem(e, Reg::Rax, Reg::Rdi, vdisp(x)?);
                x86::alu_reg_mem(e, alu, Reg::Rax, Reg::Rdi, vdisp(y)?);
                x86::not_reg(e, Reg::Rax);
            }
            Lir::AndNot(x, y) => {
                if use_bmi1 {
                    x86::mov_reg_mem(e, Reg::R10, Reg::Rdi, vdisp(x)?);
                    x86::andn_reg_mem(e, Reg::Rax, Reg::R10, Reg::Rdi, vdisp(y)?);
                } else {
                    x86::mov_reg_mem(e, Reg::Rax, Reg::Rdi, vdisp(x)?);
                    x86::not_reg(e, Reg::Rax);
                    x86::alu_reg_mem(e, Alu::And, Reg::Rax, Reg::Rdi, vdisp(y)?);
                }
            }
            Lir::OrNot(x, y) => {
                x86::mov_reg_mem(e, Reg::Rax, Reg::Rdi, vdisp(x)?);
                x86::not_reg(e, Reg::Rax);
                x86::alu_reg_mem(e, Alu::Or, Reg::Rax, Reg::Rdi, vdisp(y)?);
            }
            Lir::Mux { sel, a, b } => {
                x86::mov_reg_mem(e, Reg::R10, Reg::Rdi, vdisp(sel)?);
                if use_bmi1 {
                    // rax = !sel & a in one op.
                    x86::andn_reg_mem(e, Reg::Rax, Reg::R10, Reg::Rdi, vdisp(a)?);
                } else {
                    x86::mov_reg_reg(e, Reg::Rax, Reg::R10);
                    x86::not_reg(e, Reg::Rax);
                    x86::alu_reg_mem(e, Alu::And, Reg::Rax, Reg::Rdi, vdisp(a)?);
                }
                x86::alu_reg_mem(e, Alu::And, Reg::R10, Reg::Rdi, vdisp(b)?);
                x86::alu_reg_reg(e, Alu::Or, Reg::Rax, Reg::R10);
            }
        }
        // r9 = popcount((old ^ new) & mask[w]) — the interpreter's exact
        // toggle rule; adding zero when nothing changed is identical to
        // its conditional add.
        x86::mov_reg_mem(e, Reg::R9, Reg::Rdi, dst_disp);
        x86::alu_reg_reg(e, Alu::Xor, Reg::R9, Reg::Rax);
        x86::alu_reg_mem(e, Alu::And, Reg::R9, Reg::R8, (w * 8) as i32);
        x86::popcnt_reg_reg(e, Reg::R9, Reg::R9);
        x86::mov_mem_reg(e, Reg::Rdi, dst_disp, Reg::Rax);
        if k == 1 {
            x86::alu_mem_reg(e, Alu::Add, Reg::Rcx, toggles_disp, Reg::R9);
        } else if w == 0 {
            x86::mov_reg_reg(e, Reg::R11, Reg::R9);
        } else {
            x86::alu_reg_reg(e, Alu::Add, Reg::R11, Reg::R9);
        }
    }
    if k > 1 {
        x86::alu_mem_reg(e, Alu::Add, Reg::Rcx, toggles_disp, Reg::R11);
    }
    Ok(())
}

/// Lower the whole program for `k`-word lane blocks. Returns the
/// finished code bytes plus the entry offsets of each level function
/// (the whole-stream entry is offset 0).
pub fn lower_program(
    prog: &Program,
    k: usize,
    max_code_bytes: usize,
    use_bmi1: bool,
) -> Result<(Vec<u8>, Vec<u32>), JitError> {
    let mut is_const = vec![None; prog.net_count];
    for &(net, v) in &prog.consts {
        is_const[net as usize] = Some(v);
    }
    // Fold first: a whole-program lowering failure must cost nothing
    // but the scan (no code buffer, no mapping).
    let mut lirs = Vec::with_capacity(prog.len());
    for i in 0..prog.len() {
        lirs.push(lower_op(prog, i, &is_const)?);
    }

    let mut e = EmitState::with_cap(max_code_bytes);
    let levels = prog.levels();
    let labels: Vec<Label> = (0..levels).map(|_| e.new_label()).collect();
    // Entry function: call every non-empty level in schedule order.
    for (level, &label) in labels.iter().enumerate() {
        if !prog.level_ops(level).is_empty() {
            x86::call_label(&mut e, label);
        }
    }
    x86::ret(&mut e);
    // One straight-line function per level.
    let mut level_entries = Vec::with_capacity(levels);
    for (level, &label) in labels.iter().enumerate() {
        e.bind_label(label);
        level_entries.push(e.offset());
        for i in prog.level_ops(level) {
            emit_op(&mut e, lirs[i], prog.dst[i], k, use_bmi1, i)?;
        }
        x86::ret(&mut e);
    }
    let code = e.finalize().map_err(JitError::Emit)?;
    Ok((code, level_entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Builder, Netlist};

    fn lower_all(nl: &Netlist) -> Vec<Lir> {
        let prog = Program::compile(nl);
        let mut is_const = vec![None; prog.net_count];
        for &(net, v) in &prog.consts {
            is_const[net as usize] = Some(v);
        }
        (0..prog.len())
            .map(|i| lower_op(&prog, i, &is_const).unwrap())
            .collect()
    }

    /// `with_gate_replaced` bypasses the builder's fold rules, so the
    /// stream really contains const-operand gates for the lowerer.
    #[test]
    fn stream_level_constant_folding() {
        let mut b = Builder::new();
        let i0 = b.input("a");
        let i1 = b.input("b");
        let x = b.xor(i0, i1);
        let m = b.mux(x, i0, i1);
        b.output("o", m);
        let nl = b.finish();
        // Replace the xor's net with a constant: the mux's select is now
        // constant-true, so the mux must fold to a copy of its `b` leg.
        let mutated = nl.with_gate_replaced(x, crate::Gate::Const(true));
        let lirs = lower_all(&mutated);
        assert!(
            lirs.iter().any(|l| matches!(l, Lir::Copy(_))),
            "const-select mux must fold to a copy: {lirs:?}"
        );
    }

    #[test]
    fn mux_with_const_false_leg_fuses_to_andnot() {
        let mut b = Builder::new();
        let s = b.input("s");
        let p = b.input("p");
        let q = b.input("q");
        let leg_a = b.and(p, q);
        let leg_b = b.or(p, q);
        let m = b.mux(s, leg_a, leg_b);
        b.output("o", m);
        let nl = b.finish();
        // Mutate the `b` leg to constant-false (builder folding would have
        // collapsed this at construction): sel?0:a is the ANDN shape.
        let mutated = nl.with_gate_replaced(leg_b, crate::Gate::Const(false));
        let lirs = lower_all(&mutated);
        assert!(
            lirs.iter().any(|l| matches!(l, Lir::AndNot(..))),
            "sel?0:a must fuse to AndNot: {lirs:?}"
        );
    }
}
