//! Minimal x86-64 instruction encoder over [`EmitState`].
//!
//! Only the handful of encodings the netlist kernels need: 64-bit
//! `mov`/`and`/`or`/`xor`/`add` in register↔memory forms with 32-bit
//! displacements, `not`, `popcnt`, `mov reg, imm32` (sign-extended),
//! `call rel32`, `ret`, and the BMI1 VEX-encoded `andn`. Everything is
//! REX.W (64-bit operand size); memory operands are always
//! `[base + disp32]` with a fixed `mod=10` ModRM — slightly larger
//! encodings than minimal, but uniform, and none of our base registers
//! (`rdi`/`rsi`/`rdx`/`rcx`/`r8`) ever needs a SIB byte. (`rsp`/`r12`
//! would; they are deliberately absent from [`Reg`].)
//!
//! Byte-level checks live in the tests at the bottom; the systemic
//! check is differential — every property test compares JIT-evaluated
//! sweeps against the interpreter bit-for-bit.

use super::emit::{EmitState, FixupKind, Label};

/// The registers the kernels use. Numeric values are the hardware
/// encodings; bit 3 selects the REX extension bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Reg {
    /// Primary value scratch.
    Rax = 0,
    /// 4th argument: `toggles` base pointer (sysv64).
    Rcx = 1,
    /// 3rd argument: `ffs` base pointer.
    Rdx = 2,
    /// 2nd argument: `inputs` base pointer.
    Rsi = 6,
    /// 1st argument: `values` base pointer.
    Rdi = 7,
    /// 5th argument: `masks` base pointer.
    R8 = 8,
    /// Diff/popcount scratch.
    R9 = 9,
    /// Secondary value scratch (mux select, inverted operands).
    R10 = 10,
    /// Per-op toggle accumulator for multi-word lane blocks.
    R11 = 11,
}

impl Reg {
    fn low3(self) -> u8 {
        self as u8 & 0b111
    }
    fn ext(self) -> u8 {
        (self as u8 >> 3) & 1
    }
}

/// Two-operand ALU ops in their `r64, r/m64` opcode form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alu {
    And,
    Or,
    Xor,
    Add,
}

impl Alu {
    /// Opcode for `op r64, r/m64` (register destination).
    fn rm_opcode(self) -> u8 {
        match self {
            Alu::And => 0x23,
            Alu::Or => 0x0b,
            Alu::Xor => 0x33,
            Alu::Add => 0x03,
        }
    }
    /// Opcode for `op r/m64, r64` (memory destination).
    fn mr_opcode(self) -> u8 {
        match self {
            Alu::And => 0x21,
            Alu::Or => 0x09,
            Alu::Xor => 0x31,
            Alu::Add => 0x01,
        }
    }
}

/// REX prefix: W=1 (64-bit), R extends ModRM.reg, B extends ModRM.rm.
fn rex_w(reg: Reg, rm: Reg) -> u8 {
    0x48 | (reg.ext() << 2) | rm.ext()
}

/// ModRM selecting `[rm + disp32]`.
fn modrm_disp32(reg: Reg, rm: Reg) -> u8 {
    0b10 << 6 | reg.low3() << 3 | rm.low3()
}

/// ModRM selecting a direct register operand.
fn modrm_direct(reg: Reg, rm: Reg) -> u8 {
    0b11 << 6 | reg.low3() << 3 | rm.low3()
}

/// `mov dst, qword [base + disp]`
pub fn mov_reg_mem(e: &mut EmitState, dst: Reg, base: Reg, disp: i32) {
    e.emit(&[rex_w(dst, base), 0x8b, modrm_disp32(dst, base)]);
    e.emit_u32(disp as u32);
}

/// `mov qword [base + disp], src`
pub fn mov_mem_reg(e: &mut EmitState, base: Reg, disp: i32, src: Reg) {
    e.emit(&[rex_w(src, base), 0x89, modrm_disp32(src, base)]);
    e.emit_u32(disp as u32);
}

/// `op dst, qword [base + disp]`
pub fn alu_reg_mem(e: &mut EmitState, op: Alu, dst: Reg, base: Reg, disp: i32) {
    e.emit(&[rex_w(dst, base), op.rm_opcode(), modrm_disp32(dst, base)]);
    e.emit_u32(disp as u32);
}

/// `op dst, src` (register-register)
pub fn alu_reg_reg(e: &mut EmitState, op: Alu, dst: Reg, src: Reg) {
    e.emit(&[rex_w(dst, src), op.rm_opcode(), modrm_direct(dst, src)]);
}

/// `op qword [base + disp], src` — the read-modify-write form; the
/// toggle accumulation `add [toggles + 8*dst], r9` uses this.
pub fn alu_mem_reg(e: &mut EmitState, op: Alu, base: Reg, disp: i32, src: Reg) {
    e.emit(&[rex_w(src, base), op.mr_opcode(), modrm_disp32(src, base)]);
    e.emit_u32(disp as u32);
}

/// `mov dst, src` (register-register)
pub fn mov_reg_reg(e: &mut EmitState, dst: Reg, src: Reg) {
    e.emit(&[rex_w(src, dst), 0x89, modrm_direct(src, dst)]);
}

/// `mov dst, imm32` sign-extended to 64 bits — fills a register with
/// all-zeros (`0`) or all-ones (`-1`) for constant-folded ops.
pub fn mov_reg_imm32(e: &mut EmitState, dst: Reg, imm: i32) {
    e.emit(&[rex_w(Reg::Rax, dst), 0xc7, modrm_direct(Reg::Rax, dst)]);
    e.emit_u32(imm as u32);
}

/// `not dst` (one's complement, 64-bit)
pub fn not_reg(e: &mut EmitState, dst: Reg) {
    // F7 /2
    e.emit(&[rex_w(Reg::Rdx, dst), 0xf7, modrm_direct(Reg::Rdx, dst)]);
}

/// `popcnt dst, src` — requires the `popcnt` CPU feature, which
/// [`crate::jit::host_supported`] gates on.
pub fn popcnt_reg_reg(e: &mut EmitState, dst: Reg, src: Reg) {
    e.emit(&[0xf3, rex_w(dst, src), 0x0f, 0xb8, modrm_direct(dst, src)]);
}

/// BMI1 `andn dst, src1, qword [base + disp]`: `dst = !src1 & mem`.
/// Callers must gate on runtime BMI1 detection.
pub fn andn_reg_mem(e: &mut EmitState, dst: Reg, src1: Reg, base: Reg, disp: i32) {
    // VEX three-byte form: C4, RXB.m-mmmm, W.vvvv.L.pp, opcode F2.
    let byte1 = ((!dst.ext() & 1) << 7) | (1 << 6) | ((!base.ext() & 1) << 5) | 0b00010;
    let byte2 = (1 << 7) | (((!(src1 as u8)) & 0xf) << 3);
    e.emit(&[0xc4, byte1, byte2, 0xf2, modrm_disp32(dst, base)]);
    e.emit_u32(disp as u32);
}

/// `call rel32` to a (possibly not-yet-bound) label.
pub fn call_label(e: &mut EmitState, target: Label) {
    e.emit_u8(0xe8);
    let at = e.offset();
    e.emit_u32(0);
    e.add_fixup(at, target, FixupKind::Rel32);
}

/// `ret`
pub fn ret(e: &mut EmitState) {
    e.emit_u8(0xc3);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(f: impl FnOnce(&mut EmitState)) -> Vec<u8> {
        let mut e = EmitState::with_cap(usize::MAX);
        f(&mut e);
        e.finalize().unwrap()
    }

    #[test]
    fn known_encodings() {
        // Cross-checked against a reference assembler.
        assert_eq!(
            enc(|e| mov_reg_mem(e, Reg::Rax, Reg::Rdi, 0x100)),
            vec![0x48, 0x8b, 0x87, 0x00, 0x01, 0x00, 0x00],
        );
        assert_eq!(
            enc(|e| mov_reg_mem(e, Reg::R9, Reg::R8, 8)),
            vec![0x4d, 0x8b, 0x88, 0x08, 0x00, 0x00, 0x00],
        );
        assert_eq!(
            enc(|e| mov_mem_reg(e, Reg::Rdi, 0x18, Reg::Rax)),
            vec![0x48, 0x89, 0x87, 0x18, 0x00, 0x00, 0x00],
        );
        assert_eq!(
            enc(|e| alu_reg_mem(e, Alu::And, Reg::Rax, Reg::Rdi, 0x20)),
            vec![0x48, 0x23, 0x87, 0x20, 0x00, 0x00, 0x00],
        );
        assert_eq!(
            enc(|e| alu_mem_reg(e, Alu::Add, Reg::Rcx, 0x40, Reg::R9)),
            vec![0x4c, 0x01, 0x89, 0x40, 0x00, 0x00, 0x00],
        );
        assert_eq!(
            enc(|e| alu_reg_reg(e, Alu::Xor, Reg::R9, Reg::Rax)),
            vec![0x4c, 0x33, 0xc8]
        );
        assert_eq!(
            enc(|e| mov_reg_reg(e, Reg::Rax, Reg::R10)),
            vec![0x4c, 0x89, 0xd0]
        );
        assert_eq!(enc(|e| not_reg(e, Reg::Rax)), vec![0x48, 0xf7, 0xd0]);
        assert_eq!(enc(|e| not_reg(e, Reg::R10)), vec![0x49, 0xf7, 0xd2]);
        assert_eq!(
            enc(|e| popcnt_reg_reg(e, Reg::R9, Reg::R9)),
            vec![0xf3, 0x4d, 0x0f, 0xb8, 0xc9],
        );
        assert_eq!(
            enc(|e| mov_reg_imm32(e, Reg::Rax, -1)),
            vec![0x48, 0xc7, 0xc0, 0xff, 0xff, 0xff, 0xff],
        );
        // andn rax, r10, [rdi + 0x10]
        assert_eq!(
            enc(|e| andn_reg_mem(e, Reg::Rax, Reg::R10, Reg::Rdi, 0x10)),
            vec![0xc4, 0xe2, 0xa8, 0xf2, 0x87, 0x10, 0x00, 0x00, 0x00],
        );
        assert_eq!(enc(ret), vec![0xc3]);
    }

    #[test]
    fn call_to_bound_label_resolves() {
        let mut e = EmitState::with_cap(usize::MAX);
        let l = e.new_label();
        call_label(&mut e, l);
        ret(&mut e);
        e.bind_label(l);
        ret(&mut e);
        // call(5 bytes) + ret; target offset 6 → rel32 = 6 - 5 = 1.
        assert_eq!(e.finalize().unwrap(), vec![0xe8, 1, 0, 0, 0, 0xc3, 0xc3]);
    }
}
