//! Native code emission for the compiled op stream.
//!
//! The interpreter in [`crate::compiled`] pays a dispatch branch plus
//! stream-array loads for every op of every settle. This module lowers
//! a levelized [`Program`] one step further: each level becomes a
//! straight-line x86-64 function over the simulator's existing arrays
//! (values / inputs / FF state / toggles / lane masks), executed from
//! an mmap'd W^X buffer. The layers, bottom to top:
//!
//! * [`emit`] — ISA-agnostic [`EmitState`](emit::EmitState): code
//!   buffer, label offsets, pending fixups.
//! * [`x86`] — the x86-64 instruction encoders the kernels need.
//! * [`exec`] — the W^X [`ExecBuf`](exec::ExecBuf) mapping (raw Linux
//!   syscalls; the workspace has no `libc`).
//! * [`lower`] — op stream → [`Lir`](lower::Lir) (constant folding,
//!   ANDN fusion) → machine code.
//! * this file — [`JitProgram`] (compiled code + entry metadata),
//!   [`JitOptions`], [`JitSlots`] (the per-[`Program`] cache, one slot
//!   per lane-block width, which ties code lifetime to the `Program`
//!   and therefore to every [`crate::cache::ProgramCache`] entry).
//!
//! **The contract is bit-identity.** JIT-evaluated settles must produce
//! exactly the interpreter's values, exact popcount toggle counts, and
//! the same [`crate::EvalStats`] a pinned full sweep would report.
//! Anything the code generator cannot honor that contract for — a
//! non-x86-64/non-Linux host, a missing `popcnt` feature, an op stream
//! it does not implement, an operand offset past the 32-bit
//! displacement range, a code-size cap hit, or an `mmap` refusal —
//! downgrades to the interpreter, never to an error. The normative
//! prose lives in `docs/jit.md`; the enforcement lives in the property
//! tests (`tests/properties.rs`, JIT axis).

pub mod emit;
pub mod exec;
pub mod lower;
pub mod x86;

use crate::compiled::MAX_LANE_WORDS;
use crate::level::{OpCode, Program};
use std::sync::{Arc, OnceLock};

/// Why codegen was not available for a program. Every variant maps to
/// interpreter fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JitError {
    /// Disabled by [`JitOptions::enabled`] (the `GATE_SIM_JIT=0` path).
    Disabled,
    /// Not an x86-64 Linux host with the `popcnt` feature.
    HostUnsupported,
    /// The stream contains an op shape the lowerer does not implement.
    UnsupportedOp {
        /// Index of the offending op in the stream.
        index: usize,
        /// Its opcode.
        opcode: OpCode,
    },
    /// An operand's byte offset exceeds the 32-bit displacement field.
    OperandOutOfRange {
        /// Index of the offending op in the stream.
        index: usize,
    },
    /// Emission failed (code-size cap, unbound label, reloc range).
    Emit(emit::EmitError),
    /// The executable mapping failed.
    Map(exec::MapError),
}

impl std::fmt::Display for JitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JitError::Disabled => write!(f, "jit disabled (options or GATE_SIM_JIT=0)"),
            JitError::HostUnsupported => write!(f, "host lacks x86-64 Linux + popcnt"),
            JitError::UnsupportedOp { index, opcode } => {
                write!(f, "op {index} ({opcode:?}) unsupported outside level 0")
            }
            JitError::OperandOutOfRange { index } => {
                write!(f, "op {index} operand offset exceeds disp32")
            }
            JitError::Emit(e) => write!(f, "emission failed: {e}"),
            JitError::Map(e) => write!(f, "executable mapping failed: {e}"),
        }
    }
}

/// True when this host can run emitted code at all: x86-64 Linux (the
/// only target [`exec`] has syscall shims for) with the `popcnt`
/// feature the toggle-accounting template requires.
pub fn host_supported() -> bool {
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    {
        std::arch::is_x86_feature_detected!("popcnt")
    }
    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    {
        false
    }
}

/// True when the emitter may use the BMI1 `andn` encoding.
fn bmi1_supported() -> bool {
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    {
        std::arch::is_x86_feature_detected!("bmi1")
    }
    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    {
        false
    }
}

/// Codegen tuning and escape hatches. [`Default`] reads the
/// `GATE_SIM_JIT` knob and probes CPU features; tests override fields
/// to force specific fallback paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JitOptions {
    /// Master switch; `false` makes every compile return
    /// [`JitError::Disabled`]. Defaults to `GATE_SIM_JIT != 0`.
    pub enabled: bool,
    /// Cap on emitted code bytes per (program, lane width); exceeding
    /// it falls back. Defaults to 256 MiB — far above any real design,
    /// present so a pathological stream degrades gracefully.
    pub max_code_bytes: usize,
    /// Allow BMI1 `andn` in mux/and-not templates. Defaults to runtime
    /// detection; forcing `false` pins the portable encoding.
    pub use_bmi1: bool,
}

impl Default for JitOptions {
    fn default() -> Self {
        JitOptions {
            enabled: crate::env::jit() != Some(false),
            max_code_bytes: 256 << 20,
            use_bmi1: bmi1_supported(),
        }
    }
}

/// A program compiled to native code for one lane-block width.
///
/// Owns the W^X mapping; dropped when the last `Arc` goes away — in
/// practice when its [`Program`] (and any [`crate::cache::ProgramCache`]
/// entry holding it) is dropped, so simulators borrowing the code via
/// `Arc` clones can never outlive it.
#[derive(Debug)]
pub struct JitProgram {
    buf: exec::ExecBuf,
    level_entries: Vec<u32>,
    lane_words: usize,
    code_bytes: usize,
    uses_bmi1: bool,
}

/// The sysv64 signature of the emitted entry: five base pointers, no
/// return value. See `docs/jit.md` § "Calling convention".
type SweepFn = unsafe extern "sysv64" fn(
    values: *mut u64,
    inputs: *const u64,
    ffs: *const u64,
    toggles: *mut u64,
    masks: *const u64,
);

impl JitProgram {
    /// Lane-block word count this code was emitted for.
    pub fn lane_words(&self) -> usize {
        self.lane_words
    }

    /// Emitted code size in bytes (pre page-rounding).
    pub fn code_bytes(&self) -> usize {
        self.code_bytes
    }

    /// Whether the BMI1 `andn` encoding was used.
    pub fn uses_bmi1(&self) -> bool {
        self.uses_bmi1
    }

    /// Per-level function entry offsets (diagnostics; the whole-stream
    /// entry at offset 0 is what [`JitProgram::run`] calls).
    pub fn level_entries(&self) -> &[u32] {
        &self.level_entries
    }

    /// Execute one full combinational sweep: every scheduled op, in
    /// level order, updating `values` and accumulating exact popcount
    /// toggle counts into `toggles` under the active-lane `masks`.
    ///
    /// # Safety
    ///
    /// The pointers must satisfy the layout the code was emitted for —
    /// exactly the arrays of a [`crate::CompiledSim`] built from the
    /// same [`Program`] at the same lane width: `values` and `ffs` hold
    /// `net_count * lane_words` words, `inputs` holds `input_count *
    /// lane_words` words, `toggles` holds `net_count` counters, `masks`
    /// holds `lane_words` words; `values`/`toggles` must be exclusively
    /// borrowed for the duration of the call.
    pub unsafe fn run(
        &self,
        values: *mut u64,
        inputs: *const u64,
        ffs: *const u64,
        toggles: *mut u64,
        masks: *const u64,
    ) {
        let f: SweepFn = std::mem::transmute(self.buf.entry(0));
        f(values, inputs, ffs, toggles, masks);
    }
}

/// Compile `prog` for `lane_words`-word blocks under `opts`. Every
/// failure is a fallback signal, not a fault.
pub fn compile(
    prog: &Program,
    lane_words: usize,
    opts: &JitOptions,
) -> Result<JitProgram, JitError> {
    if !opts.enabled {
        return Err(JitError::Disabled);
    }
    if !host_supported() {
        return Err(JitError::HostUnsupported);
    }
    assert!(
        (1..=MAX_LANE_WORDS).contains(&lane_words),
        "lane_words {lane_words} outside 1..={MAX_LANE_WORDS}"
    );
    let use_bmi1 = opts.use_bmi1 && bmi1_supported();
    if crate::failpoints::fire("jit::emit").is_some() {
        // Chaos: a synthesized emit-budget overflow, indistinguishable
        // to callers from a genuinely oversized lowering — it must take
        // the same silent interpreter fallback.
        return Err(JitError::Emit(emit::EmitError::CodeTooLarge {
            len: usize::MAX,
            cap: opts.max_code_bytes,
        }));
    }
    let (code, level_entries) =
        lower::lower_program(prog, lane_words, opts.max_code_bytes, use_bmi1)?;
    let code_bytes = code.len();
    let buf = exec::ExecBuf::new(&code).map_err(JitError::Map)?;
    Ok(JitProgram {
        buf,
        level_entries,
        lane_words,
        code_bytes,
        uses_bmi1: use_bmi1,
    })
}

/// Per-[`Program`] cache of compiled code, one slot per lane-block
/// width. Lives as a private field on `Program`, so cached code shares
/// the program's lifetime — including through the process-wide
/// [`crate::cache::ProgramCache`], whose `Arc<Program>` entries keep
/// hot programs' native code warm across simulator constructions.
///
/// Each slot memoizes one *default-options* compile attempt (`None`
/// records a failed attempt so fallback is decided once, not per
/// construction). Custom [`JitOptions`] bypass the cache — they are
/// test/bench seams, not hot paths. `Clone` yields empty slots: a
/// cloned `Program` is a new allocation with new base offsets baked
/// into nothing (code only ever references caller-passed pointers, but
/// sharing would couple cap/option semantics across clones for no win).
pub struct JitSlots {
    slots: [OnceLock<Option<Arc<JitProgram>>>; MAX_LANE_WORDS],
}

impl JitSlots {
    /// The cached default-options code for `lane_words`-word blocks,
    /// compiling on first request. `None` means codegen is unavailable
    /// for this (program, width) — callers fall back to the
    /// interpreter.
    pub(crate) fn get_or_build(
        &self,
        prog: &Program,
        lane_words: usize,
    ) -> Option<Arc<JitProgram>> {
        self.slots[lane_words - 1]
            .get_or_init(|| {
                compile(prog, lane_words, &JitOptions::default())
                    .ok()
                    .map(Arc::new)
            })
            .clone()
    }
}

impl Default for JitSlots {
    fn default() -> Self {
        JitSlots {
            slots: std::array::from_fn(|_| OnceLock::new()),
        }
    }
}

impl Clone for JitSlots {
    fn clone(&self) -> Self {
        JitSlots::default()
    }
}

impl std::fmt::Debug for JitSlots {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let built: Vec<usize> = (0..MAX_LANE_WORDS)
            .filter(|&k| matches!(self.slots[k].get(), Some(Some(_))))
            .map(|k| k + 1)
            .collect();
        f.debug_struct("JitSlots")
            .field("built_lane_words", &built)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    fn demo_program() -> Program {
        let mut b = Builder::new();
        let x = b.input("x");
        let y = b.input("y");
        let n = b.nand(x, y);
        let o = b.xor(n, x);
        b.output("o", o);
        Program::compile(&b.finish())
    }

    #[test]
    fn disabled_options_report_disabled() {
        let prog = demo_program();
        let opts = JitOptions {
            enabled: false,
            ..JitOptions::default()
        };
        assert_eq!(compile(&prog, 1, &opts).err(), Some(JitError::Disabled));
    }

    #[test]
    fn code_size_cap_falls_back() {
        let prog = demo_program();
        // `enabled: true` overrides a `GATE_SIM_JIT=0` default — the env
        // knob only seeds `JitOptions::default()`.
        let opts = JitOptions {
            enabled: true,
            max_code_bytes: 16,
            ..JitOptions::default()
        };
        match compile(&prog, 1, &opts) {
            Err(JitError::Emit(emit::EmitError::CodeTooLarge { cap: 16, .. })) => {}
            Err(JitError::HostUnsupported) => {} // non-x86-64 builder
            other => panic!("expected CodeTooLarge fallback, got {other:?}"),
        }
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    #[test]
    fn compiles_and_reports_metadata() {
        let prog = demo_program();
        let opts = JitOptions {
            enabled: true,
            ..JitOptions::default()
        };
        let jp = compile(&prog, 4, &opts).expect("host supports codegen");
        assert_eq!(jp.lane_words(), 4);
        assert!(jp.code_bytes() > 0);
        assert_eq!(jp.level_entries().len(), prog.levels());
    }

    #[test]
    fn slots_memoize_per_width() {
        let prog = demo_program();
        let a = prog.jit(1);
        let b = prog.jit(1);
        match (&a, &b) {
            (Some(x), Some(y)) => assert!(Arc::ptr_eq(x, y), "per-width slot must memoize"),
            (None, None) => {} // unsupported host: memoized failure
            other => panic!("inconsistent memoization: {other:?}"),
        }
    }
}
