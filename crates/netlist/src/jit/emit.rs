//! ISA-agnostic machine-code emission state: a growable code buffer,
//! label offsets, and pending fixups.
//!
//! [`EmitState`] knows nothing about x86 — it hands out byte-append
//! primitives plus label/fixup bookkeeping, and the ISA layer
//! ([`crate::jit::x86`]) builds instruction encodings on top. Labels
//! are bound to code offsets as emission reaches them; references to
//! not-yet-bound labels are recorded as [`PendingFixup`]s and patched
//! in [`EmitState::finalize`]. The shape (offset vector with an
//! `UNKNOWN` sentinel, a pending-fixup list drained at the end) follows
//! the classic single-pass assembler design — see `docs/jit.md` for the
//! normative contract.

/// Sentinel offset for a label that has been created but not yet bound.
const UNKNOWN_LABEL_OFFSET: u32 = u32::MAX;

/// A code-buffer label: an index into [`EmitState`]'s offset table.
/// Created with [`EmitState::new_label`], bound with
/// [`EmitState::bind_label`], referenced by fixup-emitting helpers in
/// the ISA layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(pub(crate) u32);

/// How a pending reference encodes the target once it is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixupKind {
    /// A 32-bit signed PC-relative displacement whose base is the end
    /// of the 4-byte field itself (x86 `call rel32` / `jmp rel32`).
    Rel32,
}

/// A reference to a label that was not bound at emission time.
#[derive(Debug, Clone, Copy)]
pub struct PendingFixup {
    /// Offset of the displacement field inside the code buffer.
    pub at: u32,
    /// The label whose final offset the field must encode.
    pub target: Label,
    /// Field encoding.
    pub kind: FixupKind,
}

/// Errors surfaced while building or finalizing a code buffer. All of
/// them are treated as "codegen unavailable" by the lowering layer —
/// the simulator falls back to the interpreter, it never aborts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmitError {
    /// The code buffer outgrew the configured cap
    /// ([`crate::jit::JitOptions::max_code_bytes`]).
    CodeTooLarge { len: usize, cap: usize },
    /// `finalize` found a fixup whose target label was never bound.
    UnboundLabel(u32),
    /// A PC-relative displacement did not fit its 32-bit field.
    RelocOutOfRange { at: u32 },
}

impl std::fmt::Display for EmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmitError::CodeTooLarge { len, cap } => {
                write!(
                    f,
                    "emitted code ({len} bytes) exceeds the cap ({cap} bytes)"
                )
            }
            EmitError::UnboundLabel(l) => write!(f, "label {l} referenced but never bound"),
            EmitError::RelocOutOfRange { at } => {
                write!(f, "rel32 fixup at offset {at} out of range")
            }
        }
    }
}

/// The emission state: code bytes plus label/fixup bookkeeping.
#[derive(Debug, Default)]
pub struct EmitState {
    code: Vec<u8>,
    label_offsets: Vec<u32>,
    pending_fixups: Vec<PendingFixup>,
    /// Hard cap on `code.len()`; appends past it report
    /// [`EmitError::CodeTooLarge`] from [`EmitState::finalize`].
    cap: usize,
    overflowed: bool,
}

impl EmitState {
    /// Fresh state with a code-size cap (`usize::MAX` for none).
    pub fn with_cap(cap: usize) -> Self {
        EmitState {
            cap,
            ..Default::default()
        }
    }

    /// Current end-of-code offset — where the next byte will land.
    pub fn offset(&self) -> u32 {
        self.code.len() as u32
    }

    /// Number of bytes emitted so far.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Append raw bytes. Overflow past the cap is recorded and
    /// reported once, at [`EmitState::finalize`] — per-byte `Result`s
    /// would bloat every encoder helper for an error that terminates
    /// the whole build anyway.
    pub fn emit(&mut self, bytes: &[u8]) {
        if self.code.len() + bytes.len() > self.cap {
            self.overflowed = true;
            return;
        }
        self.code.extend_from_slice(bytes);
    }

    /// Append a single byte.
    pub fn emit_u8(&mut self, b: u8) {
        self.emit(&[b]);
    }

    /// Append a little-endian 32-bit value.
    pub fn emit_u32(&mut self, v: u32) {
        self.emit(&v.to_le_bytes());
    }

    /// Create a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.label_offsets.len() as u32);
        self.label_offsets.push(UNKNOWN_LABEL_OFFSET);
        l
    }

    /// Bind `label` to the current offset. Binding twice is a logic
    /// error in the lowering layer and panics.
    pub fn bind_label(&mut self, label: Label) {
        let offset = self.offset();
        let slot = &mut self.label_offsets[label.0 as usize];
        assert_eq!(*slot, UNKNOWN_LABEL_OFFSET, "label {} bound twice", label.0);
        *slot = offset;
    }

    /// Offset a label was bound to, if it has been bound.
    pub fn label_offset(&self, label: Label) -> Option<u32> {
        match self.label_offsets[label.0 as usize] {
            UNKNOWN_LABEL_OFFSET => None,
            off => Some(off),
        }
    }

    /// Record that the `kind`-shaped field at `at` must encode
    /// `target`'s final offset; patched during [`EmitState::finalize`].
    pub fn add_fixup(&mut self, at: u32, target: Label, kind: FixupKind) {
        self.pending_fixups.push(PendingFixup { at, target, kind });
    }

    /// Patch every pending fixup and return the finished code buffer.
    pub fn finalize(mut self) -> Result<Vec<u8>, EmitError> {
        if self.overflowed {
            return Err(EmitError::CodeTooLarge {
                len: self.cap + 1,
                cap: self.cap,
            });
        }
        for fix in &self.pending_fixups {
            let target = self.label_offsets[fix.target.0 as usize];
            if target == UNKNOWN_LABEL_OFFSET {
                return Err(EmitError::UnboundLabel(fix.target.0));
            }
            match fix.kind {
                FixupKind::Rel32 => {
                    // rel32 is relative to the *end* of the 4-byte field.
                    let base = i64::from(fix.at) + 4;
                    let rel = i64::from(target) - base;
                    let rel32 = i32::try_from(rel)
                        .map_err(|_| EmitError::RelocOutOfRange { at: fix.at })?;
                    let at = fix.at as usize;
                    self.code[at..at + 4].copy_from_slice(&rel32.to_le_bytes());
                }
            }
        }
        Ok(self.code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_rel32_fixup_is_patched() {
        let mut e = EmitState::with_cap(usize::MAX);
        let l = e.new_label();
        e.emit_u8(0xe8); // call rel32
        let at = e.offset();
        e.emit_u32(0); // placeholder
        e.add_fixup(at, l, FixupKind::Rel32);
        e.emit_u8(0xc3); // ret
        e.bind_label(l); // target = offset 6
        let code = e.finalize().unwrap();
        // rel32 = target(6) - (at(1) + 4) = 1
        assert_eq!(code, vec![0xe8, 1, 0, 0, 0, 0xc3]);
    }

    #[test]
    fn backward_rel32_fixup_is_negative() {
        let mut e = EmitState::with_cap(usize::MAX);
        let l = e.new_label();
        e.bind_label(l); // target = 0
        e.emit_u8(0xe8);
        let at = e.offset();
        e.emit_u32(0);
        e.add_fixup(at, l, FixupKind::Rel32);
        let code = e.finalize().unwrap();
        assert_eq!(&code[1..5], &(-5i32).to_le_bytes());
    }

    #[test]
    fn unbound_label_is_reported() {
        let mut e = EmitState::with_cap(usize::MAX);
        let l = e.new_label();
        e.emit_u8(0xe8);
        let at = e.offset();
        e.emit_u32(0);
        e.add_fixup(at, l, FixupKind::Rel32);
        assert_eq!(e.finalize(), Err(EmitError::UnboundLabel(0)));
    }

    #[test]
    fn cap_overflow_is_reported_once_at_finalize() {
        let mut e = EmitState::with_cap(4);
        e.emit(&[0; 3]);
        e.emit(&[0; 3]); // crosses the cap — dropped, flagged
        assert_eq!(e.len(), 3);
        assert!(matches!(
            e.finalize(),
            Err(EmitError::CodeTooLarge { cap: 4, .. })
        ));
    }
}
