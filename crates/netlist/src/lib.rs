//! Gate-level netlist intermediate representation.
//!
//! This crate is the reproduction's hardware substrate: the paper writes
//! instruction hardware blocks in SystemVerilog and lets a commercial
//! synthesis tool flatten and share logic; here, blocks are built as
//! gate-level netlists through a hash-consing [`Builder`] and the
//! [`opt`] module performs the redundancy-removal role of the synthesis
//! tool (structural sharing, constant propagation, dead-logic sweep).
//!
//! * [`Netlist`] — flat arena of [`Gate`]s with named input/output ports.
//! * [`bus`] — word-level combinators (adders, barrel shifters, muxes)
//!   used by the instruction hardware blocks.
//! * [`sim`] — the [`sim::SimBackend`] abstraction plus the interpreted
//!   reference backend, event-free and two-phase with toggle counting (the
//!   activity numbers feed the FlexIC power model).
//! * [`level`] — levelization and compilation of a netlist into a flat,
//!   structure-of-arrays op stream with per-level fan-in metadata.
//! * [`compiled`] — the compiled backend: up to 512 stimulus lanes per
//!   eval packed as K-word lane blocks (K contiguous `u64`s per net),
//!   exact popcount-per-word toggle accounting, and event-driven level
//!   skipping on low-activity stimulus ([`compiled::EvalMode`]).
//! * [`jit`] — native code emission for the compiled op stream: each
//!   level lowered to straight-line x86-64 in an mmap'd W^X buffer
//!   (`EvalMode::Jit` / `GATE_SIM_JIT`), falling back to the
//!   interpreter bit-identically wherever codegen is unavailable
//!   (contract in `docs/jit.md`).
//! * [`sharded`] — the multi-threaded backend: compiled lane blocks over
//!   disjoint stimulus lanes, merged bit-identically regardless of
//!   thread count, schedule, or block width.
//! * [`pool`] — the persistent worker-pool runtime behind every parallel
//!   evaluation path: parked OS threads reused across settles, a
//!   generation-stamped job protocol, and lock-free chunk/shard claiming
//!   off atomic counters.
//! * [`failpoints`] — feature-gated deterministic fault injection
//!   (`GATE_SIM_FAILPOINTS`): seeded schedules that force worker
//!   panics, cache misses/evictions, and JIT failures so the fallback
//!   paths above are exercised on purpose (`docs/robustness.md`).
//! * [`opt`] — "synthesis": re-cons, constant-fold and sweep a netlist.
//! * [`stats`] — NAND2-equivalent gate counting exactly as the paper's
//!   area numbers are reported.
//!
//! The semantics every backend must honour — settle/step phases, lane
//! packing, the first-eval toggle rule, popcount accounting, and the
//! determinism guarantees — are specified in `docs/simulation.md` at the
//! repository root.
//!
//! # Examples
//!
//! Build a netlist, simulate it on the interpreted backend, and read the
//! toggle counts that feed the power model:
//!
//! ```
//! use netlist::{Builder, bus, SimBackend};
//!
//! let mut b = Builder::new();
//! let a = b.input_bus("a", 8);
//! let c = b.input_bus("b", 8);
//! let (sum, _carry) = bus::add(&mut b, &a, &c);
//! b.output_bus("sum", &sum);
//! let nl = b.finish();
//! let mut sim = netlist::sim::Sim::new(&nl);
//! sim.set_bus("a", 200);
//! sim.set_bus("b", 100);
//! sim.eval();
//! assert_eq!(sim.get_bus("sum"), (200 + 100) & 0xff);
//! sim.step();
//! // Change the stimulus: switching activity accumulates per net.
//! sim.set_bus("a", 0x55);
//! sim.eval();
//! assert!(sim.toggles().iter().sum::<u64>() > 0);
//! ```
//!
//! The compiled and sharded backends produce bit-identical results behind
//! the same [`SimBackend`] trait:
//!
//! ```
//! use netlist::{Builder, CompiledSim, ShardedSim, SimBackend, sharded::ShardPolicy};
//!
//! let mut b = Builder::new();
//! let x = b.input_bus("x", 4);
//! b.output_bus("y", &x);
//! let nl = b.finish();
//! let mut wide = CompiledSim::with_lanes(&nl, 128); // one 2-word lane block
//! let mut sharded = ShardedSim::with_policy(&nl, ShardPolicy { shards: 2, lanes_per_shard: 64, threads: 2, ..ShardPolicy::single() });
//! wide.set_bus("x", 0b1010);
//! SimBackend::set_bus(&mut sharded, "x", 0b1010);
//! wide.eval();
//! sharded.eval();
//! assert_eq!(wide.get_bus_lane("y", 127), sharded.get_bus_lane("y", 127));
//! ```

pub mod bus;
pub mod cache;
pub mod compiled;
pub mod env;
pub mod failpoints;
pub mod jit;
pub mod level;
pub mod opt;
pub mod pool;
pub mod sharded;
pub mod sim;
pub mod stats;

pub use cache::{CacheStats, ProgramCache};
pub use compiled::{
    word_lane_mask, CompiledSim, EvalMode, EvalPolicy, LANES_PER_WORD, MAX_LANE_WORDS,
    MAX_TOTAL_LANES,
};
pub use jit::{JitOptions, JitProgram};
pub use pool::{JobError, JobOptions, WorkerPool};
pub use sharded::{ShardPolicy, ShardSchedule, ShardedSim};
pub use sim::{EvalStats, Sim, SimBackend};

/// Historical entry point for [`env::threads`] (the `GATE_SIM_THREADS`
/// knob); all the `GATE_SIM_*` parsing now lives in [`mod@env`].
pub use env::threads as env_threads;

/// Historical entry point for [`env::lane_words`] (the
/// `GATE_SIM_LANE_WORDS` knob); all the `GATE_SIM_*` parsing now lives
/// in [`mod@env`].
pub use env::lane_words as env_lane_words;

use std::collections::HashMap;

/// Identifier of a net (the output of one gate).
pub type NetId = u32;

/// A primitive logic element.
///
/// Two-input gates store their operands in normalised (sorted) order for the
/// commutative kinds, which the [`Builder`] relies on for structural
/// hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Constant `false` or `true`.
    Const(bool),
    /// A primary input bit (index into the input port table).
    Input(u32),
    /// Inverter.
    Not(NetId),
    /// 2-input AND.
    And(NetId, NetId),
    /// 2-input OR.
    Or(NetId, NetId),
    /// 2-input XOR.
    Xor(NetId, NetId),
    /// 2-input NAND.
    Nand(NetId, NetId),
    /// 2-input NOR.
    Nor(NetId, NetId),
    /// 2-input XNOR.
    Xnor(NetId, NetId),
    /// 2:1 multiplexer: `sel ? b : a`.
    Mux {
        /// Select input.
        sel: NetId,
        /// Output when `sel` is 0.
        a: NetId,
        /// Output when `sel` is 1.
        b: NetId,
    },
    /// D flip-flop; `d` is patched by [`Builder::connect_dff`] and read only
    /// at the clock edge.
    Dff {
        /// Data input (may be `NetId::MAX` until connected).
        d: NetId,
        /// Reset value.
        init: bool,
    },
}

impl Gate {
    /// The combinational fan-in nets of this gate (DFF `d` is *not*
    /// combinational fan-in).
    pub fn fanin(&self) -> impl Iterator<Item = NetId> {
        let (a, b, c) = match *self {
            Gate::Const(_) | Gate::Input(_) | Gate::Dff { .. } => (None, None, None),
            Gate::Not(x) => (Some(x), None, None),
            Gate::And(x, y)
            | Gate::Or(x, y)
            | Gate::Xor(x, y)
            | Gate::Nand(x, y)
            | Gate::Nor(x, y)
            | Gate::Xnor(x, y) => (Some(x), Some(y), None),
            Gate::Mux { sel, a, b } => (Some(sel), Some(a), Some(b)),
        };
        [a, b, c].into_iter().flatten()
    }

    /// True for sequential elements.
    pub fn is_dff(&self) -> bool {
        matches!(self, Gate::Dff { .. })
    }
}

/// A named multi-bit port (LSB first).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Port {
    /// Port name, unique within its direction.
    pub name: String,
    /// The nets making up the port, LSB first.
    pub nets: Vec<NetId>,
}

/// A complete netlist: gate arena plus named ports.
///
/// Gates are stored in construction order, which is a valid topological
/// order for combinational evaluation (a gate's fan-in always has smaller
/// ids; DFF outputs act as sources).
///
/// `Hash` covers the full structure (gates and both port tables) and is
/// what the [`cache::ProgramCache`] content hash is built on: equal
/// netlists hash equal, and any structural difference — a replaced gate,
/// a renamed port — changes the hash.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Netlist {
    gates: Vec<Gate>,
    inputs: Vec<Port>,
    outputs: Vec<Port>,
}

impl Netlist {
    /// The gates in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates (including constants, inputs and DFFs).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True when the netlist contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Named input ports.
    pub fn inputs(&self) -> &[Port] {
        &self.inputs
    }

    /// Named output ports.
    pub fn outputs(&self) -> &[Port] {
        &self.outputs
    }

    /// Looks up an input port by name.
    pub fn input(&self, name: &str) -> Option<&Port> {
        self.inputs.iter().find(|p| p.name == name)
    }

    /// Looks up an output port by name.
    pub fn output(&self, name: &str) -> Option<&Port> {
        self.outputs.iter().find(|p| p.name == name)
    }

    /// Returns a copy of this netlist with the gate at `id` replaced.
    ///
    /// This deliberately bypasses hash-consing — it exists for *mutation
    /// testing* (the MCY step of the paper's verification flow), where we
    /// want to inject single-gate faults and check that testbenches catch
    /// them.
    ///
    /// # Panics
    ///
    /// Panics if the replacement gate's fan-in would break topological order
    /// (a fan-in net id must be smaller than `id`).
    pub fn with_gate_replaced(&self, id: NetId, gate: Gate) -> Netlist {
        for f in gate.fanin() {
            assert!(
                f < id,
                "replacement fan-in {f} breaks topological order at {id}"
            );
        }
        let mut clone = self.clone();
        clone.gates[id as usize] = gate;
        clone
    }

    /// Iterates over the ids of all DFFs.
    pub fn dffs(&self) -> impl Iterator<Item = NetId> + '_ {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.is_dff())
            .map(|(i, _)| i as NetId)
    }
}

/// Incremental netlist constructor with hash-consing and constant folding.
///
/// Identical gates are shared automatically; constant operands are folded at
/// construction, so the blocks emitted by `hwlib` are already locally
/// minimal, and the cross-block sharing that the paper delegates to the
/// synthesis tool is recovered by [`opt::synthesize`].
#[derive(Debug, Default)]
pub struct Builder {
    netlist: Netlist,
    cache: HashMap<Gate, NetId>,
}

/// The placeholder `d` input of a not-yet-connected DFF.
const UNCONNECTED: NetId = NetId::MAX;

impl Builder {
    /// Creates an empty builder.
    pub fn new() -> Builder {
        Builder::default()
    }

    fn push(&mut self, gate: Gate) -> NetId {
        if let Some(&id) = self.cache.get(&gate) {
            return id;
        }
        let id = self.netlist.gates.len() as NetId;
        self.netlist.gates.push(gate);
        self.cache.insert(gate, id);
        id
    }

    /// The constant-zero net.
    pub fn zero(&mut self) -> NetId {
        self.push(Gate::Const(false))
    }

    /// The constant-one net.
    pub fn one(&mut self) -> NetId {
        self.push(Gate::Const(true))
    }

    /// A constant bit.
    pub fn constant(&mut self, value: bool) -> NetId {
        self.push(Gate::Const(value))
    }

    fn const_of(&self, id: NetId) -> Option<bool> {
        match self.netlist.gates[id as usize] {
            Gate::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Declares a single-bit input port.
    pub fn input(&mut self, name: &str) -> NetId {
        let bus = self.input_bus(name, 1);
        bus[0]
    }

    /// Declares an `width`-bit input port, returning its nets LSB first.
    ///
    /// # Panics
    ///
    /// Panics if an input port with the same name already exists.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Vec<NetId> {
        assert!(
            self.netlist.input(name).is_none(),
            "duplicate input port `{name}`"
        );
        let base = self
            .netlist
            .inputs
            .iter()
            .map(|p| p.nets.len() as u32)
            .sum::<u32>();
        let nets: Vec<NetId> = (0..width as u32)
            .map(|i| self.push(Gate::Input(base + i)))
            .collect();
        self.netlist.inputs.push(Port {
            name: name.to_string(),
            nets: nets.clone(),
        });
        nets
    }

    /// Declares a single-bit output port.
    pub fn output(&mut self, name: &str, net: NetId) {
        self.output_bus(name, &[net]);
    }

    /// Declares a multi-bit output port.
    ///
    /// # Panics
    ///
    /// Panics if an output port with the same name already exists.
    pub fn output_bus(&mut self, name: &str, nets: &[NetId]) {
        assert!(
            self.netlist.output(name).is_none(),
            "duplicate output port `{name}`"
        );
        self.netlist.outputs.push(Port {
            name: name.to_string(),
            nets: nets.to_vec(),
        });
    }

    /// Inverter with folding (`!!x = x`, `!const`).
    pub fn not(&mut self, x: NetId) -> NetId {
        if let Some(v) = self.const_of(x) {
            return self.constant(!v);
        }
        if let Gate::Not(inner) = self.netlist.gates[x as usize] {
            return inner;
        }
        self.push(Gate::Not(x))
    }

    /// 2-input AND with folding.
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) | (_, Some(false)) => return self.zero(),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        let (a, b) = (a.min(b), a.max(b));
        self.push(Gate::And(a, b))
    }

    /// 2-input OR with folding.
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_of(a), self.const_of(b)) {
            (Some(true), _) | (_, Some(true)) => return self.one(),
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        let (a, b) = (a.min(b), a.max(b));
        self.push(Gate::Or(a, b))
    }

    /// 2-input XOR with folding.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) => return self.not(b),
            (_, Some(true)) => return self.not(a),
            _ => {}
        }
        if a == b {
            return self.zero();
        }
        let (a, b) = (a.min(b), a.max(b));
        self.push(Gate::Xor(a, b))
    }

    /// 2-input NAND with folding.
    pub fn nand(&mut self, a: NetId, b: NetId) -> NetId {
        let x = self.and(a, b);
        self.not(x)
    }

    /// 2-input NOR with folding.
    pub fn nor(&mut self, a: NetId, b: NetId) -> NetId {
        let x = self.or(a, b);
        self.not(x)
    }

    /// 2-input XNOR with folding.
    pub fn xnor(&mut self, a: NetId, b: NetId) -> NetId {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// 2:1 mux (`sel ? b : a`) with folding.
    pub fn mux(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        match self.const_of(sel) {
            Some(false) => return a,
            Some(true) => return b,
            None => {}
        }
        if a == b {
            return a;
        }
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), Some(true)) => return sel,
            (Some(true), Some(false)) => return self.not(sel),
            (Some(false), None) => return self.and(sel, b),
            (None, Some(true)) => return self.or(sel, a),
            (Some(true), None) => {
                let ns = self.not(sel);
                return self.or(ns, b);
            }
            (None, Some(false)) => {
                let ns = self.not(sel);
                return self.and(ns, a);
            }
            _ => {}
        }
        self.push(Gate::Mux { sel, a, b })
    }

    /// Allocates a DFF whose `d` input is connected later.
    pub fn dff(&mut self, init: bool) -> NetId {
        // DFFs are never hash-consed: each is distinct state.
        let id = self.netlist.gates.len() as NetId;
        self.netlist.gates.push(Gate::Dff {
            d: UNCONNECTED,
            init,
        });
        id
    }

    /// Connects the data input of a DFF created by [`Builder::dff`].
    ///
    /// # Panics
    ///
    /// Panics if `ff` is not a DFF or was already connected.
    pub fn connect_dff(&mut self, ff: NetId, d: NetId) {
        match &mut self.netlist.gates[ff as usize] {
            Gate::Dff { d: slot, .. } => {
                assert_eq!(*slot, UNCONNECTED, "DFF {ff} already connected");
                *slot = d;
            }
            g => panic!("net {ff} is not a DFF: {g:?}"),
        }
    }

    /// Imports all logic from `other`, mapping its input ports to the given
    /// nets, and returns the resolved nets of each of `other`'s outputs in
    /// declaration order.
    ///
    /// Hash-consing applies across the import, so structure shared between
    /// blocks is merged exactly once — this is how ModularEX recovers the
    /// paper's synthesis-time resource sharing.
    ///
    /// # Panics
    ///
    /// Panics if `bindings` is missing one of `other`'s input ports or a
    /// width mismatches.
    pub fn import(
        &mut self,
        other: &Netlist,
        bindings: &HashMap<&str, Vec<NetId>>,
    ) -> Vec<(String, Vec<NetId>)> {
        // Flatten the other netlist's input bits in port order.
        let mut input_bits: Vec<NetId> = Vec::new();
        for port in &other.inputs {
            let bound = bindings
                .get(port.name.as_str())
                .unwrap_or_else(|| panic!("missing binding for input `{}`", port.name));
            assert_eq!(
                bound.len(),
                port.nets.len(),
                "width mismatch binding `{}`",
                port.name
            );
            input_bits.extend_from_slice(bound);
        }
        let mut map: Vec<NetId> = vec![UNCONNECTED; other.gates.len()];
        let mut dff_fixups: Vec<(NetId, NetId)> = Vec::new(); // (new ff, old d)
        for (old_id, gate) in other.gates.iter().enumerate() {
            let new_id = match *gate {
                Gate::Const(v) => self.constant(v),
                Gate::Input(i) => input_bits[i as usize],
                Gate::Not(x) => {
                    let x = map[x as usize];
                    self.not(x)
                }
                Gate::And(x, y) => {
                    let (x, y) = (map[x as usize], map[y as usize]);
                    self.and(x, y)
                }
                Gate::Or(x, y) => {
                    let (x, y) = (map[x as usize], map[y as usize]);
                    self.or(x, y)
                }
                Gate::Xor(x, y) => {
                    let (x, y) = (map[x as usize], map[y as usize]);
                    self.xor(x, y)
                }
                Gate::Nand(x, y) => {
                    let (x, y) = (map[x as usize], map[y as usize]);
                    self.nand(x, y)
                }
                Gate::Nor(x, y) => {
                    let (x, y) = (map[x as usize], map[y as usize]);
                    self.nor(x, y)
                }
                Gate::Xnor(x, y) => {
                    let (x, y) = (map[x as usize], map[y as usize]);
                    self.xnor(x, y)
                }
                Gate::Mux { sel, a, b } => {
                    let (sel, a, b) = (map[sel as usize], map[a as usize], map[b as usize]);
                    self.mux(sel, a, b)
                }
                Gate::Dff { d, init } => {
                    let ff = self.dff(init);
                    dff_fixups.push((ff, d));
                    ff
                }
            };
            map[old_id] = new_id;
        }
        for (ff, old_d) in dff_fixups {
            let d = map[old_d as usize];
            self.connect_dff(ff, d);
        }
        other
            .outputs
            .iter()
            .map(|p| {
                (
                    p.name.clone(),
                    p.nets.iter().map(|&n| map[n as usize]).collect(),
                )
            })
            .collect()
    }

    /// Finalises the netlist.
    ///
    /// # Panics
    ///
    /// Panics if any DFF is still unconnected.
    pub fn finish(self) -> Netlist {
        for (i, g) in self.netlist.gates.iter().enumerate() {
            if let Gate::Dff { d, .. } = g {
                assert_ne!(*d, UNCONNECTED, "DFF {i} left unconnected");
            }
        }
        self.netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_structure() {
        let mut b = Builder::new();
        let x = b.input("x");
        let y = b.input("y");
        let a1 = b.and(x, y);
        let a2 = b.and(y, x); // commutative normalisation
        assert_eq!(a1, a2);
    }

    #[test]
    fn constant_folding_rules() {
        let mut b = Builder::new();
        let x = b.input("x");
        let zero = b.zero();
        let one = b.one();
        assert_eq!(b.and(x, zero), zero);
        assert_eq!(b.and(x, one), x);
        assert_eq!(b.or(x, one), one);
        assert_eq!(b.xor(x, zero), x);
        let nx = b.not(x);
        assert_eq!(b.xor(x, one), nx);
        assert_eq!(b.not(nx), x);
        assert_eq!(b.xor(x, x), zero);
        assert_eq!(b.mux(zero, x, nx), x);
        assert_eq!(b.mux(one, x, nx), nx);
        assert_eq!(b.mux(x, zero, one), x);
    }

    #[test]
    fn dff_connection_lifecycle() {
        let mut b = Builder::new();
        let x = b.input("x");
        let ff = b.dff(false);
        let next = b.xor(ff, x);
        b.connect_dff(ff, next);
        let nl = b.finish();
        assert_eq!(nl.dffs().count(), 1);
    }

    #[test]
    #[should_panic(expected = "left unconnected")]
    fn unconnected_dff_panics_at_finish() {
        let mut b = Builder::new();
        b.dff(false);
        b.finish();
    }

    #[test]
    fn import_merges_shared_logic() {
        // Two identical sub-blocks importing into one builder share gates.
        let block = {
            let mut b = Builder::new();
            let a = b.input_bus("a", 4);
            let c = b.input_bus("b", 4);
            let (sum, _) = crate::bus::add(&mut b, &a, &c);
            b.output_bus("sum", &sum);
            b.finish()
        };
        let mut top = Builder::new();
        let a = top.input_bus("a", 4);
        let c = top.input_bus("b", 4);
        let mut bind = HashMap::new();
        bind.insert("a", a.clone());
        bind.insert("b", c.clone());
        let before = top.netlist.len();
        let out1 = top.import(&block, &bind);
        let after1 = top.netlist.len();
        let out2 = top.import(&block, &bind);
        let after2 = top.netlist.len();
        assert_eq!(out1, out2, "identical imports resolve identically");
        assert!(after1 > before);
        assert_eq!(after2, after1, "second import adds no gates");
    }

    #[test]
    fn duplicate_port_names_panic() {
        let mut b = Builder::new();
        b.input_bus("a", 2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.input_bus("a", 2);
        }));
        assert!(result.is_err());
    }
}
