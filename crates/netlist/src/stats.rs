//! Gate counting in NAND2 equivalents.
//!
//! The paper reports processor area as "NAND2-equivalent gatecounts"
//! (Figure 7).  The weights below are the conventional standard-cell area
//! ratios for a 2-input-gate library; the FlexIC technology model in the
//! `flexic` crate attaches delay and power to the same categories.

use crate::{Gate, Netlist};

/// Per-kind gate counts of a netlist.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateCounts {
    /// Inverters.
    pub not: usize,
    /// AND2 gates.
    pub and: usize,
    /// OR2 gates.
    pub or: usize,
    /// XOR2 gates.
    pub xor: usize,
    /// NAND2 gates.
    pub nand: usize,
    /// NOR2 gates.
    pub nor: usize,
    /// XNOR2 gates.
    pub xnor: usize,
    /// 2:1 muxes.
    pub mux: usize,
    /// D flip-flops.
    pub dff: usize,
    /// Constants and input pins (zero area).
    pub zero_area: usize,
}

/// NAND2-equivalent area weights per gate category.
pub mod nand2_weight {
    /// Inverter.
    pub const NOT: f64 = 0.67;
    /// AND2 / OR2 (NAND/NOR plus an inverter).
    pub const AND_OR: f64 = 1.33;
    /// NAND2 / NOR2.
    pub const NAND_NOR: f64 = 1.0;
    /// XOR2 / XNOR2.
    pub const XOR: f64 = 2.33;
    /// 2:1 mux.
    pub const MUX: f64 = 2.33;
    /// D flip-flop (the paper notes FFs dominate Serv's area/power).
    pub const DFF: f64 = 7.67;
}

impl GateCounts {
    /// Counts the gates of `netlist`.
    pub fn of(netlist: &Netlist) -> GateCounts {
        let mut c = GateCounts::default();
        for g in netlist.gates() {
            match g {
                Gate::Const(_) | Gate::Input(_) => c.zero_area += 1,
                Gate::Not(_) => c.not += 1,
                Gate::And(..) => c.and += 1,
                Gate::Or(..) => c.or += 1,
                Gate::Xor(..) => c.xor += 1,
                Gate::Nand(..) => c.nand += 1,
                Gate::Nor(..) => c.nor += 1,
                Gate::Xnor(..) => c.xnor += 1,
                Gate::Mux { .. } => c.mux += 1,
                Gate::Dff { .. } => c.dff += 1,
            }
        }
        c
    }

    /// Total gates with non-zero area.
    pub fn logic_gates(&self) -> usize {
        self.not
            + self.and
            + self.or
            + self.xor
            + self.nand
            + self.nor
            + self.xnor
            + self.mux
            + self.dff
    }

    /// NAND2-equivalent area (the paper's Figure 7 metric).
    pub fn nand2_equivalent(&self) -> f64 {
        use nand2_weight::*;
        self.not as f64 * NOT
            + (self.and + self.or) as f64 * AND_OR
            + (self.nand + self.nor) as f64 * NAND_NOR
            + (self.xor + self.xnor) as f64 * XOR
            + self.mux as f64 * MUX
            + self.dff as f64 * DFF
    }

    /// Fraction of NAND2-equivalent area contributed by flip-flops
    /// (Figure 10 annotates this per layout).
    pub fn ff_area_fraction(&self) -> f64 {
        let total = self.nand2_equivalent();
        if total == 0.0 {
            return 0.0;
        }
        self.dff as f64 * nand2_weight::DFF / total
    }
}

impl std::fmt::Display for GateCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "not={} and={} or={} xor={} nand={} nor={} xnor={} mux={} dff={} (NAND2eq {:.0})",
            self.not,
            self.and,
            self.or,
            self.xor,
            self.nand,
            self.nor,
            self.xnor,
            self.mux,
            self.dff,
            self.nand2_equivalent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bus, Builder};

    #[test]
    fn counts_and_area_of_small_adder() {
        let mut b = Builder::new();
        let x = b.input_bus("x", 4);
        let y = b.input_bus("y", 4);
        let (sum, _) = bus::add(&mut b, &x, &y);
        b.output_bus("sum", &sum);
        let nl = b.finish();
        let counts = GateCounts::of(&nl);
        assert!(counts.xor >= 7, "{counts}");
        assert!(counts.nand2_equivalent() > 10.0);
        assert_eq!(counts.dff, 0);
        assert_eq!(counts.ff_area_fraction(), 0.0);
    }

    #[test]
    fn ff_fraction_reflects_dffs() {
        let mut b = Builder::new();
        let x = b.input("x");
        let ff = b.dff(false);
        b.connect_dff(ff, x);
        b.output("q", ff);
        let nl = b.finish();
        let counts = GateCounts::of(&nl);
        assert_eq!(counts.dff, 1);
        assert_eq!(counts.ff_area_fraction(), 1.0);
    }

    #[test]
    fn display_is_nonempty() {
        let counts = GateCounts::default();
        assert!(!counts.to_string().is_empty());
    }
}
