//! Persistent worker-pool runtime for parallel evaluation.
//!
//! Before this module existed, every parallel settle
//! ([`crate::compiled::CompiledSim`] with an [`crate::EvalPolicy`] above
//! one thread, [`crate::sharded::ShardedSim::par_shards`]) opened a fresh
//! [`std::thread::scope`]: thread creation plus teardown cost hundreds of
//! microseconds per settle and dominated small-netlist workloads by ~85×
//! (see `BENCH_baseline.json`'s pre-pool `compiled_64_lanes_par{2,4}`
//! rows). A [`WorkerPool`] keeps a set of parked OS threads alive across
//! settles instead, so submitting a parallel settle costs a handful of
//! atomic operations — and, when settles come back-to-back (a processor
//! cycle loop), not even a wakeup, because workers spin briefly before
//! parking and are still hot when the next job lands.
//!
//! # The job protocol
//!
//! One job at a time (a submit mutex serializes callers; the pool is
//! shared process-wide, see [`WorkerPool::shared`]). A job is a
//! type-erased `Fn(tid)` closure executed by `participants` workers:
//! the **caller is worker 0**, pool threads claim tids `1..participants`
//! off an atomic counter. Publication is generation-stamped:
//!
//! 1. the submitter resets the claim counter to `(generation + 1, tid 1)`,
//! 2. stores the job descriptor fields (all individually atomic),
//! 3. publishes the new generation and unparks parked workers,
//! 4. runs its own share (`f(0)`),
//! 5. blocks on a lightweight completion latch (an atomic countdown; the
//!    last finishing worker unparks the caller).
//!
//! A worker validates its claim with a compare-and-swap that carries the
//! generation stamp: a stale worker that dozed through an entire job
//! observes a mismatched stamp and discards what it read, so a claim can
//! only ever succeed for the currently-published descriptor. Claimed tids
//! are unique, which is what lets jobs hand workers *positional* work
//! (contiguous level chunks in `crate::level`, shard-index claims) with
//! disjoint writes and no locks.
//!
//! # Wakeup and parking
//!
//! Idle workers spin (with [`std::thread::yield_now`] on a single
//! hardware thread, where pure spinning would only steal the submitter's
//! quantum), then park. The park/unpark handshake is raced-checked in
//! both directions — a worker re-checks the generation after announcing
//! itself parked, and a submitter unparks every worker whose parked flag
//! it observes — so no wakeup is ever lost. Within one cycle-loop `step`
//! the settles arrive faster than the spin window expires and workers
//! never touch the futex.
//!
//! # Lifecycle
//!
//! The process-wide pool is created lazily by the first simulator whose
//! policy wants threads ([`WorkerPool::shared`]), grows on demand (a
//! policy asking for more workers than exist), and is reference-counted
//! by the simulators holding it: dropping the last handle joins every
//! worker thread — no detached threads survive (regression-tested in
//! `crates/netlist/tests/pool_lifecycle.rs`). `GATE_SIM_POOL=0` disables
//! pool acquisition entirely, forcing the scoped-thread fallback paths.
//!
//! Results are bit-identical to the scoped and sequential paths by
//! construction — the pool only changes *who executes* a chunk, never
//! what it reads or writes (`docs/simulation.md` § "Persistent worker
//! pool").

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex, PoisonError, Weak};
use std::thread::{JoinHandle, Thread};

/// Spin iterations before an idle worker starts yielding, and yield
/// iterations before it parks. On a single hardware thread the spin
/// phase is skipped entirely (spinning can only delay the submitter).
const IDLE_SPINS: u32 = 256;
const IDLE_YIELDS: u32 = 64;

/// Spin iterations before a barrier waiter starts yielding.
const BARRIER_SPINS: u32 = 512;

thread_local! {
    /// True while the current thread is executing a pool job (as the
    /// submitting caller or as a pool worker). Nested submissions would
    /// deadlock on the submit mutex, so parallel evaluators consult
    /// [`in_job`] and fall back to scoped threads when it is set.
    static IN_JOB: Cell<bool> = const { Cell::new(false) };
}

/// True while the current thread is (transitively) inside a
/// [`WorkerPool::run`] job.
///
/// Evaluators that can run on the pool must check this and take their
/// scoped-thread fallback when it returns true: the pool runs one job at
/// a time, so submitting from inside a job would deadlock. Scoped
/// fallback threads spawned from inside a job inherit the flag
/// (`dispatch`/`scoped_run` handle this), so arbitrarily deep
/// nesting keeps falling back instead of deadlocking.
pub fn in_job() -> bool {
    IN_JOB.with(|f| f.get())
}

/// Marks the current thread as (not) being transitively inside a pool
/// job. Only for scoped worker threads spawned *by* an evaluator on
/// behalf of its caller — they must inherit the caller's flag, because a
/// thread that is blind to the job above it would submit to the pool and
/// deadlock on the submit lock its ancestor holds.
pub(crate) fn inherit_in_job(value: bool) {
    IN_JOB.with(|f| f.set(value));
}

/// Runs `worker(tid, barrier)` on `threads` participants (the caller is
/// tid 0): as one job on `pool` when a pool is available and the current
/// thread is not already inside one, and on per-call scoped threads with
/// a stack barrier otherwise. This is the single pool-or-scoped decision
/// point every parallel evaluator dispatches through, so the
/// nested-submission policy cannot diverge between them. Both branches
/// execute the identical worker function — results cannot depend on the
/// dispatch.
pub(crate) fn dispatch(
    pool: Option<&WorkerPool>,
    threads: usize,
    worker: impl Fn(usize, &SpinBarrier) + Sync,
) {
    match pool {
        Some(p) if !in_job() => p.run(threads, |tid| worker(tid, p.barrier())),
        _ => scoped_run(threads, &worker),
    }
}

/// The scoped-thread fallback body of [`dispatch`]: spawns
/// `threads - 1` scoped workers (each inheriting the caller's in-job
/// flag) around a stack barrier and runs tid 0 on the caller.
pub(crate) fn scoped_run(threads: usize, worker: &(impl Fn(usize, &SpinBarrier) + Sync)) {
    let barrier = SpinBarrier::new();
    let nested = in_job();
    std::thread::scope(|scope| {
        for tid in 1..threads {
            let (w, b) = (worker, &barrier);
            scope.spawn(move || {
                inherit_in_job(nested);
                w(tid, b);
            });
        }
        worker(0, &barrier);
    });
}

/// Pool-spawned worker threads currently alive, process-wide. Purely
/// diagnostic: the shutdown/leak regression tests assert this returns to
/// its prior value once the last simulator holding a pool drops.
pub fn alive_workers() -> usize {
    ALIVE_WORKERS.load(SeqCst)
}

static ALIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// The process-wide shared pool, held weakly: the pool lives exactly as
/// long as some simulator holds a strong handle.
static SHARED: Mutex<Weak<WorkerPool>> = Mutex::new(Weak::new());

/// True when a single hardware thread backs the whole process: busy
/// spinning then only delays the thread being waited on.
fn single_cpu() -> bool {
    static CPUS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CPUS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    }) == 1
}

/// Whether simulators may acquire the shared pool, from the
/// `GATE_SIM_POOL` environment variable. Unset or `1`/`true`/`on` means
/// enabled; `0`/`false`/`off` disables the pool and forces the
/// scoped-thread fallbacks (useful for A/B benches and as an escape
/// hatch).
///
/// # Panics
///
/// Panics if the variable is set to anything else, so a typo'd CI matrix
/// cannot silently test the wrong configuration.
pub fn env_pool_enabled() -> bool {
    match std::env::var("GATE_SIM_POOL") {
        Err(_) => true,
        Ok(v) => match v.as_str() {
            "1" | "true" | "on" => true,
            "0" | "false" | "off" => false,
            other => panic!("GATE_SIM_POOL={other} is not one of 0/1/true/false/on/off"),
        },
    }
}

/// A reusable sense-reversing barrier over two atomics.
///
/// Unlike [`std::sync::Barrier`] the participant count is a call-site
/// argument, so one barrier instance (embedded in the pool, or on a
/// scoped caller's stack) serves every job without per-settle allocation,
/// and waiters spin-then-yield instead of taking a mutex — a level
/// boundary inside a settle is far too short-lived for futex round trips.
///
/// Every participant of an episode must call [`SpinBarrier::wait`] with
/// the same `total`; episodes complete fully (count returns to zero)
/// before the next begins, which is what makes the instance reusable
/// across jobs.
#[derive(Debug, Default)]
pub struct SpinBarrier {
    count: AtomicUsize,
    epoch: AtomicU64,
}

impl SpinBarrier {
    /// A fresh barrier (no waiters, epoch zero).
    pub fn new() -> SpinBarrier {
        SpinBarrier::default()
    }

    /// Blocks until `total` participants (including the caller) have
    /// arrived at this episode.
    pub fn wait(&self, total: usize) {
        if total <= 1 {
            return;
        }
        let epoch = self.epoch.load(SeqCst);
        if self.count.fetch_add(1, SeqCst) + 1 == total {
            // Last arriver: reset for the next episode, then release the
            // waiters (the epoch store publishes the reset with it).
            self.count.store(0, SeqCst);
            self.epoch.store(epoch.wrapping_add(1), SeqCst);
        } else {
            let mut tries = 0u32;
            while self.epoch.load(SeqCst) == epoch {
                tries += 1;
                if tries > BARRIER_SPINS || single_cpu() {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// The type-erased entry point of a job: `data` is a `*const F` for the
/// submitted closure, `tid` the claimed worker index.
type JobFn = unsafe fn(*const (), usize);

unsafe fn call_job<F: Fn(usize) + Sync>(data: *const (), tid: usize) {
    // SAFETY: `data` was erased from a live `&F` by `run`, which does not
    // return before every participant has finished (completion latch), so
    // the reference is valid for the whole call.
    unsafe { (*(data as *const F))(tid) }
}

/// State shared between the submitting callers and the worker threads.
struct PoolShared {
    /// Latest published job generation. Bumped by 1 per job; workers act
    /// when it differs from the generation they last served.
    generation: AtomicU64,
    /// Tid claim counter, generation-stamped: high 32 bits are the
    /// generation the counter belongs to, low 32 bits the next tid to
    /// hand out. The submitter resets it (with the *new* stamp) before
    /// writing the descriptor below, so a compare-and-swap that succeeds
    /// with stamp `g` proves the descriptor fields still belong to job
    /// `g` — a stale worker's CAS fails and it discards what it read.
    claim: AtomicU64,
    /// Job descriptor: closure data pointer, erased entry point, and the
    /// total participant count (caller included). Individually atomic so
    /// a stale worker's read is a race-free stale value, never a torn one.
    job_data: AtomicPtr<()>,
    job_call: AtomicUsize,
    job_participants: AtomicUsize,
    /// Completion latch: pool-side participants that have finished. The
    /// caller waits for `participants - 1`.
    done: AtomicUsize,
    /// Lock-free shadow of the roster length (updated under the roster
    /// lock after growth). Lets [`WorkerPool::ensure_workers`] answer
    /// "already big enough?" without touching the roster mutex — which
    /// doubles as the submit lock and is held for a whole job, so a
    /// simulator constructed *inside* a job must not block on it.
    roster_len: AtomicUsize,
    /// True when a participant's closure panicked; the caller re-panics
    /// after the latch so the failure is not swallowed.
    poisoned: AtomicBool,
    /// The submitting thread, for the completion unpark. Written only
    /// while the submit lock is held.
    caller: Mutex<Option<Thread>>,
    /// Pool shutdown flag (set once, by [`WorkerPool::drop`]).
    shutdown: AtomicBool,
    /// The level barrier jobs use; reusable because jobs are serialized.
    barrier: SpinBarrier,
}

/// One spawned worker: its join handle plus the parked flag the submitter
/// checks to decide whether an unpark syscall is needed.
struct Worker {
    handle: JoinHandle<()>,
    parked: Arc<AtomicBool>,
}

/// A persistent pool of parked worker threads executing one parallel
/// evaluation job at a time (see the module docs for the protocol).
///
/// Simulators normally obtain the process-wide instance through
/// [`WorkerPool::shared`] and hold the `Arc` for as long as their policy
/// wants threads; the pool joins all workers when the last handle drops.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Worker roster. The mutex doubles as the submit lock: holding it is
    /// what serializes jobs, and growth happens under the same lock.
    roster: Mutex<Vec<Worker>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.worker_count())
            .field("generation", &self.shared.generation.load(SeqCst))
            .finish()
    }
}

impl WorkerPool {
    /// Creates a private pool with `workers` parked worker threads.
    ///
    /// Most callers want [`WorkerPool::shared`] instead so concurrent
    /// simulators reuse one set of OS threads.
    pub fn new(workers: usize) -> WorkerPool {
        let pool = WorkerPool {
            shared: Arc::new(PoolShared {
                generation: AtomicU64::new(0),
                claim: AtomicU64::new(0),
                job_data: AtomicPtr::new(std::ptr::null_mut()),
                job_call: AtomicUsize::new(0),
                job_participants: AtomicUsize::new(0),
                done: AtomicUsize::new(0),
                roster_len: AtomicUsize::new(0),
                poisoned: AtomicBool::new(false),
                caller: Mutex::new(None),
                shutdown: AtomicBool::new(false),
                barrier: SpinBarrier::new(),
            }),
            roster: Mutex::new(Vec::new()),
        };
        pool.ensure_workers(workers);
        pool
    }

    /// The process-wide pool, created lazily and grown to at least
    /// `min_workers` pool-side workers (a job with `participants` total
    /// threads needs `participants - 1` of them; the caller is worker 0).
    ///
    /// The registry holds the pool weakly: simulators keep it alive by
    /// holding the returned [`Arc`], and dropping the last handle joins
    /// every worker. A `GATE_SIM_THREADS` override seeds the initial size
    /// so the first acquisition already matches the CI matrix shape.
    pub fn shared(min_workers: usize) -> Arc<WorkerPool> {
        let mut slot = SHARED.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(pool) = slot.upgrade() {
            pool.ensure_workers(min_workers);
            return pool;
        }
        let seed = crate::env_threads().map_or(0, |n| n.saturating_sub(1));
        let pool = Arc::new(WorkerPool::new(min_workers.max(seed)));
        *slot = Arc::downgrade(&pool);
        pool
    }

    /// Worker threads currently spawned (jobs may use fewer; a job
    /// needing more grows the roster on submit). Lock-free so it can be
    /// read even while a job holds the submit lock.
    pub fn worker_count(&self) -> usize {
        self.shared.roster_len.load(SeqCst)
    }

    /// Grows the roster to at least `workers` threads (never shrinks — a
    /// policy asking for fewer threads simply leaves the extras parked,
    /// which costs nothing until shutdown).
    ///
    /// From inside a pool job this is a best-effort no-op when growth
    /// would be needed: the roster mutex doubles as the submit lock and
    /// is held by the running job's caller, so blocking on it here would
    /// deadlock. That is always safe — an evaluator inside a job takes
    /// the scoped fallback regardless, and the next top-level
    /// acquisition or submission grows the roster as usual.
    pub fn ensure_workers(&self, workers: usize) {
        if self.shared.roster_len.load(SeqCst) >= workers || in_job() {
            return;
        }
        let mut roster = self.roster.lock().unwrap_or_else(PoisonError::into_inner);
        Self::grow(&self.shared, &mut roster, workers);
    }

    fn grow(shared: &Arc<PoolShared>, roster: &mut Vec<Worker>, workers: usize) {
        while roster.len() < workers {
            let parked = Arc::new(AtomicBool::new(false));
            let state = Arc::clone(shared);
            let flag = Arc::clone(&parked);
            ALIVE_WORKERS.fetch_add(1, SeqCst);
            let handle = std::thread::Builder::new()
                .name(format!("gate-sim-pool-{}", roster.len() + 1))
                .spawn(move || worker_main(state, flag))
                .expect("spawning a gate-sim pool worker failed");
            roster.push(Worker { handle, parked });
            shared.roster_len.store(roster.len(), SeqCst);
        }
    }

    /// The reusable level barrier for the currently running job. Only
    /// meaningful inside a job closure; all participants of one episode
    /// must pass the same total (normally the job's participant count).
    pub fn barrier(&self) -> &SpinBarrier {
        &self.shared.barrier
    }

    /// Runs `f(tid)` on `participants` workers — the calling thread is
    /// tid 0, pool threads claim tids `1..participants` — and returns
    /// once every participant has finished. Jobs are serialized: a second
    /// caller blocks until the current job completes.
    ///
    /// `f` may rely on tids being exactly `0..participants`, each claimed
    /// by exactly one thread, and on every side effect of the job
    /// happening-before `run` returns. [`WorkerPool::barrier`] is
    /// available for intra-job phase ordering.
    ///
    /// # Panics
    ///
    /// Panics if called from inside a pool job (check [`in_job`] and use
    /// a scoped fallback instead), or if `f` panicked on any participant.
    pub fn run<F: Fn(usize) + Sync>(&self, participants: usize, f: F) {
        assert!(
            !in_job(),
            "nested WorkerPool::run would deadlock; callers must check \
             pool::in_job() and fall back to scoped threads"
        );
        if participants <= 1 {
            f(0);
            return;
        }
        let mut roster = self.roster.lock().unwrap_or_else(PoisonError::into_inner);
        Self::grow(&self.shared, &mut roster, participants - 1);
        let shared = &*self.shared;

        // Publish the job (the order here is what the worker-side stale
        //-claim CAS validates; see `PoolShared::claim`).
        let generation = shared.generation.load(SeqCst).wrapping_add(1);
        shared.done.store(0, SeqCst);
        shared.poisoned.store(false, SeqCst);
        // The stamp carries the generation's low 32 bits — a stale worker
        // would have to doze through 2^32 jobs to alias, and even then the
        // claim would merely hand it valid work for the *current* job.
        shared
            .claim
            .store(((generation & 0xffff_ffff) << 32) | 1, SeqCst);
        shared
            .job_data
            .store(&f as *const F as *const () as *mut (), SeqCst);
        shared
            .job_call
            .store(call_job::<F> as *const () as usize, SeqCst);
        shared.job_participants.store(participants, SeqCst);
        *shared.caller.lock().unwrap_or_else(PoisonError::into_inner) =
            Some(std::thread::current());
        shared.generation.store(generation, SeqCst);
        // Wake parked workers. Spinning workers see the generation store
        // directly; the parked-flag check keeps the hot consecutive-settle
        // path free of unpark syscalls.
        for worker in roster.iter() {
            if worker.parked.load(SeqCst) {
                worker.handle.thread().unpark();
            }
        }

        // The completion wait lives in a drop guard so that even a panic
        // in `f(0)` keeps this frame alive until every worker is done
        // with the borrows the job erased.
        struct CompletionGuard<'p> {
            shared: &'p PoolShared,
            needed: usize,
        }
        impl Drop for CompletionGuard<'_> {
            fn drop(&mut self) {
                let mut tries = 0u32;
                while self.shared.done.load(SeqCst) < self.needed {
                    tries += 1;
                    if tries < IDLE_SPINS && !single_cpu() {
                        std::hint::spin_loop();
                    } else if tries < IDLE_SPINS + IDLE_YIELDS {
                        std::thread::yield_now();
                    } else {
                        // The last finisher always unparks the caller, and
                        // `park` consumes stale tokens harmlessly.
                        std::thread::park();
                    }
                }
            }
        }
        let guard = CompletionGuard {
            shared,
            needed: participants - 1,
        };
        IN_JOB.with(|flag| flag.set(true));
        let caller_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(0)));
        IN_JOB.with(|flag| flag.set(false));
        drop(guard); // blocks until all pool-side participants finish
        *shared.caller.lock().unwrap_or_else(PoisonError::into_inner) = None;
        let poisoned = shared.poisoned.load(SeqCst);
        drop(roster); // job complete: release the submit lock
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        assert!(!poisoned, "a pool worker panicked during the job");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, SeqCst);
        let mut roster = self.roster.lock().unwrap_or_else(PoisonError::into_inner);
        for worker in roster.iter() {
            worker.handle.thread().unpark();
        }
        for worker in roster.drain(..) {
            // A worker that panicked outside a job (impossible today) has
            // already been flagged; joining the corpse is still correct.
            let _ = worker.handle.join();
        }
    }
}

/// The worker thread body: wait for a new generation, claim a tid, run
/// the job, count down the completion latch, repeat until shutdown.
fn worker_main(shared: Arc<PoolShared>, parked: Arc<AtomicBool>) {
    let mut last_served = 0u64;
    'live: loop {
        // Phase 1: wait for a generation we have not served yet.
        let generation = {
            let mut tries = 0u32;
            loop {
                if shared.shutdown.load(SeqCst) {
                    break 'live;
                }
                let g = shared.generation.load(SeqCst);
                if g != last_served {
                    break g;
                }
                tries += 1;
                if tries < IDLE_SPINS && !single_cpu() {
                    std::hint::spin_loop();
                } else if tries < IDLE_SPINS + IDLE_YIELDS {
                    std::thread::yield_now();
                } else {
                    // Park handshake: announce, re-check, then sleep. A
                    // submitter that misses the flag has published the
                    // generation first, so the re-check catches it; one
                    // that sees the flag sends an unpark whose token makes
                    // an about-to-park `park()` return immediately.
                    parked.store(true, SeqCst);
                    if shared.generation.load(SeqCst) == last_served
                        && !shared.shutdown.load(SeqCst)
                    {
                        std::thread::park();
                    }
                    parked.store(false, SeqCst);
                }
            }
        };
        last_served = generation;

        // Phase 2: claim a tid for exactly this generation's job.
        loop {
            let stamped = shared.claim.load(SeqCst);
            if stamped >> 32 != generation & 0xffff_ffff {
                break; // a newer job owns the counter; re-observe
            }
            let tid = (stamped & 0xffff_ffff) as usize;
            let participants = shared.job_participants.load(SeqCst);
            if tid >= participants {
                break; // job fully claimed; wait for the next one
            }
            // Read the descriptor *before* validating the claim: CAS
            // success with our stamp proves no later submitter has begun
            // republishing, so these reads were of this job's fields.
            let data = shared.job_data.load(SeqCst);
            let call = shared.job_call.load(SeqCst);
            if shared
                .claim
                .compare_exchange(stamped, stamped + 1, SeqCst, SeqCst)
                .is_err()
            {
                continue; // lost the race for this tid; try the next
            }
            IN_JOB.with(|flag| flag.set(true));
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // SAFETY: fn-pointer round trip through usize (the only
                // transmute Rust offers for erased fn pointers); the value
                // was produced from `call_job::<F>` for this descriptor.
                let call: JobFn = unsafe { std::mem::transmute::<usize, JobFn>(call) };
                // SAFETY: validated claim — `data` is the submitter's live
                // closure and `tid` is uniquely ours (see module docs).
                unsafe { call(data, tid) };
            }));
            IN_JOB.with(|flag| flag.set(false));
            if result.is_err() {
                shared.poisoned.store(true, SeqCst);
            }
            if shared.done.fetch_add(1, SeqCst) + 1 == participants - 1 {
                let caller = shared
                    .caller
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone();
                if let Some(thread) = caller {
                    thread.unpark();
                }
            }
            break;
        }
    }
    ALIVE_WORKERS.fetch_sub(1, SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_tid_exactly_once() {
        let pool = WorkerPool::new(3);
        for participants in [2usize, 3, 4] {
            let hits: Vec<AtomicUsize> = (0..participants).map(|_| AtomicUsize::new(0)).collect();
            pool.run(participants, |tid| {
                hits[tid].fetch_add(1, SeqCst);
            });
            for (tid, hit) in hits.iter().enumerate() {
                assert_eq!(hit.load(SeqCst), 1, "tid {tid} of {participants}");
            }
        }
    }

    #[test]
    fn reuses_workers_across_many_jobs() {
        let pool = WorkerPool::new(1);
        let total = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.run(2, |_| {
                total.fetch_add(1, SeqCst);
            });
        }
        assert_eq!(total.load(SeqCst), 1000);
        assert_eq!(pool.worker_count(), 1, "no spurious growth");
    }

    #[test]
    fn grows_on_demand_and_single_participant_runs_inline() {
        let pool = WorkerPool::new(0);
        pool.run(1, |tid| assert_eq!(tid, 0));
        assert_eq!(pool.worker_count(), 0, "inline jobs spawn nothing");
        let sum = AtomicUsize::new(0);
        pool.run(4, |tid| {
            sum.fetch_add(tid, SeqCst);
        });
        assert_eq!(sum.load(SeqCst), 6, "tids 0..4 each ran once");
        assert_eq!(pool.worker_count(), 3);
    }

    #[test]
    fn barrier_orders_phases_across_participants() {
        let pool = WorkerPool::new(3);
        let participants = 4;
        let phase1: Vec<AtomicUsize> = (0..participants).map(|_| AtomicUsize::new(0)).collect();
        let observed_complete = AtomicBool::new(true);
        pool.run(participants, |tid| {
            phase1[tid].store(tid + 1, SeqCst);
            pool.barrier().wait(participants);
            // After the barrier every participant must see every phase-1
            // store.
            for (i, slot) in phase1.iter().enumerate() {
                if slot.load(SeqCst) != i + 1 {
                    observed_complete.store(false, SeqCst);
                }
            }
            pool.barrier().wait(participants);
        });
        assert!(observed_complete.load(SeqCst));
    }

    #[test]
    fn in_job_is_visible_to_participants() {
        let pool = WorkerPool::new(1);
        assert!(!in_job());
        let all_in_job = AtomicBool::new(true);
        pool.run(2, |_| {
            if !in_job() {
                all_in_job.store(false, SeqCst);
            }
        });
        assert!(all_in_job.load(SeqCst));
        assert!(!in_job(), "flag restored after the job");
    }

    #[test]
    fn drop_joins_synchronously_after_a_job() {
        // The exact process-wide census assertion lives in
        // tests/pool_lifecycle.rs, which owns its own process and
        // serializes pool users — the global ALIVE_WORKERS counter is
        // racy here, where sibling lib tests create and drop pools
        // concurrently. This test pins the behavioral half: a pool that
        // just ran a job can be dropped (Drop joins its workers) without
        // hanging or panicking.
        let pool = WorkerPool::new(4);
        let ran = AtomicUsize::new(0);
        pool.run(5, |_| {
            ran.fetch_add(1, SeqCst);
        });
        assert_eq!(ran.load(SeqCst), 5);
        assert_eq!(pool.worker_count(), 4);
        drop(pool);
    }

    #[test]
    fn worker_panic_is_propagated_not_hung() {
        let pool = WorkerPool::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(2, |tid| {
                if tid == 1 {
                    panic!("injected worker failure");
                }
            });
        }));
        assert!(result.is_err(), "the worker panic must reach the caller");
        // The pool stays usable for the next job.
        let ok = AtomicUsize::new(0);
        pool.run(2, |_| {
            ok.fetch_add(1, SeqCst);
        });
        assert_eq!(ok.load(SeqCst), 2);
    }

    #[test]
    fn spin_barrier_is_reusable_standalone() {
        let barrier = SpinBarrier::new();
        let rounds = 50;
        let counter = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for _ in 0..rounds {
                        counter.fetch_add(1, SeqCst);
                        barrier.wait(4);
                        // Second episode holds the next round's increments
                        // back until the main thread has asserted.
                        barrier.wait(4);
                    }
                });
            }
            for round in 1..=rounds {
                counter.fetch_add(1, SeqCst);
                barrier.wait(4);
                assert_eq!(counter.load(SeqCst), 4 * round);
                barrier.wait(4);
            }
        });
    }
}
