//! Persistent worker-pool runtime for parallel evaluation, with
//! multi-job admission.
//!
//! Before this module existed, every parallel settle
//! ([`crate::compiled::CompiledSim`] with an [`crate::EvalPolicy`] above
//! one thread, [`crate::sharded::ShardedSim::par_shards`]) opened a fresh
//! [`std::thread::scope`]: thread creation plus teardown cost hundreds of
//! microseconds per settle and dominated small-netlist workloads by ~85×
//! (see `BENCH_baseline.json`'s pre-pool `compiled_64_lanes_par{2,4}`
//! rows). A [`WorkerPool`] keeps a set of parked OS threads alive across
//! settles instead, so submitting a parallel settle costs a handful of
//! atomic operations — and, when settles come back-to-back (a processor
//! cycle loop), not even a wakeup, because workers spin briefly before
//! parking and are still hot when the next job lands.
//!
//! # The job table
//!
//! The pool admits up to [`MAX_JOBS`] jobs **concurrently**: each
//! submission claims one slot of a fixed job table (a compare-and-swap
//! on the slot's busy flag), publishes its descriptor there, and idle
//! workers scan the table for claimable work — so two independent
//! simulators evaluate at the same time on disjoint worker subsets
//! instead of taking turns. (The pre-table protocol serialized every
//! caller on a submit mutex held for the whole job.) Admission reserves
//! `participants - 1` workers on a pool-wide committed counter and grows
//! the roster to the sum over all admitted jobs before publishing, so
//! concurrent jobs can never strand each other at their barriers: every
//! published tid has a worker able to claim it. A submission that finds
//! all [`MAX_JOBS`] slots busy falls back to scoped threads — admission
//! never blocks on another job's completion.
//!
//! # The per-slot job protocol
//!
//! A job is a type-erased `Fn(tid, &SpinBarrier)` closure executed by
//! `participants` workers: the **caller is worker 0**, pool threads claim
//! tids `1..participants` off the slot's atomic counter. Publication on a
//! slot is generation-stamped:
//!
//! 1. the submitter resets the slot's claim counter to
//!    `(generation + 1, tid 1)`,
//! 2. stores the job descriptor fields (all individually atomic),
//! 3. publishes the slot's new generation, bumps the pool-wide epoch and
//!    unparks parked workers,
//! 4. runs its own share (`f(0, barrier)`),
//! 5. blocks on the slot's completion latch (an atomic countdown; the
//!    last finishing worker unparks the caller), then releases the slot.
//!
//! A worker validates its claim with a compare-and-swap that carries the
//! generation stamp: a stale worker that dozed through an entire job
//! observes a mismatched stamp and discards what it read, so a claim can
//! only ever succeed against the slot's currently-published descriptor
//! (jobs on one slot are serialized by the busy flag, which is also what
//! makes the slot's embedded [`SpinBarrier`] safely reusable). Claimed
//! tids are unique, which is what lets jobs hand workers *positional*
//! work (contiguous level chunks in `crate::level`, shard-index claims)
//! with disjoint writes and no locks.
//!
//! # Wakeup and parking
//!
//! Idle workers watch the pool-wide publication epoch: they spin (with
//! [`std::thread::yield_now`] on a single hardware thread, where pure
//! spinning would only steal the submitter's quantum), then park. The
//! park/unpark handshake is race-checked in both directions — a worker
//! re-checks the epoch after announcing itself parked, and a submitter
//! unparks every worker whose parked flag it observes after bumping the
//! epoch — so no wakeup is ever lost. Within one cycle-loop `step` the
//! settles arrive faster than the spin window expires and workers never
//! touch the futex.
//!
//! # Failure model
//!
//! The pool survives its own participants (normative description in
//! `docs/robustness.md`):
//!
//! * **Panic payloads.** A worker whose closure panics is caught; the
//!   *first* panicking participant's payload is captured in the slot and
//!   surfaces to the submitter — as [`JobError::WorkerPanic`] from
//!   [`WorkerPool::run_with`], or re-raised verbatim by
//!   [`WorkerPool::run`] so the original message is never replaced by a
//!   generic one.
//! * **Deadlines and cancellation.** [`JobOptions::deadline`] bounds a
//!   job: a lazily spawned watchdog thread (plus the waiting submitter
//!   itself) converts an overrun into [`JobError::DeadlineExceeded`] by
//!   setting the job's cancel flag — observable from inside closures via
//!   [`job_cancelled`] — and *revoking* every not-yet-claimed tid, so
//!   the submitter only waits for participants that actually started.
//!   A claimed participant that neither polls [`job_cancelled`] nor
//!   returns cannot be abandoned (its closure borrows the submitter's
//!   stack), so the return of `DeadlineExceeded` happens once every
//!   *claimed* participant has exited.
//! * **Self-healing roster.** A worker thread that dies outside the
//!   closure catch (in practice: only the `pool::worker_loss` failpoint,
//!   or a bug) completes its claim with a synthesized payload so the
//!   submitter is never stranded, then respawns a replacement for
//!   itself under the roster lock — pool capacity never decays.
//! * **Failpoints.** With the `failpoints` feature, the
//!   [`crate::failpoints`] sites `pool::worker_panic`,
//!   `pool::worker_loss`, `pool::worker_doze` and `pool::stalled_claim`
//!   inject exactly these faults on a deterministic seeded schedule.
//!
//! # Lifecycle
//!
//! The process-wide pool is created lazily by the first simulator whose
//! policy wants threads ([`WorkerPool::shared`]), grows on demand (a
//! policy asking for more workers than exist, or concurrent jobs whose
//! needs sum past the roster), and is reference-counted by the simulators
//! holding it: dropping the last handle joins every worker thread — no
//! detached threads survive (regression-tested in
//! `crates/netlist/tests/pool_lifecycle.rs`). `GATE_SIM_POOL=0` disables
//! pool acquisition entirely, forcing the scoped-thread fallback paths.
//!
//! Results are bit-identical to the scoped and sequential paths by
//! construction — the pool only changes *who executes* a chunk, never
//! what it reads or writes (`docs/simulation.md` § "Simulation as a
//! service").

use std::any::Any;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex, PoisonError, Weak};
use std::thread::{JoinHandle, Thread};
use std::time::{Duration, Instant};

/// Job-table width: jobs admitted concurrently before submissions fall
/// back to scoped threads. Sixteen is far past any realistic service
/// shape (each job already fans out over multiple workers) while keeping
/// the idle-worker scan trivially cheap.
pub const MAX_JOBS: usize = 16;

/// Spin iterations before an idle worker starts yielding, and yield
/// iterations before it parks. On a single hardware thread the spin
/// phase is skipped entirely (spinning can only delay the submitter).
const IDLE_SPINS: u32 = 256;
const IDLE_YIELDS: u32 = 64;

/// Spin iterations before a barrier waiter starts yielding.
const BARRIER_SPINS: u32 = 512;

/// A captured panic payload, exactly as [`std::panic::catch_unwind`]
/// returns it.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

thread_local! {
    /// True while the current thread is executing a pool job (as the
    /// submitting caller or as a pool worker). A nested submission from
    /// inside a job could deadlock waiting for workers its own ancestors
    /// hold, so parallel evaluators consult [`in_job`] and fall back to
    /// scoped threads when it is set.
    static IN_JOB: Cell<bool> = const { Cell::new(false) };

    /// Cancel flag of the job the current thread is executing (null
    /// outside jobs). Read by [`job_cancelled`]; set around the closure
    /// call by the caller and by serving workers.
    static CANCEL: Cell<*const AtomicBool> = const { Cell::new(std::ptr::null()) };

    /// Job-table index of the claim the current worker thread is
    /// serving, if any. A dying worker's guard uses it to complete the
    /// abandoned claim so the submitter is never stranded.
    static SERVING: Cell<Option<usize>> = const { Cell::new(None) };
}

/// True while the current thread is (transitively) inside a
/// [`WorkerPool::run`] job.
///
/// Evaluators that can run on the pool must check this and take their
/// scoped-thread fallback when it returns true: a job submitted from
/// inside another job competes for the very workers its ancestors are
/// blocking at barriers, which can deadlock when the roster is fully
/// claimed. Scoped fallback threads spawned from inside a job inherit
/// the flag (`dispatch`/`scoped_run` handle this), so arbitrarily deep
/// nesting keeps falling back instead of deadlocking.
pub fn in_job() -> bool {
    IN_JOB.with(|f| f.get())
}

/// Marks the current thread as (not) being transitively inside a pool
/// job. Only for scoped worker threads spawned *by* an evaluator on
/// behalf of its caller — they must inherit the caller's flag, because a
/// thread that is blind to the job above it would submit to the pool and
/// risk the worker-starvation deadlock [`in_job`] exists to prevent.
pub(crate) fn inherit_in_job(value: bool) {
    IN_JOB.with(|f| f.set(value));
}

/// Cooperative cancellation token: true when the job the current thread
/// is participating in has been cancelled (its deadline expired).
///
/// Long-running closures should poll this at natural boundaries (a
/// chunk, a wave, a level) and return early; a closure that never polls
/// cannot be abandoned — see [`JobError::DeadlineExceeded`]. Outside a
/// pool job (including the scoped fallback paths) this is always false.
pub fn job_cancelled() -> bool {
    CANCEL.with(|c| {
        let p = c.get();
        // SAFETY: non-null only while the current thread executes a job
        // closure, and the flag lives in the pool's `Arc<PoolShared>`,
        // which outlives the job (the submitter holds the pool).
        !p.is_null() && unsafe { (*p).load(SeqCst) }
    })
}

/// Runs `worker(tid, barrier)` on `threads` participants (the caller is
/// tid 0): as one job on `pool` when a pool is available and the current
/// thread is not already inside one, and on per-call scoped threads with
/// a stack barrier otherwise. This is the single pool-or-scoped decision
/// point every parallel evaluator dispatches through, so the
/// nested-submission policy cannot diverge between them. Both branches
/// execute the identical worker function — results cannot depend on the
/// dispatch.
pub(crate) fn dispatch(
    pool: Option<&WorkerPool>,
    threads: usize,
    worker: impl Fn(usize, &SpinBarrier) + Sync,
) {
    match pool {
        Some(p) if !in_job() => p.run(threads, worker),
        _ => scoped_run(threads, &worker),
    }
}

/// The scoped-thread fallback body of [`dispatch`]: spawns
/// `threads - 1` scoped workers (each inheriting the caller's in-job
/// flag) around a stack barrier and runs tid 0 on the caller. A worker
/// panic is re-raised with its *original* payload (not
/// [`std::thread::scope`]'s generic "a scoped thread panicked").
pub(crate) fn scoped_run(threads: usize, worker: &(impl Fn(usize, &SpinBarrier) + Sync)) {
    if let Err(payload) = scoped_run_result(threads, worker) {
        std::panic::resume_unwind(payload);
    }
}

/// [`scoped_run`] with the first worker panic payload returned instead
/// of re-raised. A panic on the *caller's* own share (tid 0) still
/// propagates directly, taking precedence.
fn scoped_run_result(
    threads: usize,
    worker: &(impl Fn(usize, &SpinBarrier) + Sync),
) -> Result<(), PanicPayload> {
    let barrier = SpinBarrier::new();
    let nested = in_job();
    let first_payload: Mutex<Option<PanicPayload>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for tid in 1..threads {
            let (w, b, sink) = (worker, &barrier, &first_payload);
            scope.spawn(move || {
                inherit_in_job(nested);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| w(tid, b)));
                if let Err(payload) = result {
                    let mut sink = sink.lock().unwrap_or_else(PoisonError::into_inner);
                    sink.get_or_insert(payload);
                }
            });
        }
        worker(0, &barrier);
    });
    match first_payload
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        Some(payload) => Err(payload),
        None => Ok(()),
    }
}

/// Pool-spawned worker threads currently alive, process-wide. Purely
/// diagnostic: the shutdown/leak regression tests assert this returns to
/// its prior value once the last simulator holding a pool drops.
pub fn alive_workers() -> usize {
    ALIVE_WORKERS.load(SeqCst)
}

static ALIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// The process-wide shared pool, held weakly: the pool lives exactly as
/// long as some simulator holds a strong handle.
static SHARED: Mutex<Weak<WorkerPool>> = Mutex::new(Weak::new());

/// True when a single hardware thread backs the whole process: busy
/// spinning then only delays the thread being waited on.
fn single_cpu() -> bool {
    static CPUS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CPUS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    }) == 1
}

/// Whether simulators may acquire the shared pool (the `GATE_SIM_POOL`
/// knob). Historical entry point for [`crate::env::pool_enabled`]; all
/// the `GATE_SIM_*` parsing now lives in [`crate::env`].
pub use crate::env::pool_enabled as env_pool_enabled;

/// A reusable sense-reversing barrier over two atomics.
///
/// Unlike [`std::sync::Barrier`] the participant count is a call-site
/// argument, so one barrier instance (embedded in a job slot, or on a
/// scoped caller's stack) serves every job without per-settle allocation,
/// and waiters spin-then-yield instead of taking a mutex — a level
/// boundary inside a settle is far too short-lived for futex round trips.
///
/// Every participant of an episode must call [`SpinBarrier::wait`] with
/// the same `total`; episodes complete fully (count returns to zero)
/// before the next begins, which is what makes the instance reusable
/// across jobs.
#[derive(Debug, Default)]
pub struct SpinBarrier {
    count: AtomicUsize,
    epoch: AtomicU64,
}

impl SpinBarrier {
    /// A fresh barrier (no waiters, epoch zero).
    pub fn new() -> SpinBarrier {
        SpinBarrier::default()
    }

    /// Blocks until `total` participants (including the caller) have
    /// arrived at this episode.
    pub fn wait(&self, total: usize) {
        if total <= 1 {
            return;
        }
        let epoch = self.epoch.load(SeqCst);
        if self.count.fetch_add(1, SeqCst) + 1 == total {
            // Last arriver: reset for the next episode, then release the
            // waiters (the epoch store publishes the reset with it).
            self.count.store(0, SeqCst);
            self.epoch.store(epoch.wrapping_add(1), SeqCst);
        } else {
            let mut tries = 0u32;
            while self.epoch.load(SeqCst) == epoch {
                tries += 1;
                if tries > BARRIER_SPINS || single_cpu() {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// Per-job submission options for [`WorkerPool::run_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct JobOptions {
    /// Upper bound on the job's wall-clock time. When it expires, the
    /// job is cancelled ([`job_cancelled`] turns true, unclaimed tids
    /// are revoked) and the submitter gets
    /// [`JobError::DeadlineExceeded`] instead of blocking forever.
    /// `None` (the default) waits indefinitely, exactly like
    /// [`WorkerPool::run`].
    pub deadline: Option<Duration>,
}

impl JobOptions {
    /// Options with the given deadline.
    pub fn deadline(deadline: Duration) -> JobOptions {
        JobOptions {
            deadline: Some(deadline),
        }
    }
}

/// Typed failure of a pool job, from [`WorkerPool::run_with`].
pub enum JobError {
    /// A participant's closure panicked. `payload` is the *first*
    /// panicking participant's original payload, verbatim —
    /// [`WorkerPool::run`] re-raises it so `panic!("my message")` inside
    /// a job surfaces as `"my message"` at the submitter, never as a
    /// generic pool assertion.
    WorkerPanic {
        /// The captured panic payload.
        payload: PanicPayload,
    },
    /// The job's [`JobOptions::deadline`] expired before every
    /// participant finished. Side effects of participants that *did*
    /// run (including any that finished after cancellation) are visible;
    /// `revoked` tids never started at all.
    DeadlineExceeded {
        /// The deadline that was exceeded.
        deadline: Duration,
        /// Tids revoked before any worker claimed them.
        revoked: usize,
        /// The job's total participant count (caller included).
        participants: usize,
    },
}

impl JobError {
    /// The panic message, when this is a [`JobError::WorkerPanic`] whose
    /// payload is a string (the overwhelmingly common case).
    pub fn panic_message(&self) -> Option<&str> {
        match self {
            JobError::WorkerPanic { payload } => payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str)),
            JobError::DeadlineExceeded { .. } => None,
        }
    }
}

impl std::fmt::Debug for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::WorkerPanic { .. } => f
                .debug_struct("WorkerPanic")
                .field(
                    "message",
                    &self.panic_message().unwrap_or("<non-string payload>"),
                )
                .finish(),
            JobError::DeadlineExceeded {
                deadline,
                revoked,
                participants,
            } => f
                .debug_struct("DeadlineExceeded")
                .field("deadline", deadline)
                .field("revoked", revoked)
                .field("participants", participants)
                .finish(),
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::WorkerPanic { .. } => write!(
                f,
                "a pool worker panicked during the job: {}",
                self.panic_message().unwrap_or("<non-string payload>")
            ),
            JobError::DeadlineExceeded {
                deadline,
                revoked,
                participants,
            } => write!(
                f,
                "job deadline of {deadline:?} exceeded \
                 ({revoked} of {participants} tids revoked unstarted)"
            ),
        }
    }
}

impl std::error::Error for JobError {}

/// The type-erased entry point of a job: `data` is a `*const F` for the
/// submitted closure, `tid` the claimed worker index, `barrier` the
/// serving slot's embedded barrier.
type JobFn = unsafe fn(*const (), usize, *const SpinBarrier);

unsafe fn call_job<F: Fn(usize, &SpinBarrier) + Sync>(
    data: *const (),
    tid: usize,
    barrier: *const SpinBarrier,
) {
    // SAFETY: `data` was erased from a live `&F` by `run`, which does not
    // return before every participant has finished (completion latch), so
    // the reference is valid for the whole call; `barrier` points into
    // the slot inside the pool's `Arc<PoolShared>`, alive for the same
    // duration.
    unsafe { (*(data as *const F))(tid, &*barrier) }
}

/// One entry of the job table. Submitters serialize on [`JobSlot::busy`];
/// everything else follows the per-slot publication protocol in the
/// module docs.
struct JobSlot {
    /// Slot admission flag: a submitter owns the slot from a successful
    /// `false -> true` compare-and-swap until it stores `false` back
    /// after its completion latch — so at most one job ever occupies a
    /// slot, which is what makes `generation`/`claim`/`barrier` reusable.
    busy: AtomicBool,
    /// Latest published job generation *on this slot*. Bumped by 1 per
    /// job; workers validate claims against it.
    generation: AtomicU64,
    /// Tid claim counter, generation-stamped: high 32 bits are the slot
    /// generation the counter belongs to, low 32 bits the next tid to
    /// hand out. The submitter resets it (with the *new* stamp) before
    /// writing the descriptor below, so a compare-and-swap that succeeds
    /// with stamp `g` proves the descriptor fields still belong to job
    /// `g` — a stale worker's CAS fails and it discards what it read.
    /// Deadline expiry *seals* the counter (stores `participants` as the
    /// next tid) to revoke every unclaimed tid atomically.
    claim: AtomicU64,
    /// Job descriptor: closure data pointer, erased entry point, and the
    /// total participant count (caller included). Individually atomic so
    /// a stale worker's read is a race-free stale value, never a torn one.
    job_data: AtomicPtr<()>,
    job_call: AtomicUsize,
    job_participants: AtomicUsize,
    /// Completion latch: pool-side participants that have finished. The
    /// caller waits for `participants - 1 - revoked`.
    done: AtomicUsize,
    /// Cooperative cancellation flag, set on deadline expiry and polled
    /// by closures via [`job_cancelled`].
    cancel: AtomicBool,
    /// Tids revoked unclaimed by deadline expiry; shrinks the caller's
    /// completion target.
    revoked: AtomicUsize,
    /// The first panicking participant's payload; later panics on the
    /// same job are dropped (first wins).
    panic_payload: Mutex<Option<PanicPayload>>,
    /// Absolute deadline of the current job, if any. Scanned by the
    /// watchdog; cleared (one-shot) by whoever expires it, and by the
    /// submitter on release so a stale deadline can never leak into the
    /// slot's next job.
    deadline: Mutex<Option<Instant>>,
    /// The submitting thread, for the completion unpark. Written only by
    /// the slot owner.
    caller: Mutex<Option<Thread>>,
    /// The level barrier this slot's jobs use; reusable because jobs on
    /// one slot are serialized by `busy`.
    barrier: SpinBarrier,
}

impl JobSlot {
    fn new() -> JobSlot {
        JobSlot {
            busy: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            // Stamp 0xffff_ffff can never match generation 0: freshly
            // created slots are unclaimable until their first publish.
            claim: AtomicU64::new(u64::MAX),
            job_data: AtomicPtr::new(std::ptr::null_mut()),
            job_call: AtomicUsize::new(0),
            job_participants: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            cancel: AtomicBool::new(false),
            revoked: AtomicUsize::new(0),
            panic_payload: Mutex::new(None),
            deadline: Mutex::new(None),
            caller: Mutex::new(None),
            barrier: SpinBarrier::new(),
        }
    }
}

/// Stores `payload` as the slot's panic payload if it is the first.
fn poison(slot: &JobSlot, payload: PanicPayload) {
    let mut sink = slot
        .panic_payload
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    sink.get_or_insert(payload);
}

/// Counts one pool-side participant as finished and unparks the caller
/// when the (revocation-adjusted) completion target is reached. Shared
/// by the normal serve path and the dying-worker guard.
fn complete_participant(slot: &JobSlot) {
    let done = slot.done.fetch_add(1, SeqCst) + 1;
    let participants = slot.job_participants.load(SeqCst);
    let revoked = slot.revoked.load(SeqCst);
    if done + revoked >= participants.saturating_sub(1) {
        let caller = slot
            .caller
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        if let Some(thread) = caller {
            thread.unpark();
        }
    }
}

/// Expires the job currently on `slot`: sets the cancel flag, seals the
/// claim counter so every unclaimed tid is revoked, and wakes the
/// caller to re-evaluate its completion target. Idempotent — the
/// watchdog and the waiting submitter may both call it.
fn expire(slot: &JobSlot) {
    slot.cancel.store(true, SeqCst);
    let generation = slot.generation.load(SeqCst);
    loop {
        let stamped = slot.claim.load(SeqCst);
        if stamped >> 32 != generation & 0xffff_ffff {
            break; // unpublished, or already a newer job (release race)
        }
        let tid = (stamped & 0xffff_ffff) as usize;
        let participants = slot.job_participants.load(SeqCst);
        if tid >= participants {
            break; // fully claimed (or already sealed): nothing to revoke
        }
        let sealed = (stamped & 0xffff_ffff_0000_0000) | participants as u64;
        if slot
            .claim
            .compare_exchange(stamped, sealed, SeqCst, SeqCst)
            .is_ok()
        {
            slot.revoked.store(participants - tid, SeqCst);
            break;
        }
        // Lost a race against a worker claim; re-read and retry.
    }
    let caller = slot
        .caller
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    if let Some(thread) = caller {
        thread.unpark();
    }
}

/// State shared between the submitting callers, the worker threads and
/// the watchdog.
struct PoolShared {
    /// The job table (see [`JobSlot`] and the module docs).
    slots: [JobSlot; MAX_JOBS],
    /// Pool-wide publication counter: bumped once per published job.
    /// Idle workers wait for it to move, then scan the table — the
    /// cheap "is there anything new?" signal that replaces the old
    /// single-descriptor generation watch.
    epoch: AtomicU64,
    /// Workers reserved by admitted-but-unfinished jobs
    /// (`participants - 1` each). Admission grows the roster to this sum
    /// *before* publishing, so concurrently admitted jobs can always all
    /// be fully claimed — no job can strand another at a barrier.
    committed: AtomicUsize,
    /// Lock-free shadow of the roster length (updated under the roster
    /// lock after growth) so size checks never touch the mutex.
    roster_len: AtomicUsize,
    /// Pool shutdown flag (set once, by [`WorkerPool::drop`]).
    shutdown: AtomicBool,
    /// Worker roster. Lives in the shared state (not the [`WorkerPool`]
    /// facade) so a dying worker's guard can respawn its own
    /// replacement. Held only briefly — growth, the post-publish unpark
    /// sweep, respawn — never across a running job.
    roster: Mutex<Vec<Worker>>,
    /// The deadline watchdog thread, spawned lazily by the first
    /// deadline-carrying submission and joined on pool drop.
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

/// One spawned worker: its join handle plus the parked flag the submitter
/// checks to decide whether an unpark syscall is needed.
struct Worker {
    handle: JoinHandle<()>,
    parked: Arc<AtomicBool>,
}

/// Spawns one pool worker thread, incrementing the census. Returns
/// `None` only if the OS refuses the thread (the self-healing guard
/// degrades rather than aborting the unwind).
fn spawn_worker(shared: &Arc<PoolShared>, index: usize) -> Option<Worker> {
    let parked = Arc::new(AtomicBool::new(false));
    let state = Arc::clone(shared);
    let flag = Arc::clone(&parked);
    ALIVE_WORKERS.fetch_add(1, SeqCst);
    match std::thread::Builder::new()
        .name(format!("gate-sim-pool-{}", index + 1))
        .spawn(move || worker_main(state, flag))
    {
        Ok(handle) => Some(Worker { handle, parked }),
        Err(_) => {
            ALIVE_WORKERS.fetch_sub(1, SeqCst);
            None
        }
    }
}

/// A persistent pool of parked worker threads executing up to
/// [`MAX_JOBS`] parallel evaluation jobs concurrently (see the module
/// docs for the protocol and the failure model).
///
/// Simulators normally obtain the process-wide instance through
/// [`WorkerPool::shared`] and hold the `Arc` for as long as their policy
/// wants threads; the pool joins all workers when the last handle drops.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.worker_count())
            .field("epoch", &self.shared.epoch.load(SeqCst))
            .field("committed", &self.shared.committed.load(SeqCst))
            .finish()
    }
}

impl WorkerPool {
    /// Creates a private pool with `workers` parked worker threads.
    ///
    /// Most callers want [`WorkerPool::shared`] instead so concurrent
    /// simulators reuse one set of OS threads.
    pub fn new(workers: usize) -> WorkerPool {
        let pool = WorkerPool {
            shared: Arc::new(PoolShared {
                slots: std::array::from_fn(|_| JobSlot::new()),
                epoch: AtomicU64::new(0),
                committed: AtomicUsize::new(0),
                roster_len: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
                roster: Mutex::new(Vec::new()),
                watchdog: Mutex::new(None),
            }),
        };
        pool.ensure_workers(workers);
        pool
    }

    /// The process-wide pool, created lazily and grown to at least
    /// `min_workers` pool-side workers (a job with `participants` total
    /// threads needs `participants - 1` of them; the caller is worker 0).
    ///
    /// The registry holds the pool weakly: simulators keep it alive by
    /// holding the returned [`Arc`], and dropping the last handle joins
    /// every worker. A `GATE_SIM_THREADS` override seeds the initial size
    /// so the first acquisition already matches the CI matrix shape.
    pub fn shared(min_workers: usize) -> Arc<WorkerPool> {
        let mut slot = SHARED.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(pool) = slot.upgrade() {
            pool.ensure_workers(min_workers);
            return pool;
        }
        let seed = crate::env_threads().map_or(0, |n| n.saturating_sub(1));
        let pool = Arc::new(WorkerPool::new(min_workers.max(seed)));
        *slot = Arc::downgrade(&pool);
        pool
    }

    /// Worker threads currently spawned (jobs may use fewer; a job
    /// needing more grows the roster on submit). Lock-free so it can be
    /// read at any time without contending with submissions.
    pub fn worker_count(&self) -> usize {
        self.shared.roster_len.load(SeqCst)
    }

    /// Grows the roster to at least `workers` threads (never shrinks — a
    /// policy asking for fewer threads simply leaves the extras parked,
    /// which costs nothing until shutdown). Safe to call from anywhere,
    /// including inside a job: the roster mutex is only ever held for
    /// the duration of thread spawns or an unpark sweep, never across a
    /// running job.
    pub fn ensure_workers(&self, workers: usize) {
        if self.shared.roster_len.load(SeqCst) >= workers {
            return;
        }
        let mut roster = self
            .shared
            .roster
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Self::grow(&self.shared, &mut roster, workers);
    }

    fn grow(shared: &Arc<PoolShared>, roster: &mut Vec<Worker>, workers: usize) {
        while roster.len() < workers {
            let worker =
                spawn_worker(shared, roster.len()).expect("spawning a gate-sim pool worker failed");
            roster.push(worker);
            shared.roster_len.store(roster.len(), SeqCst);
        }
    }

    /// Runs `f(tid, barrier)` on `participants` workers — the calling
    /// thread is tid 0, pool threads claim tids `1..participants` — and
    /// returns once every participant has finished. Independent callers
    /// run concurrently, each on its own job-table slot with its own
    /// barrier; a caller finding the whole table busy falls back to
    /// scoped threads rather than queueing.
    ///
    /// `f` may rely on tids being exactly `0..participants`, each claimed
    /// by exactly one thread, and on every side effect of the job
    /// happening-before `run` returns. `barrier` is private to this job:
    /// participants use it for intra-job phase ordering (all episodes
    /// with the job's participant count).
    ///
    /// # Panics
    ///
    /// Panics if called from inside a pool job (check [`in_job`] and use
    /// a scoped fallback instead), or — with the *original payload*, see
    /// [`JobError::WorkerPanic`] — if `f` panicked on any participant.
    pub fn run<F: Fn(usize, &SpinBarrier) + Sync>(&self, participants: usize, f: F) {
        match self.run_with(participants, &JobOptions::default(), f) {
            Ok(()) => {}
            Err(JobError::WorkerPanic { payload }) => std::panic::resume_unwind(payload),
            // No deadline was set, so none can have expired.
            Err(e) => panic!("pool job failed without a deadline: {e}"),
        }
    }

    /// [`WorkerPool::run`] with per-job [`JobOptions`] and a typed
    /// result instead of a panic.
    ///
    /// Returns [`JobError::WorkerPanic`] carrying the first panicking
    /// participant's payload, or [`JobError::DeadlineExceeded`] when
    /// [`JobOptions::deadline`] expired first (see the module's
    /// "Failure model" section for exactly what each guarantees). On the
    /// scoped fallback path (full job table) the deadline is not
    /// enforced — overflow jobs run to completion, reporting panics only.
    ///
    /// # Panics
    ///
    /// Panics if called from inside a pool job, or if `f` panicked on
    /// the *caller's own* share (tid 0) — the caller's panic unwinds
    /// this frame itself and takes precedence over any `JobError`.
    pub fn run_with<F: Fn(usize, &SpinBarrier) + Sync>(
        &self,
        participants: usize,
        opts: &JobOptions,
        f: F,
    ) -> Result<(), JobError> {
        assert!(
            !in_job(),
            "nested WorkerPool::run could deadlock on worker starvation; \
             callers must check pool::in_job() and fall back to scoped threads"
        );
        if participants <= 1 {
            f(0, &SpinBarrier::new());
            return Ok(());
        }
        let shared = &*self.shared;
        let needed = participants - 1;
        // Reserve our workers on top of every other admitted job's, and
        // grow the roster to the sum before publishing: this is the
        // no-starvation invariant — all concurrently admitted jobs can
        // be fully claimed at once, so none can strand another at a
        // barrier by hoarding the roster.
        let committed = shared.committed.fetch_add(needed, SeqCst) + needed;
        self.ensure_workers(committed);
        if opts.deadline.is_some() {
            ensure_watchdog(&self.shared);
        }

        let Some(slot) = shared
            .slots
            .iter()
            .find(|s| s.busy.compare_exchange(false, true, SeqCst, SeqCst).is_ok())
        else {
            // Every slot occupied (MAX_JOBS concurrent jobs): run scoped
            // instead of queueing behind an unbounded stall. Deadlines
            // are not enforced on this degraded path (documented above).
            shared.committed.fetch_sub(needed, SeqCst);
            return scoped_run_result(participants, &f)
                .map_err(|payload| JobError::WorkerPanic { payload });
        };

        // Publish the job on the claimed slot (the order here is what the
        // worker-side stale-claim CAS validates; see `JobSlot::claim`).
        let generation = slot.generation.load(SeqCst).wrapping_add(1);
        slot.done.store(0, SeqCst);
        slot.cancel.store(false, SeqCst);
        slot.revoked.store(0, SeqCst);
        *slot
            .panic_payload
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = None;
        let deadline_at = opts.deadline.map(|d| Instant::now() + d);
        if deadline_at.is_some() {
            *slot.deadline.lock().unwrap_or_else(PoisonError::into_inner) = deadline_at;
        }
        // The stamp carries the generation's low 32 bits — a stale worker
        // would have to doze through 2^32 of this slot's jobs to alias,
        // and even then the claim would merely hand it valid work for the
        // *current* job.
        slot.claim
            .store(((generation & 0xffff_ffff) << 32) | 1, SeqCst);
        slot.job_data
            .store(&f as *const F as *const () as *mut (), SeqCst);
        slot.job_call
            .store(call_job::<F> as *const () as usize, SeqCst);
        slot.job_participants.store(participants, SeqCst);
        *slot.caller.lock().unwrap_or_else(PoisonError::into_inner) = Some(std::thread::current());
        slot.generation.store(generation, SeqCst);
        shared.epoch.fetch_add(1, SeqCst);
        // Wake parked workers. Spinning workers see the epoch bump
        // directly; the parked-flag check keeps the hot consecutive-settle
        // path free of unpark syscalls. The roster lock is held only for
        // this sweep.
        {
            let roster = self
                .shared
                .roster
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for worker in roster.iter() {
                if worker.parked.load(SeqCst) {
                    worker.handle.thread().unpark();
                }
            }
        }

        // The completion wait lives in a drop guard so that even a panic
        // in `f(0)` keeps this frame alive until every worker is done
        // with the borrows the job erased.
        struct CompletionGuard<'p> {
            slot: &'p JobSlot,
            participants: usize,
            deadline: Option<Instant>,
        }
        impl Drop for CompletionGuard<'_> {
            fn drop(&mut self) {
                let mut tries = 0u32;
                loop {
                    let done = self.slot.done.load(SeqCst);
                    let revoked = self.slot.revoked.load(SeqCst);
                    if done + revoked >= self.participants - 1 {
                        break;
                    }
                    if let Some(at) = self.deadline {
                        if Instant::now() >= at {
                            // The watchdog normally gets here first;
                            // expiry is idempotent, so racing it is fine.
                            expire(self.slot);
                            self.deadline = None;
                        }
                    }
                    tries += 1;
                    if tries < IDLE_SPINS && !single_cpu() {
                        std::hint::spin_loop();
                    } else if tries < IDLE_SPINS + IDLE_YIELDS {
                        std::thread::yield_now();
                    } else if let Some(at) = self.deadline {
                        // Bounded so this thread itself notices expiry.
                        std::thread::park_timeout(at.saturating_duration_since(Instant::now()));
                    } else if self.slot.cancel.load(SeqCst) {
                        // Post-expiry: bounded parks so a revocation
                        // racing the done latch can never strand us.
                        std::thread::park_timeout(Duration::from_millis(1));
                    } else {
                        // The last finisher always unparks the caller, and
                        // `park` consumes stale tokens harmlessly.
                        std::thread::park();
                    }
                }
            }
        }
        let guard = CompletionGuard {
            slot,
            participants,
            deadline: deadline_at,
        };
        IN_JOB.with(|flag| flag.set(true));
        CANCEL.with(|c| c.set(&slot.cancel as *const AtomicBool));
        let caller_result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(0, &slot.barrier)));
        CANCEL.with(|c| c.set(std::ptr::null()));
        IN_JOB.with(|flag| flag.set(false));
        drop(guard); // blocks until all live pool-side participants finish
        let payload = slot
            .panic_payload
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        let cancelled = slot.cancel.load(SeqCst);
        let revoked = slot.revoked.load(SeqCst);
        if deadline_at.is_some() {
            // One-shot hygiene: never leak this job's deadline into the
            // slot's next occupant.
            *slot.deadline.lock().unwrap_or_else(PoisonError::into_inner) = None;
        }
        *slot.caller.lock().unwrap_or_else(PoisonError::into_inner) = None;
        slot.busy.store(false, SeqCst); // job complete: release the slot
        shared.committed.fetch_sub(needed, SeqCst);
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = payload {
            return Err(JobError::WorkerPanic { payload });
        }
        if cancelled {
            return Err(JobError::DeadlineExceeded {
                deadline: opts.deadline.unwrap_or_default(),
                revoked,
                participants,
            });
        }
        Ok(())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Shutdown *before* touching the roster: a dying worker's
        // respawn guard re-checks the flag under the roster lock, so no
        // replacement can be spawned after this store.
        self.shared.shutdown.store(true, SeqCst);
        let workers: Vec<Worker> = {
            let mut roster = self
                .shared
                .roster
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            roster.drain(..).collect()
            // Lock released here: a concurrently dying worker's guard can
            // now run (it finds shutdown set and an empty roster), which
            // its join below requires.
        };
        for worker in &workers {
            worker.handle.thread().unpark();
        }
        for worker in workers {
            // A worker that panicked outside a job has already completed
            // its claim via its guard; joining the corpse is still
            // correct.
            let _ = worker.handle.join();
        }
        let watchdog = self
            .shared
            .watchdog
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(handle) = watchdog {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

/// Spawns the deadline watchdog if it is not already running.
fn ensure_watchdog(shared: &Arc<PoolShared>) {
    let mut slot = shared
        .watchdog
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if slot.is_some() {
        return;
    }
    let state = Arc::clone(shared);
    *slot = Some(
        std::thread::Builder::new()
            .name("gate-sim-watchdog".to_string())
            .spawn(move || watchdog_main(state))
            .expect("spawning the gate-sim deadline watchdog failed"),
    );
}

/// The watchdog body: scan the job table for expired deadlines and
/// convert each into a cancellation + revocation (see [`expire`]). The
/// scan interval bounds how late past its deadline a job is detected —
/// the submitter's own bounded waits back it up, so a stalled watchdog
/// cannot reintroduce an unbounded hang.
fn watchdog_main(shared: Arc<PoolShared>) {
    while !shared.shutdown.load(SeqCst) {
        for slot in shared.slots.iter() {
            if !slot.busy.load(SeqCst) {
                continue;
            }
            let expired = {
                let mut deadline = slot.deadline.lock().unwrap_or_else(PoisonError::into_inner);
                match *deadline {
                    Some(at) if Instant::now() >= at => {
                        *deadline = None; // one-shot
                        true
                    }
                    _ => false,
                }
            };
            if expired {
                expire(slot);
            }
        }
        std::thread::park_timeout(Duration::from_micros(500));
    }
}

/// Census + self-healing guard for one worker thread. On a *panicking*
/// exit it completes any claim the thread died holding (so the
/// submitter's completion latch still closes) and respawns a
/// replacement worker in its own roster seat, so pool capacity never
/// decays. On normal shutdown it only maintains the census.
struct WorkerGuard {
    shared: Arc<PoolShared>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        ALIVE_WORKERS.fetch_sub(1, SeqCst);
        if !std::thread::panicking() {
            return;
        }
        // Finish the claim we died holding: synthesize a payload (there
        // is no caught one — the panic happened outside the closure
        // catch) and count ourselves done so the submitter is unparked,
        // not stranded.
        if let Some(idx) = SERVING.with(|s| s.take()) {
            let slot = &self.shared.slots[idx];
            poison(
                slot,
                Box::new(
                    "pool worker thread lost during the job \
                     (panicked outside the job closure)"
                        .to_string(),
                ),
            );
            complete_participant(slot);
        }
        // Self-heal: replace ourselves in the roster. Shutdown is
        // re-checked under the roster lock — after WorkerPool::drop sets
        // it and drains the roster, no replacement can slip in.
        let mut roster = self
            .shared
            .roster
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if self.shared.shutdown.load(SeqCst) {
            return;
        }
        let me = std::thread::current().id();
        let Some(pos) = roster.iter().position(|w| w.handle.thread().id() == me) else {
            return;
        };
        if let Some(replacement) = spawn_worker(&self.shared, pos) {
            // Dropping our own handle detaches this dying thread; the
            // census was already decremented above.
            roster[pos] = replacement;
        }
    }
}

/// The worker thread body: wait for the publication epoch to move, scan
/// the job table and serve every claimable tid, repeat until shutdown.
fn worker_main(shared: Arc<PoolShared>, parked: Arc<AtomicBool>) {
    let guard = WorkerGuard { shared };
    let shared = &guard.shared;
    let mut last_epoch = 0u64;
    'live: loop {
        if let Some(ms) = crate::failpoints::fire("pool::worker_doze") {
            // Chaos: this worker oversleeps a wakeup; jobs must complete
            // via other workers, revocation, or the worker's late scan.
            std::thread::sleep(Duration::from_millis(ms.max(1)));
        }
        // Phase 1: wait for an epoch we have not scanned from yet.
        let epoch = {
            let mut tries = 0u32;
            loop {
                if shared.shutdown.load(SeqCst) {
                    break 'live;
                }
                let e = shared.epoch.load(SeqCst);
                if e != last_epoch {
                    break e;
                }
                tries += 1;
                if tries < IDLE_SPINS && !single_cpu() {
                    std::hint::spin_loop();
                } else if tries < IDLE_SPINS + IDLE_YIELDS {
                    std::thread::yield_now();
                } else {
                    // Park handshake: announce, re-check, then sleep. A
                    // submitter that misses the flag has bumped the epoch
                    // first, so the re-check catches it; one that sees the
                    // flag sends an unpark whose token makes an
                    // about-to-park `park()` return immediately.
                    parked.store(true, SeqCst);
                    if shared.epoch.load(SeqCst) == last_epoch && !shared.shutdown.load(SeqCst) {
                        std::thread::park();
                    }
                    parked.store(false, SeqCst);
                }
            }
        };
        // Phase 2: sweep the table until a pass serves nothing. A job
        // published mid-sweep either gets served by this pass or bumps
        // the epoch past `epoch`, so the next phase-1 check rescans —
        // no published tid is ever silently skipped.
        loop {
            let mut served = false;
            for (idx, slot) in shared.slots.iter().enumerate() {
                served |= try_serve(slot, idx);
            }
            if !served {
                break;
            }
        }
        last_epoch = epoch;
    }
}

/// Attempts to claim and run one tid of `slot`'s currently published job.
/// Returns whether a closure was executed. `idx` is the slot's table
/// index, registered thread-locally so the dying-worker guard can find
/// the claim.
fn try_serve(slot: &JobSlot, idx: usize) -> bool {
    let generation = slot.generation.load(SeqCst);
    loop {
        let stamped = slot.claim.load(SeqCst);
        if stamped >> 32 != generation & 0xffff_ffff {
            return false; // unpublished slot, or a newer job owns the counter
        }
        let tid = (stamped & 0xffff_ffff) as usize;
        let participants = slot.job_participants.load(SeqCst);
        if tid >= participants {
            return false; // job fully claimed (or sealed by expiry)
        }
        // Read the descriptor *before* validating the claim: CAS success
        // with our stamp proves no later submitter has begun republishing
        // this slot, so these reads were of this job's fields.
        let data = slot.job_data.load(SeqCst);
        let call = slot.job_call.load(SeqCst);
        if let Some(ms) = crate::failpoints::fire("pool::stalled_claim") {
            // Chaos: widen the read-to-CAS window so stale-claim
            // validation races are exercised on purpose.
            std::thread::sleep(Duration::from_millis(ms.max(1)));
        }
        if slot
            .claim
            .compare_exchange(stamped, stamped + 1, SeqCst, SeqCst)
            .is_err()
        {
            continue; // lost the race for this tid; try the next
        }
        SERVING.with(|s| s.set(Some(idx)));
        if crate::failpoints::fire("pool::worker_loss").is_some() {
            // Chaos: die *outside* the closure catch — the WorkerGuard
            // must complete this claim and respawn a replacement.
            panic!("failpoint pool::worker_loss: worker thread killed");
        }
        IN_JOB.with(|flag| flag.set(true));
        CANCEL.with(|c| c.set(&slot.cancel as *const AtomicBool));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if crate::failpoints::fire("pool::worker_panic").is_some() {
                panic!("failpoint pool::worker_panic: injected worker panic");
            }
            // SAFETY: fn-pointer round trip through usize (the only
            // transmute Rust offers for erased fn pointers); the value
            // was produced from `call_job::<F>` for this descriptor.
            let call: JobFn = unsafe { std::mem::transmute::<usize, JobFn>(call) };
            // SAFETY: validated claim — `data` is the submitter's live
            // closure and `tid` is uniquely ours (see module docs); the
            // barrier is the serving slot's own.
            unsafe { call(data, tid, &slot.barrier) };
        }));
        CANCEL.with(|c| c.set(std::ptr::null()));
        IN_JOB.with(|flag| flag.set(false));
        if let Err(payload) = result {
            poison(slot, payload);
        }
        complete_participant(slot);
        SERVING.with(|s| s.set(None));
        return true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_tid_exactly_once() {
        let pool = WorkerPool::new(3);
        for participants in [2usize, 3, 4] {
            let hits: Vec<AtomicUsize> = (0..participants).map(|_| AtomicUsize::new(0)).collect();
            pool.run(participants, |tid, _| {
                hits[tid].fetch_add(1, SeqCst);
            });
            for (tid, hit) in hits.iter().enumerate() {
                assert_eq!(hit.load(SeqCst), 1, "tid {tid} of {participants}");
            }
        }
    }

    #[test]
    fn reuses_workers_across_many_jobs() {
        let pool = WorkerPool::new(1);
        let total = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.run(2, |_, _| {
                total.fetch_add(1, SeqCst);
            });
        }
        assert_eq!(total.load(SeqCst), 1000);
        assert_eq!(pool.worker_count(), 1, "no spurious growth");
    }

    #[test]
    fn grows_on_demand_and_single_participant_runs_inline() {
        let pool = WorkerPool::new(0);
        pool.run(1, |tid, _| assert_eq!(tid, 0));
        assert_eq!(pool.worker_count(), 0, "inline jobs spawn nothing");
        let sum = AtomicUsize::new(0);
        pool.run(4, |tid, _| {
            sum.fetch_add(tid, SeqCst);
        });
        assert_eq!(sum.load(SeqCst), 6, "tids 0..4 each ran once");
        assert_eq!(pool.worker_count(), 3);
    }

    #[test]
    fn barrier_orders_phases_across_participants() {
        let pool = WorkerPool::new(3);
        let participants = 4;
        let phase1: Vec<AtomicUsize> = (0..participants).map(|_| AtomicUsize::new(0)).collect();
        let observed_complete = AtomicBool::new(true);
        pool.run(participants, |tid, barrier| {
            phase1[tid].store(tid + 1, SeqCst);
            barrier.wait(participants);
            // After the barrier every participant must see every phase-1
            // store.
            for (i, slot) in phase1.iter().enumerate() {
                if slot.load(SeqCst) != i + 1 {
                    observed_complete.store(false, SeqCst);
                }
            }
            barrier.wait(participants);
        });
        assert!(observed_complete.load(SeqCst));
    }

    #[test]
    fn in_job_is_visible_to_participants() {
        let pool = WorkerPool::new(1);
        assert!(!in_job());
        let all_in_job = AtomicBool::new(true);
        pool.run(2, |_, _| {
            if !in_job() {
                all_in_job.store(false, SeqCst);
            }
        });
        assert!(all_in_job.load(SeqCst));
        assert!(!in_job(), "flag restored after the job");
    }

    #[test]
    fn drop_joins_synchronously_after_a_job() {
        // The exact process-wide census assertion lives in
        // tests/pool_lifecycle.rs, which owns its own process and
        // serializes pool users — the global ALIVE_WORKERS counter is
        // racy here, where sibling lib tests create and drop pools
        // concurrently. This test pins the behavioral half: a pool that
        // just ran a job can be dropped (Drop joins its workers) without
        // hanging or panicking.
        let pool = WorkerPool::new(4);
        let ran = AtomicUsize::new(0);
        pool.run(5, |_, _| {
            ran.fetch_add(1, SeqCst);
        });
        assert_eq!(ran.load(SeqCst), 5);
        assert_eq!(pool.worker_count(), 4);
        drop(pool);
    }

    #[test]
    fn worker_panic_is_propagated_not_hung() {
        let pool = WorkerPool::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(2, |tid, _| {
                if tid == 1 {
                    panic!("injected worker failure");
                }
            });
        }));
        assert!(result.is_err(), "the worker panic must reach the caller");
        // The pool stays usable for the next job.
        let ok = AtomicUsize::new(0);
        pool.run(2, |_, _| {
            ok.fetch_add(1, SeqCst);
        });
        assert_eq!(ok.load(SeqCst), 2);
    }

    /// Regression for the old `assert!(!poisoned, ...)`: the submitter
    /// must see the panicking worker's *original* message, not a generic
    /// pool assertion that swallows it.
    #[test]
    fn worker_panic_payload_reaches_submitter_verbatim() {
        let pool = WorkerPool::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(2, |tid, _| {
                if tid == 1 {
                    panic!("mutant 0xbeef diverged in chunk 7");
                }
            });
        }));
        let payload = result.expect_err("the worker panic must reach the caller");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .expect("payload must still be the original string");
        assert_eq!(message, "mutant 0xbeef diverged in chunk 7");
    }

    /// The typed flavor: `run_with` returns `JobError::WorkerPanic`
    /// carrying the first payload instead of panicking at all.
    #[test]
    fn run_with_returns_typed_worker_panic() {
        let pool = WorkerPool::new(2);
        let err = pool
            .run_with(3, &JobOptions::default(), |tid, _| {
                if tid != 0 {
                    panic!("typed failure from tid {tid}");
                }
            })
            .expect_err("a worker panicked");
        let message = err.panic_message().expect("string payload");
        assert!(
            message.starts_with("typed failure from tid"),
            "got: {message}"
        );
        // Exactly one payload is captured (first wins); the pool stays
        // usable.
        assert!(pool.run_with(3, &JobOptions::default(), |_, _| {}).is_ok());
    }

    /// N consecutive panicking jobs, then a clean one at full width: the
    /// pool must remain usable and at full roster width throughout
    /// (closure panics are caught — no worker thread is ever lost; the
    /// hard thread-loss respawn is chaos-tested in tests/chaos.rs).
    #[test]
    fn repeated_panics_keep_the_pool_at_full_width() {
        let pool = WorkerPool::new(3);
        for round in 0..8 {
            let err = pool
                .run_with(4, &JobOptions::default(), |tid, _| {
                    if tid != 0 {
                        panic!("round {round} tid {tid} down");
                    }
                })
                .expect_err("every round panics");
            assert!(
                err.panic_message().is_some(),
                "payload survives round {round}"
            );
            assert_eq!(pool.worker_count(), 3, "roster intact after round {round}");
        }
        let hits = AtomicUsize::new(0);
        pool.run(4, |_, _| {
            hits.fetch_add(1, SeqCst);
        });
        assert_eq!(hits.load(SeqCst), 4, "clean job runs every tid");
        assert_eq!(pool.worker_count(), 3);
    }

    /// A job whose workers only exit when cancelled: the deadline must
    /// convert the stall into a typed error instead of hanging, and the
    /// pool must be fully usable afterwards.
    #[test]
    fn deadline_converts_a_stall_into_a_typed_error() {
        let pool = WorkerPool::new(2);
        let polled = AtomicUsize::new(0);
        let err = pool
            .run_with(
                3,
                &JobOptions::deadline(Duration::from_millis(20)),
                |tid, _| {
                    if tid != 0 {
                        // Cooperative stall: spin until the watchdog (or
                        // the waiting submitter) cancels the job.
                        while !job_cancelled() {
                            std::thread::yield_now();
                        }
                        polled.fetch_add(1, SeqCst);
                    }
                },
            )
            .expect_err("the deadline must fire");
        match err {
            JobError::DeadlineExceeded {
                deadline,
                participants,
                ..
            } => {
                assert_eq!(deadline, Duration::from_millis(20));
                assert_eq!(participants, 3);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(polled.load(SeqCst), 2, "both workers saw the cancel flag");
        // No poisoned state: the next (deadline-free) job is clean.
        let hits = AtomicUsize::new(0);
        assert!(pool
            .run_with(3, &JobOptions::default(), |_, _| {
                hits.fetch_add(1, SeqCst);
            })
            .is_ok());
        assert_eq!(hits.load(SeqCst), 3);
    }

    /// A job that finishes comfortably inside its deadline is Ok — the
    /// watchdog must not cancel healthy jobs.
    #[test]
    fn deadline_does_not_fire_on_healthy_jobs() {
        let pool = WorkerPool::new(2);
        for _ in 0..20 {
            let sum = AtomicUsize::new(0);
            pool.run_with(
                3,
                &JobOptions::deadline(Duration::from_secs(30)),
                |tid, _| {
                    sum.fetch_add(tid + 1, SeqCst);
                },
            )
            .expect("healthy job inside its deadline");
            assert_eq!(sum.load(SeqCst), 6);
        }
    }

    #[test]
    fn job_cancelled_is_false_outside_jobs() {
        assert!(!job_cancelled());
        let pool = WorkerPool::new(1);
        let saw_uncancelled = AtomicBool::new(false);
        pool.run(2, |_, _| {
            if !job_cancelled() {
                saw_uncancelled.store(true, SeqCst);
            }
        });
        assert!(
            saw_uncancelled.load(SeqCst),
            "healthy jobs are not cancelled"
        );
        assert!(!job_cancelled(), "token cleared after the job");
    }

    /// The scoped fallback must also preserve the original payload (it
    /// serves both `dispatch` without a pool and job-table overflow).
    #[test]
    fn scoped_fallback_preserves_panic_payload() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scoped_run(3, &|tid, _: &SpinBarrier| {
                if tid == 2 {
                    panic!("scoped tid 2 died");
                }
            });
        }));
        let payload = result.expect_err("the panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("payload must be the original &str");
        assert_eq!(message, "scoped tid 2 died");
    }

    /// The multi-job acceptance case: job B runs to completion while job
    /// A is deliberately stalled mid-closure. Under the pre-table
    /// protocol B's submitter would block on the submit lock until A
    /// finished — this test would hang.
    #[test]
    fn a_job_completes_while_another_is_stalled() {
        let pool = WorkerPool::new(4);
        let gate_open = AtomicBool::new(false);
        let a_running = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let (pool_ref, gate, running) = (&pool, &gate_open, &a_running);
            scope.spawn(move || {
                pool_ref.run(2, |_, _| {
                    running.fetch_add(1, SeqCst);
                    while !gate.load(SeqCst) {
                        std::thread::yield_now();
                    }
                });
            });
            // Wait until job A occupies its slot (both participants are
            // spinning on the gate).
            while a_running.load(SeqCst) < 2 {
                std::thread::yield_now();
            }
            // Job B must be admitted and complete while A stays stalled.
            let b_hits = AtomicUsize::new(0);
            pool.run(2, |_, _| {
                b_hits.fetch_add(1, SeqCst);
            });
            assert_eq!(b_hits.load(SeqCst), 2, "job B ran every tid");
            assert!(
                !gate_open.load(SeqCst),
                "job A was still stalled when B finished"
            );
            gate_open.store(true, SeqCst);
        });
    }

    /// Concurrent submitters from many threads: every job sees exactly
    /// its own tids, barriers do not cross-talk between slots, and the
    /// roster grows to cover the concurrent demand.
    #[test]
    fn concurrent_submitters_each_get_exact_tids() {
        let pool = WorkerPool::new(0);
        let submitters = 6;
        let rounds = 25;
        std::thread::scope(|scope| {
            for s in 0..submitters {
                let pool = &pool;
                scope.spawn(move || {
                    let participants = 2 + s % 3;
                    for _ in 0..rounds {
                        let sum = AtomicUsize::new(0);
                        pool.run(participants, |tid, barrier| {
                            sum.fetch_add(tid + 1, SeqCst);
                            barrier.wait(participants);
                            // Post-barrier, the whole job's sum is sealed.
                            assert_eq!(
                                sum.load(SeqCst),
                                participants * (participants + 1) / 2,
                                "tids 0..{participants} each ran exactly once"
                            );
                        });
                    }
                });
            }
        });
    }

    /// Saturating the job table falls back to scoped threads instead of
    /// blocking: a submission arriving while all MAX_JOBS slots are
    /// stalled still completes.
    #[test]
    fn table_overflow_falls_back_to_scoped() {
        let pool = WorkerPool::new(0);
        let gate_open = AtomicBool::new(false);
        let stalled = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..MAX_JOBS {
                let (pool_ref, gate, count) = (&pool, &gate_open, &stalled);
                scope.spawn(move || {
                    pool_ref.run(2, |tid, _| {
                        if tid == 0 {
                            count.fetch_add(1, SeqCst);
                        }
                        while !gate.load(SeqCst) {
                            std::thread::yield_now();
                        }
                    });
                });
            }
            while stalled.load(SeqCst) < MAX_JOBS {
                std::thread::yield_now();
            }
            // Table full; the next submission must still complete.
            let hits = AtomicUsize::new(0);
            pool.run(3, |_, _| {
                hits.fetch_add(1, SeqCst);
            });
            assert_eq!(hits.load(SeqCst), 3, "overflow job ran every tid");
            gate_open.store(true, SeqCst);
        });
    }

    #[test]
    fn spin_barrier_is_reusable_standalone() {
        let barrier = SpinBarrier::new();
        let rounds = 50;
        let counter = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for _ in 0..rounds {
                        counter.fetch_add(1, SeqCst);
                        barrier.wait(4);
                        // Second episode holds the next round's increments
                        // back until the main thread has asserted.
                        barrier.wait(4);
                    }
                });
            }
            for round in 1..=rounds {
                counter.fetch_add(1, SeqCst);
                barrier.wait(4);
                assert_eq!(counter.load(SeqCst), 4 * round);
                barrier.wait(4);
            }
        });
    }
}
